/**
 * @file
 * Tests for the 2D-mesh NoC model: topology/routing invariants,
 * serialization and latency formulas, contention behaviour, and the
 * multicast-tree batch model.
 */

#include <gtest/gtest.h>

#include <set>

#include "noc/noc_model.hh"
#include "util/common.hh"

namespace ad::noc {
namespace {

TEST(Mesh, CoordinateRoundTrip)
{
    const MeshTopology mesh(8, 8);
    for (NodeId id = 0; id < mesh.nodes(); ++id)
        EXPECT_EQ(mesh.idOf(mesh.coordOf(id)), id);
}

TEST(Mesh, RejectsBadDims)
{
    EXPECT_THROW(MeshTopology(0, 4), ConfigError);
    EXPECT_THROW(MeshTopology(4, -1), ConfigError);
}

TEST(Mesh, HopsManhattan)
{
    const MeshTopology mesh(8, 8);
    EXPECT_EQ(mesh.hops(0, 0), 0);
    EXPECT_EQ(mesh.hops(0, 7), 7);
    EXPECT_EQ(mesh.hops(0, 63), 14);
    EXPECT_EQ(mesh.hops(mesh.idOf({3, 4}), mesh.idOf({5, 1})), 5);
}

TEST(Mesh, HopsSymmetric)
{
    const MeshTopology mesh(4, 4);
    for (NodeId a = 0; a < mesh.nodes(); ++a) {
        for (NodeId b = 0; b < mesh.nodes(); ++b)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
    }
}

TEST(Mesh, RouteLengthEqualsHops)
{
    const MeshTopology mesh(5, 3);
    for (NodeId a = 0; a < mesh.nodes(); ++a) {
        for (NodeId b = 0; b < mesh.nodes(); ++b) {
            EXPECT_EQ(static_cast<int>(mesh.route(a, b).size()),
                      mesh.hops(a, b));
        }
    }
}

TEST(Mesh, RouteIsDimensionOrdered)
{
    // XY routing: X-direction hops come before Y-direction hops, so the
    // route from (0,0) to (2,2) first visits (1,0), (2,0).
    const MeshTopology mesh(4, 4);
    const auto route = mesh.route(mesh.idOf({0, 0}), mesh.idOf({2, 2}));
    ASSERT_EQ(route.size(), 4u);
    // First two links start at nodes (0,0) and (1,0): link id = node*4.
    EXPECT_EQ(route[0] / 4, mesh.idOf({0, 0}));
    EXPECT_EQ(route[1] / 4, mesh.idOf({1, 0}));
    EXPECT_EQ(route[2] / 4, mesh.idOf({2, 0}));
    EXPECT_EQ(route[3] / 4, mesh.idOf({2, 1}));
}

TEST(Mesh, SelfRouteEmpty)
{
    const MeshTopology mesh(4, 4);
    EXPECT_TRUE(mesh.route(5, 5).empty());
}

TEST(Mesh, LinkBetweenRequiresAdjacency)
{
    const MeshTopology mesh(4, 4);
    EXPECT_THROW(mesh.linkBetween(0, 2), InternalError);
    EXPECT_NO_THROW(mesh.linkBetween(0, 1));
}

TEST(Mesh, DistinctLinksForDistinctDirections)
{
    const MeshTopology mesh(4, 4);
    const NodeId center = mesh.idOf({1, 1});
    std::set<LinkId> links;
    links.insert(mesh.linkBetween(center, mesh.idOf({2, 1})));
    links.insert(mesh.linkBetween(center, mesh.idOf({0, 1})));
    links.insert(mesh.linkBetween(center, mesh.idOf({1, 2})));
    links.insert(mesh.linkBetween(center, mesh.idOf({1, 0})));
    EXPECT_EQ(links.size(), 4u);
}

NocModel
makeModel(int x = 4, int y = 4)
{
    NocConfig cfg;
    cfg.linkBits = 256; // 32 bytes/cycle
    return NocModel(MeshTopology(x, y), cfg);
}

TEST(NocModel, SerializationCycles)
{
    const NocModel model = makeModel();
    EXPECT_EQ(model.serializationCycles(32), 1u);
    EXPECT_EQ(model.serializationCycles(33), 2u);
    EXPECT_EQ(model.serializationCycles(3200), 100u);
}

TEST(NocModel, TransferLatencyFormula)
{
    const NocModel model = makeModel();
    const Transfer t{0, 3, 320}; // 3 hops, 10 serialization cycles
    EXPECT_EQ(model.transferLatency(t), 3u + 10u);
}

TEST(NocModel, ZeroForLocalOrEmpty)
{
    const NocModel model = makeModel();
    EXPECT_EQ(model.transferLatency({2, 2, 1000}), 0u);
    EXPECT_EQ(model.transferLatency({0, 1, 0}), 0u);
    EXPECT_DOUBLE_EQ(model.transferEnergy({2, 2, 1000}), 0.0);
}

TEST(NocModel, EnergyScalesWithBitsAndHops)
{
    const NocModel model = makeModel();
    const double one_hop = model.transferEnergy({0, 1, 100});
    const double two_hops = model.transferEnergy({0, 2, 100});
    EXPECT_NEAR(one_hop, 100 * 8 * 0.61, 1e-9);
    EXPECT_NEAR(two_hops, 2.0 * one_hop, 1e-9);
}

TEST(NocModel, BatchMakespanAtLeastWorstTransfer)
{
    const NocModel model = makeModel();
    const std::vector<Transfer> batch{{0, 3, 3200}, {4, 7, 320}};
    const BatchResult r = model.batch(batch);
    EXPECT_GE(r.makespan, model.transferLatency(batch[0]));
    EXPECT_EQ(r.totalBytes, 3520u);
}

TEST(NocModel, SharedLinkSerializes)
{
    const NocModel model = makeModel();
    // Two transfers crossing the same 0->1 link.
    const std::vector<Transfer> shared{{0, 3, 3200}, {0, 2, 3200}};
    const std::vector<Transfer> disjoint{{0, 3, 3200}, {12, 15, 3200}};
    EXPECT_GT(model.batch(shared).makespan,
              model.batch(disjoint).makespan);
}

TEST(NocModel, CompletionsMatchBatchMakespan)
{
    const NocModel model = makeModel();
    const std::vector<Transfer> batch{{0, 3, 3200}, {0, 2, 320},
                                      {5, 6, 64}};
    const auto done = model.completions(batch);
    Cycles worst = 0;
    for (Cycles c : done)
        worst = std::max(worst, c);
    EXPECT_EQ(worst, model.batch(batch).makespan);
}

TEST(NocModel, HopBytesAccumulate)
{
    const NocModel model = makeModel();
    const BatchResult r = model.batch({{0, 3, 100}});
    EXPECT_EQ(r.totalHopBytes, 300u);
}

TEST(Multicast, PayloadCountedOncePerTree)
{
    const NocModel model = makeModel();
    Multicast mc;
    mc.src = 0;
    mc.dsts = {1, 2, 3};
    mc.bytes = 3200;
    const BatchResult r = model.multicastBatch({mc}, nullptr);
    // Tree along row 0 has exactly 3 links; energy = bytes*8*3*0.61.
    EXPECT_EQ(r.totalBytes, 3200u);
    EXPECT_EQ(r.totalHopBytes, 3 * 3200u);
    EXPECT_NEAR(r.energyPj, 3200.0 * 8 * 3 * 0.61, 1e-6);
}

TEST(Multicast, CheaperThanUnicasts)
{
    const NocModel model = makeModel();
    Multicast mc;
    mc.src = 0;
    mc.dsts = {1, 2, 3};
    mc.bytes = 3200;
    std::vector<Transfer> unicasts;
    for (NodeId d : mc.dsts)
        unicasts.push_back({0, d, mc.bytes});
    EXPECT_LT(model.multicastBatch({mc}, nullptr).energyPj,
              model.batch(unicasts).energyPj);
    EXPECT_LE(model.multicastBatch({mc}, nullptr).makespan,
              model.batch(unicasts).makespan);
}

TEST(Multicast, PerDestinationCompletions)
{
    const NocModel model = makeModel();
    Multicast mc;
    mc.src = 0;
    mc.dsts = {1, 3};
    mc.bytes = 320;
    std::vector<std::vector<Cycles>> done;
    model.multicastBatch({mc}, &done);
    ASSERT_EQ(done.size(), 1u);
    ASSERT_EQ(done[0].size(), 2u);
    EXPECT_LT(done[0][0], done[0][1]); // nearer node finishes earlier
}

TEST(Multicast, SelfDestinationFree)
{
    const NocModel model = makeModel();
    Multicast mc;
    mc.src = 2;
    mc.dsts = {2};
    mc.bytes = 999;
    std::vector<std::vector<Cycles>> done;
    const BatchResult r = model.multicastBatch({mc}, &done);
    EXPECT_EQ(r.makespan, 0u);
    EXPECT_EQ(done[0][0], 0u);
}

TEST(NocConfig, ValidateCatchesNonsense)
{
    NocConfig cfg;
    cfg.linkBits = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = NocConfig{};
    cfg.creditDepth = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
}

} // namespace
} // namespace ad::noc
