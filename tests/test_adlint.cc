/**
 * @file
 * Unit tests for the adlint rule engine (tools/adlint/rules.cc): each
 * rule must fire on its target idiom, stay quiet on the safe variants,
 * and honor the justified-allowlist convention. The semantic-model
 * rules (layer-conformance, integer-narrowing, enum-switch-default,
 * raw-lock) are exercised here alongside the v1 determinism rules, as
 * are the suppression baseline and the JSON report writer. The on-disk
 * twins of these snippets live in tests/adlint_fixtures/ and are
 * exercised through the CLI by scripts/check_static.sh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "baseline.hh"
#include "rules.hh"

namespace ad::lint {
namespace {

/** Lint one snippet at @p path, running both passes over it; an
 * optional manifest text enables the layer-conformance rule. */
std::vector<Finding>
lintAt(const std::string &path, const std::string &code,
       const std::string &manifest = "")
{
    ProjectModel project;
    if (!manifest.empty()) {
        std::string err;
        project.layers = parseLayerManifest(manifest, &err);
        EXPECT_TRUE(err.empty()) << err;
    }
    collectProjectFacts(code, project);
    return lintContent(path, code, project);
}

/** Lint one snippet under a neutral path. */
std::vector<Finding>
lint(const std::string &code)
{
    return lintAt("snippet.cc", code);
}

/** Findings for @p rule only, as their 1-based line numbers. */
std::vector<int>
linesFor(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<int> lines;
    for (const Finding &f : findings)
        if (f.rule == rule)
            lines.push_back(f.line);
    return lines;
}

TEST(AdlintRules, RuleSetIsStable)
{
    const auto names = ruleNames();
    for (const char *expected :
         {"unordered-iter", "raw-rand", "pointer-key", "hash-tiebreak",
          "fp-parallel-reduce", "wall-clock", "layer-conformance",
          "integer-narrowing", "enum-switch-default", "raw-lock",
          "allowlist-justification"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing rule " << expected;
    }
}

TEST(AdlintRules, UnorderedIterationFlagsRangeFor)
{
    const auto findings = lint(R"(
std::unordered_map<int, double> scores;
double first() {
    for (const auto &[id, s] : scores)
        return s;
    return 0.0;
}
)");
    EXPECT_EQ(linesFor(findings, "unordered-iter"), std::vector<int>{4});
}

TEST(AdlintRules, UnorderedIterationFlagsBeginCalls)
{
    const auto findings = lint(R"(
std::unordered_set<std::string> names;
auto it() { return names.begin(); }
)");
    EXPECT_EQ(linesFor(findings, "unordered-iter"), std::vector<int>{3});
}

TEST(AdlintRules, UnorderedNameCollectedFromHeaderText)
{
    // The two-pass design: a member declared in one file (the header)
    // is recognized when iterated in another.
    ProjectModel project;
    collectProjectFacts("std::unordered_map<Key, long> _entries;",
                        project);
    const auto findings = lintContent(
        "user.cc", "void f() { for (auto &e : _entries) use(e); }",
        project);
    EXPECT_EQ(linesFor(findings, "unordered-iter"), std::vector<int>{1});
}

TEST(AdlintRules, OrderedContainerIterationIsClean)
{
    const auto findings = lint(R"(
std::map<int, double> scores;
double sum() {
    double t = 0;
    for (const auto &[id, s] : scores)
        t += s;
    return t;
}
)");
    EXPECT_TRUE(linesFor(findings, "unordered-iter").empty());
}

TEST(AdlintRules, JustifiedAllowlistSuppresses)
{
    const auto findings = lint(R"(
std::unordered_map<int, long> sizes;
long total() {
    long t = 0;
    // adlint: unordered-iter-ok — integer addition is commutative,
    // so visit order cannot change the sum.
    for (const auto &[k, v] : sizes)
        t += v;
    return t;
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(AdlintRules, BareAllowlistMarkerIsItselfReported)
{
    const auto findings = lint(R"(
std::unordered_map<int, long> sizes;
long total() {
    long t = 0;
    // adlint: unordered-iter-ok
    for (const auto &[k, v] : sizes)
        t += v;
    return t;
}
)");
    EXPECT_TRUE(linesFor(findings, "unordered-iter").empty());
    EXPECT_EQ(linesFor(findings, "allowlist-justification"),
              std::vector<int>{6});
}

TEST(AdlintRules, RawRandFlagsEveryEntropySource)
{
    const auto findings = lint(R"(
int a() { return rand(); }
void b() { srand(7); }
unsigned c() { std::random_device rd; return rd(); }
)");
    EXPECT_EQ(linesFor(findings, "raw-rand"),
              (std::vector<int>{2, 3, 4}));
}

TEST(AdlintRules, TimeSeededRngIsFlagged)
{
    const auto findings = lint(R"(
std::uint64_t seedy() {
    std::mt19937_64 gen(std::chrono::steady_clock::now().time_since_epoch().count());
    return gen();
}
)");
    EXPECT_EQ(linesFor(findings, "raw-rand"), std::vector<int>{3});
}

TEST(AdlintRules, FixedSeedRngIsClean)
{
    const auto findings = lint(R"(
std::uint64_t stable() {
    std::mt19937_64 gen(12345);
    return gen();
}
int operand() { return operand_count(); } // 'rand' inside a word
)");
    EXPECT_TRUE(linesFor(findings, "raw-rand").empty());
}

TEST(AdlintRules, PointerKeysAndCastsAreFlagged)
{
    const auto findings = lint(R"(
std::map<Node *, int> by_ptr;
std::unordered_map<const Node *, int> by_cptr;
std::uintptr_t key(Node *n) {
    return reinterpret_cast<std::uintptr_t>(n);
}
)");
    EXPECT_EQ(linesFor(findings, "pointer-key"),
              (std::vector<int>{2, 3, 5}));
}

TEST(AdlintRules, ValueKeyedMapsAreClean)
{
    const auto findings = lint(R"(
std::map<std::pair<int, int>, Node *> by_id;
std::unordered_map<std::string, Node *> by_name;
)");
    EXPECT_TRUE(linesFor(findings, "pointer-key").empty());
}

TEST(AdlintRules, StdHashIsFlagged)
{
    const auto findings =
        lint("std::size_t h(int v) { return std::hash<int>{}(v); }");
    EXPECT_EQ(linesFor(findings, "hash-tiebreak"), std::vector<int>{1});
}

TEST(AdlintRules, ParallelCompoundAccumulationIsFlagged)
{
    const auto findings = lint(R"(
double mean(const std::vector<double> &xs) {
    double total = 0.0;
    pool.parallelFor(xs.size(), [&](std::size_t i) {
        total += xs[i];
    });
    return total / xs.size();
}
)");
    EXPECT_EQ(linesFor(findings, "fp-parallel-reduce"),
              std::vector<int>{5});
}

TEST(AdlintRules, PerIndexSlotWritesAreClean)
{
    const auto findings = lint(R"(
void scale(std::vector<double> &xs) {
    pool.parallelFor(xs.size(), [&](std::size_t i) {
        xs[i] *= 2.0;
    });
    double total = 0.0;
    for (double v : xs)
        total += v;
    use(total);
}
)");
    EXPECT_TRUE(linesFor(findings, "fp-parallel-reduce").empty());
}

TEST(AdlintRules, WallClockReadsAreFlagged)
{
    const auto findings = lint(R"(
#include <chrono>
double seconds() {
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::high_resolution_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}
auto stamp() { return std::chrono::system_clock::now(); }
)");
    EXPECT_EQ(linesFor(findings, "wall-clock"),
              (std::vector<int>{4, 5, 8}));
}

TEST(AdlintRules, ObsQuarantineIsExemptFromWallClock)
{
    const std::string code =
        "auto now() { return std::chrono::steady_clock::now(); }";
    EXPECT_TRUE(
        linesFor(lintAt("src/obs/clock.hh", code), "wall-clock")
            .empty());
    EXPECT_TRUE(linesFor(lintAt("obs/clock.hh", code), "wall-clock")
                    .empty());
    EXPECT_EQ(linesFor(lintAt("src/sim/system.cc", code), "wall-clock"),
              std::vector<int>{1});
}

TEST(AdlintRules, CommentsAndStringsAreMasked)
{
    const auto findings = lint(R"__(
// rand() in a comment is fine; so is std::hash<int> here.
/* for (auto &x : some_unordered_map) {} */
const char *doc = "call rand() and iterate names.begin()";
)__");
    EXPECT_TRUE(findings.empty());
}

TEST(AdlintRules, RawStringLiteralsAreMasked)
{
    // A raw string holding hazardous-looking code (exactly what this
    // test file itself does) must not desync the masker or fire rules.
    const auto findings = lint(
        "const char *snippet = R\"x(int a = rand(); \"quote\" "
        "names.begin())x\";\n"
        "int after = 0;\n");
    EXPECT_TRUE(findings.empty());
}

TEST(AdlintRules, FindingsAreSortedByLine)
{
    const auto findings = lint(R"(
unsigned z() { std::random_device rd; return rd(); }
int a() { return rand(); }
)");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_LT(findings[0].line, findings[1].line);
}

// ---------------------------------------------------------------------
// layer-conformance

constexpr const char *kManifest = R"(# test manifest
util  0
core  3
sim   3
serve 5
)";

TEST(AdlintLayers, UpwardIncludeIsFlagged)
{
    const auto findings = lintAt("src/core/scheduler.cc", R"(
#include "serve/serve_loop.hh"
#include "util/common.hh"
)",
                                 kManifest);
    EXPECT_EQ(linesFor(findings, "layer-conformance"),
              std::vector<int>{2});
}

TEST(AdlintLayers, DownwardAndSameRankIncludesAreClean)
{
    const auto findings = lintAt("src/serve/serve_loop.cc", R"(
#include "core/scheduler.hh"
#include "util/common.hh"
)",
                                 kManifest);
    EXPECT_TRUE(linesFor(findings, "layer-conformance").empty());
    // core and sim share a rank: includes in both directions are legal.
    const auto same = lintAt("src/core/orchestrator.cc",
                             "#include \"sim/system.hh\"\n", kManifest);
    EXPECT_TRUE(linesFor(same, "layer-conformance").empty());
}

TEST(AdlintLayers, FilesOutsideTheManifestAreExempt)
{
    // tools/ is not a declared module; system includes never count.
    const auto findings = lintAt("tools/adctl.cc", R"(
#include "serve/serve_loop.hh"
#include <vector>
)",
                                 kManifest);
    EXPECT_TRUE(linesFor(findings, "layer-conformance").empty());
}

TEST(AdlintLayers, ManifestParsingRejectsMalformedLines)
{
    std::string err;
    const LayerManifest good = parseLayerManifest(kManifest, &err);
    EXPECT_TRUE(err.empty());
    EXPECT_EQ(good.rankOf("core"), 3);
    EXPECT_EQ(good.rankOf("nonexistent"), -1);

    const LayerManifest bad =
        parseLayerManifest("core three\n", &err);
    EXPECT_TRUE(bad.empty());
    EXPECT_FALSE(err.empty());
}

TEST(AdlintLayers, ModuleOfPathFindsLastDeclaredComponent)
{
    std::string err;
    const LayerManifest manifest = parseLayerManifest(kManifest, &err);
    EXPECT_EQ(moduleOfPath("src/core/mapper.cc", manifest), "core");
    EXPECT_EQ(moduleOfPath("tests/adlint_fixtures/layering/core/x.cc",
                           manifest),
              "core");
    EXPECT_EQ(moduleOfPath("tools/adctl.cc", manifest), "");
    // The filename never names a module.
    EXPECT_EQ(moduleOfPath("core", manifest), "");
}

// ---------------------------------------------------------------------
// enum-switch-default

TEST(AdlintEnums, DefaultArmOverProjectEnumIsFlagged)
{
    const auto findings = lint(R"(
enum class Mode { Fast, Exact, Hybrid };
const char *name(Mode m) {
    switch (m) {
      case Mode::Fast:
        return "fast";
      case Mode::Exact:
        return "exact";
      default:
        return "hybrid";
    }
}
)");
    EXPECT_EQ(linesFor(findings, "enum-switch-default"),
              std::vector<int>{4});
}

TEST(AdlintEnums, ExhaustiveSwitchIsClean)
{
    const auto findings = lint(R"(
enum class Mode { Fast, Exact };
const char *name(Mode m) {
    switch (m) {
      case Mode::Fast:
        return "fast";
      case Mode::Exact:
        return "exact";
    }
    return "unknown";
}
)");
    EXPECT_TRUE(linesFor(findings, "enum-switch-default").empty());
}

TEST(AdlintEnums, ForeignEnumSwitchMayKeepItsDefault)
{
    // std::errc is not a project enum: a default arm there is fine.
    const auto findings = lint(R"(
int classify(std::errc e) {
    switch (e) {
      case std::errc::timed_out:
        return 1;
      default:
        return 0;
    }
}
)");
    EXPECT_TRUE(linesFor(findings, "enum-switch-default").empty());
}

TEST(AdlintEnums, EnumDefinedInHeaderIsRecognizedAcrossFiles)
{
    ProjectModel project;
    collectProjectFacts("enum class SchedMode { Greedy, Dp, Dtt };",
                        project);
    const auto findings = lintContent("core/schedule.cc", R"(
const char *schedModeName(SchedMode m) {
    switch (m) {
      case SchedMode::Greedy:
        return "greedy";
      default:
        return "dp";
    }
}
)",
                                      project);
    EXPECT_EQ(linesFor(findings, "enum-switch-default"),
              std::vector<int>{3});
}

// ---------------------------------------------------------------------
// integer-narrowing

TEST(AdlintIntegers, ImplicitNarrowingAssignmentIsFlagged)
{
    const auto findings = lint(R"(
void f() {
    std::uint64_t total = accumulate();
    int narrowed = total;
    use(narrowed);
}
)");
    EXPECT_EQ(linesFor(findings, "integer-narrowing"),
              std::vector<int>{4});
}

TEST(AdlintIntegers, ExplicitStaticCastIsClean)
{
    const auto findings = lint(R"(
void f() {
    std::uint64_t total = accumulate();
    // Bounded by maxAtoms, which is far below 2^31.
    int narrowed = static_cast<int>(total);
    use(narrowed);
}
)");
    EXPECT_TRUE(linesFor(findings, "integer-narrowing").empty());
}

TEST(AdlintIntegers, CycleTypedExpressionsAreRecognized)
{
    const auto findings = lint(R"(
void f(Cycles budget) {
    int remaining = budget * 2;
    use(remaining);
}
)");
    EXPECT_EQ(linesFor(findings, "integer-narrowing"),
              std::vector<int>{3});
}

TEST(AdlintIntegers, NarrowLoopCounterOver64BitExtentIsFlagged)
{
    const auto findings = lint(R"(
void f(const std::vector<int> &xs) {
    for (int i = 0; i < xs.size(); ++i)
        use(xs[i]);
}
)");
    EXPECT_EQ(linesFor(findings, "integer-narrowing"),
              std::vector<int>{3});
}

TEST(AdlintIntegers, SizeTypedCounterIsClean)
{
    const auto findings = lint(R"(
void f(const std::vector<int> &xs) {
    for (std::size_t i = 0; i < xs.size(); ++i)
        use(xs[i]);
    for (int k = 0; k < 100; ++k)
        use(k);
}
)");
    EXPECT_TRUE(linesFor(findings, "integer-narrowing").empty());
}

TEST(AdlintIntegers, SignedUnsignedComparisonIsFlagged)
{
    const auto findings = lint(R"(
void f() {
    int lo = threshold();
    std::uint32_t hi = limit();
    if (lo < hi)
        use(lo);
}
)");
    EXPECT_EQ(linesFor(findings, "integer-narrowing"),
              std::vector<int>{5});
}

TEST(AdlintIntegers, MemberAccessAndCallResultsDoNotTaint)
{
    // `opts.count` is a member of unknown type and `levelOf(key)` is a
    // call with an unknown return type: neither may count as a 64-bit
    // source merely because same-named/64-bit identifiers exist.
    const auto findings = lint(R"(
void f(const Options &opts) {
    std::uint64_t count = big();
    std::uint64_t key = keyOf();
    int a = opts.count;
    int b = levelOf(key);
    use(a, b, count);
}
)");
    EXPECT_TRUE(linesFor(findings, "integer-narrowing").empty());
}

TEST(AdlintIntegers, AmbiguouslyDeclaredNamesStaySilent)
{
    // Scope-flat model: `n` is size_t in one function and int in
    // another, so its width is unknowable and must not fire.
    const auto findings = lint(R"(
void f(std::size_t n) { use(n); }
void g(int n) {
    int half = n / 2;
    use(half);
}
)");
    EXPECT_TRUE(linesFor(findings, "integer-narrowing").empty());
}

// ---------------------------------------------------------------------
// raw-lock

TEST(AdlintLocks, DirectLockCallsAreFlagged)
{
    const auto findings = lint(R"(
std::mutex mu;
void f() {
    mu.lock();
    work();
    mu.unlock();
}
)");
    EXPECT_EQ(linesFor(findings, "raw-lock"), (std::vector<int>{4, 6}));
}

TEST(AdlintLocks, UnannotatedStdGuardsAreFlagged)
{
    const auto findings = lint(R"(
void f(std::mutex &mu) {
    std::lock_guard<std::mutex> g(mu);
    work();
}
)");
    EXPECT_EQ(linesFor(findings, "raw-lock"), std::vector<int>{3});
}

TEST(AdlintLocks, UtilQuarantineIsExempt)
{
    const std::string code = "void f(M &m) { m.lock(); m.unlock(); }";
    EXPECT_TRUE(
        linesFor(lintAt("src/util/mutex.hh", code), "raw-lock").empty());
    EXPECT_EQ(linesFor(lintAt("src/core/scheduler.cc", code), "raw-lock")
                  .size(),
              2u);
}

TEST(AdlintLocks, JustifiedAllowlistSuppresses)
{
    const auto findings = lint(R"(
void f(std::mutex &mu) {
    // adlint: raw-lock-ok — guard implementation detail under test
    mu.lock();
    mu.unlock(); // adlint: raw-lock-ok — see above, release half
}
)");
    EXPECT_TRUE(findings.empty());
}

// ---------------------------------------------------------------------
// baseline + JSON output

TEST(AdlintBaseline, RoundTripThroughWriterAndParser)
{
    const std::vector<Finding> findings = {
        {"src/a.cc", 10, "raw-lock", "msg"},
        {"src/b.cc", 20, "integer-narrowing", "msg"},
    };
    const std::string text = writeBaseline(findings);
    std::string err;
    Baseline parsed = parseBaseline(text, &err);
    EXPECT_TRUE(err.empty()) << err;
    ASSERT_EQ(parsed.suppressions.size(), 2u);
    EXPECT_TRUE(parsed.matches(findings[0]));
    EXPECT_TRUE(parsed.matches(findings[1]));
    // A different rule in the same file is NOT suppressed.
    EXPECT_FALSE(
        parsed.matches({"src/a.cc", 10, "enum-switch-default", "m"}));
    EXPECT_TRUE(parsed.staleEntries().empty());
}

TEST(AdlintBaseline, StaleEntriesAreDetected)
{
    std::string err;
    Baseline baseline = parseBaseline(R"({
  "version": 1,
  "suppressions": [
    {"file": "src/a.cc", "rule": "raw-lock", "line": 10},
    {"file": "src/gone.cc", "rule": "raw-lock", "line": 5}
  ]
})",
                                      &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_TRUE(baseline.matches({"src/a.cc", 10, "raw-lock", "m"}));
    const auto stale = baseline.staleEntries();
    ASSERT_EQ(stale.size(), 1u);
    EXPECT_EQ(stale[0].file, "src/gone.cc");
}

TEST(AdlintBaseline, NonPositiveLineMatchesAnyLine)
{
    std::string err;
    Baseline baseline = parseBaseline(R"({
  "version": 1,
  "suppressions": [{"file": "src/a.cc", "rule": "raw-lock", "line": 0}]
})",
                                      &err);
    EXPECT_TRUE(err.empty()) << err;
    EXPECT_TRUE(baseline.matches({"src/a.cc", 7, "raw-lock", "m"}));
    EXPECT_TRUE(baseline.matches({"src/a.cc", 900, "raw-lock", "m"}));
    EXPECT_FALSE(baseline.matches({"src/b.cc", 7, "raw-lock", "m"}));
}

TEST(AdlintBaseline, MalformedInputIsRejected)
{
    std::string err;
    EXPECT_TRUE(parseBaseline("{not json", &err).empty());
    EXPECT_FALSE(err.empty());

    err.clear();
    EXPECT_TRUE(
        parseBaseline(R"({"version": 2, "suppressions": []})", &err)
            .empty());
    EXPECT_FALSE(err.empty()) << "unknown version must be rejected";
}

TEST(AdlintJson, ReportCarriesSchemaFieldsAndEscapes)
{
    const std::vector<Finding> active = {
        {"src/a.cc", 3, "raw-lock",
         "direct .lock() on \"mu\"\toutside src/util"},
    };
    const std::string report = writeJsonReport(active, 2, 41);
    EXPECT_NE(report.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(report.find("\"tool\": \"adlint\""), std::string::npos);
    EXPECT_NE(report.find("\"files\": 41"), std::string::npos);
    EXPECT_NE(report.find("\"activeCount\": 1"), std::string::npos);
    EXPECT_NE(report.find("\"baselinedCount\": 2"), std::string::npos);
    EXPECT_NE(report.find("\"rule\": \"raw-lock\""), std::string::npos);
    // Quotes and tabs in the message must be escaped.
    EXPECT_NE(report.find("\\\"mu\\\""), std::string::npos);
    EXPECT_NE(report.find("\\t"), std::string::npos);
    // The empty report is still schema-complete.
    const std::string empty = writeJsonReport({}, 0, 0);
    EXPECT_NE(empty.find("\"findings\": []"), std::string::npos);
}

} // namespace
} // namespace ad::lint
