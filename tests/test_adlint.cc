/**
 * @file
 * Unit tests for the adlint rule engine (tools/adlint/rules.cc): each
 * determinism rule must fire on its target idiom, stay quiet on the
 * safe variants, and honor the justified-allowlist convention. The
 * on-disk twins of these snippets live in tests/adlint_fixtures/ and
 * are exercised through the CLI by scripts/check_static.sh.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "rules.hh"

namespace ad::lint {
namespace {

/** Lint one snippet, running both passes over it. */
std::vector<Finding>
lint(const std::string &code)
{
    std::vector<std::string> names;
    collectUnorderedNames(code, names);
    return lintContent("snippet.cc", code, names);
}

/** Findings for @p rule only, as their 1-based line numbers. */
std::vector<int>
linesFor(const std::vector<Finding> &findings, const std::string &rule)
{
    std::vector<int> lines;
    for (const Finding &f : findings)
        if (f.rule == rule)
            lines.push_back(f.line);
    return lines;
}

TEST(AdlintRules, RuleSetIsStable)
{
    const auto names = ruleNames();
    for (const char *expected :
         {"unordered-iter", "raw-rand", "pointer-key", "hash-tiebreak",
          "fp-parallel-reduce", "wall-clock",
          "allowlist-justification"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing rule " << expected;
    }
}

TEST(AdlintRules, UnorderedIterationFlagsRangeFor)
{
    const auto findings = lint(R"(
std::unordered_map<int, double> scores;
double first() {
    for (const auto &[id, s] : scores)
        return s;
    return 0.0;
}
)");
    EXPECT_EQ(linesFor(findings, "unordered-iter"), std::vector<int>{4});
}

TEST(AdlintRules, UnorderedIterationFlagsBeginCalls)
{
    const auto findings = lint(R"(
std::unordered_set<std::string> names;
auto it() { return names.begin(); }
)");
    EXPECT_EQ(linesFor(findings, "unordered-iter"), std::vector<int>{3});
}

TEST(AdlintRules, UnorderedNameCollectedFromHeaderText)
{
    // The two-pass design: a member declared in one file (the header)
    // is recognized when iterated in another.
    std::vector<std::string> names;
    collectUnorderedNames("std::unordered_map<Key, long> _entries;",
                          names);
    const auto findings = lintContent(
        "user.cc", "void f() { for (auto &e : _entries) use(e); }",
        names);
    EXPECT_EQ(linesFor(findings, "unordered-iter"), std::vector<int>{1});
}

TEST(AdlintRules, OrderedContainerIterationIsClean)
{
    const auto findings = lint(R"(
std::map<int, double> scores;
double sum() {
    double t = 0;
    for (const auto &[id, s] : scores)
        t += s;
    return t;
}
)");
    EXPECT_TRUE(linesFor(findings, "unordered-iter").empty());
}

TEST(AdlintRules, JustifiedAllowlistSuppresses)
{
    const auto findings = lint(R"(
std::unordered_map<int, long> sizes;
long total() {
    long t = 0;
    // adlint: unordered-iter-ok — integer addition is commutative,
    // so visit order cannot change the sum.
    for (const auto &[k, v] : sizes)
        t += v;
    return t;
}
)");
    EXPECT_TRUE(findings.empty());
}

TEST(AdlintRules, BareAllowlistMarkerIsItselfReported)
{
    const auto findings = lint(R"(
std::unordered_map<int, long> sizes;
long total() {
    long t = 0;
    // adlint: unordered-iter-ok
    for (const auto &[k, v] : sizes)
        t += v;
    return t;
}
)");
    EXPECT_TRUE(linesFor(findings, "unordered-iter").empty());
    EXPECT_EQ(linesFor(findings, "allowlist-justification"),
              std::vector<int>{6});
}

TEST(AdlintRules, RawRandFlagsEveryEntropySource)
{
    const auto findings = lint(R"(
int a() { return rand(); }
void b() { srand(7); }
unsigned c() { std::random_device rd; return rd(); }
)");
    EXPECT_EQ(linesFor(findings, "raw-rand"),
              (std::vector<int>{2, 3, 4}));
}

TEST(AdlintRules, TimeSeededRngIsFlagged)
{
    const auto findings = lint(R"(
std::uint64_t seedy() {
    std::mt19937_64 gen(std::chrono::steady_clock::now().time_since_epoch().count());
    return gen();
}
)");
    EXPECT_EQ(linesFor(findings, "raw-rand"), std::vector<int>{3});
}

TEST(AdlintRules, FixedSeedRngIsClean)
{
    const auto findings = lint(R"(
std::uint64_t stable() {
    std::mt19937_64 gen(12345);
    return gen();
}
int operand() { return operand_count(); } // 'rand' inside a word
)");
    EXPECT_TRUE(linesFor(findings, "raw-rand").empty());
}

TEST(AdlintRules, PointerKeysAndCastsAreFlagged)
{
    const auto findings = lint(R"(
std::map<Node *, int> by_ptr;
std::unordered_map<const Node *, int> by_cptr;
std::uintptr_t key(Node *n) {
    return reinterpret_cast<std::uintptr_t>(n);
}
)");
    EXPECT_EQ(linesFor(findings, "pointer-key"),
              (std::vector<int>{2, 3, 5}));
}

TEST(AdlintRules, ValueKeyedMapsAreClean)
{
    const auto findings = lint(R"(
std::map<std::pair<int, int>, Node *> by_id;
std::unordered_map<std::string, Node *> by_name;
)");
    EXPECT_TRUE(linesFor(findings, "pointer-key").empty());
}

TEST(AdlintRules, StdHashIsFlagged)
{
    const auto findings =
        lint("std::size_t h(int v) { return std::hash<int>{}(v); }");
    EXPECT_EQ(linesFor(findings, "hash-tiebreak"), std::vector<int>{1});
}

TEST(AdlintRules, ParallelCompoundAccumulationIsFlagged)
{
    const auto findings = lint(R"(
double mean(const std::vector<double> &xs) {
    double total = 0.0;
    pool.parallelFor(xs.size(), [&](std::size_t i) {
        total += xs[i];
    });
    return total / xs.size();
}
)");
    EXPECT_EQ(linesFor(findings, "fp-parallel-reduce"),
              std::vector<int>{5});
}

TEST(AdlintRules, PerIndexSlotWritesAreClean)
{
    const auto findings = lint(R"(
void scale(std::vector<double> &xs) {
    pool.parallelFor(xs.size(), [&](std::size_t i) {
        xs[i] *= 2.0;
    });
    double total = 0.0;
    for (double v : xs)
        total += v;
    use(total);
}
)");
    EXPECT_TRUE(linesFor(findings, "fp-parallel-reduce").empty());
}

TEST(AdlintRules, WallClockReadsAreFlagged)
{
    const auto findings = lint(R"(
#include <chrono>
double seconds() {
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::high_resolution_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}
auto stamp() { return std::chrono::system_clock::now(); }
)");
    EXPECT_EQ(linesFor(findings, "wall-clock"),
              (std::vector<int>{4, 5, 8}));
}

TEST(AdlintRules, ObsQuarantineIsExemptFromWallClock)
{
    const std::string code =
        "auto now() { return std::chrono::steady_clock::now(); }";
    const std::vector<std::string> names;
    EXPECT_TRUE(linesFor(lintContent("src/obs/clock.hh", code, names),
                         "wall-clock")
                    .empty());
    EXPECT_TRUE(linesFor(lintContent("obs/clock.hh", code, names),
                         "wall-clock")
                    .empty());
    EXPECT_EQ(linesFor(lintContent("src/sim/system.cc", code, names),
                       "wall-clock"),
              std::vector<int>{1});
}

TEST(AdlintRules, CommentsAndStringsAreMasked)
{
    const auto findings = lint(R"__(
// rand() in a comment is fine; so is std::hash<int> here.
/* for (auto &x : some_unordered_map) {} */
const char *doc = "call rand() and iterate names.begin()";
)__");
    EXPECT_TRUE(findings.empty());
}

TEST(AdlintRules, FindingsAreSortedByLine)
{
    const auto findings = lint(R"(
unsigned z() { std::random_device rd; return rd(); }
int a() { return rand(); }
)");
    ASSERT_EQ(findings.size(), 2u);
    EXPECT_LT(findings[0].line, findings[1].line);
}

} // namespace
} // namespace ad::lint
