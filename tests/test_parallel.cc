/**
 * @file
 * Concurrency tests: the fork-join thread pool, the memoized cost model,
 * and end-to-end determinism of the parallel orchestration — results
 * must be bit-identical for any thread count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/il_pipe.hh"
#include "core/orchestrator.hh"
#include "core/partition.hh"
#include "engine/cached_cost_model.hh"
#include "models/models.hh"
#include "util/thread_pool.hh"

namespace ad {
namespace {

using engine::CachedCostModel;
using engine::CostModel;
using engine::CostResult;
using engine::DataflowKind;
using engine::EngineConfig;
using util::ThreadPool;

/** Restores the global pool to its default size on scope exit. */
struct GlobalThreadsGuard
{
    ~GlobalThreadsGuard() { ThreadPool::setGlobalThreads(0); }
};

TEST(ThreadPool, MapMatchesSerialForAnyThreadCount)
{
    const std::size_t n = 1000;
    std::vector<std::uint64_t> expected(n);
    for (std::size_t i = 0; i < n; ++i)
        expected[i] = i * i + 7;
    for (int threads : {1, 2, 4, 16}) {
        ThreadPool pool(threads);
        const auto got = pool.parallelMap<std::uint64_t>(
            n, [](std::size_t i) { return i * i + 7; });
        EXPECT_EQ(got, expected) << "threads=" << threads;
    }
}

TEST(ThreadPool, ForVisitsEveryIndexExactlyOnce)
{
    const std::size_t n = 4096;
    std::vector<std::atomic<int>> visits(n);
    ThreadPool pool(8);
    pool.parallelFor(n, [&](std::size_t i) { visits[i]++; });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(visits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, EmptyAndSingleItemRegions)
{
    ThreadPool pool(4);
    pool.parallelFor(0, [](std::size_t) { FAIL() << "called on n=0"; });
    const auto one =
        pool.parallelMap<int>(1, [](std::size_t) { return 42; });
    EXPECT_EQ(one, std::vector<int>{42});
}

TEST(ThreadPool, ExceptionsPropagateToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          panic("index ", i);
                                  }),
                 InternalError);
    // The pool survives a failed region and accepts new work.
    const auto after =
        pool.parallelMap<std::size_t>(8, [](std::size_t i) { return i; });
    EXPECT_EQ(after.size(), 8u);
}

TEST(ThreadPool, ExceptionTypeSurvivesPropagation)
{
    // The pool rethrows the captured std::exception_ptr, so the caller
    // sees the worker's exact exception type and message.
    ThreadPool pool(4);
    try {
        pool.parallelFor(64, [](std::size_t i) {
            if (i == 13)
                throw std::out_of_range("index 13 rejected");
        });
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range &e) {
        EXPECT_STREQ(e.what(), "index 13 rejected");
    }
}

TEST(ThreadPool, EveryIndexThrowingSurfacesExactlyOneException)
{
    // When many workers throw concurrently, exactly one exception is
    // kept and rethrown at the join; the rest are swallowed, never
    // terminate(), and the pool stays usable.
    ThreadPool pool(8);
    for (int round = 0; round < 3; ++round) {
        EXPECT_THROW(pool.parallelFor(256,
                                      [](std::size_t i) {
                                          throw std::runtime_error(
                                              "worker " +
                                              std::to_string(i));
                                      }),
                     std::runtime_error);
    }
    const auto after =
        pool.parallelMap<std::size_t>(16, [](std::size_t i) { return i; });
    EXPECT_EQ(after.size(), 16u);
}

TEST(ThreadPool, WorkAfterShutdownRunsInline)
{
    // Submitting after shutdown() is not an error: with no workers left
    // the region degrades to inline execution on the calling thread.
    ThreadPool pool(4);
    pool.shutdown();
    const auto caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(64);
    pool.parallelFor(64, [&](std::size_t i) {
        ran[i] = std::this_thread::get_id();
    });
    for (std::size_t i = 0; i < ran.size(); ++i)
        ASSERT_EQ(ran[i], caller) << "index " << i << " left the caller";
    // parallelMap goes through the same path.
    const auto got =
        pool.parallelMap<std::size_t>(8, [](std::size_t i) { return i; });
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i], i);
}

TEST(ThreadPool, ShutdownIsIdempotent)
{
    ThreadPool pool(4);
    pool.parallelFor(32, [](std::size_t) {});
    pool.shutdown();
    pool.shutdown(); // second call must be a no-op, not a double-join
    pool.parallelFor(4, [](std::size_t) {});
    // The destructor runs shutdown() a third time on scope exit.
}

TEST(ThreadPool, DestructionImmediatelyAfterWorkIsClean)
{
    // Destroying the pool right after a region joins must not race the
    // workers still returning to their wait loop. Iterate to give a
    // latent race many chances to fire (deterministically caught by
    // scripts/check_tsan.sh; here we just assert it does not hang or
    // crash).
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> hits{0};
        ThreadPool pool(4);
        pool.parallelFor(16, [&](std::size_t) { hits++; });
        EXPECT_EQ(hits.load(), 16);
    }
    // An unused pool's destructor must also join cleanly.
    ThreadPool idle(8);
}

TEST(ThreadPool, NestedRegionsRunInline)
{
    // A worker calling parallelFor again must not deadlock waiting for
    // the pool it occupies; nested regions execute inline.
    ThreadPool pool(4);
    std::vector<std::uint64_t> sums(16, 0);
    pool.parallelFor(16, [&](std::size_t i) {
        std::vector<std::uint64_t> inner(32);
        ThreadPool::global().parallelFor(
            32, [&](std::size_t j) { inner[j] = i * 100 + j; });
        sums[i] = std::accumulate(inner.begin(), inner.end(),
                                  std::uint64_t{0});
    });
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(sums[i], i * 100 * 32 + 31 * 32 / 2);
}

TEST(ThreadPool, GlobalPoolResizes)
{
    GlobalThreadsGuard guard;
    ThreadPool::setGlobalThreads(3);
    EXPECT_EQ(ThreadPool::globalThreads(), 3);
    EXPECT_EQ(ThreadPool::global().threads(), 3);
    ThreadPool::setGlobalThreads(0); // restore the default
    EXPECT_GE(ThreadPool::globalThreads(), 1);
}

TEST(CachedCostModel, BitIdenticalToUncachedModel)
{
    CachedCostModel::clearSharedStores();
    const EngineConfig config;
    for (DataflowKind kind :
         {DataflowKind::KcPartition, DataflowKind::YxPartition}) {
        const CostModel plain(config, kind);
        const CachedCostModel cached(config, kind);
        const graph::Graph g = models::tinyBranchy();
        const core::AtomicDag dag(g, core::evenPartitionShapes(g, 4));
        for (const core::Atom &a : dag.atoms()) {
            const auto w = dag.workload(a.id);
            const CostResult expect = plain.evaluate(w);
            for (int round = 0; round < 2; ++round) { // miss, then hit
                const CostResult got = cached.evaluate(w);
                EXPECT_EQ(got.cycles, expect.cycles);
                EXPECT_EQ(got.computeCycles, expect.computeCycles);
                EXPECT_EQ(got.utilization, expect.utilization);
                EXPECT_EQ(got.macs, expect.macs);
                EXPECT_EQ(got.ifmapBytes, expect.ifmapBytes);
                EXPECT_EQ(got.weightBytes, expect.weightBytes);
                EXPECT_EQ(got.ofmapBytes, expect.ofmapBytes);
                EXPECT_EQ(got.sramReadBytes, expect.sramReadBytes);
                EXPECT_EQ(got.sramWriteBytes, expect.sramWriteBytes);
                EXPECT_EQ(got.energyPj, expect.energyPj);
            }
            EXPECT_EQ(cached.cycles(w), plain.cycles(w));
            EXPECT_EQ(cached.utilization(w), plain.utilization(w));
        }
    }
}

TEST(CachedCostModel, SharesStoreAcrossInstances)
{
    CachedCostModel::clearSharedStores();
    const EngineConfig config;
    const CachedCostModel first(config, DataflowKind::KcPartition);
    engine::AtomWorkload w;
    w.h = 14;
    w.w = 14;
    w.ci = 64;
    w.co = 32;

    first.evaluate(w);
    EXPECT_EQ(first.misses(), 1u);
    EXPECT_EQ(first.hits(), 0u);
    first.evaluate(w);
    EXPECT_EQ(first.hits(), 1u);
    EXPECT_EQ(first.size(), 1u);

    // A second model with the identical configuration attaches to the
    // same store: its first lookup is already a hit.
    const CachedCostModel second(config, DataflowKind::KcPartition);
    second.evaluate(w);
    EXPECT_EQ(second.hits(), 2u);
    EXPECT_EQ(second.misses(), 1u);

    // A different dataflow costs differently and must not share.
    const CachedCostModel other(config, DataflowKind::YxPartition);
    other.evaluate(w);
    EXPECT_EQ(other.misses(), 1u);
    EXPECT_EQ(other.hits(), 0u);
}

TEST(CachedCostModel, UsableThroughBaseReference)
{
    CachedCostModel::clearSharedStores();
    const EngineConfig config;
    const CachedCostModel cached(config, DataflowKind::KcPartition);
    const CostModel &base = cached; // how every call site consumes it
    engine::AtomWorkload w;
    w.h = 7;
    w.w = 7;
    w.ci = 16;
    w.co = 16;
    EXPECT_EQ(base.cycles(w),
              CostModel(config, DataflowKind::KcPartition).cycles(w));
    EXPECT_EQ(cached.misses(), 1u);
    EXPECT_EQ(cached.hits(), 0u);
    // Virtual dispatch reaches the memo again: the second call hits.
    EXPECT_GT(base.utilization(w), 0.0);
    EXPECT_EQ(cached.misses(), 1u);
    EXPECT_EQ(cached.hits(), 1u);
}

/** Flatten a schedule to comparable (round, atom, engine) triples. */
std::vector<std::tuple<int, core::AtomId, int>>
flatten(const core::Schedule &schedule)
{
    std::vector<std::tuple<int, core::AtomId, int>> out;
    for (std::size_t t = 0; t < schedule.rounds.size(); ++t)
        for (const auto &p : schedule.rounds[t].placements)
            out.emplace_back(static_cast<int>(t), p.atom, p.engine);
    return out;
}

TEST(Determinism, ThreadCountInvariantOnResNet50)
{
    // The headline guarantee: --threads N is bit-identical to
    // --threads 1 on a real network, end to end.
    GlobalThreadsGuard guard;
    const graph::Graph g = models::resnet50();
    sim::SystemConfig sys; // default 8x8 mesh
    core::OrchestratorOptions opts;
    opts.batch = 1;
    opts.sa.maxIterations = 80;

    ThreadPool::setGlobalThreads(1);
    const auto serial = core::Orchestrator(sys, opts).run(g);
    ThreadPool::setGlobalThreads(4);
    const auto parallel = core::Orchestrator(sys, opts).run(g);

    EXPECT_EQ(serial.report.totalCycles, parallel.report.totalCycles);
    EXPECT_EQ(serial.report.rounds, parallel.report.rounds);
    EXPECT_EQ(serial.report.hbmReadBytes, parallel.report.hbmReadBytes);
    EXPECT_EQ(serial.report.nocBytes, parallel.report.nocBytes);
    EXPECT_EQ(serial.schedule.mode, parallel.schedule.mode);
    EXPECT_EQ(flatten(serial.schedule), flatten(parallel.schedule));
}

TEST(Determinism, ThreadCountInvariantInBaselines)
{
    GlobalThreadsGuard guard;
    const graph::Graph g = models::tinyResidual();
    sim::SystemConfig sys;
    sys.meshX = 4;
    sys.meshY = 4;
    baselines::IlPipeOptions opts;
    opts.batch = 4;

    ThreadPool::setGlobalThreads(1);
    const auto serial = baselines::IlPipe(sys, opts).run(g);
    ThreadPool::setGlobalThreads(4);
    const auto parallel = baselines::IlPipe(sys, opts).run(g);
    EXPECT_EQ(serial.totalCycles, parallel.totalCycles);
    EXPECT_EQ(serial.hbmReadBytes, parallel.hbmReadBytes);
}

} // namespace
} // namespace ad
