/**
 * @file
 * Tests for atomic DAG construction: tile coverage, receptive-field
 * dependency derivation, Concat elision, batch replication, and the
 * per-edge overlap byte accounting.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/atomic_dag.hh"
#include "models/models.hh"

namespace ad::core {
namespace {

using graph::Graph;
using graph::LayerId;

std::vector<TileShape>
uniformShapes(const Graph &g, TileShape shape)
{
    return std::vector<TileShape>(g.size(), shape);
}

TEST(AtomicDag, TilesPartitionOutputExactly)
{
    Graph g;
    const LayerId in = g.input({10, 10, 8});
    const LayerId c = g.conv(in, 8, 3, 1, 1);
    AtomicDag dag(g, uniformShapes(g, {4, 4, 8}));

    const auto [lo, hi] = dag.layerAtoms(c, 0);
    ASSERT_NE(lo, kNoAtom);
    EXPECT_EQ(hi - lo, 9); // ceil(10/4)^2 = 9 tiles

    // Property: tiles cover every output element exactly once.
    std::map<std::tuple<int, int, int>, int> covered;
    for (AtomId a = lo; a < hi; ++a) {
        const Atom &atom = dag.atom(a);
        for (int h = atom.hs; h < atom.he; ++h) {
            for (int w = atom.ws; w < atom.we; ++w) {
                for (int ch = atom.cs; ch < atom.ce; ++ch)
                    ++covered[{h, w, ch}];
            }
        }
    }
    EXPECT_EQ(covered.size(), 10u * 10 * 8);
    for (const auto &[pos, count] : covered)
        EXPECT_EQ(count, 1);
}

TEST(AtomicDag, ShapesClampToLayerDims)
{
    Graph g;
    const LayerId in = g.input({4, 4, 4});
    const LayerId c = g.conv(in, 4, 1);
    AtomicDag dag(g, uniformShapes(g, {100, 100, 100}));
    const auto [lo, hi] = dag.layerAtoms(c, 0);
    EXPECT_EQ(hi - lo, 1);
    EXPECT_EQ(dag.shapeOf(c), (TileShape{4, 4, 4}));
}

TEST(AtomicDag, FirstLayerReadsExternalInput)
{
    Graph g;
    const LayerId in = g.input({8, 8, 3});
    const LayerId c = g.conv(in, 8, 3, 1, 1);
    AtomicDag dag(g, uniformShapes(g, {8, 8, 8}));
    const auto [lo, hi] = dag.layerAtoms(c, 0);
    for (AtomId a = lo; a < hi; ++a) {
        EXPECT_TRUE(dag.readsExternalInput(a));
        EXPECT_EQ(dag.depCount(a), 0);
    }
}

TEST(AtomicDag, ConvReceptiveFieldSelectsProducers)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1, 1, 0, "a"); // 8x8x4
    const LayerId b = g.conv(a, 4, 3, 1, 1, "b");  // 3x3 consumer
    std::vector<TileShape> shapes(g.size(), TileShape{4, 4, 4});
    AtomicDag dag(g, shapes);

    // Producer tiled 2x2 spatially. Consumer tile (0,0)-(3,3) reads rows
    // -1..4 -> producer rows 0..4 -> overlaps producer tiles (0,0),
    // (0,1), (1,0), (1,1): all four.
    const auto [blo, bhi] = dag.layerAtoms(b, 0);
    ASSERT_EQ(bhi - blo, 4);
    EXPECT_EQ(dag.depCount(blo), 4);

    // A 1x1 consumer at the same tiling would need exactly one producer.
    Graph g2;
    const LayerId in2 = g2.input({8, 8, 4});
    const LayerId a2 = g2.conv(in2, 4, 1, 1, 0);
    const LayerId b2 = g2.conv(a2, 4, 1, 1, 0);
    AtomicDag dag2(g2, uniformShapes(g2, {4, 4, 4}));
    const auto [b2lo, b2hi] = dag2.layerAtoms(b2, 0);
    ASSERT_EQ(b2hi - b2lo, 4);
    for (AtomId atom = b2lo; atom < b2hi; ++atom)
        EXPECT_EQ(dag2.depCount(atom), 1);
}

TEST(AtomicDag, ConvConsumesAllProducerChannels)
{
    Graph g;
    const LayerId in = g.input({4, 4, 16});
    const LayerId a = g.conv(in, 16, 1);
    const LayerId b = g.conv(a, 16, 1);
    (void)b;
    // Producer split into 4 channel tiles; conv consumer needs them all.
    AtomicDag dag(g, uniformShapes(g, {4, 4, 4}));
    const auto [blo, bhi] = dag.layerAtoms(b, 0);
    for (AtomId atom = blo; atom < bhi; ++atom)
        EXPECT_EQ(dag.depCount(atom), 4);
}

TEST(AtomicDag, PoolConsumesOnlyItsChannels)
{
    Graph g;
    const LayerId in = g.input({4, 4, 16});
    const LayerId a = g.conv(in, 16, 1);
    const LayerId p = g.pool(a, 2);
    AtomicDag dag(g, uniformShapes(g, {4, 4, 4}));
    const auto [plo, phi] = dag.layerAtoms(p, 0);
    ASSERT_EQ(phi - plo, 4); // channel tiles only
    for (AtomId atom = plo; atom < phi; ++atom) {
        EXPECT_EQ(dag.depCount(atom), 1); // aligned channel tile
        const Atom &pa = dag.atom(atom);
        const Atom &dep = dag.atom(dag.deps(atom)[0]);
        EXPECT_EQ(pa.cs, dep.cs);
    }
}

TEST(AtomicDag, EltwiseDependsOnBothBranches)
{
    const Graph g = models::tinyResidual();
    AtomicDag dag(g, uniformShapes(g, {16, 16, 16}));
    // add1 consumes conv_b and the graph input... input is elided, so
    // only conv_b remains plus the external-input flag.
    LayerId add1 = graph::kNoLayer;
    for (const auto &l : g.layers()) {
        if (l.name == "add1")
            add1 = l.id;
    }
    ASSERT_NE(add1, graph::kNoLayer);
    const auto [lo, hi] = dag.layerAtoms(add1, 0);
    ASSERT_EQ(hi - lo, 1);
    EXPECT_EQ(dag.depCount(lo), 1); // conv_b tile
    EXPECT_TRUE(dag.readsExternalInput(lo));
}

TEST(AtomicDag, ConcatIsElided)
{
    const Graph g = models::tinyBranchy();
    AtomicDag dag(g, uniformShapes(g, {16, 16, 64}));
    LayerId cat = graph::kNoLayer, tail = graph::kNoLayer;
    for (const auto &l : g.layers()) {
        if (l.type == graph::OpType::Concat)
            cat = l.id;
        if (l.name == "tail")
            tail = l.id;
    }
    ASSERT_NE(cat, graph::kNoLayer);
    // Concat has no atoms.
    EXPECT_EQ(dag.layerAtoms(cat, 0).first, kNoAtom);
    EXPECT_EQ(dag.atomsPerSample(cat), 0);
    // The tail conv depends directly on the three branch outputs.
    const auto [tlo, thi] = dag.layerAtoms(tail, 0);
    ASSERT_EQ(thi - tlo, 1);
    std::set<LayerId> producers;
    for (AtomId dep : dag.deps(tlo))
        producers.insert(dag.atom(dep).layer);
    EXPECT_EQ(producers.size(), 3u);
}

TEST(AtomicDag, FullyConnectedDependsOnAll)
{
    Graph g;
    const LayerId in = g.input({4, 4, 8});
    const LayerId c = g.conv(in, 8, 1);
    const LayerId f = g.fullyConnected(c, 10);
    AtomicDag dag(g, uniformShapes(g, {2, 2, 4}));
    const auto [clo, chi] = dag.layerAtoms(c, 0);
    const auto [flo, fhi] = dag.layerAtoms(f, 0);
    ASSERT_EQ(fhi - flo, 3); // 10 outputs in channel tiles of 4
    for (AtomId atom = flo; atom < fhi; ++atom)
        EXPECT_EQ(dag.depCount(atom), chi - clo); // every producer tile
}

TEST(AtomicDag, BatchReplicatesWithoutCrossEdges)
{
    const Graph g = models::tinyResidual();
    AtomicDagOptions opts;
    opts.batch = 3;
    AtomicDag dag(g, uniformShapes(g, {8, 8, 8}), opts);

    AtomicDag single(g, uniformShapes(g, {8, 8, 8}));
    EXPECT_EQ(dag.size(), 3 * single.size());

    for (const Atom &a : dag.atoms()) {
        for (AtomId dep : dag.depsSpan(a.id))
            EXPECT_EQ(dag.atom(dep).batch, a.batch);
    }
}

TEST(AtomicDag, ConsumersInvertDeps)
{
    const Graph g = models::tinyBranchy();
    AtomicDag dag(g, uniformShapes(g, {8, 8, 16}));
    for (const Atom &a : dag.atoms()) {
        for (AtomId dep : dag.depsSpan(a.id)) {
            const auto consumers = dag.consumers(dep);
            EXPECT_NE(std::find(consumers.begin(), consumers.end(),
                                a.id),
                      consumers.end());
        }
    }
}

TEST(AtomicDag, DepBytesBoundedByProducerTiles)
{
    const Graph g = models::tinyResidual();
    AtomicDag dag(g, uniformShapes(g, {8, 8, 8}));
    for (const Atom &a : dag.atoms()) {
        const auto ids = dag.depsSpan(a.id);
        const auto bytes = dag.depBytesSpan(a.id);
        ASSERT_EQ(ids.size(), bytes.size());
        for (std::size_t i = 0; i < ids.size(); ++i) {
            EXPECT_GT(bytes[i], 0u);
            EXPECT_LE(bytes[i], dag.ofmapBytes(ids[i]));
        }
    }
}

TEST(AtomicDag, AlignedOneToOneEdgesMoveWholeTiles)
{
    Graph g;
    const LayerId in = g.input({8, 8, 8});
    const LayerId a = g.conv(in, 8, 1);
    const LayerId b = g.conv(a, 8, 1); // 1x1: perfectly aligned tiles
    (void)b;
    AtomicDag dag(g, uniformShapes(g, {4, 4, 8}));
    const auto [blo, bhi] = dag.layerAtoms(b, 0);
    for (AtomId atom = blo; atom < bhi; ++atom) {
        const auto ids = dag.depsSpan(atom);
        const auto bytes = dag.depBytesSpan(atom);
        ASSERT_EQ(ids.size(), 1u);
        EXPECT_EQ(bytes[0], dag.ofmapBytes(ids[0]));
    }
}

TEST(AtomicDag, WorkloadMatchesAtomTile)
{
    Graph g;
    const LayerId in = g.input({10, 10, 8});
    const LayerId c = g.conv(in, 8, 3, 1, 1);
    AtomicDag dag(g, uniformShapes(g, {4, 4, 8}));
    const auto [lo, hi] = dag.layerAtoms(c, 0);
    MacCount total = 0;
    for (AtomId a = lo; a < hi; ++a) {
        const auto w = dag.workload(a);
        EXPECT_EQ(w.h, dag.atom(a).tileH());
        EXPECT_EQ(w.co, dag.atom(a).tileC());
        EXPECT_EQ(w.ci, 8);
        total += w.macs();
    }
    EXPECT_EQ(total, g.layer(c).macs());
}

TEST(AtomicDag, OfmapAndWeightBytes)
{
    Graph g;
    const LayerId in = g.input({8, 8, 8});
    const LayerId c = g.conv(in, 16, 3, 1, 1);
    AtomicDag dag(g, uniformShapes(g, {4, 4, 8}));
    const auto [lo, hi] = dag.layerAtoms(c, 0);
    (void)hi;
    EXPECT_EQ(dag.ofmapBytes(lo), 4u * 4 * 8);
    EXPECT_EQ(dag.weightBytes(lo), 9u * 8 * 8);
}

TEST(AtomicDag, LayerDepthForwarded)
{
    const Graph g = models::tinyResidual();
    AtomicDag dag(g, uniformShapes(g, {8, 8, 8}));
    const auto depths = g.depths();
    for (const Atom &a : dag.atoms()) {
        EXPECT_EQ(dag.layerDepth(a.layer),
                  depths[static_cast<std::size_t>(a.layer)]);
    }
}

TEST(AtomicDag, MacAtomCount)
{
    Graph g;
    const LayerId in = g.input({8, 8, 8});
    const LayerId c = g.conv(in, 8, 1);
    g.pool(c, 2);
    AtomicDag dag(g, uniformShapes(g, {8, 8, 8}));
    EXPECT_EQ(dag.macAtomCount(), 1u);
    EXPECT_EQ(dag.size(), 2u);
}

TEST(AtomicDag, RejectsBadArguments)
{
    Graph g;
    const LayerId in = g.input({8, 8, 8});
    g.conv(in, 8, 1);
    AtomicDagOptions opts;
    opts.batch = 0;
    EXPECT_THROW(AtomicDag(g, uniformShapes(g, {4, 4, 4}), opts),
                 ConfigError);
    EXPECT_THROW(AtomicDag(g, {}, AtomicDagOptions{}), ConfigError);
}

TEST(AtomicDag, StridedConvDependencies)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1);
    const LayerId b = g.conv(a, 4, 3, 2, 1); // stride 2 -> 4x4 output
    AtomicDag dag(g, uniformShapes(g, {4, 4, 4}));
    const auto [blo, bhi] = dag.layerAtoms(b, 0);
    ASSERT_EQ(bhi - blo, 1);
    // Output rows 0..3 need input rows -1..7 -> all producer tiles.
    EXPECT_EQ(dag.depCount(blo), 4);
}

} // namespace
} // namespace ad::core
