/**
 * @file
 * Golden regression test over the Table-I model zoo: layer counts and
 * parameter counts of all eight workloads pinned exactly. Any edit to a
 * zoo builder (or to the shape/param derivation under it) that changes
 * these values must update this table consciously.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "models/models.hh"

namespace {

struct Golden
{
    std::size_t layers;       ///< graph.layerCount(): layers sans inputs
    std::int64_t params;      ///< graph.totalParams(): exact weight count
    std::size_t macLayers;    ///< graph.macLayerCount(): PE-array layers
};

/** Exact goldens, computed from the zoo builders at the time this test
 * was written and pinned forever after. */
const std::map<std::string, Golden> kGolden = {
    {"vgg19", {24, 143652544, 19}},
    {"resnet50", {72, 25502912, 54}},
    {"resnet152", {208, 60040384, 156}},
    {"resnet1001", {1338, 10178480, 1004}},
    {"inception_v3", {120, 23799136, 95}},
    {"nasnet", {299, 3702760, 170}},
    {"pnasnet", {228, 3739554, 155}},
    {"efficientnet", {60, 4608992, 50}},
};

TEST(TableOneGolden, EveryModelMatchesExactly)
{
    const auto &entries = ad::models::tableOneModels();
    ASSERT_EQ(entries.size(), kGolden.size());
    for (const auto &entry : entries) {
        SCOPED_TRACE(entry.name);
        const auto it = kGolden.find(entry.name);
        ASSERT_NE(it, kGolden.end())
            << "zoo model missing from the golden table";
        const auto graph = entry.build();
        EXPECT_EQ(graph.layerCount(), it->second.layers);
        EXPECT_EQ(graph.totalParams(), it->second.params);
        EXPECT_EQ(graph.macLayerCount(), it->second.macLayers);
    }
}

TEST(TableOneGolden, RegistryIsConsistent)
{
    for (const auto &entry : ad::models::tableOneModels()) {
        const auto graph = ad::models::buildByName(entry.name);
        EXPECT_EQ(graph.layerCount(),
                  kGolden.at(entry.name).layers);
    }
}

} // namespace
