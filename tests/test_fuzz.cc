/**
 * @file
 * Randomized differential fuzzing across the whole stack: 50 seeded
 * random graphs, each run through every baseline executor and the
 * atomic-dataflow pipeline, with
 *  - structural schedule validation and conservation audits on every
 *    strategy that produces a schedule, and
 *  - bit-identical ExecutionReports asserted between 1-thread and
 *    4-thread runs (the deterministic thread-pool contract).
 *
 * The serving layer rides the same harness: 50 seeded arrival traces
 * (Poisson and bursty, varying rates, deadlines, and queue bounds) are
 * served end to end, with queue/deadline invariants checked per request
 * and every executed plan passing the conservation audits.
 */

#include <gtest/gtest.h>

#include "baselines/cnn_partition.hh"
#include "baselines/il_pipe.hh"
#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "check/conservation.hh"
#include "core/orchestrator.hh"
#include "core/validation.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"
#include "sim/system.hh"
#include "testing_support/random_graph.hh"
#include "util/thread_pool.hh"

namespace {

using ad::sim::ExecutionReport;
using ad::util::ThreadPool;

constexpr std::uint64_t kSeeds = 50;

ad::sim::SystemConfig
smallSystem()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    return system;
}

/** Run @p body under @p threads workers, restoring nothing: the pool is
 * global, so each call pins the count it needs. */
template <typename Fn>
auto
withThreads(int threads, Fn &&body)
{
    ThreadPool::setGlobalThreads(threads);
    return body();
}

/** Assert validateSchedule() and the conservation audits are clean. */
void
expectCleanExecution(const ad::core::AtomicDag &dag,
                     const ad::core::Schedule &schedule,
                     const ad::sim::SystemConfig &system,
                     const ExecutionReport &report)
{
    for (const auto &v :
         ad::core::validateSchedule(dag, schedule, system.engines()))
        ADD_FAILURE() << ad::core::violationKindName(v.kind) << ": "
                      << v.what;
    for (const auto &v :
         ad::check::auditExecution(dag, schedule, system, report))
        ADD_FAILURE() << ad::check::auditKindName(v.kind) << ": "
                      << v.what;
}

TEST(Fuzz, LayerSequentialIsValidAuditedAndDeterministic)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        ad::baselines::LsOptions options;
        options.batch = 1 + static_cast<int>(seed % 2);
        const ad::baselines::LayerSequential ls(system, options);

        const auto one = withThreads(1, [&] { return ls.run(graph); });
        const auto four = withThreads(4, [&] { return ls.run(graph); });
        EXPECT_TRUE(one.bitIdentical(four))
            << "LS report differs across threads";

        const auto plan = ls.plan(graph);
        expectCleanExecution(*plan.dag, plan.schedule, system, one);
    }
}

TEST(Fuzz, AnalyticBaselinesAreDeterministic)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);

        ad::baselines::CnnPOptions cnnp;
        cnnp.batch = 1 + static_cast<int>(seed % 2);
        const ad::baselines::CnnPartition cnn(system, cnnp);
        const auto cnn_one =
            withThreads(1, [&] { return cnn.run(graph); });
        const auto cnn_four =
            withThreads(4, [&] { return cnn.run(graph); });
        EXPECT_TRUE(cnn_one.bitIdentical(cnn_four))
            << "CNN-Partition report differs across threads";

        ad::baselines::IlPipeOptions pipe;
        pipe.batch = cnnp.batch;
        const ad::baselines::IlPipe il(system, pipe);
        const auto il_one =
            withThreads(1, [&] { return il.run(graph); });
        const auto il_four =
            withThreads(4, [&] { return il.run(graph); });
        EXPECT_TRUE(il_one.bitIdentical(il_four))
            << "IL-Pipe report differs across threads";
    }
}

TEST(Fuzz, RammerIsValidAuditedAndDeterministic)
{
    const auto system = smallSystem();
    // Rammer disables distributed-buffer reuse; the audit must judge the
    // report against the configuration that actually executed.
    auto audited = system;
    audited.onChipReuse = false;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        const ad::baselines::RammerScheduler rammer(system);

        const auto one =
            withThreads(1, [&] { return rammer.plan(graph); });
        const auto four =
            withThreads(4, [&] { return rammer.run(graph); });
        EXPECT_TRUE(one.report.bitIdentical(four))
            << "Rammer report differs across threads";

        expectCleanExecution(*one.dag, one.schedule, audited,
                             one.report);
    }
}

TEST(Fuzz, AtomicDataflowIsValidAuditedAndDeterministic)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        ad::core::OrchestratorOptions options;
        options.batch = 1 + static_cast<int>(seed % 2);
        // Full SA atom-generation search on a slice of the seeds (it
        // dominates runtime); the even-partition ablation elsewhere
        // still drives the identical scheduler/mapper/simulator path.
        options.atomGen = seed % 10 == 0
                              ? ad::core::AtomGenMode::Sa
                              : ad::core::AtomGenMode::EvenPartition;
        const ad::core::Orchestrator orchestrator(system, options);

        const auto one =
            withThreads(1, [&] { return orchestrator.run(graph); });
        const auto four =
            withThreads(4, [&] { return orchestrator.run(graph); });
        EXPECT_TRUE(one.report.bitIdentical(four.report))
            << "AD report differs across threads";

        expectCleanExecution(*one.dag, one.schedule, system,
                             one.report);
    }
}

TEST(Fuzz, ServedTracesHoldInvariantsAndAuditClean)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);

        ad::serve::StreamOptions stream;
        stream.kind = seed % 2 == 0 ? ad::serve::ArrivalKind::Poisson
                                    : ad::serve::ArrivalKind::Bursty;
        stream.ratePerSec = 20.0 + static_cast<double>(seed % 7) * 140.0;
        stream.requests = 8 + static_cast<int>(seed % 5);
        stream.seed = seed;
        // Every third seed runs with deadlines tighter than a cold
        // plan, forcing the degradation path.
        stream.deadlineMs = seed % 3 == 0 ? 5.0 : 80.0;
        stream.freqGhz = system.engine.freqGhz;
        stream.mix = ad::serve::resolveMix("tinymix");
        const auto trace = ad::serve::generateArrivals(stream);

        ad::serve::ServeOptions options;
        options.queueCapacity = 2 + seed % 4;
        options.orchestrator.atomGen =
            ad::core::AtomGenMode::EvenPartition;
        const auto serveAll = [&](int threads) {
            return withThreads(threads, [&] {
                ad::serve::ServeLoop loop(system, options);
                return loop.run(trace, stream.mix);
            });
        };
        const auto report = serveAll(1);

        EXPECT_EQ(report.admitted + report.rejected, trace.size());
        EXPECT_EQ(report.completed, report.admitted);
        EXPECT_LE(report.peakQueueDepth, options.queueCapacity);
        ASSERT_EQ(report.outcomes.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            SCOPED_TRACE(testing::Message() << "request=" << i);
            const auto &out = report.outcomes[i];
            EXPECT_EQ(out.arrival, trace[i].arrival);
            if (!out.admitted) {
                EXPECT_FALSE(out.plan);
                continue;
            }
            EXPECT_GE(out.start, out.arrival);
            EXPECT_GE(out.finish, out.start);
            EXPECT_EQ(out.deadlineMiss, out.finish > out.deadline);
            ASSERT_TRUE(out.plan);
            if (out.plan->dag != nullptr) {
                expectCleanExecution(*out.plan->dag,
                                     out.plan->schedule, system,
                                     out.plan->report);
            }
        }

        if (seed % 10 == 0) {
            EXPECT_TRUE(report.bitIdentical(serveAll(4)))
                << "serve report differs across threads";
        }
    }
}

} // namespace
