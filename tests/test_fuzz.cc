/**
 * @file
 * Randomized differential fuzzing across the whole stack: 50 seeded
 * random graphs, each run through every baseline executor and the
 * atomic-dataflow pipeline, with
 *  - structural schedule validation and conservation audits on every
 *    strategy that produces a schedule, and
 *  - bit-identical ExecutionReports asserted between 1-thread and
 *    4-thread runs (the deterministic thread-pool contract).
 *
 * The serving layer rides the same harness: 50 seeded arrival traces
 * (Poisson and bursty, varying rates, deadlines, and queue bounds) are
 * served end to end, with queue/deadline invariants checked per request
 * and every executed plan passing the conservation audits.
 */

#include <gtest/gtest.h>

#include "baselines/cnn_partition.hh"
#include "baselines/dtt.hh"
#include "baselines/il_pipe.hh"
#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "check/brute_force.hh"
#include "check/conservation.hh"
#include "core/orchestrator.hh"
#include "core/validation.hh"
#include "engine/cached_cost_model.hh"
#include "serve/plan_cache.hh"
#include "serve/plan_store.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"
#include "sim/system.hh"
#include "testing_support/random_graph.hh"
#include "util/thread_pool.hh"

namespace {

using ad::sim::ExecutionReport;
using ad::util::ThreadPool;

constexpr std::uint64_t kSeeds = 50;

ad::sim::SystemConfig
smallSystem()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    return system;
}

/** Run @p body under @p threads workers, restoring nothing: the pool is
 * global, so each call pins the count it needs. */
template <typename Fn>
auto
withThreads(int threads, Fn &&body)
{
    ThreadPool::setGlobalThreads(threads);
    return body();
}

/** Assert validateSchedule() and the conservation audits are clean. */
void
expectCleanExecution(const ad::core::AtomicDag &dag,
                     const ad::core::Schedule &schedule,
                     const ad::sim::SystemConfig &system,
                     const ExecutionReport &report)
{
    for (const auto &v :
         ad::core::validateSchedule(dag, schedule, system.engines()))
        ADD_FAILURE() << ad::core::violationKindName(v.kind) << ": "
                      << v.what;
    for (const auto &v :
         ad::check::auditExecution(dag, schedule, system, report))
        ADD_FAILURE() << ad::check::auditKindName(v.kind) << ": "
                      << v.what;
}

TEST(Fuzz, LayerSequentialIsValidAuditedAndDeterministic)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        ad::baselines::LsOptions options;
        options.batch = 1 + static_cast<int>(seed % 2);
        const ad::baselines::LayerSequential ls(system, options);

        const auto one = withThreads(1, [&] { return ls.run(graph); });
        const auto four = withThreads(4, [&] { return ls.run(graph); });
        EXPECT_TRUE(one.bitIdentical(four))
            << "LS report differs across threads";

        const auto plan = ls.plan(graph);
        expectCleanExecution(*plan.dag, plan.schedule, system, one);
    }
}

TEST(Fuzz, AnalyticBaselinesAreDeterministic)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);

        ad::baselines::CnnPOptions cnnp;
        cnnp.batch = 1 + static_cast<int>(seed % 2);
        const ad::baselines::CnnPartition cnn(system, cnnp);
        const auto cnn_one =
            withThreads(1, [&] { return cnn.run(graph); });
        const auto cnn_four =
            withThreads(4, [&] { return cnn.run(graph); });
        EXPECT_TRUE(cnn_one.bitIdentical(cnn_four))
            << "CNN-Partition report differs across threads";

        ad::baselines::IlPipeOptions pipe;
        pipe.batch = cnnp.batch;
        const ad::baselines::IlPipe il(system, pipe);
        const auto il_one =
            withThreads(1, [&] { return il.run(graph); });
        const auto il_four =
            withThreads(4, [&] { return il.run(graph); });
        EXPECT_TRUE(il_one.bitIdentical(il_four))
            << "IL-Pipe report differs across threads";
    }
}

TEST(Fuzz, RammerIsValidAuditedAndDeterministic)
{
    const auto system = smallSystem();
    // Rammer disables distributed-buffer reuse; the audit must judge the
    // report against the configuration that actually executed.
    auto audited = system;
    audited.onChipReuse = false;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        const ad::baselines::RammerScheduler rammer(system);

        const auto one =
            withThreads(1, [&] { return rammer.plan(graph); });
        const auto four =
            withThreads(4, [&] { return rammer.run(graph); });
        EXPECT_TRUE(one.report.bitIdentical(four))
            << "Rammer report differs across threads";

        expectCleanExecution(*one.dag, one.schedule, audited,
                             one.report);
    }
}

TEST(Fuzz, AtomicDataflowIsValidAuditedAndDeterministic)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        ad::core::OrchestratorOptions options;
        options.batch = 1 + static_cast<int>(seed % 2);
        // Full SA atom-generation search on a slice of the seeds (it
        // dominates runtime); the even-partition ablation elsewhere
        // still drives the identical scheduler/mapper/simulator path.
        options.atomGen = seed % 10 == 0
                              ? ad::core::AtomGenMode::Sa
                              : ad::core::AtomGenMode::EvenPartition;
        const ad::core::Orchestrator orchestrator(system, options);

        const auto one =
            withThreads(1, [&] { return orchestrator.run(graph); });
        const auto four =
            withThreads(4, [&] { return orchestrator.run(graph); });
        EXPECT_TRUE(one.report.bitIdentical(four.report))
            << "AD report differs across threads";

        expectCleanExecution(*one.dag, one.schedule, system,
                             one.report);
    }
}

TEST(Fuzz, SurrogateScreenedPlansAuditCleanAndStayNearUnscreened)
{
    const auto system = smallSystem();
    // Pinned quality tolerance for screened planning, matching the
    // bench_serve surrogate cell: a screened plan may trade at most 10%
    // cycles for its cold-plan speedup. Raising it needs a re-measured
    // EXPERIMENTS.md table, not a casual bump.
    constexpr double kMaxCycleDrift = 1.10;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        ad::core::OrchestratorOptions options;
        options.batch = 1 + static_cast<int>(seed % 2);
        // Full SA search on a slice of the seeds (it dominates
        // runtime); the even-partition ablation elsewhere still drives
        // the screened trial loop in the orchestrator.
        options.atomGen = seed % 10 == 0
                              ? ad::core::AtomGenMode::Sa
                              : ad::core::AtomGenMode::EvenPartition;

        options.surrogate = false;
        ad::engine::CachedCostModel::clearSharedStores();
        const ad::core::Orchestrator unscreened(system, options);
        const auto exact =
            withThreads(1, [&] { return unscreened.run(graph); });

        options.surrogate = true;
        ad::engine::CachedCostModel::clearSharedStores();
        const ad::core::Orchestrator screened(system, options);
        const auto one =
            withThreads(1, [&] { return screened.run(graph); });
        const auto four =
            withThreads(4, [&] { return screened.run(graph); });
        EXPECT_TRUE(one.report.bitIdentical(four.report))
            << "screened report differs across threads";

        expectCleanExecution(*one.dag, one.schedule, system,
                             one.report);

        // Screened planning skips exact simulation of surrogate-ranked
        // losers, so its plan may differ — but never by more than the
        // pinned drift against the fully exact pipeline.
        const double drift =
            static_cast<double>(one.report.totalCycles) /
            static_cast<double>(exact.report.totalCycles);
        EXPECT_LE(drift, kMaxCycleDrift)
            << "screened plan drifted: " << one.report.totalCycles
            << " vs unscreened " << exact.report.totalCycles;
    }
}

TEST(Fuzz, DttIsValidAuditedOptimalAndPersistsBitIdentical)
{
    const auto system = smallSystem();
    std::size_t exact_seeds = 0;
    std::size_t oracle_seeds = 0;
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto graph = ad::testing::randomGraph(seed);
        ad::core::OrchestratorOptions options;
        options.batch = 1 + static_cast<int>(seed % 2);
        // SA front half on a slice of the seeds (it dominates
        // runtime); even partition elsewhere still drives the
        // identical search/mapping/simulation path.
        options.atomGen = seed % 10 == 0
                              ? ad::core::AtomGenMode::Sa
                              : ad::core::AtomGenMode::EvenPartition;
        const ad::baselines::DttPlanner planner(system, options);

        const auto one =
            withThreads(1, [&] { return planner.plan(graph); });
        const auto four =
            withThreads(4, [&] { return planner.plan(graph); });
        EXPECT_TRUE(one.report.bitIdentical(four.report))
            << "DTT report differs across threads";
        EXPECT_EQ(one.schedule.mode, four.schedule.mode);
        EXPECT_EQ(one.schedule.rounds.size(),
                  four.schedule.rounds.size());

        expectCleanExecution(*one.dag, one.schedule, system,
                             one.report);

        // Wherever the exhaustive oracle can reach, an exact DTT
        // schedule must attain its optimum — equality, not a bound.
        if (one.schedule.mode == ad::core::SchedMode::Dtt)
            ++exact_seeds;
        if (one.schedule.mode == ad::core::SchedMode::Dtt &&
            one.dag->size() <= 12) {
            ++oracle_seeds;
            const ad::engine::CachedCostModel model(system.engine,
                                                    system.dataflow);
            std::vector<ad::Cycles> cycles(one.dag->size());
            for (std::size_t i = 0; i < one.dag->size(); ++i) {
                cycles[i] = model.cycles(one.dag->workload(
                    static_cast<ad::core::AtomId>(i)));
            }
            const auto cmp = ad::check::assertNotWorseThanBruteForce(
                *one.dag, cycles, system.engines(), one.schedule);
            EXPECT_TRUE(cmp.isOptimal())
                << "DTT makespan " << cmp.makespan
                << " missed the optimum " << cmp.optimalMakespan;
        }

        // Cache-key + store round-trip on a slice of the seeds (disk
        // I/O): a persisted DTT plan must hydrate bitIdentical, as a
        // restarted server would see it.
        if (seed % 10 == 0) {
            const auto key = ad::serve::makePlanKey("DTT", graph,
                                                    system, options);
            ad::serve::PlanStore store(
                testing::TempDir() + "/fuzz_dtt_store");
            ASSERT_TRUE(store.put(key, one));
            const auto loaded = store.load(key);
            ASSERT_TRUE(loaded.has_value());
            EXPECT_TRUE(loaded->report.bitIdentical(one.report));
            EXPECT_EQ(loaded->schedule.mode, one.schedule.mode);
            ASSERT_EQ(loaded->schedule.rounds.size(),
                      one.schedule.rounds.size());
            for (std::size_t t = 0; t < one.schedule.rounds.size();
                 ++t) {
                const auto &a = one.schedule.rounds[t].placements;
                const auto &b = loaded->schedule.rounds[t].placements;
                ASSERT_EQ(a.size(), b.size());
                for (std::size_t i = 0; i < a.size(); ++i) {
                    EXPECT_EQ(a[i].atom, b[i].atom);
                    EXPECT_EQ(a[i].engine, b[i].engine);
                }
            }
            ASSERT_TRUE(loaded->dag);
            EXPECT_EQ(loaded->dag->size(), one.dag->size());
        }
    }
    // Floors so the test cannot silently hollow out: if a gate change
    // ever pushes most fuzz DAGs into the AD fallback, fail loudly
    // instead of passing a vacuous sweep (33/8 at the time of writing).
    EXPECT_GE(exact_seeds, 25u)
        << "too few seeds exercised the exact DTT search";
    EXPECT_GE(oracle_seeds, 5u)
        << "too few seeds reached the brute-force oracle";
}

TEST(Fuzz, ServedTracesHoldInvariantsAndAuditClean)
{
    const auto system = smallSystem();
    for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);

        ad::serve::StreamOptions stream;
        stream.kind = seed % 2 == 0 ? ad::serve::ArrivalKind::Poisson
                                    : ad::serve::ArrivalKind::Bursty;
        stream.ratePerSec = 20.0 + static_cast<double>(seed % 7) * 140.0;
        stream.requests = 8 + static_cast<int>(seed % 5);
        stream.seed = seed;
        // Every third seed runs with deadlines tighter than a cold
        // plan, forcing the degradation path.
        stream.deadlineMs = seed % 3 == 0 ? 5.0 : 80.0;
        stream.freqGhz = system.engine.freqGhz;
        stream.mix = ad::serve::resolveMix("tinymix");
        const auto trace = ad::serve::generateArrivals(stream);

        ad::serve::ServeOptions options;
        options.queueCapacity = 2 + seed % 4;
        options.orchestrator.atomGen =
            ad::core::AtomGenMode::EvenPartition;
        const auto serveAll = [&](int threads) {
            return withThreads(threads, [&] {
                ad::serve::ServeLoop loop(system, options);
                return loop.run(trace, stream.mix);
            });
        };
        const auto report = serveAll(1);

        EXPECT_EQ(report.admitted + report.rejected, trace.size());
        EXPECT_EQ(report.completed, report.admitted);
        EXPECT_LE(report.peakQueueDepth, options.queueCapacity);
        ASSERT_EQ(report.outcomes.size(), trace.size());
        for (std::size_t i = 0; i < trace.size(); ++i) {
            SCOPED_TRACE(testing::Message() << "request=" << i);
            const auto &out = report.outcomes[i];
            EXPECT_EQ(out.arrival, trace[i].arrival);
            if (!out.admitted) {
                EXPECT_FALSE(out.plan);
                continue;
            }
            EXPECT_GE(out.start, out.arrival);
            EXPECT_GE(out.finish, out.start);
            EXPECT_EQ(out.deadlineMiss, out.finish > out.deadline);
            ASSERT_TRUE(out.plan);
            if (out.plan->dag != nullptr) {
                expectCleanExecution(*out.plan->dag,
                                     out.plan->schedule, system,
                                     out.plan->report);
            }
        }

        if (seed % 10 == 0) {
            EXPECT_TRUE(report.bitIdentical(serveAll(4)))
                << "serve report differs across threads";
        }
    }
}

TEST(Fuzz, CoLocatedSubMeshPartitionsStayDisjointAndThreadInvariant)
{
    // Seeded random guillotine partitions of a 4x4 mesh, each serving
    // a two-class trace on 2-3 co-located executors: the partition
    // must stay pairwise engine-disjoint, every admitted request must
    // land on a real executor, and the whole report must be
    // bit-identical across thread counts.
    ad::sim::SystemConfig system;
    system.meshX = 4;
    system.meshY = 4;
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        SCOPED_TRACE(testing::Message() << "seed=" << seed);

        // Guillotine cuts driven by a splitmix of the seed: one full
        // cut, then optionally cut the second piece along the other
        // axis. Shares are proportional to engine counts.
        const std::uint64_t h = (seed + 1) * 0x9E3779B97F4A7C15ULL;
        const bool vertical = (h & 1) != 0;
        const int cut = 1 + static_cast<int>((h >> 1) % 3);
        std::vector<ad::sim::MeshView> views;
        ad::sim::MeshView rest;
        if (vertical) {
            views.push_back(ad::sim::MeshView{0, 0, cut, 4});
            rest = ad::sim::MeshView{cut, 0, 4 - cut, 4};
        } else {
            views.push_back(ad::sim::MeshView{0, 0, 4, cut});
            rest = ad::sim::MeshView{0, cut, 4, 4 - cut};
        }
        if (((h >> 3) & 1) != 0) {
            const int second = 1 + static_cast<int>((h >> 4) % 3);
            if (vertical) {
                views.push_back(ad::sim::MeshView{rest.x0, 0,
                                                  rest.width, second});
                views.push_back(ad::sim::MeshView{
                    rest.x0, second, rest.width, 4 - second});
            } else {
                views.push_back(ad::sim::MeshView{0, rest.y0, second,
                                                  rest.height});
                views.push_back(ad::sim::MeshView{
                    second, rest.y0, 4 - second, rest.height});
            }
        } else {
            views.push_back(rest);
        }
        for (auto &v : views)
            v.hbmShare = static_cast<double>(v.width * v.height) / 16.0;

        std::vector<ad::sim::MeshView> resolved;
        for (const auto &v : views)
            resolved.push_back(v.resolved(4, 4));
        int covered = 0;
        for (std::size_t i = 0; i < resolved.size(); ++i) {
            covered += resolved[i].engines();
            for (std::size_t j = i + 1; j < resolved.size(); ++j) {
                EXPECT_FALSE(resolved[i].overlaps(resolved[j]))
                    << resolved[i].describe() << " vs "
                    << resolved[j].describe();
            }
        }
        EXPECT_EQ(covered, 16) << "guillotine cuts must tile the mesh";

        ad::serve::StreamOptions lat;
        lat.kind = seed % 2 == 0 ? ad::serve::ArrivalKind::Poisson
                                 : ad::serve::ArrivalKind::Bursty;
        lat.ratePerSec = 100.0 + static_cast<double>(seed % 5) * 100.0;
        lat.requests = 6;
        lat.seed = seed;
        lat.freqGhz = system.engine.freqGhz;
        lat.mix = ad::serve::resolveMix("tinymix");
        ad::serve::StreamOptions batch = lat;
        batch.requests = 4;
        batch.deadlineMs = 500.0;
        const auto merged = ad::serve::generateClassArrivals(
            {{ad::serve::SloClass::Latency, lat},
             {ad::serve::SloClass::Batch, batch}});

        ad::serve::ServeOptions options;
        options.submeshes = views;
        options.orchestrator.atomGen =
            ad::core::AtomGenMode::EvenPartition;
        const auto serveAll = [&](int threads) {
            return withThreads(threads, [&] {
                ad::serve::ServeLoop loop(system, options);
                return loop.run(merged.requests, merged.mix);
            });
        };
        const auto report = serveAll(1);

        EXPECT_EQ(report.admitted + report.rejected,
                  merged.requests.size());
        std::uint64_t class_requests = 0;
        for (const auto &cls : report.classes)
            class_requests += cls.requests;
        EXPECT_EQ(class_requests, merged.requests.size());
        for (const auto &out : report.outcomes) {
            if (!out.admitted) {
                EXPECT_EQ(out.submesh, -1);
                continue;
            }
            EXPECT_GE(out.submesh, 0);
            EXPECT_LT(out.submesh, static_cast<int>(views.size()));
            EXPECT_GE(out.start, out.arrival);
            EXPECT_GE(out.finish, out.start);
        }

        if (seed % 4 == 0) {
            EXPECT_TRUE(report.bitIdentical(serveAll(4)))
                << "co-located serve report differs across threads";
        }
    }
}

} // namespace
