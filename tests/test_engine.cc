/**
 * @file
 * Tests for the analytical engine cost model: exact cycle formulas for
 * both dataflows, utilization bounds, byte accounting, and energy
 * monotonicity (property sweeps via TEST_P).
 */

#include <gtest/gtest.h>

#include "engine/cost_model.hh"
#include "graph/graph.hh"
#include "util/common.hh"

namespace ad::engine {
namespace {

EngineConfig
smallConfig()
{
    EngineConfig cfg;
    cfg.peRows = 16;
    cfg.peCols = 16;
    cfg.configCycles = 32;
    return cfg;
}

AtomWorkload
convAtom(int h, int w, int ci, int co, int k = 3, int stride = 1)
{
    AtomWorkload a;
    a.type = graph::OpType::Conv;
    a.h = h;
    a.w = w;
    a.ci = ci;
    a.co = co;
    a.window = {k, k, stride, stride, k / 2, k / 2};
    return a;
}

TEST(DataflowNames, RoundTrip)
{
    EXPECT_EQ(dataflowFromString("kc"), DataflowKind::KcPartition);
    EXPECT_EQ(dataflowFromString("yx"), DataflowKind::YxPartition);
    EXPECT_STREQ(dataflowName(DataflowKind::KcPartition), "KC-P");
    EXPECT_STREQ(dataflowName(DataflowKind::YxPartition), "YX-P");
    EXPECT_THROW(dataflowFromString("rs"), ConfigError);
}

TEST(EngineConfig, ValidateCatchesNonsense)
{
    EngineConfig cfg = smallConfig();
    cfg.peRows = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = smallConfig();
    cfg.freqGhz = 0.0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = smallConfig();
    cfg.bufferBytes = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(CostModelKc, ExactCyclesAlignedConv)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    // 16 input channels on 16 rows, 16 output channels on 16 cols:
    // steady = h*w*k*k*1*1.
    const AtomWorkload a = convAtom(8, 8, 16, 16);
    const Cycles expected_steady = 8ull * 8 * 9;
    EXPECT_EQ(model.cycles(a), expected_steady + 32 + 32);
}

TEST(CostModelKc, ChannelPassesScaleCycles)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    const AtomWorkload one = convAtom(4, 4, 16, 16);
    const AtomWorkload four = convAtom(4, 4, 64, 16); // 4 row passes
    const Cycles steady_one = model.cycles(one) - 64;
    const Cycles steady_four = model.cycles(four) - 64;
    EXPECT_EQ(steady_four, steady_one * 4);
}

TEST(CostModelKc, MisalignedChannelsWasteLanes)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    // ci = 3 (first conv layer): only 3 of 16 rows active.
    const AtomWorkload a = convAtom(16, 16, 3, 16, 7, 2);
    const double util = model.utilization(a);
    EXPECT_LT(util, 3.0 / 16.0 + 0.01);
    EXPECT_GT(util, 0.0);
}

TEST(CostModelKc, DepthwiseUsesKernelRows)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    AtomWorkload a;
    a.type = graph::OpType::DepthwiseConv;
    a.h = 8;
    a.w = 8;
    a.ci = 32;
    a.co = 32;
    a.window = {3, 3, 1, 1, 1, 1};
    // kernel positions (9) on rows, channels (32) on cols: 2 passes.
    EXPECT_EQ(model.cycles(a), 8ull * 8 * 1 * 2 + 64);
}

TEST(CostModelYx, ExactCyclesAlignedTile)
{
    const CostModel model(smallConfig(), DataflowKind::YxPartition);
    const AtomWorkload a = convAtom(16, 16, 4, 8);
    // One 16x16 spatial pass, k*k*ci*co temporal steps.
    EXPECT_EQ(model.cycles(a), 9ull * 4 * 8 + 64);
}

TEST(CostModelYx, SmallTileWastesArray)
{
    const CostModel model(smallConfig(), DataflowKind::YxPartition);
    const AtomWorkload a = convAtom(8, 8, 4, 4);
    // 8x8 tile on a 16x16 array: at most a quarter utilized.
    EXPECT_LE(model.utilization(a), 0.25);
}

TEST(CostModelYx, FcFallbackSpreadsNeurons)
{
    const CostModel model(smallConfig(), DataflowKind::YxPartition);
    AtomWorkload a;
    a.type = graph::OpType::FullyConnected;
    a.h = 1;
    a.w = 1;
    a.ci = 512;
    a.co = 256;
    a.window = {};
    // One neuron per PE: ceil(256/256) * 512 steady cycles.
    EXPECT_EQ(model.cycles(a), 512ull + 64);
}

TEST(CostModel, VectorOpsUseLanes)
{
    EngineConfig cfg = smallConfig();
    cfg.vectorLanes = 16;
    const CostModel model(cfg, DataflowKind::KcPartition);
    AtomWorkload a;
    a.type = graph::OpType::Eltwise;
    a.h = 8;
    a.w = 8;
    a.ci = 16;
    a.co = 16;
    // 1024 outputs * 2 reads / 16 lanes = 128 + config.
    EXPECT_EQ(model.cycles(a), 128ull + 32);
    EXPECT_DOUBLE_EQ(model.utilization(a), 0.0);
}

TEST(CostModel, PoolCyclesIncludeWindow)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    AtomWorkload a;
    a.type = graph::OpType::Pool;
    a.h = 4;
    a.w = 4;
    a.ci = 16;
    a.co = 16;
    a.window = {2, 2, 2, 2, 0, 0};
    // 256 outputs * 4 window elems / 16 lanes = 64 + config.
    EXPECT_EQ(model.cycles(a), 64ull + 32);
}

TEST(CostModel, EvaluateConservesMacs)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    const AtomWorkload a = convAtom(8, 8, 32, 32);
    const CostResult r = model.evaluate(a);
    EXPECT_EQ(r.macs, a.macs());
    EXPECT_EQ(r.macs, 8ull * 8 * 32 * 32 * 9);
}

TEST(CostModel, EvaluateBytesMatchWorkload)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    const AtomWorkload a = convAtom(8, 8, 32, 16);
    const CostResult r = model.evaluate(a);
    EXPECT_EQ(r.ofmapBytes, 8ull * 8 * 16);
    EXPECT_EQ(r.ifmapBytes, 10ull * 10 * 32);
    EXPECT_EQ(r.weightBytes, 9ull * 32 * 16);
    EXPECT_EQ(r.bufferBytes(),
              r.ofmapBytes + r.ifmapBytes + r.weightBytes);
}

TEST(CostModel, EnergyPositiveAndScalesWithWork)
{
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    const CostResult small = model.evaluate(convAtom(4, 4, 16, 16));
    const CostResult big = model.evaluate(convAtom(8, 8, 16, 16));
    EXPECT_GT(small.energyPj, 0.0);
    EXPECT_GT(big.energyPj, small.energyPj);
}

TEST(CostModel, WholeLayerFactoryMatchesLayer)
{
    graph::Graph g;
    const auto in = g.input({16, 16, 8});
    const auto c = g.conv(in, 24, 3, 1, 1);
    const AtomWorkload a = AtomWorkload::wholeLayer(g.layer(c));
    EXPECT_EQ(a.macs(), g.layer(c).macs());
    EXPECT_EQ(a.h, 16);
    EXPECT_EQ(a.co, 24);
}

struct SweepCase
{
    DataflowKind kind;
    int h, w, ci, co, k;
};

class UtilizationSweep : public ::testing::TestWithParam<SweepCase>
{
};

TEST_P(UtilizationSweep, BoundsAndConsistency)
{
    const SweepCase p = GetParam();
    const CostModel model(smallConfig(), p.kind);
    AtomWorkload a = convAtom(p.h, p.w, p.ci, p.co, p.k);
    const CostResult r = model.evaluate(a);

    EXPECT_GT(r.cycles, 0u);
    EXPECT_GE(r.utilization, 0.0);
    EXPECT_LE(r.utilization, 1.0);
    // Utilization must equal macs / (cycles * PEs) by definition.
    EXPECT_NEAR(r.utilization,
                static_cast<double>(r.macs) /
                    (static_cast<double>(r.cycles) * 256.0),
                1e-12);
    // cycles() and evaluate() agree.
    EXPECT_EQ(model.cycles(a), r.cycles);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UtilizationSweep,
    ::testing::Values(
        SweepCase{DataflowKind::KcPartition, 7, 7, 512, 16, 3},
        SweepCase{DataflowKind::KcPartition, 56, 56, 64, 64, 1},
        SweepCase{DataflowKind::KcPartition, 1, 1, 2048, 16, 1},
        SweepCase{DataflowKind::KcPartition, 14, 14, 3, 16, 3},
        SweepCase{DataflowKind::KcPartition, 8, 8, 17, 33, 5},
        SweepCase{DataflowKind::YxPartition, 16, 16, 64, 64, 3},
        SweepCase{DataflowKind::YxPartition, 7, 7, 512, 512, 3},
        SweepCase{DataflowKind::YxPartition, 35, 35, 48, 64, 5},
        SweepCase{DataflowKind::YxPartition, 112, 112, 3, 32, 7}));

class TileMonotonicity : public ::testing::TestWithParam<DataflowKind>
{
};

TEST_P(TileMonotonicity, CyclesNeverShrinkWithTileSize)
{
    const CostModel model(smallConfig(), GetParam());
    Cycles prev = 0;
    Cycles first = 0, last = 0;
    for (int h = 8; h <= 64; h *= 2) {
        const Cycles c = model.cycles(convAtom(h, h, 32, 32));
        EXPECT_GE(c, prev);
        prev = c;
        if (!first)
            first = c;
        last = c;
    }
    EXPECT_GT(last, first);
}

TEST(TileMonotonicityKc, EdgeTilesNeverBeatAlignedOnes)
{
    // Under KC-P, channels are the spatially unrolled dims: a 17-channel
    // tile must never be cheaper per MAC than an aligned 16-channel one.
    const CostModel model(smallConfig(), DataflowKind::KcPartition);
    const CostResult aligned = model.evaluate(convAtom(8, 8, 16, 16));
    const CostResult ragged = model.evaluate(convAtom(8, 8, 17, 17));
    EXPECT_GE(aligned.utilization, ragged.utilization);
}

INSTANTIATE_TEST_SUITE_P(BothDataflows, TileMonotonicity,
                         ::testing::Values(DataflowKind::KcPartition,
                                           DataflowKind::YxPartition));

} // namespace
} // namespace ad::engine
