/**
 * @file
 * Tests for the library extensions beyond the paper's core evaluation:
 * schedule validation, trace rendering, and the Flexible (per-atom
 * reconfigurable) dataflow from the Sec. VI discussion.
 */

#include <gtest/gtest.h>

#include "core/orchestrator.hh"
#include "core/partition.hh"
#include "core/validation.hh"
#include "models/models.hh"
#include "sim/trace.hh"

namespace ad {
namespace {

core::OrchestratorResult
smallRun(engine::DataflowKind dataflow = engine::DataflowKind::KcPartition)
{
    sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    system.dataflow = dataflow;
    core::OrchestratorOptions options;
    options.batch = 2;
    options.sa.maxIterations = 60;
    return core::Orchestrator(system, options)
        .run(models::tinyResidual());
}

TEST(Validation, AcceptsOrchestratorSchedules)
{
    const auto result = smallRun();
    const auto violations =
        core::validateSchedule(*result.dag, result.schedule, 4);
    for (const auto &v : violations)
        ADD_FAILURE() << v.what;
    EXPECT_TRUE(core::scheduleIsValid(*result.dag, result.schedule, 4));
}

TEST(Validation, DetectsMissingAtom)
{
    auto result = smallRun();
    result.schedule.rounds.back().placements.pop_back();
    EXPECT_FALSE(
        core::scheduleIsValid(*result.dag, result.schedule, 4));
}

TEST(Validation, DetectsDoubleBooking)
{
    auto result = smallRun();
    // Find a round with two placements and give both the same engine.
    for (auto &round : result.schedule.rounds) {
        if (round.placements.size() >= 2) {
            round.placements[1].engine = round.placements[0].engine;
            break;
        }
    }
    EXPECT_FALSE(
        core::scheduleIsValid(*result.dag, result.schedule, 4));
}

TEST(Validation, DetectsDependencyInversion)
{
    auto result = smallRun();
    ASSERT_GE(result.schedule.rounds.size(), 2u);
    // Swap the first and last rounds: consumers now precede producers.
    std::swap(result.schedule.rounds.front(),
              result.schedule.rounds.back());
    EXPECT_FALSE(
        core::scheduleIsValid(*result.dag, result.schedule, 4));
}

TEST(Validation, DetectsOutOfRangeEngine)
{
    auto result = smallRun();
    result.schedule.rounds[0].placements[0].engine = 99;
    const auto violations =
        core::validateSchedule(*result.dag, result.schedule, 4);
    EXPECT_FALSE(violations.empty());
}

TEST(Trace, TextListsRoundsAndLayers)
{
    const auto result = smallRun();
    const std::string text =
        sim::renderScheduleText(*result.dag, result.schedule);
    EXPECT_NE(text.find("round 0:"), std::string::npos);
    EXPECT_NE(text.find("engine"), std::string::npos);
    EXPECT_NE(text.find("conv_a"), std::string::npos);
}

TEST(Trace, TextElidesLongSchedules)
{
    const auto result = smallRun();
    sim::TraceOptions options;
    options.maxRounds = 1;
    const std::string text = sim::renderScheduleText(
        *result.dag, result.schedule, options);
    EXPECT_NE(text.find("more rounds"), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndAllPlacements)
{
    const auto result = smallRun();
    const std::string csv =
        sim::renderScheduleCsv(*result.dag, result.schedule);
    const std::size_t lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(),
                                            '\n'));
    EXPECT_EQ(lines, result.schedule.atomCount() + 1);
    EXPECT_EQ(csv.rfind("round,engine,atom,layer,sample", 0), 0u);
}

TEST(Trace, OccupancyCountsEveryPlacement)
{
    const auto result = smallRun();
    const std::string occupancy =
        sim::renderEngineOccupancy(result.schedule, 4);
    EXPECT_NE(occupancy.find("engine 0"), std::string::npos);
    EXPECT_NE(occupancy.find("engine 3"), std::string::npos);
}

TEST(Flexible, ParsesAndPrints)
{
    EXPECT_EQ(engine::dataflowFromString("flex"),
              engine::DataflowKind::Flexible);
    EXPECT_STREQ(engine::dataflowName(engine::DataflowKind::Flexible),
                 "Flex");
}

TEST(Flexible, NeverWorseThanEitherFixedMapping)
{
    const engine::EngineConfig cfg;
    const engine::CostModel kc(cfg, engine::DataflowKind::KcPartition);
    const engine::CostModel yx(cfg, engine::DataflowKind::YxPartition);
    const engine::CostModel flex(cfg, engine::DataflowKind::Flexible);

    for (int h : {4, 16, 56}) {
        for (int ci : {3, 16, 256}) {
            engine::AtomWorkload atom;
            atom.type = graph::OpType::Conv;
            atom.h = h;
            atom.w = h;
            atom.ci = ci;
            atom.co = 32;
            atom.window = {3, 3, 1, 1, 1, 1};
            const Cycles best =
                std::min(kc.cycles(atom), yx.cycles(atom));
            EXPECT_LE(flex.cycles(atom),
                      best + cfg.reconfigCycles);
            EXPECT_GE(flex.cycles(atom), best);
        }
    }
}

TEST(Flexible, PicksYxForDepthwise)
{
    // Depthwise convolutions on large feature maps favour the spatial
    // mapping; Flexible must capture that.
    engine::EngineConfig cfg;
    const engine::CostModel kc(cfg, engine::DataflowKind::KcPartition);
    const engine::CostModel flex(cfg, engine::DataflowKind::Flexible);
    engine::AtomWorkload atom;
    atom.type = graph::OpType::DepthwiseConv;
    atom.h = 64;
    atom.w = 64;
    atom.ci = 8;
    atom.co = 8;
    atom.window = {3, 3, 1, 1, 1, 1};
    EXPECT_LT(flex.cycles(atom), kc.cycles(atom));
}

TEST(Flexible, EndToEndPipelineRuns)
{
    const auto result = smallRun(engine::DataflowKind::Flexible);
    EXPECT_GT(result.report.totalCycles, 0u);
    EXPECT_TRUE(core::scheduleIsValid(*result.dag, result.schedule, 4));
}

TEST(Flexible, BeatsFixedDataflowsOnMixedWorkload)
{
    // EfficientNet mixes depthwise (YX-friendly) and 1x1 (KC-friendly)
    // layers: a reconfigurable array should beat both fixed mappings.
    sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    core::OrchestratorOptions options;
    options.batch = 1;
    options.sa.maxIterations = 100;
    const auto graph = models::tinyLinear(64);

    Cycles best_fixed = 0;
    for (auto kind : {engine::DataflowKind::KcPartition,
                      engine::DataflowKind::YxPartition}) {
        system.dataflow = kind;
        const auto r = core::Orchestrator(system, options).run(graph);
        if (best_fixed == 0 || r.report.totalCycles < best_fixed)
            best_fixed = r.report.totalCycles;
    }
    system.dataflow = engine::DataflowKind::Flexible;
    const auto flex = core::Orchestrator(system, options).run(graph);
    EXPECT_LE(flex.report.totalCycles, best_fixed * 11 / 10);
}

TEST(AtomBudget, CoarsensShapesToFit)
{
    sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    core::OrchestratorOptions options;
    options.batch = 4;
    options.sa.maxIterations = 60;
    options.maxAtoms = 200; // force aggressive coarsening
    const auto result = core::Orchestrator(system, options)
                            .run(models::tinyLinear(64));
    // The budget is honoured within one coarsening step's slack.
    EXPECT_LE(result.dag->size(), 400u);
    EXPECT_TRUE(core::scheduleIsValid(*result.dag, result.schedule, 4));
}

TEST(AtomBudget, DefaultKeepsSaShapes)
{
    sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    core::OrchestratorOptions options;
    options.sa.maxIterations = 60;
    const auto small = core::Orchestrator(system, options)
                           .run(models::tinyLinear(64));
    EXPECT_LT(small.dag->size(), options.maxAtoms);
}

} // namespace
} // namespace ad
