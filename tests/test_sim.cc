/**
 * @file
 * Tests for the simulation substrate: the discrete-event kernel and the
 * round-synchronized system simulator.
 */

#include <gtest/gtest.h>

#include "core/orchestrator.hh"
#include "core/partition.hh"
#include "models/models.hh"
#include "sim/event_queue.hh"
#include "sim/system.hh"

namespace ad::sim {
namespace {

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&](Tick) { order.push_back(3); });
    q.schedule(10, [&](Tick) { order.push_back(1); });
    q.schedule(20, [&](Tick) { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, TiesBreakByInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&](Tick) { order.push_back(1); });
    q.schedule(5, [&](Tick) { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, HandlersMayScheduleMore)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(1, [&](Tick t) {
        fired.push_back(t);
        q.schedule(t + 5, [&](Tick t2) { fired.push_back(t2); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{1, 6}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue q;
    int count = 0;
    q.schedule(10, [&](Tick) { ++count; });
    q.schedule(20, [&](Tick) { ++count; });
    q.runUntil(15);
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_EQ(q.now(), 15u);
    q.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, RejectsPastEvents)
{
    EventQueue q;
    q.schedule(10, [](Tick) {});
    q.run();
    EXPECT_THROW(q.schedule(5, [](Tick) {}), InternalError);
}

TEST(EventQueue, ResetClears)
{
    EventQueue q;
    q.schedule(10, [](Tick) {});
    q.reset();
    EXPECT_EQ(q.pending(), 0u);
    EXPECT_EQ(q.now(), 0u);
}

SystemConfig
tinySystem()
{
    SystemConfig sys;
    sys.meshX = 2;
    sys.meshY = 2;
    return sys;
}

/** Build a mapped schedule for a graph via the orchestrator pipeline. */
core::OrchestratorResult
runTiny(const graph::Graph &g, const SystemConfig &sys, int batch = 1,
        bool reuse = true)
{
    core::OrchestratorOptions opts;
    opts.batch = batch;
    opts.sa.maxIterations = 50;
    opts.onChipReuse = reuse;
    const core::Orchestrator orch(sys, opts);
    return orch.run(g);
}

TEST(SystemConfig, Validate)
{
    SystemConfig sys = tinySystem();
    EXPECT_NO_THROW(sys.validate());
    sys.meshX = 0;
    EXPECT_THROW(sys.validate(), ConfigError);
    EXPECT_EQ(tinySystem().engines(), 4);
    EXPECT_EQ(tinySystem().totalPes(), 4 * 256);
}

TEST(SystemSimulator, ReportFieldsAreSane)
{
    const graph::Graph g = models::tinyResidual();
    const auto result = runTiny(g, tinySystem());
    const ExecutionReport &r = result.report;
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GT(r.rounds, 0u);
    EXPECT_GE(r.peUtilization, 0.0);
    EXPECT_LE(r.peUtilization, 1.0);
    EXPECT_GE(r.computeUtilization, r.peUtilization - 1e-9);
    EXPECT_GE(r.onChipReuseRatio, 0.0);
    EXPECT_LE(r.onChipReuseRatio, 1.0);
    EXPECT_GE(r.nocOverhead, 0.0);
    EXPECT_LE(r.nocOverhead + r.memOverhead, 1.0 + 1e-9);
    EXPECT_GT(r.totalEnergyPj(), 0.0);
    EXPECT_GT(r.hbmReadBytes, 0u); // weights + external input
}

TEST(SystemSimulator, LatencyAndThroughputHelpers)
{
    ExecutionReport r;
    r.totalCycles = 500'000;
    r.batch = 2;
    EXPECT_DOUBLE_EQ(r.latencyMs(0.5), 1.0);
    EXPECT_DOUBLE_EQ(r.throughputFps(0.5), 2000.0);
}

TEST(SystemSimulator, EnergyBreakdownSumsToTotal)
{
    const graph::Graph g = models::tinyBranchy();
    const ExecutionReport r = runTiny(g, tinySystem()).report;
    EXPECT_NEAR(r.totalEnergyPj(),
                r.computeEnergyPj + r.nocEnergyPj + r.hbmEnergyPj +
                    r.staticEnergyPj,
                1e-6);
    EXPECT_GT(r.computeEnergyPj, 0.0);
    EXPECT_GT(r.staticEnergyPj, 0.0);
}

TEST(SystemSimulator, DisablingReuseForcesDram)
{
    const graph::Graph g = models::tinyResidual();
    const ExecutionReport with = runTiny(g, tinySystem(), 1, true).report;
    const ExecutionReport without =
        runTiny(g, tinySystem(), 1, false).report;
    EXPECT_EQ(without.onChipReuseRatio, 0.0);
    EXPECT_GT(without.hbmReadBytes, with.hbmReadBytes);
    EXPECT_GE(without.totalCycles, with.totalCycles);
}

TEST(SystemSimulator, BatchRaisesThroughput)
{
    const graph::Graph g = models::tinyLinear(64);
    const ExecutionReport one = runTiny(g, tinySystem(), 1).report;
    const ExecutionReport four = runTiny(g, tinySystem(), 4).report;
    EXPECT_GT(four.throughputFps(0.5), one.throughputFps(0.5));
    EXPECT_GT(four.totalCycles, one.totalCycles);
}

TEST(SystemSimulator, DoubleBufferNeverHurts)
{
    const graph::Graph g = models::tinyLinear(64);
    SystemConfig on = tinySystem();
    SystemConfig off = tinySystem();
    off.doubleBuffer = false;

    core::OrchestratorOptions opts;
    opts.sa.maxIterations = 50;
    const auto result = core::Orchestrator(on, opts).run(g);

    const SystemSimulator sim_on(on);
    const SystemSimulator sim_off(off);
    const auto r_on = sim_on.execute(*result.dag, result.schedule);
    const auto r_off = sim_off.execute(*result.dag, result.schedule);
    EXPECT_LE(r_on.totalCycles, r_off.totalCycles);
}

TEST(SystemSimulator, DeterministicExecution)
{
    const graph::Graph g = models::tinyBranchy();
    const auto result = runTiny(g, tinySystem());
    const SystemSimulator sim(tinySystem());
    const auto a = sim.execute(*result.dag, result.schedule);
    const auto b = sim.execute(*result.dag, result.schedule);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.totalEnergyPj(), b.totalEnergyPj());
}

TEST(SystemSimulator, AtomsAllRetire)
{
    const graph::Graph g = models::tinyResidual();
    const auto result = runTiny(g, tinySystem(), 2);
    const ExecutionReport &r = result.report;
    EXPECT_EQ(r.storedAtoms + r.unstoredAtoms, result.dag->size());
}

} // namespace
} // namespace ad::sim
