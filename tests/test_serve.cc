/**
 * @file
 * Serving-subsystem tests: PlanCache content addressing, byte-budget
 * eviction, and hit/miss determinism; arrival-stream replayability; and
 * the ServeLoop's degradation, queue-bound, warm-cache, and
 * thread-invariance contracts.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/planners.hh"
#include "check/conservation.hh"
#include "models/models.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/plan_cache.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"
#include "sim/system.hh"
#include "util/thread_pool.hh"

namespace {

using ad::serve::PlanCache;
using ad::serve::PlanKey;
using ad::serve::Request;
using ad::util::ThreadPool;

ad::sim::SystemConfig
smallSystem()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    return system;
}

/** Fast orchestrator configuration for cache/loop tests. */
ad::core::OrchestratorOptions
fastOptions()
{
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    return options;
}

ad::core::PlanResult
planFresh(const std::string &strategy, const std::string &net,
          const ad::sim::SystemConfig &system,
          const ad::core::OrchestratorOptions &options)
{
    const auto graph = ad::models::buildByName(net);
    return ad::baselines::makePlanner({strategy, system, {}, options})
        ->plan(graph);
}

template <typename Fn>
auto
withThreads(int threads, Fn &&body)
{
    ThreadPool::setGlobalThreads(threads);
    return body();
}

// ---------------------------------------------------------------------
// PlanKey

TEST(PlanKey, DistinguishesStrategySystemOptionsAndGraph)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto linear = ad::models::tinyLinear();
    const auto residual = ad::models::tinyResidual();

    const PlanKey base =
        ad::serve::makePlanKey("AD", linear, system, options);
    EXPECT_EQ(base,
              ad::serve::makePlanKey("AD", linear, system, options));
    EXPECT_NE(base,
              ad::serve::makePlanKey("LS", linear, system, options));
    EXPECT_NE(base,
              ad::serve::makePlanKey("AD", residual, system, options));

    auto other_system = system;
    other_system.meshX = 4;
    EXPECT_NE(base, ad::serve::makePlanKey("AD", linear, other_system,
                                           options));

    auto other_options = options;
    other_options.batch = 2;
    EXPECT_NE(base, ad::serve::makePlanKey("AD", linear, system,
                                           other_options));
    other_options = options;
    other_options.sa.seed = 99;
    EXPECT_NE(base, ad::serve::makePlanKey("AD", linear, system,
                                           other_options));
}

// ---------------------------------------------------------------------
// PlanCache

TEST(PlanCache, HitReturnsPlanBitIdenticalToFreshPlan)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto graph = ad::models::tinyLinear();
    const PlanKey key =
        ad::serve::makePlanKey("AD", graph, system, options);

    PlanCache cache(ad::Bytes{64} << 20);
    EXPECT_EQ(cache.lookup(key), nullptr);

    auto inserted = cache.insert(
        key, planFresh("AD", "tiny_linear", system, options));
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit);
    EXPECT_EQ(hit.get(), inserted.get()) << "hit must share the entry";

    const auto fresh = planFresh("AD", "tiny_linear", system, options);
    EXPECT_TRUE(hit->report.bitIdentical(fresh.report))
        << "cached plan must replay bit-identically to a fresh plan";

    const auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_GT(stats.bytes, 0u);
}

TEST(PlanCache, EvictionKeepsBytesWithinBudgetAndPrefersLru)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const std::vector<std::string> nets{"tiny_linear", "tiny_residual",
                                        "tiny_branchy"};

    // Size the budget to roughly two entries so the third insert evicts.
    const auto probe =
        planFresh("AD", nets[0], system, options);
    const ad::Bytes one = PlanCache::planBytes(
        ad::serve::makePlanKey(
            "AD", ad::models::buildByName(nets[0]), system, options),
        probe);
    PlanCache cache(one * 5 / 2);

    std::vector<PlanKey> keys;
    for (const auto &net : nets) {
        const auto graph = ad::models::buildByName(net);
        keys.push_back(
            ad::serve::makePlanKey("AD", graph, system, options));
        cache.insert(keys.back(),
                     planFresh("AD", net, system, options));
        EXPECT_LE(cache.stats().bytes, cache.budgetBytes())
            << "cache bytes must never exceed the budget";
    }
    const auto stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LT(stats.entries, nets.size());
    // LRU: the oldest entry went first; the newest is still resident.
    EXPECT_TRUE(cache.lookup(keys.back()));
    EXPECT_FALSE(cache.lookup(keys.front()));
}

TEST(PlanCache, OversizePlanIsNeverAdmitted)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto graph = ad::models::tinyLinear();
    const PlanKey key =
        ad::serve::makePlanKey("AD", graph, system, options);

    PlanCache cache(ad::Bytes{1024}); // smaller than any real plan
    const auto shared = cache.insert(
        key, planFresh("AD", "tiny_linear", system, options));
    ASSERT_TRUE(shared) << "caller still gets the plan back";
    EXPECT_EQ(cache.lookup(key), nullptr);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.oversize, 1u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
}

TEST(PlanCache, HitMissSequenceIsIdenticalAcrossThreadsAndRuns)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto mix = ad::serve::resolveMix("tinymix");

    ad::serve::StreamOptions stream;
    stream.requests = 16;
    stream.seed = 11;
    stream.ratePerSec = 400.0;
    stream.freqGhz = system.engine.freqGhz;
    stream.mix = mix;
    const auto trace = ad::serve::generateArrivals(stream);

    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = options;
    const auto serveStats = [&](int threads) {
        return withThreads(threads, [&] {
            ad::serve::ServeLoop loop(system, serve_options);
            loop.run(trace, mix);
            return loop.cache().stats();
        });
    };
    const auto one = serveStats(1);
    const auto four = serveStats(4);
    const auto again = serveStats(1);
    EXPECT_EQ(one.hits, four.hits);
    EXPECT_EQ(one.misses, four.misses);
    EXPECT_EQ(one.bytes, four.bytes);
    EXPECT_EQ(one.hits, again.hits);
    EXPECT_EQ(one.misses, again.misses);
    EXPECT_EQ(one.bytes, again.bytes);
}

// ---------------------------------------------------------------------
// Request stream

TEST(RequestStream, SameSeedReplaysByteForByte)
{
    ad::serve::StreamOptions stream;
    stream.kind = ad::serve::ArrivalKind::Bursty;
    stream.requests = 64;
    stream.seed = 42;
    stream.mix = ad::serve::resolveMix("tinymix");

    const auto a = ad::serve::generateArrivals(stream);
    const auto b = ad::serve::generateArrivals(stream);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].net, b[i].net);
        EXPECT_EQ(a[i].deadline, b[i].deadline);
    }

    stream.seed = 43;
    const auto c = ad::serve::generateArrivals(stream);
    bool differs = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        differs = differs || a[i].arrival != c[i].arrival;
    EXPECT_TRUE(differs) << "different seeds must give different traces";
}

TEST(RequestStream, ArrivalsAreSortedWithDeadlinesAttached)
{
    for (const auto kind : {ad::serve::ArrivalKind::Poisson,
                            ad::serve::ArrivalKind::Bursty}) {
        ad::serve::StreamOptions stream;
        stream.kind = kind;
        stream.requests = 48;
        stream.deadlineMs = 25.0;
        stream.mix = ad::serve::resolveMix("mix");
        const auto trace = ad::serve::generateArrivals(stream);
        ASSERT_EQ(trace.size(), 48u);
        const auto deadline_cycles = static_cast<ad::Cycles>(
            stream.deadlineMs * 1e-3 * stream.freqGhz * 1e9);
        for (std::size_t i = 0; i < trace.size(); ++i) {
            EXPECT_EQ(trace[i].id, static_cast<int>(i));
            EXPECT_GE(trace[i].net, 0);
            EXPECT_LT(trace[i].net,
                      static_cast<int>(stream.mix.size()));
            EXPECT_EQ(trace[i].deadline,
                      trace[i].arrival + deadline_cycles);
            if (i > 0)
                EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
        }
    }
}

TEST(RequestStream, RejectsNonsenseParameters)
{
    ad::serve::StreamOptions stream;
    stream.mix.clear();
    EXPECT_THROW(ad::serve::generateArrivals(stream), ad::ConfigError);
    stream = {};
    stream.ratePerSec = 0.0;
    EXPECT_THROW(ad::serve::generateArrivals(stream), ad::ConfigError);
    stream = {};
    stream.requests = -1;
    EXPECT_THROW(ad::serve::generateArrivals(stream), ad::ConfigError);
    stream = {};
    stream.freqGhz = 0.0;
    EXPECT_THROW(ad::serve::generateArrivals(stream), ad::ConfigError);
}

TEST(RequestStream, ArrivalKindNamesRoundTrip)
{
    EXPECT_EQ(ad::serve::arrivalKindFromString("poisson"),
              ad::serve::ArrivalKind::Poisson);
    EXPECT_EQ(ad::serve::arrivalKindFromString("bursty"),
              ad::serve::ArrivalKind::Bursty);
    EXPECT_THROW(ad::serve::arrivalKindFromString("constant"),
                 ad::ConfigError);
    EXPECT_STREQ(
        ad::serve::arrivalKindName(ad::serve::ArrivalKind::Poisson),
        "poisson");
    EXPECT_STREQ(
        ad::serve::arrivalKindName(ad::serve::ArrivalKind::Bursty),
        "bursty");
}

TEST(RequestStream, MixAliasesExpand)
{
    EXPECT_EQ(ad::serve::resolveMix("zoo").size(), 8u);
    EXPECT_EQ(ad::serve::resolveMix("mix").size(), 8u);
    EXPECT_EQ(ad::serve::resolveMix("tinymix").size(), 3u);
    EXPECT_EQ(ad::serve::resolveMix("vgg19"),
              std::vector<std::string>{"vgg19"});
}

// ---------------------------------------------------------------------
// ServeLoop

TEST(ServeLoop, WarmCacheReplaysBitIdenticallyAndPlansFaster)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    // Real SA search so the cold pass has measurable planning wall time.
    serve_options.orchestrator.sa.maxIterations = 300;

    ad::serve::StreamOptions stream;
    stream.requests = 8;
    stream.seed = 3;
    stream.ratePerSec = 200.0;
    stream.freqGhz = system.engine.freqGhz;
    stream.mix = {"tiny_linear"};
    const auto trace = ad::serve::generateArrivals(stream);

    ad::serve::ServeLoop loop(system, serve_options);
    const auto cold = loop.run(trace, stream.mix);
    const auto warm = loop.run(trace, stream.mix);

    EXPECT_GT(cold.planWallSeconds, 0.0);
    EXPECT_LE(warm.planWallSeconds * 10.0, cold.planWallSeconds)
        << "warm-cache pass must plan at least 10x faster";
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.cacheHits, warm.admitted);

    // Every warm outcome replays the cold pass's plan bit-identically.
    ASSERT_EQ(cold.outcomes.size(), warm.outcomes.size());
    for (std::size_t i = 0; i < cold.outcomes.size(); ++i) {
        if (!cold.outcomes[i].plan)
            continue;
        ASSERT_TRUE(warm.outcomes[i].plan);
        EXPECT_TRUE(cold.outcomes[i].plan->report.bitIdentical(
            warm.outcomes[i].plan->report));
    }

    // A second loop reproduces both passes byte-for-byte.
    ad::serve::ServeLoop replay(system, serve_options);
    EXPECT_TRUE(replay.run(trace, stream.mix).bitIdentical(cold));
    EXPECT_TRUE(replay.run(trace, stream.mix).bitIdentical(warm));
}

TEST(ServeLoop, ReportIsBitIdenticalAcrossThreadCounts)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();

    ad::serve::StreamOptions stream;
    stream.kind = ad::serve::ArrivalKind::Bursty;
    stream.requests = 12;
    stream.seed = 9;
    stream.ratePerSec = 300.0;
    stream.freqGhz = system.engine.freqGhz;
    stream.mix = ad::serve::resolveMix("tinymix");
    const auto trace = ad::serve::generateArrivals(stream);

    const auto serveAll = [&](int threads) {
        return withThreads(threads, [&] {
            ad::serve::ServeLoop loop(system, serve_options);
            return loop.run(trace, stream.mix);
        });
    };
    const auto one = serveAll(1);
    const auto four = serveAll(4);
    EXPECT_TRUE(one.bitIdentical(four))
        << "serve report differs across thread counts";
}

TEST(ServeLoop, DeadlinePressureDegradesThenUpgrades)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();
    serve_options.coldPlanCycles = 1'000'000;

    // Hand-built trace: the first request's deadline cannot absorb a
    // cold plan, so it must be served from a freshly planned fallback;
    // the second arrives after the background compile finishes and must
    // hit the upgraded primary plan.
    std::vector<Request> trace(2);
    trace[0].id = 0;
    trace[0].arrival = 0;
    trace[0].deadline = 500'000;
    trace[1].id = 1;
    trace[1].arrival = 5'000'000;
    trace[1].deadline = 90'000'000;
    const std::vector<std::string> mix{"tiny_linear"};

    ad::serve::ServeLoop loop(system, serve_options);
    const auto report = loop.run(trace, mix);
    ASSERT_EQ(report.outcomes.size(), 2u);

    const auto &first = report.outcomes[0];
    EXPECT_EQ(first.downgrade, ad::serve::Downgrade::FreshFallback);
    EXPECT_EQ(first.planCycles, serve_options.fallbackPlanCycles);
    EXPECT_FALSE(first.cacheHit);

    const auto &second = report.outcomes[1];
    EXPECT_EQ(second.downgrade, ad::serve::Downgrade::None);
    EXPECT_TRUE(second.cacheHit)
        << "background compile must upgrade later requests";
    EXPECT_EQ(report.downgradedFresh, 1u);

    // With degradation disabled the same trace plans inline instead.
    serve_options.allowDegrade = false;
    ad::serve::ServeLoop strict(system, serve_options);
    const auto inline_report = strict.run(trace, mix);
    EXPECT_EQ(inline_report.downgradedFresh +
                  inline_report.downgradedCached,
              0u);
    EXPECT_EQ(inline_report.outcomes[0].planCycles,
              serve_options.coldPlanCycles);
}

TEST(ServeLoop, QueueBoundRejectsOverflowDeterministically)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();
    serve_options.queueCapacity = 2;

    // Six simultaneous arrivals against capacity 2: the first fills the
    // server, the second queues, the rest bounce.
    std::vector<Request> trace(6);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = static_cast<int>(i);
        trace[i].arrival = 0;
        trace[i].deadline = 1'000'000'000;
    }
    const std::vector<std::string> mix{"tiny_linear"};

    ad::serve::ServeLoop loop(system, serve_options);
    const auto report = loop.run(trace, mix);
    EXPECT_EQ(report.admitted, 2u);
    EXPECT_EQ(report.rejected, 4u);
    EXPECT_LE(report.peakQueueDepth, serve_options.queueCapacity);
    for (const auto &out : report.outcomes) {
        if (!out.admitted)
            EXPECT_FALSE(out.plan);
    }
}

TEST(ServeLoop, InstrumentedRunsRenderByteIdenticalExports)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();
    // Tight queue and deadlines so rejections, downgrades, and the
    // queue-depth counter all land in the exports.
    serve_options.queueCapacity = 3;

    ad::serve::StreamOptions stream;
    stream.kind = ad::serve::ArrivalKind::Bursty;
    stream.requests = 16;
    stream.seed = 21;
    stream.ratePerSec = 2000.0;
    stream.deadlineMs = 8.0;
    stream.freqGhz = system.engine.freqGhz;
    stream.mix = ad::serve::resolveMix("tinymix");
    const auto trace = ad::serve::generateArrivals(stream);

    const auto render = [&](int threads) {
        return withThreads(threads, [&] {
            ad::obs::TraceRecorder recorder;
            ad::obs::MetricsRegistry metrics;
            ad::obs::Instrumentation ins{&recorder, &metrics};
            ad::serve::ServeLoop loop(system, serve_options);
            loop.run(trace, stream.mix, &ins);
            return std::make_pair(metrics.renderText("host."),
                                  recorder.perfettoJson());
        });
    };
    const auto one = render(1);
    const auto four = render(4);
    EXPECT_EQ(one.first, four.first)
        << "serve metrics differ across thread counts";
    EXPECT_EQ(one.second, four.second)
        << "serve trace differs across thread counts";
    EXPECT_NE(one.first.find("serve.latency.p99_ms"),
              std::string::npos);
    EXPECT_NE(one.second.find("serve.queue_depth"), std::string::npos);
}

TEST(ServeLoop, RejectsBrokenConfigurations)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.queueCapacity = 0;
    EXPECT_THROW(ad::serve::ServeLoop(system, serve_options),
                 ad::ConfigError);

    serve_options.queueCapacity = 4;
    ad::serve::ServeLoop loop(system, serve_options);
    std::vector<Request> trace(1);
    trace[0].net = 5; // out of range for a one-entry mix
    EXPECT_THROW(loop.run(trace, {"tiny_linear"}), ad::ConfigError);
}

TEST(ServeLoop, DeadlineBoundaryIsInclusive)
{
    // The one boundary rule (serve_loop.hh deadlineMissed()): an event
    // at exactly the deadline meets it. Probe with a huge deadline to
    // learn the deterministic finish time, then pin deadlines exactly
    // at and one cycle before it.
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();
    serve_options.allowDegrade = false; // isolate the completion check

    std::vector<Request> trace(1);
    trace[0].deadline = ad::Cycles{1} << 60;
    const std::vector<std::string> mix{"tiny_linear"};

    ad::serve::ServeLoop probe(system, serve_options);
    const auto probed = probe.run(trace, mix).outcomes[0];
    ASSERT_TRUE(probed.admitted);
    ASSERT_GT(probed.finish, 0u);

    trace[0].deadline = probed.finish; // exactly on time
    ad::serve::ServeLoop exact(system, serve_options);
    EXPECT_FALSE(exact.run(trace, mix).outcomes[0].deadlineMiss)
        << "finishing exactly at the deadline meets it";

    trace[0].deadline = probed.finish - 1; // one cycle late
    ad::serve::ServeLoop late(system, serve_options);
    const auto missed = late.run(trace, mix);
    EXPECT_TRUE(missed.outcomes[0].deadlineMiss);
    EXPECT_EQ(missed.deadlineMisses, 1u);

    // Admission uses the same rule: a deadline exactly absorbing
    // start + coldPlanCycles plans inline; one cycle less degrades.
    serve_options.allowDegrade = true;
    trace[0].deadline = probed.start + serve_options.coldPlanCycles;
    ad::serve::ServeLoop inline_fit(system, serve_options);
    EXPECT_EQ(inline_fit.run(trace, mix).outcomes[0].downgrade,
              ad::serve::Downgrade::None)
        << "an exactly-fitting cold plan is not deadline pressure";

    trace[0].deadline =
        probed.start + serve_options.coldPlanCycles - 1;
    ad::serve::ServeLoop degraded(system, serve_options);
    EXPECT_NE(degraded.run(trace, mix).outcomes[0].downgrade,
              ad::serve::Downgrade::None);
}

TEST(ServeLoop, DowngradeNamesAreStable)
{
    EXPECT_STREQ(ad::serve::downgradeName(ad::serve::Downgrade::None),
                 "none");
    EXPECT_STREQ(ad::serve::downgradeName(
                     ad::serve::Downgrade::CachedFallback),
                 "cached-fallback");
    EXPECT_STREQ(ad::serve::downgradeName(
                     ad::serve::Downgrade::FreshFallback),
                 "fresh-fallback");
}

// ---------------------------------------------------------------------
// MeshView (DESIGN.md Sec. 16)

TEST(MeshView, ResolvesValidatesAndMapsEngines)
{
    // The default view resolves to the whole base mesh: identity
    // engine mapping, full HBM share.
    const auto full = ad::sim::MeshView{}.resolved(4, 2);
    EXPECT_TRUE(full.isResolved());
    EXPECT_TRUE(full.isFull());
    EXPECT_EQ(full.width, 4);
    EXPECT_EQ(full.height, 2);
    ASSERT_EQ(full.engines(), 8);
    for (int e = 0; e < full.engines(); ++e)
        EXPECT_EQ(full.globalEngine(e), e);

    // A sub-rectangle maps its local engines to base-mesh coordinates.
    const auto sub =
        ad::sim::MeshView{2, 1, 2, 1, 0, 0, 0.25}.resolved(4, 2);
    EXPECT_FALSE(sub.isFull());
    EXPECT_EQ(sub.globalEngine(0), 1 * 4 + 2);
    EXPECT_EQ(sub.globalEngine(1), 1 * 4 + 3);

    // Nonsense rectangles and shares are rejected.
    EXPECT_THROW((ad::sim::MeshView{3, 0, 2, 1}).resolved(4, 2),
                 ad::ConfigError); // falls off the right edge
    EXPECT_THROW((ad::sim::MeshView{-1, 0, 1, 1}).resolved(4, 2),
                 ad::ConfigError); // negative origin
    EXPECT_THROW((ad::sim::MeshView{0, 0, 1, 0}).resolved(4, 2),
                 ad::ConfigError); // degenerate height
    EXPECT_THROW((ad::sim::MeshView{0, 0, 1, 1, 0, 0, 1.5})
                     .resolved(4, 2),
                 ad::ConfigError); // share above the machine's budget
    EXPECT_THROW((ad::sim::MeshView{0, 0, 1, 1, 0, 0, 0.0})
                     .resolved(4, 2),
                 ad::ConfigError); // share must be positive
    // A view pinned to one base cannot resolve against another.
    EXPECT_THROW(full.resolved(2, 2), ad::ConfigError);
}

TEST(MeshView, OverlapAgreesWithGlobalEngineSets)
{
    // Exhaustive on a 3x3 base: two rectangles overlap iff their
    // global engine id sets intersect — the disjoint-executor
    // guarantee the co-located ServeLoop relies on.
    std::vector<ad::sim::MeshView> views;
    for (int x0 = 0; x0 < 3; ++x0)
        for (int y0 = 0; y0 < 3; ++y0)
            for (int w = 1; x0 + w <= 3; ++w)
                for (int h = 1; y0 + h <= 3; ++h)
                    views.push_back(
                        ad::sim::MeshView{x0, y0, w, h, 0, 0, 0.5}
                            .resolved(3, 3));
    const auto engineSet = [](const ad::sim::MeshView &v) {
        std::set<int> ids;
        for (int e = 0; e < v.engines(); ++e)
            ids.insert(v.globalEngine(e));
        return ids;
    };
    for (const auto &a : views) {
        for (const auto &b : views) {
            const auto ea = engineSet(a);
            const auto eb = engineSet(b);
            bool intersects = false;
            for (const int id : ea)
                intersects = intersects || eb.count(id) > 0;
            EXPECT_EQ(a.overlaps(b), intersects)
                << a.describe() << " vs " << b.describe();
        }
    }
}

TEST(MeshView, ShapeKeyIsOriginFree)
{
    const auto a = ad::sim::MeshView{0, 0, 1, 2, 0, 0, 0.5};
    const auto b = ad::sim::MeshView{1, 0, 1, 2, 0, 0, 0.5};
    EXPECT_EQ(a.shapeKey(), b.shapeKey());
    auto c = a;
    c.hbmShare = 0.25;
    EXPECT_NE(a.shapeKey(), c.shapeKey());
    auto d = a;
    d.width = 2;
    d.height = 1;
    EXPECT_NE(a.shapeKey(), d.shapeKey());
}

TEST(MeshView, ViewSystemDerivesTheSlicedMachine)
{
    const auto system = smallSystem();
    // The full view reproduces the base machine byte-for-byte — the
    // property that keeps full-view plans and goldens bit-identical.
    EXPECT_EQ(ad::sim::viewSystem(system, ad::sim::MeshView{})
                  .fingerprint(),
              system.fingerprint());

    const auto half = ad::sim::MeshView{0, 0, 1, 2, 0, 0, 0.5};
    const auto sliced = ad::sim::viewSystem(system, half);
    EXPECT_EQ(sliced.meshX, 1);
    EXPECT_EQ(sliced.meshY, 2);
    EXPECT_EQ(sliced.hbm.peakBandwidthGBps,
              system.hbm.peakBandwidthGBps * 0.5);
    EXPECT_NE(sliced.fingerprint(), system.fingerprint());
}

TEST(MeshView, ViewPlannedExecutionPassesConservationAudits)
{
    const auto system = smallSystem();
    const auto half = ad::sim::MeshView{0, 0, 1, 2, 0, 0, 0.5};
    const auto plan =
        ad::baselines::makePlanner({"AD", system, half, fastOptions()})
            ->plan(ad::models::buildByName("tiny_linear"));
    ASSERT_TRUE(plan.dag);
    const auto audits = ad::check::auditExecution(
        *plan.dag, plan.schedule, ad::sim::viewSystem(system, half),
        plan.report);
    EXPECT_TRUE(audits.empty())
        << (audits.empty() ? "" : audits.front().what);
}

// ---------------------------------------------------------------------
// PlanKey x MeshView

TEST(PlanKey, ViewShapeIsPartOfTheKeyButOriginIsNot)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto graph = ad::models::tinyLinear();

    const PlanKey whole =
        ad::serve::makePlanKey("AD", graph, system, options);
    EXPECT_EQ(whole, ad::serve::makePlanKey("AD", graph, system,
                                            options,
                                            ad::sim::MeshView{}))
        << "the defaulted view must key exactly like the legacy call";

    const auto left = ad::sim::MeshView{0, 0, 1, 2, 0, 0, 0.5};
    const PlanKey sub =
        ad::serve::makePlanKey("AD", graph, system, options, left);
    EXPECT_NE(whole, sub)
        << "sub-mesh plans must never alias full-mesh plans";

    // Same shape at a different origin shares the entry...
    const auto right = ad::sim::MeshView{1, 0, 1, 2, 0, 0, 0.5};
    EXPECT_EQ(sub, ad::serve::makePlanKey("AD", graph, system, options,
                                          right));
    // ...while a different bandwidth share or shape does not.
    auto thin = left;
    thin.hbmShare = 0.25;
    EXPECT_NE(sub, ad::serve::makePlanKey("AD", graph, system, options,
                                          thin));
}

// ---------------------------------------------------------------------
// ServeOptions::validate

TEST(ServeOptions, ValidateReportsTypedErrors)
{
    const auto system = smallSystem();
    const auto fieldsOf = [&](const ad::serve::ServeOptions &o) {
        std::vector<std::string> fields;
        for (const auto &e : o.validate(system))
            fields.push_back(e.field);
        return fields;
    };

    ad::serve::ServeOptions ok;
    EXPECT_TRUE(fieldsOf(ok).empty());

    ad::serve::ServeOptions bad;
    bad.strategy = "nope";
    bad.queueCapacity = 0;
    bad.evictionPolicy = "random";
    bad.cachedPlanCycles = bad.coldPlanCycles + 1;
    const auto fields = fieldsOf(bad);
    EXPECT_NE(std::find(fields.begin(), fields.end(), "strategy"),
              fields.end());
    EXPECT_NE(std::find(fields.begin(), fields.end(), "queueCapacity"),
              fields.end());
    EXPECT_NE(std::find(fields.begin(), fields.end(), "evictionPolicy"),
              fields.end());
    EXPECT_NE(
        std::find(fields.begin(), fields.end(), "cachedPlanCycles"),
        fields.end());

    // Sub-mesh findings carry the offending index...
    ad::serve::ServeOptions oob;
    oob.submeshes = {ad::sim::MeshView{0, 0, 4, 4, 0, 0, 0.5}};
    EXPECT_EQ(fieldsOf(oob),
              std::vector<std::string>{"submeshes[0]"});
    // ...overlap and share-budget findings name the partition.
    ad::serve::ServeOptions overlap;
    overlap.submeshes = {ad::sim::MeshView{0, 0, 2, 1, 0, 0, 0.5},
                         ad::sim::MeshView{1, 0, 1, 2, 0, 0, 0.5}};
    EXPECT_EQ(fieldsOf(overlap),
              std::vector<std::string>{"submeshes"});
    ad::serve::ServeOptions greedy;
    greedy.submeshes = {ad::sim::MeshView{0, 0, 1, 2, 0, 0, 0.8},
                        ad::sim::MeshView{1, 0, 1, 2, 0, 0, 0.8}};
    EXPECT_EQ(fieldsOf(greedy),
              std::vector<std::string>{"submeshes"});

    // The ServeLoop constructor enforces the same findings.
    EXPECT_THROW(ad::serve::ServeLoop(system, overlap),
                 ad::ConfigError);
}

// ---------------------------------------------------------------------
// Per-class request substreams

TEST(RequestStream, SingleLatencyClassMergeReplaysLegacyTrace)
{
    ad::serve::StreamOptions stream;
    stream.kind = ad::serve::ArrivalKind::Bursty;
    stream.requests = 24;
    stream.seed = 5;
    stream.mix = ad::serve::resolveMix("tinymix");

    const auto legacy = ad::serve::generateArrivals(stream);
    const auto merged = ad::serve::generateClassArrivals(
        {{ad::serve::SloClass::Latency, stream}});
    EXPECT_EQ(merged.mix, stream.mix);
    ASSERT_EQ(merged.requests.size(), legacy.size());
    for (std::size_t i = 0; i < legacy.size(); ++i) {
        EXPECT_EQ(merged.requests[i].id, legacy[i].id);
        EXPECT_EQ(merged.requests[i].net, legacy[i].net);
        EXPECT_EQ(merged.requests[i].arrival, legacy[i].arrival);
        EXPECT_EQ(merged.requests[i].deadline, legacy[i].deadline);
        EXPECT_EQ(merged.requests[i].slo,
                  ad::serve::SloClass::Latency);
    }
}

TEST(RequestStream, AddingAClassNeverPerturbsAnotherClass)
{
    ad::serve::StreamOptions lat;
    lat.kind = ad::serve::ArrivalKind::Bursty;
    lat.requests = 24;
    lat.seed = 5;
    lat.mix = ad::serve::resolveMix("tinymix");

    ad::serve::StreamOptions batch = lat;
    batch.requests = 16;
    batch.ratePerSec = 40.0;
    batch.deadlineMs = 500.0;

    const auto alone = ad::serve::generateClassArrivals(
        {{ad::serve::SloClass::Latency, lat}});
    const auto both = ad::serve::generateClassArrivals(
        {{ad::serve::SloClass::Latency, lat},
         {ad::serve::SloClass::Batch, batch}});

    // The merged mix concatenates the per-class mixes; batch rows
    // index past the latency block.
    ASSERT_EQ(both.mix.size(), lat.mix.size() + batch.mix.size());
    ASSERT_EQ(both.requests.size(),
              static_cast<std::size_t>(lat.requests + batch.requests));

    // The latency rows of the two-class merge are bit-identical to the
    // latency-alone trace — class substreams are independent.
    std::vector<ad::serve::Request> lat_rows;
    for (const auto &r : both.requests) {
        if (r.slo == ad::serve::SloClass::Latency) {
            lat_rows.push_back(r);
        } else {
            EXPECT_GE(r.net, static_cast<int>(lat.mix.size()));
            EXPECT_LT(r.net, static_cast<int>(both.mix.size()));
        }
    }
    ASSERT_EQ(lat_rows.size(), alone.requests.size());
    for (std::size_t i = 0; i < lat_rows.size(); ++i) {
        EXPECT_EQ(lat_rows[i].arrival, alone.requests[i].arrival);
        EXPECT_EQ(lat_rows[i].net, alone.requests[i].net);
        EXPECT_EQ(lat_rows[i].deadline, alone.requests[i].deadline);
    }

    // Merged order: sorted by arrival with ids reassigned 0..N-1.
    for (std::size_t i = 0; i < both.requests.size(); ++i) {
        EXPECT_EQ(both.requests[i].id, static_cast<int>(i));
        if (i > 0) {
            EXPECT_GE(both.requests[i].arrival,
                      both.requests[i - 1].arrival);
        }
    }
    EXPECT_THROW(ad::serve::generateClassArrivals({}),
                 ad::ConfigError);
}

TEST(RequestStream, SloClassNamesRoundTrip)
{
    EXPECT_EQ(ad::serve::sloClassFromString("latency"),
              ad::serve::SloClass::Latency);
    EXPECT_EQ(ad::serve::sloClassFromString("batch"),
              ad::serve::SloClass::Batch);
    EXPECT_THROW(ad::serve::sloClassFromString("besteffort"),
                 ad::ConfigError);
    EXPECT_STREQ(
        ad::serve::sloClassName(ad::serve::SloClass::Latency),
        "latency");
    EXPECT_STREQ(ad::serve::sloClassName(ad::serve::SloClass::Batch),
                 "batch");
}

// ---------------------------------------------------------------------
// Co-located serving

TEST(ServeLoop, ExplicitFullViewMatchesImplicitWholeMesh)
{
    const auto system = smallSystem();
    ad::serve::StreamOptions stream;
    stream.kind = ad::serve::ArrivalKind::Bursty;
    stream.requests = 12;
    stream.seed = 9;
    stream.ratePerSec = 300.0;
    stream.freqGhz = system.engine.freqGhz;
    stream.mix = ad::serve::resolveMix("tinymix");
    const auto trace = ad::serve::generateArrivals(stream);

    ad::serve::ServeOptions implicit_options;
    implicit_options.orchestrator = fastOptions();
    auto explicit_options = implicit_options;
    explicit_options.submeshes = {ad::sim::MeshView{}};

    ad::serve::ServeLoop implicit_loop(system, implicit_options);
    ad::serve::ServeLoop explicit_loop(system, explicit_options);
    const auto a = implicit_loop.run(trace, stream.mix);
    const auto b = explicit_loop.run(trace, stream.mix);
    EXPECT_TRUE(a.bitIdentical(b))
        << "the whole mesh must be the trivial view";
}

TEST(ServeLoop, CoLocatedClassesAreThreadInvariantAndDisjoint)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();
    serve_options.submeshes = {
        ad::sim::MeshView{0, 0, 1, 2, 0, 0, 0.5},
        ad::sim::MeshView{1, 0, 1, 2, 0, 0, 0.5}};

    ad::serve::StreamOptions lat;
    lat.kind = ad::serve::ArrivalKind::Bursty;
    lat.requests = 10;
    lat.seed = 13;
    lat.ratePerSec = 500.0;
    lat.freqGhz = system.engine.freqGhz;
    lat.mix = ad::serve::resolveMix("tinymix");
    ad::serve::StreamOptions batch = lat;
    batch.requests = 6;
    batch.ratePerSec = 200.0;
    batch.deadlineMs = 500.0;
    const auto merged = ad::serve::generateClassArrivals(
        {{ad::serve::SloClass::Latency, lat},
         {ad::serve::SloClass::Batch, batch}});

    const auto serveAll = [&](int threads) {
        return withThreads(threads, [&] {
            ad::serve::ServeLoop loop(system, serve_options);
            return loop.run(merged.requests, merged.mix);
        });
    };
    const auto one = serveAll(1);
    const auto four = serveAll(4);
    EXPECT_TRUE(one.bitIdentical(four))
        << "co-located serving differs across thread counts";
    ASSERT_EQ(one.classes.size(), 2u);
    EXPECT_EQ(one.classes[0].slo, ad::serve::SloClass::Latency);
    EXPECT_EQ(one.classes[1].slo, ad::serve::SloClass::Batch);
    EXPECT_EQ(one.classes[0].requests + one.classes[1].requests,
              merged.requests.size());

    // Every admitted request landed on a real executor, and the two
    // executors' global engine sets are disjoint.
    const auto v0 =
        serve_options.submeshes[0].resolved(system.meshX, system.meshY);
    const auto v1 =
        serve_options.submeshes[1].resolved(system.meshX, system.meshY);
    EXPECT_FALSE(v0.overlaps(v1));
    for (const auto &out : one.outcomes) {
        if (out.admitted) {
            EXPECT_GE(out.submesh, 0);
            EXPECT_LT(out.submesh, 2);
        } else {
            EXPECT_EQ(out.submesh, -1);
        }
    }
}

TEST(ServeLoop, PerClassQueueBoundsRejectIndependently)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();
    serve_options.queueCapacity = 8;
    serve_options.batchQueueCapacity = 1;

    // Three simultaneous batch arrivals against a class cap of 1: the
    // first is admitted, the rest bounce while the latency request
    // sails through on the global bound.
    std::vector<Request> trace(4);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].id = static_cast<int>(i);
        trace[i].arrival = 0;
        trace[i].deadline = ad::Cycles{1} << 60;
        trace[i].slo = i < 3 ? ad::serve::SloClass::Batch
                             : ad::serve::SloClass::Latency;
    }
    const std::vector<std::string> mix{"tiny_linear"};

    ad::serve::ServeLoop loop(system, serve_options);
    const auto report = loop.run(trace, mix);
    EXPECT_EQ(report.admitted, 2u);
    EXPECT_EQ(report.rejected, 2u);
    ASSERT_EQ(report.classes.size(), 2u);
    EXPECT_EQ(report.classes[0].rejected, 0u);
    EXPECT_EQ(report.classes[1].admitted, 1u);
    EXPECT_EQ(report.classes[1].rejected, 2u);
}

TEST(ServeLoop, LatencyPreemptsBatchAtRoundBarriers)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions serve_options;
    serve_options.orchestrator = fastOptions();

    // Probe pass: one batch request, to learn the deterministic plan
    // latency, execution span, and round count.
    std::vector<Request> trace(1);
    trace[0].id = 0;
    trace[0].arrival = 0;
    trace[0].deadline = ad::Cycles{1} << 60;
    trace[0].slo = ad::serve::SloClass::Batch;
    const std::vector<std::string> mix{"tiny_linear"};

    ad::serve::ServeLoop probe(system, serve_options);
    const auto probed = probe.run(trace, mix).outcomes[0];
    ASSERT_TRUE(probed.admitted);
    const ad::Cycles exec_start = probed.start + probed.planCycles;
    ASSERT_GT(probed.execCycles, 4u)
        << "need a multi-cycle execution to preempt inside";
    ASSERT_TRUE(probed.plan);
    const std::uint64_t rounds =
        std::max<std::uint64_t>(1, probed.plan->report.rounds);
    const ad::Cycles quantum = std::max<ad::Cycles>(
        1, (probed.execCycles + rounds - 1) / rounds);

    // Real pass: a latency request lands mid-execution. It must cut in
    // at the next round barrier, run to completion, and push the
    // batch's remainder after itself.
    trace.resize(2);
    trace[1].id = 1;
    trace[1].arrival = exec_start + probed.execCycles / 2;
    trace[1].deadline = trace[1].arrival + (ad::Cycles{1} << 60);
    trace[1].slo = ad::serve::SloClass::Latency;

    ad::serve::ServeLoop loop(system, serve_options);
    const auto report = loop.run(trace, mix);
    const auto &victim = report.outcomes[0];
    const auto &lat = report.outcomes[1];
    ASSERT_TRUE(victim.admitted);
    ASSERT_TRUE(lat.admitted);
    EXPECT_EQ(report.preemptions, 1u);
    EXPECT_EQ(victim.preemptions, 1u);
    EXPECT_EQ(lat.preemptions, 0u);

    // The cut-in point is a round barrier strictly after the arrival
    // and strictly before the batch would have finished.
    EXPECT_GT(lat.start, trace[1].arrival);
    EXPECT_LT(lat.start, probed.finish);
    EXPECT_EQ((lat.start - exec_start) % quantum, 0u);

    // The preempted remainder resumes after the latency request.
    const ad::Cycles remaining =
        probed.execCycles - (lat.start - exec_start);
    EXPECT_EQ(victim.finish, lat.finish + remaining);
    ASSERT_EQ(report.classes.size(), 2u);
    EXPECT_EQ(report.classes[1].preemptions, 1u);

    // With preemption disabled the same trace queues behind the batch.
    serve_options.preemptLatency = false;
    ad::serve::ServeLoop fifo(system, serve_options);
    const auto queued = fifo.run(trace, mix);
    EXPECT_EQ(queued.preemptions, 0u);
    EXPECT_EQ(queued.outcomes[1].start, probed.finish);
    EXPECT_GT(queued.outcomes[1].finish, lat.finish)
        << "preemption must improve the latency request's finish";
}

} // namespace
