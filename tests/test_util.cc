/**
 * @file
 * Unit tests for the utility substrate: statistics, histograms, table
 * rendering, error handling, integer helpers, and deterministic RNG.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/common.hh"
#include "util/logging.hh"
#include "util/random.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace ad {
namespace {

TEST(Common, CeilDivExact)
{
    EXPECT_EQ(ceilDiv(10, 5), 2);
    EXPECT_EQ(ceilDiv(10, 10), 1);
}

TEST(Common, CeilDivRoundsUp)
{
    EXPECT_EQ(ceilDiv(11, 5), 3);
    EXPECT_EQ(ceilDiv(1, 5), 1);
}

TEST(Common, RoundUpMultiples)
{
    EXPECT_EQ(roundUp(10, 16), 16);
    EXPECT_EQ(roundUp(16, 16), 16);
    EXPECT_EQ(roundUp(17, 16), 32);
}

TEST(Common, PanicThrowsInternalError)
{
    EXPECT_THROW(panic("boom ", 42), InternalError);
}

TEST(Common, FatalThrowsConfigError)
{
    EXPECT_THROW(fatal("bad config ", "x"), ConfigError);
}

TEST(Common, FatalMessageContainsArgs)
{
    try {
        fatal("value=", 7, " name=", "abc");
        FAIL() << "fatal did not throw";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find("name=abc"),
                  std::string::npos);
    }
}

TEST(Common, AdAssertPassesOnTrue)
{
    EXPECT_NO_THROW(adAssert(true, "never"));
}

TEST(Common, AdAssertPanicsOnFalse)
{
    EXPECT_THROW(adAssert(false, "always"), InternalError);
}

TEST(RunningStats, EmptyIsZero)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownVariance)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0); // classic textbook data set
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10.0;
        (i % 2 ? a : b).add(x);
        all.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_NEAR(a.min(), all.min(), 1e-12);
    EXPECT_NEAR(a.max(), all.max(), 1e-12);
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(3.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(42.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(Histogram, CountsFallInCorrectBins)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(1), 2u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, OutOfRangeClampsToEdges)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.binCount(4), 1u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 18.0);
}

TEST(Histogram, TopWindowFractionConcentrated)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 90; ++i)
        h.add(5.5);
    for (int i = 0; i < 10; ++i)
        h.add(static_cast<double>(i));
    EXPECT_GE(h.topWindowFraction(2), 0.9);
}

TEST(Histogram, TopWindowFractionUniform)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.topWindowFraction(5), 0.5, 1e-9);
}

TEST(Histogram, InvalidConstructionFatals)
{
    EXPECT_THROW(Histogram(0.0, 10.0, 0), ConfigError);
    EXPECT_THROW(Histogram(5.0, 5.0, 4), ConfigError);
}

TEST(Histogram, RenderContainsBars)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, CsvOutput)
{
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Format, Double)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtDouble(1.0, 0), "1");
}

TEST(Format, Percent)
{
    EXPECT_EQ(fmtPercent(0.269, 1), "26.9%");
}

TEST(Format, Speedup)
{
    EXPECT_EQ(fmtSpeedup(1.4512), "1.45x");
}

TEST(Rng, DeterministicBySeed)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.uniform() == b.uniform())
            ++equal;
    }
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformIntBounds)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(2, 5);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(-1.0, 1.0);
        EXPECT_GE(v, -1.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Logger, LevelFiltering)
{
    auto &logger = Logger::instance();
    const LogLevel before = logger.level();
    logger.setLevel(LogLevel::Error);
    EXPECT_EQ(logger.level(), LogLevel::Error);
    // Filtered messages must not crash.
    inform("hidden");
    warn("hidden");
    trace("hidden");
    logger.setLevel(before);
}

} // namespace
} // namespace ad
