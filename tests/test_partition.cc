/**
 * @file
 * Tests for the naive even-partition policies used by the LS baseline
 * and the Fig. 10 atom-generation ablation.
 */

#include <gtest/gtest.h>

#include "core/partition.hh"
#include "models/models.hh"

namespace ad::core {
namespace {

TEST(Partition, ProducesEnoughTiles)
{
    const auto g = models::resnet50();
    for (auto policy :
         {PartitionPolicy::ChannelFirst, PartitionPolicy::Balanced}) {
        const auto shapes = evenPartitionShapes(g, 16, policy);
        for (const auto &l : g.layers()) {
            if (!l.onPeArray())
                continue;
            const auto &s = shapes[static_cast<std::size_t>(l.id)];
            const int tiles = ceilDiv(l.out.h, s.h) *
                              ceilDiv(l.out.w, s.w) *
                              ceilDiv(l.out.c, s.c);
            const int capacity =
                l.out.h * l.out.w * std::max(l.out.c / 4, 1);
            EXPECT_GE(tiles, std::min(16, capacity)) << l.name;
        }
    }
}

TEST(Partition, ChannelFirstSplitsChannels)
{
    graph::Graph g;
    const auto in = g.input({56, 56, 64});
    const auto c = g.conv(in, 64, 3, 1, 1);
    const auto shapes =
        evenPartitionShapes(g, 16, PartitionPolicy::ChannelFirst);
    const auto &s = shapes[static_cast<std::size_t>(c)];
    EXPECT_EQ(s.c, 4);   // 64 channels / 16 tiles
    EXPECT_EQ(s.h, 56);  // spatial untouched
    EXPECT_EQ(s.w, 56);
}

TEST(Partition, ChannelFirstFloorsAtFourChannels)
{
    graph::Graph g;
    const auto in = g.input({56, 56, 16});
    const auto c = g.conv(in, 16, 3, 1, 1);
    const auto shapes =
        evenPartitionShapes(g, 64, PartitionPolicy::ChannelFirst);
    const auto &s = shapes[static_cast<std::size_t>(c)];
    EXPECT_EQ(s.c, 4); // not split below a 4-channel filter group
    EXPECT_LT(s.h, 56); // remainder comes from the spatial dims
}

TEST(Partition, BalancedPrefersLargestDims)
{
    graph::Graph g;
    const auto in = g.input({56, 56, 8});
    const auto c = g.conv(in, 8, 3, 1, 1);
    const auto shapes =
        evenPartitionShapes(g, 16, PartitionPolicy::Balanced);
    const auto &s = shapes[static_cast<std::size_t>(c)];
    // 16 tiles out of 56x56x8: spatial dims carry the split.
    EXPECT_EQ(s.c, 8);
    EXPECT_LE(s.h * s.w, 56 * 56 / 15);
}

TEST(Partition, SingleTileKeepsWholeLayer)
{
    const auto g = models::tinyLinear(32);
    const auto shapes = evenPartitionShapes(g, 1);
    for (const auto &l : g.layers()) {
        if (!l.onPeArray())
            continue;
        const auto &s = shapes[static_cast<std::size_t>(l.id)];
        EXPECT_GE(s.h, l.out.h);
        EXPECT_GE(s.c, std::max(l.out.c / 4, 1));
    }
}

TEST(Partition, TinyLayersNeverProduceZeroTiles)
{
    graph::Graph g;
    const auto in = g.input({1, 1, 2});
    g.conv(in, 2, 1, 1, 0);
    for (auto policy :
         {PartitionPolicy::ChannelFirst, PartitionPolicy::Balanced}) {
        const auto shapes = evenPartitionShapes(g, 64, policy);
        for (const auto &s : shapes) {
            EXPECT_GE(s.h, 1);
            EXPECT_GE(s.w, 1);
            EXPECT_GE(s.c, 1);
        }
    }
}

TEST(Partition, RejectsNonPositiveTileCount)
{
    const auto g = models::tinyLinear(16);
    EXPECT_THROW(evenPartitionShapes(g, 0), ConfigError);
}

} // namespace
} // namespace ad::core
