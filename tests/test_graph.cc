/**
 * @file
 * Unit tests for the layer-level graph IR: builder shape inference,
 * MAC/parameter counting, topology queries, and validation.
 */

#include <gtest/gtest.h>

#include "graph/graph.hh"
#include "util/common.hh"

namespace ad::graph {
namespace {

TEST(Layer, ConvMacsAndParams)
{
    Graph g;
    const LayerId in = g.input({8, 8, 3});
    const LayerId c = g.conv(in, 16, 3, 1, 1, "c");
    const Layer &layer = g.layer(c);
    EXPECT_EQ(layer.out.h, 8);
    EXPECT_EQ(layer.out.w, 8);
    EXPECT_EQ(layer.out.c, 16);
    EXPECT_EQ(layer.macs(), 8ull * 8 * 16 * 3 * 3 * 3);
    EXPECT_EQ(layer.paramCount(), 16ll * 3 * 3 * 3);
    EXPECT_TRUE(layer.onPeArray());
}

TEST(Layer, DepthwiseMacsAndParams)
{
    Graph g;
    const LayerId in = g.input({8, 8, 32});
    const LayerId d = g.depthwiseConv(in, 3, 1, 1, "dw");
    const Layer &layer = g.layer(d);
    EXPECT_EQ(layer.out.c, 32);
    EXPECT_EQ(layer.macs(), 8ull * 8 * 32 * 9);
    EXPECT_EQ(layer.paramCount(), 32ll * 9);
}

TEST(Layer, FullyConnectedIsConvWithUnitDims)
{
    Graph g;
    const LayerId in = g.input({4, 4, 8});
    const LayerId f = g.fullyConnected(in, 10, "fc");
    const Layer &layer = g.layer(f);
    EXPECT_EQ(layer.in.h, 1);
    EXPECT_EQ(layer.in.w, 1);
    EXPECT_EQ(layer.in.c, 4 * 4 * 8);
    EXPECT_EQ(layer.out.c, 10);
    EXPECT_EQ(layer.macs(), 128ull * 10);
    EXPECT_EQ(layer.paramCount(), 128ll * 10);
}

TEST(Layer, VectorOpsHaveNoMacs)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId p = g.pool(in, 2);
    const LayerId a = g.add({p, p}, "a");
    const LayerId gp = g.globalPool(a);
    EXPECT_EQ(g.layer(p).macs(), 0u);
    EXPECT_EQ(g.layer(a).macs(), 0u);
    EXPECT_EQ(g.layer(gp).macs(), 0u);
    EXPECT_FALSE(g.layer(p).onPeArray());
}

TEST(Graph, TensorShapeHelpers)
{
    const TensorShape s{4, 5, 6};
    EXPECT_EQ(s.elems(), 120);
    EXPECT_EQ(s.bytes(2), 240u);
}

struct ConvCase
{
    int in, k, stride, pad, expected;
};

class ConvShapeTest : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvShapeTest, OutputDims)
{
    const ConvCase c = GetParam();
    Graph g;
    const LayerId in = g.input({c.in, c.in, 3});
    const LayerId conv = g.conv(in, 8, c.k, c.stride, c.pad);
    EXPECT_EQ(g.layer(conv).out.h, c.expected);
    EXPECT_EQ(g.layer(conv).out.w, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    StandardConvs, ConvShapeTest,
    ::testing::Values(ConvCase{224, 7, 2, 3, 112},
                      ConvCase{224, 3, 1, 1, 224},
                      ConvCase{56, 1, 1, 0, 56},
                      ConvCase{56, 3, 2, 1, 28},
                      ConvCase{32, 3, 1, 0, 30},
                      ConvCase{299, 3, 2, 0, 149},
                      ConvCase{8, 3, 1, 1, 8},
                      ConvCase{7, 7, 1, 3, 7}));

TEST(Graph, RectangularConvSamePadding)
{
    Graph g;
    const LayerId in = g.input({17, 17, 8});
    // 1x7 with "same" padding must preserve spatial dims.
    const LayerId c = g.convRect(in, 8, 1, 7, 1, -1, "r");
    EXPECT_EQ(g.layer(c).out.h, 17);
    EXPECT_EQ(g.layer(c).out.w, 17);
    EXPECT_EQ(g.layer(c).window.padH, 0);
    EXPECT_EQ(g.layer(c).window.padW, 3);
}

TEST(Graph, PoolDefaultsStrideToKernel)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId p = g.pool(in, 2);
    EXPECT_EQ(g.layer(p).out.h, 4);
    EXPECT_EQ(g.layer(p).window.strideH, 2);
}

TEST(Graph, GlobalPoolCollapsesSpatial)
{
    Graph g;
    const LayerId in = g.input({7, 7, 2048});
    const LayerId p = g.globalPool(in);
    EXPECT_EQ(g.layer(p).out.h, 1);
    EXPECT_EQ(g.layer(p).out.w, 1);
    EXPECT_EQ(g.layer(p).out.c, 2048);
}

TEST(Graph, ConcatSumsChannels)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 3, 1);
    const LayerId b = g.conv(in, 5, 1);
    const LayerId cat = g.concat({a, b});
    EXPECT_EQ(g.layer(cat).out.c, 8);
    EXPECT_EQ(g.layer(cat).out.h, 8);
}

TEST(Graph, ConcatRejectsSpatialMismatch)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 3, 1);
    const LayerId b = g.conv(in, 3, 3, 2, 1); // stride 2: 4x4
    EXPECT_THROW(g.concat({a, b}), ConfigError);
}

TEST(Graph, EltwiseRejectsShapeMismatch)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1);
    const LayerId b = g.conv(in, 8, 1);
    EXPECT_THROW(g.add({a, b}), ConfigError);
}

TEST(Graph, EltwiseRequiresTwoInputs)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1);
    EXPECT_THROW(g.add({a}), ConfigError);
}

TEST(Graph, SuccessorsTrackConsumers)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1);
    const LayerId b = g.conv(in, 4, 1);
    g.add({a, b});
    EXPECT_EQ(g.successors(in).size(), 2u);
    EXPECT_EQ(g.successors(a).size(), 1u);
}

TEST(Graph, SinksAreOutputLayers)
{
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1);
    const LayerId b = g.conv(a, 4, 1);
    const auto sinks = g.sinks();
    ASSERT_EQ(sinks.size(), 1u);
    EXPECT_EQ(sinks[0], b);
}

TEST(Graph, DepthsAreLongestPaths)
{
    // Diamond: input -> a -> c ; input -> b -> b2 -> c
    Graph g;
    const LayerId in = g.input({8, 8, 4});
    const LayerId a = g.conv(in, 4, 1, 1, 0, "a");
    const LayerId b = g.conv(in, 4, 1, 1, 0, "b");
    const LayerId b2 = g.conv(b, 4, 1, 1, 0, "b2");
    const LayerId c = g.add({a, b2}, "c");
    const auto depths = g.depths();
    EXPECT_EQ(depths[static_cast<std::size_t>(in)], 0);
    EXPECT_EQ(depths[static_cast<std::size_t>(a)], 1);
    EXPECT_EQ(depths[static_cast<std::size_t>(b2)], 2);
    EXPECT_EQ(depths[static_cast<std::size_t>(c)], 3); // longest path
}

TEST(Graph, TotalsAggregate)
{
    Graph g;
    const LayerId in = g.input({8, 8, 3});
    const LayerId a = g.conv(in, 4, 3, 1, 1);
    const LayerId b = g.conv(a, 8, 3, 1, 1);
    (void)b;
    EXPECT_EQ(g.totalMacs(),
              g.layer(a).macs() + g.layer(b).macs());
    EXPECT_EQ(g.totalParams(),
              g.layer(a).paramCount() + g.layer(b).paramCount());
    EXPECT_EQ(g.layerCount(), 2u);
    EXPECT_EQ(g.macLayerCount(), 2u);
}

TEST(Graph, ValidatePassesOnWellFormed)
{
    Graph g;
    const LayerId in = g.input({8, 8, 3});
    g.conv(in, 4, 3);
    EXPECT_NO_THROW(g.validate());
}

TEST(Graph, ValidateRejectsEmpty)
{
    Graph g;
    EXPECT_THROW(g.validate(), ConfigError);
}

TEST(Graph, ConvOnEmptyOutputFatals)
{
    Graph g;
    const LayerId in = g.input({2, 2, 3});
    EXPECT_THROW(g.conv(in, 4, 5, 1, 0), ConfigError);
}

TEST(Graph, OpNames)
{
    EXPECT_STREQ(opName(OpType::Conv), "Conv");
    EXPECT_STREQ(opName(OpType::Concat), "Concat");
    EXPECT_STREQ(opName(OpType::FullyConnected), "FC");
}

TEST(Graph, AutoNamesAreUnique)
{
    Graph g;
    const LayerId in = g.input({8, 8, 3});
    const LayerId a = g.conv(in, 4, 3);
    const LayerId b = g.conv(a, 4, 3);
    EXPECT_NE(g.layer(a).name, g.layer(b).name);
}

} // namespace
} // namespace ad::graph
