// adlint fixture: wall-clock reads outside src/obs. Never compiled.
#include <chrono>
#include <cstdint>

std::uint64_t
timestamp()
{
    // BAD: wall time in scheduling-adjacent code — nondeterministic.
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

double
wallSeconds()
{
    // BAD: same problem through a different clock.
    const auto a = std::chrono::high_resolution_clock::now();
    const auto b = std::chrono::high_resolution_clock::now();
    return std::chrono::duration<double>(b - a).count();
}

std::int64_t
epochMillis()
{
    // BAD: calendar time is even less reproducible.
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

// Expected findings:
//   wall-clock (steady_clock)
//   wall-clock (high_resolution_clock, twice)
//   wall-clock (system_clock)
