// adlint fixture: unordered-container iteration hazards. Never compiled.
#include <cstddef>
#include <numeric>
#include <string>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> fixture_scores;
std::unordered_set<std::string> fixture_names;

double
orderLeaks()
{
    double first = 0.0;
    // BAD: hash-table order decides which element is "first".
    for (const auto &[id, score] : fixture_scores) {
        first = score;
        break;
    }
    return first;
}

std::string
concatLeaks()
{
    // BAD: iterator-based traversal is the same hazard.
    return std::accumulate(fixture_names.begin(), fixture_names.end(),
                           std::string{});
}

int
unjustifiedAllowlist()
{
    int n = 0;
    // adlint: unordered-iter-ok
    for (const auto &[id, score] : fixture_scores)
        n += static_cast<int>(id);
    return n;
}

// Expected findings:
//   unordered-iter            (range-for in orderLeaks)
//   unordered-iter            (fixture_names.begin() in concatLeaks)
//   allowlist-justification   (marker without a reason)
