// adlint fixture: the justified-allowlist convention. Must lint CLEAN.
#include <cstdint>
#include <unordered_map>
#include <vector>

std::unordered_map<std::uint64_t, std::uint64_t> fixture_sizes;

std::uint64_t
orderInsensitiveSum()
{
    std::uint64_t total = 0;
    // adlint: unordered-iter-ok — integer addition is commutative and
    // associative; the result is independent of visit order.
    for (const auto &[key, bytes] : fixture_sizes)
        total += bytes;
    return total;
}

std::vector<std::uint64_t>
sortedKeys()
{
    std::vector<std::uint64_t> keys;
    // adlint: unordered-iter-ok — keys are sorted by the caller before
    // any decision is made on them.
    for (const auto &[key, bytes] : fixture_sizes)
        keys.push_back(key);
    return keys;
}

// Expected findings: none.
