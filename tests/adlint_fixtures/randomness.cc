// adlint fixture: nondeterministic randomness sources. Never compiled.
#include <chrono>
#include <cstdlib>
#include <random>

int
cRand()
{
    srand(42);          // BAD: global C PRNG state
    return rand();      // BAD: unseeded/global randomness
}

unsigned
entropySeed()
{
    std::random_device rd; // BAD: non-deterministic entropy
    return rd();
}

std::uint64_t
wallClockSeed()
{
    // BAD: run-dependent seed — irreproducible schedules.
    std::mt19937_64 gen(std::chrono::steady_clock::now().time_since_epoch().count());
    return gen();
}

// Expected findings:
//   raw-rand   (srand)
//   raw-rand   (rand)
//   raw-rand   (random_device)
//   raw-rand   (time-seeded mt19937)
//   wall-clock (steady_clock read in the seed expression)
