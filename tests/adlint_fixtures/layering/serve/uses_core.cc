// adlint fixture: downward includes only. This file sits in a `serve/`
// directory (rank 5) and includes lower-ranked headers, which the layer
// manifest allows. Must lint CLEAN. Never compiled.

#include "core/scheduler.hh"
#include "util/common.hh"

void
fixtureDownwardEdges()
{
}

// Expected findings: none.
