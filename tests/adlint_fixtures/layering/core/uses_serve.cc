// adlint fixture: upward include. This file sits in a `core/` directory
// (rank 3 in tools/adlint/layers.txt) and includes a `serve/` header
// (rank 5) — an upward edge that breaks the module DAG. Never compiled.

#include "serve/serve_loop.hh"
#include "util/common.hh" // downward: fine

void
fixtureUpwardEdge()
{
}

// Expected findings:
//   layer-conformance  line 5
