// adlint fixture: unordered parallel reduction. Never compiled.
#include <cstddef>
#include <vector>

struct FakePool
{
    template <typename Fn>
    void
    parallelFor(std::size_t n, Fn &&fn)
    {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
    }
};

double
racyMean(const std::vector<double> &xs)
{
    FakePool pool;
    double total = 0.0;
    pool.parallelFor(xs.size(), [&](std::size_t i) {
        total += xs[i]; // BAD: claim-order float reduction (and a race)
    });
    return total / static_cast<double>(xs.size());
}

double
fixedOrderMean(const std::vector<double> &xs)
{
    FakePool pool;
    std::vector<double> slots(xs.size());
    pool.parallelFor(xs.size(), [&](std::size_t i) {
        slots[i] = xs[i] * 2.0; // fine: per-index slot write
    });
    double total = 0.0;
    for (double v : slots) // fine: sequential, fixed-order reduce
        total += v;
    return total / static_cast<double>(xs.size());
}

// Expected findings:
//   fp-parallel-reduce   (total += in racyMean's lambda, exactly one)
