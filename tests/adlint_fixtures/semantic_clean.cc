// adlint fixture: known-good twins of the v2-rule hazards. Every
// snippet here is the sanctioned spelling of something the bad fixtures
// get flagged for. Must lint CLEAN. Never compiled.
#include <cstdint>
#include <vector>

enum class FixtureMode { Fast, Exact, Hybrid };

const char *
fixtureModeName(FixtureMode m)
{
    switch (m) { // exhaustive: -Wswitch guards new enumerators
      case FixtureMode::Fast:
        return "fast";
      case FixtureMode::Exact:
        return "exact";
      case FixtureMode::Hybrid:
        return "hybrid";
    }
    return "unknown"; // shared fallback lives after the switch
}

std::uint64_t accumulateCycles();

void
sanctionedNarrowing(const std::vector<int> &xs)
{
    std::uint64_t total = accumulateCycles();
    std::int64_t widened = total; // 64-bit target: no bits lost
    // Bounded by the atom budget, far below 2^31.
    int narrowed = static_cast<int>(total);

    for (std::size_t i = 0; i < xs.size(); ++i) // counter spans extent
        (void)xs[i];

    (void)widened;
    (void)narrowed;
}

// Expected findings: none.
