// adlint fixture: address-dependent ordering hazards. Never compiled.
#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>

struct Node
{
    int id;
};

// BAD: map ordered by pointer value — ASLR changes iteration order.
std::map<Node *, int> fixture_by_ptr;

// BAD: unordered flavor has the same identity problem.
std::unordered_map<const Node *, int> fixture_by_cptr;

std::uintptr_t
addressAsKey(Node *n)
{
    // BAD: smuggling the address into an integer key/sort value.
    return reinterpret_cast<std::uintptr_t>(n);
}

std::size_t
hashTieBreak(int id)
{
    // BAD: implementation-defined value deciding a tie-break.
    return std::hash<int>{}(id);
}

// Expected findings:
//   pointer-key     (std::map<Node *, ...>)
//   pointer-key     (std::unordered_map<const Node *, ...>)
//   pointer-key     (reinterpret_cast<std::uintptr_t>)
//   hash-tiebreak   (std::hash<int>)
