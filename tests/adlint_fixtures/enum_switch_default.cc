// adlint fixture: default arm over a project enum. Never compiled.

enum class FixtureMode { Fast, Exact, Hybrid };

const char *
fixtureModeName(FixtureMode m)
{
    switch (m) { // the default arm masks -Wswitch for FixtureMode
      case FixtureMode::Fast:
        return "fast";
      case FixtureMode::Exact:
        return "exact";
      default:
        return "hybrid";
    }
}

// Expected findings:
//   enum-switch-default  line 8
