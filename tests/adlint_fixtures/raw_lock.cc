// adlint fixture: raw mutex manipulation outside src/util. Never compiled.
#include <mutex>

std::mutex fixture_mu;

void
rawLockHazards()
{
    fixture_mu.lock(); // invisible to clang's thread-safety analysis
    fixture_mu.unlock();
    std::lock_guard<std::mutex> guard(fixture_mu); // unannotated guard
}

// Expected findings:
//   raw-lock  line 9   (.lock())
//   raw-lock  line 10  (.unlock())
//   raw-lock  line 11  (std::lock_guard instead of util::MutexLock)
