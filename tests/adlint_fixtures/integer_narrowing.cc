// adlint fixture: integer-safety hazards. Never compiled.
#include <cstdint>
#include <vector>

std::uint64_t accumulateCycles();

void
narrowingHazards(const std::vector<int> &xs)
{
    std::uint64_t total = accumulateCycles();
    int narrowed = total; // silent truncation above 2^31

    for (int i = 0; i < xs.size(); ++i) // counter wraps on large inputs
        (void)xs[static_cast<std::size_t>(i)];

    int lo = 3;
    std::uint32_t hi = 4;
    if (lo < hi) // lo converts to unsigned; negative lo compares huge
        (void)narrowed;
}

// Expected findings:
//   integer-narrowing  line 11  (64-bit expression into `int`)
//   integer-narrowing  line 13  (`int` counter over a .size() extent)
//   integer-narrowing  line 18  (signed/unsigned comparison)
