/**
 * @file
 * Tests for the atom generators: the simulated-annealing search of
 * Algorithm 1 and the genetic-algorithm comparator of Fig. 5(b).
 */

#include <gtest/gtest.h>

#include "core/atom_generator.hh"
#include "models/models.hh"

namespace ad::core {
namespace {

using engine::CostModel;
using engine::DataflowKind;
using engine::EngineConfig;

const ShapeCatalog &
branchyCatalog()
{
    static const auto graph = models::tinyBranchy();
    static const CostModel model(EngineConfig{},
                                 DataflowKind::KcPartition);
    static const ShapeCatalog catalog(graph, model);
    return catalog;
}

TEST(ShapeEnergy, SingleLayerIsZeroVariance)
{
    graph::Graph g;
    const auto in = g.input({16, 16, 16});
    g.conv(in, 16, 3, 1, 1);
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    std::vector<std::size_t> indices(g.size(), 0);
    double mean = 0;
    EXPECT_DOUBLE_EQ(shapeEnergy(catalog, indices, &mean), 0.0);
    EXPECT_GT(mean, 0.0);
}

TEST(ShapeEnergy, NormalizedByMean)
{
    // Energy is Var/mean^2, so it is scale-free and bounded sensibly.
    const auto &catalog = branchyCatalog();
    std::vector<std::size_t> indices(catalog.graph().size(), 0);
    const double e = shapeEnergy(catalog, indices, nullptr);
    EXPECT_GE(e, 0.0);
}

TEST(Sa, ReducesVariance)
{
    SaOptions opts;
    opts.maxIterations = 300;
    const SaAtomGenerator sa(opts);
    const GenerationResult r = sa.generate(branchyCatalog());
    ASSERT_FALSE(r.varianceTrace.empty());
    EXPECT_LE(r.finalVariance, r.varianceTrace.front() + 1e-12);
    EXPECT_GT(r.meanCycles, 0.0);
}

TEST(Sa, DeterministicBySeed)
{
    SaOptions opts;
    opts.maxIterations = 100;
    opts.seed = 42;
    const GenerationResult a = SaAtomGenerator(opts).generate(
        branchyCatalog());
    const GenerationResult b = SaAtomGenerator(opts).generate(
        branchyCatalog());
    EXPECT_EQ(a.shapes.size(), b.shapes.size());
    for (std::size_t i = 0; i < a.shapes.size(); ++i)
        EXPECT_EQ(a.shapes[i], b.shapes[i]);
    EXPECT_DOUBLE_EQ(a.finalVariance, b.finalVariance);
}

TEST(Sa, ShapesComeFromCatalog)
{
    SaOptions opts;
    opts.maxIterations = 100;
    const GenerationResult r =
        SaAtomGenerator(opts).generate(branchyCatalog());
    const auto &catalog = branchyCatalog();
    for (const auto &l : catalog.graph().layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.empty())
            continue;
        bool found = false;
        for (const auto &cand : cands) {
            if (cand.shape == r.shapes[static_cast<std::size_t>(l.id)])
                found = true;
        }
        EXPECT_TRUE(found) << l.name;
    }
}

TEST(Sa, ConvergenceStopsEarlyWhenEpsilonMet)
{
    SaOptions opts;
    opts.maxIterations = 5000;
    opts.epsilon = 1e9; // trivially satisfied at once
    const GenerationResult r =
        SaAtomGenerator(opts).generate(branchyCatalog());
    EXPECT_LE(r.iterations, 2);
}

TEST(Sa, TraceLengthMatchesIterations)
{
    SaOptions opts;
    opts.maxIterations = 64;
    opts.epsilon = 0.0; // never converges early (variance > 0 likely)
    const GenerationResult r =
        SaAtomGenerator(opts).generate(branchyCatalog());
    EXPECT_EQ(r.varianceTrace.size(),
              static_cast<std::size_t>(r.iterations));
}

TEST(Ga, ReducesVariance)
{
    GaOptions opts;
    opts.generations = 60;
    opts.population = 12;
    const GenerationResult r =
        GaAtomGenerator(opts).generate(branchyCatalog());
    ASSERT_FALSE(r.varianceTrace.empty());
    EXPECT_LE(r.finalVariance, r.varianceTrace.front() + 1e-12);
}

TEST(Ga, DeterministicBySeed)
{
    GaOptions opts;
    opts.generations = 30;
    opts.population = 8;
    opts.seed = 7;
    const GenerationResult a =
        GaAtomGenerator(opts).generate(branchyCatalog());
    const GenerationResult b =
        GaAtomGenerator(opts).generate(branchyCatalog());
    EXPECT_DOUBLE_EQ(a.finalVariance, b.finalVariance);
}

TEST(SaVsGa, SaConvergesAtLeastAsLow)
{
    // The paper's Fig. 5(b) observation: SA stops at lower Var. Allow a
    // small tolerance since both are stochastic.
    SaOptions sa_opts;
    sa_opts.maxIterations = 400;
    GaOptions ga_opts;
    ga_opts.generations = 400;
    ga_opts.population = 16;
    const double sa_var =
        SaAtomGenerator(sa_opts).generate(branchyCatalog())
            .finalVariance;
    const double ga_var =
        GaAtomGenerator(ga_opts).generate(branchyCatalog())
            .finalVariance;
    EXPECT_LE(sa_var, ga_var * 1.5 + 1e-9);
}

TEST(Generators, UtilizationReported)
{
    SaOptions opts;
    opts.maxIterations = 200;
    const GenerationResult r =
        SaAtomGenerator(opts).generate(branchyCatalog());
    EXPECT_GT(r.meanUtilization, 0.0);
    EXPECT_LE(r.meanUtilization, 1.0);
}

} // namespace
} // namespace ad::core
