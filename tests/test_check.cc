/**
 * @file
 * Differential-oracle tests: the loop-nest reference cost model against
 * the analytical ad::engine::CostModel (exact equality over a swept
 * shape grid), the exhaustive brute-force scheduling oracle against the
 * production schedulers (invariants over seeded tiny DAGs), and the
 * simulator conservation audits.
 */

#include <gtest/gtest.h>

#include "check/brute_force.hh"
#include "check/conservation.hh"
#include "check/reference_cost_model.hh"
#include "core/orchestrator.hh"
#include "core/partition.hh"
#include "core/scheduler.hh"
#include "core/validation.hh"
#include "engine/cost_model.hh"
#include "testing_support/random_graph.hh"
#include "util/random.hh"

namespace {

using ad::Cycles;
using ad::check::bruteForceSchedule;
using ad::check::ReferenceCostModel;
using ad::check::roundComputeMakespan;
using ad::engine::AtomWorkload;
using ad::engine::CostModel;
using ad::engine::CostResult;
using ad::engine::DataflowKind;
using ad::engine::EngineConfig;
using ad::graph::OpType;

AtomWorkload
workload(OpType type, int h, int w, int ci, int co, int k, int stride)
{
    AtomWorkload atom;
    atom.type = type;
    atom.h = h;
    atom.w = w;
    atom.ci = ci;
    atom.co = co;
    atom.window.kh = k;
    atom.window.kw = k;
    atom.window.strideH = stride;
    atom.window.strideW = stride;
    return atom;
}

/** Exact-equality comparison of every CostResult field. */
void
expectExactlyEqual(const CostResult &a, const CostResult &r,
                   const AtomWorkload &atom, DataflowKind kind)
{
    SCOPED_TRACE(testing::Message()
                 << ad::graph::opName(atom.type) << " h=" << atom.h
                 << " w=" << atom.w << " ci=" << atom.ci
                 << " co=" << atom.co << " k=" << atom.window.kh
                 << " s=" << atom.window.strideH << " dataflow="
                 << ad::engine::dataflowName(kind));
    EXPECT_EQ(a.cycles, r.cycles);
    EXPECT_EQ(a.computeCycles, r.computeCycles);
    EXPECT_EQ(a.utilization, r.utilization); // bit-exact, same expression
    EXPECT_EQ(a.macs, r.macs);
    EXPECT_EQ(a.ifmapBytes, r.ifmapBytes);
    EXPECT_EQ(a.weightBytes, r.weightBytes);
    EXPECT_EQ(a.ofmapBytes, r.ofmapBytes);
    EXPECT_EQ(a.sramReadBytes, r.sramReadBytes);
    EXPECT_EQ(a.sramWriteBytes, r.sramWriteBytes);
    EXPECT_EQ(a.energyPj, r.energyPj); // bit-exact, same expression
    EXPECT_EQ(a.bufferBytes(), r.bufferBytes());
}

/** Sweep every op-type grid under one (config, dataflow); returns the
 * number of points compared. */
std::size_t
sweepDataflow(const EngineConfig &config, DataflowKind kind)
{
    const CostModel analytical(config, kind);
    const ReferenceCostModel reference(config, kind);
    std::size_t points = 0;
    const auto compare = [&](const AtomWorkload &atom) {
        expectExactlyEqual(analytical.evaluate(atom),
                           reference.evaluate(atom), atom, kind);
        // The narrower entry points must agree with the full evaluation.
        EXPECT_EQ(analytical.cycles(atom), reference.cycles(atom));
        ++points;
    };

    for (int h : {1, 2, 5})
        for (int w : {1, 3})
            for (int ci : {1, 3, 16, 20})
                for (int co : {1, 8, 17})
                    for (int k : {1, 3})
                        for (int stride : {1, 2})
                            compare(workload(OpType::Conv, h, w, ci, co,
                                             k, stride));

    for (int h : {1, 4})
        for (int co : {1, 8, 17})
            for (int stride : {1, 2})
                compare(workload(OpType::DepthwiseConv, h, 2, co, co, 3,
                                 stride));

    for (int ci : {10, 256, 500})
        for (int co : {10, 100, 300})
            compare(workload(OpType::FullyConnected, 1, 1, ci, co, 1, 1));

    for (int h : {2, 5})
        for (int co : {4, 16})
            for (int k : {2, 3})
                compare(workload(OpType::Pool, h, 3, co, co, k, k));
    compare(workload(OpType::GlobalPool, 1, 1, 16, 16, 7, 1));
    for (int h : {2, 7})
        for (int co : {5, 16})
            compare(workload(OpType::Eltwise, h, 3, co, co, 1, 1));

    return points;
}

TEST(ReferenceCostModel, MatchesAnalyticalExactlyOnSweptGrid)
{
    const EngineConfig config; // the paper's 16x16 engine
    std::size_t points = 0;
    points += sweepDataflow(config, DataflowKind::KcPartition);
    points += sweepDataflow(config, DataflowKind::YxPartition);
    // The acceptance bar for the differential sweep: at least 500
    // points across the two primary dataflows.
    EXPECT_GE(points, 500u);
    // Flexible composes the two; sweep it too (reconfig overhead path).
    sweepDataflow(config, DataflowKind::Flexible);
}

TEST(ReferenceCostModel, MatchesAnalyticalOnAsymmetricArray)
{
    EngineConfig config;
    config.peRows = 8;
    config.peCols = 32;
    config.vectorLanes = 8;
    config.configCycles = 5;
    config.reconfigCycles = 3;
    for (DataflowKind kind :
         {DataflowKind::KcPartition, DataflowKind::YxPartition,
          DataflowKind::Flexible})
        sweepDataflow(config, kind);
}

// ---------------------------------------------------------------------
// Brute-force scheduling oracle.
// ---------------------------------------------------------------------

/** Atom cycles of every atom in @p dag under the default KC model. */
std::vector<Cycles>
atomCosts(const ad::core::AtomicDag &dag)
{
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    std::vector<Cycles> cycles(dag.size());
    for (std::size_t i = 0; i < dag.size(); ++i)
        cycles[i] =
            model.cycles(dag.workload(static_cast<ad::core::AtomId>(i)));
    return cycles;
}

TEST(BruteForce, IndependentAtomsPackPerfectly)
{
    // One conv layer split four ways: four equal, independent atoms.
    ad::graph::Graph g("indep");
    const auto in = g.input({4, 4, 8});
    g.conv(in, 8, 1);
    const auto shapes = ad::core::evenPartitionShapes(g, 4);
    const ad::core::AtomicDag dag(g, shapes);
    ASSERT_EQ(dag.size(), 4u);

    const auto cycles = atomCosts(dag);
    EXPECT_EQ(cycles[0], cycles[1]);

    const auto two = bruteForceSchedule(dag, cycles, 2);
    EXPECT_EQ(two.minRounds, 2);
    EXPECT_EQ(two.optimalMakespan, 2 * cycles[0]);

    const auto four = bruteForceSchedule(dag, cycles, 4);
    EXPECT_EQ(four.minRounds, 1);
    EXPECT_EQ(four.optimalMakespan, cycles[0]);
}

TEST(BruteForce, ChainSerializesCompletely)
{
    ad::graph::Graph g("chain");
    auto x = g.input({4, 4, 4});
    x = g.conv(x, 4, 3);
    x = g.conv(x, 8, 1);
    x = g.conv(x, 4, 3);
    const auto shapes = ad::core::evenPartitionShapes(g, 1);
    const ad::core::AtomicDag dag(g, shapes);
    ASSERT_EQ(dag.size(), 3u);

    const auto cycles = atomCosts(dag);
    const auto oracle = bruteForceSchedule(dag, cycles, 4);
    EXPECT_EQ(oracle.minRounds, 3);
    EXPECT_EQ(oracle.optimalMakespan,
              cycles[0] + cycles[1] + cycles[2]);
}

TEST(BruteForce, RejectsOversizedDags)
{
    const auto big = ad::testing::randomAtomicDag(3);
    if (big.dag->size() > 10) {
        const auto cycles = atomCosts(*big.dag);
        EXPECT_THROW(bruteForceSchedule(*big.dag, cycles, 4, 10),
                     ad::ConfigError);
    }
}

/** Build a tiny DAG (<= 10 atoms) for @p seed, or nullptr. */
std::unique_ptr<ad::core::AtomicDag>
tinyDag(std::uint64_t seed)
{
    ad::Rng rng(seed);
    ad::testing::RandomGraphOptions options;
    options.seed = seed;
    options.minBlocks = 1;
    options.maxBlocks = 2;
    const auto graph = ad::testing::randomGraph(options);
    const int tiles = static_cast<int>(rng.uniformInt(1, 2));
    auto dag = std::make_unique<ad::core::AtomicDag>(
        graph, ad::core::evenPartitionShapes(graph, tiles));
    if (dag->size() > 10 || dag->size() < 2)
        return nullptr;
    return dag;
}

TEST(BruteForce, ProductionSchedulersRespectOracleInvariants)
{
    // Over >= 100 seeded tiny DAGs, every production scheduling mode
    // must (a) produce a valid schedule, (b) never use fewer Rounds than
    // feasible, (c) never beat the optimal compute makespan, and (d) for
    // the quality modes (DP, greedy) stay within a fixed factor of it.
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    int checked = 0;
    double worst_ratio = 1.0;
    for (std::uint64_t seed = 0; seed < 400 && checked < 120; ++seed) {
        const auto dag = tinyDag(seed);
        if (!dag)
            continue;
        ++checked;

        const auto cycles = atomCosts(*dag);
        ad::Rng rng(seed ^ 0xabcdULL);
        const int engines = static_cast<int>(rng.uniformInt(2, 4));
        const auto oracle = bruteForceSchedule(*dag, cycles, engines);
        ASSERT_GT(oracle.optimalMakespan, 0);
        ASSERT_GE(oracle.minRounds, 1);

        for (ad::core::SchedMode mode :
             {ad::core::SchedMode::Dp, ad::core::SchedMode::Greedy,
              ad::core::SchedMode::LayerOrder,
              ad::core::SchedMode::LayerBatched}) {
            SCOPED_TRACE(testing::Message()
                         << "seed=" << seed << " engines=" << engines
                         << " mode=" << ad::core::schedModeName(mode));
            ad::core::SchedulerOptions options;
            options.engines = engines;
            options.mode = mode;
            const ad::core::DpScheduler scheduler(*dag, model, options);
            const auto rounds = scheduler.schedule();

            const auto schedule = ad::testing::trivialPlacement(rounds);
            EXPECT_TRUE(
                ad::core::scheduleIsValid(*dag, schedule, engines));

            EXPECT_GE(static_cast<int>(rounds.size()),
                      oracle.minRounds);
            const Cycles makespan =
                roundComputeMakespan(rounds, cycles);
            EXPECT_GE(makespan, oracle.optimalMakespan);
            if (mode == ad::core::SchedMode::Dp ||
                mode == ad::core::SchedMode::Greedy) {
                const double ratio =
                    static_cast<double>(makespan) /
                    static_cast<double>(oracle.optimalMakespan);
                worst_ratio = std::max(worst_ratio, ratio);
                // The quality modes optimize a communication-aware
                // surrogate, not pure compute makespan, so they are
                // allowed slack — but bounded slack.
                EXPECT_LE(ratio, 2.0);
            }
        }
    }
    ASSERT_GE(checked, 100) << "tiny-DAG generator starved the sweep";
    RecordProperty("worst_dp_greedy_ratio", std::to_string(worst_ratio));
}

// ---------------------------------------------------------------------
// Conservation audits.
// ---------------------------------------------------------------------

TEST(Conservation, CleanExecutionPassesAudit)
{
    const auto graph = ad::testing::randomGraph(11);
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    const auto result =
        ad::core::Orchestrator(system, options).run(graph);
    const auto violations = ad::check::auditExecution(
        *result.dag, result.schedule, system, result.report);
    for (const auto &v : violations)
        ADD_FAILURE() << ad::check::auditKindName(v.kind) << ": "
                      << v.what;
    EXPECT_TRUE(ad::check::executionIsClean(*result.dag, result.schedule,
                                            system, result.report));
}

TEST(Conservation, DetectsCorruptedReports)
{
    const auto graph = ad::testing::randomGraph(12);
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    const auto result =
        ad::core::Orchestrator(system, options).run(graph);

    const auto firstKind = [&](const ad::sim::ExecutionReport &broken) {
        const auto violations = ad::check::auditExecution(
            *result.dag, result.schedule, system, broken);
        EXPECT_FALSE(violations.empty());
        return violations.empty() ? ad::check::AuditKind::LaunchRetire
                                  : violations.front().kind;
    };

    auto lost = result.report;
    lost.retiredAtoms -= 1; // an atom launched but never retired
    EXPECT_EQ(firstKind(lost), ad::check::AuditKind::LaunchRetire);

    auto starved = result.report;
    starved.hbmReadBytes = 0; // reads below the compulsory minimum
    EXPECT_EQ(firstKind(starved), ad::check::AuditKind::DramCompulsory);

    auto leaky = result.report;
    leaky.nocEjectedBytes += 64; // flits ejected that nobody injected
    EXPECT_EQ(firstKind(leaky), ad::check::AuditKind::NocConservation);

    auto overrun = result.report;
    ASSERT_FALSE(overrun.engineBusyCycles.empty());
    overrun.engineBusyCycles[0] = overrun.totalCycles + 1;
    EXPECT_EQ(firstKind(overrun), ad::check::AuditKind::EngineOverrun);
}

TEST(Conservation, CompulsoryTrafficIsPositiveForRealModels)
{
    const auto graph = ad::testing::randomGraph(13);
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    const auto result =
        ad::core::Orchestrator(system, options).run(graph);
    const ad::Bytes compulsory = ad::check::compulsoryHbmReadBytes(
        *result.dag, result.schedule, system);
    EXPECT_GT(compulsory, 0);
    EXPECT_LE(compulsory, result.report.hbmReadBytes);
}

} // namespace
