/**
 * @file
 * Dijkstra-Through-Time planner tests (DESIGN.md Sec. 14): the search
 * against the exhaustive brute-force oracle on every tractable seeded
 * DAG (exact optimality, not just a bound), the DttPlanner against
 * every other strategy on the tiny zoo nets, determinism across thread
 * counts, the tractability-gate fallback, the canonical state key, and
 * the commAware objective variant.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/dtt.hh"
#include "baselines/planners.hh"
#include "check/brute_force.hh"
#include "core/dtt_search.hh"
#include "core/orchestrator.hh"
#include "core/plan_io.hh"
#include "core/validation.hh"
#include "engine/cached_cost_model.hh"
#include "models/models.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "sim/system.hh"
#include "testing_support/random_graph.hh"
#include "util/thread_pool.hh"

namespace {

using ad::Cycles;
using ad::check::assertNotWorseThanBruteForce;
using ad::check::bruteForceSchedule;
using ad::check::roundComputeMakespan;
using ad::core::AtomId;
using ad::core::DttOptions;
using ad::core::dttSearch;
using ad::core::dttStateKey;
using ad::core::RoundList;

ad::sim::SystemConfig
smallSystem()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    return system;
}

/** Run @p body under @p threads workers (global pool, no restore). */
template <typename Fn>
auto
withThreads(int threads, Fn &&body)
{
    ad::util::ThreadPool::setGlobalThreads(threads);
    return body();
}

/** Deterministic synthetic atom costs: varied magnitudes plus repeated
 * values, so ties exercise the saturation pruning's equal-cost paths. */
std::vector<Cycles>
syntheticCycles(std::size_t n, std::uint64_t seed)
{
    std::vector<Cycles> cycles(n);
    for (std::size_t i = 0; i < n; ++i)
        cycles[i] = 50 + (seed * 31 + i * 37) % 400;
    // Force at least one exact tie when there is room.
    if (n >= 2)
        cycles[n - 1] = cycles[0];
    return cycles;
}

/** Every atom exactly once and no atom before its producers. */
void
expectValidRounds(const ad::core::AtomicDag &dag,
                  const RoundList &rounds)
{
    std::set<AtomId> done;
    std::size_t scheduled = 0;
    for (const auto &round : rounds) {
        for (AtomId a : round) {
            for (AtomId dep : dag.depsSpan(a)) {
                EXPECT_TRUE(done.count(dep))
                    << "atom " << a << " ran before producer " << dep;
            }
        }
        for (AtomId a : round) {
            EXPECT_TRUE(done.insert(a).second)
                << "atom " << a << " scheduled twice";
            ++scheduled;
        }
    }
    EXPECT_EQ(scheduled, dag.size());
}

/** Per-atom cycles of @p dag under the real cost model. */
std::vector<Cycles>
modelCycles(const ad::core::AtomicDag &dag,
            const ad::sim::SystemConfig &system)
{
    const ad::engine::CachedCostModel model(system.engine,
                                            system.dataflow);
    std::vector<Cycles> cycles(dag.size());
    for (std::size_t i = 0; i < dag.size(); ++i)
        cycles[i] = model.cycles(dag.workload(static_cast<AtomId>(i)));
    return cycles;
}

/** Round-compute makespan of a mapped schedule. */
Cycles
scheduleMakespan(const ad::core::Schedule &schedule,
                 const std::vector<Cycles> &cycles)
{
    RoundList rounds;
    for (const auto &round : schedule.rounds) {
        std::vector<AtomId> ids;
        for (const auto &p : round.placements)
            ids.push_back(p.atom);
        rounds.push_back(std::move(ids));
    }
    return roundComputeMakespan(rounds, cycles);
}

// On every seeded DAG small enough for the exhaustive oracle, the DTT
// search must attain — not approximate — the optimal makespan, for
// several engine counts, including engines=1 (pure serialization).
TEST(DttSearch, MatchesBruteForceOptimumOnAllTractableSeeds)
{
    std::size_t tested = 0;
    for (std::uint64_t seed = 0; seed < 200 && tested < 24; ++seed) {
        const auto random = ad::testing::randomAtomicDag(seed);
        if (random.dag->size() > 12)
            continue;
        ++tested;
        const auto cycles =
            syntheticCycles(random.dag->size(), seed);
        for (const int engines : {1, 2, 4}) {
            SCOPED_TRACE(testing::Message()
                         << "seed=" << seed << " atoms="
                         << random.dag->size()
                         << " engines=" << engines);
            DttOptions options;
            options.engines = engines;
            const auto found =
                dttSearch(*random.dag, cycles, options);
            ASSERT_TRUE(found.has_value());
            expectValidRounds(*random.dag, found->rounds);
            EXPECT_EQ(found->cost, found->makespan);
            EXPECT_EQ(roundComputeMakespan(found->rounds, cycles),
                      found->makespan);

            const auto oracle =
                bruteForceSchedule(*random.dag, cycles, engines);
            EXPECT_EQ(found->makespan, oracle.optimalMakespan);

            const auto cmp = assertNotWorseThanBruteForce(
                *random.dag, cycles, engines, found->rounds);
            EXPECT_TRUE(cmp.isOptimal());
            EXPECT_EQ(cmp.slackCycles(), 0u);
        }
    }
    // The sweep must not go vacuous if the generator drifts.
    EXPECT_GE(tested, 10u);
}

// The same equality holds under the real cost model's atom cycles (the
// planner's production configuration), not just synthetic costs.
TEST(DttSearch, MatchesBruteForceUnderRealCostModel)
{
    const auto system = smallSystem();
    std::size_t tested = 0;
    for (std::uint64_t seed = 0; seed < 120 && tested < 8; ++seed) {
        const auto random = ad::testing::randomAtomicDag(seed);
        if (random.dag->size() > 12)
            continue;
        ++tested;
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto cycles = modelCycles(*random.dag, system);
        DttOptions options;
        options.engines = system.engines();
        const auto found = dttSearch(*random.dag, cycles, options);
        ASSERT_TRUE(found.has_value());
        const auto cmp = assertNotWorseThanBruteForce(
            *random.dag, cycles, system.engines(), found->rounds);
        EXPECT_TRUE(cmp.isOptimal());
    }
    EXPECT_GE(tested, 4u);
}

// Heuristic schedules must never *beat* the oracle (that would mean
// the oracle and scheduler disagree), and the helper reports their
// slack faithfully.
TEST(DttSearch, AssertNotWorseAcceptsHeuristicSlack)
{
    // First seed whose DAG fits the oracle.
    std::uint64_t seed = 0;
    auto random = ad::testing::randomAtomicDag(seed);
    while (random.dag->size() > 12) {
        ASSERT_LT(seed, 200u) << "no oracle-tractable seed found";
        random = ad::testing::randomAtomicDag(++seed);
    }
    const auto cycles = syntheticCycles(random.dag->size(), seed);
    // Worst feasible schedule: one atom per round, dependency order.
    RoundList serial;
    for (std::size_t a = 0; a < random.dag->size(); ++a)
        serial.push_back({static_cast<AtomId>(a)});
    const auto cmp = assertNotWorseThanBruteForce(
        *random.dag, cycles, 4, serial);
    Cycles sum = 0;
    for (const Cycles c : cycles)
        sum += c;
    EXPECT_EQ(cmp.makespan, sum);
    EXPECT_GE(cmp.makespan, cmp.optimalMakespan);
    EXPECT_EQ(cmp.slackCycles(),
              cmp.makespan - cmp.optimalMakespan);
}

// On the tiny zoo nets the full DttPlanner must (a) produce an exact
// Dtt-mode schedule, (b) never exceed AD's model makespan on the
// shared DAG, and (c) never exceed any baseline's simulated cycles.
TEST(DttPlanner, NeverWorseThanAnyStrategyOnTinyZooNets)
{
    const auto system = smallSystem();
    for (const std::string net :
         {"tiny_linear", "tiny_residual", "tiny_branchy"}) {
        SCOPED_TRACE(net);
        const auto graph = ad::models::buildByName(net);

        const auto dtt =
            ad::baselines::makePlanner({"DTT", system, {}, {}})->plan(graph);
        ASSERT_TRUE(dtt.dag);
        EXPECT_EQ(dtt.schedule.mode, ad::core::SchedMode::Dtt)
            << "search fell back — tiny nets must stay tractable";
        EXPECT_TRUE(
            ad::core::scheduleIsValid(*dtt.dag, dtt.schedule,
                                      system.engines()));

        const auto ad_plan =
            ad::baselines::makePlanner({"AD", system, {}, {}})->plan(graph);
        const auto cycles = modelCycles(*dtt.dag, system);
        EXPECT_LE(scheduleMakespan(dtt.schedule, cycles),
                  scheduleMakespan(ad_plan.schedule,
                                   modelCycles(*ad_plan.dag, system)));

        for (const std::string other : {"LS", "Rammer", "IL-Pipe"}) {
            SCOPED_TRACE(other);
            const auto baseline =
                ad::baselines::makePlanner({other, system, {}, {}})
                    ->plan(graph);
            EXPECT_LE(dtt.report.totalCycles,
                      baseline.report.totalCycles);
        }
    }
}

// Bit-identical plans for any worker-thread count: report, schedule,
// and search metrics all agree between 1 and 4 threads.
TEST(DttPlanner, BitIdenticalAcrossThreadCounts)
{
    const auto system = smallSystem();
    const auto graph = ad::models::buildByName("tiny_residual");
    const auto plan_once = [&] {
        ad::obs::MetricsRegistry metrics;
        ad::obs::Instrumentation ins{nullptr, &metrics};
        const ad::baselines::DttPlanner planner(system);
        auto plan = planner.plan(graph, &ins);
        return std::make_pair(
            std::move(plan),
            metrics.counter("dtt.discovered_states").value());
    };
    auto [one, states_one] = withThreads(1, plan_once);
    auto [four, states_four] = withThreads(4, plan_once);

    EXPECT_TRUE(one.report.bitIdentical(four.report));
    EXPECT_EQ(states_one, states_four);
    ASSERT_EQ(one.schedule.rounds.size(), four.schedule.rounds.size());
    for (std::size_t t = 0; t < one.schedule.rounds.size(); ++t) {
        const auto &a = one.schedule.rounds[t].placements;
        const auto &b = four.schedule.rounds[t].placements;
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
            EXPECT_EQ(a[i].atom, b[i].atom);
            EXPECT_EQ(a[i].engine, b[i].engine);
        }
    }
}

// When a tractability gate trips, the planner keeps the AD plan
// unchanged and reports the downgrade in dtt.exact.
TEST(DttPlanner, FallsBackToAdPlanWhenGatesTrip)
{
    const auto system = smallSystem();
    const auto graph = ad::models::buildByName("tiny_linear");

    ad::core::DttOptions search;
    search.maxAtoms = 4; // tiny_linear's DAG is larger — always trips
    const ad::baselines::DttPlanner planner(system, {}, search);
    ad::obs::MetricsRegistry metrics;
    ad::obs::Instrumentation ins{nullptr, &metrics};
    const auto plan = planner.plan(graph, &ins);

    EXPECT_EQ(metrics.gauge("dtt.exact").value(), 0.0);
    ASSERT_TRUE(plan.dag);
    EXPECT_NE(plan.schedule.mode, ad::core::SchedMode::Dtt);

    const ad::core::Orchestrator base(system);
    const auto ad_plan = base.plan(graph);
    EXPECT_TRUE(plan.report.bitIdentical(ad_plan.report));
}

// Tractability gates return nullopt (never a wrong answer, never a
// crash): the atom-count gate and the expansion-budget gate.
TEST(DttSearch, GatesReturnNulloptNotWrongAnswers)
{
    const auto random = ad::testing::randomAtomicDag(1);
    const auto cycles = syntheticCycles(random.dag->size(), 1);

    DttOptions tiny_atoms;
    tiny_atoms.engines = 4;
    tiny_atoms.maxAtoms = 1;
    EXPECT_FALSE(
        dttSearch(*random.dag, cycles, tiny_atoms).has_value());

    if (random.dag->size() >= 3) {
        DttOptions tiny_budget;
        tiny_budget.engines = 1;
        tiny_budget.maxExpandedStates = 1;
        EXPECT_FALSE(
            dttSearch(*random.dag, cycles, tiny_budget).has_value());
    }
}

// The canonical state key is the explicit little-endian FNV-1a of the
// (executed, frontier) pair: order-sensitive, collision-distinct on
// swapped operands, and pinned to the project hash.
TEST(DttSearch, StateKeyIsCanonicalFnv)
{
    const std::uint64_t executed = 0x0123456789ABCDEFull;
    const std::uint64_t frontier = 0x00FF00FF00FF00FFull;

    char buf[16];
    for (int i = 0; i < 8; ++i) {
        buf[i] = static_cast<char>((executed >> (8 * i)) & 0xFF);
        buf[8 + i] = static_cast<char>((frontier >> (8 * i)) & 0xFF);
    }
    EXPECT_EQ(dttStateKey(executed, frontier),
              ad::core::fnv1a64(std::string_view(buf, sizeof(buf))));

    EXPECT_NE(dttStateKey(executed, frontier),
              dttStateKey(frontier, executed));
    EXPECT_EQ(dttStateKey(executed, frontier),
              dttStateKey(executed, frontier));
    EXPECT_NE(dttStateKey(executed, 0), dttStateKey(0, executed));
}

// The commAware variant charges communication into the objective:
// cost >= compute makespan, rounds stay valid, and two runs agree.
TEST(DttSearch, CommAwareChargesCommunication)
{
    std::size_t tested = 0;
    for (std::uint64_t seed = 0; seed < 120 && tested < 4; ++seed) {
        const auto random = ad::testing::randomAtomicDag(seed);
        if (random.dag->size() > 12)
            continue;
        ++tested;
        SCOPED_TRACE(testing::Message() << "seed=" << seed);
        const auto cycles =
            syntheticCycles(random.dag->size(), seed);
        DttOptions options;
        options.engines = 2;
        options.commAware = true;
        const auto a = dttSearch(*random.dag, cycles, options);
        ASSERT_TRUE(a.has_value());
        expectValidRounds(*random.dag, a->rounds);
        EXPECT_GE(a->cost, a->makespan);
        const auto b = dttSearch(*random.dag, cycles, options);
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(a->cost, b->cost);
        EXPECT_EQ(a->rounds, b->rounds);
        EXPECT_EQ(a->goalStateKey, b->goalStateKey);
    }
    EXPECT_GE(tested, 2u);
}

// An empty-DAG search is the trivial plan, not a crash.
TEST(DttSearch, HandlesDegenerateInputs)
{
    // 64+ atom masks are rejected, not truncated.
    const auto big = ad::testing::randomAtomicDag(7);
    std::vector<Cycles> cycles(big.dag->size(), 10);
    DttOptions options;
    options.engines = 4;
    options.maxAtoms = 1'000; // gate wide open; the 63-bit cap rules
    if (big.dag->size() > 63)
        EXPECT_FALSE(dttSearch(*big.dag, cycles, options).has_value());
    else
        EXPECT_TRUE(dttSearch(*big.dag, cycles, options).has_value());
}

} // namespace
