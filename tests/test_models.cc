/**
 * @file
 * Tests for the model zoo: every Table-I workload must build, validate,
 * and match the published structural characteristics (parameter counts,
 * depth/branching properties).
 */

#include <gtest/gtest.h>

#include <set>

#include "models/models.hh"

namespace ad::models {
namespace {

using graph::Graph;
using graph::OpType;

class TableOneModelTest
    : public ::testing::TestWithParam<ModelEntry>
{
};

TEST_P(TableOneModelTest, BuildsAndValidates)
{
    const Graph g = GetParam().build();
    EXPECT_NO_THROW(g.validate());
    EXPECT_GT(g.layerCount(), 0u);
}

TEST_P(TableOneModelTest, InsertionOrderIsTopological)
{
    const Graph g = GetParam().build();
    for (const graph::Layer &l : g.layers()) {
        for (graph::LayerId src : l.inputs)
            EXPECT_LT(src, l.id);
    }
}

TEST_P(TableOneModelTest, SingleSinkClassifier)
{
    const Graph g = GetParam().build();
    EXPECT_EQ(g.sinks().size(), 1u);
}

TEST_P(TableOneModelTest, EveryNonInputHasProducers)
{
    const Graph g = GetParam().build();
    for (const graph::Layer &l : g.layers()) {
        if (l.type != OpType::Input)
            EXPECT_FALSE(l.inputs.empty()) << l.name;
    }
}

TEST_P(TableOneModelTest, PositiveComputeAndParams)
{
    const Graph g = GetParam().build();
    EXPECT_GT(g.totalMacs(), 0u);
    EXPECT_GT(g.totalParams(), 0);
}

TEST_P(TableOneModelTest, DepthsReachableAndBounded)
{
    const Graph g = GetParam().build();
    const auto depths = g.depths();
    int max_depth = 0;
    for (int d : depths) {
        EXPECT_GE(d, 0);
        max_depth = std::max(max_depth, d);
    }
    EXPECT_GT(max_depth, 3);
    EXPECT_LT(static_cast<std::size_t>(max_depth), g.size());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, TableOneModelTest, ::testing::ValuesIn(tableOneModels()),
    [](const ::testing::TestParamInfo<ModelEntry> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Vgg19, MatchesPublishedShape)
{
    const Graph g = vgg19();
    // 16 conv + 3 FC weighted layers, ~138-144M params.
    std::size_t convs = 0, fcs = 0;
    for (const auto &l : g.layers()) {
        convs += l.type == OpType::Conv;
        fcs += l.type == OpType::FullyConnected;
    }
    EXPECT_EQ(convs, 16u);
    EXPECT_EQ(fcs, 3u);
    EXPECT_NEAR(static_cast<double>(g.totalParams()), 143.7e6, 2e6);
    // Strictly layer-cascaded: every layer has exactly one input.
    for (const auto &l : g.layers()) {
        if (l.type != OpType::Input)
            EXPECT_EQ(l.inputs.size(), 1u);
    }
}

TEST(Resnet50, MatchesPublishedShape)
{
    const Graph g = resnet50();
    EXPECT_NEAR(static_cast<double>(g.totalParams()), 25.5e6, 1e6);
    // Residual bypass: contains eltwise adds.
    std::size_t adds = 0;
    for (const auto &l : g.layers())
        adds += l.type == OpType::Eltwise;
    EXPECT_EQ(adds, 16u); // 3 + 4 + 6 + 3 bottleneck blocks
    EXPECT_NEAR(static_cast<double>(g.totalMacs()), 4.1e9, 0.3e9);
}

TEST(Resnet152, MatchesPublishedShape)
{
    const Graph g = resnet152();
    EXPECT_NEAR(static_cast<double>(g.totalParams()), 60.0e6, 2e6);
    std::size_t adds = 0;
    for (const auto &l : g.layers())
        adds += l.type == OpType::Eltwise;
    EXPECT_EQ(adds, 50u); // 3 + 8 + 36 + 3
}

TEST(Resnet1001, IsVeryDeep)
{
    const Graph g = resnet1001();
    // 9 weighted layers per 3 blocks -> 1001 weighted layers total.
    std::size_t convs = 0, fcs = 0;
    for (const auto &l : g.layers()) {
        convs += l.type == OpType::Conv;
        fcs += l.type == OpType::FullyConnected;
    }
    EXPECT_EQ(convs + fcs, 1001u + 3u); // +3 projection shortcuts
    EXPECT_GT(g.size(), 1300u);
}

TEST(InceptionV3, HasBranchingCells)
{
    const Graph g = inceptionV3();
    std::size_t concats = 0;
    for (const auto &l : g.layers())
        concats += l.type == OpType::Concat;
    EXPECT_EQ(concats, 11u); // mixed0..mixed10
    EXPECT_NEAR(static_cast<double>(g.totalParams()), 23.8e6, 2e6);
}

TEST(Nasnet, IrregularTopology)
{
    const Graph g = nasnet();
    // NAS cells: many eltwise combiners and concats.
    std::size_t adds = 0, concats = 0, dws = 0;
    for (const auto &l : g.layers()) {
        adds += l.type == OpType::Eltwise;
        concats += l.type == OpType::Concat;
        dws += l.type == OpType::DepthwiseConv;
    }
    EXPECT_GT(adds, 30u);
    EXPECT_GT(concats, 10u);
    EXPECT_GT(dws, 30u);
}

TEST(Pnasnet, IrregularTopology)
{
    const Graph g = pnasnet();
    std::size_t adds = 0;
    for (const auto &l : g.layers())
        adds += l.type == OpType::Eltwise;
    EXPECT_GT(adds, 20u);
}

TEST(EfficientNet, DepthwiseHeavy)
{
    const Graph g = efficientNet();
    std::size_t dws = 0;
    for (const auto &l : g.layers())
        dws += l.type == OpType::DepthwiseConv;
    EXPECT_EQ(dws, 16u); // one per MBConv block
    EXPECT_LT(g.totalParams(), 10'000'000);
}

TEST(Zoo, BuildByNameMatchesEntries)
{
    for (const ModelEntry &e : tableOneModels()) {
        const Graph g = buildByName(e.name);
        EXPECT_EQ(g.name(), e.build().name());
    }
}

TEST(Zoo, BuildByNameRejectsUnknown)
{
    EXPECT_THROW(buildByName("alexnet"), ConfigError);
}

TEST(Zoo, EightModels)
{
    EXPECT_EQ(tableOneModels().size(), 8u);
    std::set<std::string> names;
    for (const auto &e : tableOneModels())
        names.insert(e.name);
    EXPECT_EQ(names.size(), 8u);
}

TEST(TinyModels, BuildAndValidate)
{
    EXPECT_NO_THROW(tinyLinear().validate());
    EXPECT_NO_THROW(tinyResidual().validate());
    EXPECT_NO_THROW(tinyBranchy().validate());
}

TEST(TinyModels, LinearWidthScales)
{
    EXPECT_GT(tinyLinear(64).totalMacs(), tinyLinear(16).totalMacs());
}

} // namespace
} // namespace ad::models
