/**
 * @file
 * Tests for the residency tracker and the paper's buffering strategy
 * (Algorithm 3): storage, eviction order, current-round pinning, dead
 * release, and weight-slice holder tracking.
 */

#include <gtest/gtest.h>

#include "core/partition.hh"
#include "core/residency.hh"
#include "models/models.hh"

namespace ad::core {
namespace {

/** Two-layer chain with one atom each, tiny tiles. */
struct Chain
{
    graph::Graph g;
    std::unique_ptr<AtomicDag> dag;

    explicit Chain(int layers = 3, int dim = 4, int chans = 8)
    {
        auto in = g.input({dim, dim, chans});
        auto x = in;
        for (int i = 0; i < layers; ++i)
            x = g.conv(x, chans, 1, 1, 0, "c" + std::to_string(i));
        dag = std::make_unique<AtomicDag>(
            g, std::vector<TileShape>(g.size(),
                                      TileShape{dim, dim, chans}));
    }
};

TEST(Residency, ProduceThenLocate)
{
    Chain chain;
    ResidencyTracker res(*chain.dag, 4, 1024);
    res.attachSchedule({{0}, {1}, {2}});
    const auto evictions = res.produce(0, 2, 0);
    EXPECT_TRUE(evictions.empty());
    const SourceInfo info = res.locate(0);
    EXPECT_EQ(info.location, Location::OnChip);
    EXPECT_EQ(info.engine, 2);
    EXPECT_EQ(info.bytes, chain.dag->ofmapBytes(0));
}

TEST(Residency, DeadOutputsGoStraightToDram)
{
    Chain chain(1);
    ResidencyTracker res(*chain.dag, 4, 1024);
    res.attachSchedule({{0}});
    // Atom 0 has no consumers: produce() must emit a write-back and not
    // occupy the buffer.
    const auto evictions = res.produce(0, 1, 0);
    ASSERT_EQ(evictions.size(), 1u);
    EXPECT_TRUE(evictions[0].writeBack);
    EXPECT_EQ(evictions[0].atom, 0);
    EXPECT_EQ(res.locate(0).location, Location::OffChip);
    EXPECT_EQ(res.used(1), 0u);
}

TEST(Residency, OversizedTileSpills)
{
    Chain chain(3, 16, 64); // 16*16*64 = 16 KiB tiles
    ResidencyTracker res(*chain.dag, 4, 1024); // 1 KiB buffers
    res.attachSchedule({{0}, {1}, {2}});
    const auto evictions = res.produce(0, 0, 0);
    ASSERT_EQ(evictions.size(), 1u);
    EXPECT_TRUE(evictions[0].writeBack);
    EXPECT_EQ(res.locate(0).location, Location::OffChip);
}

TEST(Residency, NextUseQueries)
{
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 4, 4096);
    res.attachSchedule({{0}, {1}, {2}});
    EXPECT_EQ(res.nextUseAfter(0, 0), 1); // consumer c1 runs in round 1
    EXPECT_EQ(res.nextUseAfter(0, 1), -1);
    EXPECT_EQ(res.nextUseAfter(1, 1), 2);
    EXPECT_EQ(res.nextLayerUseAfter(chain.dag->atom(1).layer, 0), 1);
}

TEST(Residency, BeginRoundReleasesDeadData)
{
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 4, 4096);
    res.attachSchedule({{0}, {1}, {2}});
    res.produce(0, 0, 0);
    ASSERT_EQ(res.locate(0).location, Location::OnChip);
    res.beginRound(1); // consumer round: still live
    EXPECT_EQ(res.locate(0).location, Location::OnChip);
    res.beginRound(2); // past last use: released, no write-back
    EXPECT_EQ(res.locate(0).location, Location::OffChip);
    EXPECT_EQ(res.used(0), 0u);
}

TEST(Residency, Algorithm3EvictsMaxOccupation)
{
    // Two residents: one needed next round (small occupation), one far
    // in the future (large occupation). Overflow must evict the latter.
    graph::Graph g;
    auto in = g.input({4, 4, 8});
    auto a = g.conv(in, 8, 1, 1, 0, "a");
    auto b = g.conv(in, 8, 1, 1, 0, "b");
    auto c = g.conv(a, 8, 1, 1, 0, "c");   // consumes a soon
    auto d = g.conv(b, 8, 1, 1, 0, "d");   // consumes b late
    (void)c;
    (void)d;
    AtomicDag dag(g, std::vector<TileShape>(g.size(),
                                            TileShape{4, 4, 8}));
    // atoms: a=0, b=1, c=2, d=3 (topological construction order)
    ResidencyTracker res(dag, 1, 300); // fits two 128 B tiles only
    res.attachSchedule({{0}, {1}, {2}, {}, {}, {3}});
    res.produce(0, 0, 0); // 'a', next use round 2
    res.produce(1, 0, 1); // 'b', next use round 5 -> larger occupation

    // A third 128 B allocation (a weight slice install during round 2)
    // forces one eviction: 'b' must go; 'a' is pinned (read this round).
    const auto evictions =
        res.installWeights(dag.atom(2).layer, 0, 0, 128, 2);
    bool evicted_b = false;
    for (const auto &e : evictions) {
        if (e.atom == 1 && e.writeBack)
            evicted_b = true;
        EXPECT_NE(e.atom, 0); // 'a' stays: smaller invalid occupation
    }
    EXPECT_TRUE(evicted_b);
    EXPECT_EQ(res.locate(1).location, Location::OffChip);
}

TEST(Residency, CurrentRoundResidentsArePinned)
{
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 1, 160); // one 128 B tile + slack
    res.attachSchedule({{0}, {1}, {2}});
    res.produce(0, 0, 0);
    // During round 1 atom 0 is being consumed: installing a weight slice
    // must not evict it.
    res.installWeights(chain.dag->atom(1).layer, 0, 0, 64, 1);
    EXPECT_EQ(res.locate(0).location, Location::OnChip);
}

TEST(Residency, WeightHoldersTracked)
{
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 4, 4096);
    res.attachSchedule({{0}, {1}, {2}});
    const auto layer = chain.dag->atom(1).layer;
    EXPECT_EQ(res.weightHolder(layer, 0), -1);
    res.installWeights(layer, 0, 2, 128, 0);
    EXPECT_TRUE(res.weightsResident(layer, 0, 2));
    EXPECT_FALSE(res.weightsResident(layer, 0, 1));
    EXPECT_EQ(res.weightHolder(layer, 0), 2);
}

TEST(Residency, HugeWeightSlicesAreStreamed)
{
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 4, 4096, /*max_resident_weight=*/256);
    res.attachSchedule({{0}, {1}, {2}});
    const auto layer = chain.dag->atom(1).layer;
    res.installWeights(layer, 0, 1, 1024, 0); // above the cap
    EXPECT_FALSE(res.weightsResident(layer, 0, 1));
    EXPECT_EQ(res.weightHolder(layer, 0), -1);
}

TEST(Residency, WeightFallbackParksOnRoomiestEngine)
{
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 2, 256);
    res.attachSchedule({{0}, {1}, {2}});
    // Fill engine 0 with pinned data (consumed in round 1).
    res.produce(0, 0, 0);
    res.beginRound(1);
    const auto layer = chain.dag->atom(1).layer;
    // 200 B slice does not fit engine 0 beside the pinned 128 B tile,
    // but engine 1 is empty: the slice must land there.
    res.installWeights(layer, 0, 0, 200, 1);
    EXPECT_EQ(res.weightHolder(layer, 0), 1);
}

TEST(Residency, WeightKeyRangeChecked)
{
    // A slice outside the low 24 bits (or negative) would corrupt the
    // layer field of the packed key; the tracker must panic instead.
    Chain chain(3);
    ResidencyTracker res(*chain.dag, 4, 4096);
    res.attachSchedule({{0}, {1}, {2}});
    const auto layer = chain.dag->atom(1).layer;
    EXPECT_THROW(res.installWeights(layer, -1, 0, 64, 0),
                 InternalError);
    EXPECT_THROW(res.installWeights(layer, 1 << 24, 0, 64, 0),
                 InternalError);
    EXPECT_THROW(res.weightsResident(layer, 1 << 24, 0), InternalError);
    // The largest representable slice round-trips to its layer.
    res.installWeights(layer, (1 << 24) - 1, 2, 64, 0);
    EXPECT_EQ(res.weightHolder(layer, (1 << 24) - 1), 2);
    EXPECT_TRUE(res.weightsResident(layer, (1 << 24) - 1, 2));
}

TEST(Residency, EngineCountExposed)
{
    Chain chain;
    ResidencyTracker res(*chain.dag, 7, 1024);
    EXPECT_EQ(res.engines(), 7);
    EXPECT_THROW(ResidencyTracker(*chain.dag, 0, 1024), ConfigError);
}

} // namespace
} // namespace ad::core
