#pragma once

/**
 * @file
 * Seeded random-workload generators for the differential-oracle and
 * fuzz suites (and for `adctl validate --network random`).
 *
 * The generators are fully deterministic per seed: the same seed always
 * produces the same graph, tile shapes, and atomic DAG, so a failing
 * fuzz case is reproducible from its seed alone. Generated networks are
 * deliberately small (a few layers, small feature maps) — the point is
 * topological and operator diversity per unit of test time, not
 * realistic compute.
 */

#include <memory>

#include "core/atomic_dag.hh"
#include "core/schedule.hh"
#include "core/scheduler.hh"
#include "graph/graph.hh"

namespace ad::testing {

/** Knobs for randomGraph(); defaults keep tests fast. */
struct RandomGraphOptions
{
    std::uint64_t seed = 1;
    int minBlocks = 2; ///< fewest randomly chosen blocks appended
    int maxBlocks = 5; ///< most randomly chosen blocks appended
};

/**
 * Build a random, valid DNN graph: a trunk of randomly chosen blocks
 * (plain/strided conv, depthwise conv, pooling, residual add, branching
 * concat) with an optional classifier tail. Always single-sink and
 * validate()-clean.
 */
graph::Graph randomGraph(const RandomGraphOptions &options);

/** Shorthand: randomGraph with only the seed set. */
graph::Graph randomGraph(std::uint64_t seed);

/** Result of randomAtomicDag(): the graph plus the derived DAG. */
struct RandomDag
{
    graph::Graph graph;
    std::unique_ptr<core::AtomicDag> dag; ///< holds its own graph copy
    int batch = 1;  ///< batch the DAG was built with
    int tiles = 1;  ///< even-partition tile count used for the shapes
};

/**
 * Build a random atomic DAG: a randomGraph(seed) evenly partitioned
 * with a seed-derived tile count and batch. Deterministic per seed.
 */
RandomDag randomAtomicDag(std::uint64_t seed);

/**
 * Wrap a scheduler RoundList into a Schedule by assigning engines
 * 0, 1, 2, ... within each Round — the trivial placement used when a
 * test needs a Schedule but placement quality is irrelevant.
 */
core::Schedule trivialPlacement(const core::RoundList &rounds);

} // namespace ad::testing
