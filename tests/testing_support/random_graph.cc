#include "random_graph.hh"

#include <initializer_list>
#include <string>

#include "core/partition.hh"
#include "util/random.hh"

namespace ad::testing {

namespace {

/** Uniform pick from a tiny inline list. */
int
pick(Rng &rng, std::initializer_list<int> options)
{
    const auto index = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(options.size()) - 1));
    return options.begin()[index];
}

} // namespace

graph::Graph
randomGraph(const RandomGraphOptions &options)
{
    Rng rng(options.seed);
    graph::Graph g("random_" + std::to_string(options.seed));

    const int spatial = pick(rng, {8, 12, 16});
    const int in_c = pick(rng, {3, 8, 16});
    graph::LayerId x = g.input({spatial, spatial, in_c});
    int h = spatial;
    int c = in_c;

    const int blocks = static_cast<int>(
        rng.uniformInt(options.minBlocks, options.maxBlocks));
    for (int b = 0; b < blocks; ++b) {
        switch (rng.uniformInt(0, 4)) {
          case 0: { // plain conv, occasionally strided
            const int out_c = pick(rng, {8, 12, 16});
            const int k = pick(rng, {1, 3});
            const int stride = (h >= 8 && rng.chance(0.3)) ? 2 : 1;
            x = g.conv(x, out_c, k, stride);
            c = out_c;
            if (stride == 2)
                h = (h + 1) / 2;
            break;
          }
          case 1: { // residual: two same-padded convs back onto the trunk
            const graph::LayerId a = g.conv(x, c, 3, 1);
            const graph::LayerId b2 = g.conv(a, c, 1, 1);
            x = g.add({b2, x});
            break;
          }
          case 2: { // branching concat (Inception-style cell)
            const int c1 = pick(rng, {4, 8});
            const int c2 = pick(rng, {4, 8});
            const graph::LayerId b1 = g.conv(x, c1, 1, 1);
            const graph::LayerId b2 = g.conv(x, c2, 3, 1);
            x = g.concat({b1, b2});
            c = c1 + c2;
            break;
          }
          case 3: { // downsampling pool (skipped once the map is tiny)
            if (h >= 4) {
                x = g.pool(x, 2, 2);
                h /= 2;
            } else {
                x = g.conv(x, c, 1, 1);
            }
            break;
          }
          case 4: // depthwise conv (channel count preserved)
            x = g.depthwiseConv(x, 3, 1);
            break;
        }
    }

    if (rng.chance(0.5)) { // classifier tail
        x = g.globalPool(x);
        x = g.fullyConnected(
            x, static_cast<int>(rng.uniformInt(4, 16)));
    }

    g.validate();
    return g;
}

graph::Graph
randomGraph(std::uint64_t seed)
{
    RandomGraphOptions options;
    options.seed = seed;
    return randomGraph(options);
}

RandomDag
randomAtomicDag(std::uint64_t seed)
{
    RandomDag result;
    result.graph = randomGraph(seed);

    // Independent stream (seed XOR'd) so partition choices don't replay
    // the topology draws.
    Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
    result.tiles = static_cast<int>(rng.uniformInt(1, 4));
    result.batch = static_cast<int>(rng.uniformInt(1, 2));

    const std::vector<core::TileShape> shapes =
        core::evenPartitionShapes(result.graph, result.tiles);
    core::AtomicDagOptions dag_options;
    dag_options.batch = result.batch;
    result.dag = std::make_unique<core::AtomicDag>(result.graph, shapes,
                                                   dag_options);
    return result;
}

core::Schedule
trivialPlacement(const core::RoundList &rounds)
{
    core::Schedule schedule;
    schedule.rounds.reserve(rounds.size());
    for (const std::vector<core::AtomId> &round : rounds) {
        core::Round mapped;
        mapped.placements.reserve(round.size());
        int engine = 0;
        for (core::AtomId atom : round)
            mapped.placements.push_back({atom, engine++});
        schedule.rounds.push_back(std::move(mapped));
    }
    return schedule;
}

} // namespace ad::testing
