#!/usr/bin/env python3
"""Fixture tests for the pure logic of scripts/coverage_report.py.

Feeds hand-built gcov-style JSON documents (including every malformed
shape the gcov fallback must survive: records without "file", lines
without "line_number"/"count", zero-executable-line files, non-dict
entries) through merge_records/check_floors and checks the floors and
report lines, with no compiler or .gcda files in the loop.
"""

import importlib.util
import os
import sys
import unittest

_SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "scripts",
    "coverage_report.py",
)
_spec = importlib.util.spec_from_file_location("coverage_report", _SCRIPT)
coverage_report = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(coverage_report)


def doc(files):
    return {"files": files}


def rec(path, lines):
    return {
        "file": path,
        "lines": [
            {"line_number": n, "count": c} for n, c in lines
        ],
    }


class ParseFloorsTest(unittest.TestCase):
    def test_parses_valid_specs(self):
        self.assertEqual(
            coverage_report.parse_floors(["src/core=85", "src/serve/=70.5"]),
            [("src/core", 85.0), ("src/serve", 70.5)],
        )

    def test_rejects_malformed_specs(self):
        for bad in (["src/core"], ["=85"], ["src/core=abc"], ["src=1", "x"]):
            self.assertIsNone(coverage_report.parse_floors(bad), bad)


class MergeRecordsTest(unittest.TestCase):
    def test_merges_max_hits_across_translation_units(self):
        docs = [
            doc([rec("src/core/a.cc", [(1, 0), (2, 3)])]),
            doc([rec("src/core/a.cc", [(1, 5), (3, 0)])]),
        ]
        hits = coverage_report.merge_records(docs, "/repo")
        self.assertEqual(hits, {"src/core/a.cc": {1: 5, 2: 3, 3: 0}})

    def test_normalizes_absolute_paths_and_drops_foreign_ones(self):
        docs = [
            doc([
                rec("/repo/src/core/a.cc", [(1, 1)]),
                rec("/usr/include/vector", [(9, 9)]),
            ])
        ]
        hits = coverage_report.merge_records(docs, "/repo")
        self.assertEqual(list(hits), ["src/core/a.cc"])

    def test_survives_malformed_records(self):
        docs = [
            "not a dict",
            {"files": "not a list"},
            doc([
                42,
                {},  # no "file"
                {"file": None},
                {"file": ""},
                {"file": "src/core/bad_lines.cc", "lines": "nope"},
                {
                    "file": "src/core/partial.cc",
                    "lines": [
                        "junk",
                        {},  # no line_number/count
                        {"line_number": "seven", "count": 1},
                        {"line_number": 7, "count": None},
                        {"line_number": 8, "count": -2},
                        {"line_number": 9, "count": 4},
                    ],
                },
            ]),
        ]
        hits = coverage_report.merge_records(docs, "/repo")
        # Negative/absent counts degrade to 0; junk lines are dropped.
        self.assertEqual(
            hits, {"src/core/partial.cc": {7: 0, 8: 0, 9: 4}}
        )

    def test_zero_executable_line_file_gets_no_entry(self):
        docs = [doc([rec("src/core/header_only.hh", [])])]
        self.assertEqual(coverage_report.merge_records(docs, "/repo"), {})


class CheckFloorsTest(unittest.TestCase):
    def test_floor_pass_and_fail(self):
        hits = {
            "src/core/a.cc": {1: 1, 2: 1, 3: 0, 4: 1},  # 75%
            "src/serve/b.cc": {1: 0, 2: 0},  # 0%
        }
        report, failed = coverage_report.check_floors(
            hits, [("src/core", 70.0)]
        )
        self.assertFalse(failed)
        self.assertIn("src/core: 75.0% line coverage", report[0])
        self.assertIn("ok", report[0])

        report, failed = coverage_report.check_floors(
            hits, [("src/core", 80.0), ("src/serve", 10.0)]
        )
        self.assertTrue(failed)
        self.assertIn("BELOW FLOOR", report[0])

    def test_directory_without_lines_fails_loudly(self):
        report, failed = coverage_report.check_floors(
            {}, [("src/core", 85.0)]
        )
        self.assertTrue(failed)
        self.assertEqual(report, ["src/core: no instrumented lines found"])

    def test_prefix_matching_is_per_directory_not_substring(self):
        hits = {"src/core_extras/x.cc": {1: 1}}
        report, failed = coverage_report.check_floors(
            hits, [("src/core", 50.0)]
        )
        self.assertTrue(failed)
        self.assertIn("no instrumented lines", report[0])


if __name__ == "__main__":
    unittest.main()
