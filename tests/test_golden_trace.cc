/**
 * @file
 * Golden-file regression test for the observability exports: the
 * Perfetto trace JSON and the CSV timeline of a fixed tiny two-layer
 * network must match tests/golden/ byte for byte. Any intentional
 * change to the trace format (or to the planner/simulator event
 * sequence) regenerates them with scripts/regen_golden.sh, which runs
 * this binary with AD_REGEN_GOLDEN=1; the diff then documents the
 * change in review.
 */

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/dtt.hh"
#include "core/orchestrator.hh"
#include "core/schedule.hh"
#include "graph/graph.hh"
#include "obs/instrumentation.hh"
#include "obs/trace.hh"
#include "sim/system.hh"
#include "util/thread_pool.hh"

namespace {

std::string
readFileOrEmpty(const std::string &path)
{
    std::ifstream file(path, std::ios::binary);
    std::ostringstream os;
    os << file.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream file(path, std::ios::binary);
    ASSERT_TRUE(file) << "cannot open " << path;
    file << content;
}

/** The fixed golden workload: input + two 3x3 convolutions. */
ad::graph::Graph
tinyTwoLayer()
{
    ad::graph::Graph g("golden_tiny2");
    auto x = g.input(ad::graph::TensorShape{8, 8, 3});
    x = g.conv(x, 8, 3, 1, 1, "conv1");
    g.conv(x, 8, 3, 1, 1, "conv2");
    g.validate();
    return g;
}

struct Artifacts
{
    std::string json;
    std::string csv;
};

/** The exact pipeline of `adctl trace` on the golden workload. */
Artifacts
renderArtifacts()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    // Goldens pin the fully exact pipeline: with screening off the
    // planner's event sequence is contractually byte-identical with
    // every artifact minted before surrogate screening existed.
    options.surrogate = false;

    ad::obs::TraceRecorder trace;
    ad::obs::Instrumentation ins{&trace, nullptr};
    ad::core::Orchestrator(system, options).plan(tinyTwoLayer(), &ins);
    return {trace.perfettoJson(), trace.timelineCsv()};
}

/** Same pipeline through the optimal DTT planner (`adctl trace
 * --strategy dtt`): the search is exact on this net, so the golden
 * files also pin the optimal Round structure — an event-sequence drift
 * here means either the trace format or the search itself moved. */
Artifacts
renderDttArtifacts()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    options.surrogate = false;

    ad::obs::TraceRecorder trace;
    ad::obs::Instrumentation ins{&trace, nullptr};
    const ad::baselines::DttPlanner planner(system, options);
    const auto plan = planner.plan(tinyTwoLayer(), &ins);
    EXPECT_EQ(plan.schedule.mode, ad::core::SchedMode::Dtt)
        << "the golden net must stay inside the DTT tractability gates";
    return {trace.perfettoJson(), trace.timelineCsv()};
}

const char *kJsonGolden = AD_GOLDEN_DIR "/tiny2_trace.json";
const char *kCsvGolden = AD_GOLDEN_DIR "/tiny2_timeline.csv";
const char *kDttJsonGolden = AD_GOLDEN_DIR "/tiny2_dtt_trace.json";
const char *kDttCsvGolden = AD_GOLDEN_DIR "/tiny2_dtt_timeline.csv";

TEST(GoldenTrace, PerfettoJsonAndTimelineCsvMatchGoldenFiles)
{
    const Artifacts got = renderArtifacts();
    ASSERT_FALSE(got.json.empty());
    ASSERT_FALSE(got.csv.empty());

    if (std::getenv("AD_REGEN_GOLDEN") != nullptr) {
        writeFile(kJsonGolden, got.json);
        writeFile(kCsvGolden, got.csv);
        GTEST_SKIP() << "regenerated golden files under " AD_GOLDEN_DIR;
    }

    EXPECT_EQ(got.json, readFileOrEmpty(kJsonGolden))
        << "Perfetto JSON drifted from " << kJsonGolden
        << "; regenerate with scripts/regen_golden.sh if intentional";
    EXPECT_EQ(got.csv, readFileOrEmpty(kCsvGolden))
        << "CSV timeline drifted from " << kCsvGolden
        << "; regenerate with scripts/regen_golden.sh if intentional";
}

TEST(GoldenTrace, DttPerfettoJsonAndTimelineCsvMatchGoldenFiles)
{
    const Artifacts got = renderDttArtifacts();
    ASSERT_FALSE(got.json.empty());
    ASSERT_FALSE(got.csv.empty());

    if (std::getenv("AD_REGEN_GOLDEN") != nullptr) {
        writeFile(kDttJsonGolden, got.json);
        writeFile(kDttCsvGolden, got.csv);
        GTEST_SKIP() << "regenerated golden files under " AD_GOLDEN_DIR;
    }

    EXPECT_EQ(got.json, readFileOrEmpty(kDttJsonGolden))
        << "DTT Perfetto JSON drifted from " << kDttJsonGolden
        << "; regenerate with scripts/regen_golden.sh if intentional";
    EXPECT_EQ(got.csv, readFileOrEmpty(kDttCsvGolden))
        << "DTT CSV timeline drifted from " << kDttCsvGolden
        << "; regenerate with scripts/regen_golden.sh if intentional";
}

TEST(GoldenTrace, ExplicitFullViewReproducesGoldenArtifacts)
{
    // The whole mesh is the trivial MeshView: planning through an
    // explicit, pre-resolved full view must reproduce the golden
    // artifacts byte for byte (viewSystem() returns the base machine
    // unchanged and globalEngine() is the identity).
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    options.surrogate = false;
    const ad::sim::MeshView full{0, 0, 2, 2, 2, 2, 1.0};

    ad::obs::TraceRecorder trace;
    ad::obs::Instrumentation ins{&trace, nullptr};
    ad::core::Orchestrator(system, options, full)
        .plan(tinyTwoLayer(), &ins);
    EXPECT_EQ(trace.perfettoJson(), readFileOrEmpty(kJsonGolden));
    EXPECT_EQ(trace.timelineCsv(), readFileOrEmpty(kCsvGolden));
}

TEST(GoldenTrace, ArtifactsAreByteIdenticalAcrossThreadCounts)
{
    ad::util::ThreadPool::setGlobalThreads(1);
    const Artifacts one = renderArtifacts();
    ad::util::ThreadPool::setGlobalThreads(4);
    const Artifacts four = renderArtifacts();
    EXPECT_EQ(one.json, four.json);
    EXPECT_EQ(one.csv, four.csv);
}

TEST(GoldenTrace, DttArtifactsAreByteIdenticalAcrossThreadCounts)
{
    ad::util::ThreadPool::setGlobalThreads(1);
    const Artifacts one = renderDttArtifacts();
    ad::util::ThreadPool::setGlobalThreads(4);
    const Artifacts four = renderDttArtifacts();
    EXPECT_EQ(one.json, four.json);
    EXPECT_EQ(one.csv, four.csv);
}

TEST(GoldenTrace, SurrogateScreenedDttStaysOnTheGoldenOptimum)
{
    // Screening changes which trials are simulated, never the DTT
    // search itself: with the surrogate on, the golden net must still
    // come out on an exact DTT schedule with the same makespan the
    // goldens pin for the unscreened pipeline.
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;

    options.surrogate = false;
    const ad::baselines::DttPlanner unscreened(system, options);
    const auto exact = unscreened.plan(tinyTwoLayer());

    options.surrogate = true;
    const ad::baselines::DttPlanner screened(system, options);
    const auto got = screened.plan(tinyTwoLayer());

    EXPECT_EQ(got.schedule.mode, ad::core::SchedMode::Dtt);
    EXPECT_EQ(got.report.totalCycles, exact.report.totalCycles);
    EXPECT_TRUE(got.report.bitIdentical(exact.report));
}

} // namespace
