/**
 * @file
 * Tests for the memory substrate: the channelized HBM timing model and
 * the per-engine SRAM buffer bookkeeping.
 */

#include <gtest/gtest.h>

#include "mem/hbm_model.hh"
#include "mem/sram_buffer.hh"
#include "util/common.hh"

namespace ad::mem {
namespace {

HbmConfig
testConfig()
{
    HbmConfig cfg;
    cfg.channels = 8;
    cfg.peakBandwidthGBps = 128.0;
    cfg.clockGhz = 0.5;
    cfg.rowMissLatency = 80;
    cfg.rowHitLatency = 30;
    return cfg;
}

TEST(HbmConfig, BytesPerCyclePerChannel)
{
    // 128 GB/s over 8 channels at 0.5 GHz = 32 B/cycle/channel.
    EXPECT_DOUBLE_EQ(testConfig().bytesPerCyclePerChannel(), 32.0);
}

TEST(HbmConfig, ValidateCatchesNonsense)
{
    HbmConfig cfg = testConfig();
    cfg.channels = 0;
    EXPECT_THROW(cfg.validate(), ConfigError);
    cfg = testConfig();
    cfg.peakBandwidthGBps = -1;
    EXPECT_THROW(cfg.validate(), ConfigError);
}

TEST(Hbm, SingleAccessLatency)
{
    HbmModel hbm(testConfig());
    // 64-byte burst: row miss (80) + 2 service cycles.
    const Cycles done = hbm.access(0, 64, false, 0);
    EXPECT_EQ(done, 82u);
    EXPECT_EQ(hbm.stats().rowMisses, 1u);
}

TEST(Hbm, RowHitIsFaster)
{
    HbmModel hbm(testConfig());
    hbm.access(0, 64, false, 0);
    // Same row, same channel: hit latency applies.
    const Cycles second = hbm.access(0, 64, false, 1000);
    EXPECT_EQ(second, 1000u + 30 + 2);
    EXPECT_EQ(hbm.stats().rowHits, 1u);
}

TEST(Hbm, ChannelsServeInParallel)
{
    // Two large streams in different halves of the address space finish
    // no later together than back-to-back on the same region.
    HbmModel parallel(testConfig());
    const Cycles a = parallel.access(0, 1 << 16, false, 0);
    HbmModel serial(testConfig());
    serial.access(0, 1 << 16, false, 0);
    const Cycles b = serial.access(0, 1 << 16, false, 0);
    EXPECT_GT(b, a); // queueing behind the first stream costs time
}

TEST(Hbm, BandwidthBoundsStreaming)
{
    HbmModel hbm(testConfig());
    const Bytes bytes = 1 << 20; // 1 MiB
    const Cycles done = hbm.access(0, bytes, false, 0);
    // Peak is 256 B/cycle: the stream can never beat bytes/peak.
    EXPECT_GE(done, bytes / 256);
    // ...and the channel model should be within 3x of ideal.
    EXPECT_LE(done, 3 * (bytes / 256) + 1000);
}

TEST(Hbm, StatsAccumulate)
{
    HbmModel hbm(testConfig());
    hbm.access(0, 128, false, 0);
    hbm.access(4096, 64, true, 0);
    EXPECT_EQ(hbm.stats().readBytes, 128u);
    EXPECT_EQ(hbm.stats().writeBytes, 64u);
    EXPECT_EQ(hbm.stats().reads, 2u); // two 64B bursts
    EXPECT_EQ(hbm.stats().writes, 1u);
    EXPECT_GT(hbm.stats().energyPj, 0.0);
}

TEST(Hbm, AccessEnergySevenPjPerBit)
{
    HbmModel hbm(testConfig());
    EXPECT_DOUBLE_EQ(hbm.accessEnergy(1), 8.0 * 7.0);
    EXPECT_DOUBLE_EQ(hbm.accessEnergy(1000), 8000.0 * 7.0);
}

TEST(Hbm, ZeroByteAccessFree)
{
    HbmModel hbm(testConfig());
    EXPECT_EQ(hbm.access(0, 0, false, 123), 123u);
    EXPECT_EQ(hbm.stats().reads, 0u);
}

TEST(Hbm, ResetClearsState)
{
    HbmModel hbm(testConfig());
    hbm.access(0, 4096, false, 0);
    hbm.reset();
    EXPECT_EQ(hbm.stats().readBytes, 0u);
    EXPECT_EQ(hbm.access(0, 64, false, 0), 82u); // fresh row miss
}

TEST(Hbm, IdealStreamCycles)
{
    HbmModel hbm(testConfig());
    // 256 B/cycle peak + one row-miss latency.
    EXPECT_EQ(hbm.idealStreamCycles(256 * 100), 100u + 80u);
}

TEST(Hbm, LaterIssueTimeDelaysCompletion)
{
    HbmModel hbm(testConfig());
    const Cycles early = hbm.access(0, 64, false, 0);
    HbmModel hbm2(testConfig());
    const Cycles late = hbm2.access(0, 64, false, 500);
    EXPECT_EQ(late, early + 500);
}

TEST(Sram, AllocateTracksOccupancy)
{
    SramBuffer buf(1024);
    EXPECT_TRUE(buf.tryAllocate(1, 512));
    EXPECT_EQ(buf.used(), 512u);
    EXPECT_EQ(buf.free(), 512u);
    EXPECT_TRUE(buf.contains(1));
    EXPECT_EQ(buf.sizeOf(1), 512u);
}

TEST(Sram, RejectsOverflow)
{
    SramBuffer buf(1024);
    EXPECT_TRUE(buf.tryAllocate(1, 1000));
    EXPECT_FALSE(buf.tryAllocate(2, 100));
    EXPECT_EQ(buf.used(), 1000u);
    EXPECT_FALSE(buf.contains(2));
}

TEST(Sram, ReallocationAdjustsSize)
{
    SramBuffer buf(1024);
    EXPECT_TRUE(buf.tryAllocate(1, 800));
    EXPECT_TRUE(buf.tryAllocate(1, 100)); // shrink in place
    EXPECT_EQ(buf.used(), 100u);
    EXPECT_TRUE(buf.tryAllocate(1, 1024)); // grow to full capacity
    EXPECT_EQ(buf.free(), 0u);
}

TEST(Sram, ReleaseFreesSpace)
{
    SramBuffer buf(256);
    buf.tryAllocate(7, 200);
    buf.release(7);
    EXPECT_EQ(buf.used(), 0u);
    EXPECT_FALSE(buf.contains(7));
    buf.release(7); // double release is a no-op
    EXPECT_EQ(buf.used(), 0u);
}

TEST(Sram, ResidentsEnumerates)
{
    SramBuffer buf(1024);
    buf.tryAllocate(1, 10);
    buf.tryAllocate(2, 20);
    buf.tryAllocate(3, 30);
    const auto keys = buf.residents();
    EXPECT_EQ(keys.size(), 3u);
}

TEST(Sram, ClearEmptiesEverything)
{
    SramBuffer buf(1024);
    buf.tryAllocate(1, 10);
    buf.tryAllocate(2, 20);
    buf.clear();
    EXPECT_EQ(buf.used(), 0u);
    EXPECT_TRUE(buf.residents().empty());
}

TEST(Sram, ZeroCapacityRejected)
{
    EXPECT_THROW(SramBuffer(0), ConfigError);
}

TEST(Sram, ExactFitAllowed)
{
    SramBuffer buf(128);
    EXPECT_TRUE(buf.tryAllocate(1, 128));
    EXPECT_EQ(buf.free(), 0u);
}

} // namespace
} // namespace ad::mem
