/**
 * @file
 * Tests for the shape catalog: candidate enumeration, PE-quantum
 * constraints, buffer-fit filtering, and nearest-cycle queries.
 */

#include <gtest/gtest.h>

#include "core/shape_catalog.hh"
#include "models/models.hh"

namespace ad::core {
namespace {

using engine::CostModel;
using engine::DataflowKind;
using engine::EngineConfig;

EngineConfig
cfg16()
{
    EngineConfig cfg;
    cfg.peRows = 16;
    cfg.peCols = 16;
    return cfg;
}

TEST(ShapeCatalog, EveryComputeLayerHasCandidates)
{
    const auto g = models::tinyBranchy();
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &l : g.layers()) {
        if (l.type == graph::OpType::Input ||
            l.type == graph::OpType::Concat) {
            EXPECT_TRUE(catalog.candidatesFor(l.id).empty());
        } else {
            EXPECT_FALSE(catalog.candidatesFor(l.id).empty())
                << l.name;
        }
    }
}

TEST(ShapeCatalog, CandidatesSortedByCycles)
{
    const auto g = models::tinyLinear(64);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &l : g.layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        for (std::size_t i = 1; i < cands.size(); ++i)
            EXPECT_LE(cands[i - 1].cycles, cands[i].cycles);
    }
}

TEST(ShapeCatalog, KcQuantizesOutputChannels)
{
    graph::Graph g;
    const auto in = g.input({16, 16, 64});
    const auto c = g.conv(in, 64, 3, 1, 1);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &cand : catalog.candidatesFor(c)) {
        // c3 * PEy or the whole dimension (Sec. IV-A).
        EXPECT_TRUE(cand.shape.c % 16 == 0 || cand.shape.c == 64)
            << cand.shape.c;
    }
}

TEST(ShapeCatalog, YxQuantizesSpatialDims)
{
    graph::Graph g;
    const auto in = g.input({64, 64, 16});
    const auto c = g.conv(in, 16, 3, 1, 1);
    const CostModel model(cfg16(), DataflowKind::YxPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &cand : catalog.candidatesFor(c)) {
        EXPECT_TRUE(cand.shape.h % 16 == 0 || cand.shape.h == 64);
        EXPECT_TRUE(cand.shape.w % 16 == 0 || cand.shape.w == 64);
    }
}

TEST(ShapeCatalog, CandidatesFitBuffer)
{
    const auto g = models::tinyLinear(128);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    ShapeCatalogOptions opts;
    const ShapeCatalog catalog(g, model, opts);
    for (const auto &l : g.layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.size() > 1) {
            for (const auto &cand : cands)
                EXPECT_LE(cand.footprint, cfg16().bufferBytes);
        }
    }
}

TEST(ShapeCatalog, NearestWithinTiebreakWindow)
{
    const auto g = models::tinyLinear(64);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &l : g.layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.empty())
            continue;
        for (const auto &cand : cands) {
            const auto &best =
                catalog.nearest(l.id, static_cast<double>(cand.cycles));
            EXPECT_LE(static_cast<double>(best.cycles),
                      static_cast<double>(cand.cycles) * 1.1 + 1);
            EXPECT_GE(static_cast<double>(best.cycles),
                      static_cast<double>(cand.cycles) * 0.9 - 1);
        }
    }
}

TEST(ShapeCatalog, NearestClampsAtExtremes)
{
    const auto g = models::tinyLinear(64);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &l : g.layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.empty())
            continue;
        const auto &tiny = catalog.nearest(l.id, 0.0);
        EXPECT_LE(tiny.cycles, cands.back().cycles);
        const auto &huge = catalog.nearest(l.id, 1e18);
        EXPECT_GE(huge.cycles, cands.front().cycles);
    }
}

TEST(ShapeCatalog, ShapesFromIndicesRoundTrip)
{
    const auto g = models::tinyLinear(32);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    std::vector<std::size_t> indices(g.size(), 0);
    const auto shapes = catalog.shapesFromIndices(indices);
    ASSERT_EQ(shapes.size(), g.size());
    for (const auto &l : g.layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (!cands.empty()) {
            EXPECT_EQ(shapes[static_cast<std::size_t>(l.id)],
                      cands[0].shape);
        }
    }
}

TEST(ShapeCatalog, DefaultShapesPickHighUtilization)
{
    const auto g = models::tinyLinear(64);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    const auto shapes = catalog.defaultShapes();
    for (const auto &l : g.layers()) {
        const auto &cands = catalog.candidatesFor(l.id);
        if (cands.empty())
            continue;
        double best = 0;
        for (const auto &cand : cands)
            best = std::max(best, cand.utilization);
        for (const auto &cand : cands) {
            if (cand.shape == shapes[static_cast<std::size_t>(l.id)])
                EXPECT_DOUBLE_EQ(cand.utilization, best);
        }
    }
}

TEST(ShapeCatalog, WeightTrafficPenalizesNonResidentSlices)
{
    graph::Graph g;
    const auto in = g.input({7, 7, 512});
    const auto c = g.conv(in, 512, 3, 1, 1);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &cand : catalog.candidatesFor(c)) {
        const Bytes slice =
            9ull * 512 * static_cast<Bytes>(cand.shape.c);
        if (slice > 96 * 1024) {
            EXPECT_GT(cand.weightTraffic, cand.weightReplBytes);
        } else {
            EXPECT_EQ(cand.weightTraffic, cand.weightReplBytes);
        }
    }
}

TEST(ShapeCatalog, FullSpatialTileHasNoReplication)
{
    graph::Graph g;
    const auto in = g.input({8, 8, 64});
    const auto c = g.conv(in, 64, 3, 1, 1);
    const CostModel model(cfg16(), DataflowKind::KcPartition);
    const ShapeCatalog catalog(g, model);
    for (const auto &cand : catalog.candidatesFor(c)) {
        if (cand.shape.h == 8 && cand.shape.w == 8)
            EXPECT_EQ(cand.weightReplBytes, 0u);
    }
}

} // namespace
} // namespace ad::core
