/**
 * @file
 * Persistent plan-store tests: plan_io round-trips (the serialized plan
 * replays bit-identically), PlanStore crash/corruption safety (any
 * damaged file is a clean counted miss, never a crash), cross-process
 * warm-restart hydration through the PlanCache store tier, and the
 * LruPolicy / cache-stats invariants the serving layer relies on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/planners.hh"
#include "core/plan_io.hh"
#include "graph/serialize.hh"
#include "models/models.hh"
#include "serve/eviction_policy.hh"
#include "serve/plan_cache.hh"
#include "serve/plan_store.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"
#include "sim/system.hh"

namespace {

using ad::serve::LruPolicy;
using ad::serve::PlanCache;
using ad::serve::PlanKey;
using ad::serve::PlanStore;

ad::sim::SystemConfig
smallSystem()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    return system;
}

/** Fast orchestrator configuration for store/cache tests. */
ad::core::OrchestratorOptions
fastOptions()
{
    ad::core::OrchestratorOptions options;
    options.atomGen = ad::core::AtomGenMode::EvenPartition;
    return options;
}

ad::core::PlanResult
planFresh(const std::string &strategy, const std::string &net,
          const ad::sim::SystemConfig &system,
          const ad::core::OrchestratorOptions &options)
{
    const auto graph = ad::models::buildByName(net);
    return ad::baselines::makePlanner({strategy, system, {}, options})
        ->plan(graph);
}

PlanKey
keyFor(const std::string &strategy, const std::string &net,
       const ad::sim::SystemConfig &system,
       const ad::core::OrchestratorOptions &options)
{
    return ad::serve::makePlanKey(
        strategy, ad::models::buildByName(net), system, options);
}

/** Fresh per-test store directory under gtest's temp root. */
std::string
storeDir(const std::string &name)
{
    const auto dir =
        std::filesystem::path(::testing::TempDir()) / "ad_plan_store" /
        name;
    std::filesystem::remove_all(dir);
    return dir.string();
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << path;
    return std::string(std::istreambuf_iterator<char>(in), {});
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out) << path;
}

void
expectPlansEqual(const ad::core::PlanResult &a,
                 const ad::core::PlanResult &b)
{
    EXPECT_TRUE(a.report.bitIdentical(b.report));
    EXPECT_EQ(a.schedule.mode, b.schedule.mode);
    ASSERT_EQ(a.schedule.rounds.size(), b.schedule.rounds.size());
    for (std::size_t i = 0; i < a.schedule.rounds.size(); ++i) {
        const auto &ra = a.schedule.rounds[i].placements;
        const auto &rb = b.schedule.rounds[i].placements;
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t j = 0; j < ra.size(); ++j) {
            EXPECT_EQ(ra[j].atom, rb[j].atom);
            EXPECT_EQ(ra[j].engine, rb[j].engine);
        }
    }
    ASSERT_EQ(a.dag != nullptr, b.dag != nullptr);
    if (a.dag) {
        EXPECT_EQ(ad::graph::toText(a.dag->graph()),
                  ad::graph::toText(b.dag->graph()));
        EXPECT_EQ(a.dag->batch(), b.dag->batch());
        EXPECT_EQ(a.dag->bytesPerElem(), b.dag->bytesPerElem());
        EXPECT_EQ(a.dag->size(), b.dag->size());
        for (std::size_t l = 0; l < a.dag->graph().size(); ++l) {
            const auto id = static_cast<ad::graph::LayerId>(l);
            const auto &sa = a.dag->shapeOf(id);
            const auto &sb = b.dag->shapeOf(id);
            EXPECT_EQ(sa.h, sb.h);
            EXPECT_EQ(sa.w, sb.w);
            EXPECT_EQ(sa.c, sb.c);
        }
    }
}

// ---------------------------------------------------------------------
// plan_io: versioned plan serialization

TEST(PlanIo, RoundTripsAFullPlanBitIdentically)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto plan =
        planFresh("AD", "tiny_linear", system, options);
    ASSERT_TRUE(plan.dag) << "AD plans carry the atom DAG";

    const std::string bytes = ad::core::encodePlanResult(plan);
    const auto decoded = ad::core::decodePlanResult(bytes);
    ASSERT_TRUE(decoded);
    expectPlansEqual(plan, *decoded);
}

TEST(PlanIo, RoundTripsADttPlanBitIdentically)
{
    // DTT plans carry SchedMode::Dtt — the mode the v2 format bump
    // widened the decoder for. The round-trip must preserve it, and a
    // replay of the decoded schedule must be bit-identical (the serve
    // layer's cross-process hydration contract).
    const auto system = smallSystem();
    const auto options = fastOptions();
    const auto plan = planFresh("DTT", "tiny_linear", system, options);
    ASSERT_TRUE(plan.dag);
    ASSERT_EQ(plan.schedule.mode, ad::core::SchedMode::Dtt)
        << "tiny_linear on the 2x2 mesh must stay inside the DTT gates";

    const auto decoded =
        ad::core::decodePlanResult(ad::core::encodePlanResult(plan));
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->schedule.mode, ad::core::SchedMode::Dtt);
    expectPlansEqual(plan, *decoded);
}

TEST(PlanStore, DttPlanHydratesBitIdenticalAcrossInstances)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const PlanKey key = keyFor("DTT", "tiny_linear", system, options);
    const auto plan = planFresh("DTT", "tiny_linear", system, options);
    ASSERT_EQ(plan.schedule.mode, ad::core::SchedMode::Dtt);
    const std::string dir = storeDir("dtt_restart");

    {
        PlanStore store(dir);
        ASSERT_TRUE(store.put(key, plan));
    }
    PlanStore reopened(dir);
    const auto loaded = reopened.load(key);
    ASSERT_TRUE(loaded);
    EXPECT_EQ(loaded->schedule.mode, ad::core::SchedMode::Dtt);
    expectPlansEqual(plan, *loaded);

    // The AD key must not alias the DTT key: same graph, same system,
    // different strategy, different plan file.
    const PlanKey ad_key = keyFor("AD", "tiny_linear", system, options);
    EXPECT_NE(ad_key.text, key.text);
    EXPECT_FALSE(reopened.load(ad_key));
}

TEST(PlanIo, RoundTripsAnAnalyticPlanWithoutDag)
{
    const auto system = smallSystem();
    auto plan = planFresh("CNN-P", "tiny_linear", system, fastOptions());
    ASSERT_FALSE(plan.dag) << "analytic baselines have no DAG";

    const auto decoded =
        ad::core::decodePlanResult(ad::core::encodePlanResult(plan));
    ASSERT_TRUE(decoded);
    expectPlansEqual(plan, *decoded);
}

TEST(PlanIo, RejectsTruncationTrailingGarbageAndEmptyInput)
{
    const auto plan =
        planFresh("AD", "tiny_linear", smallSystem(), fastOptions());
    const std::string bytes = ad::core::encodePlanResult(plan);

    EXPECT_FALSE(ad::core::decodePlanResult(""));
    for (const std::size_t keep :
         {std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
        EXPECT_FALSE(ad::core::decodePlanResult(
            std::string_view(bytes).substr(0, keep)))
            << "truncated to " << keep << " of " << bytes.size();
    }
    EXPECT_FALSE(ad::core::decodePlanResult(bytes + "x"))
        << "trailing garbage must not decode";
}

TEST(PlanIo, FnvHashMatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors; pins the on-disk format.
    EXPECT_EQ(ad::core::fnv1a64(""), 14695981039346656037ull);
    EXPECT_EQ(ad::core::fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(ad::core::fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ---------------------------------------------------------------------
// PlanStore: persistence, restart, corruption

TEST(PlanStore, RoundTripsAcrossInstancesLikeAProcessRestart)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const PlanKey key = keyFor("AD", "tiny_linear", system, options);
    const auto plan = planFresh("AD", "tiny_linear", system, options);
    const std::string dir = storeDir("restart");

    {
        PlanStore store(dir);
        EXPECT_TRUE(store.put(key, plan));
        EXPECT_EQ(store.stats().writes, 1u);
        EXPECT_TRUE(std::filesystem::exists(store.path(key)));
    }

    // A second instance on the same directory — the restart scenario.
    PlanStore reopened(dir);
    const auto loaded = reopened.load(key);
    ASSERT_TRUE(loaded);
    expectPlansEqual(plan, *loaded);
    EXPECT_EQ(reopened.stats().hits, 1u);
    EXPECT_EQ(reopened.stats().misses, 0u);
    EXPECT_EQ(reopened.stats().corrupt, 0u);
}

TEST(PlanStore, MissingPlanIsACountedMiss)
{
    PlanStore store(storeDir("miss"));
    const PlanKey key =
        keyFor("AD", "tiny_linear", smallSystem(), fastOptions());
    EXPECT_FALSE(store.load(key));
    EXPECT_EQ(store.stats().misses, 1u);
    EXPECT_EQ(store.stats().corrupt, 0u);
}

TEST(PlanStore, NoTmpFileSurvivesAPut)
{
    PlanStore store(storeDir("tmp"));
    const PlanKey key =
        keyFor("AD", "tiny_linear", smallSystem(), fastOptions());
    ASSERT_TRUE(store.put(
        key, planFresh("AD", "tiny_linear", smallSystem(),
                       fastOptions())));
    EXPECT_TRUE(std::filesystem::exists(store.path(key)));
    EXPECT_FALSE(std::filesystem::exists(store.path(key) + ".tmp"))
        << "atomic publish must not leave the temp file behind";
}

/** Each corruption flavour must be a clean counted miss, not a crash. */
class PlanStoreCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        _system = smallSystem();
        _options = fastOptions();
        _key = keyFor("AD", "tiny_linear", _system, _options);
        // ctest runs each TEST_F as its own process, concurrently:
        // the directory must be unique per test, not per fixture.
        _dir = storeDir(std::string("corruption_") +
                        ::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name());
        PlanStore store(_dir);
        ASSERT_TRUE(store.put(
            _key, planFresh("AD", "tiny_linear", _system, _options)));
        _path = store.path(_key);
        _bytes = readFile(_path);
        ASSERT_GT(_bytes.size(), 28u);
    }

    /** Overwrite the stored file and expect a corrupt-counted miss. */
    void
    expectCorrupt(const std::string &bytes, const char *what)
    {
        writeFile(_path, bytes);
        PlanStore store(_dir);
        EXPECT_FALSE(store.load(_key)) << what;
        EXPECT_EQ(store.stats().corrupt, 1u) << what;
        EXPECT_EQ(store.stats().hits, 0u) << what;
    }

    ad::sim::SystemConfig _system;
    ad::core::OrchestratorOptions _options;
    PlanKey _key;
    std::string _dir;
    std::string _path;
    std::string _bytes;
};

TEST_F(PlanStoreCorruption, TruncatedHeader)
{
    expectCorrupt(_bytes.substr(0, 10), "header cut short");
}

TEST_F(PlanStoreCorruption, TruncatedPayload)
{
    expectCorrupt(_bytes.substr(0, _bytes.size() - 5),
                  "payload cut short");
}

TEST_F(PlanStoreCorruption, TrailingGarbage)
{
    expectCorrupt(_bytes + "junk", "bytes appended past the payload");
}

TEST_F(PlanStoreCorruption, BitFlipInPayload)
{
    std::string flipped = _bytes;
    flipped[flipped.size() / 2] =
        static_cast<char>(flipped[flipped.size() / 2] ^ 0x40);
    expectCorrupt(flipped, "single bit flip mid-payload");
}

TEST_F(PlanStoreCorruption, BitFlipInStoredChecksum)
{
    std::string flipped = _bytes;
    flipped[20] = static_cast<char>(flipped[20] ^ 0x01);
    expectCorrupt(flipped, "checksum field damaged");
}

TEST_F(PlanStoreCorruption, WrongMagic)
{
    std::string wrong = _bytes;
    wrong[0] = 'X';
    expectCorrupt(wrong, "foreign file magic");
}

TEST_F(PlanStoreCorruption, FormatVersionMismatch)
{
    // A future format bump must read as "recompile", not as data.
    std::string newer = _bytes;
    newer[8] = static_cast<char>(newer[8] + 1);
    expectCorrupt(newer, "format version from the future");
}

TEST_F(PlanStoreCorruption, FilenameCollisionWithDifferentKey)
{
    // A file whose content is a valid plan for a *different* key
    // placed at our key's path (hash collision in the filename): the
    // stored key text mismatches, so it must miss, never cross-serve.
    auto other_options = _options;
    other_options.batch = 2;
    const PlanKey other =
        keyFor("AD", "tiny_linear", _system, other_options);
    PlanStore writer(_dir);
    ASSERT_TRUE(writer.put(
        other, planFresh("AD", "tiny_linear", _system, other_options)));
    std::filesystem::copy_file(
        writer.path(other), _path,
        std::filesystem::copy_options::overwrite_existing);

    PlanStore store(_dir);
    EXPECT_FALSE(store.load(_key));
    EXPECT_EQ(store.stats().corrupt, 1u);
    EXPECT_TRUE(store.load(other)) << "the other key still loads";
}

// ---------------------------------------------------------------------
// LruPolicy

TEST(LruPolicy, VictimIsTheLeastRecentlyTouchedKey)
{
    LruPolicy lru;
    EXPECT_STREQ(lru.name(), "lru");
    lru.admitted("a");
    lru.admitted("b");
    lru.admitted("c");
    EXPECT_EQ(lru.victim(), "a");
    lru.touched("a"); // now b is the oldest
    EXPECT_EQ(lru.victim(), "b");
    lru.evicted("b");
    EXPECT_EQ(lru.size(), 2u);
    EXPECT_EQ(lru.victim(), "c");
}

TEST(LruPolicy, FactoryBuildsLruAndCacheReportsIt)
{
    const auto policy = ad::serve::makeEvictionPolicy("lru");
    ASSERT_TRUE(policy);
    EXPECT_STREQ(policy->name(), "lru");
    PlanCache cache(ad::Bytes{1} << 20);
    EXPECT_STREQ(cache.policyName(), "lru");
}

// ---------------------------------------------------------------------
// LfuPolicy

TEST(LfuPolicy, VictimIsTheColdestKeyWithLruTieBreak)
{
    ad::serve::LfuPolicy lfu;
    EXPECT_STREQ(lfu.name(), "lfu");
    EXPECT_EQ(lfu.victim(), "");
    lfu.admitted("a");
    lfu.admitted("b");
    lfu.admitted("c");
    // All at frequency 1: the tie breaks to the oldest tick.
    EXPECT_EQ(lfu.victim(), "a");
    lfu.touched("a"); // a:2, b/c:1 — b is now the coldest-oldest
    EXPECT_EQ(lfu.victim(), "b");
    lfu.touched("b");
    lfu.touched("b"); // b:3, a:2, c:1
    EXPECT_EQ(lfu.victim(), "c");
    lfu.evicted("c");
    EXPECT_EQ(lfu.size(), 2u);
    EXPECT_EQ(lfu.victim(), "a") << "a (freq 2) is colder than b (3)";
}

TEST(LfuPolicy, FrequencyDoesNotSurviveEviction)
{
    ad::serve::LfuPolicy lfu;
    lfu.admitted("hot");
    for (int i = 0; i < 10; ++i)
        lfu.touched("hot");
    lfu.admitted("cold");
    EXPECT_EQ(lfu.victim(), "cold");
    lfu.evicted("hot");
    lfu.admitted("hot"); // re-admitted: starts at frequency 1 again
    EXPECT_EQ(lfu.victim(), "cold")
        << "equal frequency now, and cold's tick is older";
    lfu.touched("cold");
    EXPECT_EQ(lfu.victim(), "hot")
        << "the former hot key must not keep its old count";
}

TEST(LfuPolicy, EvictionOrderIsAPureFunctionOfTheCallSequence)
{
    // Replay one access script through two instances interleaved with
    // drains: the full victim sequences must match exactly.
    const auto script = [](ad::serve::LfuPolicy &p) {
        p.admitted("w");
        p.admitted("x");
        p.touched("w");
        p.admitted("y");
        p.touched("y");
        p.touched("y");
        p.admitted("z");
        p.touched("x");
        p.touched("w");
    };
    const auto drain = [](ad::serve::LfuPolicy &p) {
        std::vector<std::string> order;
        while (p.size() > 0) {
            order.push_back(p.victim());
            p.evicted(order.back());
        }
        return order;
    };
    ad::serve::LfuPolicy a;
    ad::serve::LfuPolicy b;
    script(a);
    script(b);
    const auto order_a = drain(a);
    const auto order_b = drain(b);
    EXPECT_EQ(order_a, order_b);
    const std::vector<std::string> expected{"z", "x", "y", "w"};
    EXPECT_EQ(order_a, expected)
        << "freq asc (z:1, x:2), then the freq-3 tie breaks to y, "
           "whose last touch predates w's";
}

TEST(LfuPolicy, FactoryBuildsLfuAndCacheReportsIt)
{
    const auto policy = ad::serve::makeEvictionPolicy("lfu");
    ASSERT_TRUE(policy);
    EXPECT_STREQ(policy->name(), "lfu");
    PlanCache cache(ad::Bytes{1} << 20,
                    ad::serve::makeEvictionPolicy("lfu"));
    EXPECT_STREQ(cache.policyName(), "lfu");
}

TEST(LfuPolicy, CacheUnderLfuKeepsTheFrequentPlanUnderChurn)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const PlanKey hot = keyFor("AD", "tiny_linear", system, options);

    // Budget sized to two plans: the third insert must evict, and LFU
    // must sacrifice the never-hit newcomer's predecessor, not the
    // repeatedly-hit hot key (LRU would evict hot here only if it were
    // the stalest — make it the stalest on purpose, then hit it).
    const ad::Bytes one = PlanCache::planBytes(
        hot, planFresh("AD", "tiny_linear", system, options));
    PlanCache cache(2 * one + (one / 2),
                    ad::serve::makeEvictionPolicy("lfu"));
    cache.insert(hot, planFresh("AD", "tiny_linear", system, options));
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(cache.lookup(hot));
    cache.insert(keyFor("AD", "tiny_residual", system, options),
                 planFresh("AD", "tiny_residual", system, options));
    cache.insert(keyFor("AD", "tiny_branchy", system, options),
                 planFresh("AD", "tiny_branchy", system, options));

    EXPECT_TRUE(cache.lookup(hot)) << "the frequent plan must survive";
    EXPECT_FALSE(cache.lookup(
        keyFor("AD", "tiny_residual", system, options)))
        << "the cold single-access plan is the LFU victim";
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
}

// ---------------------------------------------------------------------
// PlanCache stats invariants and the store tier

TEST(PlanCache, OversizePlansAreCountedAndNeverAdmitted)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const PlanKey key = keyFor("AD", "tiny_linear", system, options);

    PlanCache cache(ad::Bytes{16}); // nothing real fits
    auto shared = cache.insert(
        key, planFresh("AD", "tiny_linear", system, options));
    ASSERT_TRUE(shared) << "insert still returns the plan";
    EXPECT_EQ(cache.lookup(key), nullptr);

    const auto stats = cache.stats();
    EXPECT_EQ(stats.oversize, 1u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_EQ(stats.bytes, 0u);
    EXPECT_EQ(stats.evictions, 0u) << "oversize is not an eviction";
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 1u) << "only lookups count misses";
}

TEST(PlanCache, StatsStayConsistentAcrossEvictionChurn)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const char *nets[] = {"tiny_linear", "tiny_residual",
                          "tiny_branchy"};

    // Budget sized to one plan: every insert past the first evicts.
    const ad::Bytes one = PlanCache::planBytes(
        keyFor("AD", "tiny_linear", system, options),
        planFresh("AD", "tiny_linear", system, options));
    PlanCache cache(one + (one / 2));
    for (const char *net : nets)
        cache.insert(keyFor("AD", net, system, options),
                     planFresh("AD", net, system, options));

    const auto stats = cache.stats();
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_LE(stats.bytes, cache.budgetBytes());
    EXPECT_EQ(stats.oversize, 0u);
    // Only the last insert survives; older keys re-miss.
    EXPECT_TRUE(cache.lookup(keyFor("AD", "tiny_branchy", system,
                                    options)));
    EXPECT_FALSE(cache.lookup(keyFor("AD", "tiny_linear", system,
                                     options)));
    const auto after = cache.stats();
    EXPECT_EQ(after.hits, 1u);
    EXPECT_EQ(after.misses, 1u); // inserts never count as misses
}

TEST(PlanCache, HydratesFromStoreAndCountsStoreHits)
{
    const auto system = smallSystem();
    const auto options = fastOptions();
    const PlanKey key = keyFor("AD", "tiny_linear", system, options);
    const std::string dir = storeDir("cache_tier");

    PlanStore store(dir);
    {
        // First process: compile once, write through.
        PlanCache cache(ad::Bytes{64} << 20);
        cache.attachStore(&store);
        cache.insert(key,
                     planFresh("AD", "tiny_linear", system, options));
        EXPECT_EQ(store.stats().writes, 1u);
    }

    // Second process: empty memory tier, same store directory.
    PlanStore reopened(dir);
    PlanCache cache(ad::Bytes{64} << 20);
    cache.attachStore(&reopened);
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit) << "store tier must satisfy the memory miss";
    const auto fresh = planFresh("AD", "tiny_linear", system, options);
    EXPECT_TRUE(hit->report.bitIdentical(fresh.report));

    auto stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.storeHits, 1u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 1u) << "hydrated into the memory tier";

    // The next lookup is a pure memory hit: no further store traffic.
    EXPECT_TRUE(cache.lookup(key));
    stats = cache.stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.storeHits, 1u);
    EXPECT_EQ(reopened.stats().hits, 1u);
}

// ---------------------------------------------------------------------
// ServeLoop warm restart

TEST(ServeLoop, WarmRestartFromStoreReplaysBitIdentically)
{
    const auto system = smallSystem();
    ad::serve::ServeOptions options;
    options.orchestrator = fastOptions();
    options.storeDir = storeDir("serve_restart");

    ad::serve::StreamOptions stream;
    stream.requests = 6;
    stream.seed = 11;
    stream.freqGhz = system.engine.freqGhz;
    stream.mix = ad::serve::resolveMix("tinymix");
    const auto trace = ad::serve::generateArrivals(stream);

    ad::serve::ServeLoop first(system, options);
    const auto cold = first.run(trace, stream.mix);
    const auto warm = first.run(trace, stream.mix);
    ASSERT_TRUE(first.store());
    EXPECT_GT(first.store()->stats().writes, 0u);

    // The restarted loop: empty memory tier, hydrates everything.
    ad::serve::ServeLoop second(system, options);
    const auto restarted = second.run(trace, stream.mix);
    EXPECT_TRUE(restarted.bitIdentical(warm))
        << "store-hydrated pass must replay the warm pass exactly";
    EXPECT_EQ(restarted.cacheMisses, 0u) << "zero cold compiles";
    EXPECT_GT(second.cache().stats().storeHits, 0u);
    EXPECT_EQ(second.store()->stats().corrupt, 0u);

    // And the cold pass agrees wherever determinism demands it.
    EXPECT_EQ(cold.admitted, restarted.admitted);
    EXPECT_EQ(cold.deadlineMisses, restarted.deadlineMisses);
}

} // namespace
