/**
 * @file
 * Tests for surrogate-screened planning (DESIGN.md Sec. 17): the fitted
 * SurrogateCostModel's bounded error against the loop-counting
 * ReferenceCostModel, its committed-weight determinism (two processes,
 * bit-identical scores), the out-of-domain fallback, and the
 * screen/confirm contract — every decision the surrogate screens is
 * re-scored by the exact model before it can enter a plan.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "check/brute_force.hh"
#include "check/surrogate_check.hh"
#include "core/atom_generator.hh"
#include "core/dtt_search.hh"
#include "core/orchestrator.hh"
#include "core/shape_catalog.hh"
#include "engine/cached_cost_model.hh"
#include "engine/surrogate_cost_model.hh"
#include "engine/surrogate_weights.hh"
#include "models/models.hh"
#include "serve/plan_cache.hh"
#include "testing_support/random_graph.hh"

namespace ad {
namespace {

using engine::DataflowKind;
using engine::EngineConfig;
using engine::SurrogateCostModel;
using engine::SurrogateSegment;

EngineConfig
defaultConfig()
{
    return EngineConfig{};
}

engine::AtomWorkload
convAtom(int h, int w, int ci, int co, int k = 3)
{
    engine::AtomWorkload a;
    a.type = graph::OpType::Conv;
    a.h = h;
    a.w = w;
    a.ci = ci;
    a.co = co;
    a.window = {k, k, 1, 1, k / 2, k / 2};
    return a;
}

engine::AtomWorkload
fcAtom(int ci, int co)
{
    engine::AtomWorkload a;
    a.type = graph::OpType::FullyConnected;
    a.h = 1;
    a.w = 1;
    a.ci = ci;
    a.co = co;
    a.window = {1, 1, 1, 1, 0, 0};
    return a;
}

engine::AtomWorkload
poolAtom(int h, int w, int c, int k = 2)
{
    engine::AtomWorkload a;
    a.type = graph::OpType::Pool;
    a.h = h;
    a.w = w;
    a.ci = c;
    a.co = c;
    a.window = {k, k, k, k, 0, 0};
    return a;
}

double
relError(Cycles got, Cycles want)
{
    return std::abs(static_cast<double>(got) -
                    static_cast<double>(want)) /
           std::max(1.0, static_cast<double>(want));
}

// ---------------------------------------------------------------------
// Segments and features.

TEST(SurrogateSegments, MacOpsSplitByMappingFamily)
{
    SurrogateSegment seg;
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::Conv,
                                    DataflowKind::KcPartition, &seg));
    EXPECT_EQ(seg, SurrogateSegment::ConvKc);
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::Conv,
                                    DataflowKind::YxPartition, &seg));
    EXPECT_EQ(seg, SurrogateSegment::ConvYx);
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::DepthwiseConv,
                                    DataflowKind::KcPartition, &seg));
    EXPECT_EQ(seg, SurrogateSegment::DepthwiseKc);
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::FullyConnected,
                                    DataflowKind::YxPartition, &seg));
    EXPECT_EQ(seg, SurrogateSegment::FcYx);
}

TEST(SurrogateSegments, VectorOpsIgnoreFamily)
{
    SurrogateSegment kc;
    SurrogateSegment yx;
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::Pool,
                                    DataflowKind::KcPartition, &kc));
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::Pool,
                                    DataflowKind::YxPartition, &yx));
    EXPECT_EQ(kc, SurrogateSegment::PoolVector);
    EXPECT_EQ(yx, SurrogateSegment::PoolVector);
    ASSERT_TRUE(surrogateSegmentFor(graph::OpType::Eltwise,
                                    DataflowKind::KcPartition, &kc));
    EXPECT_EQ(kc, SurrogateSegment::EltwiseVector);
}

TEST(SurrogateSegments, DataMovementOpsHaveNoSegment)
{
    SurrogateSegment seg;
    EXPECT_FALSE(surrogateSegmentFor(graph::OpType::Input,
                                     DataflowKind::KcPartition, &seg));
    EXPECT_FALSE(surrogateSegmentFor(graph::OpType::Concat,
                                     DataflowKind::KcPartition, &seg));
}

TEST(SurrogateFeatures, BiasTermAndFiniteValues)
{
    const auto f = engine::surrogateFeatures(
        convAtom(56, 56, 64, 64), defaultConfig(),
        SurrogateSegment::ConvKc);
    EXPECT_DOUBLE_EQ(f.values[0], 1.0);
    for (const double v : f.values)
        EXPECT_TRUE(std::isfinite(v));
}

TEST(SurrogateFeatures, MonotoneInWorkloadSize)
{
    // Growing the tile must not shrink any log-transformed size term.
    const auto small = engine::surrogateFeatures(
        convAtom(14, 14, 32, 32), defaultConfig(),
        SurrogateSegment::ConvKc);
    const auto big = engine::surrogateFeatures(
        convAtom(56, 56, 256, 256), defaultConfig(),
        SurrogateSegment::ConvKc);
    for (std::size_t i = 1; i < small.values.size(); ++i)
        EXPECT_GE(big.values[i], small.values[i]) << "feature " << i;
}

// ---------------------------------------------------------------------
// Committed-weight header contract.

TEST(SurrogateWeights, CommittedHeaderContractPinned)
{
    namespace w = engine::surrogate_weights;
    EXPECT_EQ(w::kSegments, engine::kSurrogateSegmentCount);
    EXPECT_EQ(w::kFeatures, engine::kSurrogateFeatureCount);
    EXPECT_GE(w::kTrainingPointsPerSegment, 500);
    EXPECT_LT(w::kTrainingMaxRelError,
              check::kSurrogateErrorTolerance);
    for (int s = 0; s < w::kSegments; ++s) {
        for (int f = 0; f < w::kFeatures; ++f) {
            EXPECT_TRUE(std::isfinite(w::kWeights[s][f]));
            // An exercised feature dimension has min <= max; unused
            // dimensions keep the sentinel (min > max) that forces the
            // domain guard to reject nonzero values.
            if (w::kFeatureMin[s][f] <= w::kFeatureMax[s][f]) {
                EXPECT_TRUE(std::isfinite(w::kFeatureMin[s][f]));
                EXPECT_TRUE(std::isfinite(w::kFeatureMax[s][f]));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Fitted accuracy against the exact/reference models.

TEST(SurrogateAccuracy, TypicalAtomsWithinToleranceBothDataflows)
{
    for (const auto kind :
         {DataflowKind::KcPartition, DataflowKind::YxPartition,
          DataflowKind::Flexible}) {
        const engine::CostModel exact(defaultConfig(), kind);
        const SurrogateCostModel surrogate(defaultConfig(), kind);
        for (const auto &atom :
             {convAtom(56, 56, 64, 64), convAtom(14, 14, 256, 512),
              fcAtom(2048, 1000), poolAtom(28, 28, 128)}) {
            EXPECT_LE(relError(surrogate.cycles(atom),
                               exact.cycles(atom)),
                      check::kSurrogateErrorTolerance)
                << engine::dataflowName(kind);
        }
    }
}

TEST(SurrogateAccuracy, DefaultSweepMeetsPointAndErrorGates)
{
    const auto report = check::sweepSurrogateError(defaultConfig());
    EXPECT_GE(report.points, 600);
    EXPECT_GE(report.fitted * 2, report.points);
    EXPECT_LE(report.maxRelError, check::kSurrogateErrorTolerance);
    EXPECT_LE(report.meanRelError, report.maxRelError);
}

TEST(SurrogateAccuracy, AssertSurrogateErrorPasses)
{
    const auto report = check::assertSurrogateError();
    EXPECT_GE(report.points, 600);
}

TEST(SurrogateAccuracy, AlternateEngineGeometrySweepBounded)
{
    EngineConfig cfg;
    cfg.peRows = 32;
    cfg.peCols = 32;
    cfg.vectorLanes = 32;
    const auto report = check::sweepSurrogateError(cfg);
    EXPECT_GE(report.fitted * 2, report.points);
    EXPECT_LE(report.maxRelError, check::kSurrogateErrorTolerance);
}

TEST(SurrogateAccuracy, SweepDeterministicForFixedSeed)
{
    const auto a = check::sweepSurrogateError(defaultConfig());
    const auto b = check::sweepSurrogateError(defaultConfig());
    EXPECT_EQ(a.points, b.points);
    EXPECT_EQ(a.fitted, b.fitted);
    EXPECT_EQ(a.fallbacks, b.fallbacks);
    EXPECT_DOUBLE_EQ(a.maxRelError, b.maxRelError);
    EXPECT_DOUBLE_EQ(a.meanRelError, b.meanRelError);
    EXPECT_EQ(a.worst, b.worst);
}

// ---------------------------------------------------------------------
// Fallback and counters.

TEST(SurrogateModel, OutOfDomainFallsBackToExact)
{
    const engine::CostModel exact(defaultConfig(),
                                  DataflowKind::KcPartition);
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    // Far past every training range: the fit never saw h near 1<<16.
    const auto atom = convAtom(1 << 16, 4, 8, 8);
    Cycles fitted = 0;
    EXPECT_FALSE(surrogate.fittedCycles(atom, &fitted));
    EXPECT_EQ(surrogate.cycles(atom), exact.cycles(atom));
    EXPECT_GE(surrogate.fallbackEvals(), 1u);
}

TEST(SurrogateModel, CountersSplitFittedAndFallbackEvals)
{
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    EXPECT_EQ(surrogate.fittedEvals(), 0u);
    EXPECT_EQ(surrogate.fallbackEvals(), 0u);
    (void)surrogate.cycles(convAtom(56, 56, 64, 64));
    EXPECT_EQ(surrogate.fittedEvals(), 1u);
    EXPECT_EQ(surrogate.fallbackEvals(), 0u);
    (void)surrogate.cycles(convAtom(1 << 16, 4, 8, 8));
    EXPECT_EQ(surrogate.fittedEvals(), 1u);
    EXPECT_EQ(surrogate.fallbackEvals(), 1u);
}

TEST(SurrogateModel, EvaluateKeepsExactTrafficAndOverheads)
{
    const engine::CostModel exact(defaultConfig(),
                                  DataflowKind::KcPartition);
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    const auto atom = convAtom(28, 28, 128, 128);
    const auto e = exact.evaluate(atom);
    const auto s = surrogate.evaluate(atom);
    // Traffic, MACs, and energy accounting are exact by construction.
    EXPECT_EQ(s.macs, e.macs);
    EXPECT_EQ(s.ifmapBytes, e.ifmapBytes);
    EXPECT_EQ(s.weightBytes, e.weightBytes);
    EXPECT_EQ(s.ofmapBytes, e.ofmapBytes);
    EXPECT_DOUBLE_EQ(s.energyPj, e.energyPj);
    // Fill/drain + configuration overhead is structural, not fitted.
    EXPECT_EQ(s.cycles - s.computeCycles, e.cycles - e.computeCycles);
    EXPECT_EQ(s.cycles, surrogate.cycles(atom));
}

TEST(SurrogateModel, UtilizationConsistentWithPredictedCycles)
{
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    const auto atom = convAtom(28, 28, 64, 128);
    const double util = surrogate.utilization(atom);
    const double expected =
        static_cast<double>(atom.macs()) /
        (static_cast<double>(surrogate.cycles(atom)) *
         defaultConfig().pes());
    EXPECT_NEAR(util, expected, 1e-12);
    EXPECT_DOUBLE_EQ(surrogate.utilization(poolAtom(8, 8, 32)), 0.0);
}

// Committed constants mean two *processes* must produce bit-identical
// scores — the property that keeps screened plans reproducible across
// replicas. A child re-scores the same atoms and ships raw bytes back.
TEST(SurrogateModel, TwoProcessScoresBitIdentical)
{
    const std::vector<engine::AtomWorkload> atoms = {
        convAtom(56, 56, 64, 64),   convAtom(7, 7, 512, 512),
        fcAtom(4096, 1000),         poolAtom(28, 28, 128),
        convAtom(112, 112, 3, 64, 7)};
    const auto score = [&atoms]() {
        const SurrogateCostModel surrogate(
            EngineConfig{}, DataflowKind::KcPartition);
        std::vector<Cycles> out;
        out.reserve(atoms.size());
        for (const auto &a : atoms)
            out.push_back(surrogate.cycles(a));
        return out;
    };
    const std::vector<Cycles> mine = score();
    const std::size_t bytes = mine.size() * sizeof(Cycles);

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: recompute from scratch and write the raw bytes.
        close(fds[0]);
        const std::vector<Cycles> theirs = score();
        ssize_t unused =
            write(fds[1], theirs.data(), bytes);
        (void)unused;
        close(fds[1]);
        _exit(0);
    }
    close(fds[1]);
    std::vector<Cycles> theirs(mine.size(), 0);
    std::size_t got = 0;
    while (got < bytes) {
        const ssize_t n =
            read(fds[0], reinterpret_cast<char *>(theirs.data()) + got,
                 bytes - got);
        ASSERT_GT(n, 0);
        got += static_cast<std::size_t>(n);
    }
    close(fds[0]);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
    EXPECT_EQ(mine, theirs);
}

// ---------------------------------------------------------------------
// Screen/confirm contract in the SA search.

TEST(Screening, CatalogScreenedFlagAndExactMemo)
{
    const auto g = models::tinyBranchy();
    const engine::CostModel exact(defaultConfig(),
                                  DataflowKind::KcPartition);
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    const core::ShapeCatalog unscreened(g, exact);
    EXPECT_FALSE(unscreened.screened());

    const core::ShapeCatalog screened(g, surrogate, {}, &exact);
    EXPECT_TRUE(screened.screened());
    for (const auto &l : g.layers()) {
        const auto &cands = screened.candidatesFor(l.id);
        for (std::size_t i = 0; i < cands.size(); ++i) {
            const auto workload =
                core::ShapeCatalog::workloadFor(l, cands[i].shape);
            // Ground truth comes from the exact model, regardless of
            // what the surrogate priced the candidate at.
            EXPECT_EQ(screened.exactCycles(l.id, i),
                      exact.cycles(workload));
        }
    }
}

TEST(Screening, SaRescoresEveryAcceptedMoveExactly)
{
    const auto g = models::tinyLinear(64);
    const engine::CostModel exact(defaultConfig(),
                                  DataflowKind::KcPartition);
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    const core::ShapeCatalog catalog(g, surrogate, {}, &exact);
    const core::SaAtomGenerator generator{core::SaOptions{}};
    const auto result = generator.generate(catalog);
    EXPECT_TRUE(result.screened);
    // One exact re-score for the initial state plus one per move that
    // survived the surrogate screen: accepted moves can never enter
    // the plan on surrogate numbers alone.
    EXPECT_GE(result.exactRescores,
              result.acceptedMoves + result.confirmRejects + 1);
    EXPECT_GT(result.exactRescores, 0);
}

TEST(Screening, UnscreenedSaReportsNoScreeningCounters)
{
    const auto g = models::tinyLinear(64);
    const engine::CostModel exact(defaultConfig(),
                                  DataflowKind::KcPartition);
    const core::ShapeCatalog catalog(g, exact);
    const core::SaAtomGenerator generator{core::SaOptions{}};
    const auto result = generator.generate(catalog);
    EXPECT_FALSE(result.screened);
    EXPECT_EQ(result.exactRescores, 0);
    EXPECT_EQ(result.screenRejects, 0);
    EXPECT_EQ(result.confirmRejects, 0);
}

TEST(Screening, OnAndOffPlansBothDeterministic)
{
    const auto g = models::tinyBranchy();
    const sim::SystemConfig system;
    for (const bool surrogate : {false, true}) {
        core::OrchestratorOptions options;
        options.surrogate = surrogate;
        const core::Orchestrator orch(system, options);
        const auto a = orch.run(g);
        const auto b = orch.run(g);
        EXPECT_TRUE(a.report.bitIdentical(b.report))
            << "surrogate=" << surrogate;
    }
}

TEST(Screening, ScreenedPlanWithinPinnedToleranceOfUnscreened)
{
    const sim::SystemConfig system;
    for (const auto *name : {"tiny_linear", "tiny_branchy"}) {
        const auto g = models::buildByName(name);
        Cycles cycles[2] = {0, 0};
        for (const bool surrogate : {false, true}) {
            engine::CachedCostModel::clearSharedStores();
            core::OrchestratorOptions options;
            options.surrogate = surrogate;
            const core::Orchestrator orch(system, options);
            cycles[surrogate] = orch.run(g).report.totalCycles;
        }
        // Same pinned tolerance the bench_serve surrogate cell FATALs
        // on: screened plans trade at most 10% cycles for plan speed.
        EXPECT_LE(cycles[1], cycles[0] + cycles[0] / 10) << name;
    }
}

TEST(Screening, PlanKeyCarriesMarkerOnlyWhenOn)
{
    const auto g = models::tinyLinear(32);
    const sim::SystemConfig system;
    core::OrchestratorOptions options;
    options.surrogate = false;
    const auto off = serve::makePlanKey("AD", g, system, options, {});
    options.surrogate = true;
    const auto on = serve::makePlanKey("AD", g, system, options, {});
    EXPECT_EQ(off.text.find("surrogate"), std::string::npos);
    EXPECT_NE(on.text.find(" surrogate=1"), std::string::npos);
    EXPECT_NE(off.text, on.text);
}

// ---------------------------------------------------------------------
// The DTT exact search still matches the exhaustive oracle when its
// per-atom cycles come from the surrogate: screening changes where
// cycle numbers come from, never the optimality machinery downstream.

TEST(SurrogateOracle, DttMatchesBruteForceOnSurrogateCycles)
{
    const SurrogateCostModel surrogate(defaultConfig(),
                                       DataflowKind::KcPartition);
    std::size_t tested = 0;
    for (std::uint64_t seed = 0; seed < 120 && tested < 8; ++seed) {
        const auto random = testing::randomAtomicDag(seed);
        if (random.dag->size() > 10)
            continue;
        ++tested;
        std::vector<Cycles> cycles(random.dag->size());
        for (std::size_t i = 0; i < cycles.size(); ++i) {
            cycles[i] = surrogate.cycles(
                random.dag->workload(static_cast<core::AtomId>(i)));
        }
        core::DttOptions options;
        options.engines = 2;
        const auto found =
            core::dttSearch(*random.dag, cycles, options);
        ASSERT_TRUE(found.has_value()) << "seed=" << seed;
        const auto oracle =
            check::bruteForceSchedule(*random.dag, cycles, 2);
        EXPECT_EQ(found->makespan, oracle.optimalMakespan)
            << "seed=" << seed;
    }
    EXPECT_GE(tested, 4u);
}

} // namespace
} // namespace ad
