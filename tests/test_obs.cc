/**
 * @file
 * Tests for the ad::obs observability layer and the unified
 * Planner/Executor API it hangs off: metric primitives, trace-recorder
 * exports, and the determinism contract — instrumented runs produce
 * byte-identical traces and metrics for any thread count, and tracing
 * never perturbs the simulated results.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/planners.hh"
#include "core/orchestrator.hh"
#include "models/models.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/system.hh"
#include "testing_support/random_graph.hh"
#include "util/thread_pool.hh"

namespace ad {
namespace {

/** Restores the global pool to its default size on scope exit. */
struct GlobalThreadsGuard
{
    ~GlobalThreadsGuard() { util::ThreadPool::setGlobalThreads(0); }
};

// ---------------------------------------------------------------------
// Metric primitives.

TEST(Metrics, HistogramBucketingAndEdgeClamping)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric &h = reg.histogram("h", 0.0, 100.0, 10);
    EXPECT_EQ(h.bins(), 10u);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binHigh(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binLow(9), 90.0);
    EXPECT_DOUBLE_EQ(h.binHigh(9), 100.0);

    h.observe(0.0);    // inclusive lower edge -> bucket 0
    h.observe(9.9);    // interior of bucket 0
    h.observe(10.0);   // bucket boundary belongs to bucket 1
    h.observe(-5.0);   // below lo clamps to bucket 0
    h.observe(100.0);  // hi itself clamps to the last bucket
    h.observe(1e12);   // far above hi clamps too
    EXPECT_EQ(h.binCount(0), 3u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Metrics, HistogramQuantileIsBucketResolved)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric &h = reg.histogram("q", 0.0, 100.0, 10);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0) << "empty -> lower bound";

    // 10 observations in bucket 0, 80 in bucket 4, 10 in bucket 9.
    for (int i = 0; i < 10; ++i)
        h.observe(5.0);
    for (int i = 0; i < 80; ++i)
        h.observe(45.0);
    for (int i = 0; i < 10; ++i)
        h.observe(95.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.05), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.9), 50.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.99), 100.0);
    // q is clamped; 0 still needs the first observation's bucket.
    EXPECT_DOUBLE_EQ(h.quantile(-1.0), 10.0);
    EXPECT_DOUBLE_EQ(h.quantile(2.0), 100.0);
}

TEST(Metrics, HistogramQuantileEdgeCases)
{
    obs::MetricsRegistry reg;

    // Empty histogram: every q resolves to the range floor, including
    // the degenerate ones.
    obs::HistogramMetric &empty = reg.histogram("qe", 10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(empty.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(empty.quantile(1.0), 10.0);
    EXPECT_DOUBLE_EQ(empty.quantile(-3.0), 10.0);
    EXPECT_DOUBLE_EQ(empty.quantile(7.0), 10.0);
    EXPECT_DOUBLE_EQ(empty.quantile(std::nan("")), 10.0);

    // NaN q asks for the minimum, exactly like q = 0.
    obs::HistogramMetric &h = reg.histogram("qn", 0.0, 100.0, 10);
    h.observe(25.0);
    h.observe(75.0);
    EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), h.quantile(0.0));
    EXPECT_DOUBLE_EQ(h.quantile(std::nan("")), 30.0);

    // All mass clamped into the overflow bucket: every quantile is
    // that bucket's upper edge, and none of them walks off the end.
    obs::HistogramMetric &over = reg.histogram("qo", 0.0, 10.0, 4);
    for (int i = 0; i < 5; ++i)
        over.observe(1e9);
    EXPECT_DOUBLE_EQ(over.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(over.quantile(0.5), 10.0);
    EXPECT_DOUBLE_EQ(over.quantile(1.0), 10.0);

    // Same at the other edge: underflow clamps into bucket 0.
    obs::HistogramMetric &under = reg.histogram("qu", 0.0, 10.0, 4);
    for (int i = 0; i < 5; ++i)
        under.observe(-1e9);
    EXPECT_DOUBLE_EQ(under.quantile(1.0), 2.5);
}

TEST(Metrics, RegistrationOrderIsStableAndRefsAreReused)
{
    obs::MetricsRegistry reg;
    obs::Counter &b = reg.counter("b");
    obs::Counter &a = reg.counter("a");
    reg.gauge("g");
    b.add(2);
    a.add();
    EXPECT_EQ(&reg.counter("b"), &b); // re-registration: same metric
    EXPECT_EQ(reg.size(), 3u);
    // renderText walks registration order, never name order.
    EXPECT_EQ(reg.renderText(), "b 2\na 1\ng 0\n");
    EXPECT_EQ(reg.renderJson(), "{\"b\":2,\"a\":1,\"g\":0}");
}

TEST(Metrics, ExcludePrefixDropsHostMetrics)
{
    obs::MetricsRegistry reg;
    reg.counter("sim.rounds").add(4);
    reg.gauge("host.search_seconds").set(1.5);
    reg.counter("host.costmodel.hits").add(9);
    EXPECT_EQ(reg.renderText("host."), "sim.rounds 4\n");
    EXPECT_EQ(reg.renderJson("host."), "{\"sim.rounds\":4}");
}

TEST(Metrics, HistogramTextRenderingSkipsEmptyBuckets)
{
    obs::MetricsRegistry reg;
    obs::HistogramMetric &h = reg.histogram("lat", 0.0, 4.0, 4);
    h.observe(0.5);
    h.observe(3.5);
    h.observe(3.6);
    EXPECT_EQ(reg.renderText(),
              "lat[0,1) 1\nlat[3,4) 2\nlat.total 3\n");
}

TEST(Metrics, FormatMetricValueRoundTrips)
{
    EXPECT_EQ(obs::formatMetricValue(0.0), "0");
    EXPECT_EQ(obs::formatMetricValue(1.5), "1.5");
    EXPECT_EQ(obs::formatMetricValue(1e6), "1e+06");
    // Shortest representation that parses back to the same double.
    EXPECT_EQ(obs::formatMetricValue(0.1), "0.1");
}

// ---------------------------------------------------------------------
// Trace recorder.

TEST(Trace, JsonArgsEscapesStrings)
{
    const std::string args = obs::JsonArgs()
                                 .add("name", "a\"b\\c\nd")
                                 .add("bytes", std::uint64_t{42})
                                 .str();
    EXPECT_EQ(args, "{\"name\":\"a\\\"b\\\\c\\nd\",\"bytes\":42}");
}

TEST(Trace, SnapshotIsCanonicallySorted)
{
    obs::TraceRecorder tr;
    tr.span(5, 100, 10, "later");
    tr.span(3, 100, 10, "lower-track");
    tr.instant(1, 50, "first");
    tr.counter(1, 75, "series", 2.0);
    const auto events = tr.snapshot();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, "first");
    EXPECT_EQ(events[1].name, "series");
    EXPECT_EQ(events[2].name, "lower-track");
    EXPECT_EQ(events[3].name, "later");
    EXPECT_EQ(tr.eventCount(), 4u);
}

TEST(Trace, PerfettoJsonSchema)
{
    obs::TraceRecorder tr;
    tr.setProcessName("ad.test");
    tr.setTrackName(0, "rounds");
    tr.span(0, 10, 5, "round",
            obs::JsonArgs().add("round", 0).str());
    tr.instant(0, 12, "mark");
    tr.counter(0, 14, "energy", 3.5);
    const std::string json = tr.perfettoJson();

    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
                         0),
              0u);
    EXPECT_NE(json.find("{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
                        "\"name\":\"process_name\","
                        "\"args\":{\"name\":\"ad.test\"}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"name\":\"thread_name\","
                        "\"args\":{\"name\":\"rounds\"}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":10,"
                        "\"dur\":5,\"name\":\"round\","
                        "\"args\":{\"round\":0}}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"ts\":12,"
                        "\"s\":\"t\",\"name\":\"mark\"}"),
              std::string::npos);
    EXPECT_NE(json.find("{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":14,"
                        "\"name\":\"energy\","
                        "\"args\":{\"value\":3.5}}"),
              std::string::npos);
    EXPECT_EQ(json.substr(json.size() - 4), "\n]}\n");
}

TEST(Trace, TimelineCsvQuotesFields)
{
    obs::TraceRecorder tr;
    tr.setTrackName(2, "hbm");
    tr.span(2, 1, 2, "a,b", obs::JsonArgs().add("k", 1).str());
    EXPECT_EQ(tr.timelineCsv(),
              "track,track_name,kind,ts,dur,name,args\n"
              "2,hbm,span,1,2,\"a,b\",\"{\"\"k\"\":1}\"\n");
}

// ---------------------------------------------------------------------
// End-to-end determinism and accounting through the Planner API.

struct InstrumentedRun
{
    std::string traceJson;
    std::string metricsText;
    sim::ExecutionReport report;
    std::map<int, Cycles> engineSpanCycles; ///< engine id -> sum of durs
};

InstrumentedRun
runInstrumented(const graph::Graph &graph, const std::string &strategy,
                int threads)
{
    util::ThreadPool::setGlobalThreads(threads);
    sim::SystemConfig system;
    const auto planner =
        baselines::makePlanner({strategy, system, {}, {}});
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    obs::Instrumentation ins{&trace, &metrics};
    InstrumentedRun run;
    run.report = planner->plan(graph, &ins).report;
    run.traceJson = trace.perfettoJson();
    // The reserved host.* prefix holds every nondeterministic metric
    // (wall times, process-wide cache statistics); everything else must
    // be byte-identical across runs and thread counts.
    run.metricsText = metrics.renderText("host.");
    for (const obs::TraceEvent &e : trace.snapshot()) {
        if (e.kind == obs::TraceEvent::Kind::Span &&
            e.track >= obs::kTrackEngineBase) {
            run.engineSpanCycles[e.track - obs::kTrackEngineBase] +=
                e.dur;
        }
    }
    return run;
}

TEST(ObsDeterminism, TraceAndMetricsAreByteIdenticalAcrossThreads)
{
    GlobalThreadsGuard guard;
    const auto graph = testing::randomGraph(7);
    const auto one = runInstrumented(graph, "AD", 1);
    const auto four = runInstrumented(graph, "AD", 4);
    EXPECT_TRUE(one.report.bitIdentical(four.report));
    EXPECT_EQ(one.traceJson, four.traceJson);
    EXPECT_EQ(one.metricsText, four.metricsText);
}

TEST(ObsDeterminism, RepeatedRunsAreByteIdentical)
{
    GlobalThreadsGuard guard;
    const auto graph = testing::randomGraph(11);
    const auto first = runInstrumented(graph, "AD", 2);
    const auto second = runInstrumented(graph, "AD", 2);
    EXPECT_EQ(first.traceJson, second.traceJson);
    EXPECT_EQ(first.metricsText, second.metricsText);
}

TEST(ObsDeterminism, EngineSpansSumToEngineBusyCycles)
{
    GlobalThreadsGuard guard;
    const auto graph = testing::randomGraph(3);
    const auto run = runInstrumented(graph, "LS", 2);
    ASSERT_FALSE(run.report.engineBusyCycles.empty());
    Cycles traced_total = 0;
    for (std::size_t e = 0; e < run.report.engineBusyCycles.size();
         ++e) {
        const auto it =
            run.engineSpanCycles.find(static_cast<int>(e));
        const Cycles traced =
            it == run.engineSpanCycles.end() ? 0 : it->second;
        EXPECT_EQ(traced, run.report.engineBusyCycles[e])
            << "engine " << e;
        traced_total += traced;
    }
    EXPECT_GT(traced_total, 0u);
}

TEST(ObsDeterminism, InstrumentationDoesNotPerturbResults)
{
    GlobalThreadsGuard guard;
    const auto graph = testing::randomGraph(5);
    sim::SystemConfig system;
    const auto planner = baselines::makePlanner({"AD", system, {}, {}});
    const auto bare = planner->run(graph);
    const auto traced = runInstrumented(graph, "AD", 2);
    EXPECT_TRUE(bare.bitIdentical(traced.report));
}

// ---------------------------------------------------------------------
// Planner API surface.

TEST(PlannerApi, FactoryCoversEveryStrategy)
{
    sim::SystemConfig system;
    for (const std::string &name : baselines::plannerNames()) {
        const auto planner = baselines::makePlanner({name, system, {}, {}});
        EXPECT_EQ(planner->name(), name);
    }
    EXPECT_THROW(baselines::makePlanner({"nope", system, {}, {}}),
                 ConfigError);
}

TEST(PlannerApi, AnalyticBaselinesReportWithoutDag)
{
    GlobalThreadsGuard guard;
    const auto graph = testing::randomGraph(9);
    sim::SystemConfig system;
    // CNN-P and IL-Pipe are analytic: a report but no DAG/schedule.
    const auto plan =
        baselines::makePlanner({"CNN-P", system, {}, {}})->plan(graph);
    EXPECT_EQ(plan.dag, nullptr);
    EXPECT_GT(plan.report.totalCycles, 0u);
    // Simulated planners carry the full artefacts.
    const auto full =
        baselines::makePlanner({"LS", system, {}, {}})->plan(graph);
    ASSERT_NE(full.dag, nullptr);
    EXPECT_FALSE(full.schedule.rounds.empty());
}

TEST(PlannerApi, BitIdenticalAndApproxEqualDisagreeOnPurpose)
{
    sim::ExecutionReport a;
    a.totalCycles = 1000000;
    a.rounds = 10;
    a.peUtilization = 0.5;
    sim::ExecutionReport b = a;
    b.totalCycles = 1000001; // 1 ppm off
    EXPECT_FALSE(a.bitIdentical(b));
    EXPECT_TRUE(a.approxEqual(b, 1e-3));
    b.rounds = 11; // structural fields must match exactly
    EXPECT_FALSE(a.approxEqual(b, 1e-3));
}

} // namespace
} // namespace ad
