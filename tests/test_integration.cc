/**
 * @file
 * Integration tests: the full orchestrator pipeline (atom generation ->
 * DAG -> scheduling -> mapping -> simulation) across dataflows, batch
 * sizes, and ablation modes, plus strategy-ordering checks on a real
 * (small-mesh) workload.
 */

#include <gtest/gtest.h>

#include <set>

#include "baselines/layer_sequential.hh"
#include "core/orchestrator.hh"
#include "models/models.hh"

namespace ad {
namespace {

using core::AtomGenMode;
using core::Orchestrator;
using core::OrchestratorOptions;
using core::SchedMode;

sim::SystemConfig
system4x4(engine::DataflowKind dataflow =
              engine::DataflowKind::KcPartition)
{
    sim::SystemConfig sys;
    sys.meshX = 4;
    sys.meshY = 4;
    sys.dataflow = dataflow;
    return sys;
}

struct PipelineCase
{
    const char *model;
    engine::DataflowKind dataflow;
    int batch;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase>
{
  protected:
    graph::Graph
    build() const
    {
        const std::string name = GetParam().model;
        if (name == "linear")
            return models::tinyLinear(64);
        if (name == "residual")
            return models::tinyResidual();
        return models::tinyBranchy();
    }
};

TEST_P(PipelineTest, EndToEnd)
{
    const PipelineCase p = GetParam();
    const graph::Graph g = build();
    OrchestratorOptions opts;
    opts.batch = p.batch;
    opts.sa.maxIterations = 60;
    const Orchestrator orch(system4x4(p.dataflow), opts);
    const auto result = orch.run(g);

    // The schedule covers the whole DAG, each atom once.
    EXPECT_EQ(result.schedule.atomCount(), result.dag->size());
    EXPECT_GT(result.report.totalCycles, 0u);
    EXPECT_GT(result.report.rounds, 0u);
    EXPECT_EQ(result.report.batch, p.batch);
    EXPECT_GT(result.generation.meanCycles, 0.0);
    EXPECT_GE(result.searchSeconds, 0.0);

    // Mapped engines are within range and unique per round.
    for (const auto &round : result.schedule.rounds) {
        std::set<int> engines;
        for (const auto &placement : round.placements) {
            EXPECT_GE(placement.engine, 0);
            EXPECT_LT(placement.engine, 16);
            EXPECT_TRUE(engines.insert(placement.engine).second);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, PipelineTest,
    ::testing::Values(
        PipelineCase{"linear", engine::DataflowKind::KcPartition, 1},
        PipelineCase{"linear", engine::DataflowKind::KcPartition, 4},
        PipelineCase{"linear", engine::DataflowKind::YxPartition, 2},
        PipelineCase{"residual", engine::DataflowKind::KcPartition, 1},
        PipelineCase{"residual", engine::DataflowKind::YxPartition, 1},
        PipelineCase{"branchy", engine::DataflowKind::KcPartition, 2},
        PipelineCase{"branchy", engine::DataflowKind::YxPartition, 4}));

TEST(Orchestrator, DeterministicEndToEnd)
{
    const graph::Graph g = models::tinyBranchy();
    OrchestratorOptions opts;
    opts.sa.maxIterations = 60;
    const Orchestrator orch(system4x4(), opts);
    const auto a = orch.run(g);
    const auto b = orch.run(g);
    EXPECT_EQ(a.report.totalCycles, b.report.totalCycles);
}

TEST(Orchestrator, FullSearchBeatsPinnedAblations)
{
    // The Fig. 4(b) candidate search must never lose to any single
    // pinned configuration it includes.
    const graph::Graph g = models::tinyResidual();
    OrchestratorOptions full;
    full.batch = 2;
    full.sa.maxIterations = 60;
    const auto best = Orchestrator(system4x4(), full).run(g);

    for (SchedMode mode :
         {SchedMode::LayerOrder, SchedMode::Greedy}) {
        OrchestratorOptions pinned = full;
        pinned.scheduler.mode = mode;
        const auto r = Orchestrator(system4x4(), pinned).run(g);
        EXPECT_LE(best.report.totalCycles,
                  r.report.totalCycles * 105 / 100);
    }
}

TEST(Orchestrator, ReuseAblationIncreasesDramTraffic)
{
    const graph::Graph g = models::tinyResidual();
    OrchestratorOptions on;
    on.batch = 2;
    on.sa.maxIterations = 60;
    OrchestratorOptions off = on;
    off.onChipReuse = false;
    const auto with = Orchestrator(system4x4(), on).run(g);
    const auto without = Orchestrator(system4x4(), off).run(g);
    EXPECT_GT(without.report.hbmReadBytes, with.report.hbmReadBytes);
    EXPECT_EQ(without.report.onChipReuseRatio, 0.0);
}

TEST(Orchestrator, EvenPartitionAblationRuns)
{
    const graph::Graph g = models::tinyBranchy();
    OrchestratorOptions opts;
    opts.atomGen = AtomGenMode::EvenPartition;
    const auto r = Orchestrator(system4x4(), opts).run(g);
    EXPECT_GT(r.report.totalCycles, 0u);
    // EvenPartition skips the SA stage.
    EXPECT_TRUE(r.generation.varianceTrace.empty());
}

TEST(Integration, AdBeatsLayerSequentialOnResnetSlice)
{
    // Medium-size check on the default 8x8 system: AD must outperform
    // the naive LS baseline on a real network (the paper's headline).
    sim::SystemConfig sys; // 8x8 engines
    const graph::Graph g = models::resnet50();

    OrchestratorOptions opts;
    opts.batch = 1;
    opts.sa.maxIterations = 150;
    const auto ad = Orchestrator(sys, opts).run(g);

    baselines::LsOptions ls_opts;
    ls_opts.batch = 1;
    const auto ls = baselines::LayerSequential(sys, ls_opts).run(g);

    EXPECT_LT(ad.report.totalCycles, ls.totalCycles);
    EXPECT_GT(ad.report.computeUtilization, ls.computeUtilization);
}

TEST(Integration, SearchTimeIsReported)
{
    const graph::Graph g = models::tinyLinear(32);
    OrchestratorOptions opts;
    opts.sa.maxIterations = 60;
    const auto r = Orchestrator(system4x4(), opts).run(g);
    EXPECT_GT(r.searchSeconds, 0.0);
    EXPECT_LT(r.searchSeconds, 60.0);
}

} // namespace
} // namespace ad
