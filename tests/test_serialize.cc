/**
 * @file
 * Tests for the adgraph text serialization: round-trips of every layer
 * type and the whole model zoo, plus parse-error handling.
 */

#include <gtest/gtest.h>

#include "graph/serialize.hh"
#include "models/models.hh"

namespace ad::graph {
namespace {

void
expectEquivalent(const Graph &a, const Graph &b)
{
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(a.name(), b.name());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Layer &la = a.layer(static_cast<LayerId>(i));
        const Layer &lb = b.layer(static_cast<LayerId>(i));
        EXPECT_EQ(la.type, lb.type) << la.name;
        EXPECT_EQ(la.name, lb.name);
        EXPECT_EQ(la.out, lb.out) << la.name;
        EXPECT_EQ(la.in, lb.in) << la.name;
        EXPECT_EQ(la.window, lb.window) << la.name;
        EXPECT_EQ(la.inputs, lb.inputs) << la.name;
    }
    EXPECT_EQ(a.totalMacs(), b.totalMacs());
    EXPECT_EQ(a.totalParams(), b.totalParams());
}

TEST(Serialize, RoundTripTinyModels)
{
    for (const Graph &g : {models::tinyLinear(32), models::tinyResidual(),
                           models::tinyBranchy()}) {
        expectEquivalent(g, fromText(toText(g)));
    }
}

class ZooRoundTrip
    : public ::testing::TestWithParam<models::ModelEntry>
{
};

TEST_P(ZooRoundTrip, SurvivesSerialization)
{
    const Graph original = GetParam().build();
    const Graph reloaded = fromText(toText(original));
    expectEquivalent(original, reloaded);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooRoundTrip, ::testing::ValuesIn(models::tableOneModels()),
    [](const ::testing::TestParamInfo<models::ModelEntry> &info) {
        std::string name = info.param.name;
        for (char &c : name) {
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        }
        return name;
    });

TEST(Serialize, HeaderCarriesModelName)
{
    const Graph g = models::tinyResidual();
    const std::string text = toText(g);
    EXPECT_EQ(text.rfind("adgraph v1 tiny_residual", 0), 0u);
}

TEST(Serialize, CommentsAndBlankLinesIgnored)
{
    const std::string text = "adgraph v1 t\n"
                             "# a comment\n"
                             "\n"
                             "input in 8 8 3\n"
                             "conv c1 in 16 3 3 1 1 1\n";
    const Graph g = fromText(text);
    EXPECT_EQ(g.size(), 2u);
    EXPECT_EQ(g.layer(1).out.c, 16);
}

TEST(Serialize, RejectsBadHeader)
{
    EXPECT_THROW(fromText("nonsense v1 x\n"), ConfigError);
    EXPECT_THROW(fromText(""), ConfigError);
}

TEST(Serialize, RejectsUnknownOp)
{
    EXPECT_THROW(fromText("adgraph v1 t\nwarp w 1 2 3\n"), ConfigError);
}

TEST(Serialize, RejectsUnknownSource)
{
    EXPECT_THROW(
        fromText("adgraph v1 t\ninput in 8 8 3\n"
                 "conv c ghost 4 3 3 1 1 1\n"),
        ConfigError);
}

TEST(Serialize, RejectsDuplicateNames)
{
    EXPECT_THROW(fromText("adgraph v1 t\ninput a 8 8 3\ninput a 8 8 3\n"),
                 ConfigError);
}

TEST(Serialize, FileRoundTrip)
{
    const Graph g = models::tinyBranchy();
    const std::string path = "/tmp/ad_serialize_test.adgraph";
    saveText(g, path);
    expectEquivalent(g, loadText(path));
}

TEST(Serialize, LoadMissingFileFatals)
{
    EXPECT_THROW(loadText("/nonexistent/path.adgraph"), ConfigError);
}

} // namespace
} // namespace ad::graph
