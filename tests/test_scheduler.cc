/**
 * @file
 * Tests for Algorithm 2 (atomic DAG scheduling): every mode must produce
 * a complete, dependency-respecting, capacity-respecting Round sequence.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/scheduler.hh"
#include "core/partition.hh"
#include "models/models.hh"
#include "util/random.hh"

namespace ad::core {
namespace {

using engine::CostModel;
using engine::DataflowKind;
using engine::EngineConfig;

struct SchedCase
{
    const char *model;
    SchedMode mode;
    int engines;
    int batch;
};

class ScheduleProperty : public ::testing::TestWithParam<SchedCase>
{
  protected:
    graph::Graph
    buildModel() const
    {
        const std::string name = GetParam().model;
        if (name == "linear")
            return models::tinyLinear(64);
        if (name == "residual")
            return models::tinyResidual();
        return models::tinyBranchy();
    }
};

TEST_P(ScheduleProperty, CompleteAndDependencyOrdered)
{
    const SchedCase p = GetParam();
    const graph::Graph g = buildModel();
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);

    AtomicDagOptions dag_opts;
    dag_opts.batch = p.batch;
    const AtomicDag dag(g, evenPartitionShapes(g, 8), dag_opts);

    SchedulerOptions opts;
    opts.engines = p.engines;
    opts.mode = p.mode;
    const DpScheduler scheduler(dag, model, opts);
    const RoundList rounds = scheduler.schedule();

    // Every atom exactly once.
    std::set<AtomId> seen;
    std::vector<int> round_of(dag.size(), -1);
    for (std::size_t t = 0; t < rounds.size(); ++t) {
        EXPECT_LE(rounds[t].size(),
                  static_cast<std::size_t>(p.engines));
        EXPECT_FALSE(rounds[t].empty());
        for (AtomId a : rounds[t]) {
            EXPECT_TRUE(seen.insert(a).second) << "atom twice: " << a;
            round_of[static_cast<std::size_t>(a)] =
                static_cast<int>(t);
        }
    }
    EXPECT_EQ(seen.size(), dag.size());

    // Dependencies strictly precede consumers.
    for (const Atom &a : dag.atoms()) {
        for (AtomId dep : dag.depsSpan(a.id)) {
            EXPECT_LT(round_of[static_cast<std::size_t>(dep)],
                      round_of[static_cast<std::size_t>(a.id)]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ScheduleProperty,
    ::testing::Values(
        SchedCase{"linear", SchedMode::LayerOrder, 4, 1},
        SchedCase{"linear", SchedMode::LayerBatched, 4, 3},
        SchedCase{"linear", SchedMode::Greedy, 4, 2},
        SchedCase{"linear", SchedMode::Dp, 4, 1},
        SchedCase{"residual", SchedMode::LayerOrder, 4, 2},
        SchedCase{"residual", SchedMode::Greedy, 8, 1},
        SchedCase{"residual", SchedMode::Dp, 4, 2},
        SchedCase{"branchy", SchedMode::Greedy, 4, 1},
        SchedCase{"branchy", SchedMode::Dp, 8, 2},
        SchedCase{"branchy", SchedMode::LayerBatched, 8, 4}));

TEST(Scheduler, DeterministicAcrossRuns)
{
    const graph::Graph g = models::tinyBranchy();
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    const AtomicDag dag(g, evenPartitionShapes(g, 8));
    SchedulerOptions opts;
    opts.engines = 4;
    opts.mode = SchedMode::Dp;
    const RoundList a = DpScheduler(dag, model, opts).schedule();
    const RoundList b = DpScheduler(dag, model, opts).schedule();
    EXPECT_EQ(a, b);
}

TEST(Scheduler, AtomCyclesExposed)
{
    const graph::Graph g = models::tinyLinear(32);
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    const AtomicDag dag(g, evenPartitionShapes(g, 4));
    SchedulerOptions opts;
    opts.engines = 4;
    const DpScheduler scheduler(dag, model, opts);
    for (const Atom &a : dag.atoms()) {
        EXPECT_EQ(scheduler.atomCycles(a.id),
                  model.cycles(dag.workload(a.id)));
        EXPECT_GT(scheduler.atomCycles(a.id), 0u);
    }
}

TEST(Scheduler, GreedyExploitsParallelBranches)
{
    // Branchy cell: the three branches can run in the same Round even
    // though they belong to different layers.
    const graph::Graph g = models::tinyBranchy();
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    const AtomicDag dag(g, evenPartitionShapes(g, 1));
    SchedulerOptions opts;
    opts.engines = 8;
    opts.mode = SchedMode::Greedy;
    const RoundList rounds = DpScheduler(dag, model, opts).schedule();
    // Whole-layer atoms: b1, b2, b3_pool can share the first round.
    EXPECT_GE(rounds.front().size(), 3u);
}

TEST(Scheduler, BatchIncreasesRoundOccupancy)
{
    const graph::Graph g = models::tinyLinear(64);
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    AtomicDagOptions one, many;
    many.batch = 8;
    const auto shapes = evenPartitionShapes(g, 4);
    const AtomicDag dag1(g, shapes, one);
    const AtomicDag dag8(g, shapes, many);
    SchedulerOptions opts;
    opts.engines = 16;
    opts.mode = SchedMode::Greedy;
    const auto r1 = DpScheduler(dag1, model, opts).schedule();
    const auto r8 = DpScheduler(dag8, model, opts).schedule();
    const double occ1 =
        static_cast<double>(dag1.size()) / static_cast<double>(r1.size());
    const double occ8 =
        static_cast<double>(dag8.size()) / static_cast<double>(r8.size());
    EXPECT_GT(occ8, occ1);
}

TEST(Scheduler, RejectsZeroEngines)
{
    const graph::Graph g = models::tinyLinear(16);
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    const AtomicDag dag(g, evenPartitionShapes(g, 2));
    SchedulerOptions opts;
    opts.engines = 0;
    EXPECT_THROW(DpScheduler(dag, model, opts), ConfigError);
}

namespace {

/** Assert @p rounds covers @p dag exactly once in dependency order. */
void
expectValidSchedule(const AtomicDag &dag, const RoundList &rounds)
{
    std::set<AtomId> seen;
    std::vector<int> round_of(dag.size(), -1);
    for (std::size_t t = 0; t < rounds.size(); ++t) {
        for (AtomId a : rounds[t]) {
            EXPECT_TRUE(seen.insert(a).second) << "atom twice: " << a;
            round_of[static_cast<std::size_t>(a)] = static_cast<int>(t);
        }
    }
    EXPECT_EQ(seen.size(), dag.size());
    for (const Atom &a : dag.atoms()) {
        for (AtomId dep : dag.depsSpan(a.id)) {
            EXPECT_LT(round_of[static_cast<std::size_t>(dep)],
                      round_of[static_cast<std::size_t>(a.id)]);
        }
    }
}

} // namespace

TEST(Scheduler, RandomizedRoundTripInvariant)
{
    // The DP search applies and undoes candidate combos on its mutable
    // state; any missed undo would leak into later decisions. Exercise
    // the public surface under randomized configurations: scheduling
    // twice through the same instance and through a fresh instance must
    // agree (the search left no state behind), and every result must
    // satisfy the coverage/dependency invariants.
    const std::vector<SchedMode> modes{
        SchedMode::LayerOrder, SchedMode::LayerBatched, SchedMode::Greedy,
        SchedMode::Dp};
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed * 977);
        const graph::Graph g = (seed % 2) != 0 ? models::tinyBranchy()
                                               : models::tinyResidual();
        AtomicDagOptions dopts;
        dopts.batch = static_cast<int>(rng.uniformInt(1, 3));
        const int parts = static_cast<int>(rng.uniformInt(1, 8));
        const AtomicDag dag(g, evenPartitionShapes(g, parts), dopts);
        const CostModel model(EngineConfig{}, DataflowKind::KcPartition);

        SchedulerOptions opts;
        opts.engines = static_cast<int>(rng.uniformInt(2, 16));
        opts.mode =
            modes[static_cast<std::size_t>(rng.uniformInt(0, 3))];
        opts.lookaheadDepth = static_cast<int>(rng.uniformInt(1, 3));

        const DpScheduler sched(dag, model, opts);
        const RoundList first = sched.schedule();
        const RoundList second = sched.schedule();
        EXPECT_EQ(first, second) << "state leaked across runs, seed "
                                 << seed;
        EXPECT_EQ(first, DpScheduler(dag, model, opts).schedule())
            << "fresh instance diverged, seed " << seed;
        expectValidSchedule(dag, first);
    }
}

TEST(Scheduler, DpDowngradeRecordsEffectiveMode)
{
    const graph::Graph g = models::tinyBranchy();
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    const AtomicDag dag(g, evenPartitionShapes(g, 8));
    SchedulerOptions opts;
    opts.engines = 4;
    opts.mode = SchedMode::Dp;
    opts.dpAtomLimit = 1; // force the fallback
    const DpScheduler sched(dag, model, opts);
    EXPECT_EQ(sched.effectiveMode(), SchedMode::Greedy);

    // The downgraded result is exactly the greedy schedule, and valid.
    SchedulerOptions greedy = opts;
    greedy.mode = SchedMode::Greedy;
    const RoundList rounds = sched.schedule();
    EXPECT_EQ(rounds, DpScheduler(dag, model, greedy).schedule());
    expectValidSchedule(dag, rounds);

    // Within the limit the request sticks.
    SchedulerOptions within = opts;
    within.dpAtomLimit = 150'000;
    EXPECT_EQ(DpScheduler(dag, model, within).effectiveMode(),
              SchedMode::Dp);
    EXPECT_STREQ(schedModeName(SchedMode::Greedy), "greedy");
    EXPECT_STREQ(schedModeName(SchedMode::Dp), "dp");
}

TEST(Scheduler, LayerBatchedGroupsSamplesPerLayer)
{
    const graph::Graph g = models::tinyLinear(64);
    const CostModel model(EngineConfig{}, DataflowKind::KcPartition);
    AtomicDagOptions dopts;
    dopts.batch = 4;
    const AtomicDag dag(g, evenPartitionShapes(g, 2), dopts);
    SchedulerOptions opts;
    opts.engines = 8;
    opts.mode = SchedMode::LayerBatched;
    const RoundList rounds = DpScheduler(dag, model, opts).schedule();
    // In the first round all samples' first-conv atoms run together.
    std::set<int> samples;
    std::set<graph::LayerId> layers;
    for (AtomId a : rounds.front()) {
        samples.insert(dag.atom(a).batch);
        layers.insert(dag.atom(a).layer);
    }
    EXPECT_EQ(layers.size(), 1u);
    EXPECT_EQ(samples.size(), 4u);
}

} // namespace
} // namespace ad::core
