/**
 * @file
 * Tests for the baseline executors (LS, CNN-P, IL-Pipe, Rammer-like):
 * report sanity, structural behaviours (CLP selection, segmentation),
 * and the Fig. 2 layer-utilization helper.
 */

#include <gtest/gtest.h>

#include "baselines/cnn_partition.hh"
#include "baselines/il_pipe.hh"
#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "models/models.hh"

namespace ad::baselines {
namespace {

sim::SystemConfig
smallSystem()
{
    sim::SystemConfig sys;
    sys.meshX = 4;
    sys.meshY = 4;
    return sys;
}

void
expectSane(const sim::ExecutionReport &r)
{
    EXPECT_GT(r.totalCycles, 0u);
    EXPECT_GE(r.peUtilization, 0.0);
    EXPECT_LE(r.peUtilization, 1.0);
    EXPECT_GE(r.computeUtilization, 0.0);
    EXPECT_LE(r.computeUtilization, 1.0);
    EXPECT_GE(r.onChipReuseRatio, 0.0);
    EXPECT_LE(r.onChipReuseRatio, 1.0);
    EXPECT_GT(r.totalEnergyPj(), 0.0);
}

TEST(LayerSequential, RunsOnTinyModels)
{
    LsOptions opts;
    const LayerSequential ls(smallSystem(), opts);
    expectSane(ls.run(models::tinyResidual()));
    expectSane(ls.run(models::tinyBranchy()));
}

TEST(LayerSequential, BatchGroupingImprovesThroughput)
{
    LsOptions one;
    one.batch = 4;
    one.samplesInFlight = 1;
    LsOptions four;
    four.batch = 4;
    four.samplesInFlight = 4;
    const graph::Graph g = models::tinyLinear(64);
    const auto r1 = LayerSequential(smallSystem(), one).run(g);
    const auto r4 = LayerSequential(smallSystem(), four).run(g);
    // Mapping several samples at once raises utilization (Sec. V-A).
    EXPECT_GE(r4.computeUtilization, r1.computeUtilization * 0.9);
}

TEST(LayerSequential, LayerUtilizationsInUnitRange)
{
    const LayerSequential ls(smallSystem(), LsOptions{});
    const graph::Graph g = models::tinyBranchy();
    const auto utils = ls.layerUtilizations(g);
    ASSERT_EQ(utils.size(), g.size());
    for (const auto &l : g.layers()) {
        const double u = utils[static_cast<std::size_t>(l.id)];
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
        if (!l.onPeArray())
            EXPECT_DOUBLE_EQ(u, 0.0);
    }
}

TEST(LayerSequential, ChannelSplitCausesMismatch)
{
    // Fig. 2's claim: naive even partitioning across the full 8x8 mesh
    // leaves most PEs idle.
    const LayerSequential ls(sim::SystemConfig{}, LsOptions{});
    const graph::Graph g = models::resnet50();
    const auto utils = ls.layerUtilizations(g);
    double sum = 0;
    int n = 0;
    for (const auto &l : g.layers()) {
        if (l.onPeArray()) {
            sum += utils[static_cast<std::size_t>(l.id)];
            ++n;
        }
    }
    EXPECT_LT(sum / n, 0.5); // far from full utilization
}

TEST(LayerSequential, RejectsBadOptions)
{
    LsOptions opts;
    opts.batch = 0;
    EXPECT_THROW(LayerSequential(smallSystem(), opts), ConfigError);
}

TEST(CnnPartition, RunsAndSelectsClps)
{
    CnnPOptions opts;
    opts.batch = 8;
    CnnPartition cnnp(smallSystem(), opts);
    const auto r = cnnp.run(models::tinyLinear(64));
    expectSane(r);
    EXPECT_GE(cnnp.selectedClps(), 1);
    EXPECT_LE(cnnp.selectedClps(), opts.maxClps);
}

TEST(CnnPartition, AllTrafficGoesThroughDram)
{
    CnnPOptions opts;
    opts.batch = 2;
    const auto r =
        CnnPartition(smallSystem(), opts).run(models::tinyResidual());
    EXPECT_DOUBLE_EQ(r.onChipReuseRatio, 0.0);
    EXPECT_GT(r.hbmReadBytes, 0u);
    EXPECT_GT(r.hbmWriteBytes, 0u);
}

TEST(CnnPartition, BatchOnePreventsPipelining)
{
    CnnPOptions opts;
    opts.batch = 1;
    CnnPartition cnnp(smallSystem(), opts);
    cnnp.run(models::tinyLinear(64));
    EXPECT_EQ(cnnp.selectedClps(), 1); // no pipelining possible
}

TEST(CnnPartition, ThroughputScalesWithBatch)
{
    const graph::Graph g = models::tinyLinear(64);
    CnnPOptions b2;
    b2.batch = 2;
    CnnPOptions b8;
    b8.batch = 8;
    const auto r2 = CnnPartition(smallSystem(), b2).run(g);
    const auto r8 = CnnPartition(smallSystem(), b8).run(g);
    EXPECT_GT(r8.throughputFps(0.5), r2.throughputFps(0.5));
}

TEST(IlPipe, RunsAndSegments)
{
    IlPipeOptions opts;
    opts.batch = 4;
    IlPipe pipe(smallSystem(), opts);
    const auto r = pipe.run(models::tinyLinear(64));
    expectSane(r);
    EXPECT_GE(pipe.segmentCount(), 1);
}

TEST(IlPipe, AlloHalvesFillDrain)
{
    const graph::Graph g = models::tinyLinear(64);
    IlPipeOptions allo;
    allo.batch = 1;
    allo.allo = true;
    IlPipeOptions coarse = allo;
    coarse.allo = false;
    const auto fine = IlPipe(smallSystem(), allo).run(g);
    const auto slow = IlPipe(smallSystem(), coarse).run(g);
    EXPECT_LE(fine.totalCycles, slow.totalCycles);
}

TEST(IlPipe, BatchAmortizesFillDrain)
{
    const graph::Graph g = models::tinyLinear(64);
    IlPipeOptions opts;
    opts.batch = 1;
    const auto one = IlPipe(smallSystem(), opts).run(g);
    opts.batch = 16;
    const auto many = IlPipe(smallSystem(), opts).run(g);
    EXPECT_GT(many.throughputFps(0.5), one.throughputFps(0.5) * 2);
}

TEST(IlPipe, HighOnChipReuse)
{
    IlPipeOptions opts;
    opts.batch = 4;
    const auto r =
        IlPipe(smallSystem(), opts).run(models::tinyLinear(64));
    EXPECT_GT(r.onChipReuseRatio, 0.3);
}

TEST(Rammer, RunsOnTinyModels)
{
    const RammerScheduler rammer(smallSystem(), 2);
    expectSane(rammer.run(models::tinyBranchy()));
}

TEST(Rammer, RejectsBadBatch)
{
    EXPECT_THROW(RammerScheduler(smallSystem(), 0), ConfigError);
}

} // namespace
} // namespace ad::baselines
