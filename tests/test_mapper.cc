/**
 * @file
 * Tests for atom-engine mapping (Sec. IV-C): zig-zag enumeration,
 * TransferCost accounting, permutation search, and the refinement pass.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/mapper.hh"
#include "core/partition.hh"
#include "models/models.hh"

namespace ad::core {
namespace {

TEST(Mapper, ZigzagVisitsEveryEngineOnceAdjacently)
{
    const graph::Graph g = models::tinyLinear(16);
    const AtomicDag dag(g, evenPartitionShapes(g, 2));
    const noc::MeshTopology topo(4, 4);
    const AtomEngineMapper mapper(dag, topo);

    const auto &order = mapper.zigzagOrder();
    ASSERT_EQ(order.size(), 16u);
    std::set<int> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), 16u);
    for (std::size_t i = 1; i < order.size(); ++i)
        EXPECT_EQ(topo.hops(order[i - 1], order[i]), 1);
}

TEST(Mapper, PlacementsUseDistinctEngines)
{
    const graph::Graph g = models::tinyBranchy();
    const AtomicDag dag(g, evenPartitionShapes(g, 4));
    const noc::MeshTopology topo(4, 4);
    const AtomEngineMapper mapper(dag, topo);
    ResidencyTracker residency(dag, 16, 128 * 1024);

    std::vector<AtomId> round;
    for (AtomId a = 0; a < static_cast<AtomId>(std::min<std::size_t>(
                               12, dag.size()));
         ++a) {
        if (dag.depCount(a) == 0)
            round.push_back(a);
    }
    const auto placements = mapper.mapRound(round, residency);
    ASSERT_EQ(placements.size(), round.size());
    std::set<int> engines;
    for (const Placement &p : placements) {
        EXPECT_GE(p.engine, 0);
        EXPECT_LT(p.engine, 16);
        EXPECT_TRUE(engines.insert(p.engine).second);
    }
}

TEST(Mapper, TransferCostZeroWhenNothingOnChip)
{
    const graph::Graph g = models::tinyLinear(32);
    const AtomicDag dag(g, evenPartitionShapes(g, 4));
    const noc::MeshTopology topo(2, 2);
    const AtomEngineMapper mapper(dag, topo);
    ResidencyTracker residency(dag, 4, 128 * 1024);
    std::vector<Placement> placements{{0, 0}, {1, 1}};
    EXPECT_EQ(mapper.transferCost(placements, residency), 0u);
}

TEST(Mapper, TransferCostCountsHopsTimesBytes)
{
    // Two-layer chain: producer atoms parked on known engines, then the
    // consumer's placement cost must equal hops * overlap bytes.
    graph::Graph g;
    const auto in = g.input({4, 4, 8});
    const auto a = g.conv(in, 8, 1);
    const auto b = g.conv(a, 8, 1);
    (void)b;
    const AtomicDag dag(g, std::vector<TileShape>(g.size(),
                                                  TileShape{4, 4, 8}));
    const noc::MeshTopology topo(2, 2);
    const AtomEngineMapper mapper(dag, topo);
    ResidencyTracker residency(dag, 4, 128 * 1024);
    residency.attachSchedule({{0}, {1}});
    residency.produce(0, 0, 0); // producer tile lives on engine 0

    // Consumer on engine 0: local, cost 0.
    EXPECT_EQ(mapper.transferCost({{1, 0}}, residency), 0u);
    // Consumer on engine 3 (2 hops on a 2x2 mesh): cost = 2 * bytes.
    const Bytes bytes = dag.depBytesSpan(1)[0];
    EXPECT_EQ(mapper.transferCost({{1, 3}}, residency), 2 * bytes);
}

TEST(Mapper, OptimizedMappingNeverWorseThanNaive)
{
    const graph::Graph g = models::tinyBranchy();
    const AtomicDag dag(g, evenPartitionShapes(g, 2));
    const noc::MeshTopology topo(4, 4);
    MapperOptions naive_opts;
    naive_opts.optimize = false;
    const AtomEngineMapper optimizer(dag, topo);
    const AtomEngineMapper naive(dag, topo, naive_opts);

    ResidencyTracker residency(dag, 16, 128 * 1024);
    // Park the branch outputs somewhere specific.
    std::vector<std::vector<AtomId>> rounds(2);
    std::vector<AtomId> consumers;
    for (const Atom &atom : dag.atoms()) {
        if (dag.depCount(atom.id) == 0) {
            rounds[0].push_back(atom.id);
        } else {
            rounds[1].push_back(atom.id);
            consumers.push_back(atom.id);
        }
    }
    residency.attachSchedule(rounds);
    int e = 15;
    for (AtomId a : rounds[0])
        residency.produce(a, e--, 0);

    if (consumers.size() > topo.nodes() || consumers.empty())
        GTEST_SKIP();
    const auto opt = optimizer.mapRound(consumers, residency);
    const auto base = naive.mapRound(consumers, residency);
    EXPECT_LE(optimizer.transferCost(opt, residency),
              optimizer.transferCost(base, residency));
}

TEST(Mapper, RefinePullsConsumerToProducer)
{
    graph::Graph g;
    const auto in = g.input({4, 4, 8});
    const auto a = g.conv(in, 8, 1);
    const auto b = g.conv(a, 8, 1);
    (void)b;
    const AtomicDag dag(g, std::vector<TileShape>(g.size(),
                                                  TileShape{4, 4, 8}));
    const noc::MeshTopology topo(4, 4);
    const AtomEngineMapper mapper(dag, topo);
    ResidencyTracker residency(dag, 16, 128 * 1024);
    residency.attachSchedule({{0}, {1}});
    residency.produce(0, 9, 0); // producer parked mid-mesh

    const auto placements = mapper.mapRound({1}, residency);
    ASSERT_EQ(placements.size(), 1u);
    EXPECT_EQ(placements[0].engine, 9); // local reuse wins
}

TEST(Mapper, RejectsOversizedRounds)
{
    const graph::Graph g = models::tinyLinear(64);
    const AtomicDag dag(g, evenPartitionShapes(g, 16));
    const noc::MeshTopology topo(2, 2);
    const AtomEngineMapper mapper(dag, topo);
    ResidencyTracker residency(dag, 4, 128 * 1024);
    std::vector<AtomId> too_many;
    for (AtomId a = 0; a < 5; ++a)
        too_many.push_back(a);
    EXPECT_THROW(mapper.mapRound(too_many, residency), InternalError);
}

TEST(Mapper, StableOrderWithinLayerGroups)
{
    // Atoms of the same layer are placed in tile-index order regardless
    // of arrival order, so recurring layers land on recurring slots.
    const graph::Graph g = models::tinyLinear(64);
    const AtomicDag dag(g, evenPartitionShapes(g, 4));
    const noc::MeshTopology topo(2, 2);
    MapperOptions opts;
    opts.optimize = false;
    const AtomEngineMapper mapper(dag, topo, opts);
    ResidencyTracker residency(dag, 4, 128 * 1024);

    const auto [lo, hi] = dag.layerAtoms(1, 0); // first conv
    ASSERT_GE(hi - lo, 2);
    std::vector<AtomId> forward, reversed;
    for (AtomId a = lo; a < hi && a < lo + 4; ++a)
        forward.push_back(a);
    reversed.assign(forward.rbegin(), forward.rend());

    const auto pf = mapper.mapRound(forward, residency);
    const auto pr = mapper.mapRound(reversed, residency);
    for (const Placement &p : pf) {
        for (const Placement &q : pr) {
            if (p.atom == q.atom)
                EXPECT_EQ(p.engine, q.engine);
        }
    }
}

} // namespace
} // namespace ad::core
