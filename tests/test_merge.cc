/**
 * @file
 * Tests for multi-network graph merging (the multi-tenancy feature).
 */

#include <gtest/gtest.h>

#include "core/orchestrator.hh"
#include "core/validation.hh"
#include "graph/merge.hh"
#include "models/models.hh"

namespace ad::graph {
namespace {

TEST(Merge, PreservesStructureOfBothTenants)
{
    const Graph a = models::tinyResidual();
    const Graph b = models::tinyBranchy();
    const Graph merged = mergeGraphs({&a, &b});
    EXPECT_EQ(merged.size(), a.size() + b.size());
    EXPECT_EQ(merged.totalMacs(), a.totalMacs() + b.totalMacs());
    EXPECT_EQ(merged.totalParams(), a.totalParams() + b.totalParams());
    EXPECT_EQ(merged.sinks().size(),
              a.sinks().size() + b.sinks().size());
    EXPECT_NO_THROW(merged.validate());
}

TEST(Merge, PrefixesKeepNamesUnique)
{
    const Graph a = models::tinyLinear(16);
    const Graph merged = mergeGraphs({&a, &a});
    std::set<std::string> names;
    for (const Layer &l : merged.layers())
        EXPECT_TRUE(names.insert(l.name).second) << l.name;
    EXPECT_EQ(merged.layer(0).name.rfind("t0.", 0), 0u);
}

TEST(Merge, TenantsStayIndependent)
{
    const Graph a = models::tinyLinear(16);
    const Graph b = models::tinyResidual();
    const Graph merged = mergeGraphs({&a, &b});
    // No edge crosses the tenant boundary.
    const auto boundary = static_cast<LayerId>(a.size());
    for (const Layer &l : merged.layers()) {
        for (LayerId src : l.inputs) {
            EXPECT_EQ(src >= boundary, l.id >= boundary)
                << l.name;
        }
    }
}

TEST(Merge, SingleGraphRoundTrips)
{
    const Graph a = models::tinyBranchy();
    const Graph merged = mergeGraphs({&a}, "solo");
    EXPECT_EQ(merged.size(), a.size());
    EXPECT_EQ(merged.totalMacs(), a.totalMacs());
    EXPECT_EQ(merged.name(), "solo");
}

TEST(Merge, EmptyListRejected)
{
    EXPECT_THROW(mergeGraphs({}), ConfigError);
}

TEST(Merge, MergedGraphSchedulesEndToEnd)
{
    const Graph a = models::tinyLinear(32);
    const Graph b = models::tinyResidual();
    const Graph merged = mergeGraphs({&a, &b});

    sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    core::OrchestratorOptions options;
    options.sa.maxIterations = 60;
    const auto result = core::Orchestrator(system, options).run(merged);
    EXPECT_TRUE(core::scheduleIsValid(*result.dag, result.schedule, 4));
    EXPECT_GT(result.report.totalCycles, 0u);
}

TEST(Merge, CoSchedulingNeverSlowerThanBackToBack)
{
    const Graph a = models::tinyLinear(48);
    const Graph b = models::tinyBranchy();
    sim::SystemConfig system;
    system.meshX = 4;
    system.meshY = 4;
    core::OrchestratorOptions options;
    options.sa.maxIterations = 80;
    const core::Orchestrator orch(system, options);

    const auto ra = orch.run(a).report.totalCycles;
    const auto rb = orch.run(b).report.totalCycles;
    const auto merged = mergeGraphs({&a, &b});
    const auto rm = orch.run(merged).report.totalCycles;
    // Co-scheduling may pad idle engines with the other tenant's atoms;
    // it must not be meaningfully worse than strict serialization.
    EXPECT_LE(rm, (ra + rb) * 11 / 10);
}

} // namespace
} // namespace ad::graph
