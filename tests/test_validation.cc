/**
 * @file
 * Adversarial tests for ad::core::validateSchedule(): deliberately
 * corrupted schedules, each asserting that the validator reports the
 * specific ViolationKind the corruption introduces (not merely "some
 * violation").
 */

#include <gtest/gtest.h>

#include "core/atomic_dag.hh"
#include "core/partition.hh"
#include "core/schedule.hh"
#include "core/scheduler.hh"
#include "core/validation.hh"
#include "engine/cost_model.hh"
#include "testing_support/random_graph.hh"

namespace {

using ad::core::AtomicDag;
using ad::core::Schedule;
using ad::core::ScheduleViolation;
using ad::core::ViolationKind;

constexpr int kEngines = 4;

/** Shared fixture: a small two-conv chain split two ways (4 atoms, two
 * dependent layers) plus a known-valid schedule for it. */
class ValidationTest : public testing::Test
{
  protected:
    ValidationTest()
        : _graph(buildGraph()),
          _dag(_graph, ad::core::evenPartitionShapes(_graph, 2)),
          _schedule(validSchedule(_dag))
    {}

    static ad::graph::Graph
    buildGraph()
    {
        ad::graph::Graph g("chain2");
        auto x = g.input({8, 8, 8});
        x = g.conv(x, 8, 3);
        g.conv(x, 8, 1);
        return g;
    }

    static Schedule
    validSchedule(const AtomicDag &dag)
    {
        const ad::engine::CostModel model(
            ad::engine::EngineConfig{},
            ad::engine::DataflowKind::KcPartition);
        ad::core::SchedulerOptions options;
        options.engines = kEngines;
        options.mode = ad::core::SchedMode::LayerOrder;
        const ad::core::DpScheduler scheduler(dag, model, options);
        return ad::testing::trivialPlacement(scheduler.schedule());
    }

    static bool
    hasKind(const std::vector<ScheduleViolation> &violations,
            ViolationKind kind)
    {
        for (const ScheduleViolation &v : violations)
            if (v.kind == kind)
                return true;
        return false;
    }

    std::vector<ScheduleViolation>
    validate(const Schedule &schedule) const
    {
        return ad::core::validateSchedule(_dag, schedule, kEngines);
    }

    ad::graph::Graph _graph;
    AtomicDag _dag;
    Schedule _schedule;
};

TEST_F(ValidationTest, ValidScheduleIsClean)
{
    ASSERT_GE(_schedule.rounds.size(), 2u);
    const auto violations = validate(_schedule);
    for (const ScheduleViolation &v : violations)
        ADD_FAILURE() << ad::core::violationKindName(v.kind) << ": "
                      << v.what;
}

TEST_F(ValidationTest, DoubleScheduledAtomIsReported)
{
    Schedule corrupt = _schedule;
    // Replay round 0's first atom in a fresh trailing round, on a free
    // engine, so the only broken rule is single-scheduling.
    const ad::core::Placement dup =
        corrupt.rounds.front().placements.front();
    corrupt.rounds.push_back({{dup}});
    const auto violations = validate(corrupt);
    EXPECT_TRUE(hasKind(violations, ViolationKind::AtomScheduledTwice));
    EXPECT_FALSE(ad::core::scheduleIsValid(_dag, corrupt, kEngines));
}

TEST_F(ValidationTest, DependencyInSameRoundIsReported)
{
    // Find an atom with a dependency and collapse it into the round of
    // its producer: synchronized Rounds cannot forward within a round.
    ad::core::AtomId consumer = ad::core::kNoAtom;
    for (const ad::core::Atom &a : _dag.atoms()) {
        if (_dag.depCount(a.id) > 0) {
            consumer = a.id;
            break;
        }
    }
    ASSERT_NE(consumer, ad::core::kNoAtom);

    Schedule corrupt;
    corrupt.rounds.resize(1);
    int engine = 0;
    for (ad::core::AtomId dep : _dag.depsSpan(consumer))
        corrupt.rounds[0].placements.push_back({dep, engine++});
    corrupt.rounds[0].placements.push_back({consumer, engine++});
    // Keep the rest of the DAG scheduled so the only order violation is
    // the collapsed pair.
    for (const ad::core::Atom &a : _dag.atoms()) {
        bool placed = false;
        for (const auto &p : corrupt.rounds[0].placements)
            placed = placed || p.atom == a.id;
        if (!placed)
            corrupt.rounds.push_back({{{a.id, 0}}});
    }
    const auto violations = validate(corrupt);
    EXPECT_TRUE(hasKind(violations, ViolationKind::DependencyOrder));
}

TEST_F(ValidationTest, OutOfRangeEngineIsReported)
{
    Schedule corrupt = _schedule;
    corrupt.rounds.front().placements.front().engine = kEngines;
    EXPECT_TRUE(
        hasKind(validate(corrupt), ViolationKind::InvalidEngine));

    corrupt.rounds.front().placements.front().engine = -1;
    EXPECT_TRUE(
        hasKind(validate(corrupt), ViolationKind::InvalidEngine));
}

TEST_F(ValidationTest, EmptyRoundIsReported)
{
    Schedule corrupt = _schedule;
    corrupt.rounds.insert(corrupt.rounds.begin() + 1, ad::core::Round{});
    const auto violations = validate(corrupt);
    EXPECT_TRUE(hasKind(violations, ViolationKind::EmptyRound));
    // The surrounding rounds are untouched, so nothing else fires.
    EXPECT_FALSE(hasKind(violations, ViolationKind::DependencyOrder));
    EXPECT_FALSE(
        hasKind(violations, ViolationKind::AtomNeverScheduled));
}

TEST_F(ValidationTest, DroppedAtomIsReported)
{
    Schedule corrupt = _schedule;
    corrupt.rounds.back().placements.pop_back();
    EXPECT_TRUE(
        hasKind(validate(corrupt), ViolationKind::AtomNeverScheduled));
}

TEST_F(ValidationTest, UnknownAtomIsReported)
{
    Schedule corrupt = _schedule;
    corrupt.rounds.front().placements.front().atom =
        static_cast<ad::core::AtomId>(_dag.size());
    EXPECT_TRUE(hasKind(validate(corrupt), ViolationKind::UnknownAtom));
}

TEST_F(ValidationTest, EngineDoubleBookingIsReported)
{
    Schedule corrupt = _schedule;
    ASSERT_GE(corrupt.rounds.front().placements.size(), 2u);
    corrupt.rounds.front().placements[1].engine =
        corrupt.rounds.front().placements[0].engine;
    EXPECT_TRUE(
        hasKind(validate(corrupt), ViolationKind::EngineDoubleBooked));
}

TEST_F(ValidationTest, OverCapacityRoundIsReported)
{
    // The same schedule validated against a single-engine system: every
    // multi-atom round is now over capacity.
    const auto violations =
        ad::core::validateSchedule(_dag, _schedule, 1);
    EXPECT_TRUE(hasKind(violations, ViolationKind::RoundOverCapacity));
}

TEST_F(ValidationTest, KindNamesAreStable)
{
    EXPECT_STREQ(ad::core::violationKindName(ViolationKind::EmptyRound),
                 "empty round");
    EXPECT_STREQ(
        ad::core::violationKindName(ViolationKind::DependencyOrder),
        "dependency order");
}

} // namespace
