/**
 * @file
 * Fig. 12 reproduction: execution time versus engine count at a fixed
 * total PE budget (16384) and total on-chip buffer (8 MiB). The paper
 * observes U-shaped curves with per-model sweet spots (e.g. 4x4 engines
 * for VGG-19, ResNet-152, and NasNet).
 *
 * The sweep uses the greedy priority-rule scheduler (a single search
 * candidate) to keep the 4-mesh x 2-batch sweep tractable; relative
 * orderings are unaffected. Default models: the paper's named
 * sweet-spot examples plus ResNet-50 (AD_BENCH_MODELS overrides).
 */

#include <cstdlib>
#include <iostream>

#include "bench_common.hh"

namespace {

ad::sim::SystemConfig
partitioned(int mesh)
{
    ad::sim::SystemConfig system;
    system.meshX = mesh;
    system.meshY = mesh;
    const int pes = 16384 / (mesh * mesh);
    int rows = 1;
    while (rows * rows < pes)
        rows *= 2;
    system.engine.peRows = rows;
    system.engine.peCols = pes / rows;
    system.engine.bufferBytes =
        (8ull << 20) / static_cast<ad::Bytes>(mesh * mesh);
    return system;
}

ad::sim::ExecutionReport
runQuick(const ad::graph::Graph &graph,
         const ad::sim::SystemConfig &system, int batch)
{
    ad::core::OrchestratorOptions options;
    options.batch = batch;
    options.scheduler.mode = ad::core::SchedMode::Greedy;
    // Bound the atom count proportionally to the engine count so the
    // 256-engine points stay tractable (relative orderings preserved).
    options.maxAtoms = static_cast<std::size_t>(200) *
                       static_cast<std::size_t>(system.engines());
    return ad::core::Orchestrator(system, options).run(graph).report;
}

} // namespace

int
main()
{
    std::vector<std::string> names{"vgg19", "resnet50", "resnet152",
                                   "nasnet"};
    if (std::getenv("AD_BENCH_MODELS")) {
        names.clear();
        for (const auto &entry : ad::bench::selectedModels())
            names.push_back(entry.name);
    }

    for (int batch : {2, 4}) {
        std::cout << "== Fig. 12: engine scaling (16384 PEs, 8 MiB "
                     "SRAM total), batch="
                  << batch << " ==\n";
        ad::TextTable table;
        table.setHeader({"model", "2x2", "4x4", "8x8", "16x16",
                         "sweet spot"});
        for (const auto &name : names) {
            const auto graph = ad::models::buildByName(name);
            std::vector<std::string> cells{name};
            ad::Cycles best = 0;
            int best_mesh = 0;
            for (int mesh : {2, 4, 8, 16}) {
                const auto report =
                    runQuick(graph, partitioned(mesh), batch);
                cells.push_back(std::to_string(report.totalCycles));
                if (best == 0 || report.totalCycles < best) {
                    best = report.totalCycles;
                    best_mesh = mesh;
                }
            }
            cells.push_back(std::to_string(best_mesh) + "x" +
                            std::to_string(best_mesh));
            table.addRow(cells);
        }
        std::cout << table.render() << '\n';
    }
    std::cout << "paper: U-shaped curves; e.g. VGG-19/ResNet-152/"
                 "NasNet bottom out at 4x4 engines\n";
    return 0;
}
