/**
 * @file
 * Table I reproduction: DNN workload characterization — layer counts,
 * parameter counts, MACs, and structural characteristics of the eight
 * evaluation networks. (Our vertex counts are lower than the ONNX node
 * counts in the paper because activation/BN are folded; see DESIGN.md.)
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    std::cout << "== Table I: DNN workload characterization ==\n";
    ad::TextTable table;
    table.setHeader({"DNN Model", "#Layers", "#MAC layers", "#Params",
                     "GMACs", "Characteristics"});
    for (const auto &entry : ad::models::tableOneModels()) {
        const auto g = entry.build();
        table.addRow({g.name(), std::to_string(g.layerCount()),
                      std::to_string(g.macLayerCount()),
                      ad::fmtDouble(g.totalParams() / 1e6, 1) + "M",
                      ad::fmtDouble(g.totalMacs() / 1e9, 2),
                      entry.description});
    }
    std::cout << table.render();
    return 0;
}
