/**
 * @file
 * Serving-layer bench: drives seeded Poisson and bursty zoo-mix traces
 * through the ServeLoop and reports tail latency, throughput, cache
 * behaviour, and degradation counts per arrival rate — the
 * production-serving story on top of the paper's planner. The second
 * pass of each trace runs against the warm plan cache; its wall-clock
 * planning time (host-side, not part of the deterministic results)
 * shows the cache absorbing the SA search cost. A third pass runs in a
 * *fresh* ServeLoop hydrating from the persistent plan store
 * (DESIGN.md Sec. 13) — the warm-restart column: the planning wall
 * time a restarted replica pays instead of recompiling.
 *
 * AD_BENCH_SERVE_REQUESTS overrides the trace length (default 64).
 * AD_BENCH_SERVE_SECTION=surrogate runs only the surrogate cold-plan
 * cell (the CI accuracy smoke); unset runs everything.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/orchestrator.hh"
#include "engine/cached_cost_model.hh"
#include "models/models.hh"
#include "obs/clock.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"

namespace {

int
traceRequests()
{
    const char *env = std::getenv("AD_BENCH_SERVE_REQUESTS");
    return env ? std::max(1, std::atoi(env)) : 64;
}

/**
 * Surrogate cold-plan cell (DESIGN.md Sec. 17): per net, one fully
 * cold plan with screening off and one with screening on — the shared
 * cost-model memo store is dropped before every run, so each wall
 * number is the price a cold replica pays. Gates (FATAL on failure,
 * pinned together with kCrossDagConfirmMargin):
 *   - median cold-plan speedup across the nets >= 5x;
 *   - every screened plan's cycles within 10% of the unscreened plan.
 */
int
surrogateColdPlanCell(const ad::sim::SystemConfig &system)
{
    constexpr double kMinMedianSpeedup = 5.0;
    constexpr double kMaxCycleDrift = 1.10;
    const char *nets[] = {"tiny_linear", "tiny_branchy", "resnet50",
                          "inception_v3", "efficientnet"};

    std::cout << "== Surrogate screening: cold-plan wall, "
              << "exact-confirmed plans ==\n";
    ad::TextTable table;
    table.setHeader({"net", "cold wall off(s)", "cold wall on(s)",
                     "speedup", "cycles off", "cycles on", "drift"});
    std::vector<double> speedups;
    bool drift_ok = true;
    for (const char *net : nets) {
        const ad::graph::Graph graph = ad::models::buildByName(net);
        double wall[2] = {0.0, 0.0};
        ad::Cycles cycles[2] = {0, 0};
        for (const bool surrogate : {false, true}) {
            ad::engine::CachedCostModel::clearSharedStores();
            ad::core::OrchestratorOptions options;
            options.surrogate = surrogate;
            const ad::core::Orchestrator orch(system, options);
            const ad::obs::Stopwatch timer;
            const ad::core::PlanResult plan = orch.plan(graph);
            wall[surrogate] = timer.seconds();
            cycles[surrogate] = plan.report.totalCycles;
        }
        const double speedup = wall[0] / std::max(wall[1], 1e-9);
        const double drift = static_cast<double>(cycles[1]) /
                             static_cast<double>(cycles[0]);
        speedups.push_back(speedup);
        if (drift > kMaxCycleDrift)
            drift_ok = false;
        table.addRow({net, ad::fmtDouble(wall[0], 3),
                      ad::fmtDouble(wall[1], 3),
                      ad::fmtDouble(speedup, 2) + "x",
                      std::to_string(cycles[0]),
                      std::to_string(cycles[1]),
                      ad::fmtDouble((drift - 1.0) * 100.0, 2) + "%"});
    }
    std::cout << table.render() << "\n";

    std::sort(speedups.begin(), speedups.end());
    const double median = speedups[speedups.size() / 2];
    if (median < kMinMedianSpeedup) {
        std::cerr << "FATAL: median surrogate cold-plan speedup "
                  << ad::fmtDouble(median, 2) << "x is below "
                  << ad::fmtDouble(kMinMedianSpeedup, 1) << "x\n";
        return 1;
    }
    if (!drift_ok) {
        std::cerr << "FATAL: a screened plan drifted more than "
                  << ad::fmtDouble((kMaxCycleDrift - 1.0) * 100.0, 0)
                  << "% past its unscreened cycles\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);
    const auto system = ad::bench::defaultSystem();

    const char *section = std::getenv("AD_BENCH_SERVE_SECTION");
    if (section && std::string(section) == "surrogate")
        return surrogateColdPlanCell(system);

    const std::filesystem::path store_root =
        std::filesystem::temp_directory_path() / "ad_bench_serve_store";
    std::filesystem::remove_all(store_root);

    for (const auto kind :
         {ad::serve::ArrivalKind::Poisson, ad::serve::ArrivalKind::Bursty}) {
        std::cout << "== Serving: zoo mix, "
                  << ad::serve::arrivalKindName(kind) << " arrivals, "
                  << traceRequests() << " requests ==\n";
        ad::TextTable table;
        table.setHeader({"rate(r/s)", "p50(ms)", "p99(ms)", "rps",
                         "miss", "degraded", "cache", "cold wall(s)",
                         "warm wall(s)", "restart wall(s)"});
        for (const double rate : {50.0, 200.0, 800.0}) {
            ad::serve::StreamOptions stream;
            stream.kind = kind;
            stream.ratePerSec = rate;
            stream.requests = traceRequests();
            stream.seed = 7;
            stream.freqGhz = system.engine.freqGhz;
            stream.mix = ad::serve::resolveMix("mix");
            const auto trace = ad::serve::generateArrivals(stream);

            // One store directory per (kind, rate) cell so each
            // restart pass hydrates exactly what its cold pass wrote.
            ad::serve::ServeOptions options;
            options.storeDir =
                (store_root /
                 (std::string(ad::serve::arrivalKindName(kind)) + "_" +
                  ad::fmtDouble(rate, 0)))
                    .string();

            ad::serve::ServeLoop loop(system, options);
            const auto cold = loop.run(trace, stream.mix);

            // A cold pass under planning backlog can reject requests
            // whose (net, batch) keys it therefore never compiles; the
            // warm pass admits them, plans them, and writes them
            // through. Iterate to the fixed point — a pass with zero
            // misses adds nothing and reproduces itself — before
            // comparing against the restarted replica.
            auto warm = loop.run(trace, stream.mix);
            for (int i = 0; i < 6 && warm.cacheMisses != 0; ++i)
                warm = loop.run(trace, stream.mix);
            if (warm.cacheMisses != 0) {
                std::cerr << "FATAL: warm passes did not reach the "
                             "all-hit fixed point\n";
                return 1;
            }

            // The warm-restart pass: a brand-new loop (empty memory
            // tier) pointed at the store the first loop populated —
            // the "process restarted" scenario.
            ad::serve::ServeLoop restarted(system, options);
            const auto restart = restarted.run(trace, stream.mix);
            if (!restart.bitIdentical(warm)) {
                std::cerr << "FATAL: store-hydrated pass diverged from "
                             "the warm in-memory pass\n";
                return 1;
            }

            table.addRow(
                {ad::fmtDouble(rate, 0),
                 ad::fmtDouble(warm.p50LatencyMs, 2),
                 ad::fmtDouble(warm.p99LatencyMs, 2),
                 ad::fmtDouble(warm.throughputRps, 1),
                 std::to_string(warm.deadlineMisses),
                 std::to_string(cold.downgradedCached +
                                cold.downgradedFresh),
                 std::to_string(warm.cacheHits) + "/" +
                     std::to_string(warm.cacheHits + warm.cacheMisses),
                 ad::fmtDouble(cold.planWallSeconds, 2),
                 ad::fmtDouble(warm.planWallSeconds, 2),
                 ad::fmtDouble(restart.planWallSeconds, 2)});
        }
        std::cout << table.render() << "\n";
    }

    // == SLO-class co-location on sub-mesh executors (DESIGN.md
    // Sec. 16): a latency-critical tiny-model class and a batch class
    // of compute-bound zoo nets share one machine. The single-tenant
    // row serialises the merged trace on the whole mesh; the co-located
    // row halves the 8x8 mesh into two executors and admits classes
    // concurrently. Aggregate throughput must come out ahead for
    // co-location.
    {
        const int total = traceRequests();
        ad::serve::StreamOptions lat;
        // Poisson, not bursty: the bursty generator's quiet phases can
        // clamp to ~1e-3 req/s, and the resulting thousand-second
        // arrival gaps would swamp the makespan both rows share. The
        // co-location comparison should be service-bound.
        lat.kind = ad::serve::ArrivalKind::Poisson;
        lat.ratePerSec = 4000.0;
        lat.requests = std::max(1, total / 2);
        lat.seed = 7;
        lat.deadlineMs = 50.0;
        lat.freqGhz = system.engine.freqGhz;
        lat.mix = ad::serve::resolveMix("tinymix");

        ad::serve::StreamOptions batch = lat;
        batch.ratePerSec = 2000.0;
        batch.requests = std::max(1, total / 2);
        batch.deadlineMs = 2000.0;
        // The compute-bound end of the zoo: these nets lose little on a
        // half-machine view (1.2-1.7x), so spatially overlapping them
        // beats time-sharing the full mesh. The bandwidth-bound nets
        // (vgg19, nasnet, pnasnet) scale with the HBM share and gain
        // nothing from co-location.
        batch.mix = {"resnet50", "resnet152", "resnet1001",
                     "efficientnet"};

        const auto merged = ad::serve::generateClassArrivals(
            {{ad::serve::SloClass::Latency, lat},
             {ad::serve::SloClass::Batch, batch}});

        std::cout << "== Co-location: latency tinymix ("
                  << lat.requests << " req @ "
                  << ad::fmtDouble(lat.ratePerSec, 0)
                  << "/s) + batch zoo mix (" << batch.requests
                  << " req @ " << ad::fmtDouble(batch.ratePerSec, 0)
                  << "/s), poisson, seed " << lat.seed << " ==\n";

        struct Tenancy
        {
            const char *name;
            std::vector<ad::sim::MeshView> views;
        };
        const std::vector<Tenancy> tenancies{
            {"single-tenant", {}},
            {"co-located",
             {ad::sim::MeshView{0, 0, 4, 8, 0, 0, 0.5},
              ad::sim::MeshView{4, 0, 4, 8, 0, 0, 0.5}}},
        };

        ad::TextTable table;
        table.setHeader({"tenancy", "lat p50(ms)", "lat p99(ms)",
                         "bat p50(ms)", "bat p99(ms)", "done", "rps",
                         "preempt", "cold wall(s)", "restart wall(s)"});
        std::map<std::string, double> aggregate_rps;
        for (const Tenancy &tenancy : tenancies) {
            ad::serve::ServeOptions options;
            options.submeshes = tenancy.views;
            options.storeDir =
                (store_root / (std::string("colo_") + tenancy.name))
                    .string();

            ad::serve::ServeLoop loop(system, options);
            const auto cold = loop.run(merged.requests, merged.mix);

            // Multi-executor dispatch depends on planning latencies,
            // so a warm pass can touch (net, view-shape) plan keys the
            // cold pass never planned — which it then write-throughs
            // to the store. Iterate to the fixed point: a pass with
            // zero misses adds nothing and reproduces itself, and a
            // store-hydrated restart replays it bit-identically.
            auto warm = loop.run(merged.requests, merged.mix);
            for (int i = 0; i < 6 && warm.cacheMisses != 0; ++i)
                warm = loop.run(merged.requests, merged.mix);
            if (warm.cacheMisses != 0) {
                std::cerr << "FATAL: co-location warm passes did not "
                             "reach the all-hit fixed point\n";
                return 1;
            }

            ad::serve::ServeLoop restarted(system, options);
            const auto restart =
                restarted.run(merged.requests, merged.mix);
            if (!restart.bitIdentical(warm)) {
                std::cerr << "FATAL: store-hydrated co-location pass "
                             "diverged from the warm in-memory pass\n";
                return 1;
            }

            double class_ms[2][2] = {{0.0, 0.0}, {0.0, 0.0}};
            for (const auto &cr : warm.classes) {
                class_ms[static_cast<int>(cr.slo)][0] = cr.p50LatencyMs;
                class_ms[static_cast<int>(cr.slo)][1] = cr.p99LatencyMs;
            }
            aggregate_rps[tenancy.name] = warm.throughputRps;
            table.addRow({tenancy.name,
                          ad::fmtDouble(class_ms[0][0], 2),
                          ad::fmtDouble(class_ms[0][1], 2),
                          ad::fmtDouble(class_ms[1][0], 2),
                          ad::fmtDouble(class_ms[1][1], 2),
                          std::to_string(warm.completed),
                          ad::fmtDouble(warm.throughputRps, 1),
                          std::to_string(warm.preemptions),
                          ad::fmtDouble(cold.planWallSeconds, 2),
                          ad::fmtDouble(restart.planWallSeconds, 2)});
        }
        std::cout << table.render() << "\n";
        if (aggregate_rps["co-located"] <=
            aggregate_rps["single-tenant"]) {
            std::cerr << "FATAL: co-location did not improve aggregate "
                         "throughput ("
                      << ad::fmtDouble(aggregate_rps["co-located"], 1)
                      << " vs "
                      << ad::fmtDouble(aggregate_rps["single-tenant"], 1)
                      << " rps)\n";
            return 1;
        }
    }

    std::filesystem::remove_all(store_root);
    return surrogateColdPlanCell(system);
}
