/**
 * @file
 * Serving-layer bench: drives seeded Poisson and bursty zoo-mix traces
 * through the ServeLoop and reports tail latency, throughput, cache
 * behaviour, and degradation counts per arrival rate — the
 * production-serving story on top of the paper's planner. The second
 * pass of each trace runs against the warm plan cache; its wall-clock
 * planning time (host-side, not part of the deterministic results)
 * shows the cache absorbing the SA search cost. A third pass runs in a
 * *fresh* ServeLoop hydrating from the persistent plan store
 * (DESIGN.md Sec. 13) — the warm-restart column: the planning wall
 * time a restarted replica pays instead of recompiling.
 *
 * AD_BENCH_SERVE_REQUESTS overrides the trace length (default 64).
 */

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "bench_common.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"

namespace {

int
traceRequests()
{
    const char *env = std::getenv("AD_BENCH_SERVE_REQUESTS");
    return env ? std::max(1, std::atoi(env)) : 64;
}

} // namespace

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);
    const auto system = ad::bench::defaultSystem();

    const std::filesystem::path store_root =
        std::filesystem::temp_directory_path() / "ad_bench_serve_store";
    std::filesystem::remove_all(store_root);

    for (const auto kind :
         {ad::serve::ArrivalKind::Poisson, ad::serve::ArrivalKind::Bursty}) {
        std::cout << "== Serving: zoo mix, "
                  << ad::serve::arrivalKindName(kind) << " arrivals, "
                  << traceRequests() << " requests ==\n";
        ad::TextTable table;
        table.setHeader({"rate(r/s)", "p50(ms)", "p99(ms)", "rps",
                         "miss", "degraded", "cache", "cold wall(s)",
                         "warm wall(s)", "restart wall(s)"});
        for (const double rate : {50.0, 200.0, 800.0}) {
            ad::serve::StreamOptions stream;
            stream.kind = kind;
            stream.ratePerSec = rate;
            stream.requests = traceRequests();
            stream.seed = 7;
            stream.freqGhz = system.engine.freqGhz;
            stream.mix = ad::serve::resolveMix("mix");
            const auto trace = ad::serve::generateArrivals(stream);

            // One store directory per (kind, rate) cell so each
            // restart pass hydrates exactly what its cold pass wrote.
            ad::serve::ServeOptions options;
            options.storeDir =
                (store_root /
                 (std::string(ad::serve::arrivalKindName(kind)) + "_" +
                  ad::fmtDouble(rate, 0)))
                    .string();

            ad::serve::ServeLoop loop(system, options);
            const auto cold = loop.run(trace, stream.mix);
            const auto warm = loop.run(trace, stream.mix);

            // The warm-restart pass: a brand-new loop (empty memory
            // tier) pointed at the store the first loop populated —
            // the "process restarted" scenario.
            ad::serve::ServeLoop restarted(system, options);
            const auto restart = restarted.run(trace, stream.mix);
            if (!restart.bitIdentical(warm)) {
                std::cerr << "FATAL: store-hydrated pass diverged from "
                             "the warm in-memory pass\n";
                return 1;
            }

            table.addRow(
                {ad::fmtDouble(rate, 0),
                 ad::fmtDouble(warm.p50LatencyMs, 2),
                 ad::fmtDouble(warm.p99LatencyMs, 2),
                 ad::fmtDouble(warm.throughputRps, 1),
                 std::to_string(warm.deadlineMisses),
                 std::to_string(cold.downgradedCached +
                                cold.downgradedFresh),
                 std::to_string(warm.cacheHits) + "/" +
                     std::to_string(warm.cacheHits + warm.cacheMisses),
                 ad::fmtDouble(cold.planWallSeconds, 2),
                 ad::fmtDouble(warm.planWallSeconds, 2),
                 ad::fmtDouble(restart.planWallSeconds, 2)});
        }
        std::cout << table.render() << "\n";
    }
    std::filesystem::remove_all(store_root);
    return 0;
}
