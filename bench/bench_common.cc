#include "bench_common.hh"

#include <cstdlib>
#include <sstream>

namespace ad::bench {

std::vector<models::ModelEntry>
selectedModels()
{
    const char *env = std::getenv("AD_BENCH_MODELS");
    if (!env)
        return models::tableOneModels();
    std::vector<models::ModelEntry> picked;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ',')) {
        for (const auto &entry : models::tableOneModels()) {
            if (entry.name == name)
                picked.push_back(entry);
        }
    }
    if (picked.empty())
        fatal("AD_BENCH_MODELS matched no zoo models: ", env);
    return picked;
}

int
benchBatch()
{
    const char *env = std::getenv("AD_BENCH_BATCH");
    return env ? std::max(1, std::atoi(env)) : 20;
}

std::vector<engine::DataflowKind>
benchDataflows()
{
    std::vector<engine::DataflowKind> kinds{
        engine::DataflowKind::KcPartition};
    const char *env = std::getenv("AD_BENCH_FULL");
    if (env && std::string(env) == "1")
        kinds.push_back(engine::DataflowKind::YxPartition);
    return kinds;
}

sim::SystemConfig
defaultSystem(engine::DataflowKind dataflow)
{
    sim::SystemConfig system;
    system.dataflow = dataflow;
    return system;
}

std::vector<StrategyResult>
runAllStrategies(const graph::Graph &graph,
                 const sim::SystemConfig &system, int batch)
{
    std::vector<StrategyResult> results;

    baselines::LsOptions ls_options;
    ls_options.batch = batch;
    results.push_back(
        {"LS",
         baselines::LayerSequential(system, ls_options).run(graph)});

    baselines::CnnPOptions cnnp_options;
    cnnp_options.batch = batch;
    results.push_back(
        {"CNN-P",
         baselines::CnnPartition(system, cnnp_options).run(graph)});

    baselines::IlPipeOptions pipe_options;
    pipe_options.batch = batch;
    results.push_back(
        {"IL-Pipe", baselines::IlPipe(system, pipe_options).run(graph)});

    results.push_back({"AD", runAd(graph, system, batch)});
    return results;
}

sim::ExecutionReport
runAd(const graph::Graph &graph, const sim::SystemConfig &system,
      int batch)
{
    core::OrchestratorOptions options;
    options.batch = batch;
    return core::Orchestrator(system, options).run(graph).report;
}

} // namespace ad::bench

#include <fstream>

namespace ad::bench {

namespace {

constexpr int kCacheVersion = 3;

} // namespace

ResultCache::ResultCache()
{
    const char *env = std::getenv("AD_BENCH_CACHE");
    _path = env ? env : "ad_bench_cache.csv";
    std::ifstream in(_path);
    std::string line;
    while (std::getline(in, line)) {
        std::stringstream ss(line);
        std::string key, field;
        if (!std::getline(ss, key, ','))
            continue;
        sim::ExecutionReport r;
        int version = 0;
        auto next = [&]() -> double {
            std::getline(ss, field, ',');
            return std::atof(field.c_str());
        };
        version = static_cast<int>(next());
        if (version != kCacheVersion)
            continue;
        r.totalCycles = static_cast<Cycles>(next());
        r.rounds = static_cast<std::uint64_t>(next());
        r.batch = static_cast<int>(next());
        r.peUtilization = next();
        r.computeUtilization = next();
        r.nocOverhead = next();
        r.memOverhead = next();
        r.onChipReuseRatio = next();
        r.hbmReadBytes = static_cast<Bytes>(next());
        r.hbmWriteBytes = static_cast<Bytes>(next());
        r.nocBytes = static_cast<Bytes>(next());
        r.computeEnergyPj = next();
        r.nocEnergyPj = next();
        r.hbmEnergyPj = next();
        r.staticEnergyPj = next();
        _entries[key] = r;
    }
}

bool
ResultCache::get(const std::string &key, sim::ExecutionReport &out) const
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        return false;
    out = it->second;
    return true;
}

void
ResultCache::put(const std::string &key, const sim::ExecutionReport &r)
{
    _entries[key] = r;
    std::ofstream out(_path, std::ios::app);
    out << key << ',' << kCacheVersion << ',' << r.totalCycles << ','
        << r.rounds << ',' << r.batch << ',' << r.peUtilization << ','
        << r.computeUtilization << ',' << r.nocOverhead << ','
        << r.memOverhead << ',' << r.onChipReuseRatio << ','
        << r.hbmReadBytes << ',' << r.hbmWriteBytes << ',' << r.nocBytes
        << ',' << r.computeEnergyPj << ',' << r.nocEnergyPj << ','
        << r.hbmEnergyPj << ',' << r.staticEnergyPj << '\n';
}

std::string
ResultCache::key(const std::string &model, const std::string &strategy,
                 engine::DataflowKind dataflow, int batch)
{
    return model + "/" + strategy + "/" +
           engine::dataflowName(dataflow) + "/b" + std::to_string(batch);
}

std::vector<StrategyResult>
runAllStrategiesCached(const models::ModelEntry &entry,
                       const sim::SystemConfig &system, int batch,
                       ResultCache &cache)
{
    const std::vector<std::string> names{"LS", "CNN-P", "IL-Pipe", "AD"};
    std::vector<StrategyResult> results;
    graph::Graph graph("unbuilt");
    bool built = false;

    for (const std::string &name : names) {
        const std::string key =
            ResultCache::key(entry.name, name, system.dataflow, batch);
        sim::ExecutionReport report;
        if (!cache.get(key, report)) {
            if (!built) {
                graph = entry.build();
                built = true;
            }
            if (name == "LS") {
                baselines::LsOptions options;
                options.batch = batch;
                report =
                    baselines::LayerSequential(system, options)
                        .run(graph);
            } else if (name == "CNN-P") {
                baselines::CnnPOptions options;
                options.batch = batch;
                report = baselines::CnnPartition(system, options)
                             .run(graph);
            } else if (name == "IL-Pipe") {
                baselines::IlPipeOptions options;
                options.batch = batch;
                report = baselines::IlPipe(system, options).run(graph);
            } else {
                report = runAd(graph, system, batch);
            }
            cache.put(key, report);
        }
        results.push_back({name, report});
    }
    return results;
}

} // namespace ad::bench
