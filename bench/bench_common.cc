#include "bench_common.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <sstream>

#include "util/thread_pool.hh"

namespace ad::bench {

void
applyBenchArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
            util::ThreadPool::setGlobalThreads(std::atoi(argv[++i]));
        } else {
            // Bench mains have no try/catch; exit cleanly rather than
            // letting a ConfigError reach std::terminate.
            std::cerr << "usage: " << argv[0]
                      << " [--threads N]  (env knobs: AD_BENCH_MODELS, "
                         "AD_BENCH_BATCH, AD_BENCH_FULL, AD_THREADS)\n";
            std::exit(2);
        }
    }
}

std::vector<models::ModelEntry>
selectedModels()
{
    const char *env = std::getenv("AD_BENCH_MODELS");
    if (!env)
        return models::tableOneModels();
    std::vector<models::ModelEntry> picked;
    std::stringstream ss(env);
    std::string name;
    while (std::getline(ss, name, ',')) {
        for (const auto &entry : models::tableOneModels()) {
            if (entry.name == name)
                picked.push_back(entry);
        }
    }
    if (picked.empty())
        fatal("AD_BENCH_MODELS matched no zoo models: ", env);
    return picked;
}

int
benchBatch()
{
    const char *env = std::getenv("AD_BENCH_BATCH");
    return env ? std::max(1, std::atoi(env)) : 20;
}

std::vector<engine::DataflowKind>
benchDataflows()
{
    std::vector<engine::DataflowKind> kinds{
        engine::DataflowKind::KcPartition};
    const char *env = std::getenv("AD_BENCH_FULL");
    if (env && std::string(env) == "1")
        kinds.push_back(engine::DataflowKind::YxPartition);
    return kinds;
}

sim::SystemConfig
defaultSystem(engine::DataflowKind dataflow)
{
    sim::SystemConfig system;
    system.dataflow = dataflow;
    return system;
}

namespace {

/** The strategy order every table reports. */
const std::vector<std::string> &
strategyNames()
{
    static const std::vector<std::string> names{"LS", "CNN-P",
                                                "IL-Pipe", "AD"};
    return names;
}

/** Run one named strategy through the planner factory; each call
 * builds independent state, so calls are safe to fan out over a shared
 * read-only graph. */
sim::ExecutionReport
runStrategy(const std::string &name, const graph::Graph &graph,
            const sim::SystemConfig &system, int batch)
{
    baselines::PlannerSpec spec;
    spec.strategy = name;
    spec.system = system;
    spec.options.batch = batch;
    return baselines::makePlanner(spec)->run(graph);
}

} // namespace

std::vector<StrategyResult>
runAllStrategies(const graph::Graph &graph,
                 const sim::SystemConfig &system, int batch)
{
    const auto &names = strategyNames();
    const auto reports =
        util::ThreadPool::global().parallelMap<sim::ExecutionReport>(
            names.size(), [&](std::size_t i) {
                return runStrategy(names[i], graph, system, batch);
            });
    std::vector<StrategyResult> results;
    results.reserve(names.size());
    for (std::size_t i = 0; i < names.size(); ++i)
        results.push_back({names[i], reports[i]});
    return results;
}

sim::ExecutionReport
runAd(const graph::Graph &graph, const sim::SystemConfig &system,
      int batch)
{
    core::OrchestratorOptions options;
    options.batch = batch;
    return core::Orchestrator(system, options).run(graph).report;
}

} // namespace ad::bench

#include <fstream>

namespace ad::bench {

namespace {

// v4: comboCost charges a combo's weight first-touch once per
// (layer, sample) key, changing DP/greedy schedules; older rows are
// stale.
constexpr int kCacheVersion = 4;

} // namespace

ResultCache::ResultCache()
{
    const char *env = std::getenv("AD_BENCH_CACHE");
    _path = env ? env : "ad_bench_cache.csv";
    std::ifstream in(_path);
    std::string line;
    while (std::getline(in, line)) {
        std::stringstream ss(line);
        std::string key, field;
        if (!std::getline(ss, key, ','))
            continue;
        sim::ExecutionReport r;
        int version = 0;
        auto next = [&]() -> double {
            std::getline(ss, field, ',');
            return std::atof(field.c_str());
        };
        version = static_cast<int>(next());
        if (version != kCacheVersion)
            continue;
        r.totalCycles = static_cast<Cycles>(next());
        r.rounds = static_cast<std::uint64_t>(next());
        r.batch = static_cast<int>(next());
        r.peUtilization = next();
        r.computeUtilization = next();
        r.nocOverhead = next();
        r.memOverhead = next();
        r.onChipReuseRatio = next();
        r.hbmReadBytes = static_cast<Bytes>(next());
        r.hbmWriteBytes = static_cast<Bytes>(next());
        r.nocBytes = static_cast<Bytes>(next());
        r.computeEnergyPj = next();
        r.nocEnergyPj = next();
        r.hbmEnergyPj = next();
        r.staticEnergyPj = next();
        _entries[key] = r;
    }
}

bool
ResultCache::get(const std::string &key, sim::ExecutionReport &out) const
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        return false;
    out = it->second;
    return true;
}

void
ResultCache::put(const std::string &key, const sim::ExecutionReport &r)
{
    _entries[key] = r;
    std::ofstream out(_path, std::ios::app);
    out << key << ',' << kCacheVersion << ',' << r.totalCycles << ','
        << r.rounds << ',' << r.batch << ',' << r.peUtilization << ','
        << r.computeUtilization << ',' << r.nocOverhead << ','
        << r.memOverhead << ',' << r.onChipReuseRatio << ','
        << r.hbmReadBytes << ',' << r.hbmWriteBytes << ',' << r.nocBytes
        << ',' << r.computeEnergyPj << ',' << r.nocEnergyPj << ','
        << r.hbmEnergyPj << ',' << r.staticEnergyPj << '\n';
}

std::string
ResultCache::key(const std::string &model, const std::string &strategy,
                 engine::DataflowKind dataflow, int batch)
{
    return model + "/" + strategy + "/" +
           engine::dataflowName(dataflow) + "/b" + std::to_string(batch);
}

std::vector<StrategyResult>
runAllStrategiesCached(const models::ModelEntry &entry,
                       const sim::SystemConfig &system, int batch,
                       ResultCache &cache)
{
    return runZooSweepCached({entry}, system, batch, cache).front();
}

std::vector<std::vector<StrategyResult>>
runZooSweepCached(const std::vector<models::ModelEntry> &entries,
                  const sim::SystemConfig &system, int batch,
                  ResultCache &cache)
{
    const auto &names = strategyNames();

    struct Task
    {
        std::size_t entry;
        std::size_t strategy;
        std::string key;
    };

    // Probe the cache up front; only misses become parallel work.
    std::vector<std::vector<StrategyResult>> results(entries.size());
    std::vector<Task> tasks;
    for (std::size_t e = 0; e < entries.size(); ++e) {
        results[e].resize(names.size());
        for (std::size_t s = 0; s < names.size(); ++s) {
            results[e][s].name = names[s];
            std::string key = ResultCache::key(
                entries[e].name, names[s], system.dataflow, batch);
            if (!cache.get(key, results[e][s].report))
                tasks.push_back({e, s, std::move(key)});
        }
    }
    if (tasks.empty())
        return results;

    // Build each missing model's graph once, serially (cheap, and keeps
    // the parallel region read-only on shared state).
    std::vector<std::unique_ptr<graph::Graph>> graphs(entries.size());
    for (const Task &t : tasks) {
        if (!graphs[t.entry]) {
            graphs[t.entry] = std::make_unique<graph::Graph>(
                entries[t.entry].build());
        }
    }

    // The (network x strategy) sweep is embarrassingly parallel: every
    // run constructs its own orchestrator/baseline state. Reports land
    // in per-task slots, and the cache is written sequentially below in
    // the same order as the serial sweep.
    const auto reports =
        util::ThreadPool::global().parallelMap<sim::ExecutionReport>(
            tasks.size(), [&](std::size_t i) {
                const Task &t = tasks[i];
                return runStrategy(names[t.strategy], *graphs[t.entry],
                                   system, batch);
            });
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        const Task &t = tasks[i];
        results[t.entry][t.strategy].report = reports[i];
        cache.put(t.key, reports[i]);
    }
    return results;
}

} // namespace ad::bench
