/**
 * @file
 * Fig. 2 reproduction: layer-wise PE utilization of Layer-Sequential
 * scheduling (each layer evenly partitioned to all 64 engines), without
 * communication delay. The paper reports layer-averaged 26.91%
 * (ResNet-50), 17.48% (Inception-v3), 18.34% (NasNet), and 13.53%
 * (EfficientNet).
 */

#include <iostream>

#include "baselines/layer_sequential.hh"
#include "bench_common.hh"
#include "util/stats.hh"

int
main()
{
    const auto system = ad::bench::defaultSystem();
    const ad::baselines::LayerSequential ls(system,
                                            ad::baselines::LsOptions{});

    std::cout << "== Fig. 2: LS layer-wise PE utilization "
                 "(w/o communication delay) ==\n";
    ad::TextTable table;
    table.setHeader({"model", "avg util (MAC layers)", "min", "max",
                     "paper"});
    const std::vector<std::pair<std::string, std::string>> paper = {
        {"resnet50", "26.91%"},
        {"inception_v3", "17.48%"},
        {"nasnet", "18.34%"},
        {"efficientnet", "13.53%"},
    };
    for (const auto &[name, reported] : paper) {
        const auto g = ad::models::buildByName(name);
        const auto utils = ls.layerUtilizations(g);
        ad::RunningStats stats;
        for (const auto &l : g.layers()) {
            if (l.onPeArray())
                stats.add(utils[static_cast<std::size_t>(l.id)]);
        }
        table.addRow({name, ad::fmtPercent(stats.mean()),
                      ad::fmtPercent(stats.min()),
                      ad::fmtPercent(stats.max()), reported});
    }
    std::cout << table.render();
    return 0;
}
