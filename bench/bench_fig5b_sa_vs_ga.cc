/**
 * @file
 * Fig. 5(b) reproduction: convergence of the SA-based atomic tensor
 * generation versus a genetic algorithm. The paper observes SA
 * converging faster and stopping at lower variance, with GA showing
 * abrupt rises and falls due to mutation.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/atom_generator.hh"

int
main()
{
    const auto system = ad::bench::defaultSystem();
    const ad::engine::CostModel model(system.engine, system.dataflow);
    const auto g = ad::models::resnet50();
    const ad::core::ShapeCatalog catalog(g, model);

    ad::core::SaOptions sa_options;
    sa_options.maxIterations = 600;
    sa_options.epsilon = 0.0;
    const auto sa = ad::core::SaAtomGenerator(sa_options)
                        .generate(catalog);

    ad::core::GaOptions ga_options;
    ga_options.generations = 600;
    const auto ga = ad::core::GaAtomGenerator(ga_options)
                        .generate(catalog);

    std::cout << "== Fig. 5(b): SA vs GA convergence (resnet50, "
                 "normalized Var of atom cycles) ==\n";
    ad::TextTable table;
    table.setHeader({"iteration", "SA", "GA"});
    for (std::size_t i = 0; i < 600; i += 25) {
        auto at = [i](const std::vector<double> &trace) {
            if (trace.empty())
                return std::string("-");
            const std::size_t idx = std::min(i, trace.size() - 1);
            return ad::fmtDouble(trace[idx], 5);
        };
        table.addRow({std::to_string(i), at(sa.varianceTrace),
                      at(ga.varianceTrace)});
    }
    std::cout << table.render();
    std::cout << "final: SA=" << ad::fmtDouble(sa.finalVariance, 5)
              << " (iter " << sa.iterations << ")  GA="
              << ad::fmtDouble(ga.finalVariance, 5) << " (gen "
              << ga.iterations << ")\n";
    std::cout << "paper: SA converges more quickly and stops at lower "
                 "Var; GA oscillates due to mutation\n";
    return 0;
}
