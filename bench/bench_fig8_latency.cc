/**
 * @file
 * Fig. 8 reproduction: DNN inference latency at BatchSize = 1 for LS,
 * IL-Pipe, and AD (CNN-P cannot pipeline at batch 1; its mapping equals
 * LS and the paper omits it). The paper reports AD speedups of
 * 1.45-2.30x over LS/CNN-P and 1.42-3.78x over IL-Pipe on KC-P, with a
 * similar situation on YX-P.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);
    ad::bench::ResultCache cache;
    for (const auto dataflow : ad::bench::benchDataflows()) {
        const auto system = ad::bench::defaultSystem(dataflow);
        std::cout << "== Fig. 8: inference latency, batch=1, "
                  << ad::engine::dataflowName(dataflow) << " ==\n";
        ad::TextTable table;
        table.setHeader({"model", "LS(ms)", "IL-Pipe(ms)", "AD(ms)",
                         "AD vs LS", "AD vs IL-Pipe"});
        const auto entries = ad::bench::selectedModels();
        const auto sweep = ad::bench::runZooSweepCached(
            entries, system, 1, cache);
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const auto &entry = entries[e];
            const auto &rows = sweep[e];
            const double freq = system.engine.freqGhz;
            const double ls = rows[0].report.latencyMs(freq);
            const double pipe = rows[2].report.latencyMs(freq);
            const double atomic = rows[3].report.latencyMs(freq);
            table.addRow({entry.name, ad::fmtDouble(ls, 3),
                          ad::fmtDouble(pipe, 3),
                          ad::fmtDouble(atomic, 3),
                          ad::fmtSpeedup(ls / atomic),
                          ad::fmtSpeedup(pipe / atomic)});
        }
        std::cout << table.render()
                  << "paper bands (KC-P): AD/LS+CNN-P 1.45-2.30x, "
                     "AD/IL-Pipe 1.42-3.78x\n\n";
    }
    return 0;
}
