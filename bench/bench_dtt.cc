/**
 * @file
 * SA-vs-DTT planner comparison (ROADMAP item 3, DESIGN.md Sec. 14):
 * on every tiny_* zoo net — small enough for the Dijkstra-Through-Time
 * search to stay tractable on a 2x2 mesh — plan with the heuristic AD
 * orchestrator and with the optimal DTT planner, then report the
 * Round-compute makespan gap (the objective DTT provably minimizes),
 * the simulated end-to-end cycles, the search wall time, and the DTT
 * state-graph size.
 *
 * Both planners share the identical SA front half, so they schedule
 * the same winning DAG with the same per-atom costs; DTT's model
 * makespan can therefore never exceed AD's, and the bench fatals if it
 * ever does — this is a regression gate as much as a table.
 */

#include <iostream>
#include <vector>

#include "baselines/dtt.hh"
#include "bench_common.hh"
#include "check/brute_force.hh"
#include "engine/cached_cost_model.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"

namespace {

/** Round-compute makespan of a mapped plan (communication ignored —
 * the brute-force oracle's objective). */
ad::Cycles
modelMakespan(const ad::core::PlanResult &plan,
              const ad::sim::SystemConfig &system)
{
    const ad::engine::CachedCostModel model(system.engine,
                                            system.dataflow);
    std::vector<ad::Cycles> cycles(plan.dag->size());
    for (std::size_t i = 0; i < plan.dag->size(); ++i) {
        cycles[i] = model.cycles(
            plan.dag->workload(static_cast<ad::core::AtomId>(i)));
    }
    ad::core::RoundList rounds;
    for (const auto &round : plan.schedule.rounds) {
        std::vector<ad::core::AtomId> ids;
        for (const auto &p : round.placements)
            ids.push_back(p.atom);
        rounds.push_back(std::move(ids));
    }
    return ad::check::roundComputeMakespan(rounds, cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);

    // 2x2 mesh: small enough that the tiny nets' DAGs stay inside the
    // DTT tractability gates, so every row below is an exact search.
    ad::sim::SystemConfig system = ad::bench::defaultSystem();
    system.meshX = 2;
    system.meshY = 2;

    const std::vector<std::string> nets{"tiny_linear", "tiny_residual",
                                        "tiny_branchy"};

    std::cout << "== SA (AD) vs Dijkstra-Through-Time (DTT), 2x2 mesh, "
                 "batch=1 ==\n";
    ad::TextTable table;
    table.setHeader({"net", "atoms", "AD makespan", "DTT makespan",
                     "gap", "AD cycles", "DTT cycles", "states",
                     "AD wall(s)", "DTT wall(s)"});

    for (const std::string &name : nets) {
        const auto graph = ad::models::buildByName(name);

        const ad::core::Orchestrator ad_planner(system);
        const auto ad_plan = ad_planner.plan(graph);

        const ad::baselines::DttPlanner dtt_planner(system);
        ad::obs::MetricsRegistry metrics;
        ad::obs::Instrumentation ins{nullptr, &metrics};
        const auto dtt_plan = dtt_planner.plan(graph, &ins);

        if (metrics.gauge("dtt.exact").value() != 1.0)
            ad::fatal("bench_dtt: the DTT search fell back on ", name,
                      " — the tiny nets must stay tractable");

        const ad::Cycles ad_makespan = modelMakespan(ad_plan, system);
        const ad::Cycles dtt_makespan = modelMakespan(dtt_plan, system);
        if (dtt_makespan > ad_makespan)
            ad::fatal("bench_dtt: DTT makespan ", dtt_makespan,
                      " exceeds AD's ", ad_makespan, " on ", name,
                      " — optimality regression");

        const double gap =
            ad_makespan > 0
                ? 100.0 *
                      static_cast<double>(ad_makespan - dtt_makespan) /
                      static_cast<double>(ad_makespan)
                : 0.0;
        table.addRow(
            {name, std::to_string(dtt_plan.dag->size()),
             std::to_string(ad_makespan), std::to_string(dtt_makespan),
             ad::fmtDouble(gap, 2) + "%",
             std::to_string(ad_plan.report.totalCycles),
             std::to_string(dtt_plan.report.totalCycles),
             std::to_string(static_cast<std::uint64_t>(
                 metrics.counter("dtt.discovered_states").value())),
             ad::fmtDouble(ad_plan.searchSeconds, 3),
             ad::fmtDouble(dtt_plan.searchSeconds, 3)});
    }

    std::cout << table.render()
              << "expectation: DTT never worse on the model makespan "
                 "(gap >= 0 is asserted, not just printed)\n";
    return 0;
}
