/**
 * @file
 * Fig. 13 reproduction: execution time versus per-engine buffer size on
 * the default 8x8 mesh. The paper observes gains that flatten beyond
 * 128 KiB because the data transferring/reusing techniques keep small
 * buffers efficient.
 */

#include <cstdlib>
#include <iostream>

#include "bench_common.hh"

int
main()
{
    std::vector<std::string> names{"vgg19", "resnet50", "inception_v3",
                                   "efficientnet"};
    if (std::getenv("AD_BENCH_MODELS")) {
        names.clear();
        for (const auto &entry : ad::bench::selectedModels())
            names.push_back(entry.name);
    }
    const int batch = 4;

    std::cout << "== Fig. 13: per-engine buffer scaling (8x8 engines), "
                 "batch="
              << batch << " ==\n";
    ad::TextTable table;
    table.setHeader({"model", "32KiB", "64KiB", "128KiB", "256KiB",
                     "512KiB"});
    for (const auto &name : names) {
        const auto graph = ad::models::buildByName(name);
        std::vector<std::string> cells{name};
        for (ad::Bytes kib : {32, 64, 128, 256, 512}) {
            auto system = ad::bench::defaultSystem();
            system.engine.bufferBytes = kib * 1024;
            ad::core::OrchestratorOptions options;
            options.batch = batch;
            options.scheduler.mode = ad::core::SchedMode::Greedy;
            const auto report =
                ad::core::Orchestrator(system, options)
                    .run(graph)
                    .report;
            cells.push_back(std::to_string(report.totalCycles));
        }
        table.addRow(cells);
    }
    std::cout << table.render()
              << "paper: performance benefits from larger buffers but "
                 "flattens past 128 KiB\n";
    return 0;
}
