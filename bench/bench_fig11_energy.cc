/**
 * @file
 * Fig. 11 reproduction: inference energy with batch size 20. The paper
 * finds IL-Pipe and AD the most energy-efficient, with AD slightly
 * above IL-Pipe on the first three workloads and below it on the rest;
 * CNN-P pays for its all-DRAM traffic.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);
    ad::bench::ResultCache cache;
    const int batch = ad::bench::benchBatch();
    const auto system = ad::bench::defaultSystem();
    std::cout << "== Fig. 11: energy (mJ), batch=" << batch
              << ", KC-P ==\n";
    ad::TextTable table;
    table.setHeader({"model", "LS", "CNN-P", "IL-Pipe", "AD",
                     "AD breakdown (comp/noc/hbm/static)"});
    const auto entries = ad::bench::selectedModels();
    const auto sweep =
        ad::bench::runZooSweepCached(entries, system, batch, cache);
    for (std::size_t e = 0; e < entries.size(); ++e) {
        const auto &entry = entries[e];
        const auto &rows = sweep[e];
        std::vector<std::string> cells{entry.name};
        for (const auto &row : rows)
            cells.push_back(
                ad::fmtDouble(row.report.totalEnergyMj(), 1));
        const auto &adr = rows[3].report;
        cells.push_back(ad::fmtDouble(adr.computeEnergyPj * 1e-9, 1) +
                        "/" + ad::fmtDouble(adr.nocEnergyPj * 1e-9, 1) +
                        "/" + ad::fmtDouble(adr.hbmEnergyPj * 1e-9, 1) +
                        "/" +
                        ad::fmtDouble(adr.staticEnergyPj * 1e-9, 1));
        table.addRow(cells);
    }
    std::cout << table.render()
              << "paper: IL-Pipe and AD most efficient; CNN-P pays "
                 "all-DRAM traffic\n";
    return 0;
}
