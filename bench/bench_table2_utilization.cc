/**
 * @file
 * Table II reproduction: (1) PE utilization averaged among DNN layers
 * without memory access delay at batch 20 for all four strategies;
 * (2) AD's NoC overhead (the part that blocks compute) and on-chip
 * data-reuse ratio.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);
    ad::bench::ResultCache cache;
    const int batch = ad::bench::benchBatch();
    const auto system = ad::bench::defaultSystem();

    std::cout << "== Table II: PE utilization w/o memory delay, batch="
              << batch << " ==\n";
    ad::TextTable table;
    table.setHeader({"method"});
    std::vector<std::vector<std::string>> rows(6);
    rows[0] = {"LS"};
    rows[1] = {"CNN-P"};
    rows[2] = {"IL-Pipe"};
    rows[3] = {"AD"};
    rows[4] = {"NoC overhead (AD)"};
    rows[5] = {"On-chip reuse (AD)"};

    std::vector<std::string> header{"method"};
    const auto entries = ad::bench::selectedModels();
    const auto sweep =
        ad::bench::runZooSweepCached(entries, system, batch, cache);
    for (std::size_t e = 0; e < entries.size(); ++e) {
        header.push_back(entries[e].name);
        const auto &results = sweep[e];
        for (int s = 0; s < 4; ++s)
            rows[static_cast<std::size_t>(s)].push_back(ad::fmtPercent(
                results[static_cast<std::size_t>(s)]
                    .report.computeUtilization));
        rows[4].push_back(
            ad::fmtPercent(results[3].report.nocOverhead));
        rows[5].push_back(
            ad::fmtPercent(results[3].report.onChipReuseRatio));
    }
    table.setHeader(header);
    for (auto &row : rows)
        table.addRow(row);
    std::cout << table.render()
              << "paper: AD 78.8-95.0%; AD NoC overhead 9.4-17.6%; "
                 "AD reuse 54.1-90.8%\n";
    return 0;
}
