/**
 * @file
 * Fig. 9 reproduction: DNN inference throughput with batch size 20 for
 * LS, CNN-P, IL-Pipe, and AD. The paper reports AD over CNN-P at
 * 1.12-1.38x (KC-P) and 1.08-1.42x (YX-P), CNN-P beating LS in all
 * cases, and IL-Pipe trailing due to pipeline delay.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    ad::bench::applyBenchArgs(argc, argv);
    ad::bench::ResultCache cache;
    const int batch = ad::bench::benchBatch();
    for (const auto dataflow : ad::bench::benchDataflows()) {
        const auto system = ad::bench::defaultSystem(dataflow);
        std::cout << "== Fig. 9: throughput (fps), batch=" << batch
                  << ", " << ad::engine::dataflowName(dataflow)
                  << " ==\n";
        ad::TextTable table;
        table.setHeader({"model", "LS", "CNN-P", "IL-Pipe", "AD",
                         "AD vs CNN-P"});
        const auto entries = ad::bench::selectedModels();
        const auto sweep = ad::bench::runZooSweepCached(
            entries, system, batch, cache);
        for (std::size_t e = 0; e < entries.size(); ++e) {
            const auto &entry = entries[e];
            const auto &rows = sweep[e];
            const double freq = system.engine.freqGhz;
            std::vector<std::string> cells{entry.name};
            for (const auto &row : rows)
                cells.push_back(ad::fmtDouble(
                    row.report.throughputFps(freq), 1));
            cells.push_back(ad::fmtSpeedup(
                rows[3].report.throughputFps(freq) /
                rows[1].report.throughputFps(freq)));
            table.addRow(cells);
        }
        std::cout << table.render()
                  << "paper bands: AD/CNN-P 1.12-1.38x (KC-P), "
                     "1.08-1.42x (YX-P); CNN-P > LS everywhere\n\n";
    }
    return 0;
}
