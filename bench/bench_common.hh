#pragma once

/**
 * @file
 * Shared plumbing for the reproduction benches: workload selection,
 * system construction, strategy runners, and environment-variable
 * scaling knobs.
 *
 * Environment variables:
 *   AD_BENCH_MODELS  comma-separated zoo names (default: all eight)
 *   AD_BENCH_BATCH   batch size for throughput benches (default: 20)
 *   AD_BENCH_FULL    set to 1 to also run the YX-Partition dataflow
 *   AD_THREADS       worker threads for the sweep/orchestration
 *                    (default: hardware concurrency; results are
 *                    bit-identical for any value)
 */

#include <map>
#include <string>
#include <vector>

#include "baselines/planners.hh"
#include "core/orchestrator.hh"
#include "models/models.hh"
#include "util/table.hh"

namespace ad::bench {

/**
 * Handle the common bench CLI: `--threads N` sizes the worker pool
 * (default: AD_THREADS, else hardware concurrency). Call first in main.
 * Unknown flags fatal with a usage message.
 */
void applyBenchArgs(int argc, char **argv);

/** Zoo entries selected by AD_BENCH_MODELS (default: all). */
std::vector<models::ModelEntry> selectedModels();

/** Batch size from AD_BENCH_BATCH (default 20). */
int benchBatch();

/** Dataflows to evaluate (KC-P, plus YX-P when AD_BENCH_FULL=1). */
std::vector<engine::DataflowKind> benchDataflows();

/** The paper's default system (Sec. V-A) with @p dataflow. */
sim::SystemConfig defaultSystem(
    engine::DataflowKind dataflow = engine::DataflowKind::KcPartition);

/** One strategy's result row. */
struct StrategyResult
{
    std::string name;
    sim::ExecutionReport report;
};

/** Run LS / CNN-P / IL-Pipe / AD on one workload. */
std::vector<StrategyResult> runAllStrategies(
    const graph::Graph &graph, const sim::SystemConfig &system,
    int batch);

/** Run atomic dataflow only. */
sim::ExecutionReport runAd(const graph::Graph &graph,
                           const sim::SystemConfig &system, int batch);

} // namespace ad::bench

namespace ad::bench {

/**
 * Disk-backed result cache shared by the throughput/energy/utilization
 * benches (they evaluate the identical configurations). Keyed by
 * (model, strategy, dataflow, batch); stored as CSV next to the
 * binaries (override with AD_BENCH_CACHE).
 */
class ResultCache
{
  public:
    ResultCache();

    /** Fetch a cached report; false when absent. */
    bool get(const std::string &key, sim::ExecutionReport &out) const;

    /** Store and persist a report. */
    void put(const std::string &key, const sim::ExecutionReport &report);

    /** Cache key for one strategy run. */
    static std::string key(const std::string &model,
                           const std::string &strategy,
                           engine::DataflowKind dataflow, int batch);

  private:
    std::string _path;
    std::map<std::string, sim::ExecutionReport> _entries;
};

/** runAllStrategies with read-through caching. */
std::vector<StrategyResult> runAllStrategiesCached(
    const models::ModelEntry &entry, const sim::SystemConfig &system,
    int batch, ResultCache &cache);

/**
 * The full (network x strategy) sweep for one system/batch, computed in
 * parallel across every cache miss of every model and returned in
 * @p entries order (LS / CNN-P / IL-Pipe / AD per model). Results are
 * bit-identical for any thread count; cache writes happen in the same
 * deterministic order as the serial sweep.
 */
std::vector<std::vector<StrategyResult>> runZooSweepCached(
    const std::vector<models::ModelEntry> &entries,
    const sim::SystemConfig &system, int batch, ResultCache &cache);

} // namespace ad::bench
