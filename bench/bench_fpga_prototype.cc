/**
 * @file
 * Sec. V-D reproduction: the 2x2-engine prototype (32x32 INT8 MACs per
 * engine, 600 MHz) running VGG and ResNet-50 under LS, a Rammer-like
 * rTask scheduler, and AD. The paper measures 49.2/57.9/64.3 fps (VGG)
 * and 156.2/194.4/223.9 fps (ResNet-50) on the Synopsys HAPS system and
 * notes the AD improvement matches the simulation methodology.
 */

#include <iostream>

#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "bench_common.hh"

int
main()
{
    ad::sim::SystemConfig system;
    system.meshX = 2;
    system.meshY = 2;
    system.engine.peRows = 32;
    system.engine.peCols = 32;
    system.engine.freqGhz = 0.6;
    const int batch = 8;
    const double freq = system.engine.freqGhz;

    std::cout << "== Sec. V-D: 2x2-engine prototype (32x32 MACs, "
                 "600 MHz), fps at batch="
              << batch << " ==\n";
    ad::TextTable table;
    table.setHeader({"model", "LS", "Rammer", "AD", "AD vs LS",
                     "AD vs Rammer", "paper (LS/Rammer/AD)"});
    const std::vector<std::pair<std::string, std::string>> paper = {
        {"vgg19", "49.2 / 57.9 / 64.3"},
        {"resnet50", "156.2 / 194.4 / 223.9"},
    };
    for (const auto &[name, reported] : paper) {
        const auto graph = ad::models::buildByName(name);

        ad::baselines::LsOptions ls_options;
        ls_options.batch = batch;
        // The prototype's LS splits every layer across all four engines
        // (no multi-sample mapping on the HAPS system).
        ls_options.samplesInFlight = 1;
        const auto ls =
            ad::baselines::LayerSequential(system, ls_options)
                .run(graph);
        const auto rammer =
            ad::baselines::RammerScheduler(system, batch).run(graph);
        const auto atomic = ad::bench::runAd(graph, system, batch);

        table.addRow(
            {name, ad::fmtDouble(ls.throughputFps(freq), 1),
             ad::fmtDouble(rammer.throughputFps(freq), 1),
             ad::fmtDouble(atomic.throughputFps(freq), 1),
             ad::fmtSpeedup(atomic.throughputFps(freq) /
                            ls.throughputFps(freq)),
             ad::fmtSpeedup(atomic.throughputFps(freq) /
                            rammer.throughputFps(freq)),
             reported});
    }
    std::cout << table.render()
              << "paper ratios: AD/LS 1.31x (VGG) and 1.43x "
                 "(ResNet-50); AD/Rammer 1.11x and 1.15x\n";
    return 0;
}
