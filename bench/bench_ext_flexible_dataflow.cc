/**
 * @file
 * Extension experiment (the paper's Sec. VI discussion): atomic dataflow
 * on reconfigurable engines that pick the cheaper of the KC-P and YX-P
 * mappings per atom. The paper argues such arrays "can also benefit from
 * atomic dataflow" by adapting the atom coefficients; this bench
 * quantifies the gain over both fixed dataflows.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    const int batch = 4;
    std::vector<std::string> names{"resnet50", "inception_v3",
                                   "efficientnet"};
    if (std::getenv("AD_BENCH_MODELS")) {
        names.clear();
        for (const auto &entry : ad::bench::selectedModels())
            names.push_back(entry.name);
    }

    std::cout << "== Extension: AD on fixed vs per-atom reconfigurable "
                 "dataflows, batch="
              << batch << " ==\n";
    ad::TextTable table;
    table.setHeader({"model", "KC-P cycles", "YX-P cycles",
                     "Flex cycles", "Flex vs best fixed"});
    for (const auto &name : names) {
        const auto graph = ad::models::buildByName(name);
        std::vector<std::string> cells{name};
        ad::Cycles best_fixed = 0;
        ad::Cycles flex_cycles = 0;
        for (auto kind : {ad::engine::DataflowKind::KcPartition,
                          ad::engine::DataflowKind::YxPartition,
                          ad::engine::DataflowKind::Flexible}) {
            const auto report = ad::bench::runAd(
                graph, ad::bench::defaultSystem(kind), batch);
            cells.push_back(std::to_string(report.totalCycles));
            if (kind == ad::engine::DataflowKind::Flexible) {
                flex_cycles = report.totalCycles;
            } else if (best_fixed == 0 ||
                       report.totalCycles < best_fixed) {
                best_fixed = report.totalCycles;
            }
        }
        cells.push_back(ad::fmtSpeedup(
            static_cast<double>(best_fixed) /
            static_cast<double>(flex_cycles)));
        table.addRow(cells);
    }
    std::cout << table.render()
              << "expectation: Flex >= best fixed mapping (reconfig "
                 "charge bounded by reconfigCycles per atom)\n";
    return 0;
}
