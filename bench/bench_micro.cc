/**
 * @file
 * Google-benchmark microbenchmarks of the substrate hot paths: the
 * analytical engine cost model, NoC batch evaluation, HBM accesses,
 * atomic DAG construction, and scheduling throughput.
 */

#include <benchmark/benchmark.h>

#include "core/partition.hh"
#include "core/scheduler.hh"
#include "core/shape_catalog.hh"
#include "mem/hbm_model.hh"
#include "models/models.hh"
#include "noc/noc_model.hh"

namespace {

void
BM_CostModelEvaluate(benchmark::State &state)
{
    const ad::engine::EngineConfig cfg;
    const ad::engine::CostModel model(
        cfg, ad::engine::DataflowKind::KcPartition);
    ad::engine::AtomWorkload atom;
    atom.type = ad::graph::OpType::Conv;
    atom.h = 14;
    atom.w = 14;
    atom.ci = 256;
    atom.co = 64;
    atom.window = {3, 3, 1, 1, 1, 1};
    for (auto _ : state)
        benchmark::DoNotOptimize(model.evaluate(atom));
}
BENCHMARK(BM_CostModelEvaluate);

void
BM_NocBatch(benchmark::State &state)
{
    const ad::noc::MeshTopology topo(8, 8);
    const ad::noc::NocModel model(topo);
    std::vector<ad::noc::Transfer> transfers;
    for (int i = 0; i < state.range(0); ++i)
        transfers.push_back({i % 64, (i * 7 + 3) % 64,
                             static_cast<ad::Bytes>(4096 + i)});
    for (auto _ : state)
        benchmark::DoNotOptimize(model.batch(transfers));
}
BENCHMARK(BM_NocBatch)->Arg(8)->Arg(64);

void
BM_HbmAccess(benchmark::State &state)
{
    ad::mem::HbmModel hbm;
    ad::Cycles now = 0;
    ad::mem::Address addr = 0;
    for (auto _ : state) {
        now = hbm.access(addr, 4096, false, now);
        addr += 1 << 16;
    }
}
BENCHMARK(BM_HbmAccess);

void
BM_ShapeCatalogBuild(benchmark::State &state)
{
    const auto g = ad::models::resnet50();
    const ad::engine::CostModel model(
        ad::engine::EngineConfig{},
        ad::engine::DataflowKind::KcPartition);
    for (auto _ : state)
        benchmark::DoNotOptimize(ad::core::ShapeCatalog(g, model));
}
BENCHMARK(BM_ShapeCatalogBuild)->Unit(benchmark::kMillisecond);

void
BM_AtomicDagBuild(benchmark::State &state)
{
    const auto g = ad::models::resnet50();
    const auto shapes = ad::core::evenPartitionShapes(g, 64);
    ad::core::AtomicDagOptions options;
    options.batch = static_cast<int>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(ad::core::AtomicDag(g, shapes, options));
}
BENCHMARK(BM_AtomicDagBuild)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_GreedySchedule(benchmark::State &state)
{
    const auto g = ad::models::resnet50();
    const auto shapes = ad::core::evenPartitionShapes(g, 64);
    const ad::core::AtomicDag dag(g, shapes);
    const ad::engine::CostModel model(
        ad::engine::EngineConfig{},
        ad::engine::DataflowKind::KcPartition);
    ad::core::SchedulerOptions options;
    options.engines = 64;
    options.mode = ad::core::SchedMode::Greedy;
    const ad::core::DpScheduler scheduler(dag, model, options);
    for (auto _ : state)
        benchmark::DoNotOptimize(scheduler.schedule());
}
BENCHMARK(BM_GreedySchedule)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
