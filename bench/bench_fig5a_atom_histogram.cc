/**
 * @file
 * Fig. 5(a) reproduction: distribution of atom execution cycles after
 * SA-based atomic tensor generation. The paper's claim: most computing
 * cycles concentrate in one region (balanced parallelism). We print the
 * histogram and the fraction of layers falling in the densest 20% of
 * the cycle range.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/atom_generator.hh"
#include "util/stats.hh"

int
main()
{
    const auto system = ad::bench::defaultSystem();
    const ad::engine::CostModel model(system.engine, system.dataflow);

    for (const char *name :
         {"resnet50", "inception_v3", "nasnet", "efficientnet"}) {
        const auto g = ad::models::buildByName(name);
        const ad::core::ShapeCatalog catalog(g, model);
        const auto result =
            ad::core::SaAtomGenerator().generate(catalog);

        // Per-layer atom cycles at the chosen shapes.
        std::vector<double> cycles;
        for (const auto &layer : g.layers()) {
            const auto &cands = catalog.candidatesFor(layer.id);
            if (cands.empty())
                continue;
            for (const auto &cand : cands) {
                if (cand.shape ==
                    result.shapes[static_cast<std::size_t>(layer.id)]) {
                    cycles.push_back(static_cast<double>(cand.cycles));
                }
            }
        }
        double lo = cycles[0], hi = cycles[0];
        for (double c : cycles) {
            lo = std::min(lo, c);
            hi = std::max(hi, c);
        }
        ad::Histogram hist(0.0, hi * 1.05 + 1, 20);
        for (double c : cycles)
            hist.add(c);

        std::cout << "== Fig. 5(a) " << name << " ==\n"
                  << "atoms cycles histogram (bin_low count bar):\n"
                  << hist.render(40)
                  << "concentration (densest 4/20 bins): "
                  << ad::fmtPercent(hist.topWindowFraction(4))
                  << "   normalized Var: "
                  << ad::fmtDouble(result.finalVariance, 4)
                  << "   mean cycles: "
                  << ad::fmtDouble(result.meanCycles, 0) << "\n\n";
    }
    return 0;
}
