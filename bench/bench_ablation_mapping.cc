/**
 * @file
 * Ablation of the atom-engine mapping design choices DESIGN.md calls
 * out (Sec. IV-C machinery): full placement optimization (permutation
 * search + affinity refinement) versus plain zig-zag placement, and
 * versus zig-zag without the stable intra-layer ordering that keeps
 * recurring layers on recurring engine slots.
 */

#include <iostream>

#include "bench_common.hh"

namespace {

ad::sim::ExecutionReport
runWith(const ad::graph::Graph &graph,
        const ad::sim::SystemConfig &system, int batch, bool optimize,
        bool stable)
{
    ad::core::OrchestratorOptions options;
    options.batch = batch;
    options.scheduler.mode = ad::core::SchedMode::Greedy;
    options.mapper.optimize = optimize;
    options.mapper.stableOrder = stable;
    return ad::core::Orchestrator(system, options).run(graph).report;
}

} // namespace

int
main()
{
    const int batch = 4;
    const auto system = ad::bench::defaultSystem();
    std::vector<std::string> names{"resnet50", "inception_v3"};
    if (std::getenv("AD_BENCH_MODELS")) {
        names.clear();
        for (const auto &entry : ad::bench::selectedModels())
            names.push_back(entry.name);
    }

    std::cout << "== Ablation: atom-engine mapping policies, batch="
              << batch << " (greedy scheduler pinned) ==\n";
    ad::TextTable table;
    table.setHeader({"model", "metric", "optimized", "zig-zag",
                     "zig-zag unstable"});
    for (const auto &name : names) {
        const auto graph = ad::models::buildByName(name);
        const auto opt = runWith(graph, system, batch, true, true);
        const auto zig = runWith(graph, system, batch, false, true);
        const auto unstable =
            runWith(graph, system, batch, false, false);

        table.addRow({name, "cycles", std::to_string(opt.totalCycles),
                      std::to_string(zig.totalCycles),
                      std::to_string(unstable.totalCycles)});
        table.addRow({"", "NoC traffic (MB)",
                      ad::fmtDouble(opt.nocBytes / 1e6, 0),
                      ad::fmtDouble(zig.nocBytes / 1e6, 0),
                      ad::fmtDouble(unstable.nocBytes / 1e6, 0)});
        table.addRow({"", "NoC energy (mJ)",
                      ad::fmtDouble(opt.nocEnergyPj * 1e-9, 1),
                      ad::fmtDouble(zig.nocEnergyPj * 1e-9, 1),
                      ad::fmtDouble(unstable.nocEnergyPj * 1e-9, 1)});
    }
    std::cout << table.render()
              << "expectation: placement optimization and stable slot "
                 "assignment cut NoC traffic/energy\n";
    return 0;
}
