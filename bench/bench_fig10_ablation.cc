/**
 * @file
 * Fig. 10 reproduction: per-stage performance improvements of the three
 * atomic-dataflow techniques — SA-based atom generation (vs naive even
 * partition), DP/priority-rule DAG scheduling (vs plain dependency
 * order), and on-chip reuse via mapping + buffering (vs all-DRAM). Each
 * stage's factor is AD-full divided by AD with that stage ablated.
 * Paper: SA 1.06-1.21x, scheduling 1.17-1.42x, reuse 1.07-1.17x.
 */

#include <iostream>

#include "bench_common.hh"

int
main()
{
    ad::bench::ResultCache cache;
    const int batch = ad::bench::benchBatch();
    const auto system = ad::bench::defaultSystem();

    std::cout << "== Fig. 10: per-stage improvement factors, batch="
              << batch << " ==\n";
    ad::TextTable table;
    table.setHeader({"model", "SA atom-gen", "DAG scheduling",
                     "on-chip reuse"});

    for (const auto &entry : ad::bench::selectedModels()) {
        const auto graph = entry.build();

        // Full AD (cached when a throughput bench already ran it).
        const std::string ad_key = ad::bench::ResultCache::key(
            entry.name, "AD", system.dataflow, batch);
        ad::sim::ExecutionReport full;
        if (!cache.get(ad_key, full)) {
            full = ad::bench::runAd(graph, system, batch);
            cache.put(ad_key, full);
        }

        auto ablate = [&](const char *tag,
                          auto mutate) -> ad::sim::ExecutionReport {
            const std::string key = ad::bench::ResultCache::key(
                entry.name, tag, system.dataflow, batch);
            ad::sim::ExecutionReport report;
            if (cache.get(key, report))
                return report;
            ad::core::OrchestratorOptions options;
            options.batch = batch;
            mutate(options);
            report = ad::core::Orchestrator(system, options)
                         .run(graph)
                         .report;
            cache.put(key, report);
            return report;
        };

        const auto no_sa =
            ablate("AD-noSA", [](ad::core::OrchestratorOptions &o) {
                o.atomGen = ad::core::AtomGenMode::EvenPartition;
            });
        const auto no_sched =
            ablate("AD-noSched", [](ad::core::OrchestratorOptions &o) {
                o.scheduler.mode = ad::core::SchedMode::LayerOrder;
            });
        const auto no_reuse =
            ablate("AD-noReuse", [](ad::core::OrchestratorOptions &o) {
                o.onChipReuse = false;
            });

        auto factor = [&](const ad::sim::ExecutionReport &ablated) {
            return ad::fmtSpeedup(
                static_cast<double>(ablated.totalCycles) /
                static_cast<double>(full.totalCycles));
        };
        table.addRow({entry.name, factor(no_sa), factor(no_sched),
                      factor(no_reuse)});
    }
    std::cout << table.render()
              << "paper: SA 1.06-1.21x, DP scheduling 1.17-1.42x, "
                 "reuse 1.07-1.17x\n";
    return 0;
}
