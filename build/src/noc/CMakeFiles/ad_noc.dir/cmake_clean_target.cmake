file(REMOVE_RECURSE
  "libad_noc.a"
)
