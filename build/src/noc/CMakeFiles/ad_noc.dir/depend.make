# Empty dependencies file for ad_noc.
# This may be replaced when dependencies are built.
