file(REMOVE_RECURSE
  "CMakeFiles/ad_noc.dir/mesh.cc.o"
  "CMakeFiles/ad_noc.dir/mesh.cc.o.d"
  "CMakeFiles/ad_noc.dir/noc_model.cc.o"
  "CMakeFiles/ad_noc.dir/noc_model.cc.o.d"
  "libad_noc.a"
  "libad_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
