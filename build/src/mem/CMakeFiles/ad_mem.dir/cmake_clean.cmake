file(REMOVE_RECURSE
  "CMakeFiles/ad_mem.dir/hbm_model.cc.o"
  "CMakeFiles/ad_mem.dir/hbm_model.cc.o.d"
  "CMakeFiles/ad_mem.dir/sram_buffer.cc.o"
  "CMakeFiles/ad_mem.dir/sram_buffer.cc.o.d"
  "libad_mem.a"
  "libad_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
