# Empty dependencies file for ad_mem.
# This may be replaced when dependencies are built.
