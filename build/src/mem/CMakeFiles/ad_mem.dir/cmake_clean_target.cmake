file(REMOVE_RECURSE
  "libad_mem.a"
)
