# Empty dependencies file for ad_baselines.
# This may be replaced when dependencies are built.
