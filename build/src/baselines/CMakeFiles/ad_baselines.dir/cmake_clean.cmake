file(REMOVE_RECURSE
  "CMakeFiles/ad_baselines.dir/cnn_partition.cc.o"
  "CMakeFiles/ad_baselines.dir/cnn_partition.cc.o.d"
  "CMakeFiles/ad_baselines.dir/il_pipe.cc.o"
  "CMakeFiles/ad_baselines.dir/il_pipe.cc.o.d"
  "CMakeFiles/ad_baselines.dir/layer_sequential.cc.o"
  "CMakeFiles/ad_baselines.dir/layer_sequential.cc.o.d"
  "CMakeFiles/ad_baselines.dir/rammer.cc.o"
  "CMakeFiles/ad_baselines.dir/rammer.cc.o.d"
  "libad_baselines.a"
  "libad_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
