file(REMOVE_RECURSE
  "libad_baselines.a"
)
