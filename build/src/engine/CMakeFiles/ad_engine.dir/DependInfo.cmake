
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/cached_cost_model.cc" "src/engine/CMakeFiles/ad_engine.dir/cached_cost_model.cc.o" "gcc" "src/engine/CMakeFiles/ad_engine.dir/cached_cost_model.cc.o.d"
  "/root/repo/src/engine/cost_model.cc" "src/engine/CMakeFiles/ad_engine.dir/cost_model.cc.o" "gcc" "src/engine/CMakeFiles/ad_engine.dir/cost_model.cc.o.d"
  "/root/repo/src/engine/engine_config.cc" "src/engine/CMakeFiles/ad_engine.dir/engine_config.cc.o" "gcc" "src/engine/CMakeFiles/ad_engine.dir/engine_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
