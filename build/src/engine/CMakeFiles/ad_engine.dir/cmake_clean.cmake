file(REMOVE_RECURSE
  "CMakeFiles/ad_engine.dir/cached_cost_model.cc.o"
  "CMakeFiles/ad_engine.dir/cached_cost_model.cc.o.d"
  "CMakeFiles/ad_engine.dir/cost_model.cc.o"
  "CMakeFiles/ad_engine.dir/cost_model.cc.o.d"
  "CMakeFiles/ad_engine.dir/engine_config.cc.o"
  "CMakeFiles/ad_engine.dir/engine_config.cc.o.d"
  "libad_engine.a"
  "libad_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
