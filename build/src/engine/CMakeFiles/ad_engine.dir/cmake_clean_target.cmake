file(REMOVE_RECURSE
  "libad_engine.a"
)
