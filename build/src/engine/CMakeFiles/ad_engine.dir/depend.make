# Empty dependencies file for ad_engine.
# This may be replaced when dependencies are built.
