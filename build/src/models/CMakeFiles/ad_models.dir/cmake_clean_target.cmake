file(REMOVE_RECURSE
  "libad_models.a"
)
