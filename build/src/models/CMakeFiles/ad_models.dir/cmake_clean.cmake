file(REMOVE_RECURSE
  "CMakeFiles/ad_models.dir/efficientnet.cc.o"
  "CMakeFiles/ad_models.dir/efficientnet.cc.o.d"
  "CMakeFiles/ad_models.dir/inception.cc.o"
  "CMakeFiles/ad_models.dir/inception.cc.o.d"
  "CMakeFiles/ad_models.dir/nasnet.cc.o"
  "CMakeFiles/ad_models.dir/nasnet.cc.o.d"
  "CMakeFiles/ad_models.dir/resnet.cc.o"
  "CMakeFiles/ad_models.dir/resnet.cc.o.d"
  "CMakeFiles/ad_models.dir/vgg.cc.o"
  "CMakeFiles/ad_models.dir/vgg.cc.o.d"
  "CMakeFiles/ad_models.dir/zoo.cc.o"
  "CMakeFiles/ad_models.dir/zoo.cc.o.d"
  "libad_models.a"
  "libad_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
