# Empty compiler generated dependencies file for ad_models.
# This may be replaced when dependencies are built.
