
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/efficientnet.cc" "src/models/CMakeFiles/ad_models.dir/efficientnet.cc.o" "gcc" "src/models/CMakeFiles/ad_models.dir/efficientnet.cc.o.d"
  "/root/repo/src/models/inception.cc" "src/models/CMakeFiles/ad_models.dir/inception.cc.o" "gcc" "src/models/CMakeFiles/ad_models.dir/inception.cc.o.d"
  "/root/repo/src/models/nasnet.cc" "src/models/CMakeFiles/ad_models.dir/nasnet.cc.o" "gcc" "src/models/CMakeFiles/ad_models.dir/nasnet.cc.o.d"
  "/root/repo/src/models/resnet.cc" "src/models/CMakeFiles/ad_models.dir/resnet.cc.o" "gcc" "src/models/CMakeFiles/ad_models.dir/resnet.cc.o.d"
  "/root/repo/src/models/vgg.cc" "src/models/CMakeFiles/ad_models.dir/vgg.cc.o" "gcc" "src/models/CMakeFiles/ad_models.dir/vgg.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/models/CMakeFiles/ad_models.dir/zoo.cc.o" "gcc" "src/models/CMakeFiles/ad_models.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
