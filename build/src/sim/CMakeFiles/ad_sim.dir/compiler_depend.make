# Empty compiler generated dependencies file for ad_sim.
# This may be replaced when dependencies are built.
