file(REMOVE_RECURSE
  "libad_sim.a"
)
