file(REMOVE_RECURSE
  "CMakeFiles/ad_sim.dir/event_queue.cc.o"
  "CMakeFiles/ad_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ad_sim.dir/system.cc.o"
  "CMakeFiles/ad_sim.dir/system.cc.o.d"
  "CMakeFiles/ad_sim.dir/trace.cc.o"
  "CMakeFiles/ad_sim.dir/trace.cc.o.d"
  "libad_sim.a"
  "libad_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
