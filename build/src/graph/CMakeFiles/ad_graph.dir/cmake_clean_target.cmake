file(REMOVE_RECURSE
  "libad_graph.a"
)
