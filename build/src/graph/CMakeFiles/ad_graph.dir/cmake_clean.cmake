file(REMOVE_RECURSE
  "CMakeFiles/ad_graph.dir/graph.cc.o"
  "CMakeFiles/ad_graph.dir/graph.cc.o.d"
  "CMakeFiles/ad_graph.dir/layer.cc.o"
  "CMakeFiles/ad_graph.dir/layer.cc.o.d"
  "CMakeFiles/ad_graph.dir/merge.cc.o"
  "CMakeFiles/ad_graph.dir/merge.cc.o.d"
  "CMakeFiles/ad_graph.dir/serialize.cc.o"
  "CMakeFiles/ad_graph.dir/serialize.cc.o.d"
  "libad_graph.a"
  "libad_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
