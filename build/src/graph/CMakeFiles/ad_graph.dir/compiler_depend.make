# Empty compiler generated dependencies file for ad_graph.
# This may be replaced when dependencies are built.
