# Empty compiler generated dependencies file for ad_util.
# This may be replaced when dependencies are built.
