file(REMOVE_RECURSE
  "CMakeFiles/ad_util.dir/logging.cc.o"
  "CMakeFiles/ad_util.dir/logging.cc.o.d"
  "CMakeFiles/ad_util.dir/stats.cc.o"
  "CMakeFiles/ad_util.dir/stats.cc.o.d"
  "CMakeFiles/ad_util.dir/table.cc.o"
  "CMakeFiles/ad_util.dir/table.cc.o.d"
  "CMakeFiles/ad_util.dir/thread_pool.cc.o"
  "CMakeFiles/ad_util.dir/thread_pool.cc.o.d"
  "libad_util.a"
  "libad_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
