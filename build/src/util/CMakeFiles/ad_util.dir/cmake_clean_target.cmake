file(REMOVE_RECURSE
  "libad_util.a"
)
