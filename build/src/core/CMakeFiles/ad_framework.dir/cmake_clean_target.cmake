file(REMOVE_RECURSE
  "libad_framework.a"
)
