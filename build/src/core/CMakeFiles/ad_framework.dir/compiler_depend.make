# Empty compiler generated dependencies file for ad_framework.
# This may be replaced when dependencies are built.
