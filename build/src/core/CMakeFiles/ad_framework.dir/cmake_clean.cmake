file(REMOVE_RECURSE
  "CMakeFiles/ad_framework.dir/orchestrator.cc.o"
  "CMakeFiles/ad_framework.dir/orchestrator.cc.o.d"
  "libad_framework.a"
  "libad_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
