# Empty compiler generated dependencies file for ad_core.
# This may be replaced when dependencies are built.
