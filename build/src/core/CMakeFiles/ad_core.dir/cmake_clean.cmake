file(REMOVE_RECURSE
  "CMakeFiles/ad_core.dir/atom_generator.cc.o"
  "CMakeFiles/ad_core.dir/atom_generator.cc.o.d"
  "CMakeFiles/ad_core.dir/atomic_dag.cc.o"
  "CMakeFiles/ad_core.dir/atomic_dag.cc.o.d"
  "CMakeFiles/ad_core.dir/mapper.cc.o"
  "CMakeFiles/ad_core.dir/mapper.cc.o.d"
  "CMakeFiles/ad_core.dir/partition.cc.o"
  "CMakeFiles/ad_core.dir/partition.cc.o.d"
  "CMakeFiles/ad_core.dir/residency.cc.o"
  "CMakeFiles/ad_core.dir/residency.cc.o.d"
  "CMakeFiles/ad_core.dir/schedule.cc.o"
  "CMakeFiles/ad_core.dir/schedule.cc.o.d"
  "CMakeFiles/ad_core.dir/scheduler.cc.o"
  "CMakeFiles/ad_core.dir/scheduler.cc.o.d"
  "CMakeFiles/ad_core.dir/shape_catalog.cc.o"
  "CMakeFiles/ad_core.dir/shape_catalog.cc.o.d"
  "CMakeFiles/ad_core.dir/validation.cc.o"
  "CMakeFiles/ad_core.dir/validation.cc.o.d"
  "libad_core.a"
  "libad_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
