
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/atom_generator.cc" "src/core/CMakeFiles/ad_core.dir/atom_generator.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/atom_generator.cc.o.d"
  "/root/repo/src/core/atomic_dag.cc" "src/core/CMakeFiles/ad_core.dir/atomic_dag.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/atomic_dag.cc.o.d"
  "/root/repo/src/core/mapper.cc" "src/core/CMakeFiles/ad_core.dir/mapper.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/mapper.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/core/CMakeFiles/ad_core.dir/partition.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/partition.cc.o.d"
  "/root/repo/src/core/residency.cc" "src/core/CMakeFiles/ad_core.dir/residency.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/residency.cc.o.d"
  "/root/repo/src/core/schedule.cc" "src/core/CMakeFiles/ad_core.dir/schedule.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/schedule.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/ad_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/shape_catalog.cc" "src/core/CMakeFiles/ad_core.dir/shape_catalog.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/shape_catalog.cc.o.d"
  "/root/repo/src/core/validation.cc" "src/core/CMakeFiles/ad_core.dir/validation.cc.o" "gcc" "src/core/CMakeFiles/ad_core.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ad_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ad_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ad_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
