file(REMOVE_RECURSE
  "libad_core.a"
)
