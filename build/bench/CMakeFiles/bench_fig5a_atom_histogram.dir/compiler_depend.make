# Empty compiler generated dependencies file for bench_fig5a_atom_histogram.
# This may be replaced when dependencies are built.
