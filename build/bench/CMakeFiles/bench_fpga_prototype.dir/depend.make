# Empty dependencies file for bench_fpga_prototype.
# This may be replaced when dependencies are built.
