file(REMOVE_RECURSE
  "CMakeFiles/bench_fpga_prototype.dir/bench_fpga_prototype.cc.o"
  "CMakeFiles/bench_fpga_prototype.dir/bench_fpga_prototype.cc.o.d"
  "bench_fpga_prototype"
  "bench_fpga_prototype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fpga_prototype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
