# Empty compiler generated dependencies file for bench_fig5b_sa_vs_ga.
# This may be replaced when dependencies are built.
