file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_sa_vs_ga.dir/bench_fig5b_sa_vs_ga.cc.o"
  "CMakeFiles/bench_fig5b_sa_vs_ga.dir/bench_fig5b_sa_vs_ga.cc.o.d"
  "bench_fig5b_sa_vs_ga"
  "bench_fig5b_sa_vs_ga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_sa_vs_ga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
