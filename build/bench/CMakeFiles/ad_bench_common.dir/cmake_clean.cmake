file(REMOVE_RECURSE
  "../lib/libad_bench_common.a"
  "../lib/libad_bench_common.pdb"
  "CMakeFiles/ad_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/ad_bench_common.dir/bench_common.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
