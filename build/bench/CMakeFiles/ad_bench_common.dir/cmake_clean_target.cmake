file(REMOVE_RECURSE
  "../lib/libad_bench_common.a"
)
