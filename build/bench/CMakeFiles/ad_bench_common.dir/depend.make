# Empty dependencies file for ad_bench_common.
# This may be replaced when dependencies are built.
