file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_flexible_dataflow.dir/bench_ext_flexible_dataflow.cc.o"
  "CMakeFiles/bench_ext_flexible_dataflow.dir/bench_ext_flexible_dataflow.cc.o.d"
  "bench_ext_flexible_dataflow"
  "bench_ext_flexible_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_flexible_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
