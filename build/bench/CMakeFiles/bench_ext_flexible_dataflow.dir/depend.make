# Empty dependencies file for bench_ext_flexible_dataflow.
# This may be replaced when dependencies are built.
