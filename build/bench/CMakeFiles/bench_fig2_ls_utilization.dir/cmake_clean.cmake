file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_ls_utilization.dir/bench_fig2_ls_utilization.cc.o"
  "CMakeFiles/bench_fig2_ls_utilization.dir/bench_fig2_ls_utilization.cc.o.d"
  "bench_fig2_ls_utilization"
  "bench_fig2_ls_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_ls_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
