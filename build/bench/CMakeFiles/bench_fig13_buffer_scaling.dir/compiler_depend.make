# Empty compiler generated dependencies file for bench_fig13_buffer_scaling.
# This may be replaced when dependencies are built.
