# Empty dependencies file for batch_serving.
# This may be replaced when dependencies are built.
