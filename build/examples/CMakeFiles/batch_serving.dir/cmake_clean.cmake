file(REMOVE_RECURSE
  "CMakeFiles/batch_serving.dir/batch_serving.cpp.o"
  "CMakeFiles/batch_serving.dir/batch_serving.cpp.o.d"
  "batch_serving"
  "batch_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
