# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_noc[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_atomic_dag[1]_include.cmake")
include("/root/repo/build/tests/test_shape_catalog[1]_include.cmake")
include("/root/repo/build/tests/test_generator[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_mapper[1]_include.cmake")
include("/root/repo/build/tests/test_residency[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_serialize[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_merge[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
