file(REMOVE_RECURSE
  "CMakeFiles/test_residency.dir/test_residency.cc.o"
  "CMakeFiles/test_residency.dir/test_residency.cc.o.d"
  "test_residency"
  "test_residency.pdb"
  "test_residency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_residency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
