# Empty dependencies file for test_residency.
# This may be replaced when dependencies are built.
