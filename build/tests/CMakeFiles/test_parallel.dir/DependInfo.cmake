
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_parallel.cc" "tests/CMakeFiles/test_parallel.dir/test_parallel.cc.o" "gcc" "tests/CMakeFiles/test_parallel.dir/test_parallel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/ad_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ad_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ad_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ad_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ad_models.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ad_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ad_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ad_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ad_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ad_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
