# Empty dependencies file for test_atomic_dag.
# This may be replaced when dependencies are built.
