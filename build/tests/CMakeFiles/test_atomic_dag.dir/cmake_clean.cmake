file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_dag.dir/test_atomic_dag.cc.o"
  "CMakeFiles/test_atomic_dag.dir/test_atomic_dag.cc.o.d"
  "test_atomic_dag"
  "test_atomic_dag.pdb"
  "test_atomic_dag[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_dag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
