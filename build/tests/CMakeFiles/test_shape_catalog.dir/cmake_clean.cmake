file(REMOVE_RECURSE
  "CMakeFiles/test_shape_catalog.dir/test_shape_catalog.cc.o"
  "CMakeFiles/test_shape_catalog.dir/test_shape_catalog.cc.o.d"
  "test_shape_catalog"
  "test_shape_catalog.pdb"
  "test_shape_catalog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shape_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
