# Empty compiler generated dependencies file for test_shape_catalog.
# This may be replaced when dependencies are built.
