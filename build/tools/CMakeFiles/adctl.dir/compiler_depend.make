# Empty compiler generated dependencies file for adctl.
# This may be replaced when dependencies are built.
