file(REMOVE_RECURSE
  "CMakeFiles/adctl.dir/adctl.cc.o"
  "CMakeFiles/adctl.dir/adctl.cc.o.d"
  "adctl"
  "adctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
