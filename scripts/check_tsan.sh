#!/usr/bin/env bash
# Build the test suite with ThreadSanitizer and run the concurrency-
# sensitive tests. Any data race in the thread pool, the shared cost-model
# stores, or a parallel region aborts the run.
#
# Usage: scripts/check_tsan.sh [build-dir] [ctest-regex]
#   build-dir    defaults to build-tsan
#   ctest-regex  defaults to the concurrency + scheduler + integration
#                tests (pass '.' to run everything; slower under TSan)

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"
FILTER="${2:-ThreadPool|CachedCostModel|Determinism|Scheduler|Orchestrator}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAD_SANITIZE=thread
cmake --build "$BUILD_DIR" -j"$(nproc)"

# halt_on_error: a race is a hard failure, not a warning to scroll past.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
ctest --test-dir "$BUILD_DIR" --output-on-failure -R "$FILTER"

echo "check_tsan: no data races detected"
