#!/usr/bin/env bash
# Regenerate src/engine/surrogate_weights.hh from the exact cost model.
#
# The surrogate weights are committed constants: they are fitted here,
# offline, never at runtime. Run this after changing the exact
# CostModel formulas, the featurization in surrogate_cost_model.cc, or
# the sweep in tools/fit_surrogate.cc — then rebuild, run
# tests/test_surrogate, and commit the header diff alongside the code
# change that motivated it.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target fit_surrogate -j "$(nproc)"
"$BUILD_DIR/tools/fit_surrogate" src/engine/surrogate_weights.hh

# The evaluator compiles the header it just helped regenerate; rebuild
# and sweep so a bad fit is caught before it is ever committed.
cmake --build "$BUILD_DIR" --target test_surrogate -j "$(nproc)"
"$BUILD_DIR/tests/test_surrogate"
echo "regenerated src/engine/surrogate_weights.hh"
