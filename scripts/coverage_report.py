#!/usr/bin/env python3
"""gcov-based line-coverage report with per-directory floors.

Fallback for environments without gcovr (scripts/check_coverage.sh
prefers gcovr when installed): walks a -DAD_COVERAGE=ON build tree for
.gcda counter files, asks gcov for JSON intermediate records, merges
line hits per source file, and enforces minimum line-coverage
percentages per source directory.

The merge and floor logic is factored into pure functions
(parse_floors / merge_records / check_floors) so
tests/test_coverage_report.py can exercise the malformed-record and
zero-line edge cases without a compiler in the loop. gcov output is
treated as untrusted: records missing "file", lines missing
"line_number" or "count", and non-dict entries are skipped, never a
KeyError.

Usage: coverage_report.py BUILD_DIR DIR=FLOOR [DIR=FLOOR ...]
Exits nonzero when a directory's aggregate line coverage is below its
floor (or when no counters are found at all).
"""

import glob
import json
import os
import subprocess
import sys


def gcov_json(gcda, build_dir):
    """JSON intermediate records for one .gcda, [] on gcov failure."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.abspath(gcda)],
        capture_output=True,
        text=True,
        cwd=build_dir,
    )
    docs = []
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            pass
    return docs


def parse_floors(specs):
    """[(directory, floor)] from DIR=FLOOR specs; None on a bad spec."""
    floors = []
    for spec in specs:
        directory, sep, floor = spec.partition("=")
        if not sep or not directory:
            return None
        try:
            floors.append((directory.rstrip("/"), float(floor)))
        except ValueError:
            return None
    return floors


def merge_records(docs, root):
    """Merge gcov JSON docs into {path: {line: max hit count}}.

    Paths are normalized relative to `root`; absolute paths outside it
    (system headers) are dropped. Malformed records — not a dict, no
    "file", lines without "line_number"/"count" — are skipped. A file
    whose lines are all malformed (or that has none, e.g. a
    header-only file with no executable lines) gets NO entry rather
    than an empty one, so it cannot distort the per-file report.
    """
    hits = {}
    for doc in docs:
        if not isinstance(doc, dict):
            continue
        records = doc.get("files", [])
        if not isinstance(records, list):
            continue
        for record in records:
            if not isinstance(record, dict):
                continue
            path = record.get("file")
            if not isinstance(path, str) or not path:
                continue
            if os.path.isabs(path):
                if not path.startswith(root + os.sep):
                    continue
                path = os.path.relpath(path, root)
            lines = record.get("lines", [])
            if not isinstance(lines, list):
                continue
            merged = {}
            for line in lines:
                if not isinstance(line, dict):
                    continue
                number = line.get("line_number")
                count = line.get("count")
                if not isinstance(number, int):
                    continue
                if not isinstance(count, (int, float)) or count < 0:
                    count = 0
                merged[number] = count
            if not merged:
                continue
            existing = hits.setdefault(path, {})
            for number, count in merged.items():
                existing[number] = max(existing.get(number, 0), count)
    return hits


def check_floors(hits, floors):
    """(report lines, failed) for `hits` against the floor specs."""
    out = []
    failed = False
    for directory, floor in floors:
        covered = total = 0
        files = []
        for path in sorted(hits):
            if not path.startswith(directory + "/"):
                continue
            file_lines = hits[path]
            if not file_lines:
                continue
            file_covered = sum(1 for c in file_lines.values() if c > 0)
            covered += file_covered
            total += len(file_lines)
            files.append((path, file_covered, len(file_lines)))
        if total == 0:
            out.append(f"{directory}: no instrumented lines found")
            failed = True
            continue
        pct = 100.0 * covered / total
        status = "ok" if pct >= floor else "BELOW FLOOR"
        out.append(
            f"{directory}: {pct:.1f}% line coverage "
            f"({covered}/{total} lines, floor {floor:.0f}%) {status}"
        )
        for path, file_covered, file_total in files:
            file_pct = 100.0 * file_covered / file_total
            out.append(
                f"  {path}: {file_pct:.1f}% ({file_covered}/{file_total})"
            )
        failed = failed or pct < floor
    return out, failed


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    build_dir = sys.argv[1]
    floors = parse_floors(sys.argv[2:])
    if floors is None:
        sys.exit(f"malformed DIR=FLOOR spec in: {sys.argv[2:]}")

    gcdas = glob.glob(
        os.path.join(build_dir, "**", "*.gcda"), recursive=True
    )
    if not gcdas:
        sys.exit(f"no .gcda files under {build_dir}; run the tests first")

    docs = []
    for gcda in gcdas:
        docs.extend(gcov_json(gcda, build_dir))
    hits = merge_records(docs, os.getcwd())

    report, failed = check_floors(hits, floors)
    for line in report:
        print(line)
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
