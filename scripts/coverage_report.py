#!/usr/bin/env python3
"""gcov-based line-coverage report with per-directory floors.

Fallback for environments without gcovr (scripts/check_coverage.sh
prefers gcovr when installed): walks a -DAD_COVERAGE=ON build tree for
.gcda counter files, asks gcov for JSON intermediate records, merges
line hits per source file, and enforces minimum line-coverage
percentages per source directory.

Usage: coverage_report.py BUILD_DIR DIR=FLOOR [DIR=FLOOR ...]
Exits nonzero when a directory's aggregate line coverage is below its
floor (or when no counters are found at all).
"""

import collections
import glob
import json
import os
import subprocess
import sys


def gcov_json(gcda, build_dir):
    """JSON intermediate records for one .gcda, [] on gcov failure."""
    result = subprocess.run(
        ["gcov", "--json-format", "--stdout", os.path.abspath(gcda)],
        capture_output=True,
        text=True,
        cwd=build_dir,
    )
    docs = []
    for line in result.stdout.splitlines():
        line = line.strip()
        if not line.startswith("{"):
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError:
            pass
    return docs


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    build_dir = sys.argv[1]
    floors = []
    for spec in sys.argv[2:]:
        directory, _, floor = spec.partition("=")
        floors.append((directory.rstrip("/"), float(floor)))

    gcdas = glob.glob(
        os.path.join(build_dir, "**", "*.gcda"), recursive=True
    )
    if not gcdas:
        sys.exit(f"no .gcda files under {build_dir}; run the tests first")

    root = os.getcwd()
    # source path -> {line -> max hit count across translation units}
    hits = collections.defaultdict(dict)
    for gcda in gcdas:
        for doc in gcov_json(gcda, build_dir):
            for record in doc.get("files", []):
                path = record["file"]
                if os.path.isabs(path):
                    if not path.startswith(root + os.sep):
                        continue
                    path = os.path.relpath(path, root)
                lines = hits[path]
                for line in record.get("lines", []):
                    number = line["line_number"]
                    lines[number] = max(
                        lines.get(number, 0), line["count"]
                    )

    failed = False
    for directory, floor in floors:
        covered = total = 0
        files = []
        for path in sorted(hits):
            if not path.startswith(directory + "/"):
                continue
            file_lines = hits[path]
            if not file_lines:
                continue
            file_covered = sum(1 for c in file_lines.values() if c > 0)
            covered += file_covered
            total += len(file_lines)
            files.append((path, file_covered, len(file_lines)))
        if total == 0:
            print(f"{directory}: no instrumented lines found")
            failed = True
            continue
        pct = 100.0 * covered / total
        status = "ok" if pct >= floor else "BELOW FLOOR"
        print(
            f"{directory}: {pct:.1f}% line coverage "
            f"({covered}/{total} lines, floor {floor:.0f}%) {status}"
        )
        for path, file_covered, file_total in files:
            file_pct = 100.0 * file_covered / file_total
            print(f"  {path}: {file_pct:.1f}% ({file_covered}/{file_total})")
        failed = failed or pct < floor

    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
