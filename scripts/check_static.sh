#!/usr/bin/env bash
# The static-analysis gate (DESIGN.md Sec. 10), three layers:
#   1. hardened build: configure with -DAD_STATIC_ANALYSIS=ON and build
#      everything with the curated warning set promoted to errors; under
#      Clang this additionally runs -Werror=thread-safety against the
#      annotations in src/util/thread_annotations.hh;
#   2. adlint: build the semantic-model linter and run it over src/,
#      tools/, bench/ and tests/ against the checked-in suppression
#      baseline (tools/adlint/baseline.json), smoke-check the JSON
#      report, then self-test the linter against tests/adlint_fixtures
#      (known-bad snippets MUST produce findings — a linter that passes
#      them is broken);
#   3. clang-tidy (when installed): the curated .clang-tidy profile over
#      src/core, src/engine and src/util via the exported compile DB.
#
# Layers 1 and 3 prefer a Clang toolchain but degrade gracefully: with
# only GCC available, layer 1 still enforces the -Werror hardening set
# (thread-safety attributes compile to nothing) and layer 3 is skipped
# with a notice. The script never fails merely because Clang is absent.
#
# Usage: scripts/check_static.sh [build-dir] [jobs]
#   build-dir  defaults to build-static
#   jobs       parallel build jobs, defaults to nproc

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-static}"
JOBS="${2:-$(nproc)}"

find_tool() {
    # Newest versioned binary wins (clang++-18 over clang++-14).
    local base="$1" best="" cand
    if command -v "$base" >/dev/null 2>&1; then
        best="$base"
    fi
    for cand in $(compgen -c "$base-" 2>/dev/null | sort -t- -k2 -Vru); do
        case "$cand" in
        "$base"-[0-9]*)
            best="$cand"
            break
            ;;
        esac
    done
    [[ -n "$best" ]] && echo "$best"
}

CXX_BIN="$(find_tool clang++ || true)"
TIDY_BIN="$(find_tool clang-tidy || true)"

CMAKE_ARGS=(-DCMAKE_BUILD_TYPE=RelWithDebInfo -DAD_STATIC_ANALYSIS=ON)
if [[ -n "$CXX_BIN" ]]; then
    CC_BIN="${CXX_BIN/clang++/clang}"
    command -v "$CC_BIN" >/dev/null 2>&1 || CC_BIN="$CXX_BIN"
    echo "== static analysis with $CXX_BIN (thread-safety analysis on) =="
    CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER="$CXX_BIN" -DCMAKE_C_COMPILER="$CC_BIN")
else
    echo "== clang++ not found: hardened -Werror build with the default" \
         "compiler; thread-safety analysis skipped =="
fi

echo "== layer 1: hardened build (-DAD_STATIC_ANALYSIS=ON) =="
cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$JOBS"

echo "== layer 2: adlint over src/ tools/ bench/ tests/ =="
ADLINT="$BUILD_DIR/tools/adlint/adlint"
"$ADLINT" --baseline tools/adlint/baseline.json src tools bench tests

echo "== layer 2a: adlint JSON report is well-formed =="
JSON_OUT="$("$ADLINT" --format=json \
    --baseline tools/adlint/baseline.json src tools bench tests)"
for field in '"version": 1' '"tool": "adlint"' '"activeCount": 0'; do
    if [[ "$JSON_OUT" != *"$field"* ]]; then
        echo "check_static: FAIL — adlint --format=json output lacks" \
             "$field" >&2
        exit 1
    fi
done
echo "adlint --format=json carries the report schema"

echo "== layer 2b: adlint self-test on known-bad fixtures =="
if "$ADLINT" tests/adlint_fixtures >/dev/null 2>&1; then
    echo "check_static: FAIL — adlint reported no findings on" \
         "tests/adlint_fixtures; the linter has gone blind" >&2
    exit 1
fi
# adlint exits 1 on findings (that is the point here), so capture its
# output with the status discarded rather than piping under pipefail.
FIXTURE_OUT="$("$ADLINT" tests/adlint_fixtures 2>/dev/null || true)"
for rule in layer-conformance integer-narrowing enum-switch-default \
            raw-lock; do
    if ! grep -q ": $rule:" <<<"$FIXTURE_OUT"; then
        echo "check_static: FAIL — fixture run produced no $rule" \
             "finding; that rule has gone blind" >&2
        exit 1
    fi
done
echo "adlint correctly rejects the fixture snippets (all rule families)"

if [[ -n "$TIDY_BIN" ]]; then
    echo "== layer 3: $TIDY_BIN over src/core src/engine src/util =="
    mapfile -t TIDY_SOURCES \
        < <(find src/core src/engine src/util -name '*.cc' | sort)
    "$TIDY_BIN" -p "$BUILD_DIR" --quiet "${TIDY_SOURCES[@]}"
else
    echo "== clang-tidy not found: layer 3 skipped =="
fi

echo "check_static: every available layer passed"
