#!/usr/bin/env bash
# Regenerate the golden observability artifacts under tests/golden/.
#
# Run after an *intentional* change to the trace format or to the
# planner/simulator event sequence; commit the resulting diff so review
# sees exactly what changed. Usage: scripts/regen_golden.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
cmake --build "$BUILD_DIR" --target test_golden_trace -j"$(nproc)"
AD_REGEN_GOLDEN=1 "$BUILD_DIR"/tests/test_golden_trace \
    --gtest_filter='GoldenTrace.PerfettoJsonAndTimelineCsvMatchGoldenFiles:GoldenTrace.DttPerfettoJsonAndTimelineCsvMatchGoldenFiles'
git -C . status --short tests/golden/
