#!/usr/bin/env bash
# Line-coverage gate (DESIGN.md Sec. 12): build with -DAD_COVERAGE=ON,
# run the non-fuzz test suite, and enforce per-directory line-coverage
# floors on src/core, src/serve, and src/baselines. Uses gcovr when
# installed (CI); falls back to gcov + scripts/coverage_report.py.
#
# Usage: scripts/check_coverage.sh [build-dir] [jobs]
# Floors (percent) override via AD_COV_FLOOR_CORE / AD_COV_FLOOR_SERVE
# / AD_COV_FLOOR_BASELINES / AD_COV_FLOOR_ENGINE.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-coverage}"
JOBS="${2:-$(nproc)}"
CORE_FLOOR="${AD_COV_FLOOR_CORE:-85}"
SERVE_FLOOR="${AD_COV_FLOOR_SERVE:-85}"
BASELINES_FLOOR="${AD_COV_FLOOR_BASELINES:-80}"
ENGINE_FLOOR="${AD_COV_FLOOR_ENGINE:-85}"

cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DAD_COVERAGE=ON \
    -DAD_BUILD_BENCH=OFF -DAD_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$JOBS"

# Stale counters from previous runs would inflate the numbers.
find "$BUILD_DIR" -name '*.gcda' -delete

# Unit, golden, and serve labels; the fuzz suite adds minutes of
# runtime without touching lines the faster suites miss.
ctest --test-dir "$BUILD_DIR" --output-on-failure -LE fuzz

echo "== coverage floors: src/core >= ${CORE_FLOOR}%, src/serve >= ${SERVE_FLOOR}%, src/baselines >= ${BASELINES_FLOOR}%, src/engine >= ${ENGINE_FLOOR}% =="
if command -v gcovr >/dev/null 2>&1; then
    gcovr --root . "$BUILD_DIR" --filter 'src/core/' \
        --print-summary --fail-under-line "$CORE_FLOOR"
    gcovr --root . "$BUILD_DIR" --filter 'src/serve/' \
        --print-summary --fail-under-line "$SERVE_FLOOR"
    gcovr --root . "$BUILD_DIR" --filter 'src/baselines/' \
        --print-summary --fail-under-line "$BASELINES_FLOOR"
    gcovr --root . "$BUILD_DIR" --filter 'src/engine/' \
        --print-summary --fail-under-line "$ENGINE_FLOOR"
else
    python3 scripts/coverage_report.py "$BUILD_DIR" \
        "src/core=$CORE_FLOOR" "src/serve=$SERVE_FLOOR" \
        "src/baselines=$BASELINES_FLOOR" "src/engine=$ENGINE_FLOOR"
fi
echo "check_coverage: floors hold"
