#!/usr/bin/env bash
# Build the test suite with AddressSanitizer + UndefinedBehaviorSanitizer
# in one instrumented build (the two compose; TSan is the one that must
# run alone — scripts/check_tsan.sh) and run the labelled test suites.
# Heap corruption, OOB indexing, leaks, and UB (signed overflow, bad
# shifts, misaligned loads) all abort the run.
#
# If the available compiler cannot link -fsanitize=address,undefined
# (minimal containers sometimes lack the runtime libraries), the gate
# SKIPS with exit 0 rather than failing: the sanitizer matrix is an
# additional net, not a portability requirement.
#
# Usage: scripts/check_asan.sh [build-dir] [jobs] [ctest-label-regex]
#   build-dir          defaults to build-asan
#   jobs               parallel build jobs, defaults to nproc
#   ctest-label-regex  defaults to 'unit|serve' (the CI matrix cell);
#                      check_all.sh widens it to include fuzz + golden

set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"
JOBS="${2:-$(nproc)}"
LABELS="${3:-unit|serve}"

# Probe: can this toolchain actually produce an ASan+UBSan binary?
PROBE_DIR="$(mktemp -d)"
trap 'rm -rf "$PROBE_DIR"' EXIT
echo 'int main() { return 0; }' > "$PROBE_DIR/probe.cc"
if ! "${CXX:-c++}" -fsanitize=address,undefined \
        "$PROBE_DIR/probe.cc" -o "$PROBE_DIR/probe" >/dev/null 2>&1; then
    echo "check_asan: SKIPPED — ${CXX:-c++} cannot link" \
         "-fsanitize=address,undefined (no sanitizer runtime)"
    exit 0
fi

echo "== ASan+UBSan build (-DAD_SANITIZE=asan+ubsan) =="
cmake -B "$BUILD_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DAD_SANITIZE=asan+ubsan \
    -DAD_BUILD_BENCH=OFF -DAD_BUILD_EXAMPLES=OFF
cmake --build "$BUILD_DIR" -j"$JOBS"

# halt_on_error: a sanitizer report is a hard failure, not log noise.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

echo "== ctest -L '$LABELS' under ASan+UBSan =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -L "$LABELS"

echo "check_asan: no memory errors, leaks, or UB detected"
