#!/usr/bin/env bash
# The full validation gate (DESIGN.md Sec. 9):
#   1. tier-1: Release build + the complete ctest suite;
#   2. adctl validate over every Table-I zoo model, plus the DTT
#      optimality gate: the exact planner validated on the tractable
#      tiny_* nets (2x2 mesh), held to brute-force equality where the
#      oracle reaches, and diffed byte-identical across thread counts;
#   3. adctl trace on resnet50, with the Perfetto export checked to
#      parse as JSON and to contain metadata + span events;
#   4. adctl serve on the zoo mix, with stdout checked byte-identical
#      between --threads 1 and --threads 4 (the serving determinism
#      contract, DESIGN.md Sec. 12), plus a two-class sub-mesh
#      co-location smoke (DESIGN.md Sec. 16) with the same thread diff,
#      a view-keyed plan-store round trip, and the --submesh/--class
#      usage-error contract;
#   5. the sanitizer matrix cell (scripts/check_asan.sh): one combined
#      ASan+UBSan build running the unit, serve, fuzz and golden suites;
#      skips gracefully when the toolchain lacks a sanitizer runtime;
#   6. the static-analysis gate (DESIGN.md Sec. 10): hardened -Werror
#      build, the adlint determinism linter, and clang-tidy when
#      available (scripts/check_static.sh);
#   7. the coverage gate (scripts/check_coverage.sh): line-coverage
#      floors on src/core and src/serve.
#
# Usage: scripts/check_all.sh [jobs]
#   jobs  parallel build jobs, defaults to nproc

set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

echo "== tier 1: Release build + full test suite =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure

echo "== adctl validate: all Table-I zoo models =="
for model in vgg19 resnet50 resnet152 resnet1001 inception_v3 \
             nasnet pnasnet efficientnet; do
    ./build/tools/adctl validate --network "$model"
done
./build/tools/adctl validate --network random --seed 1

echo "== adctl validate: DTT optimality on the tractable zoo =="
# On the 2x2 mesh every tiny_* net stays inside the DTT tractability
# gates, so validate runs the exact planner end to end; seed 5's random
# DAG is small enough for the brute-force oracle row, which holds DTT
# to *equality* with the optimum (DESIGN.md Sec. 14).
for net in tiny_linear tiny_residual tiny_branchy; do
    ./build/tools/adctl validate "$net" --strategy dtt --engines 2x2
done
./build/tools/adctl validate random --seed 5 --strategy dtt \
    --engines 2x2 > build/validate_dtt_seed5.txt
grep -q "equality required" build/validate_dtt_seed5.txt
# The exact search must be bit-identical across thread counts: validate
# prints no wall clock, so its stdout diffs cleanly.
./build/tools/adctl validate tiny_branchy --strategy dtt --engines 2x2 \
    --threads 1 > build/validate_dtt_t1.txt
./build/tools/adctl validate tiny_branchy --strategy dtt --engines 2x2 \
    --threads 4 > build/validate_dtt_t4.txt
diff build/validate_dtt_t1.txt build/validate_dtt_t4.txt
echo "dtt validate OK"

echo "== adctl trace: Perfetto export parses as JSON =="
./build/tools/adctl trace resnet50 --out build/trace_resnet50.json
python3 - <<'EOF'
import json
with open("build/trace_resnet50.json") as f:
    doc = json.load(f)
events = doc["traceEvents"]
assert events, "trace has no events"
phases = {e["ph"] for e in events}
assert {"M", "X"} <= phases, f"missing metadata/span events: {phases}"
print(f"trace OK: {len(events)} events, phases {sorted(phases)}")
EOF

echo "== adctl serve: stdout byte-identical across thread counts =="
./build/tools/adctl serve tinymix --arrivals 400 --requests 16 \
    --seed 7 --repeat 2 --threads 1 2>/dev/null > build/serve_t1.txt
./build/tools/adctl serve tinymix --arrivals 400 --requests 16 \
    --seed 7 --repeat 2 --threads 4 2>/dev/null > build/serve_t4.txt
diff build/serve_t1.txt build/serve_t4.txt
echo "serve determinism OK"

echo "== adctl: malformed invocations exit 2 (usage contract) =="
expect_rc() {
    local want="$1"; shift
    local rc=0
    "$@" >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne "$want" ]; then
        echo "FAIL: expected exit $want, got $rc: $*" >&2
        exit 1
    fi
}
expect_rc 2 ./build/tools/adctl serve tinymix --kind sometimes
expect_rc 2 ./build/tools/adctl serve tinymix --requests abc
expect_rc 2 ./build/tools/adctl serve tinymix --requests -3
expect_rc 2 ./build/tools/adctl serve tinymix --deadline -5
expect_rc 2 ./build/tools/adctl serve tinymix --repeat 1x
expect_rc 2 ./build/tools/adctl serve tinymix --seed -1
expect_rc 2 ./build/tools/adctl trace resnet50 --strategy bogus
expect_rc 2 ./build/tools/adctl run resnet50 --mesh 8y8
expect_rc 2 ./build/tools/adctl nonsense
expect_rc 2 ./build/tools/adctl run tiny_linear --surrogate maybe
expect_rc 2 ./build/tools/adctl run tiny_linear --surrogate 1
expect_rc 2 ./build/tools/adctl serve tinymix --surrogate ON
echo "usage exit codes OK"

echo "== adctl: --surrogate on/off both plan tiny_linear =="
./build/tools/adctl run tiny_linear --surrogate on >/dev/null
./build/tools/adctl run tiny_linear --surrogate off >/dev/null
echo "surrogate flag OK"

echo "== adctl serve: warm restart from the plan store =="
# Cold process populates the store; two restarted processes (different
# thread counts) must serve with zero cold compiles and byte-identical
# stdout — the persistence layer's determinism contract.
rm -rf build/serve_store
./build/tools/adctl serve tinymix --arrivals 400 --requests 16 \
    --seed 7 --store build/serve_store --threads 2 2>/dev/null \
    > build/serve_cold.txt
grep -q "^serve.store.writes [1-9]" build/serve_cold.txt
./build/tools/adctl serve tinymix --arrivals 400 --requests 16 \
    --seed 7 --store build/serve_store --threads 1 2>/dev/null \
    > build/serve_warm_t1.txt
./build/tools/adctl serve tinymix --arrivals 400 --requests 16 \
    --seed 7 --store build/serve_store --threads 4 2>/dev/null \
    > build/serve_warm_t4.txt
diff build/serve_warm_t1.txt build/serve_warm_t4.txt
grep -q "^serve.cache.misses 0$" build/serve_warm_t1.txt
grep -q "^serve.store.corrupt 0$" build/serve_warm_t1.txt
grep -q "^serve.store.hits [1-9]" build/serve_warm_t1.txt
echo "warm restart OK"

echo "== adctl serve: SLO-class co-location on sub-meshes =="
# Two classes (latency + batch) co-located on a three-way partition of
# the 8x8 mesh. The cold process populates the store with view-keyed
# plans; two restarted processes (different thread counts) must serve
# with zero cold compiles and byte-identical stdout.
COLO_FLAGS="--class both --kind bursty --arrivals 600 --requests 18 \
    --seed 7 --submesh 4x4@0,0;4x4@4,0;8x4@0,4"
rm -rf build/serve_colo_store
./build/tools/adctl serve tinymix $COLO_FLAGS \
    --store build/serve_colo_store --threads 2 2>/dev/null \
    > build/serve_colo_cold.txt
grep -q "^serve.store.writes [1-9]" build/serve_colo_cold.txt
grep -q "^serve.class.latency.completed [1-9]" build/serve_colo_cold.txt
grep -q "^serve.class.batch.completed [1-9]" build/serve_colo_cold.txt
# Multi-executor dispatch depends on planning latencies, so a warm
# pass can touch (net, view-shape) keys the cold pass never planned;
# iterate the store to its fixed point before the thread-count diff
# (the misses-0 grep below then proves the fixed point was reached).
./build/tools/adctl serve tinymix $COLO_FLAGS \
    --store build/serve_colo_store --repeat 2 --threads 2 \
    2>/dev/null > /dev/null
./build/tools/adctl serve tinymix $COLO_FLAGS \
    --store build/serve_colo_store --repeat 2 --threads 2 \
    2>/dev/null > /dev/null
./build/tools/adctl serve tinymix $COLO_FLAGS \
    --store build/serve_colo_store --threads 1 2>/dev/null \
    > build/serve_colo_t1.txt
./build/tools/adctl serve tinymix $COLO_FLAGS \
    --store build/serve_colo_store --threads 4 2>/dev/null \
    > build/serve_colo_t4.txt
diff build/serve_colo_t1.txt build/serve_colo_t4.txt
grep -q "^serve.cache.misses 0$" build/serve_colo_t1.txt
grep -q "^serve.store.hits [1-9]" build/serve_colo_t1.txt
# Malformed partitions and classes are usage errors (exit 2).
expect_rc 2 ./build/tools/adctl serve tinymix --submesh 9x9@0,0
expect_rc 2 ./build/tools/adctl serve tinymix --submesh garbage
expect_rc 2 ./build/tools/adctl serve tinymix --submesh 4x4@0,0/1.5
expect_rc 2 ./build/tools/adctl serve tinymix --class noneSuch
expect_rc 2 ./build/tools/adctl serve tinymix --class batch \
    --batch-deadline abc
echo "co-location smoke OK"

# Sanitizers catch what asserts cannot (OOB in the counting loops, UB
# in the bitmask enumeration, leaks in the report plumbing). One
# combined ASan+UBSan build replaces the former separate address/
# undefined builds; the widened label set covers the differential-
# oracle, fuzz and golden suites on top of the CI cell's unit+serve.
echo "== sanitizer matrix: ASan+UBSan over unit/serve/fuzz/golden =="
scripts/check_asan.sh build-asan "$JOBS" 'unit|serve|fuzz|golden'

echo "== static-analysis gate =="
scripts/check_static.sh build-static "$JOBS"

echo "== coverage gate =="
scripts/check_coverage.sh build-coverage "$JOBS"

echo "check_all: every gate passed"
