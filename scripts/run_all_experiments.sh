#!/usr/bin/env bash
# Regenerate every table and figure of the paper's evaluation section.
#
# Usage: scripts/run_all_experiments.sh [build-dir] [output-dir]
#
# Environment knobs (see bench/bench_common.hh):
#   AD_BENCH_MODELS=resnet50,vgg19   restrict the workload set
#   AD_BENCH_BATCH=8                 change the throughput batch size
#   AD_BENCH_FULL=1                  also run the YX-Partition dataflow
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment_results}"
mkdir -p "$OUT_DIR"

BENCHES=(
    bench_table1_workloads
    bench_fig2_ls_utilization
    bench_fig5a_atom_histogram
    bench_fig5b_sa_vs_ga
    bench_fig8_latency
    bench_fig9_throughput
    bench_fig10_ablation
    bench_fig11_energy
    bench_fig12_engine_scaling
    bench_fig13_buffer_scaling
    bench_table2_utilization
    bench_fpga_prototype
    bench_ext_flexible_dataflow
    bench_ablation_mapping
)

for bench in "${BENCHES[@]}"; do
    echo "== $bench =="
    "$BUILD_DIR/bench/$bench" | tee "$OUT_DIR/$bench.txt"
    echo
done

echo "results written to $OUT_DIR/"
