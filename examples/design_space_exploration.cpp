/**
 * @file
 * Architectural design-space exploration with the framework (the
 * paper's Sec. V-C workflow): sweep the engine count at a fixed total
 * PE and SRAM budget, and sweep the per-engine buffer size, reporting
 * where each workload's sweet spot falls.
 */

#include <iostream>

#include "core/orchestrator.hh"
#include "models/models.hh"
#include "util/table.hh"

namespace {

/** Partition a fixed 4096-PE / 2 MiB-SRAM budget into n x n engines. */
ad::sim::SystemConfig
partitioned(int mesh, int total_pes = 4096,
            ad::Bytes total_buffer = 2 * 1024 * 1024)
{
    ad::sim::SystemConfig system;
    system.meshX = mesh;
    system.meshY = mesh;
    const int pes_per_engine = total_pes / (mesh * mesh);
    int side = 1;
    while (side * side < pes_per_engine)
        side *= 2;
    system.engine.peRows = side;
    system.engine.peCols = pes_per_engine / side;
    system.engine.bufferBytes =
        total_buffer / static_cast<ad::Bytes>(mesh * mesh);
    return system;
}

} // namespace

int
main()
{
    const auto graph = ad::models::tinyBranchy();
    const int batch = 8;

    std::cout << "== engine-count sweep (fixed 4096 PEs, 2 MiB SRAM) ==\n";
    ad::TextTable sweep;
    sweep.setHeader({"engines", "PEs/engine", "buffer/engine", "cycles",
                     "PE util"});
    for (int mesh : {1, 2, 4, 8}) {
        const auto system = partitioned(mesh);
        ad::core::OrchestratorOptions options;
        options.batch = batch;
        options.sa.maxIterations = 200;
        const auto result =
            ad::core::Orchestrator(system, options).run(graph);
        sweep.addRow({std::to_string(mesh) + "x" + std::to_string(mesh),
                      std::to_string(system.engine.pes()),
                      std::to_string(system.engine.bufferBytes / 1024) +
                          " KiB",
                      std::to_string(result.report.totalCycles),
                      ad::fmtPercent(result.report.peUtilization)});
    }
    std::cout << sweep.render() << '\n';

    std::cout << "== per-engine buffer sweep (4x4 engines) ==\n";
    ad::TextTable buffers;
    buffers.setHeader({"buffer", "cycles", "reuse", "HBM reads"});
    for (ad::Bytes kib : {32, 64, 128, 256}) {
        auto system = partitioned(4);
        system.engine.bufferBytes = kib * 1024;
        ad::core::OrchestratorOptions options;
        options.batch = batch;
        options.sa.maxIterations = 200;
        const auto result =
            ad::core::Orchestrator(system, options).run(graph);
        buffers.addRow(
            {std::to_string(kib) + " KiB",
             std::to_string(result.report.totalCycles),
             ad::fmtPercent(result.report.onChipReuseRatio),
             ad::fmtDouble(result.report.hbmReadBytes / 1e6, 2) + " MB"});
    }
    std::cout << buffers.render();
    return 0;
}
