/**
 * @file
 * Quickstart: optimize one DNN workload for the paper's default
 * scalable accelerator (8x8 engines of 16x16 PEs) and print the
 * resulting execution report.
 *
 * Usage: quickstart [model] [batch]
 *   model  one of: vgg19 resnet50 resnet152 resnet1001 inception_v3
 *          nasnet pnasnet efficientnet        (default: resnet50)
 *   batch  input samples gathered into one atomic DAG (default: 1)
 */

#include <cstdlib>
#include <iostream>

#include "core/orchestrator.hh"
#include "models/models.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "resnet50";
    const int batch = argc > 2 ? std::atoi(argv[2]) : 1;

    // 1. Build the workload (this substitutes an ONNX import).
    const ad::graph::Graph graph = ad::models::buildByName(model);
    std::cout << "workload: " << graph.name() << " ("
              << graph.layerCount() << " layers, "
              << ad::fmtDouble(graph.totalMacs() / 1e9, 2) << " GMACs, "
              << ad::fmtDouble(graph.totalParams() / 1e6, 1)
              << "M params)\n";

    // 2. Describe the accelerator (defaults follow the paper's Sec. V-A).
    ad::sim::SystemConfig system;
    std::cout << "system: " << system.meshX << "x" << system.meshY
              << " engines, " << system.engine.peRows << "x"
              << system.engine.peCols << " PEs each, "
              << system.engine.bufferBytes / 1024 << " KiB buffers, "
              << ad::engine::dataflowName(system.dataflow) << "\n";

    // 3. Run the atomic-dataflow optimization framework.
    ad::core::OrchestratorOptions options;
    options.batch = batch;
    const ad::core::Orchestrator orchestrator(system, options);
    const auto result = orchestrator.run(graph);

    // 4. Inspect the solution.
    const auto &report = result.report;
    ad::TextTable table;
    table.setHeader({"metric", "value"});
    table.addRow({"atoms", std::to_string(result.dag->size())});
    table.addRow({"rounds", std::to_string(report.rounds)});
    table.addRow({"cycles", std::to_string(report.totalCycles)});
    table.addRow({"latency",
                  ad::fmtDouble(report.latencyMs(system.engine.freqGhz), 3) +
                      " ms"});
    table.addRow({"throughput",
                  ad::fmtDouble(report.throughputFps(system.engine.freqGhz),
                                1) +
                      " fps"});
    table.addRow({"PE utilization", ad::fmtPercent(report.peUtilization)});
    table.addRow({"compute utilization (w/o mem delay)",
                  ad::fmtPercent(report.computeUtilization)});
    table.addRow({"NoC overhead", ad::fmtPercent(report.nocOverhead)});
    table.addRow({"on-chip reuse", ad::fmtPercent(report.onChipReuseRatio)});
    table.addRow({"energy", ad::fmtDouble(report.totalEnergyMj(), 2) + " mJ"});
    table.addRow({"search time",
                  ad::fmtDouble(result.searchSeconds, 1) + " s"});
    std::cout << table.render();
    return 0;
}
