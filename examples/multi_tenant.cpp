/**
 * @file
 * Multi-tenant serving: co-schedule two different networks on one
 * accelerator with atomic dataflow, versus running them back to back.
 * Because atoms from both tenants fill the same Rounds, phases where one
 * network cannot occupy all engines are padded with the other's work —
 * the utilization argument the paper's related work (HDA, Layerweaver)
 * makes for multi-DNN serving.
 */

#include <iostream>

#include "core/orchestrator.hh"
#include "graph/merge.hh"
#include "models/models.hh"
#include "util/table.hh"

int
main()
{
    const auto a = ad::models::resnet50();
    const auto b = ad::models::efficientNet();
    ad::sim::SystemConfig system; // 8x8-engine default
    ad::core::OrchestratorOptions options;
    options.batch = 1;
    options.sa.maxIterations = 300;
    const ad::core::Orchestrator orchestrator(system, options);
    const double freq = system.engine.freqGhz;

    // Back-to-back: each tenant gets the whole chip, sequentially.
    const auto ra = orchestrator.run(a);
    const auto rb = orchestrator.run(b);
    const ad::Cycles sequential =
        ra.report.totalCycles + rb.report.totalCycles;

    // Co-scheduled: one merged DAG, atoms interleave freely.
    const auto merged = ad::graph::mergeGraphs({&a, &b});
    const auto rm = orchestrator.run(merged);

    ad::TextTable table;
    table.setHeader({"configuration", "cycles", "time(ms)", "PE util"});
    table.addRow({"resnet50 alone", std::to_string(ra.report.totalCycles),
                  ad::fmtDouble(ra.report.latencyMs(freq), 3),
                  ad::fmtPercent(ra.report.peUtilization)});
    table.addRow({"efficientnet alone",
                  std::to_string(rb.report.totalCycles),
                  ad::fmtDouble(rb.report.latencyMs(freq), 3),
                  ad::fmtPercent(rb.report.peUtilization)});
    table.addRow({"back-to-back total", std::to_string(sequential),
                  ad::fmtDouble(static_cast<double>(sequential) /
                                    (freq * 1e6),
                                3),
                  "-"});
    table.addRow({"co-scheduled (merged DAG)",
                  std::to_string(rm.report.totalCycles),
                  ad::fmtDouble(rm.report.latencyMs(freq), 3),
                  ad::fmtPercent(rm.report.peUtilization)});
    std::cout << table.render() << '\n';

    const double gain = static_cast<double>(sequential) /
                        static_cast<double>(rm.report.totalCycles);
    std::cout << "co-scheduling speedup over back-to-back: "
              << ad::fmtSpeedup(gain) << "\n";
    return 0;
}
