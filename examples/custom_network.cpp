/**
 * @file
 * Building a custom network with the graph IR and comparing scheduling
 * strategies on it — the workflow a user follows for a model that is
 * not in the zoo.
 *
 * The example constructs a small two-branch detection-style backbone
 * (stem, residual stage, dual-rate branches, fused head), then runs
 * Layer-Sequential, the Rammer-like scheduler, and atomic dataflow on
 * the same 4x4-engine accelerator.
 */

#include <iostream>

#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "core/orchestrator.hh"
#include "util/table.hh"

namespace {

/** A residual block with two 3x3 convolutions. */
ad::graph::LayerId
residualBlock(ad::graph::Graph &g, ad::graph::LayerId x, int channels,
              const std::string &name)
{
    auto y = g.conv(x, channels, 3, 1, 1, name + "_a");
    y = g.conv(y, channels, 3, 1, 1, name + "_b");
    return g.add({y, x}, name + "_add");
}

ad::graph::Graph
buildDetector()
{
    ad::graph::Graph g("tiny_detector");
    auto x = g.input({96, 96, 3});
    x = g.conv(x, 32, 3, 2, 1, "stem");         // 48x48
    x = residualBlock(g, x, 32, "stage1");
    x = g.conv(x, 64, 3, 2, 1, "down1");        // 24x24
    x = residualBlock(g, x, 64, "stage2");

    // Two detection branches at different rates.
    auto fine = g.conv(x, 64, 3, 1, 1, "fine");
    auto coarse = g.conv(x, 64, 3, 2, 1, "coarse");       // 12x12
    coarse = g.conv(coarse, 64, 3, 1, 1, "coarse2");
    auto up = g.conv(fine, 64, 3, 2, 1, "fine_down");     // align 12x12

    auto fused = g.add({up, coarse}, "fuse");
    fused = g.conv(fused, 128, 1, 1, 0, "head");
    g.globalPool(fused, "gpool");
    g.validate();
    return g;
}

} // namespace

int
main()
{
    const ad::graph::Graph graph = buildDetector();
    std::cout << "custom workload: " << graph.name() << " ("
              << graph.layerCount() << " layers, "
              << ad::fmtDouble(graph.totalMacs() / 1e6, 1)
              << " MMACs)\n\n";

    ad::sim::SystemConfig system;
    system.meshX = 4;
    system.meshY = 4;
    const int batch = 4;

    ad::TextTable table;
    table.setHeader({"strategy", "cycles", "latency(ms)", "fps",
                     "PE util", "reuse", "energy(mJ)"});
    auto row = [&](const char *name, const ad::sim::ExecutionReport &r) {
        table.addRow({name, std::to_string(r.totalCycles),
                      ad::fmtDouble(r.latencyMs(0.5), 3),
                      ad::fmtDouble(r.throughputFps(0.5), 1),
                      ad::fmtPercent(r.peUtilization),
                      ad::fmtPercent(r.onChipReuseRatio),
                      ad::fmtDouble(r.totalEnergyMj(), 3)});
    };

    ad::baselines::LsOptions ls_options;
    ls_options.batch = batch;
    row("LS", ad::baselines::LayerSequential(system, ls_options)
                  .run(graph));
    row("Rammer-like",
        ad::baselines::RammerScheduler(system, batch).run(graph));

    ad::core::OrchestratorOptions options;
    options.batch = batch;
    const auto ad_result =
        ad::core::Orchestrator(system, options).run(graph);
    row("AtomicDataflow", ad_result.report);

    std::cout << table.render() << '\n';
    std::cout << "atomic dataflow used " << ad_result.report.rounds
              << " rounds for " << ad_result.dag->size() << " atoms\n";
    return 0;
}
