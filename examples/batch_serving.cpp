/**
 * @file
 * Batched-serving scenario: pick the best batch size for a
 * latency-bounded inference service. Sweeps the batch and reports the
 * latency/throughput frontier under atomic dataflow, flagging the
 * largest batch that still meets the deadline.
 */

#include <iostream>

#include "core/orchestrator.hh"
#include "models/models.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    const std::string model = argc > 1 ? argv[1] : "efficientnet";
    const double deadline_ms = argc > 2 ? std::atof(argv[2]) : 40.0;

    const auto graph = ad::models::buildByName(model);
    ad::sim::SystemConfig system; // the paper's 8x8-engine default
    std::cout << "serving " << graph.name() << " under a "
              << deadline_ms << " ms deadline\n\n";

    ad::TextTable table;
    table.setHeader({"batch", "latency(ms)", "fps", "PE util",
                     "energy/inference(mJ)", "meets deadline"});

    int best_batch = 0;
    double best_fps = 0;
    for (int batch : {1, 2, 4, 8, 16}) {
        ad::core::OrchestratorOptions options;
        options.batch = batch;
        options.sa.maxIterations = 300;
        const auto result =
            ad::core::Orchestrator(system, options).run(graph);
        const auto &r = result.report;
        const double lat = r.latencyMs(system.engine.freqGhz);
        const double fps = r.throughputFps(system.engine.freqGhz);
        const bool ok = lat <= deadline_ms;
        if (ok && fps > best_fps) {
            best_fps = fps;
            best_batch = batch;
        }
        table.addRow({std::to_string(batch), ad::fmtDouble(lat, 2),
                      ad::fmtDouble(fps, 1),
                      ad::fmtPercent(r.peUtilization),
                      ad::fmtDouble(r.totalEnergyMj() / batch, 2),
                      ok ? "yes" : "no"});
    }
    std::cout << table.render() << '\n';
    if (best_batch > 0) {
        std::cout << "recommended batch: " << best_batch << " ("
                  << ad::fmtDouble(best_fps, 1) << " fps)\n";
    } else {
        std::cout << "no batch meets the deadline; "
                     "consider a larger accelerator\n";
    }
    return 0;
}
