/**
 * @file
 * adctl — command-line front-end for the atomic-dataflow framework.
 *
 * Subcommands:
 *   models                              list the zoo workloads (Table I)
 *   run     --model M [options]        optimize + simulate one workload
 *   compare --model M [options]        LS / CNN-P / IL-Pipe / AD side by side
 *   trace   --model M --out F [opts]   dump the mapped schedule as CSV
 *   export  --model M --out F          write the model as adgraph text
 *   validate --network N [--seed S]    run the differential-oracle checks
 *                                      (schedule validity, conservation
 *                                      audits, reference cost model,
 *                                      brute-force optimality on tiny
 *                                      DAGs); N is a zoo model or
 *                                      "random" for a seeded fuzz graph
 *
 * Common options:
 *   --graph FILE     load an adgraph text file instead of a zoo model
 *   --batch N        samples per DAG (default 1)
 *   --mesh XxY       engine grid (default 8x8)
 *   --pe RxC         PE array per engine (default 16x16)
 *   --buffer KIB     per-engine buffer (default 128)
 *   --dataflow D     kc | yx | flex (default kc)
 *   --sched S        dp | greedy | layer | batched (default dp)
 *   --threads N      worker threads (default: AD_THREADS, else cores;
 *                    results are identical for any value)
 *   --no-reuse       disable distributed-buffer reuse
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "baselines/cnn_partition.hh"
#include "baselines/il_pipe.hh"
#include "baselines/layer_sequential.hh"
#include "check/brute_force.hh"
#include "check/conservation.hh"
#include "check/reference_cost_model.hh"
#include "core/orchestrator.hh"
#include "core/validation.hh"
#include "graph/serialize.hh"
#include "models/models.hh"
#include "sim/trace.hh"
#include "testing_support/random_graph.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    bool noReuse = false;
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        ad::fatal("usage: adctl "
                  "<models|run|compare|trace|export|validate> [options]");
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--no-reuse") {
            args.noReuse = true;
        } else if (flag.rfind("--", 0) == 0 && i + 1 < argc) {
            args.options[flag.substr(2)] = argv[++i];
        } else {
            ad::fatal("unexpected argument '", flag, "'");
        }
    }
    return args;
}

std::string
option(const Args &args, const std::string &key,
       const std::string &fallback)
{
    auto it = args.options.find(key);
    return it == args.options.end() ? fallback : it->second;
}

void
applyThreads(const Args &args)
{
    const std::string threads = option(args, "threads", "");
    if (!threads.empty())
        ad::util::ThreadPool::setGlobalThreads(std::atoi(threads.c_str()));
}

std::pair<int, int>
parsePair(const std::string &text, char sep)
{
    const auto pos = text.find(sep);
    if (pos == std::string::npos)
        ad::fatal("expected <a>", std::string(1, sep), "<b>, got '",
                  text, "'");
    return {std::atoi(text.substr(0, pos).c_str()),
            std::atoi(text.substr(pos + 1).c_str())};
}

ad::graph::Graph
loadWorkload(const Args &args)
{
    const std::string file = option(args, "graph", "");
    if (!file.empty())
        return ad::graph::loadText(file);
    return ad::models::buildByName(option(args, "model", "resnet50"));
}

ad::sim::SystemConfig
systemFrom(const Args &args)
{
    ad::sim::SystemConfig system;
    const auto [mx, my] = parsePair(option(args, "mesh", "8x8"), 'x');
    system.meshX = mx;
    system.meshY = my;
    const auto [pr, pc] = parsePair(option(args, "pe", "16x16"), 'x');
    system.engine.peRows = pr;
    system.engine.peCols = pc;
    system.engine.bufferBytes =
        static_cast<ad::Bytes>(
            std::atoi(option(args, "buffer", "128").c_str())) *
        1024;
    system.dataflow =
        ad::engine::dataflowFromString(option(args, "dataflow", "kc"));
    return system;
}

ad::core::OrchestratorOptions
orchestratorFrom(const Args &args)
{
    ad::core::OrchestratorOptions options;
    options.batch = std::atoi(option(args, "batch", "1").c_str());
    const std::string sched = option(args, "sched", "dp");
    if (sched == "dp")
        options.scheduler.mode = ad::core::SchedMode::Dp;
    else if (sched == "greedy")
        options.scheduler.mode = ad::core::SchedMode::Greedy;
    else if (sched == "layer")
        options.scheduler.mode = ad::core::SchedMode::LayerOrder;
    else if (sched == "batched")
        options.scheduler.mode = ad::core::SchedMode::LayerBatched;
    else
        ad::fatal("unknown --sched '", sched, "'");
    options.onChipReuse = !args.noReuse;
    return options;
}

void
printReport(const ad::sim::ExecutionReport &r, double freq_ghz)
{
    ad::TextTable table;
    table.setHeader({"metric", "value"});
    table.addRow({"cycles", std::to_string(r.totalCycles)});
    table.addRow({"rounds", std::to_string(r.rounds)});
    table.addRow({"latency", ad::fmtDouble(r.latencyMs(freq_ghz), 3) + " ms"});
    table.addRow({"throughput",
                  ad::fmtDouble(r.throughputFps(freq_ghz), 1) + " fps"});
    table.addRow({"PE utilization", ad::fmtPercent(r.peUtilization)});
    table.addRow({"compute utilization",
                  ad::fmtPercent(r.computeUtilization)});
    table.addRow({"NoC overhead", ad::fmtPercent(r.nocOverhead)});
    table.addRow({"memory overhead", ad::fmtPercent(r.memOverhead)});
    table.addRow({"on-chip reuse", ad::fmtPercent(r.onChipReuseRatio)});
    table.addRow({"HBM read", ad::fmtDouble(static_cast<double>(r.hbmReadBytes) / 1e6, 1) + " MB"});
    table.addRow({"HBM write",
                  ad::fmtDouble(static_cast<double>(r.hbmWriteBytes) / 1e6, 1) + " MB"});
    table.addRow({"NoC traffic", ad::fmtDouble(static_cast<double>(r.nocBytes) / 1e6, 1) + " MB"});
    table.addRow({"energy", ad::fmtDouble(r.totalEnergyMj(), 2) + " mJ"});
    std::cout << table.render();
}

int
cmdModels()
{
    ad::TextTable table;
    table.setHeader({"name", "layers", "params", "GMACs",
                     "characteristics"});
    for (const auto &entry : ad::models::tableOneModels()) {
        const auto g = entry.build();
        table.addRow({entry.name, std::to_string(g.layerCount()),
                      ad::fmtDouble(static_cast<double>(g.totalParams()) / 1e6, 1) + "M",
                      ad::fmtDouble(static_cast<double>(g.totalMacs()) / 1e9, 2),
                      entry.description});
    }
    std::cout << table.render();
    return 0;
}

int
cmdRun(const Args &args)
{
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const auto result =
        ad::core::Orchestrator(system, orchestratorFrom(args)).run(graph);
    std::cout << "workload: " << graph.name() << ", system: "
              << system.meshX << "x" << system.meshY << " engines, "
              << ad::engine::dataflowName(system.dataflow) << "\n";
    std::cout << "atoms: " << result.dag->size() << ", search: "
              << ad::fmtDouble(result.searchSeconds, 1) << " s\n";
    printReport(result.report, system.engine.freqGhz);
    return 0;
}

int
cmdCompare(const Args &args)
{
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const int batch = std::atoi(option(args, "batch", "1").c_str());
    const double freq = system.engine.freqGhz;

    ad::TextTable table;
    table.setHeader({"strategy", "cycles", "fps", "PE util", "reuse",
                     "energy(mJ)"});

    // Each strategy builds independent state over the shared read-only
    // graph, so the four runs fan out across the pool.
    const std::vector<const char *> names{"LS", "CNN-P", "IL-Pipe", "AD"};
    const auto reports =
        ad::util::ThreadPool::global()
            .parallelMap<ad::sim::ExecutionReport>(
                names.size(), [&](std::size_t i) {
                    switch (i) {
                    case 0: {
                        ad::baselines::LsOptions ls;
                        ls.batch = batch;
                        return ad::baselines::LayerSequential(system, ls)
                            .run(graph);
                    }
                    case 1: {
                        ad::baselines::CnnPOptions cnnp;
                        cnnp.batch = batch;
                        return ad::baselines::CnnPartition(system, cnnp)
                            .run(graph);
                    }
                    case 2: {
                        ad::baselines::IlPipeOptions pipe;
                        pipe.batch = batch;
                        return ad::baselines::IlPipe(system, pipe)
                            .run(graph);
                    }
                    default:
                        return ad::core::Orchestrator(
                                   system, orchestratorFrom(args))
                            .run(graph)
                            .report;
                    }
                });
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &r = reports[i];
        table.addRow({names[i], std::to_string(r.totalCycles),
                      ad::fmtDouble(r.throughputFps(freq), 1),
                      ad::fmtPercent(r.peUtilization),
                      ad::fmtPercent(r.onChipReuseRatio),
                      ad::fmtDouble(r.totalEnergyMj(), 1)});
    }
    std::cout << table.render();
    return 0;
}

int
cmdTrace(const Args &args)
{
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const auto result =
        ad::core::Orchestrator(system, orchestratorFrom(args)).run(graph);
    const std::string out = option(args, "out", "");
    const std::string csv =
        ad::sim::renderScheduleCsv(*result.dag, result.schedule);
    if (out.empty()) {
        std::cout << csv;
    } else {
        std::ofstream file(out);
        if (!file)
            ad::fatal("cannot open '", out, "'");
        file << csv;
        std::cout << "wrote " << result.schedule.atomCount()
                  << " placements to " << out << "\n";
    }
    return 0;
}

/**
 * Differential-oracle validation of one workload end to end:
 * orchestrate, then run every check layer the repo has — structural
 * schedule validation, simulator conservation audits, the loop-nest
 * reference cost model against the analytical one, and (when the DAG is
 * tiny) the exhaustive brute-force scheduling oracle.
 */
int
cmdValidate(const Args &args)
{
    const std::uint64_t seed = std::strtoull(
        option(args, "seed", "1").c_str(), nullptr, 10);
    const std::string network =
        option(args, "network", option(args, "model", "resnet50"));

    ad::graph::Graph graph = [&] {
        if (network == "random")
            return ad::testing::randomGraph(seed);
        Args load = args;
        load.options["model"] = network;
        return loadWorkload(load);
    }();

    const auto system = systemFrom(args);
    const auto result =
        ad::core::Orchestrator(system, orchestratorFrom(args)).run(graph);
    const ad::core::AtomicDag &dag = *result.dag;

    std::cout << "workload: " << graph.name() << " (" << dag.size()
              << " atoms), system: " << system.meshX << "x"
              << system.meshY << " engines, "
              << ad::engine::dataflowName(system.dataflow) << "\n";

    ad::TextTable table;
    table.setHeader({"check", "status", "detail"});
    bool all_ok = true;
    const auto row = [&](const std::string &name, bool ok,
                         const std::string &detail) {
        all_ok = all_ok && ok;
        table.addRow({name, ok ? "ok" : "FAIL", detail});
    };

    // 1. Structural schedule validation.
    const auto violations = ad::core::validateSchedule(
        dag, result.schedule, system.engines());
    row("schedule validity", violations.empty(),
        violations.empty()
            ? std::to_string(result.schedule.rounds.size()) + " rounds"
            : violations.front().what);

    // 2. Simulator conservation audits.
    const auto audits = ad::check::auditExecution(dag, result.schedule,
                                                 system, result.report);
    row("conservation audits", audits.empty(),
        audits.empty()
            ? "HBM >= " +
                  ad::fmtDouble(static_cast<double>(
                                    ad::check::compulsoryHbmReadBytes(
                                        dag, result.schedule, system)) /
                                    1e6,
                                1) +
                  " MB compulsory"
            : audits.front().what);

    // 3. Reference cost model vs analytical, on sampled atom workloads.
    {
        const ad::engine::CostModel analytical(system.engine,
                                               system.dataflow);
        const ad::check::ReferenceCostModel reference(system.engine,
                                                      system.dataflow);
        const std::size_t stride = std::max<std::size_t>(
            1, dag.size() / 64);
        std::size_t compared = 0;
        std::size_t mismatched = 0;
        for (std::size_t i = 0; i < dag.size(); i += stride) {
            const auto atom = dag.workload(static_cast<ad::core::AtomId>(i));
            const auto a = analytical.evaluate(atom);
            const auto r = reference.evaluate(atom);
            ++compared;
            if (a.cycles != r.cycles || a.computeCycles != r.computeCycles ||
                a.utilization != r.utilization || a.macs != r.macs ||
                a.ifmapBytes != r.ifmapBytes ||
                a.weightBytes != r.weightBytes ||
                a.ofmapBytes != r.ofmapBytes ||
                a.sramReadBytes != r.sramReadBytes ||
                a.sramWriteBytes != r.sramWriteBytes ||
                a.energyPj != r.energyPj)
                ++mismatched;
        }
        row("reference cost model", mismatched == 0,
            std::to_string(compared) + " workloads, " +
                std::to_string(mismatched) + " mismatched");
    }

    // 4. Brute-force scheduling oracle (tiny DAGs only).
    if (dag.size() <= 10) {
        const ad::engine::CostModel model(system.engine, system.dataflow);
        std::vector<ad::Cycles> atom_cycles(dag.size());
        for (std::size_t i = 0; i < dag.size(); ++i)
            atom_cycles[i] =
                model.cycles(dag.workload(static_cast<ad::core::AtomId>(i)));
        const auto oracle = ad::check::bruteForceSchedule(
            dag, atom_cycles, system.engines());

        ad::core::RoundList rounds;
        for (const auto &round : result.schedule.rounds) {
            std::vector<ad::core::AtomId> ids;
            for (const auto &p : round.placements)
                ids.push_back(p.atom);
            rounds.push_back(std::move(ids));
        }
        const ad::Cycles makespan =
            ad::check::roundComputeMakespan(rounds, atom_cycles);
        const bool ok =
            makespan >= oracle.optimalMakespan &&
            static_cast<int>(rounds.size()) >= oracle.minRounds;
        row("brute-force oracle", ok,
            "makespan " + std::to_string(makespan) + " vs optimal " +
                std::to_string(oracle.optimalMakespan) + ", rounds " +
                std::to_string(rounds.size()) + " vs min " +
                std::to_string(oracle.minRounds));
    } else {
        table.addRow({"brute-force oracle", "skip",
                      "DAG has " + std::to_string(dag.size()) +
                          " atoms (limit 10)"});
    }

    std::cout << table.render();
    return all_ok ? 0 : 1;
}

int
cmdExport(const Args &args)
{
    const auto graph = loadWorkload(args);
    const std::string out = option(args, "out", "");
    if (out.empty()) {
        std::cout << ad::graph::toText(graph);
    } else {
        ad::graph::saveText(graph, out);
        std::cout << "wrote " << graph.size() << " layers to " << out
                  << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Args args = parse(argc, argv);
        applyThreads(args);
        if (args.command == "models")
            return cmdModels();
        if (args.command == "run")
            return cmdRun(args);
        if (args.command == "compare")
            return cmdCompare(args);
        if (args.command == "trace")
            return cmdTrace(args);
        if (args.command == "export")
            return cmdExport(args);
        if (args.command == "validate")
            return cmdValidate(args);
        ad::fatal("unknown command '", args.command, "'");
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
