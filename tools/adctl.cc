/**
 * @file
 * adctl — command-line front-end for the atomic-dataflow framework.
 *
 * Every subcommand shares one option parser and one usage table (see
 * kCommands below — the help text renders from it, so the two cannot
 * drift). Strategies run behind the unified ad::core::Planner API and
 * observability rides the ad::obs Instrumentation handle.
 *
 * Exit codes (documented in README.md):
 *   0  success (for `validate`: every check passed)
 *   1  runtime or configuration error, or a failed validation check
 *   2  usage error (unknown command/strategy, malformed invocation)
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "baselines/dtt.hh"
#include "baselines/planners.hh"
#include "check/brute_force.hh"
#include "check/conservation.hh"
#include "check/reference_cost_model.hh"
#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "core/validation.hh"
#include "graph/serialize.hh"
#include "models/models.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/schedule_views.hh"
#include "obs/trace.hh"
#include "serve/request_stream.hh"
#include "serve/serve_loop.hh"
#include "testing_support/random_graph.hh"
#include "util/table.hh"
#include "util/thread_pool.hh"

namespace {

/** Malformed invocation: main() prints the message and exits 2. */
struct UsageError : std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** One row of the command table; the usage text renders from these. */
struct CommandSpec
{
    const char *name;
    const char *operands;
    const char *summary;
};

constexpr CommandSpec kCommands[] = {
    {"models", "", "list the zoo workloads (Table I)"},
    {"run", "[net]", "optimize + simulate one workload"},
    {"compare", "[net]", "LS / CNN-P / IL-Pipe / AD side by side"},
    {"trace", "[net]",
     "instrumented run; Perfetto trace JSON to --out (or stdout)"},
    {"profile", "[net]",
     "instrumented run; metrics dump as text (or JSON to --out)"},
    {"export", "[net]", "write the model as adgraph text"},
    {"validate", "[net|random]",
     "differential-oracle checks (validity, conservation, reference "
     "cost model, brute-force oracle)"},
    {"serve", "[net|mix]",
     "multi-tenant serving of a seeded arrival trace (plan cache, "
     "deadlines, degradation, SLO-class sub-mesh co-location)"},
};

std::string
usageText()
{
    std::ostringstream os;
    os << "usage: adctl <command> [net] [options]\n\ncommands:\n";
    for (const CommandSpec &c : kCommands) {
        os << "  " << c.name;
        for (std::size_t i = std::strlen(c.name); i < 9; ++i)
            os << ' ';
        os << c.operands;
        for (std::size_t i = std::strlen(c.operands); i < 13; ++i)
            os << ' ';
        os << c.summary << "\n";
    }
    os << "\ncommon options:\n"
          "  --net NAME       zoo model (alias: --model; or positional; "
          "default resnet50)\n"
          "  --graph FILE     load an adgraph text file instead\n"
          "  --strategy S     ls | cnn-p | il-pipe | rammer | ad | dtt "
          "(run/trace/profile/validate/serve; default ad)\n"
          "  --batch N        samples per DAG (default 1)\n"
          "  --engines XxY    engine grid (alias: --mesh; default 8x8)\n"
          "  --pe RxC         PE array per engine (default 16x16)\n"
          "  --buffer KIB     per-engine buffer (default 128)\n"
          "  --dataflow D     kc | yx | flex (default kc)\n"
          "  --sched S        dp | greedy | layer | batched (default "
          "dp)\n"
          "  --threads N      worker threads (default: AD_THREADS, else "
          "cores; results are identical for any value)\n"
          "  --out FILE       output file (default stdout)\n"
          "  --csv FILE       trace: also write the CSV timeline\n"
          "  --schedule FILE  trace: also write the schedule CSV\n"
          "  --seed S         validate/serve: trace seed\n"
          "  --surrogate V    on | off: surrogate-screened planning "
          "(default on; off reproduces the unscreened pipeline "
          "bit-for-bit)\n"
          "  --no-reuse       disable distributed-buffer reuse\n"
          "\nserve options:\n"
          "  --arrivals R     mean arrival rate, requests/s (default "
          "100)\n"
          "  --requests N     trace length (default 32)\n"
          "  --kind K         poisson | bursty (default poisson)\n"
          "  --deadline MS    per-request deadline (default 50)\n"
          "  --queue N        admission queue capacity (default 32)\n"
          "  --repeat N       serve the trace N times; later passes hit "
          "the warm plan cache (default 1)\n"
          "  --store DIR      persistent plan store; compiled plans are "
          "written through and a restarted server re-serves them "
          "without recompiling\n"
          "  --class C        latency | batch | both: SLO class(es) of "
          "the trace (default latency)\n"
          "  --batch-deadline MS  batch-class deadline (default 500)\n"
          "  --submesh SPEC   co-located executors, 'WxH@X,Y[/share]' "
          "entries joined by ';' (default: one whole-mesh executor)\n"
          "  net may be a mix: 'mix'/'zoo' (all eight Table-I models) "
          "or 'tinymix'\n"
          "\nexit codes: 0 success, 1 runtime/config error or failed "
          "validation, 2 usage error\n";
    return os.str();
}

struct Args
{
    std::string command;
    std::map<std::string, std::string> options;
    bool noReuse = false;
};

Args
parse(int argc, char **argv)
{
    Args args;
    if (argc < 2)
        throw UsageError(usageText());
    args.command = argv[1];
    const bool known =
        std::any_of(std::begin(kCommands), std::end(kCommands),
                    [&](const CommandSpec &c) {
                        return args.command == c.name;
                    });
    if (!known) {
        throw UsageError("unknown command '" + args.command + "'\n\n" +
                         usageText());
    }
    bool saw_positional = false;
    for (int i = 2; i < argc; ++i) {
        std::string flag = argv[i];
        if (flag == "--no-reuse") {
            args.noReuse = true;
        } else if (flag.rfind("--", 0) == 0) {
            if (i + 1 >= argc) {
                throw UsageError("option '" + flag +
                                 "' expects a value\n\n" + usageText());
            }
            std::string key = flag.substr(2);
            // Aliases: one canonical key per concept.
            if (key == "net")
                key = "model";
            else if (key == "engines")
                key = "mesh";
            args.options[key] = argv[++i];
        } else if (!saw_positional) {
            // Bare operand right after the command: the network name.
            saw_positional = true;
            args.options["model"] = flag;
        } else {
            throw UsageError("unexpected argument '" + flag +
                             "'\n\n" + usageText());
        }
    }
    return args;
}

std::string
option(const Args &args, const std::string &key,
       const std::string &fallback)
{
    auto it = args.options.find(key);
    return it == args.options.end() ? fallback : it->second;
}

/**
 * Strict integer option: the whole value must parse as a base-10
 * integer in [lo, hi]. Anything else — empty, trailing junk, out of
 * range — is a usage error (exit 2), never a silent atoi() zero.
 */
long long
intOption(const Args &args, const std::string &key, long long fallback,
          long long lo, long long hi)
{
    const auto it = args.options.find(key);
    if (it == args.options.end())
        return fallback;
    const std::string &text = it->second;
    long long value = 0;
    std::size_t used = 0;
    try {
        value = std::stoll(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (text.empty() || used != text.size()) {
        throw UsageError("option '--" + key +
                         "' expects an integer, got '" + text + "'");
    }
    if (value < lo || value > hi) {
        throw UsageError("option '--" + key + "' must be between " +
                         std::to_string(lo) + " and " +
                         std::to_string(hi) + ", got '" + text + "'");
    }
    return value;
}

/** Strict non-negative 64-bit option (seeds). */
std::uint64_t
u64Option(const Args &args, const std::string &key,
          std::uint64_t fallback)
{
    const auto it = args.options.find(key);
    if (it == args.options.end())
        return fallback;
    const std::string &text = it->second;
    std::uint64_t value = 0;
    std::size_t used = 0;
    try {
        value = std::stoull(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    // stoull silently wraps an explicit minus sign; reject it.
    if (text.empty() || used != text.size() || text[0] == '-') {
        throw UsageError("option '--" + key +
                         "' expects a non-negative integer, got '" +
                         text + "'");
    }
    return value;
}

/** Strict finite-double option with a lower bound. */
double
numOption(const Args &args, const std::string &key, double fallback,
          double lo)
{
    const auto it = args.options.find(key);
    if (it == args.options.end())
        return fallback;
    const std::string &text = it->second;
    double value = 0.0;
    std::size_t used = 0;
    try {
        value = std::stod(text, &used);
    } catch (const std::exception &) {
        used = 0;
    }
    if (text.empty() || used != text.size() || !std::isfinite(value)) {
        throw UsageError("option '--" + key +
                         "' expects a number, got '" + text + "'");
    }
    if (value < lo) {
        throw UsageError("option '--" + key + "' must be at least " +
                         ad::fmtDouble(lo, 3) + ", got '" + text + "'");
    }
    return value;
}

void
applyThreads(const Args &args)
{
    // 0 = auto-size to the hardware (ThreadPool's convention).
    ad::util::ThreadPool::setGlobalThreads(static_cast<int>(
        intOption(args, "threads", 0, 0, 4096)));
}

std::pair<int, int>
parsePair(const std::string &text, char sep)
{
    const auto parseSide = [&](const std::string &side) {
        int value = 0;
        std::size_t used = 0;
        try {
            value = std::stoi(side, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (side.empty() || used != side.size() || value < 1) {
            throw UsageError("expected <a>" + std::string(1, sep) +
                             "<b> with positive integers, got '" +
                             text + "'");
        }
        return value;
    };
    const auto pos = text.find(sep);
    if (pos == std::string::npos) {
        throw UsageError("expected <a>" + std::string(1, sep) +
                         "<b>, got '" + text + "'");
    }
    return {parseSide(text.substr(0, pos)),
            parseSide(text.substr(pos + 1))};
}

ad::graph::Graph
loadWorkload(const Args &args)
{
    const std::string file = option(args, "graph", "");
    if (!file.empty())
        return ad::graph::loadText(file);
    return ad::models::buildByName(option(args, "model", "resnet50"));
}

ad::sim::SystemConfig
systemFrom(const Args &args)
{
    ad::sim::SystemConfig system;
    const auto [mx, my] = parsePair(option(args, "mesh", "8x8"), 'x');
    system.meshX = mx;
    system.meshY = my;
    const auto [pr, pc] = parsePair(option(args, "pe", "16x16"), 'x');
    system.engine.peRows = pr;
    system.engine.peCols = pc;
    system.engine.bufferBytes =
        static_cast<ad::Bytes>(
            intOption(args, "buffer", 128, 1, 1 << 20)) *
        1024;
    system.dataflow =
        ad::engine::dataflowFromString(option(args, "dataflow", "kc"));
    return system;
}

ad::core::OrchestratorOptions
orchestratorFrom(const Args &args)
{
    ad::core::OrchestratorOptions options;
    options.batch =
        static_cast<int>(intOption(args, "batch", 1, 1, 4096));
    const std::string sched = option(args, "sched", "dp");
    if (sched == "dp")
        options.scheduler.mode = ad::core::SchedMode::Dp;
    else if (sched == "greedy")
        options.scheduler.mode = ad::core::SchedMode::Greedy;
    else if (sched == "layer")
        options.scheduler.mode = ad::core::SchedMode::LayerOrder;
    else if (sched == "batched")
        options.scheduler.mode = ad::core::SchedMode::LayerBatched;
    else
        ad::fatal("unknown --sched '", sched, "'");
    options.onChipReuse = !args.noReuse;
    // Strict on|off: anything else is a usage error (exit 2), never a
    // silent default.
    const std::string surrogate = option(args, "surrogate", "on");
    if (surrogate == "on")
        options.surrogate = true;
    else if (surrogate == "off")
        options.surrogate = false;
    else
        throw UsageError("option '--surrogate' expects 'on' or 'off', "
                         "got '" +
                         surrogate + "'");
    return options;
}

/** Canonical factory name of the --strategy option value. */
std::string
canonicalStrategy(const Args &args)
{
    std::string s = option(args, "strategy", "ad");
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    if (s == "ls")
        return "LS";
    if (s == "cnn-p" || s == "cnnp")
        return "CNN-P";
    if (s == "il-pipe" || s == "ilpipe")
        return "IL-Pipe";
    if (s == "rammer")
        return "Rammer";
    if (s == "ad")
        return "AD";
    if (s == "dtt")
        return "DTT";
    throw UsageError("unknown --strategy '" +
                     option(args, "strategy", "ad") +
                     "' (expected ls, cnn-p, il-pipe, rammer, ad, "
                     "or dtt)");
}

/** Configured planner for @p name through the one PlannerSpec factory;
 * AD and DTT honour the full option set (DTT shares the AD front half,
 * see baselines/dtt.hh), the rest consume options.batch. */
std::unique_ptr<ad::core::Planner>
plannerFor(const std::string &name, const Args &args,
           const ad::sim::SystemConfig &system)
{
    return ad::baselines::makePlanner(
        {name, system, {}, orchestratorFrom(args)});
}

void
writeFileOrFatal(const std::string &path, const std::string &content)
{
    std::ofstream file(path);
    if (!file)
        ad::fatal("cannot open '", path, "'");
    file << content;
}

void
printReport(const ad::sim::ExecutionReport &r, double freq_ghz)
{
    ad::TextTable table;
    table.setHeader({"metric", "value"});
    table.addRow({"cycles", std::to_string(r.totalCycles)});
    table.addRow({"rounds", std::to_string(r.rounds)});
    table.addRow({"latency", ad::fmtDouble(r.latencyMs(freq_ghz), 3) + " ms"});
    table.addRow({"throughput",
                  ad::fmtDouble(r.throughputFps(freq_ghz), 1) + " fps"});
    table.addRow({"PE utilization", ad::fmtPercent(r.peUtilization)});
    table.addRow({"compute utilization",
                  ad::fmtPercent(r.computeUtilization)});
    table.addRow({"NoC overhead", ad::fmtPercent(r.nocOverhead)});
    table.addRow({"memory overhead", ad::fmtPercent(r.memOverhead)});
    table.addRow({"on-chip reuse", ad::fmtPercent(r.onChipReuseRatio)});
    table.addRow({"HBM read", ad::fmtDouble(static_cast<double>(r.hbmReadBytes) / 1e6, 1) + " MB"});
    table.addRow({"HBM write",
                  ad::fmtDouble(static_cast<double>(r.hbmWriteBytes) / 1e6, 1) + " MB"});
    table.addRow({"NoC traffic", ad::fmtDouble(static_cast<double>(r.nocBytes) / 1e6, 1) + " MB"});
    table.addRow({"energy", ad::fmtDouble(r.totalEnergyMj(), 2) + " mJ"});
    std::cout << table.render();
}

int
cmdModels()
{
    ad::TextTable table;
    table.setHeader({"name", "layers", "params", "GMACs",
                     "characteristics"});
    for (const auto &entry : ad::models::tableOneModels()) {
        const auto g = entry.build();
        table.addRow({entry.name, std::to_string(g.layerCount()),
                      ad::fmtDouble(static_cast<double>(g.totalParams()) / 1e6, 1) + "M",
                      ad::fmtDouble(static_cast<double>(g.totalMacs()) / 1e9, 2),
                      entry.description});
    }
    std::cout << table.render();
    return 0;
}

int
cmdRun(const Args &args)
{
    const std::string strategy = canonicalStrategy(args);
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const auto planner = plannerFor(strategy, args, system);
    const auto result = planner->plan(graph);
    std::cout << "workload: " << graph.name() << ", strategy: "
              << planner->name() << ", system: " << system.meshX << "x"
              << system.meshY << " engines, "
              << ad::engine::dataflowName(system.dataflow) << "\n";
    if (result.dag) {
        std::cout << "atoms: " << result.dag->size() << " ("
                  << ad::core::schedModeName(result.schedule.mode)
                  << " rounds), search: "
                  << ad::fmtDouble(result.searchSeconds, 1) << " s\n";
    } else {
        std::cout << "analytic strategy (no mapped schedule), search: "
                  << ad::fmtDouble(result.searchSeconds, 1) << " s\n";
    }
    printReport(result.report, system.engine.freqGhz);
    return 0;
}

int
cmdCompare(const Args &args)
{
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const double freq = system.engine.freqGhz;

    ad::TextTable table;
    table.setHeader({"strategy", "cycles", "fps", "PE util", "reuse",
                     "energy(mJ)"});

    // Each strategy builds independent state over the shared read-only
    // graph, so the four runs fan out across the pool.
    const std::vector<std::string> names{"LS", "CNN-P", "IL-Pipe", "AD"};
    const auto reports =
        ad::util::ThreadPool::global()
            .parallelMap<ad::sim::ExecutionReport>(
                names.size(), [&](std::size_t i) {
                    return plannerFor(names[i], args, system)->run(graph);
                });
    for (std::size_t i = 0; i < names.size(); ++i) {
        const auto &r = reports[i];
        table.addRow({names[i], std::to_string(r.totalCycles),
                      ad::fmtDouble(r.throughputFps(freq), 1),
                      ad::fmtPercent(r.peUtilization),
                      ad::fmtPercent(r.onChipReuseRatio),
                      ad::fmtDouble(r.totalEnergyMj(), 1)});
    }
    std::cout << table.render();
    return 0;
}

/**
 * Instrumented run: records the full execution timeline (atom spans per
 * engine, NoC multicasts, HBM transactions, Round barriers, SA search
 * telemetry) and exports Chrome/Perfetto trace_event JSON. Deterministic:
 * the same invocation produces byte-identical output for any --threads.
 */
int
cmdTrace(const Args &args)
{
    const std::string strategy = canonicalStrategy(args);
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const auto planner = plannerFor(strategy, args, system);

    ad::obs::TraceRecorder trace;
    ad::obs::MetricsRegistry metrics;
    ad::obs::Instrumentation ins{&trace, &metrics};
    const auto result = planner->plan(graph, &ins);

    const std::string schedule_out = option(args, "schedule", "");
    if (!schedule_out.empty()) {
        if (!result.dag)
            ad::fatal("strategy ", planner->name(),
                      " is analytic and has no schedule to render");
        writeFileOrFatal(schedule_out, ad::obs::renderScheduleCsv(
                                           *result.dag, result.schedule));
    }
    const std::string csv_out = option(args, "csv", "");
    if (!csv_out.empty())
        writeFileOrFatal(csv_out, trace.timelineCsv());

    const std::string out = option(args, "out", "");
    if (out.empty()) {
        std::cout << trace.perfettoJson();
    } else {
        writeFileOrFatal(out, trace.perfettoJson());
        std::cout << "wrote " << trace.eventCount() << " events ("
                  << planner->name() << ", " << graph.name() << ") to "
                  << out << "\n";
    }
    return 0;
}

/**
 * Instrumented run, metrics only: dumps the registry as stable-order
 * `name value` text on stdout, or as a JSON object with --out.
 */
int
cmdProfile(const Args &args)
{
    const std::string strategy = canonicalStrategy(args);
    const auto graph = loadWorkload(args);
    const auto system = systemFrom(args);
    const auto planner = plannerFor(strategy, args, system);

    ad::obs::MetricsRegistry metrics;
    ad::obs::Instrumentation ins{nullptr, &metrics};
    const auto result = planner->plan(graph, &ins);

    const std::string out = option(args, "out", "");
    if (out.empty()) {
        std::cout << "strategy: " << planner->name() << ", workload: "
                  << graph.name() << ", cycles: "
                  << result.report.totalCycles << "\n";
        std::cout << metrics.renderText();
    } else {
        writeFileOrFatal(out, metrics.renderJson());
        std::cout << "wrote " << metrics.size() << " metrics ("
                  << planner->name() << ", " << graph.name() << ") to "
                  << out << "\n";
    }
    return 0;
}

/**
 * Differential-oracle validation of one workload end to end:
 * orchestrate, then run every check layer the repo has — structural
 * schedule validation, simulator conservation audits, the loop-nest
 * reference cost model against the analytical one, and (when the DAG is
 * tiny) the exhaustive brute-force scheduling oracle.
 */
int
cmdValidate(const Args &args)
{
    const std::uint64_t seed = u64Option(args, "seed", 1);
    const std::string network =
        option(args, "network", option(args, "model", "resnet50"));

    ad::graph::Graph graph = [&] {
        if (network == "random")
            return ad::testing::randomGraph(seed);
        Args load = args;
        load.options["model"] = network;
        return loadWorkload(load);
    }();

    const std::string strategy = canonicalStrategy(args);
    const auto system = systemFrom(args);
    const auto planner = plannerFor(strategy, args, system);
    const auto result = planner->plan(graph);
    if (!result.dag)
        ad::fatal("strategy ", planner->name(),
                  " is analytic and produces no schedule to validate");
    const ad::core::AtomicDag &dag = *result.dag;

    std::cout << "workload: " << graph.name() << " (" << dag.size()
              << " atoms), strategy: " << planner->name()
              << ", system: " << system.meshX << "x" << system.meshY
              << " engines, "
              << ad::engine::dataflowName(system.dataflow) << "\n";

    ad::TextTable table;
    table.setHeader({"check", "status", "detail"});
    bool all_ok = true;
    const auto row = [&](const std::string &name, bool ok,
                         const std::string &detail) {
        all_ok = all_ok && ok;
        table.addRow({name, ok ? "ok" : "FAIL", detail});
    };

    // 1. Structural schedule validation.
    const auto violations = ad::core::validateSchedule(
        dag, result.schedule, system.engines());
    row("schedule validity", violations.empty(),
        violations.empty()
            ? std::to_string(result.schedule.rounds.size()) + " rounds"
            : violations.front().what);

    // 2. Simulator conservation audits.
    const auto audits = ad::check::auditExecution(dag, result.schedule,
                                                 system, result.report);
    row("conservation audits", audits.empty(),
        audits.empty()
            ? "HBM >= " +
                  ad::fmtDouble(static_cast<double>(
                                    ad::check::compulsoryHbmReadBytes(
                                        dag, result.schedule, system)) /
                                    1e6,
                                1) +
                  " MB compulsory"
            : audits.front().what);

    // 3. Reference cost model vs analytical, on sampled atom workloads.
    {
        const ad::engine::CostModel analytical(system.engine,
                                               system.dataflow);
        const ad::check::ReferenceCostModel reference(system.engine,
                                                      system.dataflow);
        const std::size_t stride = std::max<std::size_t>(
            1, dag.size() / 64);
        std::size_t compared = 0;
        std::size_t mismatched = 0;
        for (std::size_t i = 0; i < dag.size(); i += stride) {
            const auto atom = dag.workload(static_cast<ad::core::AtomId>(i));
            const auto a = analytical.evaluate(atom);
            const auto r = reference.evaluate(atom);
            ++compared;
            if (a.cycles != r.cycles || a.computeCycles != r.computeCycles ||
                a.utilization != r.utilization || a.macs != r.macs ||
                a.ifmapBytes != r.ifmapBytes ||
                a.weightBytes != r.weightBytes ||
                a.ofmapBytes != r.ofmapBytes ||
                a.sramReadBytes != r.sramReadBytes ||
                a.sramWriteBytes != r.sramWriteBytes ||
                a.energyPj != r.energyPj)
                ++mismatched;
        }
        row("reference cost model", mismatched == 0,
            std::to_string(compared) + " workloads, " +
                std::to_string(mismatched) + " mismatched");
    }

    // 4. Brute-force scheduling oracle (tiny DAGs only). Heuristic
    // strategies must not beat the optimum; DTT must *attain* it.
    if (dag.size() <= 10) {
        const ad::engine::CostModel model(system.engine, system.dataflow);
        std::vector<ad::Cycles> atom_cycles(dag.size());
        for (std::size_t i = 0; i < dag.size(); ++i)
            atom_cycles[i] =
                model.cycles(dag.workload(static_cast<ad::core::AtomId>(i)));
        const auto cmp = ad::check::assertNotWorseThanBruteForce(
            dag, atom_cycles, system.engines(), result.schedule, 10);
        const bool ok = strategy == "DTT" ? cmp.isOptimal() : true;
        row("brute-force oracle", ok,
            "makespan " + std::to_string(cmp.makespan) +
                " vs optimal " +
                std::to_string(cmp.optimalMakespan) +
                (strategy == "DTT" ? " (equality required)"
                                   : " (never-beats asserted)"));
    } else {
        table.addRow({"brute-force oracle", "skip",
                      "DAG has " + std::to_string(dag.size()) +
                          " atoms (limit 10)"});
    }

    std::cout << table.render();
    return all_ok ? 0 : 1;
}

int
cmdExport(const Args &args)
{
    const auto graph = loadWorkload(args);
    const std::string out = option(args, "out", "");
    if (out.empty()) {
        std::cout << ad::graph::toText(graph);
    } else {
        ad::graph::saveText(graph, out);
        std::cout << "wrote " << graph.size() << " layers to " << out
                  << "\n";
    }
    return 0;
}

/**
 * Parse one `--submesh` entry of the form `WxH@X,Y[/SHARE]`. SHARE
 * defaults to the view's engine fraction of the whole mesh; explicit
 * shares must be in (0, 1]. Malformed entries are usage errors.
 */
ad::sim::MeshView
parseSubmeshEntry(const std::string &entry,
                  const ad::sim::SystemConfig &system)
{
    const auto malformed = [&entry]() {
        throw UsageError("--submesh entry '" + entry +
                         "' must look like WxH@X,Y[/share]");
    };
    const auto at = entry.find('@');
    if (at == std::string::npos)
        malformed();
    std::pair<int, int> dims{0, 0};
    try {
        dims = parsePair(entry.substr(0, at), 'x');
    } catch (const UsageError &) {
        malformed();
    }

    std::string rest = entry.substr(at + 1);
    std::string share_text;
    const auto slash = rest.find('/');
    if (slash != std::string::npos) {
        share_text = rest.substr(slash + 1);
        rest = rest.substr(0, slash);
    }

    // The origin allows zero, so parsePair (positive-only) won't do.
    const auto parseCoord = [&](const std::string &side) {
        int value = -1;
        std::size_t used = 0;
        try {
            value = std::stoi(side, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (side.empty() || used != side.size() || value < 0)
            malformed();
        return value;
    };
    const auto comma = rest.find(',');
    if (comma == std::string::npos)
        malformed();

    ad::sim::MeshView view;
    view.width = dims.first;
    view.height = dims.second;
    view.x0 = parseCoord(rest.substr(0, comma));
    view.y0 = parseCoord(rest.substr(comma + 1));
    if (share_text.empty()) {
        view.hbmShare = static_cast<double>(view.width * view.height) /
                        static_cast<double>(system.engines());
    } else {
        double share = 0.0;
        std::size_t used = 0;
        try {
            share = std::stod(share_text, &used);
        } catch (const std::exception &) {
            used = 0;
        }
        if (used != share_text.size() || !std::isfinite(share) ||
            share <= 0.0 || share > 1.0) {
            throw UsageError("--submesh share '" + share_text +
                             "' must be a number in (0, 1]");
        }
        view.hbmShare = share;
    }
    return view;
}

/** Split a `--submesh` flag on ';' and parse each entry. */
std::vector<ad::sim::MeshView>
parseSubmeshes(const std::string &text,
               const ad::sim::SystemConfig &system)
{
    std::vector<ad::sim::MeshView> views;
    if (text.empty())
        return views;
    std::size_t pos = 0;
    while (true) {
        const auto end = text.find(';', pos);
        const std::string entry = end == std::string::npos
                                      ? text.substr(pos)
                                      : text.substr(pos, end - pos);
        if (entry.empty())
            throw UsageError("--submesh has an empty entry in '" + text +
                             "'");
        views.push_back(parseSubmeshEntry(entry, system));
        if (end == std::string::npos)
            break;
        pos = end + 1;
    }
    return views;
}

/**
 * Multi-tenant serving: generate a seeded arrival trace over the
 * requested workload mix and drive it through the ServeLoop (plan
 * cache, bounded admission queue, deadline-aware degradation, and —
 * with --submesh — SLO-class co-location on disjoint executor views).
 * Stdout — the per-pass summary and the serve.* metrics — is
 * deterministic: byte-identical for any --threads and across repeat
 * invocations. Wall time (the warm-cache speedup signal) goes to
 * stderr and the host.* metrics only.
 */
int
cmdServe(const Args &args)
{
    const std::string strategy = canonicalStrategy(args);
    const auto system = systemFrom(args);

    const std::string kind = option(args, "kind", "poisson");
    if (kind != "poisson" && kind != "bursty") {
        throw UsageError("unknown --kind '" + kind +
                         "' (expected poisson or bursty)");
    }

    ad::serve::StreamOptions stream;
    stream.kind = ad::serve::arrivalKindFromString(kind);
    stream.ratePerSec = numOption(args, "arrivals", 100.0, 0.001);
    stream.requests = static_cast<int>(
        intOption(args, "requests", 32, 1, 1'000'000));
    stream.seed = u64Option(args, "seed", 1);
    stream.deadlineMs = numOption(args, "deadline", 50.0, 0.0);
    stream.batch = static_cast<int>(intOption(args, "batch", 1, 1, 4096));
    stream.freqGhz = system.engine.freqGhz;
    const std::string mix_name = option(args, "model", "resnet50");
    stream.mix = ad::serve::resolveMix(mix_name);

    // SLO classes: the default single latency class replays the exact
    // historic single-stream trace (mixSeed keeps the raw seed for
    // lane 0), so `--class latency` is byte-compatible with old runs.
    const std::string cls = option(args, "class", "latency");
    if (cls != "latency" && cls != "batch" && cls != "both") {
        throw UsageError("unknown --class '" + cls +
                         "' (expected latency, batch, or both)");
    }
    std::vector<ad::serve::ClassTraffic> traffic;
    if (cls == "latency" || cls == "both")
        traffic.push_back({ad::serve::SloClass::Latency, stream});
    if (cls == "batch" || cls == "both") {
        ad::serve::StreamOptions batch_stream = stream;
        batch_stream.deadlineMs =
            numOption(args, "batch-deadline", 500.0, 0.0);
        traffic.push_back({ad::serve::SloClass::Batch, batch_stream});
    }
    const auto merged = ad::serve::generateClassArrivals(traffic);
    const auto &trace = merged.requests;

    ad::serve::ServeOptions serve_options;
    serve_options.strategy = strategy;
    serve_options.queueCapacity = static_cast<std::size_t>(
        intOption(args, "queue", 32, 1, 1'000'000));
    serve_options.storeDir = option(args, "store", "");
    serve_options.orchestrator = orchestratorFrom(args);
    serve_options.submeshes =
        parseSubmeshes(option(args, "submesh", ""), system);
    // Flag-derived validation findings are usage errors (exit 2);
    // everything else stays a ConfigError from the ServeLoop ctor.
    for (const auto &err : serve_options.validate(system)) {
        if (err.field.rfind("submeshes", 0) == 0)
            throw UsageError("--submesh: " + err.message);
    }
    ad::serve::ServeLoop loop(system, serve_options);

    ad::obs::TraceRecorder recorder;
    ad::obs::MetricsRegistry metrics;
    const std::string out = option(args, "out", "");
    ad::obs::Instrumentation ins{out.empty() ? nullptr : &recorder,
                                 &metrics};

    std::cout << "serving " << mix_name << " (" << merged.mix.size()
              << " workloads): " << trace.size() << " requests, "
              << ad::serve::arrivalKindName(stream.kind) << " @ "
              << ad::fmtDouble(stream.ratePerSec, 1) << "/s, seed "
              << stream.seed << ", strategy " << strategy << ", class "
              << cls << "\n";
    if (!serve_options.submeshes.empty()) {
        std::cout << "sub-meshes:";
        for (const auto &v : serve_options.submeshes) {
            std::cout << " "
                      << v.resolved(system.meshX, system.meshY)
                             .describe();
        }
        std::cout << "\n";
    }

    const int repeat =
        static_cast<int>(intOption(args, "repeat", 1, 1, 1'000'000));
    for (int pass = 1; pass <= repeat; ++pass) {
        const auto report = loop.run(trace, merged.mix, &ins);
        std::cout << "pass " << pass << ": admitted " << report.admitted
                  << ", rejected " << report.rejected
                  << ", deadline-miss " << report.deadlineMisses
                  << ", downgraded "
                  << report.downgradedCached + report.downgradedFresh
                  << ", cache " << report.cacheHits << "/"
                  << report.cacheHits + report.cacheMisses << ", p50 "
                  << ad::fmtDouble(report.p50LatencyMs, 3) << " ms, p99 "
                  << ad::fmtDouble(report.p99LatencyMs, 3) << " ms, "
                  << ad::fmtDouble(report.throughputRps, 1) << " rps\n";
        for (const auto &cr : report.classes) {
            std::cout << "  class " << ad::serve::sloClassName(cr.slo)
                      << ": completed " << cr.completed
                      << ", deadline-miss " << cr.deadlineMisses
                      << ", preempted " << cr.preemptions << ", p50 "
                      << ad::fmtDouble(cr.p50LatencyMs, 3)
                      << " ms, p99 "
                      << ad::fmtDouble(cr.p99LatencyMs, 3) << " ms, "
                      << ad::fmtDouble(cr.throughputRps, 1) << " rps\n";
        }
        std::cerr << "pass " << pass << " planning wall: "
                  << ad::fmtDouble(report.planWallSeconds, 3) << " s\n";
    }
    if (const ad::serve::PlanStore *store = loop.store()) {
        // Counters only — deterministic, so this line is safe to diff
        // across --threads values and process restarts.
        const auto ss = store->stats();
        std::cout << "store " << store->directory() << ": hydrated "
                  << ss.hits << ", missed " << ss.misses << ", corrupt "
                  << ss.corrupt << ", wrote " << ss.writes << "\n";
    }
    std::cout << metrics.renderText("host.");
    if (!out.empty()) {
        writeFileOrFatal(out, recorder.perfettoJson());
        std::cerr << "wrote " << recorder.eventCount()
                  << " trace events to " << out << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                      std::strcmp(argv[1], "-h") == 0 ||
                      std::strcmp(argv[1], "help") == 0)) {
        std::cout << usageText();
        return 0;
    }
    try {
        const Args args = parse(argc, argv);
        applyThreads(args);
        if (args.command == "models")
            return cmdModels();
        if (args.command == "run")
            return cmdRun(args);
        if (args.command == "compare")
            return cmdCompare(args);
        if (args.command == "trace")
            return cmdTrace(args);
        if (args.command == "profile")
            return cmdProfile(args);
        if (args.command == "export")
            return cmdExport(args);
        if (args.command == "serve")
            return cmdServe(args);
        return cmdValidate(args);
    } catch (const UsageError &e) {
        const std::string what = e.what();
        std::cerr << what;
        if (what.empty() || what.back() != '\n')
            std::cerr << '\n';
        return 2;
    } catch (const std::exception &e) {
        std::cerr << e.what() << "\n";
        return 1;
    }
}
