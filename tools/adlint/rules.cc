#include "rules.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>

#include "model.hh"

namespace ad::lint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** True when s[pos..] starts the whole word @p word. */
bool
wordAt(const std::string &s, std::size_t pos, const std::string &word)
{
    if (s.compare(pos, word.size(), word) != 0)
        return false;
    if (pos > 0 && isIdentChar(s[pos - 1]))
        return false;
    const std::size_t end = pos + word.size();
    return end >= s.size() || !isIdentChar(s[end]);
}

/** pos at '<': index one past the matching '>', or npos. */
std::size_t
matchAngles(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == '<') {
            ++depth;
        } else if (s[i] == '>') {
            if (--depth == 0)
                return i + 1;
        } else if (s[i] == ';' || s[i] == '{') {
            return std::string::npos; // not a template argument list
        }
    }
    return std::string::npos;
}

/** pos at '(': index one past the matching ')', or npos. */
std::size_t
matchParens(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == '(') {
            ++depth;
        } else if (s[i] == ')') {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

/** pos at '{': index one past the matching '}', or npos. */
std::size_t
matchBraces(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == '{') {
            ++depth;
        } else if (s[i] == '}') {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

/** Every identifier token in @p s. */
std::vector<std::string>
identifiersIn(const std::string &s)
{
    std::vector<std::string> ids;
    std::size_t i = 0;
    while (i < s.size()) {
        if (isIdentChar(s[i]) &&
            !std::isdigit(static_cast<unsigned char>(s[i]))) {
            std::size_t j = i;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            ids.push_back(s.substr(i, j - i));
            i = j;
        } else {
            ++i;
        }
    }
    return ids;
}

/** Disposition of an allowlist marker near a finding. */
enum class Allow { None, Justified, Unjustified };

/**
 * Look for `adlint: <rule>-ok` on the finding's line or the two lines
 * above it (raw text, so the marker lives in a comment). A marker must
 * carry a justification — some non-empty text after the `-ok` token —
 * to actually suppress.
 */
Allow
allowlistState(const std::string &raw,
               const std::vector<std::size_t> &starts, int line,
               const std::string &rule)
{
    const std::string marker = "adlint: " + rule + "-ok";
    for (int l = std::max(1, line - 2); l <= line; ++l) {
        const std::size_t begin = starts[static_cast<std::size_t>(l - 1)];
        const std::size_t end = static_cast<std::size_t>(l) < starts.size()
                                    ? starts[static_cast<std::size_t>(l)]
                                    : raw.size();
        const std::string text = raw.substr(begin, end - begin);
        const std::size_t at = text.find(marker);
        if (at == std::string::npos)
            continue;
        // Justification: anything word-like after the marker (skipping
        // punctuation/dashes), on this line or continued on the next.
        std::string rest = text.substr(at + marker.size());
        if (l < line ||
            rest.find_first_not_of(" \t\r\n-:,.") != std::string::npos) {
            bool has_word = false;
            for (char c : rest) {
                if (isIdentChar(c)) {
                    has_word = true;
                    break;
                }
            }
            if (!has_word && l < static_cast<int>(starts.size())) {
                // Marker at end of line: justification may continue on
                // the following comment line.
                const std::size_t nb =
                    starts[static_cast<std::size_t>(l)];
                const std::size_t ne =
                    static_cast<std::size_t>(l + 1) < starts.size()
                        ? starts[static_cast<std::size_t>(l + 1)]
                        : raw.size();
                const std::string next = raw.substr(nb, ne - nb);
                if (next.find("//") != std::string::npos)
                    has_word = true;
            }
            if (has_word)
                return Allow::Justified;
        }
        return Allow::Unjustified;
    }
    return Allow::None;
}

/** Context shared by every rule while linting one file. */
struct FileCtx
{
    const std::string &path;
    const std::string &raw;
    const std::string &code; ///< comments/strings masked out
    const std::vector<std::size_t> &starts;
    const ProjectModel &project;
    const FileModel &model;
    std::vector<Finding> &findings;

    void
    report(std::size_t pos, const std::string &rule,
           const std::string &message)
    {
        const int line = lineOf(starts, pos);
        switch (allowlistState(raw, starts, line, rule)) {
          case Allow::Justified:
            return;
          case Allow::Unjustified:
            findings.push_back(
                {path, line, "allowlist-justification",
                 "allowlist marker for '" + rule +
                     "' lacks a justification; say why the exemption "
                     "is order-insensitive/safe"});
            return;
          case Allow::None:
            findings.push_back({path, line, rule, message});
            return;
        }
    }
};

bool
isUnorderedName(const FileCtx &ctx, const std::string &id)
{
    return std::find(ctx.project.unorderedNames.begin(),
                     ctx.project.unorderedNames.end(),
                     id) != ctx.project.unorderedNames.end();
}

/**
 * unordered-iter: range-for whose sequence expression mentions an
 * unordered container (by declared-name lookup or literally), and
 * `.begin()` / `.cbegin()` on a known unordered name (iterator loops
 * and order-sensitive algorithm calls).
 */
void
ruleUnorderedIter(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (std::size_t i = 0; i + 3 < code.size(); ++i) {
        if (!wordAt(code, i, "for"))
            continue;
        std::size_t open = code.find_first_not_of(" \t\n", i + 3);
        if (open == std::string::npos || code[open] != '(')
            continue;
        const std::size_t close = matchParens(code, open);
        if (close == std::string::npos)
            continue;
        const std::string header =
            code.substr(open + 1, close - open - 2);
        // Top-level ':' (not '::') separates decl from sequence expr.
        int depth = 0;
        std::size_t colon = std::string::npos;
        for (std::size_t k = 0; k < header.size(); ++k) {
            const char c = header[k];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                --depth;
            } else if (c == ':' && depth == 0) {
                const bool dbl =
                    (k + 1 < header.size() && header[k + 1] == ':') ||
                    (k > 0 && header[k - 1] == ':');
                if (!dbl) {
                    colon = k;
                    break;
                }
            } else if (c == ';') {
                break; // classic three-clause for
            }
        }
        if (colon == std::string::npos)
            continue;
        const std::string expr = header.substr(colon + 1);
        bool hit = expr.find("unordered_") != std::string::npos;
        if (!hit) {
            for (const std::string &id : identifiersIn(expr)) {
                if (isUnorderedName(ctx, id)) {
                    hit = true;
                    break;
                }
            }
        }
        if (hit) {
            ctx.report(
                i, "unordered-iter",
                "iteration over an unordered container: hash-table "
                "order leaks into the loop's result (sort the keys "
                "first, or allowlist with a justification)");
        }
    }

    for (const std::string &name : ctx.project.unorderedNames) {
        for (const char *method : {".begin(", ".cbegin("}) {
            const std::string pat = name + method;
            std::size_t at = 0;
            while ((at = code.find(pat, at)) != std::string::npos) {
                if (at == 0 || !isIdentChar(code[at - 1])) {
                    ctx.report(
                        at, "unordered-iter",
                        "'" + name +
                            method +
                            ")': iterating an unordered container "
                            "feeds hash-table order into the caller");
                }
                at += pat.size();
            }
        }
    }
}

/** raw-rand: C randomness, random_device, and wall-clock seeding. */
void
ruleRawRand(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (wordAt(code, i, "rand") || wordAt(code, i, "srand")) {
            // Only calls: `rand (` — not declarations of other `rand`
            // members (none exist in-tree, but keep the rule precise).
            std::size_t j = i + (wordAt(code, i, "srand") ? 5 : 4);
            j = code.find_first_not_of(" \t", j);
            if (j != std::string::npos && code[j] == '(' &&
                (i == 0 || code[i - 1] != '.')) {
                ctx.report(
                    i, "raw-rand",
                    "rand()/srand(): unseeded global randomness; use "
                    "an explicitly seeded ad::Rng");
            }
        }
        if (wordAt(code, i, "random_device")) {
            ctx.report(
                i, "raw-rand",
                "std::random_device: non-deterministic entropy source; "
                "use an explicitly seeded ad::Rng");
        }
    }
    // Wall-clock seeding: an RNG constructor/seed and a time source on
    // the same statement line.
    for (std::size_t l = 0; l < ctx.starts.size(); ++l) {
        const std::size_t begin = ctx.starts[l];
        const std::size_t end = l + 1 < ctx.starts.size()
                                    ? ctx.starts[l + 1]
                                    : code.size();
        const std::string text = code.substr(begin, end - begin);
        const bool rng = text.find("mt19937") != std::string::npos ||
                         text.find(".seed(") != std::string::npos ||
                         text.find("Rng(") != std::string::npos;
        const bool clock = text.find("time(") != std::string::npos ||
                           text.find("now()") != std::string::npos;
        if (rng && clock) {
            ctx.report(begin, "raw-rand",
                       "time-seeded RNG: wall-clock seeds make runs "
                       "irreproducible; seed from configuration");
        }
    }
}

/** pointer-key: pointer-typed map/set keys, and pointer->integer casts
 * (the usual smuggling route for address-based ordering). */
void
rulePointerKey(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    static const char *kContainers[] = {
        "map", "multimap", "set", "multiset",
        "unordered_map", "unordered_multimap",
        "unordered_set", "unordered_multiset"};
    for (std::size_t i = 0; i < code.size(); ++i) {
        for (const char *cont : kContainers) {
            const std::string word(cont);
            if (!wordAt(code, i, word))
                continue;
            const std::size_t lt = i + word.size();
            if (lt >= code.size() || code[lt] != '<')
                continue;
            // First template argument: up to a top-level ',' or '>'.
            int depth = 1;
            std::size_t k = lt + 1;
            std::string arg;
            for (; k < code.size() && depth > 0; ++k) {
                const char c = code[k];
                if (c == '<' || c == '(' || c == '[') {
                    ++depth;
                } else if (c == '>' || c == ')' || c == ']') {
                    --depth;
                } else if (c == ',' && depth == 1) {
                    break;
                }
                if (depth > 0)
                    arg += c;
            }
            while (!arg.empty() &&
                   std::isspace(static_cast<unsigned char>(arg.back())))
                arg.pop_back();
            if (!arg.empty() && arg.back() == '*') {
                ctx.report(
                    i, "pointer-key",
                    "pointer-typed " + word +
                        " key: address order varies run to run under "
                        "ASLR; key on a stable id instead");
            }
        }
    }
    for (const char *cast :
         {"reinterpret_cast<std::uintptr_t>", "reinterpret_cast<uintptr_t>",
          "reinterpret_cast<std::intptr_t>", "reinterpret_cast<intptr_t>"}) {
        std::size_t at = 0;
        const std::string pat(cast);
        while ((at = code.find(pat, at)) != std::string::npos) {
            ctx.report(at, "pointer-key",
                       "pointer cast to integer: using addresses as "
                       "keys or sort values is nondeterministic under "
                       "ASLR");
            at += pat.size();
        }
    }
}

/** hash-tiebreak: any direct std::hash use in scheduling-adjacent
 * code; its value is implementation-defined (and may be salted), so it
 * must never feed an ordering decision. */
void
ruleHashTiebreak(FileCtx &ctx)
{
    std::size_t at = 0;
    while ((at = ctx.code.find("std::hash<", at)) != std::string::npos) {
        ctx.report(at, "hash-tiebreak",
                   "std::hash is implementation-defined; derive "
                   "ordering/tie-breaks from stable ids, or use the "
                   "project's explicit FNV hash for caching only");
        at += 10;
    }
}

/**
 * fp-parallel-reduce: compound accumulation inside a parallelFor /
 * parallelMap lambda. Writes of the form `slot[i] op= ...` own their
 * index and are fine; anything else accumulates across iterations in
 * claim order — a data race, and for floating point an
 * order-dependent sum even with atomics.
 */
void
ruleFpParallelReduce(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const bool pfor = wordAt(code, i, "parallelFor");
        const bool pmap = wordAt(code, i, "parallelMap");
        if (!pfor && !pmap)
            continue;
        // Find the lambda body: first '{' after the call starts.
        const std::size_t brace = code.find('{', i);
        if (brace == std::string::npos)
            continue;
        const std::size_t end = matchBraces(code, brace);
        if (end == std::string::npos)
            continue;
        for (std::size_t k = brace; k + 1 < end; ++k) {
            const char c = code[k];
            if ((c != '+' && c != '-' && c != '*' && c != '/') ||
                code[k + 1] != '=' ||
                (k + 2 < end && code[k + 2] == '=')) {
                continue;
            }
            if (k > 0 && (code[k - 1] == c || code[k - 1] == '<' ||
                          code[k - 1] == '>')) {
                continue; // ++/--/<<=/>>= or shift
            }
            // LHS: from the previous statement boundary to the op.
            std::size_t b = k;
            while (b > brace && code[b - 1] != ';' &&
                   code[b - 1] != '{' && code[b - 1] != '}' &&
                   code[b - 1] != '(' && code[b - 1] != ',') {
                --b;
            }
            const std::string lhs = code.substr(b, k - b);
            if (lhs.find('[') != std::string::npos)
                continue; // indexed slot: owned by this iteration
            ctx.report(
                k, "fp-parallel-reduce",
                "compound accumulation inside a parallel region: "
                "claim-order reduction races and (for floating point) "
                "changes the sum; write per-index slots and reduce "
                "sequentially after the join");
        }
        i = brace;
    }
}

/**
 * wall-clock: direct std::chrono clock reads outside src/obs. Wall time
 * is inherently nondeterministic, so it must flow through the
 * quarantined obs::Stopwatch and land only in `host.*` metrics — never
 * in trace timestamps or anything a schedule depends on.
 */
void
ruleWallClock(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (const char *clock :
         {"steady_clock", "system_clock", "high_resolution_clock"}) {
        const std::string word(clock);
        std::size_t at = 0;
        while ((at = code.find(word, at)) != std::string::npos) {
            if (wordAt(code, at, word)) {
                ctx.report(
                    at, "wall-clock",
                    "std::chrono::" + word +
                        " outside src/obs: wall time is "
                        "nondeterministic; measure through "
                        "obs::Stopwatch and report it as a host.* "
                        "metric");
            }
            at += word.size();
        }
    }
}

/** True when @p path lives in the wall-clock quarantine (src/obs). */
bool
inObsQuarantine(const std::string &path)
{
    return path.find("src/obs/") != std::string::npos ||
           path.rfind("obs/", 0) == 0;
}

/** True when @p path lives in src/util (raw-lock quarantine: the
 * annotated Mutex/MutexLock wrappers themselves live there). */
bool
inUtilQuarantine(const std::string &path)
{
    return path.find("src/util/") != std::string::npos ||
           path.rfind("util/", 0) == 0;
}

/**
 * layer-conformance: includes must point at the same or a lower rank
 * in the declared layer manifest. An upward edge is either a layering
 * violation outright or one half of a cycle; both break the module DAG
 * that DESIGN.md documents and the build's link order assumes.
 */
void
ruleLayerConformance(FileCtx &ctx)
{
    const LayerManifest &manifest = ctx.project.layers;
    if (manifest.empty())
        return;
    const std::string mod = moduleOfPath(ctx.path, manifest);
    if (mod.empty())
        return; // outside the manifest (tools/, tests/, bench/)
    const int my_rank = manifest.rankOf(mod);
    for (const IncludeDecl &inc : ctx.model.includes) {
        if (!inc.quoted)
            continue;
        const std::size_t slash = inc.target.find('/');
        if (slash == std::string::npos)
            continue; // same-directory include
        const std::string head = inc.target.substr(0, slash);
        const int target_rank = manifest.rankOf(head);
        if (target_rank < 0 || head == mod)
            continue;
        if (target_rank > my_rank) {
            const std::size_t pos =
                ctx.starts[static_cast<std::size_t>(inc.line - 1)];
            ctx.report(
                pos, "layer-conformance",
                "'" + mod + "' (rank " + std::to_string(my_rank) +
                    ") includes \"" + inc.target + "\" from '" + head +
                    "' (rank " + std::to_string(target_rank) +
                    "): upward include breaks the declared module DAG "
                    "(tools/adlint/layers.txt)");
        }
    }
}

/**
 * enum-switch-default: a `default:` arm in a switch over a project
 * enum swallows `-Wswitch`, so a new enumerator (the SchedMode::Dtt
 * pattern) degrades to whatever the default does at runtime instead of
 * failing the build. Enumerate every case; put shared fallbacks after
 * the switch.
 */
void
ruleEnumSwitchDefault(FileCtx &ctx)
{
    for (const SwitchStmt &sw : ctx.model.switches) {
        if (!sw.hasDefault)
            continue;
        for (const std::string &e : sw.caseEnums) {
            if (std::find(ctx.project.enumNames.begin(),
                          ctx.project.enumNames.end(),
                          e) == ctx.project.enumNames.end())
                continue;
            ctx.report(
                sw.pos, "enum-switch-default",
                "switch over project enum '" + e +
                    "' carries a default: arm, which masks -Wswitch; "
                    "enumerate every case so a new enumerator is a "
                    "compile error, and hoist the fallback below the "
                    "switch");
            break;
        }
    }
}

/**
 * raw-lock: direct mutex manipulation outside src/util. Clang's
 * thread-safety analysis only tracks capabilities through annotated
 * types, so a bare `.lock()` / `std::lock_guard` is invisible to it —
 * use the annotated util::MutexLock RAII guard.
 */
void
ruleRawLock(FileCtx &ctx)
{
    const std::vector<Token> &toks = ctx.model.tokens;
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.kind != Token::Kind::Punct ||
            (t.text != "." && t.text != "->"))
            continue;
        const Token &m = toks[i + 1];
        if (m.kind != Token::Kind::Ident ||
            (m.text != "lock" && m.text != "unlock" &&
             m.text != "try_lock"))
            continue;
        if (toks[i + 2].text != "(")
            continue;
        ctx.report(m.pos, "raw-lock",
                   "direct ." + m.text +
                       "() outside src/util: invisible to "
                       "thread-safety analysis; hold the mutex through "
                       "the annotated util::MutexLock RAII guard");
    }
    for (const Token &t : toks) {
        if (t.kind != Token::Kind::Ident)
            continue;
        if (t.text == "lock_guard" || t.text == "unique_lock" ||
            t.text == "scoped_lock") {
            ctx.report(t.pos, "raw-lock",
                       "std::" + t.text +
                           " outside src/util: unannotated guards are "
                           "invisible to thread-safety analysis; use "
                           "util::MutexLock");
        }
    }
}

/** Spellings that mark an expression as 64-bit valued. */
const char *k64BitWords[] = {"int64_t",  "uint64_t", "size_t",
                             "intmax_t", "uintmax_t", "ptrdiff_t",
                             "Cycles",   "Bytes",     "MacCount"};

/** Narrow (<= 32-bit) cast targets, spelled without spaces/std::. */
bool
isNarrowCastTarget(std::string target)
{
    target.erase(std::remove_if(target.begin(), target.end(),
                                [](unsigned char c) {
                                    return std::isspace(c) != 0;
                                }),
                 target.end());
    if (target.rfind("std::", 0) == 0)
        target = target.substr(5);
    if (target.rfind("const", 0) == 0)
        target = target.substr(5);
    for (const char *t :
         {"int", "unsignedint", "unsigned", "short", "int8_t",
          "int16_t", "int32_t", "uint8_t", "uint16_t", "uint32_t",
          "LayerId", "AtomId", "EngineId", "char"}) {
        if (target == t)
            return true;
    }
    return false;
}

/**
 * Blank every `static_cast<NarrowType>(...)` span in @p expr: an
 * explicit narrowing cast is the sanctioned escape hatch, so whatever
 * 64-bit sources it wraps must not count as implicit narrowing.
 */
std::string
stripExplicitNarrowingCasts(std::string expr)
{
    std::size_t at = 0;
    while ((at = expr.find("static_cast", at)) != std::string::npos) {
        const std::size_t lt = at + 11;
        if (lt >= expr.size() || expr[lt] != '<') {
            at = lt;
            continue;
        }
        const std::size_t gt = matchAngles(expr, lt);
        if (gt == std::string::npos) {
            at = lt;
            continue;
        }
        const std::string target = expr.substr(lt + 1, gt - lt - 2);
        std::size_t open = expr.find_first_not_of(" \t\n", gt);
        if (open == std::string::npos || expr[open] != '(') {
            at = gt;
            continue;
        }
        const std::size_t close = matchParens(expr, open);
        if (close == std::string::npos) {
            at = gt;
            continue;
        }
        if (isNarrowCastTarget(target)) {
            for (std::size_t k = at; k < close; ++k) {
                if (expr[k] != '\n')
                    expr[k] = ' ';
            }
        }
        at = close;
    }
    return expr;
}

/** Blank every `[...]` span: a subscript's value has the container's
 * element type, which the model cannot know — the 64-bitness of the
 * *index* must not taint the expression. */
std::string
blankSubscripts(std::string expr)
{
    int depth = 0;
    for (char &c : expr) {
        if (c == '[') {
            ++depth;
            c = ' ';
        } else if (c == ']') {
            --depth;
            c = ' ';
        } else if (depth > 0 && c != '\n') {
            c = ' ';
        }
    }
    return expr;
}

/** True when @p expr is one call expression — `f(...)`, `std::f(...)`,
 * `obj.f(...)`, `p->f(...)` — whose parens consume the whole string.
 * The model cannot know a callee's return type, so such an expression
 * carries no knowable 64-bit source (`.size()` is special-cased by the
 * caller before this). */
bool
isSingleCallExpr(const std::string &expr)
{
    std::size_t i = expr.find_first_not_of(" \t\n");
    if (i == std::string::npos || !isIdentChar(expr[i]) ||
        std::isdigit(static_cast<unsigned char>(expr[i])))
        return false;
    while (i < expr.size()) {
        while (i < expr.size() && isIdentChar(expr[i]))
            ++i;
        while (i < expr.size() &&
               (expr[i] == ' ' || expr[i] == '\t' || expr[i] == '\n'))
            ++i;
        if (i >= expr.size())
            return false;
        if (expr[i] == '(') {
            const std::size_t close = matchParens(expr, i);
            if (close == std::string::npos)
                return false;
            return expr.find_first_not_of(" \t\n;", close) ==
                   std::string::npos;
        }
        // Qualification/member chains keep scanning toward the call.
        if (expr.compare(i, 2, "::") == 0 ||
            expr.compare(i, 2, "->") == 0) {
            i += 2;
        } else if (expr[i] == '.') {
            ++i;
        } else {
            return false;
        }
        while (i < expr.size() &&
               (expr[i] == ' ' || expr[i] == '\t' || expr[i] == '\n'))
            ++i;
        if (i >= expr.size() || !isIdentChar(expr[i]))
            return false;
    }
    return false;
}

/**
 * True when @p raw_expr (masked code) carries a 64-bit value: a
 * `.size()` call, a 64-bit type spelling, or an identifier declared
 * 64-bit in this file's model. Explicit narrowing casts and subscript
 * indices are stripped first; a lone call expression is unknowable and
 * counts as clean. An identifier only counts when it stands on its
 * own — not a member (`x.id`), not an object being accessed (`id.x`),
 * not a callee (`id(`), and not a shift count (`<< id`).
 */
bool
exprHas64BitSource(const FileCtx &ctx, const std::string &raw_expr)
{
    std::string expr = stripExplicitNarrowingCasts(raw_expr);
    if (expr.find(".size(") != std::string::npos ||
        expr.find("->size(") != std::string::npos)
        return true;
    if (isSingleCallExpr(expr))
        return false;
    expr = blankSubscripts(expr);
    for (const char *w : k64BitWords) {
        const std::string word(w);
        std::size_t at = 0;
        while ((at = expr.find(word, at)) != std::string::npos) {
            if (wordAt(expr, at, word))
                return true;
            at += word.size();
        }
    }
    std::size_t i = 0;
    while (i < expr.size()) {
        if (!isIdentChar(expr[i]) ||
            std::isdigit(static_cast<unsigned char>(expr[i]))) {
            // Skip whole number tokens (hex literals contain letters).
            while (i < expr.size() && isIdentChar(expr[i]))
                ++i;
            ++i;
            continue;
        }
        std::size_t j = i;
        while (j < expr.size() && isIdentChar(expr[j]))
            ++j;
        const std::string id = expr.substr(i, j - i);
        // Context before: member/qualified name, or a shift count.
        std::size_t b = i;
        while (b > 0 && (expr[b - 1] == ' ' || expr[b - 1] == '\t' ||
                         expr[b - 1] == '\n'))
            --b;
        // A comparison's operands yield a bool, not their own width
        // (sub-check (c) owns mixed-sign comparisons); a shift *count*
        // does not widen either. Single '<'/'>' must not be confused
        // with '<<'/'>>' — shifting a 64-bit value stays 64-bit.
        const bool member_or_shift =
            (b > 0 && expr[b - 1] == '.') ||
            (b > 1 && (expr.compare(b - 2, 2, "->") == 0 ||
                       expr.compare(b - 2, 2, "::") == 0 ||
                       expr.compare(b - 2, 2, "<<") == 0 ||
                       expr.compare(b - 2, 2, ">>") == 0 ||
                       expr.compare(b - 2, 2, "==") == 0 ||
                       expr.compare(b - 2, 2, "!=") == 0 ||
                       expr.compare(b - 2, 2, "<=") == 0 ||
                       expr.compare(b - 2, 2, ">=") == 0)) ||
            (b > 0 && (expr[b - 1] == '<' || expr[b - 1] == '>') &&
             !(b > 1 && (expr[b - 2] == '<' || expr[b - 2] == '>' ||
                         expr[b - 2] == '-')));
        // Context after: callee, object-being-accessed, or the left
        // operand of a comparison.
        std::size_t a = j;
        while (a < expr.size() &&
               (expr[a] == ' ' || expr[a] == '\t' || expr[a] == '\n'))
            ++a;
        const bool two_after =
            a + 1 < expr.size() &&
            (expr.compare(a, 2, "->") == 0 ||
             expr.compare(a, 2, "::") == 0 ||
             expr.compare(a, 2, "==") == 0 ||
             expr.compare(a, 2, "!=") == 0 ||
             expr.compare(a, 2, "<=") == 0 ||
             expr.compare(a, 2, ">=") == 0);
        const bool cmp_after =
            a < expr.size() &&
            (expr[a] == '<' || expr[a] == '>') &&
            !(a + 1 < expr.size() &&
              (expr[a + 1] == '<' || expr[a + 1] == '>'));
        const bool object_or_call =
            (a < expr.size() &&
             (expr[a] == '(' || expr[a] == '.')) ||
            two_after || cmp_after;
        if (!member_or_shift && !object_or_call) {
            int width = 0;
            bool is_signed = false;
            if (ctx.model.lookupInt(id, &width, &is_signed) &&
                width == 64)
                return true;
        }
        i = j;
    }
    return false;
}

/**
 * integer-narrowing: the paper's cycle/byte arithmetic is 64-bit end
 * to end (`Cycles`, `Bytes`, `MacCount` in util/common.hh); one silent
 * truncation corrupts a plan without any test noticing. Three shapes:
 *
 *  (a) a 32-bit variable assigned or initialized from an expression
 *      carrying a 64-bit source;
 *  (b) a 32-bit loop counter whose bound iterates a 64-bit extent;
 *  (c) a comparison between two declared integers of opposite
 *      signedness.
 *
 * `static_cast` to the narrow type is the explicit escape; pair it
 * with a comment justifying why the value fits.
 */
void
ruleIntegerNarrowing(FileCtx &ctx)
{
    const std::vector<Token> &toks = ctx.model.tokens;

    // (a) `narrow = expr64` — declarations and assignments alike.
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident ||
            toks[i + 1].text != "=")
            continue;
        if (i > 0 && (toks[i - 1].text == "." ||
                      toks[i - 1].text == "->" ||
                      toks[i - 1].text == "::"))
            continue; // member of something we did not declare
        int width = 0;
        bool is_signed = false;
        if (!ctx.model.lookupInt(toks[i].text, &width, &is_signed) ||
            width != 32)
            continue;
        // RHS span: to the next `;` or top-level `,`/`)` in the code.
        std::size_t j = i + 2;
        int depth = 0;
        while (j < toks.size()) {
            const std::string &s = toks[j].text;
            if (s == "(" || s == "[" || s == "{") {
                ++depth;
            } else if (s == ")" || s == "]" || s == "}") {
                if (depth == 0)
                    break;
                --depth;
            } else if (depth == 0 && (s == ";" || s == ",")) {
                break;
            }
            ++j;
        }
        if (j <= i + 2 || j >= toks.size())
            continue;
        const std::size_t begin = toks[i + 2].pos;
        const std::size_t end = toks[j].pos;
        if (exprHas64BitSource(ctx,
                               ctx.code.substr(begin, end - begin))) {
            ctx.report(
                toks[i].pos, "integer-narrowing",
                "64-bit value narrows implicitly into 32-bit '" +
                    toks[i].text +
                    "': widen the variable or make the truncation "
                    "explicit with static_cast and a justifying "
                    "comment");
        }
    }

    // (b) `for (int i = ...; i < extent64; ...)`.
    std::vector<std::pair<std::size_t, std::size_t>> flagged_conds;
    for (std::size_t i = 0; i + 4 < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident || toks[i].text != "for")
            continue;
        if (toks[i + 1].text != "(")
            continue;
        std::size_t j = i + 2;
        while (j < toks.size() &&
               (toks[j].text == "const" || toks[j].text == "auto"))
            ++j;
        if (j >= toks.size() || toks[j].kind != Token::Kind::Ident)
            continue;
        std::string type = toks[j].text;
        if (type == "std" && j + 2 < toks.size() &&
            toks[j + 1].text == "::") {
            j += 2;
            type = toks[j].text;
        }
        if (type != "int" && type != "short" && type != "int32_t" &&
            type != "uint32_t" && type != "unsigned" &&
            type != "int16_t" && type != "uint16_t")
            continue;
        const std::string counter =
            (j + 1 < toks.size() &&
             toks[j + 1].kind == Token::Kind::Ident)
                ? toks[j + 1].text
                : std::string();
        // First `;` at paren depth 1, then the condition up to the
        // second one.
        int depth = 1;
        std::size_t semi1 = 0, semi2 = 0;
        for (std::size_t k = i + 2; k < toks.size() && depth > 0; ++k) {
            const std::string &s = toks[k].text;
            if (s == "(") {
                ++depth;
            } else if (s == ")") {
                --depth;
            } else if (s == ";" && depth == 1) {
                if (!semi1) {
                    semi1 = k;
                } else {
                    semi2 = k;
                    break;
                }
            }
        }
        if (!semi1 || !semi2 || semi2 <= semi1 + 1)
            continue;
        const std::size_t begin = toks[semi1 + 1].pos;
        const std::size_t end = toks[semi2].pos;
        std::string cond = ctx.code.substr(begin, end - begin);
        // The counter itself is declared narrow right here; only
        // *other* 64-bit sources in the bound matter.
        if (!counter.empty()) {
            std::size_t at = 0;
            while ((at = cond.find(counter, at)) != std::string::npos) {
                if (wordAt(cond, at, counter)) {
                    for (std::size_t k = 0; k < counter.size(); ++k)
                        cond[at + k] = ' ';
                }
                at += counter.size();
            }
        }
        if (exprHas64BitSource(ctx, cond)) {
            flagged_conds.emplace_back(semi1 + 1, semi2);
            ctx.report(
                toks[i].pos, "integer-narrowing",
                "32-bit loop counter iterates a 64-bit extent: the "
                "index wraps before the bound is reached; use "
                "std::size_t or std::int64_t (or cast the bound "
                "explicitly)");
        }
    }

    // (c) signed/unsigned comparison between declared integers.
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        const Token &a = toks[i];
        const Token &op = toks[i + 1];
        const Token &b = toks[i + 2];
        if (a.kind != Token::Kind::Ident ||
            b.kind != Token::Kind::Ident)
            continue;
        if (op.text != "<" && op.text != ">" && op.text != "<=" &&
            op.text != ">=" && op.text != "==" && op.text != "!=")
            continue;
        if (i > 0 && (toks[i - 1].text == "." ||
                      toks[i - 1].text == "->" ||
                      toks[i - 1].text == "::" ||
                      toks[i - 1].kind == Token::Kind::Ident))
            continue;
        if (i + 3 < toks.size() &&
            (toks[i + 3].text == "." || toks[i + 3].text == "->" ||
             toks[i + 3].text == "::" || toks[i + 3].text == "("))
            continue;
        bool covered = false;
        for (const auto &[lo, hi] : flagged_conds) {
            if (i + 1 >= lo && i + 1 < hi) {
                covered = true; // already reported as a loop bound
                break;
            }
        }
        if (covered)
            continue;
        int wa = 0, wb = 0;
        bool sa = false, sb = false;
        if (!ctx.model.lookupInt(a.text, &wa, &sa) ||
            !ctx.model.lookupInt(b.text, &wb, &sb))
            continue;
        if (sa == sb)
            continue;
        ctx.report(op.pos, "integer-narrowing",
                   "signed/unsigned comparison between '" + a.text +
                       "' and '" + b.text +
                       "': the signed side converts modulo 2^N; cast "
                       "one side explicitly");
    }
}

} // namespace

std::vector<std::string>
ruleNames()
{
    return {"unordered-iter",     "raw-rand",
            "pointer-key",        "hash-tiebreak",
            "fp-parallel-reduce", "wall-clock",
            "layer-conformance",  "integer-narrowing",
            "enum-switch-default", "raw-lock",
            "allowlist-justification"};
}

void
collectProjectFacts(const std::string &content, ProjectModel &project)
{
    const std::string code = maskCommentsAndStrings(content);
    const std::vector<std::size_t> starts = lineStarts(content);

    // Unordered-container names (pass 1 of unordered-iter).
    for (std::size_t i = 0; i < code.size(); ++i) {
        const bool m = wordAt(code, i, "unordered_map") ||
                       wordAt(code, i, "unordered_multimap");
        const bool s = wordAt(code, i, "unordered_set") ||
                       wordAt(code, i, "unordered_multiset");
        if (!m && !s)
            continue;
        std::size_t lt = i + 13; // both prefixes same length
        while (lt < code.size() && isIdentChar(code[lt]))
            ++lt; // cover the multimap/multiset suffix
        if (lt >= code.size() || code[lt] != '<') {
            i = lt;
            continue;
        }
        const std::size_t after = matchAngles(code, lt);
        if (after == std::string::npos) {
            i = lt;
            continue;
        }
        // Declared name: the next identifier after the template args,
        // skipping refs/pointers/whitespace. `>::iterator`, `>()` and
        // `> {` have none.
        std::size_t k = after;
        while (k < code.size() &&
               (code[k] == ' ' || code[k] == '\t' || code[k] == '\n' ||
                code[k] == '&' || code[k] == '*')) {
            ++k;
        }
        if (k < code.size() && isIdentChar(code[k]) &&
            !std::isdigit(static_cast<unsigned char>(code[k]))) {
            std::size_t e = k;
            while (e < code.size() && isIdentChar(code[e]))
                ++e;
            const std::string name = code.substr(k, e - k);
            if (name != "const" &&
                std::find(project.unorderedNames.begin(),
                          project.unorderedNames.end(),
                          name) == project.unorderedNames.end()) {
                project.unorderedNames.push_back(name);
            }
        }
        i = after;
    }

    // Project enum names (pass 1 of enum-switch-default).
    const FileModel fm = buildFileModel("", content, code, starts);
    for (const EnumDecl &e : fm.enums) {
        if (std::find(project.enumNames.begin(), project.enumNames.end(),
                      e.name) == project.enumNames.end())
            project.enumNames.push_back(e.name);
    }
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content,
            const ProjectModel &project)
{
    const std::string code = maskCommentsAndStrings(content);
    const std::vector<std::size_t> starts = lineStarts(content);
    const FileModel model = buildFileModel(path, content, code, starts);
    std::vector<Finding> findings;
    FileCtx ctx{path, content, code, starts, project, model, findings};

    ruleUnorderedIter(ctx);
    ruleRawRand(ctx);
    rulePointerKey(ctx);
    ruleHashTiebreak(ctx);
    ruleFpParallelReduce(ctx);
    if (!inObsQuarantine(path))
        ruleWallClock(ctx);
    ruleLayerConformance(ctx);
    ruleEnumSwitchDefault(ctx);
    if (!inUtilQuarantine(path))
        ruleRawLock(ctx);
    ruleIntegerNarrowing(ctx);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    findings.erase(std::unique(findings.begin(), findings.end(),
                               [](const Finding &a, const Finding &b) {
                                   return a.line == b.line &&
                                          a.rule == b.rule &&
                                          a.message == b.message;
                               }),
                   findings.end());
    return findings;
}

} // namespace ad::lint
