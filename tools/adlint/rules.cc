#include "rules.hh"

#include <algorithm>
#include <cctype>
#include <cstddef>

namespace ad::lint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/**
 * Replace the contents of comments, string literals, and character
 * literals with spaces (newlines preserved), so the rule matchers never
 * fire on prose or quoted text. Allowlist markers are read from the raw
 * text separately.
 */
std::string
maskCommentsAndStrings(const std::string &s)
{
    std::string out = s;
    enum class State { Code, Line, Block, Str, Chr } st = State::Code;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        const char n = i + 1 < s.size() ? s[i + 1] : '\0';
        switch (st) {
          case State::Code:
            if (c == '/' && n == '/') {
                st = State::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = State::Block;
                out[i] = ' ';
            } else if (c == '"') {
                st = State::Str;
            } else if (c == '\'') {
                st = State::Chr;
            }
            break;
          case State::Line:
            if (c == '\n')
                st = State::Code;
            else
                out[i] = ' ';
            break;
          case State::Block:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Str:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Chr:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

/** Byte offset of the start of every line, for offset -> line mapping. */
std::vector<std::size_t>
lineStarts(const std::string &s)
{
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\n')
            starts.push_back(i + 1);
    }
    return starts;
}

int
lineOf(const std::vector<std::size_t> &starts, std::size_t pos)
{
    const auto it =
        std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<int>(it - starts.begin());
}

/** True when s[pos..] starts the whole word @p word. */
bool
wordAt(const std::string &s, std::size_t pos, const std::string &word)
{
    if (s.compare(pos, word.size(), word) != 0)
        return false;
    if (pos > 0 && isIdentChar(s[pos - 1]))
        return false;
    const std::size_t end = pos + word.size();
    return end >= s.size() || !isIdentChar(s[end]);
}

/** pos at '<': index one past the matching '>', or npos. */
std::size_t
matchAngles(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == '<') {
            ++depth;
        } else if (s[i] == '>') {
            if (--depth == 0)
                return i + 1;
        } else if (s[i] == ';' || s[i] == '{') {
            return std::string::npos; // not a template argument list
        }
    }
    return std::string::npos;
}

/** pos at '(': index one past the matching ')', or npos. */
std::size_t
matchParens(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == '(') {
            ++depth;
        } else if (s[i] == ')') {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

/** pos at '{': index one past the matching '}', or npos. */
std::size_t
matchBraces(const std::string &s, std::size_t pos)
{
    int depth = 0;
    for (std::size_t i = pos; i < s.size(); ++i) {
        if (s[i] == '{') {
            ++depth;
        } else if (s[i] == '}') {
            if (--depth == 0)
                return i + 1;
        }
    }
    return std::string::npos;
}

/** Every identifier token in @p s. */
std::vector<std::string>
identifiersIn(const std::string &s)
{
    std::vector<std::string> ids;
    std::size_t i = 0;
    while (i < s.size()) {
        if (isIdentChar(s[i]) &&
            !std::isdigit(static_cast<unsigned char>(s[i]))) {
            std::size_t j = i;
            while (j < s.size() && isIdentChar(s[j]))
                ++j;
            ids.push_back(s.substr(i, j - i));
            i = j;
        } else {
            ++i;
        }
    }
    return ids;
}

/** Disposition of an allowlist marker near a finding. */
enum class Allow { None, Justified, Unjustified };

/**
 * Look for `adlint: <rule>-ok` on the finding's line or the two lines
 * above it (raw text, so the marker lives in a comment). A marker must
 * carry a justification — some non-empty text after the `-ok` token —
 * to actually suppress.
 */
Allow
allowlistState(const std::string &raw,
               const std::vector<std::size_t> &starts, int line,
               const std::string &rule)
{
    const std::string marker = "adlint: " + rule + "-ok";
    for (int l = std::max(1, line - 2); l <= line; ++l) {
        const std::size_t begin = starts[static_cast<std::size_t>(l - 1)];
        const std::size_t end = static_cast<std::size_t>(l) < starts.size()
                                    ? starts[static_cast<std::size_t>(l)]
                                    : raw.size();
        const std::string text = raw.substr(begin, end - begin);
        const std::size_t at = text.find(marker);
        if (at == std::string::npos)
            continue;
        // Justification: anything word-like after the marker (skipping
        // punctuation/dashes), on this line or continued on the next.
        std::string rest = text.substr(at + marker.size());
        if (l < line ||
            rest.find_first_not_of(" \t\r\n-:,.") != std::string::npos) {
            bool has_word = false;
            for (char c : rest) {
                if (isIdentChar(c)) {
                    has_word = true;
                    break;
                }
            }
            if (!has_word && l < static_cast<int>(starts.size())) {
                // Marker at end of line: justification may continue on
                // the following comment line.
                const std::size_t nb =
                    starts[static_cast<std::size_t>(l)];
                const std::size_t ne =
                    static_cast<std::size_t>(l + 1) < starts.size()
                        ? starts[static_cast<std::size_t>(l + 1)]
                        : raw.size();
                const std::string next = raw.substr(nb, ne - nb);
                if (next.find("//") != std::string::npos)
                    has_word = true;
            }
            if (has_word)
                return Allow::Justified;
        }
        return Allow::Unjustified;
    }
    return Allow::None;
}

/** Context shared by every rule while linting one file. */
struct FileCtx
{
    const std::string &path;
    const std::string &raw;
    const std::string &code; ///< comments/strings masked out
    const std::vector<std::size_t> &starts;
    const std::vector<std::string> &unorderedNames;
    std::vector<Finding> &findings;

    void
    report(std::size_t pos, const std::string &rule,
           const std::string &message)
    {
        const int line = lineOf(starts, pos);
        switch (allowlistState(raw, starts, line, rule)) {
          case Allow::Justified:
            return;
          case Allow::Unjustified:
            findings.push_back(
                {path, line, "allowlist-justification",
                 "allowlist marker for '" + rule +
                     "' lacks a justification; say why the exemption "
                     "is order-insensitive/safe"});
            return;
          case Allow::None:
            findings.push_back({path, line, rule, message});
            return;
        }
    }
};

bool
isUnorderedName(const FileCtx &ctx, const std::string &id)
{
    return std::find(ctx.unorderedNames.begin(),
                     ctx.unorderedNames.end(),
                     id) != ctx.unorderedNames.end();
}

/**
 * unordered-iter: range-for whose sequence expression mentions an
 * unordered container (by declared-name lookup or literally), and
 * `.begin()` / `.cbegin()` on a known unordered name (iterator loops
 * and order-sensitive algorithm calls).
 */
void
ruleUnorderedIter(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (std::size_t i = 0; i + 3 < code.size(); ++i) {
        if (!wordAt(code, i, "for"))
            continue;
        std::size_t open = code.find_first_not_of(" \t\n", i + 3);
        if (open == std::string::npos || code[open] != '(')
            continue;
        const std::size_t close = matchParens(code, open);
        if (close == std::string::npos)
            continue;
        const std::string header =
            code.substr(open + 1, close - open - 2);
        // Top-level ':' (not '::') separates decl from sequence expr.
        int depth = 0;
        std::size_t colon = std::string::npos;
        for (std::size_t k = 0; k < header.size(); ++k) {
            const char c = header[k];
            if (c == '(' || c == '[' || c == '{') {
                ++depth;
            } else if (c == ')' || c == ']' || c == '}') {
                --depth;
            } else if (c == ':' && depth == 0) {
                const bool dbl =
                    (k + 1 < header.size() && header[k + 1] == ':') ||
                    (k > 0 && header[k - 1] == ':');
                if (!dbl) {
                    colon = k;
                    break;
                }
            } else if (c == ';') {
                break; // classic three-clause for
            }
        }
        if (colon == std::string::npos)
            continue;
        const std::string expr = header.substr(colon + 1);
        bool hit = expr.find("unordered_") != std::string::npos;
        if (!hit) {
            for (const std::string &id : identifiersIn(expr)) {
                if (isUnorderedName(ctx, id)) {
                    hit = true;
                    break;
                }
            }
        }
        if (hit) {
            ctx.report(
                i, "unordered-iter",
                "iteration over an unordered container: hash-table "
                "order leaks into the loop's result (sort the keys "
                "first, or allowlist with a justification)");
        }
    }

    for (const std::string &name : ctx.unorderedNames) {
        for (const char *method : {".begin(", ".cbegin("}) {
            const std::string pat = name + method;
            std::size_t at = 0;
            while ((at = code.find(pat, at)) != std::string::npos) {
                if (at == 0 || !isIdentChar(code[at - 1])) {
                    ctx.report(
                        at, "unordered-iter",
                        "'" + name +
                            method +
                            ")': iterating an unordered container "
                            "feeds hash-table order into the caller");
                }
                at += pat.size();
            }
        }
    }
}

/** raw-rand: C randomness, random_device, and wall-clock seeding. */
void
ruleRawRand(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        if (wordAt(code, i, "rand") || wordAt(code, i, "srand")) {
            // Only calls: `rand (` — not declarations of other `rand`
            // members (none exist in-tree, but keep the rule precise).
            std::size_t j = i + (wordAt(code, i, "srand") ? 5 : 4);
            j = code.find_first_not_of(" \t", j);
            if (j != std::string::npos && code[j] == '(' &&
                (i == 0 || code[i - 1] != '.')) {
                ctx.report(
                    i, "raw-rand",
                    "rand()/srand(): unseeded global randomness; use "
                    "an explicitly seeded ad::Rng");
            }
        }
        if (wordAt(code, i, "random_device")) {
            ctx.report(
                i, "raw-rand",
                "std::random_device: non-deterministic entropy source; "
                "use an explicitly seeded ad::Rng");
        }
    }
    // Wall-clock seeding: an RNG constructor/seed and a time source on
    // the same statement line.
    for (std::size_t l = 0; l < ctx.starts.size(); ++l) {
        const std::size_t begin = ctx.starts[l];
        const std::size_t end = l + 1 < ctx.starts.size()
                                    ? ctx.starts[l + 1]
                                    : code.size();
        const std::string text = code.substr(begin, end - begin);
        const bool rng = text.find("mt19937") != std::string::npos ||
                         text.find(".seed(") != std::string::npos ||
                         text.find("Rng(") != std::string::npos;
        const bool clock = text.find("time(") != std::string::npos ||
                           text.find("now()") != std::string::npos;
        if (rng && clock) {
            ctx.report(begin, "raw-rand",
                       "time-seeded RNG: wall-clock seeds make runs "
                       "irreproducible; seed from configuration");
        }
    }
}

/** pointer-key: pointer-typed map/set keys, and pointer->integer casts
 * (the usual smuggling route for address-based ordering). */
void
rulePointerKey(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    static const char *kContainers[] = {
        "map", "multimap", "set", "multiset",
        "unordered_map", "unordered_multimap",
        "unordered_set", "unordered_multiset"};
    for (std::size_t i = 0; i < code.size(); ++i) {
        for (const char *cont : kContainers) {
            const std::string word(cont);
            if (!wordAt(code, i, word))
                continue;
            const std::size_t lt = i + word.size();
            if (lt >= code.size() || code[lt] != '<')
                continue;
            // First template argument: up to a top-level ',' or '>'.
            int depth = 1;
            std::size_t k = lt + 1;
            std::string arg;
            for (; k < code.size() && depth > 0; ++k) {
                const char c = code[k];
                if (c == '<' || c == '(' || c == '[') {
                    ++depth;
                } else if (c == '>' || c == ')' || c == ']') {
                    --depth;
                } else if (c == ',' && depth == 1) {
                    break;
                }
                if (depth > 0)
                    arg += c;
            }
            while (!arg.empty() &&
                   std::isspace(static_cast<unsigned char>(arg.back())))
                arg.pop_back();
            if (!arg.empty() && arg.back() == '*') {
                ctx.report(
                    i, "pointer-key",
                    "pointer-typed " + word +
                        " key: address order varies run to run under "
                        "ASLR; key on a stable id instead");
            }
        }
    }
    for (const char *cast :
         {"reinterpret_cast<std::uintptr_t>", "reinterpret_cast<uintptr_t>",
          "reinterpret_cast<std::intptr_t>", "reinterpret_cast<intptr_t>"}) {
        std::size_t at = 0;
        const std::string pat(cast);
        while ((at = code.find(pat, at)) != std::string::npos) {
            ctx.report(at, "pointer-key",
                       "pointer cast to integer: using addresses as "
                       "keys or sort values is nondeterministic under "
                       "ASLR");
            at += pat.size();
        }
    }
}

/** hash-tiebreak: any direct std::hash use in scheduling-adjacent
 * code; its value is implementation-defined (and may be salted), so it
 * must never feed an ordering decision. */
void
ruleHashTiebreak(FileCtx &ctx)
{
    std::size_t at = 0;
    while ((at = ctx.code.find("std::hash<", at)) != std::string::npos) {
        ctx.report(at, "hash-tiebreak",
                   "std::hash is implementation-defined; derive "
                   "ordering/tie-breaks from stable ids, or use the "
                   "project's explicit FNV hash for caching only");
        at += 10;
    }
}

/**
 * fp-parallel-reduce: compound accumulation inside a parallelFor /
 * parallelMap lambda. Writes of the form `slot[i] op= ...` own their
 * index and are fine; anything else accumulates across iterations in
 * claim order — a data race, and for floating point an
 * order-dependent sum even with atomics.
 */
void
ruleFpParallelReduce(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (std::size_t i = 0; i < code.size(); ++i) {
        const bool pfor = wordAt(code, i, "parallelFor");
        const bool pmap = wordAt(code, i, "parallelMap");
        if (!pfor && !pmap)
            continue;
        // Find the lambda body: first '{' after the call starts.
        const std::size_t brace = code.find('{', i);
        if (brace == std::string::npos)
            continue;
        const std::size_t end = matchBraces(code, brace);
        if (end == std::string::npos)
            continue;
        for (std::size_t k = brace; k + 1 < end; ++k) {
            const char c = code[k];
            if ((c != '+' && c != '-' && c != '*' && c != '/') ||
                code[k + 1] != '=' ||
                (k + 2 < end && code[k + 2] == '=')) {
                continue;
            }
            if (k > 0 && (code[k - 1] == c || code[k - 1] == '<' ||
                          code[k - 1] == '>')) {
                continue; // ++/--/<<=/>>= or shift
            }
            // LHS: from the previous statement boundary to the op.
            std::size_t b = k;
            while (b > brace && code[b - 1] != ';' &&
                   code[b - 1] != '{' && code[b - 1] != '}' &&
                   code[b - 1] != '(' && code[b - 1] != ',') {
                --b;
            }
            const std::string lhs = code.substr(b, k - b);
            if (lhs.find('[') != std::string::npos)
                continue; // indexed slot: owned by this iteration
            ctx.report(
                k, "fp-parallel-reduce",
                "compound accumulation inside a parallel region: "
                "claim-order reduction races and (for floating point) "
                "changes the sum; write per-index slots and reduce "
                "sequentially after the join");
        }
        i = brace;
    }
}

/**
 * wall-clock: direct std::chrono clock reads outside src/obs. Wall time
 * is inherently nondeterministic, so it must flow through the
 * quarantined obs::Stopwatch and land only in `host.*` metrics — never
 * in trace timestamps or anything a schedule depends on.
 */
void
ruleWallClock(FileCtx &ctx)
{
    const std::string &code = ctx.code;
    for (const char *clock :
         {"steady_clock", "system_clock", "high_resolution_clock"}) {
        const std::string word(clock);
        std::size_t at = 0;
        while ((at = code.find(word, at)) != std::string::npos) {
            if (wordAt(code, at, word)) {
                ctx.report(
                    at, "wall-clock",
                    "std::chrono::" + word +
                        " outside src/obs: wall time is "
                        "nondeterministic; measure through "
                        "obs::Stopwatch and report it as a host.* "
                        "metric");
            }
            at += word.size();
        }
    }
}

/** True when @p path lives in the wall-clock quarantine (src/obs). */
bool
inObsQuarantine(const std::string &path)
{
    return path.find("src/obs/") != std::string::npos ||
           path.rfind("obs/", 0) == 0;
}

} // namespace

std::vector<std::string>
ruleNames()
{
    return {"unordered-iter", "raw-rand", "pointer-key",
            "hash-tiebreak", "fp-parallel-reduce", "wall-clock",
            "allowlist-justification"};
}

void
collectUnorderedNames(const std::string &content,
                      std::vector<std::string> &names)
{
    const std::string code = maskCommentsAndStrings(content);
    for (std::size_t i = 0; i < code.size(); ++i) {
        const bool m = wordAt(code, i, "unordered_map") ||
                       wordAt(code, i, "unordered_multimap");
        const bool s = wordAt(code, i, "unordered_set") ||
                       wordAt(code, i, "unordered_multiset");
        if (!m && !s)
            continue;
        std::size_t lt = i + (m ? 13 : 13); // both prefixes same length
        while (lt < code.size() && isIdentChar(code[lt]))
            ++lt; // cover the multimap/multiset suffix
        if (lt >= code.size() || code[lt] != '<') {
            i = lt;
            continue;
        }
        const std::size_t after = matchAngles(code, lt);
        if (after == std::string::npos) {
            i = lt;
            continue;
        }
        // Declared name: the next identifier after the template args,
        // skipping refs/pointers/whitespace. `>::iterator`, `>()` and
        // `> {` have none.
        std::size_t k = after;
        while (k < code.size() &&
               (code[k] == ' ' || code[k] == '\t' || code[k] == '\n' ||
                code[k] == '&' || code[k] == '*')) {
            ++k;
        }
        if (k < code.size() && isIdentChar(code[k]) &&
            !std::isdigit(static_cast<unsigned char>(code[k]))) {
            std::size_t e = k;
            while (e < code.size() && isIdentChar(code[e]))
                ++e;
            const std::string name = code.substr(k, e - k);
            if (name != "const" &&
                std::find(names.begin(), names.end(), name) ==
                    names.end()) {
                names.push_back(name);
            }
        }
        i = after;
    }
}

std::vector<Finding>
lintContent(const std::string &path, const std::string &content,
            const std::vector<std::string> &unordered_names)
{
    const std::string code = maskCommentsAndStrings(content);
    const std::vector<std::size_t> starts = lineStarts(content);
    std::vector<Finding> findings;
    FileCtx ctx{path, content, code, starts, unordered_names, findings};

    ruleUnorderedIter(ctx);
    ruleRawRand(ctx);
    rulePointerKey(ctx);
    ruleHashTiebreak(ctx);
    ruleFpParallelReduce(ctx);
    if (!inObsQuarantine(path))
        ruleWallClock(ctx);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    return findings;
}

} // namespace ad::lint
