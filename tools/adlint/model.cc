#include "model.hh"

#include <algorithm>
#include <cctype>

namespace ad::lint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentStart(char c)
{
    return (std::isalpha(static_cast<unsigned char>(c)) || c == '_');
}

} // namespace

std::string
maskCommentsAndStrings(const std::string &s)
{
    std::string out = s;
    enum class State { Code, Line, Block, Str, Chr } st = State::Code;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        const char n = i + 1 < s.size() ? s[i + 1] : '\0';
        switch (st) {
          case State::Code:
            if (c == '/' && n == '/') {
                st = State::Line;
                out[i] = ' ';
            } else if (c == '/' && n == '*') {
                st = State::Block;
                out[i] = ' ';
            } else if (c == 'R' && n == '"' &&
                       (i == 0 || !isIdentChar(s[i - 1]))) {
                // Raw string literal R"delim( ... )delim". Without this
                // case the plain-string masker desyncs on quotes inside
                // the raw body (which is exactly what linted *tests*
                // contain: snippets of known-bad code in R-strings).
                std::size_t d = i + 2;
                while (d < s.size() && s[d] != '(' && s[d] != '"' &&
                       s[d] != '\\' && s[d] != '\n') {
                    ++d;
                }
                if (d >= s.size() || s[d] != '(')
                    break; // not a raw string; leave as-is
                const std::string delim = s.substr(i + 2, d - (i + 2));
                const std::string close = ")" + delim + "\"";
                const std::size_t end = s.find(close, d + 1);
                const std::size_t stop =
                    end == std::string::npos ? s.size()
                                             : end + close.size();
                for (std::size_t k = i + 1; k < stop; ++k) {
                    if (s[k] != '\n')
                        out[k] = ' ';
                }
                i = stop - 1;
            } else if (c == '"') {
                st = State::Str;
            } else if (c == '\'' &&
                       !(i > 0 &&
                         std::isdigit(static_cast<unsigned char>(
                             s[i - 1])))) {
                // skip digit separators (1'000'000)
                st = State::Chr;
            }
            break;
          case State::Line:
            if (c == '\n')
                st = State::Code;
            else
                out[i] = ' ';
            break;
          case State::Block:
            if (c == '*' && n == '/') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Str:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::Chr:
            if (c == '\\' && n != '\0') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if (c == '\'') {
                st = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::size_t>
lineStarts(const std::string &s)
{
    std::vector<std::size_t> starts{0};
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\n')
            starts.push_back(i + 1);
    }
    return starts;
}

int
lineOf(const std::vector<std::size_t> &starts, std::size_t pos)
{
    const auto it = std::upper_bound(starts.begin(), starts.end(), pos);
    return static_cast<int>(it - starts.begin());
}

std::vector<Token>
tokenize(const std::string &code, const std::vector<std::size_t> &starts)
{
    // Multi-character punctuators the rules care to see whole; longest
    // match first within each leading character.
    static const char *kPunct[] = {
        "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=", ">=",
        "==",  "!=",  "&&",  "||", "+=", "-=", "*=", "/=", "%=",
        "&=",  "|=",  "^=",  "++", "--"};

    std::vector<Token> toks;
    std::size_t i = 0;
    while (i < code.size()) {
        const char c = code[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        Token t;
        t.pos = i;
        t.line = lineOf(starts, i);
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < code.size() && isIdentChar(code[j]))
                ++j;
            t.kind = Token::Kind::Ident;
            t.text = code.substr(i, j - i);
            i = j;
        } else if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < code.size() &&
                   (isIdentChar(code[j]) || code[j] == '.'))
                ++j;
            t.kind = Token::Kind::Number;
            t.text = code.substr(i, j - i);
            i = j;
        } else {
            t.kind = Token::Kind::Punct;
            t.text = std::string(1, c);
            for (const char *p : kPunct) {
                const std::size_t n = std::string(p).size();
                if (code.compare(i, n, p) == 0) {
                    t.text = p;
                    break;
                }
            }
            i += t.text.size();
        }
        toks.push_back(std::move(t));
    }
    return toks;
}

namespace {

/** Known integral type spellings → (width, signedness). */
struct IntType
{
    const char *name;
    int width;
    bool isSigned;
};

const IntType kIntTypes[] = {
    {"int", 32, true},           {"short", 32, true},
    {"int8_t", 32, true},        {"int16_t", 32, true},
    {"int32_t", 32, true},       {"LayerId", 32, true},
    {"AtomId", 32, true},        {"unsigned", 32, false},
    {"uint8_t", 32, false},      {"uint16_t", 32, false},
    {"uint32_t", 32, false},     {"long", 64, true},
    {"int64_t", 64, true},       {"ptrdiff_t", 64, true},
    {"ssize_t", 64, true},       {"size_t", 64, false},
    {"uint64_t", 64, false},     {"uintmax_t", 64, false},
    {"intmax_t", 64, true},      {"Cycles", 64, false},
    {"Bytes", 64, false},        {"MacCount", 64, false},
};

const IntType *
findIntType(const std::string &name)
{
    for (const IntType &t : kIntTypes) {
        if (name == t.name)
            return &t;
    }
    return nullptr;
}

bool
isQualifier(const std::string &s)
{
    return s == "const" || s == "constexpr" || s == "static" ||
           s == "volatile" || s == "inline" || s == "mutable" ||
           s == "register" || s == "thread_local";
}

/** Token index one past the matching close brace for `{` at @p open. */
std::size_t
matchBraceTok(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "{") {
            ++depth;
        } else if (toks[i].text == "}") {
            if (--depth == 0)
                return i + 1;
        }
    }
    return toks.size();
}

/** Token index one past the matching close paren for `(` at @p open. */
std::size_t
matchParenTok(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].text == "(") {
            ++depth;
        } else if (toks[i].text == ")") {
            if (--depth == 0)
                return i + 1;
        }
    }
    return toks.size();
}

void
extractIncludes(const std::string &raw,
                const std::vector<std::size_t> &starts, FileModel &fm)
{
    for (std::size_t l = 0; l < starts.size(); ++l) {
        const std::size_t begin = starts[l];
        const std::size_t end =
            l + 1 < starts.size() ? starts[l + 1] : raw.size();
        std::size_t i = begin;
        while (i < end && (raw[i] == ' ' || raw[i] == '\t'))
            ++i;
        if (i >= end || raw[i] != '#')
            continue;
        ++i;
        while (i < end && (raw[i] == ' ' || raw[i] == '\t'))
            ++i;
        if (raw.compare(i, 7, "include") != 0)
            continue;
        i += 7;
        while (i < end && (raw[i] == ' ' || raw[i] == '\t'))
            ++i;
        if (i >= end)
            continue;
        const char open = raw[i];
        const char close = open == '"' ? '"' : open == '<' ? '>' : '\0';
        if (close == '\0')
            continue;
        const std::size_t stop = raw.find(close, i + 1);
        if (stop == std::string::npos || stop >= end)
            continue;
        IncludeDecl inc;
        inc.target = raw.substr(i + 1, stop - i - 1);
        inc.quoted = open == '"';
        inc.line = static_cast<int>(l + 1);
        fm.includes.push_back(std::move(inc));
    }
}

void
extractEnums(const std::vector<Token> &toks, FileModel &fm)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident || toks[i].text != "enum")
            continue;
        std::size_t j = i + 1;
        if (j < toks.size() &&
            (toks[j].text == "class" || toks[j].text == "struct"))
            ++j;
        if (j >= toks.size() || toks[j].kind != Token::Kind::Ident)
            continue; // anonymous enum: nothing to index
        EnumDecl decl;
        decl.name = toks[j].text;
        decl.line = toks[i].line;
        ++j;
        if (j < toks.size() && toks[j].text == ":") {
            // underlying type: skip to '{' or ';'
            while (j < toks.size() && toks[j].text != "{" &&
                   toks[j].text != ";")
                ++j;
        }
        if (j >= toks.size() || toks[j].text != "{")
            continue; // forward declaration or elaborated use
        const std::size_t end = matchBraceTok(toks, j);
        // Enumerators: identifiers at depth 1 whose previous token is
        // the opening `{` or a top-level `,` (skips `= value` tails).
        int depth = 0;
        for (std::size_t k = j; k < end; ++k) {
            if (toks[k].text == "{" || toks[k].text == "(") {
                ++depth;
            } else if (toks[k].text == "}" || toks[k].text == ")") {
                --depth;
            } else if (depth == 1 && k > j &&
                       toks[k].kind == Token::Kind::Ident &&
                       (toks[k - 1].text == "{" ||
                        toks[k - 1].text == ",")) {
                decl.enumerators.push_back(toks[k].text);
            }
        }
        fm.enums.push_back(std::move(decl));
        i = end > i ? end - 1 : i;
    }
}

void
extractSwitches(const std::vector<Token> &toks, FileModel &fm)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident ||
            toks[i].text != "switch")
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "(")
            continue;
        j = matchParenTok(toks, j);
        if (j >= toks.size() || toks[j].text != "{")
            continue;
        const std::size_t end = matchBraceTok(toks, j);
        SwitchStmt sw;
        sw.line = toks[i].line;
        sw.pos = toks[i].pos;
        int depth = 0;
        for (std::size_t k = j; k < end; ++k) {
            if (toks[k].text == "{") {
                ++depth;
            } else if (toks[k].text == "}") {
                --depth;
            } else if (depth == 1 &&
                       toks[k].kind == Token::Kind::Ident) {
                if (toks[k].text == "default" && k + 1 < end &&
                    toks[k + 1].text == ":") {
                    sw.hasDefault = true;
                    sw.defaultLine = toks[k].line;
                } else if (toks[k].text == "case" && k + 2 < end &&
                           toks[k + 1].kind == Token::Kind::Ident &&
                           toks[k + 2].text == "::") {
                    const std::string &e = toks[k + 1].text;
                    if (std::find(sw.caseEnums.begin(),
                                  sw.caseEnums.end(),
                                  e) == sw.caseEnums.end())
                        sw.caseEnums.push_back(e);
                }
            }
        }
        fm.switches.push_back(std::move(sw));
        // Do not skip past `end`: nested switches are found on later
        // iterations and keep their own labels (depth filtering above
        // excludes them from this switch's record).
    }
}

void
extractIntDecls(const std::vector<Token> &toks, FileModel &fm)
{
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (toks[i].kind != Token::Kind::Ident)
            continue;
        if (isQualifier(toks[i].text))
            continue; // qualifiers are skipped below, at the type
        // A declaration must not be a member access or qualified name.
        if (i > 0 &&
            (toks[i - 1].text == "." || toks[i - 1].text == "->" ||
             toks[i - 1].text == "::"))
            continue;
        std::size_t j = i;
        // `std ::` prefix
        if (toks[j].text == "std" && j + 2 < toks.size() &&
            toks[j + 1].text == "::") {
            j += 2;
            if (toks[j].kind != Token::Kind::Ident)
                continue;
        }
        const IntType *ty = findIntType(toks[j].text);
        if (!ty)
            continue;
        int width = ty->width;
        bool is_signed = ty->isSigned;
        // Multi-token spellings: `unsigned int|long [long]`,
        // `long long`, `long int`, `short int`, `unsigned short`.
        std::size_t k = j + 1;
        if (toks[j].text == "unsigned" || toks[j].text == "long" ||
            toks[j].text == "short") {
            while (k < toks.size() &&
                   (toks[k].text == "int" || toks[k].text == "long" ||
                    toks[k].text == "short" ||
                    toks[k].text == "unsigned")) {
                if (toks[k].text == "long")
                    width = 64;
                if (toks[k].text == "unsigned")
                    is_signed = false;
                ++k;
            }
        }
        // References/pointers still carry the declared width.
        while (k < toks.size() &&
               (toks[k].text == "&" || toks[k].text == "*" ||
                toks[k].text == "const"))
            ++k;
        if (k >= toks.size() || toks[k].kind != Token::Kind::Ident)
            continue;
        const std::string &name = toks[k].text;
        if (k + 1 >= toks.size())
            continue;
        const std::string &after = toks[k + 1].text;
        // Variable or parameter, not a function declaration.
        if (after != "=" && after != ";" && after != "," &&
            after != ")" && after != "{")
            continue;
        if (after == "{") {
            // Brace-init `int x{...};` — accept only when the braces
            // close back onto `;`/`,`/`)` soon; cheap filter: next
            // token after the matching brace.
            const std::size_t close = matchBraceTok(toks, k + 1);
            if (close >= toks.size() ||
                (toks[close].text != ";" && toks[close].text != "," &&
                 toks[close].text != ")"))
                continue;
        }
        IntDecl d;
        d.name = name;
        d.width = width;
        d.isSigned = is_signed;
        d.line = toks[k].line;
        fm.intDecls.push_back(std::move(d));
        i = k;
    }
}

} // namespace

bool
FileModel::lookupInt(const std::string &name, int *width,
                     bool *is_signed) const
{
    // The model is scope-flat: two declarations of the same name in
    // different functions land in one list. When they disagree the
    // name is ambiguous and the integer rules must stay silent rather
    // than guess (a `std::size_t i` in one function must not taint the
    // `int i` of another).
    const IntDecl *found = nullptr;
    for (const IntDecl &d : intDecls) {
        if (d.name != name)
            continue;
        if (found && (found->width != d.width ||
                      found->isSigned != d.isSigned))
            return false;
        found = &d;
    }
    if (!found)
        return false;
    if (width)
        *width = found->width;
    if (is_signed)
        *is_signed = found->isSigned;
    return true;
}

FileModel
buildFileModel(const std::string &path, const std::string &raw,
               const std::string &code,
               const std::vector<std::size_t> &starts)
{
    FileModel fm;
    fm.path = path;
    fm.tokens = tokenize(code, starts);
    extractIncludes(raw, starts, fm);
    extractEnums(fm.tokens, fm);
    extractSwitches(fm.tokens, fm);
    extractIntDecls(fm.tokens, fm);
    return fm;
}

int
LayerManifest::rankOf(const std::string &module) const
{
    for (const auto &[name, rank] : ranks) {
        if (name == module)
            return rank;
    }
    return -1;
}

LayerManifest
parseLayerManifest(const std::string &text, std::string *error)
{
    LayerManifest manifest;
    std::size_t pos = 0;
    int lineno = 0;
    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::size_t end =
            eol == std::string::npos ? text.size() : eol;
        std::string line = text.substr(pos, end - pos);
        ++lineno;
        pos = end + 1;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.resize(hash);
        std::string module, rank_str;
        std::size_t i = 0;
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])))
            module += line[i++];
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i])))
            rank_str += line[i++];
        while (i < line.size() &&
               std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
        if (module.empty() && rank_str.empty())
            continue; // blank or comment-only line
        if (module.empty() || rank_str.empty() || i != line.size() ||
            rank_str.find_first_not_of("0123456789") !=
                std::string::npos) {
            if (error) {
                *error = "layers.txt line " + std::to_string(lineno) +
                         ": expected 'module rank'";
            }
            return LayerManifest{};
        }
        manifest.ranks.emplace_back(module, std::stoi(rank_str));
        if (eol == std::string::npos)
            break;
    }
    return manifest;
}

std::string
moduleOfPath(const std::string &path, const LayerManifest &manifest)
{
    // Split into components; the filename itself never names a module.
    std::vector<std::string> parts;
    std::string cur;
    for (char c : path) {
        if (c == '/' || c == '\\') {
            parts.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    // `cur` is the filename — intentionally dropped.
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!it->empty() && manifest.rankOf(*it) >= 0)
            return *it;
    }
    return {};
}

} // namespace ad::lint
