#pragma once

/**
 * @file
 * Suppression baseline and JSON output for adlint.
 *
 * Inline allowlist comments (rules.hh) are for findings that are
 * *permanently* fine — the justification lives next to the code.
 * The baseline is the other tool: a checked-in ledger
 * (`tools/adlint/baseline.json`) of pre-existing findings that are
 * acknowledged but not yet fixed, so a new rule can ship enabled while
 * its backlog is burned down explicitly. CI fails on any finding not in
 * the baseline; fixing a baselined finding makes its entry stale, which
 * adlint reports on stderr so the ledger shrinks monotonically.
 *
 * Baseline format (versioned, order-insensitive):
 *
 *     {
 *       "version": 1,
 *       "suppressions": [
 *         {"file": "src/engine/foo.cc", "rule": "raw-lock", "line": 42}
 *       ]
 *     }
 *
 * `line` is advisory: a suppression with `line <= 0` (or omitted)
 * matches any line of that file/rule pair, so routine edits above a
 * baselined finding do not un-suppress it.
 *
 * The JSON reader/writer below is a deliberately tiny subset parser —
 * objects, arrays, strings with `\"`/`\\` escapes, and integers — which
 * is all the two schemas here need; adlint stays dependency-free.
 */

#include <string>
#include <vector>

#include "rules.hh"

namespace ad::lint {

/** One baseline entry. */
struct Suppression
{
    std::string file;
    std::string rule;
    int line = 0; ///< <= 0 matches any line
};

/** A parsed suppression baseline. */
struct Baseline
{
    std::vector<Suppression> suppressions;

    bool empty() const { return suppressions.empty(); }

    /** True when @p f matches an entry (marks that entry as used). */
    bool matches(const Finding &f);

    /** Entries matches() never hit — fixed findings to delete. */
    std::vector<Suppression> staleEntries() const;

  private:
    std::vector<bool> _used;
    friend Baseline parseBaseline(const std::string &, std::string *);
};

/**
 * Parse baseline JSON. On malformed input or an unknown version,
 * returns an empty baseline and sets @p error.
 */
Baseline parseBaseline(const std::string &text, std::string *error);

/** Serialize @p findings as a baseline document (sorted, stable). */
std::string writeBaseline(const std::vector<Finding> &findings);

/**
 * Serialize a lint run as the machine-readable report consumed by CI
 * tooling (EXPERIMENTS.md):
 *
 *     {"version": 1, "tool": "adlint", "files": N,
 *      "activeCount": N, "baselinedCount": N,
 *      "findings": [{"file": ..., "line": N, "rule": ...,
 *                    "message": ...}]}
 *
 * @p active are unbaselined findings (these fail the run);
 * @p baselined_count is how many findings the baseline absorbed.
 */
std::string writeJsonReport(const std::vector<Finding> &active,
                            std::size_t baselined_count,
                            std::size_t file_count);

} // namespace ad::lint
