#include "baseline.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace ad::lint {

namespace {

/**
 * Minimal recursive-descent parser for the subset of JSON the baseline
 * schema uses. Values are flattened into the visitor callbacks the two
 * consumers below need; no DOM is built.
 */
struct JsonParser
{
    const std::string &s;
    std::size_t i = 0;
    bool ok = true;
    std::string error;

    explicit JsonParser(const std::string &text) : s(text) {}

    void
    fail(const std::string &msg)
    {
        if (ok) {
            ok = false;
            error = msg + " at byte " + std::to_string(i);
        }
    }

    void
    skipWs()
    {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (i < s.size() && s[i] == c) {
            ++i;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fail(std::string("expected '") + c + "'");
    }

    std::string
    parseString()
    {
        skipWs();
        if (i >= s.size() || s[i] != '"') {
            fail("expected string");
            return {};
        }
        ++i;
        std::string out;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\' && i + 1 < s.size()) {
                const char e = s[i + 1];
                if (e == '"' || e == '\\' || e == '/') {
                    out += e;
                } else if (e == 'n') {
                    out += '\n';
                } else if (e == 't') {
                    out += '\t';
                } else {
                    fail("unsupported escape");
                    return out;
                }
                i += 2;
            } else {
                out += s[i++];
            }
        }
        expect('"');
        return out;
    }

    long
    parseInt()
    {
        skipWs();
        const std::size_t begin = i;
        if (i < s.size() && (s[i] == '-' || s[i] == '+'))
            ++i;
        while (i < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        if (i == begin) {
            fail("expected integer");
            return 0;
        }
        return std::stol(s.substr(begin, i - begin));
    }

    /** Parse one `{"k": v, ...}` object, invoking @p on_field for each
     *  field; on_field must consume the value. */
    template <typename F>
    void
    parseObject(F &&on_field)
    {
        expect('{');
        skipWs();
        if (consume('}'))
            return;
        while (ok) {
            const std::string key = parseString();
            expect(':');
            on_field(key);
            skipWs();
            if (consume('}'))
                return;
            expect(',');
        }
    }

    /** Parse one `[v, ...]` array; on_element must consume each value. */
    template <typename F>
    void
    parseArray(F &&on_element)
    {
        expect('[');
        skipWs();
        if (consume(']'))
            return;
        while (ok) {
            on_element();
            skipWs();
            if (consume(']'))
                return;
            expect(',');
        }
    }
};

void
appendJsonString(std::ostringstream &out, const std::string &s)
{
    out << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            out << "\\\"";
            break;
          case '\\':
            out << "\\\\";
            break;
          case '\n':
            out << "\\n";
            break;
          case '\t':
            out << "\\t";
            break;
          default:
            out << c;
        }
    }
    out << '"';
}

} // namespace

bool
Baseline::matches(const Finding &f)
{
    _used.resize(suppressions.size(), false);
    for (std::size_t k = 0; k < suppressions.size(); ++k) {
        const Suppression &sup = suppressions[k];
        if (sup.file == f.file && sup.rule == f.rule &&
            (sup.line <= 0 || sup.line == f.line)) {
            _used[k] = true;
            return true;
        }
    }
    return false;
}

std::vector<Suppression>
Baseline::staleEntries() const
{
    std::vector<Suppression> stale;
    for (std::size_t k = 0; k < suppressions.size(); ++k) {
        if (k >= _used.size() || !_used[k])
            stale.push_back(suppressions[k]);
    }
    return stale;
}

Baseline
parseBaseline(const std::string &text, std::string *error)
{
    Baseline baseline;
    JsonParser p(text);
    long version = -1;
    p.parseObject([&](const std::string &key) {
        if (key == "version") {
            version = p.parseInt();
        } else if (key == "suppressions") {
            p.parseArray([&] {
                Suppression sup;
                p.parseObject([&](const std::string &field) {
                    if (field == "file") {
                        sup.file = p.parseString();
                    } else if (field == "rule") {
                        sup.rule = p.parseString();
                    } else if (field == "line") {
                        sup.line = static_cast<int>(p.parseInt());
                    } else {
                        p.fail("unknown suppression field '" + field +
                               "'");
                    }
                });
                baseline.suppressions.push_back(sup);
            });
        } else {
            p.fail("unknown baseline field '" + key + "'");
        }
    });
    p.skipWs();
    if (p.ok && p.i != p.s.size())
        p.fail("trailing content");
    if (p.ok && version != 1)
        p.fail("unsupported baseline version " + std::to_string(version));
    if (!p.ok) {
        if (error)
            *error = p.error;
        return Baseline{};
    }
    return baseline;
}

std::string
writeBaseline(const std::vector<Finding> &findings)
{
    std::vector<Finding> sorted = findings;
    std::sort(sorted.begin(), sorted.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.line < b.line;
              });
    std::ostringstream out;
    out << "{\n  \"version\": 1,\n  \"suppressions\": [";
    for (std::size_t k = 0; k < sorted.size(); ++k) {
        out << (k ? ",\n    " : "\n    ");
        out << "{\"file\": ";
        appendJsonString(out, sorted[k].file);
        out << ", \"rule\": ";
        appendJsonString(out, sorted[k].rule);
        out << ", \"line\": " << sorted[k].line << "}";
    }
    out << (sorted.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

std::string
writeJsonReport(const std::vector<Finding> &active,
                std::size_t baselined_count, std::size_t file_count)
{
    std::ostringstream out;
    out << "{\n  \"version\": 1,\n  \"tool\": \"adlint\",\n  \"files\": "
        << file_count << ",\n  \"activeCount\": " << active.size()
        << ",\n  \"baselinedCount\": " << baselined_count
        << ",\n  \"findings\": [";
    for (std::size_t k = 0; k < active.size(); ++k) {
        out << (k ? ",\n    " : "\n    ");
        out << "{\"file\": ";
        appendJsonString(out, active[k].file);
        out << ", \"line\": " << active[k].line << ", \"rule\": ";
        appendJsonString(out, active[k].rule);
        out << ", \"message\": ";
        appendJsonString(out, active[k].message);
        out << "}";
    }
    out << (active.empty() ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

} // namespace ad::lint
