#pragma once

/**
 * @file
 * Semantic model of one C++ source file, shared by every adlint rule.
 *
 * adlint v1 was a per-line regex scanner: each rule re-derived whatever
 * structure it needed from the raw text. v2 centralizes that work — a
 * single tokenizer pass over the comment/string-masked text produces a
 * token stream, and one model-building pass extracts the facts the rule
 * families consume:
 *
 *  - includes         `#include "..."` / `#include <...>` directives
 *                     with line numbers (read from the *raw* text, since
 *                     masking blanks string contents);
 *  - enums            `enum class` / `enum struct` / plain `enum`
 *                     definitions with their enumerator lists — pass 1
 *                     unions these across the scanned set so a switch in
 *                     one file over an enum declared in another is still
 *                     recognized as a project-enum switch;
 *  - switches         every `switch` statement, with the enum names its
 *                     `case` labels qualify (`case SchedMode::Dp:` →
 *                     "SchedMode") and whether a `default:` arm appears
 *                     at the switch's own brace depth;
 *  - integer decls    declarations of integral variables with their
 *                     width and signedness, including the project's
 *                     64-bit aliases (`Cycles`, `Bytes`, `MacCount`) and
 *                     32-bit ids (`LayerId`, `AtomId`), so the
 *                     integer-safety rules can tell a 64-bit cycle
 *                     expression from a plain loop index.
 *
 * The model is still deliberately compiler-free: it tokenizes real C++
 * but resolves no templates, overloads, or types beyond the known-alias
 * table. That is enough for the rule families adlint enforces, keeps
 * the whole-tree scan in milliseconds, and needs zero dependencies.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace ad::lint {

/** One lexical token of the masked source text. */
struct Token
{
    enum class Kind { Ident, Number, Punct };

    Kind kind = Kind::Punct;
    std::string text;
    int line = 0;         ///< 1-based source line
    std::size_t pos = 0;  ///< byte offset into the file
};

/** One `#include` directive. */
struct IncludeDecl
{
    std::string target; ///< path between the quotes/brackets, verbatim
    bool quoted = false; ///< `"..."` (project) vs `<...>` (system)
    int line = 0;
};

/** One `enum` / `enum class` definition. */
struct EnumDecl
{
    std::string name;
    std::vector<std::string> enumerators;
    int line = 0;
};

/** One `switch` statement. */
struct SwitchStmt
{
    int line = 0;        ///< line of the `switch` keyword
    std::size_t pos = 0; ///< byte offset of the `switch` keyword
    bool hasDefault = false;
    int defaultLine = 0;
    /** Enum names qualifying this switch's own `case` labels
     *  (`case OpType::Conv:` → "OpType"); nested switches keep their
     *  labels to themselves. */
    std::vector<std::string> caseEnums;
};

/** One integral variable declaration (or function parameter). */
struct IntDecl
{
    std::string name;
    int width = 32;        ///< 32 or 64 (16/8 map to 32: narrower still)
    bool isSigned = true;
    int line = 0;
};

/** Everything the rules need to know about one file. */
struct FileModel
{
    std::string path;
    std::vector<Token> tokens;
    std::vector<IncludeDecl> includes;
    std::vector<EnumDecl> enums;
    std::vector<SwitchStmt> switches;
    std::vector<IntDecl> intDecls;

    /** Declared width/signedness lookup; false when @p name unknown. */
    bool lookupInt(const std::string &name, int *width,
                   bool *is_signed) const;
};

/**
 * Replace the contents of comments, string literals (including raw
 * string literals), and character literals with spaces, newlines
 * preserved, so rule matchers never fire on prose or quoted text.
 */
std::string maskCommentsAndStrings(const std::string &s);

/** Byte offset of the start of every line (offset → line mapping). */
std::vector<std::size_t> lineStarts(const std::string &s);

/** 1-based line containing byte offset @p pos. */
int lineOf(const std::vector<std::size_t> &starts, std::size_t pos);

/** Tokenize masked source text. */
std::vector<Token> tokenize(const std::string &code,
                            const std::vector<std::size_t> &starts);

/**
 * Build the per-file model. @p raw is the original text (includes are
 * read from it); @p code the masked text; @p starts its line table.
 */
FileModel buildFileModel(const std::string &path, const std::string &raw,
                         const std::string &code,
                         const std::vector<std::size_t> &starts);

/**
 * Layer manifest: `src/<module>` directory → rank. An include may point
 * at the same or a lower rank; an include of a strictly higher rank is
 * an upward edge that breaks the declared module DAG.
 */
struct LayerManifest
{
    std::vector<std::pair<std::string, int>> ranks;

    bool empty() const { return ranks.empty(); }

    /** Rank of @p module, or -1 when the module is not declared. */
    int rankOf(const std::string &module) const;
};

/**
 * Parse the `layers.txt` manifest format: one `module rank` pair per
 * line, `#` comments, blank lines ignored. On malformed input returns
 * an empty manifest and sets @p error.
 */
LayerManifest parseLayerManifest(const std::string &text,
                                 std::string *error);

/**
 * The manifest module a path belongs to: the last directory component
 * that names a declared module (`src/core/mapper.cc` → "core";
 * fixture trees like `tests/adlint_fixtures/layering/core/x.cc` →
 * "core"). Empty when no component matches.
 */
std::string moduleOfPath(const std::string &path,
                         const LayerManifest &manifest);

} // namespace ad::lint
