/**
 * @file
 * adlint — project-specific static analyzer (DESIGN.md Sec. 10, 15).
 *
 * Scans C++ sources for the determinism hazards the ahead-of-time
 * orchestration stack must never reintroduce (unordered-container
 * iteration, raw randomness, pointer keys, std::hash tie-breaks,
 * parallel floating-point reduction, wall-clock reads) and for the
 * semantic-model rule families (layer-conformance against
 * tools/adlint/layers.txt, integer-narrowing, enum-switch-default,
 * raw-lock), printing `file:line: rule-id: message` diagnostics.
 *
 * Usage:
 *   adlint [--list-rules] [--format=text|json]
 *          [--baseline FILE] [--write-baseline FILE]
 *          [--layers FILE] [path...]
 *
 * Paths may be files or directories (recursed; `build*`, `.git`,
 * `golden`, and `adlint_fixtures` directory components are skipped
 * during recursion, but an explicitly passed path is always scanned —
 * that is how the self-test fixtures under tests/adlint_fixtures are
 * exercised). With no paths, scans `src`, `tools`, and `tests` under
 * the current directory.
 *
 * The layer manifest defaults to `tools/adlint/layers.txt` under the
 * current directory when present; `--layers` overrides, and a missing
 * manifest just disables the layer-conformance rule.
 *
 * `--baseline FILE` suppresses findings listed in the checked-in
 * baseline (tools/adlint/baseline.json); stale entries — baselined
 * findings that no longer occur — are reported on stderr so the ledger
 * shrinks. `--write-baseline FILE` writes the current findings as a
 * fresh baseline and exits 0.
 *
 * Exit status: 0 = clean (or fully baselined), 1 = active findings,
 * 2 = usage/IO error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "baseline.hh"
#include "rules.hh"

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".hpp" || ext == ".h";
}

/** Directory components never descended into during recursion. */
bool
skippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == ".git" || name == "golden" ||
           name == "adlint_fixtures" || name.rfind("build", 0) == 0;
}

void
gather(const fs::path &root, std::vector<fs::path> &files)
{
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
        if (isSourceFile(root))
            files.push_back(root);
        return;
    }
    if (!fs::is_directory(root, ec)) {
        std::cerr << "adlint: cannot read " << root.string() << '\n';
        std::exit(2);
    }
    // Sorted traversal: diagnostics come out in a stable order (the
    // linter practices what it preaches).
    std::vector<fs::path> entries;
    for (const auto &entry : fs::directory_iterator(root))
        entries.push_back(entry.path());
    std::sort(entries.begin(), entries.end());
    for (const fs::path &p : entries) {
        if (fs::is_directory(p, ec)) {
            if (!skippedDir(p))
                gather(p, files);
        } else if (isSourceFile(p)) {
            files.push_back(p);
        }
    }
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        std::cerr << "adlint: cannot open " << p.string() << '\n';
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
usage(std::ostream &out)
{
    out << "usage: adlint [--list-rules] [--format=text|json]\n"
           "              [--baseline FILE] [--write-baseline FILE]\n"
           "              [--layers FILE] [path...]\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    std::string format = "text";
    std::string baseline_path;
    std::string write_baseline_path;
    std::string layers_path;
    bool layers_explicit = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &r : ad::lint::ruleNames())
                std::cout << r << '\n';
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        }
        if (arg.rfind("--format=", 0) == 0) {
            format = arg.substr(9);
            if (format != "text" && format != "json") {
                std::cerr << "adlint: unknown format '" << format
                          << "' (text|json)\n";
                return 2;
            }
            continue;
        }
        auto takesValue = [&](const std::string &flag,
                              std::string *slot) {
            if (arg != flag)
                return false;
            if (i + 1 >= argc) {
                std::cerr << "adlint: " << flag
                          << " requires an argument\n";
                std::exit(2);
            }
            *slot = argv[++i];
            return true;
        };
        if (takesValue("--baseline", &baseline_path))
            continue;
        if (takesValue("--write-baseline", &write_baseline_path))
            continue;
        if (takesValue("--layers", &layers_path)) {
            layers_explicit = true;
            continue;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "adlint: unknown option " << arg << '\n';
            usage(std::cerr);
            return 2;
        }
        roots.emplace_back(arg);
    }
    if (roots.empty()) {
        roots = {fs::path("src"), fs::path("tools"), fs::path("tests")};
        for (const fs::path &r : roots) {
            if (!fs::exists(r)) {
                std::cerr << "adlint: default root '" << r.string()
                          << "' not found; run from the repository "
                             "root or pass paths explicitly\n";
                return 2;
            }
        }
    }

    std::vector<fs::path> files;
    for (const fs::path &r : roots)
        gather(r, files);

    ad::lint::ProjectModel project;

    // Layer manifest: explicit flag, else the conventional location.
    if (!layers_explicit &&
        fs::exists(fs::path("tools/adlint/layers.txt"))) {
        layers_path = "tools/adlint/layers.txt";
    }
    if (!layers_path.empty()) {
        std::string err;
        project.layers = ad::lint::parseLayerManifest(
            readFile(fs::path(layers_path)), &err);
        if (project.layers.empty()) {
            std::cerr << "adlint: bad layer manifest " << layers_path
                      << ": " << err << '\n';
            return 2;
        }
    }

    ad::lint::Baseline baseline;
    if (!baseline_path.empty()) {
        std::string err;
        baseline = ad::lint::parseBaseline(
            readFile(fs::path(baseline_path)), &err);
        if (!err.empty()) {
            std::cerr << "adlint: bad baseline " << baseline_path
                      << ": " << err << '\n';
            return 2;
        }
    }

    // Pass 1: cross-file facts (unordered-container names and project
    // enum definitions) from every file in the scanned set.
    std::vector<std::pair<fs::path, std::string>> contents;
    contents.reserve(files.size());
    for (const fs::path &f : files) {
        contents.emplace_back(f, readFile(f));
        ad::lint::collectProjectFacts(contents.back().second, project);
    }

    // Pass 2: rules, then baseline filtering.
    std::vector<ad::lint::Finding> active;
    std::size_t baselined = 0;
    std::vector<ad::lint::Finding> all;
    for (const auto &[path, text] : contents) {
        const auto findings =
            ad::lint::lintContent(path.string(), text, project);
        for (const auto &f : findings) {
            all.push_back(f);
            if (baseline.matches(f))
                ++baselined;
            else
                active.push_back(f);
        }
    }

    if (!write_baseline_path.empty()) {
        std::ofstream out(write_baseline_path, std::ios::binary);
        if (!out) {
            std::cerr << "adlint: cannot write " << write_baseline_path
                      << '\n';
            return 2;
        }
        out << ad::lint::writeBaseline(all);
        std::cerr << "adlint: wrote " << all.size() << " suppression"
                  << (all.size() == 1 ? "" : "s") << " to "
                  << write_baseline_path << '\n';
        return 0;
    }

    for (const auto &stale : baseline.staleEntries()) {
        std::cerr << "adlint: stale baseline entry (finding fixed — "
                     "delete it): "
                  << stale.file << ": " << stale.rule << '\n';
    }

    if (format == "json") {
        std::cout << ad::lint::writeJsonReport(active, baselined,
                                               files.size());
        return active.empty() ? 0 : 1;
    }

    for (const auto &f : active) {
        std::cout << f.file << ':' << f.line << ": " << f.rule << ": "
                  << f.message << '\n';
    }
    if (!active.empty()) {
        std::cerr << "adlint: " << active.size() << " finding"
                  << (active.size() == 1 ? "" : "s") << " in "
                  << files.size() << " files";
        if (baselined > 0)
            std::cerr << " (+" << baselined << " baselined)";
        std::cerr << '\n';
        return 1;
    }
    std::cout << "adlint: clean (" << files.size() << " files";
    if (baselined > 0)
        std::cout << ", " << baselined << " baselined";
    std::cout << ")\n";
    return 0;
}
