/**
 * @file
 * adlint — project-specific determinism linter (DESIGN.md Sec. 10).
 *
 * Scans C++ sources for the determinism hazards the ahead-of-time
 * orchestration stack must never reintroduce (unordered-container
 * iteration, raw randomness, pointer keys, std::hash tie-breaks,
 * parallel floating-point reduction) and prints
 * `file:line: rule-id: message` diagnostics.
 *
 * Usage:
 *   adlint [--list-rules] [path...]
 *
 * Paths may be files or directories (recursed; `build*` and `tests`
 * directory components are skipped during recursion, but an explicitly
 * passed path is always scanned — that is how the self-test fixtures
 * under tests/adlint_fixtures are exercised). With no paths, scans
 * `src` and `tools` under the current directory.
 *
 * Exit status: 0 = clean, 1 = findings, 2 = usage/IO error.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "rules.hh"

namespace fs = std::filesystem;

namespace {

bool
isSourceFile(const fs::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".cpp" || ext == ".cxx" ||
           ext == ".hh" || ext == ".hpp" || ext == ".h";
}

/** Directory components never descended into during recursion. */
bool
skippedDir(const fs::path &p)
{
    const std::string name = p.filename().string();
    return name == "tests" || name == ".git" ||
           name.rfind("build", 0) == 0;
}

void
gather(const fs::path &root, std::vector<fs::path> &files)
{
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
        if (isSourceFile(root))
            files.push_back(root);
        return;
    }
    if (!fs::is_directory(root, ec)) {
        std::cerr << "adlint: cannot read " << root.string() << '\n';
        std::exit(2);
    }
    // Sorted traversal: diagnostics come out in a stable order (the
    // linter practices what it preaches).
    std::vector<fs::path> entries;
    for (const auto &entry : fs::directory_iterator(root))
        entries.push_back(entry.path());
    std::sort(entries.begin(), entries.end());
    for (const fs::path &p : entries) {
        if (fs::is_directory(p, ec)) {
            if (!skippedDir(p))
                gather(p, files);
        } else if (isSourceFile(p)) {
            files.push_back(p);
        }
    }
}

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in) {
        std::cerr << "adlint: cannot open " << p.string() << '\n';
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<fs::path> roots;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            for (const std::string &r : ad::lint::ruleNames())
                std::cout << r << '\n';
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            std::cout << "usage: adlint [--list-rules] [path...]\n";
            return 0;
        }
        if (!arg.empty() && arg[0] == '-') {
            std::cerr << "adlint: unknown option " << arg << '\n';
            return 2;
        }
        roots.emplace_back(arg);
    }
    if (roots.empty()) {
        roots = {fs::path("src"), fs::path("tools")};
        for (const fs::path &r : roots) {
            if (!fs::exists(r)) {
                std::cerr << "adlint: default root '" << r.string()
                          << "' not found; run from the repository "
                             "root or pass paths explicitly\n";
                return 2;
            }
        }
    }

    std::vector<fs::path> files;
    for (const fs::path &r : roots)
        gather(r, files);

    // Pass 1: names of unordered containers declared anywhere in the
    // scanned set (headers declare, sources iterate).
    std::vector<std::pair<fs::path, std::string>> contents;
    contents.reserve(files.size());
    std::vector<std::string> unordered_names;
    for (const fs::path &f : files) {
        contents.emplace_back(f, readFile(f));
        ad::lint::collectUnorderedNames(contents.back().second,
                                        unordered_names);
    }

    // Pass 2: rules.
    std::size_t count = 0;
    for (const auto &[path, text] : contents) {
        const auto findings =
            ad::lint::lintContent(path.string(), text, unordered_names);
        for (const auto &f : findings) {
            std::cout << f.file << ':' << f.line << ": " << f.rule
                      << ": " << f.message << '\n';
        }
        count += findings.size();
    }

    if (count > 0) {
        std::cerr << "adlint: " << count << " finding"
                  << (count == 1 ? "" : "s") << " in " << files.size()
                  << " files\n";
        return 1;
    }
    std::cout << "adlint: clean (" << files.size() << " files)\n";
    return 0;
}
