#pragma once

/**
 * @file
 * Rule engine of `adlint`, the project-specific static analyzer.
 *
 * The ahead-of-time orchestration stack is only trustworthy if the
 * scheduler and cost model are pure deterministic functions of the graph
 * (DESIGN.md Sec. 10) and if the 64-bit cycle/byte arithmetic they rest
 * on never silently loses bits (DESIGN.md Sec. 15). These rules
 * statically reject the ways C++ code loses those properties.
 *
 * Determinism family (v1, textual):
 *
 *  - `unordered-iter`      iteration over `std::unordered_map` /
 *                          `std::unordered_set`: hash-table order leaks
 *                          into whatever the loop computes.
 *  - `raw-rand`            `rand()` / `srand()` / `std::random_device` /
 *                          time-seeded RNGs: unseeded or wall-clock
 *                          randomness instead of the explicit `ad::Rng`.
 *  - `pointer-key`         pointer values used as map/set keys: ASLR
 *                          makes address order differ run to run.
 *  - `hash-tiebreak`       `std::hash` in scheduling code: its value is
 *                          implementation-defined and may be salted.
 *  - `fp-parallel-reduce`  compound accumulation (`+=` on a shared slot)
 *                          inside a `parallelFor` / `parallelMap`
 *                          lambda: floating-point addition is not
 *                          associative, so reduction order changes the
 *                          result (and non-FP accumulation races).
 *  - `wall-clock`          direct `std::chrono` clock reads outside
 *                          `src/obs`: wall time must flow through the
 *                          quarantined `obs::Stopwatch` and surface only
 *                          as `host.*` metrics.
 *
 * Semantic-model family (v2, built on the tokenizer and per-file model
 * in model.hh):
 *
 *  - `layer-conformance`   an include that points from a `src/` module
 *                          at a strictly higher-ranked module in the
 *                          declared layer manifest
 *                          (`tools/adlint/layers.txt`): upward or cyclic
 *                          edges break the module DAG.
 *  - `integer-narrowing`   implicit narrowing of 64-bit cycle/byte
 *                          expressions into 32-bit variables, 32-bit
 *                          loop counters iterating 64-bit extents
 *                          (`.size()`, `Cycles`/`Bytes` values), and
 *                          signed/unsigned comparisons between declared
 *                          integers. Explicit `static_cast` to the
 *                          narrow type is the sanctioned escape.
 *  - `enum-switch-default` a `switch` over a project enum carrying a
 *                          `default:` arm: the arm masks `-Wswitch`, so
 *                          adding an enumerator becomes a runtime
 *                          surprise instead of a compile error.
 *  - `raw-lock`            direct `.lock()` / `.unlock()` /
 *                          `.try_lock()` calls (or unannotated std
 *                          guards) outside `src/util`: use the annotated
 *                          `util::MutexLock` so Clang's thread-safety
 *                          analysis stays sound.
 *
 * A finding is suppressed by an allowlist comment on the same line or
 * one of the two lines above, naming the rule and justifying the
 * exemption:
 *
 *     // adlint: unordered-iter-ok — keys are sorted before use
 *
 * A marker without a justification is itself reported
 * (`allowlist-justification`), so exemptions stay auditable. Whole-tree
 * burn-downs live in the checked-in `tools/adlint/baseline.json`
 * instead (see baseline.hh).
 *
 * The engine still has no compiler front-end: the semantic model is a
 * token-level approximation that runs in milliseconds over the whole
 * tree with zero dependencies, targeting idioms that are reliably
 * recognizable at that level. Comments and string literals (including
 * raw strings) are masked out before any rule runs.
 */

#include <string>
#include <vector>

#include "model.hh"

namespace ad::lint {

/** One diagnostic, printed as `file:line: rule-id: message`. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Names of every rule the engine implements (stable, kebab-case). */
std::vector<std::string> ruleNames();

/**
 * Cross-file facts shared by every lint pass: names of unordered
 * containers (headers declare, sources iterate), names of project
 * enums (headers define, sources switch), and the layer manifest.
 * Populate with collectProjectFacts() over every file first.
 */
struct ProjectModel
{
    std::vector<std::string> unorderedNames;
    std::vector<std::string> enumNames;
    LayerManifest layers;
};

/**
 * Pass 1: fold @p content's declarations into @p project — identifiers
 * declared with an `unordered_map`/`unordered_set` type and `enum`
 * definitions. Run over every file before lintContent() so facts
 * declared in one file are visible while linting another.
 */
void collectProjectFacts(const std::string &content,
                         ProjectModel &project);

/**
 * Pass 2: lint @p content (from @p path, used for diagnostics and the
 * path-scoped rules) against every rule.
 */
std::vector<Finding> lintContent(const std::string &path,
                                 const std::string &content,
                                 const ProjectModel &project);

} // namespace ad::lint
