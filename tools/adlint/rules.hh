#pragma once

/**
 * @file
 * Rule engine of `adlint`, the project-specific determinism linter.
 *
 * The ahead-of-time orchestration stack is only trustworthy if the
 * scheduler and cost model are pure deterministic functions of the graph
 * (DESIGN.md Sec. 10). These rules statically reject the ways C++ code
 * silently loses that property:
 *
 *  - `unordered-iter`      iteration over `std::unordered_map` /
 *                          `std::unordered_set`: hash-table order leaks
 *                          into whatever the loop computes.
 *  - `raw-rand`            `rand()` / `srand()` / `std::random_device` /
 *                          time-seeded RNGs: unseeded or wall-clock
 *                          randomness instead of the explicit `ad::Rng`.
 *  - `pointer-key`         pointer values used as map/set keys: ASLR
 *                          makes address order differ run to run.
 *  - `hash-tiebreak`       `std::hash` in scheduling code: its value is
 *                          implementation-defined and may be salted.
 *  - `fp-parallel-reduce`  compound accumulation (`+=` on a shared slot)
 *                          inside a `parallelFor` / `parallelMap`
 *                          lambda: floating-point addition is not
 *                          associative, so reduction order changes the
 *                          result (and non-FP accumulation races).
 *  - `wall-clock`          direct `std::chrono::steady_clock` /
 *                          `system_clock` / `high_resolution_clock`
 *                          reads outside `src/obs`: wall time must flow
 *                          through the quarantined `obs::Stopwatch` and
 *                          surface only as `host.*` metrics, never in
 *                          trace timestamps or scheduling decisions.
 *
 * A finding is suppressed by an allowlist comment on the same line or
 * one of the two lines above, naming the rule and justifying the
 * exemption:
 *
 *     // adlint: unordered-iter-ok — keys are sorted before use
 *
 * A marker without a justification is itself reported
 * (`allowlist-justification`), so exemptions stay auditable.
 *
 * The engine is deliberately textual (no compiler front-end): it runs in
 * milliseconds over the whole tree, has zero dependencies, and the rules
 * target idioms that are reliably recognizable at the token level.
 * Comments and string literals are masked out before matching.
 */

#include <string>
#include <vector>

namespace ad::lint {

/** One diagnostic, printed as `file:line: rule-id: message`. */
struct Finding
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string message;
};

/** Names of every rule the engine implements (stable, kebab-case). */
std::vector<std::string> ruleNames();

/**
 * Pass 1: collect identifiers declared with an
 * `unordered_map`/`unordered_set` type in @p content. Run over every
 * file first so pass 2 can recognize iteration over a member declared
 * in a header (e.g. `_entries` in a `.hh`, iterated in the `.cc`).
 */
void collectUnorderedNames(const std::string &content,
                           std::vector<std::string> &names);

/**
 * Pass 2: lint @p content (from @p path, used only for diagnostics)
 * against every rule. @p unordered_names is the union of pass-1 results
 * across the scanned set.
 */
std::vector<Finding>
lintContent(const std::string &path, const std::string &content,
            const std::vector<std::string> &unordered_names);

} // namespace ad::lint
