/**
 * @file
 * Offline fitting tool for engine::SurrogateCostModel (DESIGN.md
 * Sec. 17): sweeps randomized (workload, engine config) points per
 * fitted segment, evaluates the exact analytical CostModel as the
 * training oracle, solves a ridge regression in log space, and emits
 * src/engine/surrogate_weights.hh — the committed constants the
 * runtime evaluator loads. Fitting never happens at runtime; this tool
 * is the only place weights are produced. Regenerate via
 * scripts/regen_surrogate.sh and commit the diff.
 *
 * Usage: fit_surrogate [out-header]   (default src/engine/surrogate_weights.hh)
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "engine/cost_model.hh"
#include "engine/engine_config.hh"
#include "engine/surrogate_cost_model.hh"
#include "util/random.hh"

namespace {

using ad::Cycles;
using ad::Rng;
using ad::engine::AtomWorkload;
using ad::engine::CostModel;
using ad::engine::DataflowKind;
using ad::engine::EngineConfig;
using ad::engine::SurrogateFeatures;
using ad::engine::SurrogateSegment;
using ad::graph::OpType;

constexpr std::size_t kFeatures =
    static_cast<std::size_t>(ad::engine::kSurrogateFeatureCount);
constexpr std::size_t kSegments =
    static_cast<std::size_t>(ad::engine::kSurrogateSegmentCount);
constexpr int kPointsPerSegment = 3000;
constexpr std::uint64_t kSeed = 0xf175a11ULL;
constexpr double kRidgeLambda = 1e-7;

constexpr const char *kSegmentNames[kSegments] = {
    "ConvKc", "ConvYx",      "DepthwiseKc", "DepthwiseYx",
    "FcKc",   "FcYx",        "PoolVector",  "EltwiseVector",
};

/** Log-uniform integer draw in [lo, hi]. */
int
logUniform(Rng &rng, int lo, int hi)
{
    const double u = rng.uniform(std::log(static_cast<double>(lo)),
                                 std::log(static_cast<double>(hi) + 1.0));
    const int v = static_cast<int>(std::exp(u));
    return std::clamp(v, lo, hi);
}

/** Random engine config covering the deployable microarchitectures. */
EngineConfig
randomConfig(Rng &rng)
{
    static constexpr int kDims[] = {4, 8, 16, 32, 64};
    static constexpr int kLanes[] = {8, 16, 32, 64};
    EngineConfig cfg;
    cfg.peRows = kDims[static_cast<std::size_t>(rng.uniformInt(0, 4))];
    cfg.peCols = kDims[static_cast<std::size_t>(rng.uniformInt(0, 4))];
    cfg.vectorLanes = kLanes[static_cast<std::size_t>(rng.uniformInt(0, 3))];
    return cfg;
}

/** Random workload for @p segment; shape ranges define the fitted domain. */
AtomWorkload
randomWorkload(Rng &rng, SurrogateSegment segment)
{
    static constexpr int kKernels[] = {1, 3, 5, 7, 11};
    AtomWorkload atom;
    atom.h = logUniform(rng, 1, 512);
    atom.w = logUniform(rng, 1, 512);
    atom.ci = logUniform(rng, 1, 8192);
    atom.co = logUniform(rng, 1, 8192);
    const int k = kKernels[static_cast<std::size_t>(rng.uniformInt(0, 4))];
    atom.window = {k, k, 1, 1, k / 2, k / 2};
    switch (segment) {
      case SurrogateSegment::ConvKc:
      case SurrogateSegment::ConvYx:
        atom.type = OpType::Conv;
        break;
      case SurrogateSegment::DepthwiseKc:
      case SurrogateSegment::DepthwiseYx:
        atom.type = OpType::DepthwiseConv;
        atom.ci = atom.co;
        break;
      case SurrogateSegment::FcKc:
      case SurrogateSegment::FcYx:
        atom.type = OpType::FullyConnected;
        atom.h = 1;
        atom.w = 1;
        atom.ci = logUniform(rng, 1, 32768);
        atom.window = {1, 1, 1, 1, 0, 0};
        break;
      case SurrogateSegment::PoolVector: {
        // Cover both windowed pooling and global pooling, whose window
        // spans the whole input feature map (kh*kw up to 64*64).
        atom.type = rng.chance(0.5) ? OpType::Pool : OpType::GlobalPool;
        atom.ci = atom.co;
        const int pk = atom.type == OpType::GlobalPool
                           ? logUniform(rng, 2, 64)
                           : std::max(2, k);
        atom.window = {pk, pk, 1, 1, 0, 0};
        break;
      }
      case SurrogateSegment::EltwiseVector:
        atom.type = OpType::Eltwise;
        atom.ci = atom.co;
        atom.window = {1, 1, 1, 1, 0, 0};
        break;
    }
    return atom;
}

/** Mapping family the exact training oracle runs for @p segment. */
DataflowKind
familyOf(SurrogateSegment segment)
{
    switch (segment) {
      case SurrogateSegment::ConvYx:
      case SurrogateSegment::DepthwiseYx:
      case SurrogateSegment::FcYx:
        return DataflowKind::YxPartition;
      case SurrogateSegment::ConvKc:
      case SurrogateSegment::DepthwiseKc:
      case SurrogateSegment::FcKc:
      case SurrogateSegment::PoolVector:
      case SurrogateSegment::EltwiseVector:
        return DataflowKind::KcPartition;
    }
    return DataflowKind::KcPartition;
}

/** Steady-state cycles: the exact model minus its structural overhead. */
double
steadyCycles(const CostModel &model, const AtomWorkload &atom)
{
    const EngineConfig &cfg = model.config();
    Cycles overhead = cfg.configCycles;
    if (ad::graph::isMacOp(atom.type)) {
        overhead += static_cast<Cycles>(cfg.peRows) +
                    static_cast<Cycles>(cfg.peCols);
    }
    const Cycles total = model.cycles(atom);
    return static_cast<double>(total > overhead ? total - overhead : 1);
}

/** Solve (A + lambda*I) x = b by Gauss-Jordan with partial pivoting. */
std::array<double, kFeatures>
solveRidge(std::array<std::array<double, kFeatures>, kFeatures> a,
           std::array<double, kFeatures> b, double lambda)
{
    for (std::size_t i = 0; i < kFeatures; ++i)
        a[i][i] += lambda;
    for (std::size_t c = 0; c < kFeatures; ++c) {
        std::size_t pivot = c;
        for (std::size_t r = c + 1; r < kFeatures; ++r) {
            if (std::fabs(a[r][c]) > std::fabs(a[pivot][c]))
                pivot = r;
        }
        std::swap(a[c], a[pivot]);
        std::swap(b[c], b[pivot]);
        if (std::fabs(a[c][c]) < 1e-12)
            continue; // degenerate column: its weight stays 0
        for (std::size_t r = 0; r < kFeatures; ++r) {
            if (r == c)
                continue;
            const double factor = a[r][c] / a[c][c];
            for (std::size_t k = c; k < kFeatures; ++k)
                a[r][k] -= factor * a[c][k];
            b[r] -= factor * b[c];
        }
    }
    std::array<double, kFeatures> x{};
    for (std::size_t i = 0; i < kFeatures; ++i)
        x[i] = std::fabs(a[i][i]) < 1e-12 ? 0.0 : b[i] / a[i][i];
    return x;
}

struct SegmentFit
{
    std::array<double, kFeatures> weights{};
    std::array<double, kFeatures> featMin{};
    std::array<double, kFeatures> featMax{};
    double maxRelError = 0.0;
    double meanRelError = 0.0;
};

SegmentFit
fitSegment(SurrogateSegment segment)
{
    // One private stream per segment: adding a segment never perturbs
    // the training points (and hence the weights) of the others.
    Rng rng(kSeed + static_cast<std::uint64_t>(segment) * 1000003ULL);

    std::vector<SurrogateFeatures> feats;
    std::vector<double> steadies;
    feats.reserve(kPointsPerSegment);
    steadies.reserve(kPointsPerSegment);

    SegmentFit fit;
    fit.featMin.fill(1e300);
    fit.featMax.fill(-1e300);

    std::array<std::array<double, kFeatures>, kFeatures> a{};
    std::array<double, kFeatures> b{};
    for (int p = 0; p < kPointsPerSegment; ++p) {
        const EngineConfig cfg = randomConfig(rng);
        const AtomWorkload atom = randomWorkload(rng, segment);
        const CostModel exact(cfg, familyOf(segment));
        const double steady = steadyCycles(exact, atom);
        const double y = std::log(steady);
        const SurrogateFeatures f =
            ad::engine::surrogateFeatures(atom, cfg, segment);
        for (std::size_t i = 0; i < kFeatures; ++i) {
            fit.featMin[i] = std::min(fit.featMin[i], f.values[i]);
            fit.featMax[i] = std::max(fit.featMax[i], f.values[i]);
            for (std::size_t j = 0; j < kFeatures; ++j)
                a[i][j] += f.values[i] * f.values[j];
            b[i] += f.values[i] * y;
        }
        feats.push_back(f);
        steadies.push_back(steady);
    }

    fit.weights = solveRidge(a, b, kRidgeLambda * kPointsPerSegment);

    double err_sum = 0.0;
    for (std::size_t p = 0; p < feats.size(); ++p) {
        double pred = 0.0;
        for (std::size_t i = 0; i < kFeatures; ++i)
            pred += fit.weights[i] * feats[p].values[i];
        const double rel =
            std::fabs(std::exp(pred) - steadies[p]) / steadies[p];
        fit.maxRelError = std::max(fit.maxRelError, rel);
        err_sum += rel;
    }
    fit.meanRelError = err_sum / static_cast<double>(feats.size());
    return fit;
}

std::string
hexDouble(double v)
{
    std::ostringstream os;
    os << std::hexfloat << v;
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "src/engine/surrogate_weights.hh";

    std::vector<SegmentFit> fits;
    double max_rel = 0.0;
    for (std::size_t s = 0; s < kSegments; ++s) {
        fits.push_back(fitSegment(static_cast<SurrogateSegment>(s)));
        max_rel = std::max(max_rel, fits.back().maxRelError);
        std::cout << kSegmentNames[s] << ": max rel err "
                  << fits.back().maxRelError << ", mean "
                  << fits.back().meanRelError << "\n";
    }

    std::ostringstream os;
    os << "#pragma once\n\n"
       << "// Generated by tools/fit_surrogate — do not edit by hand.\n"
       << "// Regenerate with scripts/regen_surrogate.sh and commit the "
          "diff.\n"
       << "//\n"
       << "// Fitted against the exact analytical CostModel on "
       << kPointsPerSegment << " randomized\n"
       << "// (workload, engine config) points per segment, seed 0x"
       << std::hex << kSeed << std::dec << ", ridge lambda "
       << kRidgeLambda << ".\n"
       << "// Constants are hexfloat so committed values round-trip "
          "bit-exactly.\n\n"
       << "namespace ad::engine::surrogate_weights {\n\n"
       << "inline constexpr int kSegments = " << kSegments << ";\n"
       << "inline constexpr int kFeatures = " << kFeatures << ";\n"
       << "inline constexpr int kTrainingPointsPerSegment = "
       << kPointsPerSegment << ";\n"
       << "inline constexpr unsigned long long kTrainingSeed = 0x"
       << std::hex << kSeed << std::dec << "ULL;\n"
       << "inline constexpr double kRidgeLambda = "
       << hexDouble(kRidgeLambda) << "; // " << kRidgeLambda << "\n"
       << "inline constexpr double kTrainingMaxRelError = "
       << hexDouble(max_rel) << "; // " << max_rel << "\n\n";

    const auto emitTable = [&os, &fits](const char *name, auto select) {
        os << "inline constexpr double " << name
           << "[kSegments][kFeatures] = {\n";
        for (std::size_t s = 0; s < kSegments; ++s) {
            os << "    // " << kSegmentNames[s] << "\n    {";
            const std::array<double, kFeatures> &row = select(fits[s]);
            for (std::size_t i = 0; i < kFeatures; ++i)
                os << (i == 0 ? "" : ",") << "\n        " << hexDouble(row[i]);
            os << ",\n    },\n";
        }
        os << "};\n\n";
    };
    emitTable("kWeights", [](const SegmentFit &f)
                              -> const std::array<double, kFeatures> & {
        return f.weights;
    });
    emitTable("kFeatureMin", [](const SegmentFit &f)
                                 -> const std::array<double, kFeatures> & {
        return f.featMin;
    });
    emitTable("kFeatureMax", [](const SegmentFit &f)
                                 -> const std::array<double, kFeatures> & {
        return f.featMax;
    });
    os << "} // namespace ad::engine::surrogate_weights\n";

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "cannot open '" << out_path << "'\n";
        return 1;
    }
    out << os.str();
    std::cout << "wrote " << out_path << " (max rel err " << max_rel
              << ")\n";
    return max_rel < 0.05 ? 0 : 1;
}
