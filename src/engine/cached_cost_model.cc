#include "cached_cost_model.hh"

#include <array>
#include <atomic>
#include <map>
#include <sstream>
#include <unordered_map>

#include "util/thread_annotations.hh"

namespace ad::engine {

namespace {

/** FNV-1a over the integer fields of a workload. */
inline std::uint64_t
mix(std::uint64_t h, std::uint64_t v)
{
    h ^= v;
    return h * 1099511628211ULL;
}

/**
 * Exact textual identity of an engine configuration + dataflow. Two
 * models with the same key produce identical CostResults for every
 * workload, so they may share one memo store.
 */
std::string
storeKey(const EngineConfig &c, DataflowKind kind)
{
    std::ostringstream os;
    os.precision(17);
    os << c.peRows << '/' << c.peCols << '/' << c.freqGhz << '/'
       << c.bufferBytes << '/' << c.bufferPortBits << '/'
       << c.bytesPerElem << '/' << c.vectorLanes << '/'
       << c.configCycles << '/' << c.reconfigCycles << '/'
       << c.macEnergyPj << '/' << c.sramReadPjPerBit << '/'
       << c.sramWritePjPerBit << '/' << c.staticPowerMw << '/'
       << static_cast<int>(kind);
    return os.str();
}

} // namespace

std::size_t
AtomWorkloadHash::operator()(const AtomWorkload &atom) const
{
    std::uint64_t h = 1469598103934665603ULL;
    h = mix(h, static_cast<std::uint64_t>(atom.type));
    h = mix(h, static_cast<std::uint64_t>(atom.h));
    h = mix(h, static_cast<std::uint64_t>(atom.w));
    h = mix(h, static_cast<std::uint64_t>(atom.ci));
    h = mix(h, static_cast<std::uint64_t>(atom.co));
    h = mix(h, static_cast<std::uint64_t>(atom.window.kh));
    h = mix(h, static_cast<std::uint64_t>(atom.window.kw));
    h = mix(h, static_cast<std::uint64_t>(atom.window.strideH));
    h = mix(h, static_cast<std::uint64_t>(atom.window.strideW));
    h = mix(h, static_cast<std::uint64_t>(atom.window.padH));
    h = mix(h, static_cast<std::uint64_t>(atom.window.padW));
    return static_cast<std::size_t>(h);
}

/**
 * Sharded memo table. Shard count trades lock contention against
 * footprint; lookups hash once and reuse the hash for both shard choice
 * and the unordered_map probe.
 */
struct CachedCostModel::Store
{
    static constexpr std::size_t kShards = 64;

    struct Shard
    {
        mutable util::Mutex mu;
        std::unordered_map<AtomWorkload, CostResult, AtomWorkloadHash>
            map AD_GUARDED_BY(mu);
    };

    std::array<Shard, kShards> shards;
    mutable std::atomic<std::uint64_t> hits{0};
    mutable std::atomic<std::uint64_t> misses{0};
    mutable std::atomic<std::uint64_t> contended{0};
};

namespace {

/**
 * Scoped lock that counts contention: when the uncontended try_lock
 * fails it bumps @p contended and falls back to a blocking lock. The
 * counter is observability-only (shard-contention metric) and costs one
 * extra CAS only on the already-slow contended path.
 */
class AD_SCOPED_CAPABILITY ContentionLock
{
  public:
    ContentionLock(util::Mutex &mu,
                   std::atomic<std::uint64_t> &contended) AD_ACQUIRE(mu)
        : _mu(mu)
    {
        // This *is* an annotated RAII guard (AD_SCOPED_CAPABILITY); it
        // manipulates the mutex directly to count contention, which
        // util::MutexLock cannot observe.
        // adlint: raw-lock-ok — uncontended fast path of the guard
        if (!_mu.try_lock()) {
            contended.fetch_add(1, std::memory_order_relaxed);
            // adlint: raw-lock-ok — contended slow path of the guard
            _mu.lock();
        }
    }
    // adlint: raw-lock-ok — release half of the annotated guard
    ~ContentionLock() AD_RELEASE() { _mu.unlock(); }

    ContentionLock(const ContentionLock &) = delete;
    ContentionLock &operator=(const ContentionLock &) = delete;

  private:
    util::Mutex &_mu;
};

} // namespace

namespace {

util::Mutex gStoresMu;
std::map<std::string, std::shared_ptr<CachedCostModel::Store>>
    *gStores AD_GUARDED_BY(gStoresMu);

std::shared_ptr<CachedCostModel::Store>
sharedStore(const EngineConfig &config, DataflowKind kind)
{
    util::MutexLock lk(gStoresMu);
    if (!gStores) {
        gStores = new std::map<
            std::string, std::shared_ptr<CachedCostModel::Store>>();
    }
    auto &slot = (*gStores)[storeKey(config, kind)];
    if (!slot)
        slot = std::make_shared<CachedCostModel::Store>();
    return slot;
}

} // namespace

CachedCostModel::CachedCostModel(const EngineConfig &config,
                                 DataflowKind kind)
    : CostModel(config, kind), _store(sharedStore(this->config(), kind))
{
    // Note: this->config() (the validated copy) keys the store, so two
    // models built from configs that validate to the same state share.
}

CostResult
CachedCostModel::evaluate(const AtomWorkload &atom) const
{
    const std::size_t h = AtomWorkloadHash{}(atom);
    auto &shard = _store->shards[h % Store::kShards];
    {
        ContentionLock lk(shard.mu, _store->contended);
        auto it = shard.map.find(atom);
        if (it != shard.map.end()) {
            _store->hits.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Compute outside the lock: evaluation is pure, so a racing
    // duplicate miss produces the identical value.
    const CostResult r = CostModel::evaluate(atom);
    {
        ContentionLock lk(shard.mu, _store->contended);
        shard.map.emplace(atom, r);
    }
    _store->misses.fetch_add(1, std::memory_order_relaxed);
    return r;
}

Cycles
CachedCostModel::cycles(const AtomWorkload &atom) const
{
    return evaluate(atom).cycles;
}

double
CachedCostModel::utilization(const AtomWorkload &atom) const
{
    return evaluate(atom).utilization;
}

std::uint64_t
CachedCostModel::hits() const
{
    return _store->hits.load(std::memory_order_relaxed);
}

std::uint64_t
CachedCostModel::misses() const
{
    return _store->misses.load(std::memory_order_relaxed);
}

std::uint64_t
CachedCostModel::contended() const
{
    return _store->contended.load(std::memory_order_relaxed);
}

std::size_t
CachedCostModel::size() const
{
    std::size_t n = 0;
    for (const auto &shard : _store->shards) {
        util::MutexLock lk(shard.mu);
        n += shard.map.size();
    }
    return n;
}

void
CachedCostModel::clearSharedStores()
{
    util::MutexLock lk(gStoresMu);
    if (gStores)
        gStores->clear();
}

} // namespace ad::engine
