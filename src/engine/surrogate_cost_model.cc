#include "surrogate_cost_model.hh"

#include <algorithm>
#include <cmath>

#include "engine/surrogate_weights.hh"

namespace ad::engine {

using graph::OpType;

namespace {

/** ln of a positive integer quantity (features are log-transformed). */
double
lnOf(std::int64_t v)
{
    return std::log(static_cast<double>(std::max<std::int64_t>(v, 1)));
}

/** Vector-unit elements touched per output element. */
std::int64_t
vectorWorkPerElem(const AtomWorkload &atom)
{
    if (atom.type == OpType::Eltwise)
        return 2;
    return static_cast<std::int64_t>(atom.window.kh) * atom.window.kw;
}

constexpr auto kFeatures =
    static_cast<std::size_t>(kSurrogateFeatureCount);

static_assert(surrogate_weights::kFeatures == kSurrogateFeatureCount,
              "committed weight header drifted from the featurization");
static_assert(surrogate_weights::kSegments == kSurrogateSegmentCount,
              "committed weight header drifted from the segment table");

/** Fitted-domain check against the committed per-segment bounds. */
bool
inFittedDomain(SurrogateSegment segment, const SurrogateFeatures &f)
{
    const auto s = static_cast<std::size_t>(segment);
    for (std::size_t i = 0; i < kFeatures; ++i) {
        if (f.values[i] < surrogate_weights::kFeatureMin[s][i] ||
            f.values[i] > surrogate_weights::kFeatureMax[s][i]) {
            return false;
        }
    }
    return true;
}

double
dot(SurrogateSegment segment, const SurrogateFeatures &f)
{
    const auto s = static_cast<std::size_t>(segment);
    double acc = 0.0;
    for (std::size_t i = 0; i < kFeatures; ++i)
        acc += surrogate_weights::kWeights[s][i] * f.values[i];
    return acc;
}

} // namespace

bool
surrogateSegmentFor(graph::OpType type, DataflowKind family,
                    SurrogateSegment *out)
{
    const bool yx = family == DataflowKind::YxPartition;
    switch (type) {
      case OpType::Conv:
        *out = yx ? SurrogateSegment::ConvYx : SurrogateSegment::ConvKc;
        return true;
      case OpType::DepthwiseConv:
        *out = yx ? SurrogateSegment::DepthwiseYx
                  : SurrogateSegment::DepthwiseKc;
        return true;
      case OpType::FullyConnected:
        *out = yx ? SurrogateSegment::FcYx : SurrogateSegment::FcKc;
        return true;
      case OpType::Pool:
      case OpType::GlobalPool:
        *out = SurrogateSegment::PoolVector;
        return true;
      case OpType::Eltwise:
        *out = SurrogateSegment::EltwiseVector;
        return true;
      case OpType::Input:
      case OpType::Concat:
        return false; // pure data movement, nothing fitted
    }
    return false;
}

SurrogateFeatures
surrogateFeatures(const AtomWorkload &atom, const EngineConfig &config,
                  SurrogateSegment segment)
{
    SurrogateFeatures f;
    f.values[0] = 1.0; // bias
    const auto h = static_cast<std::int64_t>(atom.h);
    const auto w = static_cast<std::int64_t>(atom.w);
    const auto ci = static_cast<std::int64_t>(atom.ci);
    const auto co = static_cast<std::int64_t>(atom.co);
    const auto khw = static_cast<std::int64_t>(atom.window.kh) *
                     atom.window.kw;

    switch (segment) {
      case SurrogateSegment::ConvKc:
      case SurrogateSegment::ConvYx:
      case SurrogateSegment::DepthwiseKc:
      case SurrogateSegment::DepthwiseYx:
      case SurrogateSegment::FcKc:
      case SurrogateSegment::FcYx: {
        const auto rows = static_cast<std::int64_t>(config.peRows);
        const auto cols = static_cast<std::int64_t>(config.peCols);
        f.values[1] = lnOf(h);
        f.values[2] = lnOf(w);
        f.values[3] = lnOf(ci);
        f.values[4] = lnOf(co);
        f.values[5] = lnOf(khw);
        f.values[6] = lnOf(ceilDiv(ci, rows));
        f.values[7] = lnOf(ceilDiv(co, cols));
        f.values[8] = lnOf(ceilDiv(h, rows));
        f.values[9] = lnOf(ceilDiv(w, cols));
        f.values[10] = lnOf(ceilDiv(co, rows * cols));
        f.values[11] = lnOf(ceilDiv(khw, rows));
        f.values[12] = lnOf(rows * cols);
        break;
      }
      case SurrogateSegment::PoolVector:
      case SurrogateSegment::EltwiseVector: {
        const auto lanes = static_cast<std::int64_t>(config.vectorLanes);
        const std::int64_t work = vectorWorkPerElem(atom);
        f.values[1] = lnOf(h);
        f.values[2] = lnOf(w);
        f.values[4] = lnOf(co);
        f.values[5] = lnOf(work);
        f.values[6] = lnOf(ceilDiv(h * w * co * work, lanes));
        f.values[12] = lnOf(lanes);
        break;
      }
    }
    return f;
}

SurrogateCostModel::SurrogateCostModel(const EngineConfig &config,
                                       DataflowKind kind)
    : CostModel(config, kind)
{}

bool
SurrogateCostModel::predictSteady(SurrogateSegment segment,
                                  const AtomWorkload &atom,
                                  double *ln_steady) const
{
    const SurrogateFeatures f =
        surrogateFeatures(atom, config(), segment);
    if (!inFittedDomain(segment, f))
        return false;
    const double pred = dot(segment, f);
    // Anything above e^44 (~10^19 cycles) is outside what any fitted
    // point ever produced and would overflow the Cycles conversion.
    if (!(pred < 44.0))
        return false;
    *ln_steady = pred;
    return true;
}

bool
SurrogateCostModel::fittedCycles(const AtomWorkload &atom,
                                 Cycles *out) const
{
    const EngineConfig &cfg = config();
    const auto steadyOf = [](double ln_steady) {
        const long long v = std::llround(std::exp(ln_steady));
        return static_cast<Cycles>(std::max(1LL, v));
    };

    if (!graph::isMacOp(atom.type)) {
        SurrogateSegment segment{};
        if (!surrogateSegmentFor(atom.type, dataflow(), &segment))
            return false;
        double ln_steady = 0.0;
        if (!predictSteady(segment, atom, &ln_steady))
            return false;
        *out = steadyOf(ln_steady) + cfg.configCycles;
        return true;
    }

    const Cycles fill = static_cast<Cycles>(cfg.peRows) +
                        static_cast<Cycles>(cfg.peCols);
    if (dataflow() == DataflowKind::Flexible) {
        // Mirror the exact model's structure: the cheaper of the two
        // mappings plus a reconfiguration charge. Either half leaving
        // the fitted domain disqualifies the whole prediction.
        SurrogateSegment kc{}, yx{};
        if (!surrogateSegmentFor(atom.type, DataflowKind::KcPartition,
                                 &kc) ||
            !surrogateSegmentFor(atom.type, DataflowKind::YxPartition,
                                 &yx)) {
            return false;
        }
        double ln_kc = 0.0, ln_yx = 0.0;
        if (!predictSteady(kc, atom, &ln_kc) ||
            !predictSteady(yx, atom, &ln_yx)) {
            return false;
        }
        *out = std::min(steadyOf(ln_kc), steadyOf(ln_yx)) + fill +
               cfg.reconfigCycles + cfg.configCycles;
        return true;
    }

    SurrogateSegment segment{};
    if (!surrogateSegmentFor(atom.type, dataflow(), &segment))
        return false;
    double ln_steady = 0.0;
    if (!predictSteady(segment, atom, &ln_steady))
        return false;
    *out = steadyOf(ln_steady) + fill + cfg.configCycles;
    return true;
}

Cycles
SurrogateCostModel::cycles(const AtomWorkload &atom) const
{
    Cycles fitted = 0;
    if (fittedCycles(atom, &fitted)) {
        _fitted.fetch_add(1, std::memory_order_relaxed);
        return fitted;
    }
    _fallback.fetch_add(1, std::memory_order_relaxed);
    return CostModel::cycles(atom);
}

double
SurrogateCostModel::utilization(const AtomWorkload &atom) const
{
    if (!graph::isMacOp(atom.type))
        return 0.0;
    const Cycles c = cycles(atom);
    if (c == 0)
        return 0.0;
    return static_cast<double>(atom.macs()) /
           (static_cast<double>(c) * config().pes());
}

CostResult
SurrogateCostModel::evaluate(const AtomWorkload &atom) const
{
    // Byte and energy accounting stay exact; only the cycle estimate
    // (and the utilization derived from it) comes from the fit.
    CostResult r = CostModel::evaluate(atom);
    const Cycles c = cycles(atom);
    if (c == r.cycles)
        return r;
    const Cycles overhead = r.cycles - r.computeCycles;
    r.cycles = c;
    r.computeCycles = c > overhead ? c - overhead : 0;
    if (graph::isMacOp(atom.type) && c > 0) {
        r.utilization = static_cast<double>(r.macs) /
                        (static_cast<double>(c) * config().pes());
    }
    return r;
}

} // namespace ad::engine
