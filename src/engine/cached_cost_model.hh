#pragma once

/**
 * @file
 * Thread-safe memoization wrapper around the analytical cost model.
 *
 * The paper treats `Cycle(Atom)` as a pure black-box oracle, which makes
 * it trivially cacheable: two AtomWorkloads with equal tile dimensions and
 * operator parameters cost exactly the same on a given (engine config,
 * dataflow). The cache stores the full CostResult keyed on a canonical
 * hash of the workload, and every CachedCostModel built for the same
 * configuration shares one process-wide store — so hits accumulate across
 * SA candidates, scheduler construction, the mapping pass, the simulator,
 * and the baselines.
 *
 * Because the wrapped evaluation is pure, a concurrent duplicate miss
 * computes the identical value; results are bit-identical to the uncached
 * model for any thread count.
 */

#include <cstddef>
#include <cstdint>
#include <memory>

#include "engine/cost_model.hh"

namespace ad::engine {

/** Canonical hash over every field that determines a workload's cost. */
struct AtomWorkloadHash
{
    std::size_t operator()(const AtomWorkload &atom) const;
};

/** Memoizing CostModel; safe for concurrent lookups. */
class CachedCostModel : public CostModel
{
  public:
    /**
     * Build a cached model for @p config / @p kind. Instances with an
     * identical configuration attach to the same shared store.
     */
    CachedCostModel(const EngineConfig &config, DataflowKind kind);

    CostResult evaluate(const AtomWorkload &atom) const override;
    Cycles cycles(const AtomWorkload &atom) const override;
    double utilization(const AtomWorkload &atom) const override;

    /** Cache hits observed through this store (all attached models). */
    std::uint64_t hits() const;

    /** Cache misses (= distinct workloads evaluated, up to races). */
    std::uint64_t misses() const;

    /** Times a shard lock was held by another thread on acquisition
     * (observability: the costmodel.contended metric). */
    std::uint64_t contended() const;

    /** Workloads currently memoized in this store. */
    std::size_t size() const;

    /** Drop every shared store (test isolation / memory hygiene). */
    static void clearSharedStores();

    /** Opaque shared memo store (defined in the implementation). */
    struct Store;

  private:
    std::shared_ptr<Store> _store;
};

} // namespace ad::engine
