#include "engine_config.hh"

namespace ad::engine {

DataflowKind
dataflowFromString(const std::string &s)
{
    if (s == "kc" || s == "KC" || s == "KC-P")
        return DataflowKind::KcPartition;
    if (s == "yx" || s == "YX" || s == "YX-P")
        return DataflowKind::YxPartition;
    if (s == "flex" || s == "FLEX" || s == "Flexible")
        return DataflowKind::Flexible;
    fatal("unknown dataflow '", s, "' (expected kc, yx, or flex)");
}

const char *
dataflowName(DataflowKind kind)
{
    switch (kind) {
      case DataflowKind::KcPartition:
        return "KC-P";
      case DataflowKind::YxPartition:
        return "YX-P";
      case DataflowKind::Flexible:
        return "Flex";
    }
    return "?";
}

void
EngineConfig::validate() const
{
    if (peRows <= 0 || peCols <= 0)
        fatal("PE array dims must be positive: ", peRows, "x", peCols);
    if (freqGhz <= 0)
        fatal("engine frequency must be positive");
    if (bufferBytes == 0)
        fatal("engine buffer capacity must be positive");
    if (bytesPerElem <= 0)
        fatal("bytes per element must be positive");
    if (vectorLanes <= 0)
        fatal("vector lanes must be positive");
}

} // namespace ad::engine
