#pragma once

/**
 * @file
 * Microarchitectural description of one tensor engine (Fig. 1(a)): a 2D
 * PE array with per-column accumulators, a vector unit for element-wise
 * operators, and a multi-bank global SRAM buffer.
 */

#include <string>

#include "util/common.hh"

namespace ad::engine {

/**
 * Spatial mapping strategy of a single engine (Sec. IV-A).
 *
 * KcPartition (NVDLA-style) unrolls input channels along PE rows and
 * output channels along PE columns, keeping weights stationary.
 * YxPartition (ShiDianNao-style) unrolls output-feature-map height along
 * rows and width along columns. Flexible models reconfigurable arrays
 * (FlexFlow/MAERI-class) that switch between the two per atom — the
 * extension the paper's Sec. VI discussion describes.
 */
enum class DataflowKind { KcPartition, YxPartition, Flexible };

/** Parse "kc" / "yx" (case-sensitive); fatals otherwise. */
DataflowKind dataflowFromString(const std::string &s);

/** Short name for printing ("KC-P" / "YX-P"). */
const char *dataflowName(DataflowKind kind);

/** Static configuration of one tensor engine. */
struct EngineConfig
{
    int peRows = 16;            ///< PE array height (PEx)
    int peCols = 16;            ///< PE array width (PEy)
    double freqGhz = 0.5;       ///< clock frequency in GHz (paper: 500 MHz)
    Bytes bufferBytes = 128 * 1024; ///< global buffer capacity per engine
    int bufferPortBits = 64;    ///< SRAM port width
    int bytesPerElem = 1;       ///< INT8 operands
    int vectorLanes = 16;       ///< vector-unit elements per cycle

    /** Per-atom control overhead: configuration load before execution. */
    Cycles configCycles = 32;

    /** Extra per-atom cost of switching dataflows on a Flexible array. */
    Cycles reconfigCycles = 16;

    // Energy constants (28nm-class; see DESIGN.md Sec. 3).
    double macEnergyPj = 0.30;      ///< energy per INT8 MAC
    double sramReadPjPerBit = 0.34; ///< derived from TSMC 28nm datasheet
    double sramWritePjPerBit = 0.40;
    double staticPowerMw = 15.0;    ///< per-engine leakage + clock tree

    /** Total PEs in the array. */
    int pes() const { return peRows * peCols; }

    /** Validate dimensions; fatals on nonsense values. */
    void validate() const;
};

} // namespace ad::engine
