#pragma once

/**
 * @file
 * Analytical per-engine cost model — the library's substitute for the
 * MAESTRO tool the paper calls as its `Cycle()` oracle (Algorithm 1 line 6
 * and the system evaluator).
 *
 * The model performs the same data-centric analysis MAESTRO does for the
 * two dataflows the paper evaluates: two loop dimensions are unrolled
 * spatially across the PE array, the remaining dimensions iterate
 * temporally, and edge tiles that do not fill the array waste lanes. This
 * reproduces the task-engine mismatch penalty that motivates atomic
 * dataflow (Sec. II-B).
 */

#include "engine/engine_config.hh"
#include "graph/layer.hh"

namespace ad::engine {

/**
 * The slice of one layer an engine is asked to execute: an output tile of
 * @c h x @c w x @c co produced from @c ci input channels. For MAC ops the
 * window parameters describe the kernel; for vector ops they describe the
 * pooling window.
 */
struct AtomWorkload
{
    graph::OpType type = graph::OpType::Conv;
    int h = 1;  ///< output tile height
    int w = 1;  ///< output tile width
    int ci = 1; ///< input channels consumed
    int co = 1; ///< output channels produced
    graph::WindowParams window;

    /** Construct the workload for an entire layer. */
    static AtomWorkload wholeLayer(const graph::Layer &layer);

    /** MAC count of this slice. */
    MacCount macs() const;

    /** Output tile bytes. */
    Bytes ofmapBytes(int bytes_per_elem = 1) const;

    /** Input tile bytes (receptive field of the output tile). */
    Bytes ifmapBytes(int bytes_per_elem = 1) const;

    /** Weight bytes this slice needs resident. */
    Bytes weightBytes(int bytes_per_elem = 1) const;

    /** Structural equality — the cache key identity of a workload. */
    bool operator==(const AtomWorkload &) const = default;
};

/** Cost-model output for one atom on one engine. */
struct CostResult
{
    Cycles cycles = 0;          ///< execution cycles including fill/drain
    Cycles computeCycles = 0;   ///< steady-state compute cycles
    double utilization = 0.0;   ///< MACs / (cycles * #PEs), 0 for vector ops
    MacCount macs = 0;
    Bytes ifmapBytes = 0;
    Bytes weightBytes = 0;
    Bytes ofmapBytes = 0;
    Bytes sramReadBytes = 0;    ///< local buffer read traffic
    Bytes sramWriteBytes = 0;   ///< local buffer write traffic
    PicoJoules energyPj = 0.0;  ///< MAC + local SRAM dynamic energy

    /** Total buffer residency this atom needs while executing. */
    Bytes
    bufferBytes() const
    {
        return ifmapBytes + weightBytes + ofmapBytes;
    }
};

/**
 * Analytical cost model for a fixed engine configuration and dataflow.
 *
 * Thread-safe: evaluation is pure.
 */
class CostModel
{
  public:
    /** Build a model for @p config executing with dataflow @p kind. */
    CostModel(const EngineConfig &config, DataflowKind kind);

    virtual ~CostModel() = default;

    /** Full evaluation of @p atom. */
    virtual CostResult evaluate(const AtomWorkload &atom) const;

    /** Execution cycles only (the paper's `Cycle()`; cached-friendly). */
    virtual Cycles cycles(const AtomWorkload &atom) const;

    /** PE utilization of @p atom in [0, 1]; 0 for non-MAC ops. */
    virtual double utilization(const AtomWorkload &atom) const;

    /** Engine configuration this model describes. */
    const EngineConfig &config() const { return _config; }

    /** Dataflow this model describes. */
    DataflowKind dataflow() const { return _kind; }

  private:
    Cycles macCycles(const AtomWorkload &atom) const;
    Cycles vectorCycles(const AtomWorkload &atom) const;

    EngineConfig _config;
    DataflowKind _kind;
};

} // namespace ad::engine
