#include "cost_model.hh"

#include <algorithm>

namespace ad::engine {

using graph::OpType;

AtomWorkload
AtomWorkload::wholeLayer(const graph::Layer &layer)
{
    AtomWorkload atom;
    atom.type = layer.type;
    atom.h = layer.out.h;
    atom.w = layer.out.w;
    atom.ci = layer.in.c;
    atom.co = layer.out.c;
    atom.window = layer.window;
    return atom;
}

MacCount
AtomWorkload::macs() const
{
    const auto out_elems =
        static_cast<MacCount>(h) * w * static_cast<MacCount>(co);
    switch (type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        return out_elems * ci * window.kh * window.kw;
      case OpType::DepthwiseConv:
        return out_elems * window.kh * window.kw;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        return 0;
    }
    return 0;
}

Bytes
AtomWorkload::ofmapBytes(int bytes_per_elem) const
{
    return static_cast<Bytes>(h) * w * co * bytes_per_elem;
}

Bytes
AtomWorkload::ifmapBytes(int bytes_per_elem) const
{
    // Receptive field of the output tile. Padding is ignored here (it
    // only shrinks the real footprint), which keeps the estimate
    // conservative.
    const int ih = (h - 1) * window.strideH + window.kh;
    const int iw = (w - 1) * window.strideW + window.kw;
    const int channels =
        (type == OpType::DepthwiseConv || type == OpType::Pool ||
         type == OpType::GlobalPool || type == OpType::Eltwise)
            ? co
            : ci;
    return static_cast<Bytes>(ih) * iw * channels * bytes_per_elem;
}

Bytes
AtomWorkload::weightBytes(int bytes_per_elem) const
{
    switch (type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        return static_cast<Bytes>(window.kh) * window.kw * ci * co *
               bytes_per_elem;
      case OpType::DepthwiseConv:
        return static_cast<Bytes>(window.kh) * window.kw * co *
               bytes_per_elem;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        return 0;
    }
    return 0;
}

CostModel::CostModel(const EngineConfig &config, DataflowKind kind)
    : _config(config), _kind(kind)
{
    _config.validate();
}

Cycles
CostModel::macCycles(const AtomWorkload &atom) const
{
    const auto rows = static_cast<Cycles>(_config.peRows);
    const auto cols = static_cast<Cycles>(_config.peCols);
    const auto h = static_cast<Cycles>(atom.h);
    const auto w = static_cast<Cycles>(atom.w);
    const auto ci = static_cast<Cycles>(atom.ci);
    const auto co = static_cast<Cycles>(atom.co);
    const auto khw =
        static_cast<Cycles>(atom.window.kh) * atom.window.kw;

    // KC-P steady state: input channels spatially unrolled along rows,
    // output channels along columns; every output pixel and kernel
    // position is a temporal step (NVDLA-style weight-stationary).
    // Depthwise has no cross-channel reduction: kernel positions map to
    // rows, channels to columns.
    const auto kc_steady = [&]() -> Cycles {
        if (atom.type == OpType::DepthwiseConv)
            return h * w * ceilDiv(khw, rows) * ceilDiv(co, cols);
        return h * w * khw * ceilDiv(ci, rows) * ceilDiv(co, cols);
    };
    // YX-P steady state: output rows along PE rows, output columns along
    // PE columns; channels and kernel positions iterate temporally
    // (ShiDianNao-style output-stationary). For H = W = 1 the classic
    // fallback assigns one output neuron per PE across the whole array.
    const auto yx_steady = [&]() -> Cycles {
        if (atom.type == OpType::FullyConnected)
            return ceilDiv(co, rows * cols) * ci;
        if (atom.type == OpType::DepthwiseConv)
            return ceilDiv(h, rows) * ceilDiv(w, cols) * khw * co;
        return ceilDiv(h, rows) * ceilDiv(w, cols) * khw * ci * co;
    };

    Cycles steady = 0;
    Cycles extra = 0;
    switch (_kind) {
      case DataflowKind::KcPartition:
        steady = kc_steady();
        break;
      case DataflowKind::YxPartition:
        steady = yx_steady();
        break;
      case DataflowKind::Flexible:
        // Reconfigurable array (Sec. VI discussion): per atom, take the
        // cheaper of the two mappings and pay a reconfiguration charge.
        steady = std::min(kc_steady(), yx_steady());
        extra = _config.reconfigCycles;
        break;
    }
    // Systolic fill/drain: operands propagate across the array once per
    // atom.
    const Cycles fill = rows + cols;
    return steady + fill + extra + _config.configCycles;
}

Cycles
CostModel::vectorCycles(const AtomWorkload &atom) const
{
    const auto lanes = static_cast<Cycles>(_config.vectorLanes);
    const auto out_elems =
        static_cast<Cycles>(atom.h) * atom.w * atom.co;
    Cycles steady = 0;
    switch (atom.type) {
      case OpType::Pool:
      case OpType::GlobalPool:
        steady = ceilDiv(out_elems * atom.window.kh * atom.window.kw,
                         lanes);
        break;
      case OpType::Eltwise:
        steady = ceilDiv(out_elems * 2, lanes);
        break;
      case OpType::Concat:
      case OpType::Input:
        // Pure data movement; handled by the DMA/NoC, no compute.
        steady = 0;
        break;
      case OpType::Conv:
      case OpType::DepthwiseConv:
      case OpType::FullyConnected:
        panic("vectorCycles called on MAC op");
    }
    return steady + _config.configCycles;
}

Cycles
CostModel::cycles(const AtomWorkload &atom) const
{
    if (graph::isMacOp(atom.type))
        return macCycles(atom);
    return vectorCycles(atom);
}

double
CostModel::utilization(const AtomWorkload &atom) const
{
    if (!graph::isMacOp(atom.type))
        return 0.0;
    const Cycles c = macCycles(atom);
    if (c == 0)
        return 0.0;
    return static_cast<double>(atom.macs()) /
           (static_cast<double>(c) * _config.pes());
}

CostResult
CostModel::evaluate(const AtomWorkload &atom) const
{
    CostResult r;
    r.macs = atom.macs();
    r.ifmapBytes = atom.ifmapBytes(_config.bytesPerElem);
    r.weightBytes = atom.weightBytes(_config.bytesPerElem);
    r.ofmapBytes = atom.ofmapBytes(_config.bytesPerElem);

    if (graph::isMacOp(atom.type)) {
        r.cycles = macCycles(atom);
        r.computeCycles = r.cycles - (_config.peRows + _config.peCols) -
                          _config.configCycles;
        r.utilization =
            static_cast<double>(r.macs) /
            (static_cast<double>(r.cycles) * _config.pes());
        // Local SRAM traffic: weights are stationary (read once); the
        // input tile is re-read once per output-channel pass under KC-P
        // and once per kernel position pass under YX-P; partial sums stay
        // in the column accumulators, so the output is written once.
        Cycles passes = 1;
        if (_kind == DataflowKind::YxPartition) {
            passes = atom.type == OpType::DepthwiseConv
                         ? 1
                         : static_cast<Cycles>(atom.co);
        } else {
            // KC-P; Flexible arrays default to the KC traffic pattern.
            passes = ceilDiv<Cycles>(atom.co, _config.peCols);
        }
        r.sramReadBytes = r.weightBytes + r.ifmapBytes * passes;
        r.sramWriteBytes = r.ofmapBytes;
    } else {
        r.cycles = vectorCycles(atom);
        r.computeCycles = r.cycles - _config.configCycles;
        r.utilization = 0.0;
        r.sramReadBytes = r.ifmapBytes;
        r.sramWriteBytes = r.ofmapBytes;
    }

    const double read_bits = static_cast<double>(r.sramReadBytes) * 8.0;
    const double write_bits = static_cast<double>(r.sramWriteBytes) * 8.0;
    r.energyPj = static_cast<double>(r.macs) * _config.macEnergyPj +
                 read_bits * _config.sramReadPjPerBit +
                 write_bits * _config.sramWritePjPerBit;
    return r;
}

} // namespace ad::engine
