#pragma once

/**
 * @file
 * Fitted surrogate for the analytical cost model (ROADMAP item 1).
 *
 * The SA search and the plan-candidate sweep only need *relative*
 * cycle estimates to steer; exactness is restored by re-scoring every
 * accepted decision with the exact model (DESIGN.md Sec. 17). The
 * surrogate featurizes (atom shape, dataflow, engine config) into a
 * small fixed log-feature vector and evaluates a per-segment linear
 * model in log space — a polynomial model over the original
 * dimensions. The weights are committed constants generated offline by
 * tools/fit_surrogate (ridge regression against the exact model on a
 * randomized sweep; regenerate with scripts/regen_surrogate.sh). There
 * is deliberately no runtime fitting path: identical binaries produce
 * bit-identical scores, so screened plans stay deterministic.
 *
 * Every feature vector is checked against the committed fitted domain
 * (per-segment min/max observed during training); out-of-domain atoms
 * fall back to the exact analytical model instead of extrapolating.
 */

#include <array>
#include <atomic>
#include <cstdint>

#include "engine/cost_model.hh"
#include "engine/engine_config.hh"

namespace ad::engine {

/** Width of the fixed feature vector (bias + log-transformed terms). */
inline constexpr int kSurrogateFeatureCount = 13;

/**
 * One fitted weight segment: MAC buckets are split per spatial-mapping
 * family (Flexible arrays evaluate both and take the min, mirroring the
 * exact model's structure); vector-unit ops have shape-only segments.
 */
enum class SurrogateSegment : int {
    ConvKc,
    ConvYx,
    DepthwiseKc,
    DepthwiseYx,
    FcKc,
    FcYx,
    PoolVector,
    EltwiseVector,
};

/** Number of fitted segments (size of the committed weight table). */
inline constexpr int kSurrogateSegmentCount = 8;

/** Fixed-width feature vector; unused slots stay 0 per segment. */
struct SurrogateFeatures
{
    std::array<double, kSurrogateFeatureCount> values{};
};

/**
 * Segment for @p type under mapping family @p family (KcPartition or
 * YxPartition; vector ops ignore it). Returns false for ops with no
 * fitted segment (Input/Concat: pure data movement, no engine cycles
 * worth modelling).
 */
bool surrogateSegmentFor(graph::OpType type, DataflowKind family,
                         SurrogateSegment *out);

/**
 * Featurize @p atom for @p segment on @p config. Shared verbatim by
 * the offline fitting tool, the runtime evaluator, and the bounded-
 * error check harness, so the three can never drift apart.
 */
SurrogateFeatures surrogateFeatures(const AtomWorkload &atom,
                                    const EngineConfig &config,
                                    SurrogateSegment segment);

/**
 * CostModel drop-in whose cycles() is the fitted surrogate. Traffic
 * and energy accounting stay exact (the fit covers steady-state
 * compute cycles only; fill/drain and configuration overheads are
 * structural constants taken from the config, exactly as in the
 * analytical model).
 *
 * Thread-safe: evaluation is pure; the eval counters are relaxed
 * atomics (observability only, like the cost-model cache counters).
 */
class SurrogateCostModel : public CostModel
{
  public:
    /** Build a surrogate for @p config executing with dataflow @p kind. */
    SurrogateCostModel(const EngineConfig &config, DataflowKind kind);

    /** Exact evaluation with cycles/utilization from the surrogate. */
    CostResult evaluate(const AtomWorkload &atom) const override;

    /** Fitted cycles; exact-model fallback out of the fitted domain. */
    Cycles cycles(const AtomWorkload &atom) const override;

    /** MACs / (surrogate cycles * PEs); 0 for non-MAC ops. */
    double utilization(const AtomWorkload &atom) const override;

    /**
     * Fitted prediction for @p atom without the fallback: false when
     * the op has no segment or any feature leaves the fitted domain.
     * Exposed for the bounded-error sweep, which must not silently
     * grade the exact model against itself.
     */
    bool fittedCycles(const AtomWorkload &atom, Cycles *out) const;

    /** Evaluations answered by the fitted model. */
    std::uint64_t fittedEvals() const
    {
        return _fitted.load(std::memory_order_relaxed);
    }

    /** Evaluations that fell back to the exact analytical model. */
    std::uint64_t fallbackEvals() const
    {
        return _fallback.load(std::memory_order_relaxed);
    }

  private:
    bool predictSteady(SurrogateSegment segment, const AtomWorkload &atom,
                       double *ln_steady) const;

    mutable std::atomic<std::uint64_t> _fitted{0};
    mutable std::atomic<std::uint64_t> _fallback{0};
};

} // namespace ad::engine
