#pragma once

/**
 * @file
 * Sub-mesh executor views (DESIGN.md Sec. 16): a MeshView names the
 * slice of one simulated machine that a single executor owns — a
 * rectangular engine set (which is also its private NoC sub-rectangle,
 * since the mesh NoC of a rectangle is exactly the links between its
 * engines) plus a share of the HBM bandwidth. Every planner and
 * executor operates on a view; the whole mesh is the trivial view, and
 * deriving a machine from it is byte-exact (hbmShare 1.0 multiplies
 * the bandwidth by exactly 1.0), so full-view plans and traces are
 * bit-identical to the pre-view ones.
 *
 * Disjointness of two views is rectangle disjointness: executors on
 * non-overlapping views share no engine and no NoC link, which is what
 * lets serve::ServeLoop run N concurrent executors on one machine with
 * per-executor conservation audits intact.
 */

#include <cstdint>
#include <string>

#include "util/common.hh"

namespace ad::sim {

/**
 * One executor's slice of the machine. A default-constructed view is
 * the *unresolved* whole mesh: resolved() against a base grid fills in
 * the dimensions. Width/height of 0x0 mean "the whole base mesh".
 */
struct MeshView
{
    int x0 = 0; ///< origin column on the base mesh
    int y0 = 0; ///< origin row on the base mesh
    int width = 0;  ///< engines per row (0 with height 0 = full mesh)
    int height = 0; ///< engine rows

    // Base-mesh dimensions, filled by resolved(); 0 = not yet resolved.
    int baseX = 0;
    int baseY = 0;

    /** Fraction of the machine's HBM bandwidth this view owns. */
    double hbmShare = 1.0;

    /** Engines in the view. */
    int engines() const { return width * height; }

    /** True once resolved() has pinned the base dimensions. */
    bool isResolved() const { return baseX > 0 && baseY > 0; }

    /** True for the trivial view: the whole base mesh at full share. */
    bool isFull() const
    {
        return isResolved() && x0 == 0 && y0 == 0 && width == baseX &&
               height == baseY && hbmShare == 1.0;
    }

    /**
     * Copy of this view pinned to a @p base_x by @p base_y machine:
     * 0x0 dimensions expand to the whole mesh, and the rectangle and
     * share are range-checked (ConfigError on nonsense — negative
     * origin, out-of-bounds rectangle, share outside (0, 1], or a view
     * already resolved against a different base).
     */
    MeshView resolved(int base_x, int base_y) const;

    /**
     * Base-mesh engine id of view-local engine @p local. Identity for
     * the full view, so full-view trace tracks keep their historical
     * numbering; disjoint views map to disjoint global id sets.
     */
    int globalEngine(int local) const;

    /** True when the two view rectangles share at least one engine. */
    bool overlaps(const MeshView &o) const;

    /**
     * Origin-free canonical key fragment ("view=WxH hbm=S"): plans are
     * functions of the view's *shape* and bandwidth share only, never
     * of where the rectangle sits on the machine, so equally-shaped
     * sub-meshes share cache/store entries (DESIGN.md Sec. 16).
     */
    std::string shapeKey() const;

    /** Human-readable rendering with origin, for logs and errors. */
    std::string describe() const;

    bool operator==(const MeshView &o) const
    {
        return x0 == o.x0 && y0 == o.y0 && width == o.width &&
               height == o.height && baseX == o.baseX &&
               baseY == o.baseY && hbmShare == o.hbmShare;
    }
};

} // namespace ad::sim
