#include "mesh_view.hh"

#include <sstream>

namespace ad::sim {

MeshView
MeshView::resolved(int base_x, int base_y) const
{
    if (base_x <= 0 || base_y <= 0)
        fatal("mesh view needs a positive base mesh, got ", base_x, "x",
              base_y);
    MeshView v = *this;
    if (v.baseX != 0 || v.baseY != 0) {
        if (v.baseX != base_x || v.baseY != base_y)
            fatal("mesh view ", describe(), " is pinned to a ", v.baseX,
                  "x", v.baseY, " mesh, not ", base_x, "x", base_y);
    }
    v.baseX = base_x;
    v.baseY = base_y;
    if (v.width == 0 && v.height == 0) {
        v.x0 = 0;
        v.y0 = 0;
        v.width = base_x;
        v.height = base_y;
    }
    if (v.width <= 0 || v.height <= 0)
        fatal("mesh view needs positive dimensions, got ", v.width, "x",
              v.height);
    if (v.x0 < 0 || v.y0 < 0 || v.x0 + v.width > base_x ||
        v.y0 + v.height > base_y)
        fatal("mesh view ", v.describe(), " falls outside the ", base_x,
              "x", base_y, " mesh");
    if (!(v.hbmShare > 0.0) || v.hbmShare > 1.0)
        fatal("mesh view HBM share must be in (0, 1], got ",
              v.hbmShare);
    return v;
}

int
MeshView::globalEngine(int local) const
{
    adAssert(isResolved(), "globalEngine() needs a resolved view");
    adAssert(local >= 0 && local < engines(),
             "local engine id out of view range");
    const int vx = local % width;
    const int vy = local / width;
    return (y0 + vy) * baseX + (x0 + vx);
}

bool
MeshView::overlaps(const MeshView &o) const
{
    return x0 < o.x0 + o.width && o.x0 < x0 + width &&
           y0 < o.y0 + o.height && o.y0 < y0 + height;
}

std::string
MeshView::shapeKey() const
{
    std::ostringstream os;
    os << "view=" << width << "x" << height << " hbm=" << hbmShare;
    return os.str();
}

std::string
MeshView::describe() const
{
    std::ostringstream os;
    os << width << "x" << height << "@" << x0 << "," << y0 << "/"
       << hbmShare;
    return os.str();
}

} // namespace ad::sim
