#include "system.hh"

#include <algorithm>
#include <sstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/cached_cost_model.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::sim {

using core::AtomicDag;
using core::AtomId;
using core::Eviction;
using core::Location;
using core::Placement;
using core::ResidencyTracker;
using core::Schedule;
using core::SourceInfo;

void
SystemConfig::validate() const
{
    engine.validate();
    noc.validate();
    hbm.validate();
    if (meshX <= 0 || meshY <= 0)
        fatal("mesh dimensions must be positive");
}

std::string
SystemConfig::fingerprint() const
{
    std::ostringstream os;
    os << "mesh=" << meshX << 'x' << meshY
       << " dataflow=" << engine::dataflowName(dataflow)
       << " pe=" << engine.peRows << 'x' << engine.peCols
       << " freq=" << engine.freqGhz
       << " buffer=" << engine.bufferBytes
       << " port=" << engine.bufferPortBits
       << " elem=" << engine.bytesPerElem
       << " lanes=" << engine.vectorLanes
       << " config_cyc=" << engine.configCycles
       << " reconfig_cyc=" << engine.reconfigCycles
       << " mac_pj=" << engine.macEnergyPj
       << " sram_rd_pj=" << engine.sramReadPjPerBit
       << " sram_wr_pj=" << engine.sramWritePjPerBit
       << " static_mw=" << engine.staticPowerMw
       << " noc_link=" << noc.linkBits << " noc_hop=" << noc.hopLatency
       << " noc_pj=" << noc.energyPjPerBitPerHop
       << " noc_credit=" << noc.creditDepth
       << " hbm_ch=" << hbm.channels << " hbm_cap=" << hbm.capacityBytes
       << " hbm_bw=" << hbm.peakBandwidthGBps
       << " hbm_clk=" << hbm.clockGhz
       << " hbm_miss=" << hbm.rowMissLatency
       << " hbm_hit=" << hbm.rowHitLatency
       << " hbm_burst=" << hbm.burstBytes << " hbm_row=" << hbm.rowBytes
       << " hbm_pj=" << hbm.energyPjPerBit
       << " double_buffer=" << doubleBuffer
       << " prefetch=" << prefetchRounds << " reuse=" << onChipReuse;
    return os.str();
}

SystemConfig
viewSystem(const SystemConfig &base, const MeshView &view)
{
    const MeshView v = view.resolved(base.meshX, base.meshY);
    SystemConfig derived = base;
    derived.meshX = v.width;
    derived.meshY = v.height;
    derived.hbm.peakBandwidthGBps *= v.hbmShare;
    return derived;
}

SystemSimulator::SystemSimulator(const SystemConfig &config)
    : SystemSimulator(config, MeshView{})
{
}

SystemSimulator::SystemSimulator(const SystemConfig &config,
                                 const MeshView &view)
    : _view(view.resolved(config.meshX, config.meshY)),
      _config(viewSystem(config, _view))
{
    _config.validate();
}

namespace {

/** Backing-store address of an atom's ofmap (channel-interleaving
 * friendly spread across the stack). */
mem::Address
atomAddress(AtomId atom, const mem::HbmConfig &hbm)
{
    const auto spread =
        (static_cast<mem::Address>(atom) * 0x9E3779B97F4A7C15ULL);
    return spread % (hbm.capacityBytes / 2);
}

/** Address of a layer's weights (upper half of the stack). */
mem::Address
weightAddress(graph::LayerId layer, const mem::HbmConfig &hbm)
{
    const auto spread =
        (static_cast<mem::Address>(layer) * 0xC2B2AE3D27D4EB4FULL);
    return hbm.capacityBytes / 2 + spread % (hbm.capacityBytes / 2);
}

} // namespace

Executor::~Executor() = default;

ExecutionReport
SystemSimulator::execute(const AtomicDag &dag,
                         const Schedule &schedule,
                         obs::Instrumentation *ins) const
{
    const int num_engines = _config.engines();

    // Hoisted null-or-recorder pointers: the hot path pays one branch
    // per site when instrumentation is off, never a virtual call.
    obs::TraceRecorder *const tr = ins ? ins->trace : nullptr;
    obs::MetricsRegistry *const ms = ins ? ins->metrics : nullptr;
    obs::HistogramMetric *const busy_hist =
        ms ? &ms->histogram("sim.atom_busy_cycles", 0.0, 1048576.0, 64)
           : nullptr;
    if (tr) {
        tr->setProcessName("ad.sim");
        tr->setTrackName(obs::kTrackRounds, "rounds");
        tr->setTrackName(obs::kTrackNoc, "noc");
        tr->setTrackName(obs::kTrackHbm, "hbm");
        // Tracks are named by *global* mesh engine id, so concurrent
        // executors on disjoint views of one machine never collide;
        // the full view keeps the historical 0..N-1 numbering.
        for (int e = 0; e < num_engines; ++e) {
            const int g = _view.globalEngine(e);
            tr->setTrackName(obs::kTrackEngineBase + g,
                             "engine " + std::to_string(g));
        }
    }
    const engine::CachedCostModel cost(_config.engine,
                                       _config.dataflow);
    const noc::MeshTopology topo(_config.meshX, _config.meshY);
    const noc::NocModel noc_model(topo, _config.noc);
    mem::HbmModel hbm(_config.hbm);

    // Rebuild the Round atom lists for residency next-use indexing.
    std::vector<std::vector<AtomId>> round_atoms;
    round_atoms.reserve(schedule.rounds.size());
    for (const core::Round &r : schedule.rounds) {
        round_atoms.emplace_back();
        for (const Placement &p : r.placements)
            round_atoms.back().push_back(p.atom);
    }
    const core::ScheduleIndex index(schedule, dag.size());
    ResidencyTracker residency(dag, num_engines,
                               _config.engine.bufferBytes);
    residency.attachSchedule(round_atoms);

    ExecutionReport report;
    report.batch = dag.batch();
    report.rounds = schedule.rounds.size();
    report.engineBusyCycles.assign(
        static_cast<std::size_t>(num_engines), 0);

    MacCount total_macs = 0;
    Cycles compute_only_total = 0; ///< sum of per-round compute makespans
    Cycles noc_overhead_cycles = 0;
    Cycles mem_overhead_cycles = 0;
    Bytes fmap_onchip_bytes = 0;
    Bytes fmap_offchip_bytes = 0;

    EventQueue events;
    Tick now = 0;
    Tick prev_round_start = 0;
    std::vector<Tick> round_start_history;
    round_start_history.reserve(schedule.rounds.size());

    for (std::size_t t = 0; t < schedule.rounds.size(); ++t) {
        const core::Round &round = schedule.rounds[t];
        if (round.placements.empty())
            continue;
        residency.beginRound(static_cast<int>(t));
        round_start_history.push_back(now);

        const int horizon = std::max(1, _config.prefetchRounds);
        const std::size_t issue_round =
            round_start_history.size() > static_cast<std::size_t>(horizon)
                ? round_start_history.size() - 1 -
                      static_cast<std::size_t>(horizon)
                : 0;
        const Tick fetch_issue = _config.doubleBuffer
                                     ? round_start_history[issue_round]
                                     : now;

        // Phase 1: locate inputs, issue HBM fetches, gather transfers.
        struct EngineNeed
        {
            Tick hbmReady = 0;        ///< absolute completion of fetches
            Cycles nocReady = 0;      ///< relative completion of moves
            Cycles compute = 0;
        };
        std::vector<EngineNeed> needs(round.placements.size());
        // Producer tiles replicate to their consumers as NoC multicasts.
        // Two batches: payloads whose producer finished two or more
        // Rounds ago can prefetch during the previous Round's compute;
        // data produced in Round t-1 can only move now.
        struct McGroup
        {
            noc::Multicast mc;
            std::vector<std::size_t> owners; ///< placement index per dst
        };
        std::vector<McGroup> fresh_groups;
        std::vector<McGroup> early_groups;
        std::unordered_map<AtomId, std::size_t> fresh_index;
        std::unordered_map<AtomId, std::size_t> early_index;
        auto add_member = [](std::vector<McGroup> &groups,
                             std::unordered_map<AtomId, std::size_t>
                                 &group_index,
                             AtomId dep, int src, int dst, Bytes bytes,
                             std::size_t owner) {
            auto [it, inserted] =
                group_index.emplace(dep, groups.size());
            if (inserted) {
                groups.emplace_back();
                groups.back().mc.src = src;
            }
            McGroup &g = groups[it->second];
            g.mc.dsts.push_back(dst);
            g.mc.bytes = std::max(g.mc.bytes, bytes);
            g.owners.push_back(owner);
        };
        std::unordered_map<std::int64_t, int> weight_fetches;
        std::unordered_map<std::int64_t, std::size_t> weight_groups;
        std::unordered_map<AtomId, Tick> hbm_fetches;
        const Cycles prev_duration =
            now > prev_round_start ? now - prev_round_start : 0;

        for (std::size_t pi = 0; pi < round.placements.size(); ++pi) {
            const Placement &p = round.placements[pi];
            EngineNeed &need = needs[pi];
            need.hbmReady = fetch_issue;

            const auto dep_ids = dag.depsSpan(p.atom);
            const auto dep_bytes = dag.depBytesSpan(p.atom);
            for (std::size_t di = 0; di < dep_ids.size(); ++di) {
                const AtomId dep = dep_ids[di];
                const Bytes bytes = dep_bytes[di];
                SourceInfo src = residency.locate(dep);
                if (!_config.onChipReuse)
                    src.location = Location::OffChip;
                if (src.location == Location::OnChip) {
                    fmap_onchip_bytes += bytes;
                    if (src.engine == p.engine) {
                        report.localReuseBytes += bytes;
                    } else {
                        const int produced = index.roundOf(dep);
                        if (produced >= 0 &&
                            produced + 1 < static_cast<int>(t)) {
                            add_member(early_groups, early_index, dep,
                                       src.engine, p.engine, bytes, pi);
                        } else {
                            add_member(fresh_groups, fresh_index, dep,
                                       src.engine, p.engine, bytes, pi);
                        }
                    }
                } else {
                    fmap_offchip_bytes += bytes;
                    // One HBM fetch per spilled tile per Round; the DMA
                    // broadcasts the fill to every consumer engine.
                    auto [hit, inserted] =
                        hbm_fetches.try_emplace(dep, Tick{0});
                    if (inserted) {
                        report.hbmReadBytes += bytes;
                        hit->second =
                            hbm.access(atomAddress(dep, _config.hbm),
                                       bytes, false, fetch_issue);
                        if (tr) {
                            tr->span(obs::kTrackHbm, fetch_issue,
                                     hit->second - fetch_issue,
                                     "hbm.fetch",
                                     obs::JsonArgs()
                                         .add("atom",
                                              static_cast<std::int64_t>(
                                                  dep))
                                         .add("bytes", bytes)
                                         .str());
                        }
                    }
                    need.hbmReady =
                        std::max(need.hbmReady, hit->second);
                }
            }

            if (dag.readsExternalInput(p.atom)) {
                const Bytes bytes = dag.workload(p.atom).ifmapBytes(
                    _config.engine.bytesPerElem);
                report.hbmReadBytes += bytes;
                const Tick input_done =
                    hbm.access(atomAddress(p.atom, _config.hbm) +
                                   _config.hbm.capacityBytes / 4,
                               bytes, false, fetch_issue);
                if (tr) {
                    tr->span(obs::kTrackHbm, fetch_issue,
                             input_done - fetch_issue, "hbm.input",
                             obs::JsonArgs()
                                 .add("atom", static_cast<std::int64_t>(
                                                  p.atom))
                                 .add("bytes", bytes)
                                 .str());
                }
                need.hbmReady = std::max(need.hbmReady, input_done);
            }

            // Weight slice sourcing: engines already holding the
            // (layer, slice) serve NoC copies (multicast-tree
            // replication); otherwise the first toucher this Round
            // fetches it from HBM and later touchers copy from it.
            const graph::LayerId layer = dag.atom(p.atom).layer;
            const int slice = dag.atom(p.atom).cs;
            const Bytes wbytes = dag.weightBytes(p.atom);
            if (wbytes > 0 &&
                (!_config.onChipReuse ||
                 !residency.weightsResident(layer, slice, p.engine))) {
                const std::int64_t slice_key =
                    (static_cast<std::int64_t>(layer) << 24) | slice;
                const int holder =
                    _config.onChipReuse
                        ? residency.weightHolder(layer, slice)
                        : -1;
                auto it = weight_fetches.find(slice_key);
                int copy_src = -1;
                if (holder >= 0 && holder != p.engine) {
                    copy_src = holder;
                } else if (it != weight_fetches.end() &&
                           it->second != p.engine) {
                    copy_src = it->second;
                }
                if (copy_src >= 0) {
                    // Same-slice receivers this Round share one
                    // multicast tree from the holder/fetcher. Weight
                    // needs are known statically, so the replication
                    // overlaps the previous Round's compute.
                    auto [wit, winserted] = weight_groups.emplace(
                        slice_key, early_groups.size());
                    if (winserted) {
                        early_groups.emplace_back();
                        early_groups.back().mc.src = copy_src;
                        early_groups.back().mc.bytes = wbytes;
                    }
                    McGroup &wg = early_groups[wit->second];
                    wg.mc.dsts.push_back(p.engine);
                    wg.owners.push_back(pi);
                } else if (holder != p.engine) {
                    report.hbmReadBytes += wbytes;
                    report.weightHbmBytes += wbytes;
                    const Tick weights_done =
                        hbm.access(weightAddress(layer, _config.hbm),
                                   wbytes, false, fetch_issue);
                    if (tr) {
                        tr->span(
                            obs::kTrackHbm, fetch_issue,
                            weights_done - fetch_issue, "hbm.weights",
                            obs::JsonArgs()
                                .add("layer",
                                     dag.graph().layer(layer).name)
                                .add("slice", slice)
                                .add("bytes", wbytes)
                                .str());
                    }
                    need.hbmReady =
                        std::max(need.hbmReady, weights_done);
                    weight_fetches.emplace(slice_key, p.engine);
                }
                if (_config.onChipReuse) {
                    const auto evictions = residency.installWeights(
                        layer, slice, p.engine, wbytes,
                        static_cast<int>(t));
                    for (const Eviction &e : evictions) {
                        if (e.writeBack) {
                            report.hbmWriteBytes += e.bytes;
                            hbm.access(atomAddress(e.atom, _config.hbm),
                                       e.bytes, true, now);
                            if (tr) {
                                tr->instant(
                                    obs::kTrackEngineBase +
                                        _view.globalEngine(p.engine),
                                    now, "sram.evict",
                                    obs::JsonArgs()
                                        .add("atom",
                                             static_cast<std::int64_t>(
                                                 e.atom))
                                        .add("bytes", e.bytes)
                                        .str());
                            }
                        }
                    }
                }
            }

            const auto result = cost.evaluate(dag.workload(p.atom));
            need.compute = result.cycles;
            report.computeEnergyPj += result.energyPj;
            total_macs += result.macs;
        }

        // Phase 2: NoC contention. Early multicasts overlap the previous
        // Round's compute; only the part exceeding it stalls this Round.
        auto retire_groups = [&](const std::vector<McGroup> &groups,
                                 bool overlap_prev) {
            std::vector<noc::Multicast> mcs;
            mcs.reserve(groups.size());
            for (const McGroup &g : groups)
                mcs.push_back(g.mc);
            std::vector<std::vector<Cycles>> done;
            const auto noc_batch =
                noc_model.multicastBatch(mcs, &done);
            for (std::size_t g = 0; g < groups.size(); ++g) {
                report.nocInjectedBytes +=
                    groups[g].mc.bytes * groups[g].mc.dsts.size();
                Cycles group_done = 0;
                for (std::size_t d = 0; d < groups[g].owners.size();
                     ++d) {
                    report.nocEjectedBytes += groups[g].mc.bytes;
                    Cycles ready = done[g][d];
                    group_done = std::max(group_done, ready);
                    if (overlap_prev) {
                        ready = ready > prev_duration
                                    ? ready - prev_duration
                                    : 0;
                    }
                    auto &need = needs[groups[g].owners[d]];
                    need.nocReady = std::max(need.nocReady, ready);
                }
                if (tr) {
                    // Early multicasts stream during the previous
                    // Round's compute; fresh ones start at the Round
                    // boundary.
                    const Tick start =
                        overlap_prev ? prev_round_start : now;
                    int max_hops = 0;
                    for (const int dst : groups[g].mc.dsts) {
                        max_hops = std::max(
                            max_hops, topo.hops(groups[g].mc.src, dst));
                    }
                    tr->span(obs::kTrackNoc, start, group_done,
                             overlap_prev ? "noc.multicast.early"
                                          : "noc.multicast",
                             obs::JsonArgs()
                                 .add("src", groups[g].mc.src)
                                 .add("dsts",
                                      static_cast<std::uint64_t>(
                                          groups[g].mc.dsts.size()))
                                 .add("bytes", groups[g].mc.bytes)
                                 .add("hops", max_hops)
                                 .str());
                }
            }
            report.nocBytes += noc_batch.totalBytes;
            report.nocEnergyPj += noc_batch.energyPj;
            report.nocHopBytes += noc_batch.totalHopBytes;
            // SRAM traffic of the replication itself (producer read,
            // consumer writes) is not in the consumer's compute energy.
            report.computeEnergyPj +=
                static_cast<double>(noc_batch.totalBytes) * 8.0 *
                (_config.engine.sramReadPjPerBit +
                 _config.engine.sramWritePjPerBit);
        };
        retire_groups(fresh_groups, false);
        retire_groups(early_groups, true);

        // Phase 3: engines start when inputs land; Round synchronizes on
        // the last finisher (event-driven retirement).
        Cycles round_compute_makespan = 0;
        Cycles max_noc_stall = 0;
        Cycles max_total_stall = 0;
        Tick round_end = now + 1;

        for (std::size_t pi = 0; pi < round.placements.size(); ++pi) {
            const Placement &p = round.placements[pi];
            const EngineNeed &need = needs[pi];

            const Cycles hbm_stall =
                need.hbmReady > now ? need.hbmReady - now : 0;
            // Inbound NoC data streams into the consumer while it
            // computes (wormhole + double-buffered operand staging), so
            // the engine finishes when both its compute and its slowest
            // inbound transfer are done.
            const Cycles busy =
                std::max(hbm_stall + need.compute, need.nocReady);
            const Cycles noc_stall =
                busy > hbm_stall + need.compute
                    ? busy - (hbm_stall + need.compute)
                    : 0;
            max_noc_stall = std::max(max_noc_stall, noc_stall);
            max_total_stall =
                std::max(max_total_stall, noc_stall + hbm_stall);
            round_compute_makespan =
                std::max(round_compute_makespan, need.compute);

            ++report.launchedAtoms;
            if (p.engine >= 0 && p.engine < num_engines) {
                report.engineBusyCycles[static_cast<std::size_t>(
                    p.engine)] += busy;
                // Recorded under the same guard as engineBusyCycles so
                // the per-engine span durations sum exactly to the
                // report counter (tested in test_obs).
                if (tr) {
                    const core::Atom &a = dag.atom(p.atom);
                    tr->span(
                        obs::kTrackEngineBase +
                            _view.globalEngine(p.engine),
                        now, busy,
                        dag.graph().layer(a.layer).name + "[" +
                            std::to_string(a.index) + "]",
                        obs::JsonArgs()
                            .add("atom",
                                 static_cast<std::int64_t>(p.atom))
                            .add("compute", need.compute)
                            .add("hbm_stall", hbm_stall)
                            .add("noc_stall", noc_stall)
                            .str());
                }
            }
            if (busy_hist)
                busy_hist->observe(static_cast<double>(busy));

            const Tick finish = now + busy;
            round_end = std::max(round_end, finish);

            events.schedule(finish, [&, p, t](Tick when) {
                ++report.retiredAtoms;
                if (!_config.onChipReuse) {
                    const Bytes bytes = dag.ofmapBytes(p.atom);
                    report.hbmWriteBytes += bytes;
                    const Tick write_done = hbm.access(
                        atomAddress(p.atom, _config.hbm), bytes, true,
                        when);
                    if (tr) {
                        tr->span(obs::kTrackHbm, when, write_done - when,
                                 "hbm.write",
                                 obs::JsonArgs()
                                     .add("atom",
                                          static_cast<std::int64_t>(
                                              p.atom))
                                     .add("bytes", bytes)
                                     .str());
                    }
                    return;
                }
                const auto evictions = residency.produce(
                    p.atom, p.engine, static_cast<int>(t));
                bool stored = true;
                for (const Eviction &e : evictions) {
                    if (!e.writeBack)
                        continue;
                    report.hbmWriteBytes += e.bytes;
                    const char *write_kind = "sram.spill";
                    if (e.atom == p.atom) {
                        stored = false;
                        if (residency.nextUseAfter(
                                p.atom, static_cast<int>(t)) < 0) {
                            report.finalWriteBytes += e.bytes;
                            write_kind = "sram.final";
                        } else {
                            report.spillWriteBytes += e.bytes;
                        }
                    } else {
                        report.spillWriteBytes += e.bytes;
                    }
                    const Tick write_done =
                        hbm.access(atomAddress(e.atom, _config.hbm),
                                   e.bytes, true, when);
                    if (tr) {
                        const std::string args =
                            obs::JsonArgs()
                                .add("atom", static_cast<std::int64_t>(
                                                 e.atom))
                                .add("bytes", e.bytes)
                                .str();
                        tr->instant(obs::kTrackEngineBase +
                                        _view.globalEngine(p.engine),
                                    when, write_kind, args);
                        tr->span(obs::kTrackHbm, when, write_done - when,
                                 "hbm.write", args);
                    }
                }
                if (stored)
                    ++report.storedAtoms;
                else
                    ++report.unstoredAtoms;
            });
        }
        events.run();

        if (tr) {
            tr->span(obs::kTrackRounds, now, round_end - now, "round",
                     obs::JsonArgs()
                         .add("round", static_cast<std::uint64_t>(t))
                         .add("placements",
                              static_cast<std::uint64_t>(
                                  round.placements.size()))
                         .str());
        }

        compute_only_total += round_compute_makespan;
        noc_overhead_cycles += max_noc_stall;
        mem_overhead_cycles +=
            max_total_stall > max_noc_stall
                ? max_total_stall - max_noc_stall
                : 0;

        prev_round_start = now;
        now = round_end;
    }

    report.totalCycles = now;
    const double total_pes = static_cast<double>(_config.totalPes());
    if (now > 0) {
        report.peUtilization = static_cast<double>(total_macs) /
                               (static_cast<double>(now) * total_pes);
        report.nocOverhead =
            static_cast<double>(noc_overhead_cycles) /
            static_cast<double>(now);
        report.memOverhead =
            static_cast<double>(mem_overhead_cycles) /
            static_cast<double>(now);
    }
    if (compute_only_total > 0) {
        report.computeUtilization =
            static_cast<double>(total_macs) /
            (static_cast<double>(compute_only_total) * total_pes);
    }
    const Bytes fmap_total = fmap_onchip_bytes + fmap_offchip_bytes;
    if (fmap_total > 0) {
        report.onChipReuseRatio =
            static_cast<double>(fmap_onchip_bytes) /
            static_cast<double>(fmap_total);
    }

    report.hbmEnergyPj = hbm.stats().energyPj;
    // Static energy: leakage + clock tree of every engine over the run.
    const double seconds = static_cast<double>(now) /
                           (_config.engine.freqGhz * 1e9);
    report.staticEnergyPj = _config.engine.staticPowerMw * 1e-3 *
                            seconds * 1e12 * num_engines;

    if (ms) {
        ms->counter("sim.launched_atoms").add(report.launchedAtoms);
        ms->counter("sim.retired_atoms").add(report.retiredAtoms);
        ms->counter("sim.rounds").add(report.rounds);
        ms->counter("sim.hbm_read_bytes").add(report.hbmReadBytes);
        ms->counter("sim.hbm_write_bytes").add(report.hbmWriteBytes);
        ms->counter("sim.noc_injected_bytes")
            .add(report.nocInjectedBytes);
        ms->counter("sim.noc_ejected_bytes")
            .add(report.nocEjectedBytes);
        ms->counter("sim.stored_atoms").add(report.storedAtoms);
        ms->counter("sim.unstored_atoms").add(report.unstoredAtoms);
        ms->gauge("sim.total_cycles")
            .set(static_cast<double>(report.totalCycles));
        ms->gauge("sim.pe_utilization").set(report.peUtilization);
        ms->gauge("sim.compute_utilization")
            .set(report.computeUtilization);
        ms->gauge("sim.noc_overhead").set(report.nocOverhead);
        ms->gauge("sim.mem_overhead").set(report.memOverhead);
        ms->gauge("sim.on_chip_reuse_ratio")
            .set(report.onChipReuseRatio);
        ms->gauge("sim.total_energy_pj").set(report.totalEnergyPj());
    }
    return report;
}

} // namespace ad::sim
