#pragma once

/**
 * @file
 * Execution report shared by the atomic-dataflow simulator and every
 * baseline executor: the quantities the paper's evaluation section
 * reports (latency, throughput, utilization, NoC overhead, on-chip reuse
 * ratio, energy breakdown).
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/common.hh"

namespace ad::sim {

/** Outcome of executing one workload under one strategy. */
struct ExecutionReport
{
    Cycles totalCycles = 0;      ///< end-to-end makespan
    std::uint64_t rounds = 0;    ///< synchronized Rounds executed
    int batch = 1;               ///< samples processed

    // Utilization.
    double peUtilization = 0.0;      ///< MACs/(cycles*PEs), memory included
    double computeUtilization = 0.0; ///< w/o memory delay (Table II)
    double nocOverhead = 0.0;        ///< fraction of time blocked on NoC
    double memOverhead = 0.0;        ///< fraction of time blocked on HBM
    double onChipReuseRatio = 0.0;   ///< fmap bytes reused on-chip

    // Traffic.
    Bytes hbmReadBytes = 0;
    Bytes hbmWriteBytes = 0;
    Bytes nocBytes = 0;
    std::uint64_t nocHopBytes = 0; ///< sum of bytes x hops
    Bytes localReuseBytes = 0;     ///< consumer on producer engine
    Bytes weightHbmBytes = 0;      ///< HBM reads that were weights
    Bytes spillWriteBytes = 0;     ///< live tiles evicted to HBM
    Bytes finalWriteBytes = 0;     ///< graph outputs / dead tiles
    std::uint64_t storedAtoms = 0;   ///< produce() kept the tile on-chip
    std::uint64_t unstoredAtoms = 0; ///< produce() spilled immediately

    // Energy.
    PicoJoules computeEnergyPj = 0.0; ///< MAC + local SRAM
    PicoJoules nocEnergyPj = 0.0;
    PicoJoules hbmEnergyPj = 0.0;
    PicoJoules staticEnergyPj = 0.0;

    // Conservation-audit counters (ad::check::auditExecution). Filled by
    // the event-driven simulator; analytic baselines leave them empty.
    std::uint64_t launchedAtoms = 0; ///< placements issued to engines
    std::uint64_t retiredAtoms = 0;  ///< retirement events executed
    Bytes nocInjectedBytes = 0; ///< payload bytes sent into the NoC,
                                ///< one count per destination
    Bytes nocEjectedBytes = 0;  ///< payload bytes delivered at engines
    std::vector<Cycles> engineBusyCycles; ///< busy time per engine id

    /**
     * Field-wise equality with doubles compared *exactly* — this is the
     * bit-identical-results contract of the deterministic thread pool,
     * not a numeric-closeness check. Use it to assert that two runs of
     * the same workload (different thread counts, different wall-clock
     * conditions) produced literally the same report. For comparing
     * reports from different implementations (e.g. an analytic baseline
     * vs. the event-driven simulator) use approxEqual().
     */
    bool
    bitIdentical(const ExecutionReport &o) const
    {
        return totalCycles == o.totalCycles && rounds == o.rounds &&
               batch == o.batch && peUtilization == o.peUtilization &&
               computeUtilization == o.computeUtilization &&
               nocOverhead == o.nocOverhead &&
               memOverhead == o.memOverhead &&
               onChipReuseRatio == o.onChipReuseRatio &&
               hbmReadBytes == o.hbmReadBytes &&
               hbmWriteBytes == o.hbmWriteBytes &&
               nocBytes == o.nocBytes && nocHopBytes == o.nocHopBytes &&
               localReuseBytes == o.localReuseBytes &&
               weightHbmBytes == o.weightHbmBytes &&
               spillWriteBytes == o.spillWriteBytes &&
               finalWriteBytes == o.finalWriteBytes &&
               storedAtoms == o.storedAtoms &&
               unstoredAtoms == o.unstoredAtoms &&
               computeEnergyPj == o.computeEnergyPj &&
               nocEnergyPj == o.nocEnergyPj &&
               hbmEnergyPj == o.hbmEnergyPj &&
               staticEnergyPj == o.staticEnergyPj &&
               launchedAtoms == o.launchedAtoms &&
               retiredAtoms == o.retiredAtoms &&
               nocInjectedBytes == o.nocInjectedBytes &&
               nocEjectedBytes == o.nocEjectedBytes &&
               engineBusyCycles == o.engineBusyCycles;
    }

    /**
     * Loose comparison for cross-implementation checks: integers that
     * describe the workload (rounds, batch, atom counts) must match
     * exactly; cycle counts, utilizations, traffic, and energies must
     * agree to relative tolerance @p tol. Conservation-audit counters
     * and engineBusyCycles are ignored — analytic baselines leave them
     * empty.
     */
    bool
    approxEqual(const ExecutionReport &o, double tol) const
    {
        const auto close = [tol](double a, double b) {
            const double mag = std::max(std::abs(a), std::abs(b));
            return std::abs(a - b) <= tol * std::max(mag, 1.0);
        };
        return rounds == o.rounds && batch == o.batch &&
               storedAtoms == o.storedAtoms &&
               unstoredAtoms == o.unstoredAtoms &&
               close(static_cast<double>(totalCycles),
                     static_cast<double>(o.totalCycles)) &&
               close(peUtilization, o.peUtilization) &&
               close(computeUtilization, o.computeUtilization) &&
               close(nocOverhead, o.nocOverhead) &&
               close(memOverhead, o.memOverhead) &&
               close(onChipReuseRatio, o.onChipReuseRatio) &&
               close(static_cast<double>(hbmReadBytes),
                     static_cast<double>(o.hbmReadBytes)) &&
               close(static_cast<double>(hbmWriteBytes),
                     static_cast<double>(o.hbmWriteBytes)) &&
               close(static_cast<double>(nocBytes),
                     static_cast<double>(o.nocBytes)) &&
               close(static_cast<double>(nocHopBytes),
                     static_cast<double>(o.nocHopBytes)) &&
               close(computeEnergyPj, o.computeEnergyPj) &&
               close(nocEnergyPj, o.nocEnergyPj) &&
               close(hbmEnergyPj, o.hbmEnergyPj) &&
               close(staticEnergyPj, o.staticEnergyPj);
    }

    /** Total energy in picojoules. */
    PicoJoules
    totalEnergyPj() const
    {
        return computeEnergyPj + nocEnergyPj + hbmEnergyPj +
               staticEnergyPj;
    }

    /** Total energy in millijoules. */
    double totalEnergyMj() const { return totalEnergyPj() * 1e-9; }

    /** Wall-clock latency in milliseconds at @p freq_ghz. */
    double
    latencyMs(double freq_ghz) const
    {
        return static_cast<double>(totalCycles) / (freq_ghz * 1e6);
    }

    /** Throughput in inferences per second at @p freq_ghz. */
    double
    throughputFps(double freq_ghz) const
    {
        const double ms = latencyMs(freq_ghz);
        return ms > 0 ? 1000.0 * batch / ms : 0.0;
    }
};

} // namespace ad::sim
