#pragma once

/**
 * @file
 * Execution report shared by the atomic-dataflow simulator and every
 * baseline executor: the quantities the paper's evaluation section
 * reports (latency, throughput, utilization, NoC overhead, on-chip reuse
 * ratio, energy breakdown).
 */

#include <cstdint>
#include <vector>

#include "util/common.hh"

namespace ad::sim {

/** Outcome of executing one workload under one strategy. */
struct ExecutionReport
{
    Cycles totalCycles = 0;      ///< end-to-end makespan
    std::uint64_t rounds = 0;    ///< synchronized Rounds executed
    int batch = 1;               ///< samples processed

    // Utilization.
    double peUtilization = 0.0;      ///< MACs/(cycles*PEs), memory included
    double computeUtilization = 0.0; ///< w/o memory delay (Table II)
    double nocOverhead = 0.0;        ///< fraction of time blocked on NoC
    double memOverhead = 0.0;        ///< fraction of time blocked on HBM
    double onChipReuseRatio = 0.0;   ///< fmap bytes reused on-chip

    // Traffic.
    Bytes hbmReadBytes = 0;
    Bytes hbmWriteBytes = 0;
    Bytes nocBytes = 0;
    std::uint64_t nocHopBytes = 0; ///< sum of bytes x hops
    Bytes localReuseBytes = 0;     ///< consumer on producer engine
    Bytes weightHbmBytes = 0;      ///< HBM reads that were weights
    Bytes spillWriteBytes = 0;     ///< live tiles evicted to HBM
    Bytes finalWriteBytes = 0;     ///< graph outputs / dead tiles
    std::uint64_t storedAtoms = 0;   ///< produce() kept the tile on-chip
    std::uint64_t unstoredAtoms = 0; ///< produce() spilled immediately

    // Energy.
    PicoJoules computeEnergyPj = 0.0; ///< MAC + local SRAM
    PicoJoules nocEnergyPj = 0.0;
    PicoJoules hbmEnergyPj = 0.0;
    PicoJoules staticEnergyPj = 0.0;

    // Conservation-audit counters (ad::check::auditExecution). Filled by
    // the event-driven simulator; analytic baselines leave them empty.
    std::uint64_t launchedAtoms = 0; ///< placements issued to engines
    std::uint64_t retiredAtoms = 0;  ///< retirement events executed
    Bytes nocInjectedBytes = 0; ///< payload bytes sent into the NoC,
                                ///< one count per destination
    Bytes nocEjectedBytes = 0;  ///< payload bytes delivered at engines
    std::vector<Cycles> engineBusyCycles; ///< busy time per engine id

    /** Field-wise equality (doubles exact) — the bit-identical-results
     * contract of the deterministic thread pool. */
    bool operator==(const ExecutionReport &) const = default;

    /** Total energy in picojoules. */
    PicoJoules
    totalEnergyPj() const
    {
        return computeEnergyPj + nocEnergyPj + hbmEnergyPj +
               staticEnergyPj;
    }

    /** Total energy in millijoules. */
    double totalEnergyMj() const { return totalEnergyPj() * 1e-9; }

    /** Wall-clock latency in milliseconds at @p freq_ghz. */
    double
    latencyMs(double freq_ghz) const
    {
        return static_cast<double>(totalCycles) / (freq_ghz * 1e6);
    }

    /** Throughput in inferences per second at @p freq_ghz. */
    double
    throughputFps(double freq_ghz) const
    {
        const double ms = latencyMs(freq_ghz);
        return ms > 0 ? 1000.0 * batch / ms : 0.0;
    }
};

} // namespace ad::sim
