#pragma once

/**
 * @file
 * Abstract executor interface: anything that can run a mapped schedule
 * over an atomic DAG and produce an ExecutionReport. The event-driven
 * SystemSimulator is the production implementation; tests substitute
 * lightweight fakes. The optional obs::Instrumentation handle threads
 * the observability layer (trace recorder + metrics registry) through
 * an execution — pass nullptr (the default) for zero overhead.
 */

#include "core/atomic_dag.hh"
#include "core/schedule.hh"
#include "sim/report.hh"

namespace ad::obs {
struct Instrumentation;
} // namespace ad::obs

namespace ad::sim {

/** Executes mapped schedules; see SystemSimulator. */
class Executor
{
  public:
    virtual ~Executor();

    /** Execute @p schedule over @p dag, optionally instrumented. */
    virtual ExecutionReport
    execute(const core::AtomicDag &dag, const core::Schedule &schedule,
            obs::Instrumentation *ins = nullptr) const = 0;
};

} // namespace ad::sim
