#pragma once

/**
 * @file
 * Deprecated forwarding header. The schedule renderers moved to
 * `ad::obs` (obs/schedule_views.hh) so there is one observability
 * namespace; include that header and use the `ad::obs` names in new
 * code. The aliases below keep existing `ad::sim` call sites compiling
 * for one release and will then be removed.
 */

#include "obs/schedule_views.hh"

namespace ad::sim {

using TraceOptions = obs::ScheduleViewOptions;
using obs::renderEngineOccupancy;
using obs::renderScheduleCsv;
using obs::renderScheduleText;

} // namespace ad::sim
