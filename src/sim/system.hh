#pragma once

/**
 * @file
 * The scalable-accelerator system model (Fig. 1(c)): a mesh of tensor
 * engines with distributed SRAM buffers, connected by the NoC and backed
 * by an HBM stack. Executes mapped atomic-dataflow schedules Round by
 * Round with an event-driven kernel and produces an ExecutionReport.
 */

#include <string>

#include "core/atomic_dag.hh"
#include "core/residency.hh"
#include "core/schedule.hh"
#include "engine/cost_model.hh"
#include "mem/hbm_model.hh"
#include "noc/noc_model.hh"
#include "sim/event_queue.hh"
#include "sim/executor.hh"
#include "sim/mesh_view.hh"
#include "sim/report.hh"

namespace ad::sim {

/** Full-system configuration (defaults are the paper's Sec. V-A). */
struct SystemConfig
{
    engine::EngineConfig engine;
    engine::DataflowKind dataflow = engine::DataflowKind::KcPartition;
    int meshX = 8;
    int meshY = 8;
    noc::NocConfig noc;
    mem::HbmConfig hbm;
    /** Overlap next-Round HBM fetches with current-Round compute. */
    bool doubleBuffer = true;

    /** How many Rounds ahead the DMA may issue HBM fetches (the
     * schedule is static, so prefetch depth is a buffer trade-off). */
    int prefetchRounds = 4;

    /** Keep intermediates in the distributed buffers for reuse; when
     * false every intermediate goes through HBM (Fig. 10 ablation). */
    bool onChipReuse = true;

    /** Engine count. */
    int engines() const { return meshX * meshY; }

    /** Total PEs on chip. */
    int totalPes() const { return engines() * engine.pes(); }

    /** Validate all sub-configs. */
    void validate() const;

    /**
     * Canonical one-line rendering of every field (engine, dataflow,
     * mesh, NoC, HBM, simulator knobs). Two configs produce the same
     * fingerprint iff they simulate identically, so content-addressed
     * caches (serve::PlanCache) can key plans on it.
     */
    std::string fingerprint() const;
};

/**
 * The machine a MeshView of @p base exposes: @p base with the mesh
 * replaced by the view's sub-rectangle and the HBM bandwidth scaled by
 * its share. The full view returns @p base unchanged (the share-1.0
 * multiply is FP-exact), so full-view plans, fingerprints, and traces
 * are byte-identical to pre-view ones. An unresolved view is resolved
 * against @p base first.
 */
SystemConfig viewSystem(const SystemConfig &base, const MeshView &view);

/**
 * Executes a mapped Schedule over an AtomicDag.
 *
 * Timing semantics per Round: input tensors are fetched from the HBM
 * (with double-buffered prefetch issued one Round ahead) or moved over
 * the NoC from producer engines; each engine starts when its inputs have
 * landed and runs its atom's compute; the Round is synchronized by the
 * last engine to finish (Sec. III). Buffer occupancy follows the
 * ResidencyTracker with Algorithm 3 evictions; live spills are written
 * back to HBM as posted writes.
 */
class SystemSimulator : public Executor
{
  public:
    /** Create a simulator for the whole machine @p config. */
    explicit SystemSimulator(const SystemConfig &config);

    /**
     * Create a simulator for @p view of the machine @p config: timing
     * and capacity come from viewSystem(config, view), and engine
     * trace tracks are named by *global* mesh coordinates, so N
     * concurrent executors on disjoint views of one machine record
     * onto disjoint tracks. The full view is exactly the one-argument
     * constructor.
     */
    SystemSimulator(const SystemConfig &config, const MeshView &view);

    /** Execute @p schedule over @p dag and report. When @p ins carries
     * a TraceRecorder, every atom launch/retire, NoC multicast, HBM
     * transaction, spill, and Round barrier is recorded against
     * simulated time; a MetricsRegistry receives the conservation
     * counters. Null members (or a null @p ins) cost nothing. */
    ExecutionReport execute(const core::AtomicDag &dag,
                            const core::Schedule &schedule,
                            obs::Instrumentation *ins = nullptr)
        const override;

    /** Derived (view-local) configuration in use. */
    const SystemConfig &config() const { return _config; }

    /** Resolved executor view this simulator runs on. */
    const MeshView &view() const { return _view; }

  private:
    MeshView _view;       ///< resolved before _config derives from it
    SystemConfig _config; ///< viewSystem(base, _view)
};

} // namespace ad::sim
