#pragma once

/**
 * @file
 * Minimal discrete-event simulation kernel.
 *
 * Events are (time, callback) pairs processed in non-decreasing time
 * order; ties break by insertion order, which keeps runs deterministic.
 * The system simulator uses this kernel to retire engine-completion,
 * transfer-completion, and DMA events within each scheduling Round.
 */

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/common.hh"

namespace ad::sim {

/** Simulated time in accelerator cycles. */
using Tick = Cycles;

/** Deterministic priority-queue event kernel. */
class EventQueue
{
  public:
    /** Callback type; receives the firing tick. */
    using Handler = std::function<void(Tick)>;

    /** Schedule @p handler at absolute time @p when (>= now()). */
    void schedule(Tick when, Handler handler);

    /** Process events until the queue is empty. */
    void run();

    /** Process events with time <= @p until (inclusive). */
    void runUntil(Tick until);

    /** Current simulated time (last retired event's tick). */
    Tick now() const { return _now; }

    /** Pending event count. */
    std::size_t pending() const { return _queue.size(); }

    /** Drop all pending events and reset time to zero. */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Handler handler;
    };
    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> _queue;
    Tick _now = 0;
    std::uint64_t _nextSeq = 0;
};

} // namespace ad::sim
