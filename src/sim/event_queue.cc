#include "event_queue.hh"

namespace ad::sim {

void
EventQueue::schedule(Tick when, Handler handler)
{
    adAssert(when >= _now, "cannot schedule event in the past: ", when,
             " < ", _now);
    _queue.push(Event{when, _nextSeq++, std::move(handler)});
}

void
EventQueue::run()
{
    while (!_queue.empty()) {
        Event e = _queue.top();
        _queue.pop();
        _now = e.when;
        e.handler(_now);
    }
}

void
EventQueue::runUntil(Tick until)
{
    while (!_queue.empty() && _queue.top().when <= until) {
        Event e = _queue.top();
        _queue.pop();
        _now = e.when;
        e.handler(_now);
    }
    _now = std::max(_now, until);
}

void
EventQueue::reset()
{
    _queue = {};
    _now = 0;
    _nextSeq = 0;
}

} // namespace ad::sim
