#include "reference_cost_model.hh"

#include <algorithm>

namespace ad::check {

using engine::AtomWorkload;
using engine::CostResult;
using engine::DataflowKind;
using graph::OpType;

ReferenceCostModel::ReferenceCostModel(const engine::EngineConfig &config,
                                       DataflowKind kind)
    : _config(config), _kind(kind)
{
    _config.validate();
}

MacCount
ReferenceCostModel::countMacs(const AtomWorkload &atom) const
{
    // One increment per multiply-accumulate actually performed. The
    // reduction depth per output element is ci*kh*kw for dense MAC ops
    // and kh*kw for depthwise (no cross-channel reduction).
    MacCount macs = 0;
    switch (atom.type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        for (int y = 0; y < atom.h; ++y)
            for (int x = 0; x < atom.w; ++x)
                for (int o = 0; o < atom.co; ++o)
                    for (int i = 0; i < atom.ci; ++i)
                        for (int ky = 0; ky < atom.window.kh; ++ky)
                            for (int kx = 0; kx < atom.window.kw; ++kx)
                                ++macs;
        break;
      case OpType::DepthwiseConv:
        for (int y = 0; y < atom.h; ++y)
            for (int x = 0; x < atom.w; ++x)
                for (int o = 0; o < atom.co; ++o)
                    for (int ky = 0; ky < atom.window.kh; ++ky)
                        for (int kx = 0; kx < atom.window.kw; ++kx)
                            ++macs;
        break;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        break; // no multiply-accumulates
    }
    return macs;
}

Bytes
ReferenceCostModel::countIfmapBytes(const AtomWorkload &atom) const
{
    // Receptive field of the output tile, padding ignored (matching the
    // analytical model's conservative estimate), one element at a time.
    const int ih = (atom.h - 1) * atom.window.strideH + atom.window.kh;
    const int iw = (atom.w - 1) * atom.window.strideW + atom.window.kw;
    const int channels =
        (atom.type == OpType::DepthwiseConv ||
         atom.type == OpType::Pool || atom.type == OpType::GlobalPool ||
         atom.type == OpType::Eltwise)
            ? atom.co
            : atom.ci;
    Bytes bytes = 0;
    for (int y = 0; y < ih; ++y)
        for (int x = 0; x < iw; ++x)
            for (int c = 0; c < channels; ++c)
                bytes += static_cast<Bytes>(_config.bytesPerElem);
    return bytes;
}

Bytes
ReferenceCostModel::countWeightBytes(const AtomWorkload &atom) const
{
    Bytes bytes = 0;
    switch (atom.type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        for (int ky = 0; ky < atom.window.kh; ++ky)
            for (int kx = 0; kx < atom.window.kw; ++kx)
                for (int i = 0; i < atom.ci; ++i)
                    for (int o = 0; o < atom.co; ++o)
                        bytes += static_cast<Bytes>(_config.bytesPerElem);
        break;
      case OpType::DepthwiseConv:
        for (int ky = 0; ky < atom.window.kh; ++ky)
            for (int kx = 0; kx < atom.window.kw; ++kx)
                for (int o = 0; o < atom.co; ++o)
                    bytes += static_cast<Bytes>(_config.bytesPerElem);
        break;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        break; // no weights
    }
    return bytes;
}

Bytes
ReferenceCostModel::countOfmapBytes(const AtomWorkload &atom) const
{
    Bytes bytes = 0;
    for (int y = 0; y < atom.h; ++y)
        for (int x = 0; x < atom.w; ++x)
            for (int c = 0; c < atom.co; ++c)
                bytes += static_cast<Bytes>(_config.bytesPerElem);
    return bytes;
}

Cycles
ReferenceCostModel::macSteadyCycles(const AtomWorkload &atom,
                                    DataflowKind kind) const
{
    const int rows = _config.peRows;
    const int cols = _config.peCols;
    const int khw = atom.window.kh * atom.window.kw;
    Cycles steady = 0;

    if (kind == DataflowKind::KcPartition) {
        if (atom.type == OpType::DepthwiseConv) {
            // Kernel positions spatially unrolled along rows, channels
            // along columns; each output pixel is a temporal step per
            // (kernel chunk, channel chunk).
            for (int y = 0; y < atom.h; ++y)
                for (int x = 0; x < atom.w; ++x)
                    for (int k0 = 0; k0 < khw; k0 += rows)
                        for (int o0 = 0; o0 < atom.co; o0 += cols)
                            ++steady;
        } else {
            // Input channels along rows, output channels along columns;
            // every (pixel, kernel position) pair steps once per
            // (ci chunk, co chunk).
            for (int y = 0; y < atom.h; ++y)
                for (int x = 0; x < atom.w; ++x)
                    for (int k = 0; k < khw; ++k)
                        for (int i0 = 0; i0 < atom.ci; i0 += rows)
                            for (int o0 = 0; o0 < atom.co; o0 += cols)
                                ++steady;
        }
        return steady;
    }

    // YX-Partition: output rows along PE rows, columns along PE columns.
    if (atom.type == OpType::FullyConnected) {
        // H = W = 1 fallback: one output neuron per PE over the array.
        for (int o0 = 0; o0 < atom.co; o0 += rows * cols)
            for (int i = 0; i < atom.ci; ++i)
                ++steady;
        return steady;
    }
    if (atom.type == OpType::DepthwiseConv) {
        for (int y0 = 0; y0 < atom.h; y0 += rows)
            for (int x0 = 0; x0 < atom.w; x0 += cols)
                for (int k = 0; k < khw; ++k)
                    for (int o = 0; o < atom.co; ++o)
                        ++steady;
        return steady;
    }
    for (int y0 = 0; y0 < atom.h; y0 += rows)
        for (int x0 = 0; x0 < atom.w; x0 += cols)
            for (int k = 0; k < khw; ++k)
                for (int i = 0; i < atom.ci; ++i)
                    for (int o = 0; o < atom.co; ++o)
                        ++steady;
    return steady;
}

Cycles
ReferenceCostModel::vectorSteadyCycles(const AtomWorkload &atom) const
{
    const int lanes = _config.vectorLanes;
    Cycles steady = 0;
    int lane = 0;
    // A new cycle starts whenever the first lane of a group is filled.
    const auto op = [&steady, &lane, lanes]() {
        if (lane == 0)
            ++steady;
        lane = (lane + 1) % lanes;
    };
    switch (atom.type) {
      case OpType::Pool:
      case OpType::GlobalPool:
        for (int y = 0; y < atom.h; ++y)
            for (int x = 0; x < atom.w; ++x)
                for (int c = 0; c < atom.co; ++c)
                    for (int ky = 0; ky < atom.window.kh; ++ky)
                        for (int kx = 0; kx < atom.window.kw; ++kx)
                            op();
        break;
      case OpType::Eltwise:
        for (int y = 0; y < atom.h; ++y)
            for (int x = 0; x < atom.w; ++x)
                for (int c = 0; c < atom.co; ++c)
                    for (int operand = 0; operand < 2; ++operand)
                        op();
        break;
      case OpType::Concat:
      case OpType::Input:
        break; // pure data movement, no vector-unit work
      case OpType::Conv:
      case OpType::DepthwiseConv:
      case OpType::FullyConnected:
        panic("vectorSteadyCycles called on MAC op");
    }
    return steady;
}

Cycles
ReferenceCostModel::cycles(const AtomWorkload &atom) const
{
    return evaluate(atom).cycles;
}

CostResult
ReferenceCostModel::evaluate(const AtomWorkload &atom) const
{
    CostResult r;
    r.macs = countMacs(atom);
    r.ifmapBytes = countIfmapBytes(atom);
    r.weightBytes = countWeightBytes(atom);
    r.ofmapBytes = countOfmapBytes(atom);

    if (graph::isMacOp(atom.type)) {
        Cycles steady = 0;
        Cycles extra = 0;
        switch (_kind) {
          case DataflowKind::KcPartition:
            steady = macSteadyCycles(atom, DataflowKind::KcPartition);
            break;
          case DataflowKind::YxPartition:
            steady = macSteadyCycles(atom, DataflowKind::YxPartition);
            break;
          case DataflowKind::Flexible:
            steady = std::min(
                macSteadyCycles(atom, DataflowKind::KcPartition),
                macSteadyCycles(atom, DataflowKind::YxPartition));
            extra = _config.reconfigCycles;
            break;
        }
        const Cycles fill = static_cast<Cycles>(_config.peRows) +
                            static_cast<Cycles>(_config.peCols);
        r.cycles = steady + fill + extra + _config.configCycles;
        r.computeCycles =
            r.cycles - (_config.peRows + _config.peCols) -
            _config.configCycles;
        r.utilization =
            static_cast<double>(r.macs) /
            (static_cast<double>(r.cycles) * _config.pes());

        // Input re-read passes: once per column chunk of output channels
        // under KC-P (and Flexible, which keeps the KC traffic pattern),
        // once per output channel under YX-P (depthwise excepted).
        Cycles passes = 0;
        if (_kind == DataflowKind::YxPartition) {
            if (atom.type == OpType::DepthwiseConv) {
                passes = 1;
            } else {
                for (int o = 0; o < atom.co; ++o)
                    ++passes;
            }
        } else {
            for (int o0 = 0; o0 < atom.co; o0 += _config.peCols)
                ++passes;
        }
        r.sramReadBytes = r.weightBytes + r.ifmapBytes * passes;
        r.sramWriteBytes = r.ofmapBytes;
    } else {
        r.cycles = vectorSteadyCycles(atom) + _config.configCycles;
        r.computeCycles = r.cycles - _config.configCycles;
        r.utilization = 0.0;
        r.sramReadBytes = r.ifmapBytes;
        r.sramWriteBytes = r.ofmapBytes;
    }

    // Same final energy expression as the analytical model, fed by the
    // counted quantities: identical double rounding is required for the
    // exact-equality differential tests.
    const double read_bits = static_cast<double>(r.sramReadBytes) * 8.0;
    const double write_bits = static_cast<double>(r.sramWriteBytes) * 8.0;
    r.energyPj = static_cast<double>(r.macs) * _config.macEnergyPj +
                 read_bits * _config.sramReadPjPerBit +
                 write_bits * _config.sramWritePjPerBit;
    return r;
}

} // namespace ad::check
