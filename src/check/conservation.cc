#include "conservation.hh"

#include <set>
#include <sstream>
#include <utility>

namespace ad::check {

using core::AtomicDag;
using core::Placement;
using core::Schedule;

const char *
auditKindName(AuditKind kind)
{
    switch (kind) {
      case AuditKind::LaunchRetire:
        return "launch/retire";
      case AuditKind::StoreAccounting:
        return "store accounting";
      case AuditKind::DramCompulsory:
        return "DRAM compulsory";
      case AuditKind::NocConservation:
        return "NoC conservation";
      case AuditKind::EngineOverrun:
        return "engine overrun";
    }
    return "unknown";
}

Bytes
compulsoryHbmReadBytes(const AtomicDag &dag, const Schedule &schedule,
                       const sim::SystemConfig &config)
{
    Bytes input_bytes = 0;
    Bytes weight_bytes = 0;
    std::set<std::pair<graph::LayerId, int>> slices;
    for (const core::Round &round : schedule.rounds) {
        for (const Placement &p : round.placements) {
            if (p.atom < 0 ||
                static_cast<std::size_t>(p.atom) >= dag.size()) {
                continue; // validateSchedule reports this separately
            }
            if (dag.readsExternalInput(p.atom)) {
                input_bytes += dag.workload(p.atom).ifmapBytes(
                    config.engine.bytesPerElem);
            }
            const Bytes wbytes = dag.weightBytes(p.atom);
            if (wbytes > 0 &&
                slices
                    .emplace(dag.atom(p.atom).layer,
                             dag.atom(p.atom).cs)
                    .second) {
                weight_bytes += wbytes;
            }
        }
    }
    return input_bytes + weight_bytes;
}

std::vector<AuditViolation>
auditExecution(const AtomicDag &dag, const Schedule &schedule,
               const sim::SystemConfig &config,
               const sim::ExecutionReport &report)
{
    std::vector<AuditViolation> violations;
    auto complain = [&violations](AuditKind kind, auto &&...parts) {
        std::ostringstream os;
        (os << ... << parts);
        violations.push_back({kind, os.str()});
    };

    // Launch/retire conservation: the event kernel must execute exactly
    // one retirement per placement it launched, and it must launch
    // exactly the schedule's placements.
    const std::uint64_t placements = schedule.atomCount();
    if (report.launchedAtoms != placements)
        complain(AuditKind::LaunchRetire, "schedule holds ", placements,
                 " placements but ", report.launchedAtoms,
                 " atoms were launched");
    if (report.retiredAtoms != report.launchedAtoms)
        complain(AuditKind::LaunchRetire, report.launchedAtoms,
                 " atoms launched but ", report.retiredAtoms,
                 " retired");

    // With on-chip reuse every retirement is classified as stored or
    // spilled, exactly once.
    if (config.onChipReuse &&
        report.storedAtoms + report.unstoredAtoms !=
            report.retiredAtoms) {
        complain(AuditKind::StoreAccounting, report.storedAtoms,
                 " stored + ", report.unstoredAtoms, " unstored != ",
                 report.retiredAtoms, " retired");
    }

    // HBM reads can exceed the compulsory minimum (spill refills,
    // per-Round weight refetches) but never undercut it.
    const Bytes compulsory =
        compulsoryHbmReadBytes(dag, schedule, config);
    if (report.hbmReadBytes < compulsory)
        complain(AuditKind::DramCompulsory, "HBM read bytes ",
                 report.hbmReadBytes, " below compulsory traffic ",
                 compulsory);

    // Every payload byte entering the mesh leaves it at a consumer.
    if (report.nocInjectedBytes != report.nocEjectedBytes)
        complain(AuditKind::NocConservation, "NoC injected ",
                 report.nocInjectedBytes, " bytes but delivered ",
                 report.nocEjectedBytes);

    // Rounds execute back to back, so one engine's total busy time is
    // bounded by the end-to-end makespan.
    for (std::size_t e = 0; e < report.engineBusyCycles.size(); ++e) {
        if (report.engineBusyCycles[e] > report.totalCycles)
            complain(AuditKind::EngineOverrun, "engine ", e, " busy ",
                     report.engineBusyCycles[e], " of ",
                     report.totalCycles, " total cycles");
    }
    return violations;
}

bool
executionIsClean(const AtomicDag &dag, const Schedule &schedule,
                 const sim::SystemConfig &config,
                 const sim::ExecutionReport &report)
{
    return auditExecution(dag, schedule, config, report).empty();
}

} // namespace ad::check
