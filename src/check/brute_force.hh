#pragma once

/**
 * @file
 * Exhaustive round-assignment oracle for tiny atomic DAGs.
 *
 * The production schedulers (DP lookahead, greedy priority rules, the
 * layer-order ablations) prune the combination space; this oracle does
 * not. For DAGs of at most ~10 atoms it enumerates every feasible
 * sequence of synchronized Rounds — all subsets of the ready set, every
 * Round — and returns the provably optimal compute makespan (sum over
 * Rounds of the slowest member) and the minimum feasible Round count.
 *
 * These two numbers bound what any correct scheduler can do on the same
 * DAG: no schedule may beat the optimal makespan or finish in fewer
 * Rounds, and tests additionally pin how far above the optimum each
 * production mode is allowed to land.
 */

#include <vector>

#include "core/atomic_dag.hh"
#include "core/scheduler.hh"

namespace ad::check {

/** Outcome of the exhaustive enumeration. */
struct BruteForceResult
{
    Cycles optimalMakespan = 0; ///< min sum of per-Round max atom cycles
    int minRounds = 0;          ///< fewest feasible synchronized Rounds
};

/**
 * Enumerate all feasible Round assignments of @p dag on @p engines
 * engines with per-atom costs @p atom_cycles (indexed by AtomId).
 * Fatals when the DAG exceeds @p max_atoms (the state space is 2^atoms).
 */
BruteForceResult bruteForceSchedule(
    const core::AtomicDag &dag, const std::vector<Cycles> &atom_cycles,
    int engines, std::size_t max_atoms = 12);

/**
 * Compute makespan of a Round sequence under the synchronized-Round
 * timing rule: each Round costs its slowest member, communication
 * ignored. This is the quantity bruteForceSchedule() minimizes.
 */
Cycles roundComputeMakespan(const core::RoundList &rounds,
                            const std::vector<Cycles> &atom_cycles);

/** Outcome of one schedule-vs-oracle comparison. */
struct BruteForceComparison
{
    Cycles makespan = 0;        ///< compute makespan of the checked rounds
    Cycles optimalMakespan = 0; ///< exhaustive optimum on the same DAG

    /** True when the checked schedule attains the optimum — the DTT
     * planner's contract on every oracle-tractable DAG. */
    bool isOptimal() const { return makespan == optimalMakespan; }

    /** How far above the optimum the schedule landed. */
    Cycles slackCycles() const { return makespan - optimalMakespan; }
};

/**
 * Differential-oracle guard: computes the compute makespan of
 * @p rounds and the exhaustive optimum of @p dag, and fatals if the
 * schedule somehow *beats* the optimum — which can only mean the
 * oracle and the scheduler disagree about costs or dependencies.
 * Returns both numbers so callers assert their own tightness bound
 * (equality for DTT, bounded slack for the heuristics). Inherits
 * bruteForceSchedule()'s @p max_atoms tractability gate.
 */
BruteForceComparison assertNotWorseThanBruteForce(
    const core::AtomicDag &dag, const std::vector<Cycles> &atom_cycles,
    int engines, const core::RoundList &rounds,
    std::size_t max_atoms = 12);

/** Overload over a mapped Schedule: placements collapse to Round
 * membership (engine assignment does not move compute makespan). */
BruteForceComparison assertNotWorseThanBruteForce(
    const core::AtomicDag &dag, const std::vector<Cycles> &atom_cycles,
    int engines, const core::Schedule &schedule,
    std::size_t max_atoms = 12);

} // namespace ad::check
