#include "brute_force.hh"

#include <algorithm>
#include <bit>
#include <limits>

namespace ad::check {

using core::AtomicDag;
using core::AtomId;

namespace {

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

/** Memoized exhaustive search over the scheduled-set bitmask. */
class Enumerator
{
  public:
    Enumerator(const AtomicDag &dag, const std::vector<Cycles> &cycles,
               int engines)
        : _dag(&dag), _cycles(&cycles), _engines(engines),
          _n(dag.size())
    {
        _bestCycles.assign(std::size_t{1} << _n, kInfCycles);
        _bestRounds.assign(std::size_t{1} << _n, -1);
    }

    /** Min remaining (makespan, rounds) with @p mask already executed. */
    std::pair<Cycles, int>
    solve(std::uint32_t mask)
    {
        const std::uint32_t full =
            (_n == 32) ? 0xFFFFFFFFu
                       : ((std::uint32_t{1} << _n) - 1);
        if (mask == full)
            return {0, 0};
        if (_bestCycles[mask] != kInfCycles)
            return {_bestCycles[mask], _bestRounds[mask]};

        // Ready set: unscheduled atoms whose producers all executed.
        std::vector<AtomId> ready;
        for (std::size_t a = 0; a < _n; ++a) {
            if (mask & (std::uint32_t{1} << a))
                continue;
            bool ok = true;
            for (AtomId dep :
                 _dag->depsSpan(static_cast<AtomId>(a))) {
                if (!(mask & (std::uint32_t{1}
                              << static_cast<std::uint32_t>(dep)))) {
                    ok = false;
                    break;
                }
            }
            if (ok)
                ready.push_back(static_cast<AtomId>(a));
        }
        adAssert(!ready.empty(), "brute force deadlock: cyclic DAG");

        Cycles best_cycles = kInfCycles;
        int best_rounds = std::numeric_limits<int>::max();
        const std::uint32_t subsets =
            std::uint32_t{1}
            << static_cast<std::uint32_t>(ready.size());
        for (std::uint32_t pick = 1; pick < subsets; ++pick) {
            if (std::popcount(pick) > _engines)
                continue;
            Cycles round_cost = 0;
            std::uint32_t next = mask;
            for (std::size_t i = 0; i < ready.size(); ++i) {
                if (!(pick & (std::uint32_t{1} << i)))
                    continue;
                const auto a =
                    static_cast<std::size_t>(ready[i]);
                round_cost = std::max(round_cost, (*_cycles)[a]);
                next |= std::uint32_t{1} << a;
            }
            const auto [rest_cycles, rest_rounds] = solve(next);
            best_cycles =
                std::min(best_cycles, round_cost + rest_cycles);
            best_rounds = std::min(best_rounds, 1 + rest_rounds);
        }
        _bestCycles[mask] = best_cycles;
        _bestRounds[mask] = best_rounds;
        return {best_cycles, best_rounds};
    }

  private:
    const AtomicDag *_dag;
    const std::vector<Cycles> *_cycles;
    int _engines;
    std::size_t _n;
    std::vector<Cycles> _bestCycles;
    std::vector<int> _bestRounds;
};

} // namespace

BruteForceResult
bruteForceSchedule(const AtomicDag &dag,
                   const std::vector<Cycles> &atom_cycles, int engines,
                   std::size_t max_atoms)
{
    if (dag.size() > max_atoms || dag.size() > 20)
        fatal("bruteForceSchedule: DAG of ", dag.size(),
              " atoms exceeds the exhaustive-search limit of ",
              std::min<std::size_t>(max_atoms, 20));
    if (engines <= 0)
        fatal("bruteForceSchedule requires a positive engine count");
    adAssert(atom_cycles.size() == dag.size(),
             "atom cycle vector does not cover the DAG");

    Enumerator enumerator(dag, atom_cycles, engines);
    const auto [cycles, rounds] = enumerator.solve(0);
    BruteForceResult result;
    result.optimalMakespan = cycles;
    result.minRounds = rounds;
    return result;
}

BruteForceComparison
assertNotWorseThanBruteForce(const AtomicDag &dag,
                             const std::vector<Cycles> &atom_cycles,
                             int engines,
                             const core::RoundList &rounds,
                             std::size_t max_atoms)
{
    std::size_t scheduled = 0;
    for (const auto &round : rounds)
        scheduled += round.size();
    adAssert(scheduled == dag.size(),
             "rounds cover ", scheduled, " atoms but the DAG has ",
             dag.size());

    BruteForceComparison cmp;
    cmp.makespan = roundComputeMakespan(rounds, atom_cycles);
    cmp.optimalMakespan =
        bruteForceSchedule(dag, atom_cycles, engines, max_atoms)
            .optimalMakespan;
    adAssert(cmp.makespan >= cmp.optimalMakespan,
             "schedule makespan ", cmp.makespan,
             " beats the exhaustive optimum ", cmp.optimalMakespan,
             " — the oracle and the scheduler disagree");
    return cmp;
}

BruteForceComparison
assertNotWorseThanBruteForce(const AtomicDag &dag,
                             const std::vector<Cycles> &atom_cycles,
                             int engines,
                             const core::Schedule &schedule,
                             std::size_t max_atoms)
{
    core::RoundList rounds;
    rounds.reserve(schedule.rounds.size());
    for (const core::Round &round : schedule.rounds) {
        std::vector<AtomId> atoms;
        atoms.reserve(round.placements.size());
        for (const core::Placement &p : round.placements)
            atoms.push_back(p.atom);
        rounds.push_back(std::move(atoms));
    }
    return assertNotWorseThanBruteForce(dag, atom_cycles, engines,
                                        rounds, max_atoms);
}

Cycles
roundComputeMakespan(const core::RoundList &rounds,
                     const std::vector<Cycles> &atom_cycles)
{
    Cycles total = 0;
    for (const auto &round : rounds) {
        Cycles slowest = 0;
        for (AtomId a : round) {
            slowest = std::max(
                slowest, atom_cycles[static_cast<std::size_t>(a)]);
        }
        total += slowest;
    }
    return total;
}

} // namespace ad::check
