#pragma once

/**
 * @file
 * Bounded-error certification of engine::SurrogateCostModel against the
 * loop-counting ReferenceCostModel (DESIGN.md Sec. 17).
 *
 * The surrogate is allowed to steer the planner only because its
 * predictions provably stay close to ground truth inside the fitted
 * domain. sweepSurrogateError() draws randomized in-domain workloads
 * across all three dataflows, asks the surrogate for its *fitted*
 * prediction (fallback-to-exact points are excluded — grading the exact
 * model against itself would hide a broken fit), and grades it against
 * the reference model's independently counted cycles.
 * assertSurrogateError() is the fatal wrapper the tests, the CI
 * surrogate-accuracy step, and `adctl selfcheck` consumers share.
 */

#include <cstdint>
#include <string>

#include "engine/engine_config.hh"

namespace ad::check {

/**
 * Pinned relative-error tolerance for the surrogate sweep. The fit is
 * typically 3+ orders of magnitude better; the pin only moves with a
 * deliberate refit (scripts/regen_surrogate.sh) plus a DESIGN.md note.
 */
inline constexpr double kSurrogateErrorTolerance = 0.05;

/** Sweep shape knobs (defaults satisfy the >= 600-point gate). */
struct SurrogateSweepOptions
{
    /** Points drawn per dataflow (KC, YX, Flexible). */
    int pointsPerDataflow = 220;
    /** Seed for the randomized workload draw. */
    std::uint64_t seed = 0xad5eedULL;
};

/** Aggregate outcome of one bounded-error sweep. */
struct SurrogateSweepReport
{
    int points = 0;        ///< workloads drawn in total
    int fitted = 0;        ///< answered by the fitted model and graded
    int fallbacks = 0;     ///< out-of-domain draws (not graded)
    double maxRelError = 0.0;
    double meanRelError = 0.0;
    std::string worst;     ///< description of the worst-error point
};

/**
 * Run the randomized sweep for @p config across all three dataflows.
 * Workload shapes are capped so the reference model's literal MAC
 * counting stays fast; the cap is far above every fitted feature the
 * planner produces in practice.
 */
SurrogateSweepReport sweepSurrogateError(
    const engine::EngineConfig &config,
    const SurrogateSweepOptions &options = {});

/**
 * Sweep and call ad::fatal if max relative error exceeds @p tolerance,
 * if fewer than 600 points were drawn, or if fewer than half of them
 * exercised the fitted path. Returns the report for table rendering.
 */
SurrogateSweepReport assertSurrogateError(
    double tolerance = kSurrogateErrorTolerance,
    const engine::EngineConfig &config = {},
    const SurrogateSweepOptions &options = {});

} // namespace ad::check
