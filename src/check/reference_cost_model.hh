#pragma once

/**
 * @file
 * Slow-but-obviously-correct reference for ad::engine::CostModel.
 *
 * The analytical model derives cycles, traffic, and energy with
 * closed-form arithmetic (ceilDiv products). This reference re-derives
 * every quantity by direct iteration-space counting: it walks the
 * temporal loop nest of the configured dataflow one step at a time and
 * counts cycles, walks the operand footprints one element at a time and
 * counts bytes, then applies the same energy constants. Any divergence
 * between the two is a bug in one of them — the differential tests in
 * tests/test_check.cc assert exact equality (cycles, energy, and buffer
 * footprint) over a swept shape grid for both dataflows.
 *
 * Nothing here is shared with the analytical implementation except the
 * EngineConfig constants and the final energy expression (which must be
 * textually identical so double rounding agrees bit-for-bit).
 */

#include "engine/cost_model.hh"
#include "engine/engine_config.hh"

namespace ad::check {

/**
 * Loop-nest reference evaluator for one engine configuration and
 * dataflow. Mirrors the CostModel interface shape without inheriting
 * from it — the point is an independent derivation.
 */
class ReferenceCostModel
{
  public:
    /** Build a reference for @p config executing with dataflow @p kind. */
    ReferenceCostModel(const engine::EngineConfig &config,
                       engine::DataflowKind kind);

    /** Full evaluation of @p atom by direct counting. */
    engine::CostResult evaluate(const engine::AtomWorkload &atom) const;

    /** Execution cycles only. */
    Cycles cycles(const engine::AtomWorkload &atom) const;

    /** Engine configuration this reference describes. */
    const engine::EngineConfig &config() const { return _config; }

    /** Dataflow this reference describes. */
    engine::DataflowKind dataflow() const { return _kind; }

  private:
    Cycles macSteadyCycles(const engine::AtomWorkload &atom,
                           engine::DataflowKind kind) const;
    Cycles vectorSteadyCycles(const engine::AtomWorkload &atom) const;
    MacCount countMacs(const engine::AtomWorkload &atom) const;
    Bytes countIfmapBytes(const engine::AtomWorkload &atom) const;
    Bytes countWeightBytes(const engine::AtomWorkload &atom) const;
    Bytes countOfmapBytes(const engine::AtomWorkload &atom) const;

    engine::EngineConfig _config;
    engine::DataflowKind _kind;
};

} // namespace ad::check
