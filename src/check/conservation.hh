#pragma once

/**
 * @file
 * Post-run conservation audits over ad::sim::SystemSimulator executions.
 *
 * The simulator reports aggregate quantities; these audits check that
 * the aggregates obey conservation laws no correct execution can break:
 *
 *  - every launched atom retires exactly once, and exactly the
 *    schedule's placements are launched;
 *  - HBM read bytes cover the compulsory traffic (external inputs plus
 *    one fetch of every distinct weight slice touched);
 *  - NoC payload bytes injected equal payload bytes delivered;
 *  - no engine is busy for longer than the whole run (per-engine busy
 *    cycles never exceed the makespan).
 *
 * validateSchedule() guards the schedule artifact; these audits guard
 * the execution of it. `adctl validate` runs both, and the fuzz suite
 * applies them to every baseline and the atomic-dataflow pipeline.
 */

#include <string>
#include <vector>

#include "core/atomic_dag.hh"
#include "core/schedule.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::check {

/** Conservation law an execution broke. */
enum class AuditKind {
    LaunchRetire,    ///< launched != retired != scheduled placements
    StoreAccounting, ///< stored + spilled retirement counts diverge
    DramCompulsory,  ///< HBM reads below the compulsory minimum
    NocConservation, ///< injected payload bytes != delivered bytes
    EngineOverrun,   ///< an engine busy longer than the makespan
};

/** Short stable name of an audit kind (for tables and test output). */
const char *auditKindName(AuditKind kind);

/** One violated conservation law. */
struct AuditViolation
{
    AuditKind kind;
    std::string what; ///< human-readable description with the numbers
};

/**
 * Audit @p report, produced by executing @p schedule over @p dag on a
 * simulator configured with @p config. Returns all violations found
 * (empty means the execution conserved everything it must).
 */
std::vector<AuditViolation> auditExecution(
    const core::AtomicDag &dag, const core::Schedule &schedule,
    const sim::SystemConfig &config, const sim::ExecutionReport &report);

/** Convenience: true when auditExecution() finds nothing. */
bool executionIsClean(const core::AtomicDag &dag,
                      const core::Schedule &schedule,
                      const sim::SystemConfig &config,
                      const sim::ExecutionReport &report);

/**
 * The compulsory HBM read traffic of @p schedule over @p dag: bytes of
 * every external-input fetch plus one fetch of each distinct weight
 * slice. A correct execution can read more (spill refills, re-fetches),
 * never less. Exposed for tests and the adctl validate table.
 */
Bytes compulsoryHbmReadBytes(const core::AtomicDag &dag,
                             const core::Schedule &schedule,
                             const sim::SystemConfig &config);

} // namespace ad::check
