#include "surrogate_check.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "check/reference_cost_model.hh"
#include "engine/surrogate_cost_model.hh"
#include "util/random.hh"

namespace ad::check {

using engine::AtomWorkload;
using engine::DataflowKind;
using engine::EngineConfig;
using engine::SurrogateCostModel;
using graph::OpType;

namespace {

/**
 * Work ceiling per sweep point. The reference model literally iterates
 * the MAC space, so unbounded draws would make the sweep minutes long;
 * this cap keeps every point sub-millisecond while still covering the
 * shape ranges the planner's shape catalog actually emits.
 */
constexpr std::uint64_t kMaxPointWork = 2'000'000;

/** Log-uniform integer draw in [lo, hi]. */
int
logUniform(Rng &rng, int lo, int hi)
{
    const double u = rng.uniform(std::log(static_cast<double>(lo)),
                                 std::log(static_cast<double>(hi) + 1.0));
    const int v = static_cast<int>(std::exp(u));
    return std::clamp(v, lo, hi);
}

/** MAC-space size the reference model will iterate for @p atom. */
std::uint64_t
pointWork(const AtomWorkload &atom)
{
    const auto h = static_cast<std::uint64_t>(atom.h);
    const auto w = static_cast<std::uint64_t>(atom.w);
    const auto ci = static_cast<std::uint64_t>(atom.ci);
    const auto co = static_cast<std::uint64_t>(atom.co);
    const auto khw = static_cast<std::uint64_t>(atom.window.kh) *
                     static_cast<std::uint64_t>(atom.window.kw);
    switch (atom.type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        return h * w * ci * co * khw;
      case OpType::DepthwiseConv:
      case OpType::Pool:
      case OpType::GlobalPool:
        return h * w * co * khw;
      case OpType::Eltwise:
        return h * w * co * 2;
      case OpType::Input:
      case OpType::Concat:
        return 0;
    }
    return 0;
}

/**
 * One randomized in-domain workload. Shapes stay inside the offline
 * fitting sweep's ranges (tools/fit_surrogate.cc) so the fitted path is
 * exercised, and inside the work cap so the reference stays fast.
 */
AtomWorkload
randomWorkload(Rng &rng, int index)
{
    static constexpr int kKernels[] = {1, 3, 5};
    for (;;) {
        AtomWorkload atom;
        atom.h = logUniform(rng, 1, 64);
        atom.w = logUniform(rng, 1, 64);
        atom.ci = logUniform(rng, 1, 512);
        atom.co = logUniform(rng, 1, 512);
        const int k =
            kKernels[static_cast<std::size_t>(rng.uniformInt(0, 2))];
        atom.window = {k, k, 1, 1, k / 2, k / 2};
        switch (index % 5) {
          case 0:
            atom.type = OpType::Conv;
            break;
          case 1:
            atom.type = OpType::DepthwiseConv;
            atom.ci = atom.co;
            break;
          case 2:
            atom.type = OpType::FullyConnected;
            atom.h = 1;
            atom.w = 1;
            atom.ci = logUniform(rng, 1, 4096);
            atom.window = {1, 1, 1, 1, 0, 0};
            break;
          case 3: {
            atom.type =
                rng.chance(0.5) ? OpType::Pool : OpType::GlobalPool;
            atom.ci = atom.co;
            const int pk = atom.type == OpType::GlobalPool
                               ? logUniform(rng, 2, 32)
                               : std::max(2, k);
            atom.window = {pk, pk, 1, 1, 0, 0};
            break;
          }
          default:
            atom.type = OpType::Eltwise;
            atom.ci = atom.co;
            atom.window = {1, 1, 1, 1, 0, 0};
            break;
        }
        if (pointWork(atom) <= kMaxPointWork)
            return atom;
    }
}

std::string
describe(const AtomWorkload &atom, DataflowKind kind, Cycles predicted,
         Cycles reference)
{
    std::ostringstream os;
    os << graph::opName(atom.type) << " " << atom.h << "x" << atom.w
       << "x" << atom.ci << "->" << atom.co << " k"
       << atom.window.kh << " " << engine::dataflowName(kind)
       << ": surrogate " << predicted << " vs reference " << reference;
    return os.str();
}

} // namespace

SurrogateSweepReport
sweepSurrogateError(const EngineConfig &config,
                    const SurrogateSweepOptions &options)
{
    static constexpr DataflowKind kKinds[] = {
        DataflowKind::KcPartition,
        DataflowKind::YxPartition,
        DataflowKind::Flexible,
    };

    SurrogateSweepReport report;
    double err_sum = 0.0;
    for (const DataflowKind kind : kKinds) {
        const SurrogateCostModel surrogate(config, kind);
        const ReferenceCostModel reference(config, kind);
        // Per-dataflow stream: sweeps stay comparable when one
        // dataflow's point budget changes.
        Rng rng(options.seed + static_cast<std::uint64_t>(kind));
        for (int p = 0; p < options.pointsPerDataflow; ++p) {
            const AtomWorkload atom = randomWorkload(rng, p);
            ++report.points;
            Cycles predicted = 0;
            if (!surrogate.fittedCycles(atom, &predicted)) {
                ++report.fallbacks;
                continue;
            }
            ++report.fitted;
            const Cycles truth = reference.cycles(atom);
            const double rel =
                std::fabs(static_cast<double>(predicted) -
                          static_cast<double>(truth)) /
                static_cast<double>(std::max<Cycles>(truth, 1));
            err_sum += rel;
            if (rel > report.maxRelError) {
                report.maxRelError = rel;
                report.worst = describe(atom, kind, predicted, truth);
            }
        }
    }
    if (report.fitted > 0)
        report.meanRelError = err_sum / report.fitted;
    return report;
}

SurrogateSweepReport
assertSurrogateError(double tolerance, const EngineConfig &config,
                     const SurrogateSweepOptions &options)
{
    const SurrogateSweepReport report =
        sweepSurrogateError(config, options);
    if (report.points < 600) {
        fatal("surrogate sweep drew ", report.points,
              " points, below the 600-point floor");
    }
    if (report.fitted * 2 < report.points) {
        fatal("surrogate sweep hit the fitted path on only ",
              report.fitted, " of ", report.points,
              " points — the committed domain bounds have drifted");
    }
    if (report.maxRelError > tolerance) {
        fatal("surrogate max relative error ", report.maxRelError,
              " exceeds tolerance ", tolerance, " (worst: ",
              report.worst, ")");
    }
    return report;
}

} // namespace ad::check
