#include "sram_buffer.hh"

#include <algorithm>

namespace ad::mem {

SramBuffer::SramBuffer(Bytes capacity)
    : _capacity(capacity)
{
    if (capacity == 0)
        fatal("SRAM buffer capacity must be positive");
}

bool
SramBuffer::contains(ResidentKey key) const
{
    return _entries.count(key) > 0;
}

Bytes
SramBuffer::sizeOf(ResidentKey key) const
{
    auto it = _entries.find(key);
    return it == _entries.end() ? 0 : it->second;
}

bool
SramBuffer::tryAllocate(ResidentKey key, Bytes bytes)
{
    auto it = _entries.find(key);
    const Bytes current = it == _entries.end() ? 0 : it->second;
    if (_used - current + bytes > _capacity)
        return false;
    _used = _used - current + bytes;
    _entries[key] = bytes;
    return true;
}

void
SramBuffer::release(ResidentKey key)
{
    auto it = _entries.find(key);
    if (it == _entries.end())
        return;
    adAssert(_used >= it->second, "SRAM occupancy underflow");
    _used -= it->second;
    _entries.erase(it);
}

void
SramBuffer::clear()
{
    _entries.clear();
    _used = 0;
}

std::vector<ResidentKey>
SramBuffer::residents() const
{
    std::vector<ResidentKey> keys;
    keys.reserve(_entries.size());
    // adlint: unordered-iter-ok — every key is collected and the result
    // sorted below, so hash-table order never escapes this function.
    for (const auto &[key, bytes] : _entries)
        keys.push_back(key);
    // Canonical (ascending) order: callers iterate this list to make
    // eviction decisions, and Algorithm 3 breaks occupation ties by
    // scan order. Hash-table order would tie-break by libstdc++
    // bucketing — deterministic only by accident of insertion history
    // and standard-library version.
    std::sort(keys.begin(), keys.end());
    return keys;
}

} // namespace ad::mem
