#include "hbm_model.hh"

#include <algorithm>

namespace ad::mem {

double
HbmConfig::bytesPerCyclePerChannel() const
{
    // peak GB/s spread over channels, divided by cycles/s.
    return peakBandwidthGBps / channels / clockGhz;
}

void
HbmConfig::validate() const
{
    if (channels <= 0)
        fatal("HBM channel count must be positive");
    if (peakBandwidthGBps <= 0)
        fatal("HBM bandwidth must be positive");
    if (clockGhz <= 0)
        fatal("HBM clock must be positive");
    if (burstBytes == 0 || rowBytes == 0)
        fatal("HBM burst/row size must be positive");
}

HbmModel::HbmModel(HbmConfig config)
    : _config(config)
{
    _config.validate();
    reset();
}

void
HbmModel::reset()
{
    _channelFree.assign(static_cast<std::size_t>(_config.channels), 0);
    _openRow.assign(static_cast<std::size_t>(_config.channels), 0);
    _rowValid.assign(static_cast<std::size_t>(_config.channels), false);
    _stats = HbmStats{};
}

int
HbmModel::channelOf(Address addr) const
{
    return static_cast<int>((addr / _config.burstBytes) %
                            static_cast<Address>(_config.channels));
}

std::uint64_t
HbmModel::rowOf(Address addr) const
{
    return addr / (_config.rowBytes *
                   static_cast<Address>(_config.channels));
}

Cycles
HbmModel::access(Address addr, Bytes bytes, bool write, Cycles now)
{
    if (bytes == 0)
        return now;
    const double bpc = _config.bytesPerCyclePerChannel();
    Cycles done = now;
    Address cursor = addr;
    Bytes remaining = bytes;
    while (remaining > 0) {
        const Bytes chunk = std::min<Bytes>(remaining, _config.burstBytes);
        const auto ch = static_cast<std::size_t>(channelOf(cursor));
        const std::uint64_t row = rowOf(cursor);

        Cycles latency;
        if (_rowValid[ch] && _openRow[ch] == row) {
            latency = _config.rowHitLatency;
            ++_stats.rowHits;
        } else {
            latency = _config.rowMissLatency;
            ++_stats.rowMisses;
            _openRow[ch] = row;
            _rowValid[ch] = true;
        }
        const auto service = std::max<Cycles>(
            1, static_cast<Cycles>(static_cast<double>(chunk) / bpc));
        const Cycles start = std::max(now, _channelFree[ch]);
        const Cycles finish = start + latency + service;
        _channelFree[ch] = start + service;
        done = std::max(done, finish);

        if (write) {
            ++_stats.writes;
            _stats.writeBytes += chunk;
        } else {
            ++_stats.reads;
            _stats.readBytes += chunk;
        }
        _stats.energyPj += accessEnergy(chunk);

        cursor += chunk;
        remaining -= chunk;
    }
    return done;
}

Cycles
HbmModel::stream(Address addr, Bytes bytes, bool write, Cycles now)
{
    return access(addr, bytes, write, now);
}

Cycles
HbmModel::idealStreamCycles(Bytes bytes) const
{
    const double bytes_per_cycle =
        _config.peakBandwidthGBps / _config.clockGhz;
    return static_cast<Cycles>(static_cast<double>(bytes) /
                               bytes_per_cycle) +
           _config.rowMissLatency;
}

PicoJoules
HbmModel::accessEnergy(Bytes bytes) const
{
    return static_cast<double>(bytes) * 8.0 * _config.energyPjPerBit;
}

} // namespace ad::mem
