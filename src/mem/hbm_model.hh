#pragma once

/**
 * @file
 * Channelized HBM stack model — the library's substitute for Ramulator.
 *
 * The paper feeds access traces to Ramulator to obtain HBM read/write
 * cycle costs (Sec. V-A: 4-layer stack, 4 GB, 128 GB/s peak, 7 pJ/bit).
 * This model reproduces the behaviours that matter to the evaluation:
 * per-channel service queues that saturate at the peak bandwidth,
 * row-hit vs row-miss latency, and address interleaving across channels.
 */

#include <cstdint>
#include <vector>

#include "util/common.hh"

namespace ad::mem {

/** Byte address within the HBM address space. */
using Address = std::uint64_t;

/** Static HBM parameters. */
struct HbmConfig
{
    int channels = 8;                     ///< pseudo-channels
    Bytes capacityBytes = 4ULL << 30;     ///< 4 GB stack
    double peakBandwidthGBps = 128.0;     ///< aggregate peak
    double clockGhz = 0.5;                ///< accelerator clock for cycles
    Cycles rowMissLatency = 80;           ///< ACT+RD at 500 MHz (~160 ns)
    Cycles rowHitLatency = 30;            ///< CAS-only access
    Bytes burstBytes = 64;                ///< transaction granularity
    Bytes rowBytes = 2048;                ///< DRAM row per channel
    double energyPjPerBit = 7.0;          ///< Cacti-3DD access energy

    /** Bytes one channel can move per accelerator cycle. */
    double bytesPerCyclePerChannel() const;

    /** Validate parameters; fatals on nonsense values. */
    void validate() const;
};

/** Access statistics accumulated by the model. */
struct HbmStats
{
    std::uint64_t reads = 0;       ///< read transactions
    std::uint64_t writes = 0;      ///< write transactions
    Bytes readBytes = 0;
    Bytes writeBytes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    PicoJoules energyPj = 0.0;
};

/**
 * Trace-driven HBM timing model.
 *
 * Call access() with monotonically non-decreasing issue cycles per caller;
 * the model keeps one service queue per channel and returns the completion
 * cycle of each request.
 */
class HbmModel
{
  public:
    /** Create a model with @p config. */
    explicit HbmModel(HbmConfig config = {});

    /**
     * Issue a @p bytes-long access at @p addr starting no earlier than
     * cycle @p now; returns the cycle at which the last byte arrives.
     */
    Cycles access(Address addr, Bytes bytes, bool write, Cycles now);

    /**
     * Latency of moving @p bytes as one contiguous stream starting at
     * @p now, interleaved across all channels (DMA-style bulk transfer).
     */
    Cycles stream(Address addr, Bytes bytes, bool write, Cycles now);

    /** Closed-form cycles to move @p bytes at peak bandwidth (no queueing). */
    Cycles idealStreamCycles(Bytes bytes) const;

    /** Access energy of @p bytes (7 pJ/bit by default). */
    PicoJoules accessEnergy(Bytes bytes) const;

    /** Statistics so far. */
    const HbmStats &stats() const { return _stats; }

    /** Reset queues and statistics. */
    void reset();

    /** Configuration in use. */
    const HbmConfig &config() const { return _config; }

  private:
    int channelOf(Address addr) const;
    std::uint64_t rowOf(Address addr) const;

    HbmConfig _config;
    std::vector<Cycles> _channelFree;     ///< next free cycle per channel
    std::vector<std::uint64_t> _openRow;  ///< open row per channel
    std::vector<bool> _rowValid;
    HbmStats _stats;
};

} // namespace ad::mem
