#pragma once

/**
 * @file
 * Per-engine distributed SRAM buffer with named residents.
 *
 * Atomic dataflow stores intermediate tensors (ofmap atoms and weight
 * slices) in the producing engine's buffer so later Rounds can reuse them
 * over the NoC instead of the HBM (Sec. IV-C). The buffer tracks residents
 * by a caller-chosen 64-bit key, reports occupancy, and leaves eviction
 * policy to the BufferPlanner (Algorithm 3).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/common.hh"

namespace ad::mem {

/** Caller-defined identity of a resident tensor slice. */
using ResidentKey = std::uint64_t;

/** Occupancy bookkeeping for one engine's global buffer. */
class SramBuffer
{
  public:
    /** Create a buffer of @p capacity bytes. */
    explicit SramBuffer(Bytes capacity);

    /** Capacity in bytes. */
    Bytes capacity() const { return _capacity; }

    /** Bytes currently allocated. */
    Bytes used() const { return _used; }

    /** Bytes still free. */
    Bytes free() const { return _capacity - _used; }

    /** True when @p key is resident. */
    bool contains(ResidentKey key) const;

    /** Size of resident @p key; 0 when absent. */
    Bytes sizeOf(ResidentKey key) const;

    /**
     * Try to allocate @p bytes under @p key.
     * @return false when it does not fit (caller must evict first).
     * Re-allocating an existing key with a new size adjusts occupancy.
     */
    bool tryAllocate(ResidentKey key, Bytes bytes);

    /** Release @p key; no-op when absent. */
    void release(ResidentKey key);

    /** Drop every resident. */
    void clear();

    /** Keys of all residents, in ascending key order (canonical: the
     * eviction scan tie-breaks by position in this list). */
    std::vector<ResidentKey> residents() const;

  private:
    Bytes _capacity;
    Bytes _used = 0;
    std::unordered_map<ResidentKey, Bytes> _entries;
};

} // namespace ad::mem
