#include "serialize.hh"

#include <fstream>
#include <map>
#include <sstream>

#include "util/common.hh"

namespace ad::graph {

std::string
toText(const Graph &graph)
{
    std::ostringstream os;
    os << "adgraph v1 " << graph.name() << "\n";
    for (const Layer &l : graph.layers()) {
        auto src = [&graph, &l](std::size_t i) {
            return graph.layer(l.inputs[i]).name;
        };
        switch (l.type) {
          case OpType::Input:
            os << "input " << l.name << ' ' << l.out.h << ' ' << l.out.w
               << ' ' << l.out.c << "\n";
            break;
          case OpType::Conv:
            os << "conv " << l.name << ' ' << src(0) << ' ' << l.out.c
               << ' ' << l.window.kh << ' ' << l.window.kw << ' '
               << l.window.strideH << ' ' << l.window.padH << ' '
               << l.window.padW << "\n";
            break;
          case OpType::DepthwiseConv:
            os << "dwconv " << l.name << ' ' << src(0) << ' '
               << l.window.kh << ' ' << l.window.strideH << ' '
               << l.window.padH << "\n";
            break;
          case OpType::FullyConnected:
            os << "fc " << l.name << ' ' << src(0) << ' ' << l.out.c
               << "\n";
            break;
          case OpType::Pool:
            os << "pool " << l.name << ' ' << src(0) << ' '
               << l.window.kh << ' ' << l.window.strideH << ' '
               << l.window.padH << "\n";
            break;
          case OpType::GlobalPool:
            os << "gpool " << l.name << ' ' << src(0) << "\n";
            break;
          case OpType::Eltwise:
          case OpType::Concat:
            os << (l.type == OpType::Eltwise ? "add " : "concat ")
               << l.name;
            for (std::size_t i = 0; i < l.inputs.size(); ++i)
                os << ' ' << src(i);
            os << "\n";
            break;
        }
    }
    return os.str();
}

void
saveText(const Graph &graph, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot open '", path, "' for writing");
    out << toText(graph);
    if (!out)
        fatal("failed writing '", path, "'");
}

Graph
fromText(const std::string &text)
{
    std::istringstream in(text);
    std::string line;

    // Header.
    if (!std::getline(in, line))
        fatal("adgraph: empty input");
    std::istringstream header(line);
    std::string magic, version, name;
    header >> magic >> version;
    std::getline(header >> std::ws, name);
    if (magic != "adgraph" || version != "v1")
        fatal("adgraph: bad header '", line, "'");

    Graph graph(name.empty() ? "dnn" : name);
    std::map<std::string, LayerId> by_name;
    auto resolve = [&by_name](const std::string &layer) {
        auto it = by_name.find(layer);
        if (it == by_name.end())
            fatal("adgraph: unknown layer '", layer, "'");
        return it->second;
    };

    int line_no = 1;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        std::string op, layer_name;
        ss >> op >> layer_name;
        LayerId id = kNoLayer;
        if (op == "input") {
            TensorShape shape;
            ss >> shape.h >> shape.w >> shape.c;
            id = graph.input(shape, layer_name);
        } else if (op == "conv") {
            std::string src;
            int out_c, kh, kw, stride, padh, padw;
            ss >> src >> out_c >> kh >> kw >> stride >> padh >> padw;
            if (!ss)
                fatal("adgraph line ", line_no, ": malformed conv");
            // convRect applies symmetric per-dim padding from one value;
            // reconstruct via explicit pads (padh for kh, padw for kw).
            const LayerId sid = resolve(src);
            if (padh == (kh - 1) / 2 && padw == (kw - 1) / 2) {
                id = graph.convRect(sid, out_c, kh, kw, stride, -1,
                                    layer_name);
            } else {
                id = graph.convRect(sid, out_c, kh, kw, stride, padh,
                                    layer_name);
            }
        } else if (op == "dwconv") {
            std::string src;
            int k, stride, pad;
            ss >> src >> k >> stride >> pad;
            if (!ss)
                fatal("adgraph line ", line_no, ": malformed dwconv");
            id = graph.depthwiseConv(resolve(src), k, stride, pad,
                                     layer_name);
        } else if (op == "fc") {
            std::string src;
            int out_features;
            ss >> src >> out_features;
            if (!ss)
                fatal("adgraph line ", line_no, ": malformed fc");
            id = graph.fullyConnected(resolve(src), out_features,
                                      layer_name);
        } else if (op == "pool") {
            std::string src;
            int k, stride, pad;
            ss >> src >> k >> stride >> pad;
            if (!ss)
                fatal("adgraph line ", line_no, ": malformed pool");
            id = graph.pool(resolve(src), k, stride, pad, layer_name);
        } else if (op == "gpool") {
            std::string src;
            ss >> src;
            id = graph.globalPool(resolve(src), layer_name);
        } else if (op == "add" || op == "concat") {
            std::vector<LayerId> srcs;
            std::string src;
            while (ss >> src)
                srcs.push_back(resolve(src));
            id = op == "add" ? graph.add(srcs, layer_name)
                             : graph.concat(srcs, layer_name);
        } else {
            fatal("adgraph line ", line_no, ": unknown op '", op, "'");
        }
        if (!by_name.emplace(layer_name, id).second)
            fatal("adgraph line ", line_no, ": duplicate layer name '",
                  layer_name, "'");
    }
    graph.validate();
    return graph;
}

Graph
loadText(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromText(buffer.str());
}

} // namespace ad::graph
