#include "merge.hh"

#include "util/common.hh"

namespace ad::graph {

Graph
mergeGraphs(const std::vector<const Graph *> &tenants,
            const std::string &name)
{
    if (tenants.empty())
        fatal("mergeGraphs requires at least one graph");

    Graph merged(name);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
        const Graph &g = *tenants[t];
        const std::string prefix = "t" + std::to_string(t) + ".";
        // Old-id -> new-id within the merged graph.
        std::vector<LayerId> remap(g.size(), kNoLayer);

        for (const Layer &l : g.layers()) {
            std::vector<LayerId> inputs;
            inputs.reserve(l.inputs.size());
            for (LayerId src : l.inputs) {
                const LayerId mapped =
                    remap[static_cast<std::size_t>(src)];
                adAssert(mapped != kNoLayer,
                         "merge encountered unseen producer");
                inputs.push_back(mapped);
            }
            const std::string lname = prefix + l.name;
            LayerId id = kNoLayer;
            switch (l.type) {
              case OpType::Input:
                id = merged.input(l.out, lname);
                break;
              case OpType::Conv:
                id = merged.convRect(inputs[0], l.out.c, l.window.kh,
                                     l.window.kw, l.window.strideH,
                                     l.window.padH == (l.window.kh - 1) / 2 &&
                                             l.window.padW ==
                                                 (l.window.kw - 1) / 2
                                         ? -1
                                         : l.window.padH,
                                     lname);
                break;
              case OpType::DepthwiseConv:
                id = merged.depthwiseConv(inputs[0], l.window.kh,
                                          l.window.strideH,
                                          l.window.padH, lname);
                break;
              case OpType::FullyConnected:
                id = merged.fullyConnected(inputs[0], l.out.c, lname);
                break;
              case OpType::Pool:
                id = merged.pool(inputs[0], l.window.kh,
                                 l.window.strideH, l.window.padH,
                                 lname);
                break;
              case OpType::GlobalPool:
                id = merged.globalPool(inputs[0], lname);
                break;
              case OpType::Eltwise:
                id = merged.add(inputs, lname);
                break;
              case OpType::Concat:
                id = merged.concat(inputs, lname);
                break;
            }
            remap[static_cast<std::size_t>(l.id)] = id;
        }
    }
    merged.validate();
    return merged;
}

} // namespace ad::graph
