#pragma once

/**
 * @file
 * The layer-level computation graph (DAG) and its builder API.
 *
 * Networks with arbitrary wiring topology are supported (residual
 * bypasses, branching Inception cells, NAS-generated irregular cells).
 * The builder methods compute output shapes from the operator parameters
 * so model-zoo code stays declarative.
 */

#include <string>
#include <vector>

#include "graph/layer.hh"

namespace ad::graph {

/** A directed acyclic graph of layers representing one DNN inference. */
class Graph
{
  public:
    /** Create an empty graph named @p name. */
    explicit Graph(std::string name = "dnn");

    /** Model name. */
    const std::string &name() const { return _name; }

    // ------------------------------------------------------------------
    // Builder API. Each method appends a layer and returns its id.
    // ------------------------------------------------------------------

    /** Add the graph input holding a tensor of @p shape. */
    LayerId input(const TensorShape &shape, const std::string &name = "input");

    /**
     * Add a convolution with a rectangular @p kh x @p kw kernel over
     * @p src producing @p out_c channels. Output spatial dims follow the
     * standard formula floor((in + 2*pad - k) / stride) + 1; pad == -1
     * selects "same" padding per dimension.
     */
    LayerId convRect(LayerId src, int out_c, int kh, int kw,
                     int stride = 1, int pad = -1,
                     const std::string &name = "");

    /** Square-kernel convolution. */
    LayerId
    conv(LayerId src, int out_c, int k, int stride = 1, int pad = -1,
         const std::string &name = "")
    {
        return convRect(src, out_c, k, k, stride, pad, name);
    }

    /** Add a depthwise convolution (channel count preserved). */
    LayerId depthwiseConv(LayerId src, int k, int stride = 1, int pad = -1,
                          const std::string &name = "");

    /** Add a fully-connected layer with @p out_features outputs. */
    LayerId fullyConnected(LayerId src, int out_features,
                           const std::string &name = "");

    /** Add a pooling layer with window @p k and stride @p stride. */
    LayerId pool(LayerId src, int k, int stride = 0, int pad = 0,
                 const std::string &name = "");

    /** Add global average pooling (output 1x1xC). */
    LayerId globalPool(LayerId src, const std::string &name = "");

    /** Add an element-wise addition of two or more equal-shaped tensors. */
    LayerId add(const std::vector<LayerId> &srcs,
                const std::string &name = "");

    /** Add a channel concatenation (spatial dims must match). */
    LayerId concat(const std::vector<LayerId> &srcs,
                   const std::string &name = "");

    // ------------------------------------------------------------------
    // Accessors.
    // ------------------------------------------------------------------

    /** Number of layers, graph inputs included. */
    std::size_t size() const { return _layers.size(); }

    /** Layer by id. */
    const Layer &layer(LayerId id) const;

    /** All layers in insertion order (which is a topological order). */
    const std::vector<Layer> &layers() const { return _layers; }

    /** Consumers of @p id. */
    const std::vector<LayerId> &successors(LayerId id) const;

    /** Layers with no successors. */
    std::vector<LayerId> sinks() const;

    /**
     * Longest-path depth of every layer from the graph sources
     * (Sec. IV-B: layers at equal depth can run in parallel once all
     * shallower depths are complete).
     */
    std::vector<int> depths() const;

    /** Total MAC count across all layers. */
    MacCount totalMacs() const;

    /** Total weight parameter count. */
    std::int64_t totalParams() const;

    /** Count of layers excluding graph inputs. */
    std::size_t layerCount() const;

    /** Count of MAC (PE-array) layers. */
    std::size_t macLayerCount() const;

    /**
     * Check structural invariants (acyclicity by construction, shape
     * agreement of eltwise inputs, positive dims); fatals on violation.
     */
    void validate() const;

  private:
    LayerId append(Layer layer);
    static int resolvePad(int k, int pad);

    std::string _name;
    std::vector<Layer> _layers;
    std::vector<std::vector<LayerId>> _successors;
};

} // namespace ad::graph
