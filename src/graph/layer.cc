#include "layer.hh"

namespace ad::graph {

bool
isMacOp(OpType type)
{
    switch (type) {
      case OpType::Conv:
      case OpType::DepthwiseConv:
      case OpType::FullyConnected:
        return true;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        return false;
    }
    return false;
}

bool
isVectorOp(OpType type)
{
    switch (type) {
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
        return true;
      case OpType::Input:
      case OpType::Conv:
      case OpType::DepthwiseConv:
      case OpType::FullyConnected:
      case OpType::Concat:
        return false;
    }
    return false;
}

const char *
opName(OpType type)
{
    switch (type) {
      case OpType::Input:
        return "Input";
      case OpType::Conv:
        return "Conv";
      case OpType::DepthwiseConv:
        return "DepthwiseConv";
      case OpType::FullyConnected:
        return "FC";
      case OpType::Pool:
        return "Pool";
      case OpType::GlobalPool:
        return "GlobalPool";
      case OpType::Eltwise:
        return "Eltwise";
      case OpType::Concat:
        return "Concat";
    }
    return "?";
}

MacCount
Layer::macs() const
{
    const auto out_elems = static_cast<MacCount>(out.elems());
    switch (type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        return out_elems * in.c * window.kh * window.kw;
      case OpType::DepthwiseConv:
        return out_elems * window.kh * window.kw;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        return 0;
    }
    return 0;
}

std::int64_t
Layer::paramCount() const
{
    switch (type) {
      case OpType::Conv:
      case OpType::FullyConnected:
        return static_cast<std::int64_t>(out.c) * in.c * window.kh *
               window.kw;
      case OpType::DepthwiseConv:
        return static_cast<std::int64_t>(out.c) * window.kh * window.kw;
      case OpType::Input:
      case OpType::Pool:
      case OpType::GlobalPool:
      case OpType::Eltwise:
      case OpType::Concat:
        return 0;
    }
    return 0;
}

} // namespace ad::graph
