#pragma once

/**
 * @file
 * Plain-text serialization of layer graphs — a lightweight stand-in for
 * the ONNX import/export path: models can be saved, edited by hand, and
 * reloaded without touching C++.
 *
 * Format (one layer per line, '#' comments):
 *   adgraph v1 <model-name>
 *   input <name> <h> <w> <c>
 *   conv <name> <src> <out_c> <kh> <kw> <stride> <padh> <padw>
 *   dwconv <name> <src> <k> <stride> <pad>
 *   fc <name> <src> <out_features>
 *   pool <name> <src> <k> <stride> <pad>
 *   gpool <name> <src>
 *   add <name> <src1> <src2> [...]
 *   concat <name> <src1> [...]
 */

#include <iosfwd>
#include <string>

#include "graph/graph.hh"

namespace ad::graph {

/** Serialize @p graph to the adgraph v1 text format. */
std::string toText(const Graph &graph);

/** Write @p graph to @p path; fatals on I/O failure. */
void saveText(const Graph &graph, const std::string &path);

/** Parse a graph from adgraph v1 text; fatals on malformed input. */
Graph fromText(const std::string &text);

/** Load a graph from @p path; fatals on I/O or parse failure. */
Graph loadText(const std::string &path);

} // namespace ad::graph
