#include "graph.hh"

#include <algorithm>

#include "util/common.hh"

namespace ad::graph {

Graph::Graph(std::string name)
    : _name(std::move(name))
{}

int
Graph::resolvePad(int k, int pad)
{
    // pad == -1 means "same" padding for odd kernels: (k - 1) / 2.
    return pad < 0 ? (k - 1) / 2 : pad;
}

LayerId
Graph::append(Layer layer)
{
    layer.id = static_cast<LayerId>(_layers.size());
    if (layer.name.empty())
        layer.name = std::string(opName(layer.type)) + "_" +
                     std::to_string(layer.id);
    for (LayerId src : layer.inputs) {
        adAssert(src >= 0 && src < layer.id,
                 "graph edges must point to already-added layers");
        _successors[static_cast<std::size_t>(src)].push_back(layer.id);
    }
    _layers.push_back(std::move(layer));
    _successors.emplace_back();
    return _layers.back().id;
}

LayerId
Graph::input(const TensorShape &shape, const std::string &name)
{
    Layer l;
    l.type = OpType::Input;
    l.name = name;
    l.in = shape;
    l.out = shape;
    return append(std::move(l));
}

LayerId
Graph::convRect(LayerId src, int out_c, int kh, int kw, int stride,
                int pad, const std::string &name)
{
    const Layer &producer = layer(src);
    Layer l;
    l.type = OpType::Conv;
    l.name = name;
    l.in = producer.out;
    l.window = {kh, kw, stride, stride, resolvePad(kh, pad),
                resolvePad(kw, pad)};
    l.out.h = (l.in.h + 2 * l.window.padH - kh) / stride + 1;
    l.out.w = (l.in.w + 2 * l.window.padW - kw) / stride + 1;
    l.out.c = out_c;
    l.inputs = {src};
    if (l.out.h <= 0 || l.out.w <= 0)
        fatal("conv '", name, "' produces empty output: k=", kh, "x", kw,
              " stride=", stride, " on ", l.in.h, "x", l.in.w);
    return append(std::move(l));
}

LayerId
Graph::depthwiseConv(LayerId src, int k, int stride, int pad,
                     const std::string &name)
{
    const Layer &producer = layer(src);
    Layer l;
    l.type = OpType::DepthwiseConv;
    l.name = name;
    l.in = producer.out;
    l.window = {k, k, stride, stride, resolvePad(k, pad), resolvePad(k, pad)};
    l.out.h = (l.in.h + 2 * l.window.padH - k) / stride + 1;
    l.out.w = (l.in.w + 2 * l.window.padW - k) / stride + 1;
    l.out.c = l.in.c;
    l.inputs = {src};
    if (l.out.h <= 0 || l.out.w <= 0)
        fatal("depthwiseConv '", name, "' produces empty output");
    return append(std::move(l));
}

LayerId
Graph::fullyConnected(LayerId src, int out_features, const std::string &name)
{
    const Layer &producer = layer(src);
    Layer l;
    l.type = OpType::FullyConnected;
    l.name = name;
    // FC is CONV with H = W = K = 1 (paper Sec. IV-A footnote): flatten the
    // producer tensor into channels.
    l.in = {1, 1, static_cast<int>(producer.out.elems())};
    l.window = {};
    l.out = {1, 1, out_features};
    l.inputs = {src};
    return append(std::move(l));
}

LayerId
Graph::pool(LayerId src, int k, int stride, int pad, const std::string &name)
{
    if (stride == 0)
        stride = k;
    const Layer &producer = layer(src);
    Layer l;
    l.type = OpType::Pool;
    l.name = name;
    l.in = producer.out;
    l.window = {k, k, stride, stride, pad, pad};
    l.out.h = (l.in.h + 2 * pad - k) / stride + 1;
    l.out.w = (l.in.w + 2 * pad - k) / stride + 1;
    l.out.c = l.in.c;
    l.inputs = {src};
    if (l.out.h <= 0 || l.out.w <= 0)
        fatal("pool '", name, "' produces empty output");
    return append(std::move(l));
}

LayerId
Graph::globalPool(LayerId src, const std::string &name)
{
    const Layer &producer = layer(src);
    Layer l;
    l.type = OpType::GlobalPool;
    l.name = name;
    l.in = producer.out;
    l.window = {l.in.h, l.in.w, 1, 1, 0, 0};
    l.out = {1, 1, l.in.c};
    l.inputs = {src};
    return append(std::move(l));
}

LayerId
Graph::add(const std::vector<LayerId> &srcs, const std::string &name)
{
    if (srcs.size() < 2)
        fatal("eltwise add requires at least two inputs");
    const TensorShape shape = layer(srcs.front()).out;
    for (LayerId src : srcs) {
        if (!(layer(src).out == shape))
            fatal("eltwise add '", name, "' input shapes differ: ",
                  layer(src).name, " vs ", layer(srcs.front()).name);
    }
    Layer l;
    l.type = OpType::Eltwise;
    l.name = name;
    l.in = shape;
    l.out = shape;
    l.inputs = srcs;
    return append(std::move(l));
}

LayerId
Graph::concat(const std::vector<LayerId> &srcs, const std::string &name)
{
    if (srcs.empty())
        fatal("concat requires at least one input");
    const TensorShape first = layer(srcs.front()).out;
    int channels = 0;
    for (LayerId src : srcs) {
        const TensorShape s = layer(src).out;
        if (s.h != first.h || s.w != first.w)
            fatal("concat '", name, "' spatial dims differ: ",
                  layer(src).name, " is ", s.h, "x", s.w, " vs ", first.h,
                  "x", first.w);
        channels += s.c;
    }
    Layer l;
    l.type = OpType::Concat;
    l.name = name;
    l.in = first;
    l.out = {first.h, first.w, channels};
    l.inputs = srcs;
    return append(std::move(l));
}

const Layer &
Graph::layer(LayerId id) const
{
    adAssert(id >= 0 && static_cast<std::size_t>(id) < _layers.size(),
             "layer id out of range: ", id);
    return _layers[static_cast<std::size_t>(id)];
}

const std::vector<LayerId> &
Graph::successors(LayerId id) const
{
    adAssert(id >= 0 && static_cast<std::size_t>(id) < _successors.size(),
             "layer id out of range: ", id);
    return _successors[static_cast<std::size_t>(id)];
}

std::vector<LayerId>
Graph::sinks() const
{
    std::vector<LayerId> result;
    for (const Layer &l : _layers) {
        if (_successors[static_cast<std::size_t>(l.id)].empty())
            result.push_back(l.id);
    }
    return result;
}

std::vector<int>
Graph::depths() const
{
    // Insertion order is topological, so one forward pass suffices.
    std::vector<int> depth(_layers.size(), 0);
    for (const Layer &l : _layers) {
        int d = 0;
        for (LayerId src : l.inputs)
            d = std::max(d, depth[static_cast<std::size_t>(src)] + 1);
        depth[static_cast<std::size_t>(l.id)] = d;
    }
    return depth;
}

MacCount
Graph::totalMacs() const
{
    MacCount total = 0;
    for (const Layer &l : _layers)
        total += l.macs();
    return total;
}

std::int64_t
Graph::totalParams() const
{
    std::int64_t total = 0;
    for (const Layer &l : _layers)
        total += l.paramCount();
    return total;
}

std::size_t
Graph::layerCount() const
{
    std::size_t n = 0;
    for (const Layer &l : _layers) {
        if (l.type != OpType::Input)
            ++n;
    }
    return n;
}

std::size_t
Graph::macLayerCount() const
{
    std::size_t n = 0;
    for (const Layer &l : _layers) {
        if (l.onPeArray())
            ++n;
    }
    return n;
}

void
Graph::validate() const
{
    if (_layers.empty())
        fatal("graph '", _name, "' is empty");
    bool has_input = false;
    for (const Layer &l : _layers) {
        if (l.type == OpType::Input) {
            has_input = true;
            if (!l.inputs.empty())
                fatal("input layer '", l.name, "' must not have producers");
        } else if (l.inputs.empty()) {
            fatal("layer '", l.name, "' has no producers");
        }
        if (l.out.h <= 0 || l.out.w <= 0 || l.out.c <= 0)
            fatal("layer '", l.name, "' has non-positive output dims");
        if (l.onPeArray() && l.in.c <= 0)
            fatal("layer '", l.name, "' has non-positive input channels");
    }
    if (!has_input)
        fatal("graph '", _name, "' has no input layer");
}

} // namespace ad::graph
