#pragma once

/**
 * @file
 * Multi-network composition: merge several independent DNN graphs into
 * one DAG so the atomic-dataflow scheduler co-schedules them on the same
 * accelerator. This is the multi-tenancy scenario the paper's related
 * work discusses (HDA, PREMA, Layerweaver): atoms of both tenants fill
 * Rounds together, so one tenant's low-parallelism phases are padded
 * with the other's work instead of idle engines.
 */

#include <vector>

#include "graph/graph.hh"

namespace ad::graph {

/**
 * Merge @p tenants into a single graph named @p name. Each input graph
 * keeps its own input layer and wiring; layer names are prefixed with
 * "t<i>." to stay unique.
 */
Graph mergeGraphs(const std::vector<const Graph *> &tenants,
                  const std::string &name = "multi_tenant");

} // namespace ad::graph
