#pragma once

/**
 * @file
 * Layer-level intermediate representation of a DNN inference workload.
 *
 * Mirrors what the paper's ONNX front-end parser extracts: operator type,
 * tensor parameters (Fig. 1(b)), and data dependencies. The scheduler only
 * ever consumes this IR, so constructing graphs programmatically (see
 * ad::models) exercises the identical downstream code path as an ONNX
 * import would.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hh"

namespace ad::graph {

/** Identifier of a layer within one Graph. */
using LayerId = std::int32_t;

/** Sentinel for "no layer". */
constexpr LayerId kNoLayer = -1;

/** Operator categories relevant to scheduling. */
enum class OpType {
    Input,          ///< graph source holding an external input tensor
    Conv,           ///< standard convolution (includes 1x1)
    DepthwiseConv,  ///< depthwise-separable convolution (groups == channels)
    FullyConnected, ///< dense layer; CONV with H=W=K=1 (paper Sec. IV-A)
    Pool,           ///< max/avg pooling (vector unit)
    GlobalPool,     ///< global average pooling (vector unit)
    Eltwise,        ///< element-wise add (residual bypass; vector unit)
    Concat,         ///< channel concatenation (no compute, pure data motion)
};

/** True for operators executed on the PE array (MAC-dominated). */
bool isMacOp(OpType type);

/** True for operators executed on the per-engine vector unit. */
bool isVectorOp(OpType type);

/** Human-readable operator name. */
const char *opName(OpType type);

/** Height x width x channels of one feature map. */
struct TensorShape
{
    int h = 1; ///< feature-map height
    int w = 1; ///< feature-map width
    int c = 1; ///< channels

    /** Total element count. */
    std::int64_t
    elems() const
    {
        return static_cast<std::int64_t>(h) * w * c;
    }

    /** Byte size given @p bytes_per_elem (INT8 default). */
    Bytes
    bytes(int bytes_per_elem = 1) const
    {
        return static_cast<Bytes>(elems()) * bytes_per_elem;
    }

    bool operator==(const TensorShape &) const = default;
};

/** Spatial window parameters for Conv/Pool-like operators. */
struct WindowParams
{
    int kh = 1;     ///< kernel height
    int kw = 1;     ///< kernel width
    int strideH = 1;
    int strideW = 1;
    int padH = 0;   ///< symmetric top/bottom padding
    int padW = 0;   ///< symmetric left/right padding

    bool operator==(const WindowParams &) const = default;
};

/**
 * One vertex of the layer-level DAG.
 *
 * A layer consumes the output tensors of its @c inputs and produces one
 * output tensor of shape @c out. For Conv-like layers the primary input
 * shape is @c in; Concat layers derive their channel count from all inputs.
 */
struct Layer
{
    LayerId id = kNoLayer;
    std::string name;
    OpType type = OpType::Input;
    TensorShape in;       ///< primary input feature-map shape
    TensorShape out;      ///< output feature-map shape
    WindowParams window;  ///< valid for Conv/DepthwiseConv/Pool/FC
    std::vector<LayerId> inputs; ///< producer layers, in argument order

    /** Multiply-accumulate count of this layer (0 for vector/data ops). */
    MacCount macs() const;

    /** Weight parameter count (0 for weight-less ops). */
    std::int64_t paramCount() const;

    /** Weight bytes given @p bytes_per_elem. */
    Bytes
    weightBytes(int bytes_per_elem = 1) const
    {
        return static_cast<Bytes>(paramCount()) * bytes_per_elem;
    }

    /** True if this layer performs MAC work on the PE array. */
    bool onPeArray() const { return isMacOp(type); }
};

} // namespace ad::graph
