#pragma once

/**
 * @file
 * Content-addressed plan cache for the serving layer.
 *
 * Planning is the expensive step of the serving loop (the SA search runs
 * for seconds on the large zoo networks, while a cached dispatch costs
 * microseconds), and plans are pure functions of their inputs — the PR 1
 * determinism contract. The cache therefore keys whole PlanResults on
 * the *content* of everything that influences planning: the strategy
 * name, the adgraph text of the workload, the batch, the
 * SystemConfig fingerprint, and the orchestrator options. Two requests
 * with byte-equal keys are guaranteed byte-equal plans, so a cache hit
 * replays bit-identically to a fresh plan (asserted by the property
 * tests in tests/test_serve.cc).
 *
 * Eviction is least-recently-used under a byte budget, with the logical
 * access tick — never wall time — as the recency clock, so the eviction
 * sequence is a deterministic function of the lookup/insert sequence.
 * An entry larger than the whole budget is never admitted (it would
 * evict everything and still violate the budget); such oversize plans
 * are counted and simply re-planned each time.
 */

#include <map>
#include <memory>
#include <string>

#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "graph/graph.hh"
#include "sim/system.hh"
#include "util/thread_annotations.hh"

namespace ad::serve {

/**
 * Canonical cache key. The wrapped text is the full canonical rendering
 * (not a hash), so distinct configurations can never collide.
 */
struct PlanKey
{
    std::string text;

    bool operator<(const PlanKey &o) const { return text < o.text; }
    bool operator==(const PlanKey &o) const { return text == o.text; }
};

/**
 * Build the canonical key for planning @p graph with strategy
 * @p strategy under @p system and @p options. The graph enters via its
 * adgraph serialization, so renamed-but-identical models share plans and
 * structurally different models never do.
 */
PlanKey makePlanKey(const std::string &strategy,
                    const graph::Graph &graph,
                    const sim::SystemConfig &system,
                    const core::OrchestratorOptions &options);

/** Cache observability snapshot. */
struct PlanCacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t oversize = 0; ///< inserts rejected as > whole budget
    std::size_t entries = 0;
    Bytes bytes = 0; ///< current accounted footprint
};

/** Concurrency-safe byte-budgeted LRU cache of whole PlanResults. */
class PlanCache
{
  public:
    /** Create a cache holding at most @p budget_bytes of plans. */
    explicit PlanCache(Bytes budget_bytes);

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /**
     * The cached plan for @p key, or null on a miss. A hit refreshes
     * the entry's recency and counts toward stats().hits.
     */
    std::shared_ptr<const core::PlanResult> lookup(const PlanKey &key);

    /**
     * Insert @p plan under @p key and return the shared entry (or the
     * plan itself, unshared, when it exceeds the whole budget). Evicts
     * least-recently-used entries until the accounted footprint fits
     * the budget again. Re-inserting an existing key refreshes the
     * stored plan.
     */
    std::shared_ptr<const core::PlanResult> insert(const PlanKey &key,
                                                   core::PlanResult &&plan);

    /** Accounted footprint of one plan plus its key text. */
    static Bytes planBytes(const PlanKey &key,
                           const core::PlanResult &plan);

    /** Byte budget this cache was created with. */
    Bytes budgetBytes() const { return _budget; }

    /** Counters and current footprint. */
    PlanCacheStats stats() const;

  private:
    struct Entry
    {
        std::shared_ptr<const core::PlanResult> plan;
        Bytes bytes = 0;
        std::uint64_t lastUse = 0;
    };

    /** Drop LRU entries until the footprint fits the budget. */
    void evictToBudget() AD_REQUIRES(_mu);

    const Bytes _budget;
    mutable util::Mutex _mu;
    std::map<PlanKey, Entry> _entries AD_GUARDED_BY(_mu);
    std::uint64_t _tick AD_GUARDED_BY(_mu) = 0;
    PlanCacheStats _stats AD_GUARDED_BY(_mu);
};

} // namespace ad::serve
