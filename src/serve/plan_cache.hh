#pragma once

/**
 * @file
 * Content-addressed plan cache for the serving layer.
 *
 * Planning is the expensive step of the serving loop (the SA search runs
 * for seconds on the large zoo networks, while a cached dispatch costs
 * microseconds), and plans are pure functions of their inputs — the PR 1
 * determinism contract. The cache therefore keys whole PlanResults on
 * the *content* of everything that influences planning: the strategy
 * name, the adgraph text of the workload, the batch, the
 * SystemConfig fingerprint, and the orchestrator options. Two requests
 * with byte-equal keys are guaranteed byte-equal plans, so a cache hit
 * replays bit-identically to a fresh plan (asserted by the property
 * tests in tests/test_serve.cc).
 *
 * Eviction is delegated to a pluggable EvictionPolicy (LRU by default)
 * under a byte budget, with logical access ticks — never wall time — as
 * the recency clock, so the eviction sequence is a deterministic
 * function of the lookup/insert sequence. An entry larger than the
 * whole budget is never admitted (it would evict everything and still
 * violate the budget); such oversize plans are counted and simply
 * re-planned each time.
 *
 * A PlanStore can be attached as a write-through second tier
 * (DESIGN.md Sec. 13): every insert also persists to disk, and a
 * memory miss consults the store before giving up — a hit there
 * hydrates the plan back into the memory tier, so warm plans survive
 * process restarts. Oversize plans still write through (the store has
 * no byte budget), which is exactly what lets a restarted replica skip
 * even the plans the memory tier cannot hold.
 */

#include <map>
#include <memory>
#include <string>

#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "graph/graph.hh"
#include "serve/eviction_policy.hh"
#include "sim/system.hh"
#include "util/thread_annotations.hh"

namespace ad::serve {

class PlanStore;

/**
 * Canonical cache key. The wrapped text is the full canonical rendering
 * (not a hash), so distinct configurations can never collide.
 */
struct PlanKey
{
    std::string text;

    bool operator<(const PlanKey &o) const { return text < o.text; }
    bool operator==(const PlanKey &o) const { return text == o.text; }
};

/**
 * Build the canonical key for planning @p graph with strategy
 * @p strategy under @p system and @p options, for executor @p view
 * (default: the whole mesh). The graph enters via its adgraph
 * serialization, so renamed-but-identical models share plans and
 * structurally different models never do. The view enters via its
 * origin-free shapeKey(), so sub-mesh plans never alias full-mesh
 * plans, while equally-shaped sub-meshes (plans are origin-invariant)
 * share cache and store entries.
 */
PlanKey makePlanKey(const std::string &strategy,
                    const graph::Graph &graph,
                    const sim::SystemConfig &system,
                    const core::OrchestratorOptions &options,
                    const sim::MeshView &view = {});

/** Cache observability snapshot. */
struct PlanCacheStats
{
    std::uint64_t hits = 0;   ///< lookups served (memory or store)
    std::uint64_t misses = 0; ///< lookups served by neither tier
    std::uint64_t evictions = 0;
    std::uint64_t oversize = 0; ///< admissions rejected as > whole budget
    std::uint64_t storeHits = 0; ///< hits hydrated from the store tier
    std::size_t entries = 0;
    Bytes bytes = 0; ///< current accounted footprint
};

/** Concurrency-safe byte-budgeted cache of whole PlanResults. */
class PlanCache
{
  public:
    /**
     * Create a cache holding at most @p budget_bytes of plans, with
     * @p policy choosing eviction victims (LRU when null).
     */
    explicit PlanCache(Bytes budget_bytes,
                       std::unique_ptr<EvictionPolicy> policy = nullptr);

    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    /**
     * Attach @p store as the write-through second tier (null detaches).
     * Not synchronized against in-flight operations: wire the store up
     * before the cache is shared across threads (ServeLoop does this in
     * its constructor).
     */
    void attachStore(PlanStore *store) { _store = store; }

    /**
     * The cached plan for @p key, or null on a miss in both tiers. A
     * memory hit refreshes the entry's recency; a store hit hydrates
     * the plan into the memory tier. Either counts toward
     * stats().hits (store hits additionally toward stats().storeHits).
     */
    std::shared_ptr<const core::PlanResult> lookup(const PlanKey &key);

    /**
     * Insert @p plan under @p key and return the shared entry (or the
     * plan itself, unshared, when it exceeds the whole budget). Writes
     * through to the attached store, then evicts per the policy until
     * the accounted footprint fits the budget again. Re-inserting an
     * existing key refreshes the stored plan.
     */
    std::shared_ptr<const core::PlanResult> insert(const PlanKey &key,
                                                   core::PlanResult &&plan);

    /** Accounted footprint of one plan plus its key text. */
    static Bytes planBytes(const PlanKey &key,
                           const core::PlanResult &plan);

    /** Byte budget this cache was created with. */
    Bytes budgetBytes() const { return _budget; }

    /** Eviction policy name ("lru"). */
    const char *policyName() const;

    /** Counters and current footprint. */
    PlanCacheStats stats() const;

  private:
    struct Entry
    {
        std::shared_ptr<const core::PlanResult> plan;
        Bytes bytes = 0;
    };

    /** Admit @p shared (@p bytes accounted) into the memory tier. */
    void admitLocked(const PlanKey &key,
                     const std::shared_ptr<const core::PlanResult> &shared,
                     Bytes bytes) AD_REQUIRES(_mu);

    /** Drop policy-chosen victims until the footprint fits the budget. */
    void evictToBudget() AD_REQUIRES(_mu);

    const Bytes _budget;
    PlanStore *_store = nullptr; ///< set before concurrent use
    mutable util::Mutex _mu;
    std::map<PlanKey, Entry> _entries AD_GUARDED_BY(_mu);
    std::unique_ptr<EvictionPolicy> _policy AD_GUARDED_BY(_mu);
    PlanCacheStats _stats AD_GUARDED_BY(_mu);
};

} // namespace ad::serve
