#include "plan_cache.hh"

#include <sstream>
#include <utility>

#include "core/scheduler.hh"
#include "graph/serialize.hh"
#include "serve/plan_store.hh"

namespace ad::serve {

PlanKey
makePlanKey(const std::string &strategy, const graph::Graph &graph,
            const sim::SystemConfig &system,
            const core::OrchestratorOptions &options,
            const sim::MeshView &view)
{
    std::ostringstream os;
    os << "strategy " << strategy << '\n';
    os << "system " << system.fingerprint() << '\n';
    os << view.resolved(system.meshX, system.meshY).shapeKey() << '\n';
    os << "options batch=" << options.batch << " atom_gen="
       << (options.atomGen == core::AtomGenMode::Sa ? "sa" : "even")
       << " sa=" << options.sa.maxIterations << '/'
       << options.sa.moveLength << '/' << options.sa.epsilon << '/'
       << options.sa.initialTemp << '/' << options.sa.lambda << '/'
       << options.sa.seed
       << " sched=" << core::schedModeName(options.scheduler.mode) << '/'
       << options.scheduler.lookaheadDepth << '/'
       << options.scheduler.residencyWindow << '/'
       << options.scheduler.hbmBytesPerCycle << '/'
       << options.scheduler.dpAtomLimit << '/'
       << options.scheduler.nocBytesPerCycle
       << " mapper=" << options.mapper.maxPermutationLayers << '/'
       << options.mapper.optimize << '/' << options.mapper.stableOrder
       << " reuse=" << options.onChipReuse
       << " max_atoms=" << options.maxAtoms;
    // Appended only when screening is on: plans produced with
    // surrogate screening may legitimately differ from unscreened
    // ones, so they get their own key — while every key minted with
    // screening off stays byte-identical with historical plan-store
    // artifacts.
    if (options.surrogate)
        os << " surrogate=1";
    os << '\n';
    os << "graph\n" << graph::toText(graph);
    return PlanKey{os.str()};
}

PlanCache::PlanCache(Bytes budget_bytes,
                     std::unique_ptr<EvictionPolicy> policy)
    : _budget(budget_bytes),
      _policy(policy ? std::move(policy)
                     : std::make_unique<LruPolicy>())
{}

const char *
PlanCache::policyName() const
{
    util::MutexLock lk(_mu);
    return _policy->name();
}

Bytes
PlanCache::planBytes(const PlanKey &key, const core::PlanResult &plan)
{
    Bytes bytes = sizeof(core::PlanResult) + key.text.size();
    if (plan.dag)
        bytes += plan.dag->memoryBytes();
    bytes += plan.schedule.rounds.size() * sizeof(core::Round);
    bytes += plan.schedule.atomCount() * sizeof(core::Placement);
    bytes += plan.report.engineBusyCycles.size() * sizeof(Cycles);
    return bytes;
}

std::shared_ptr<const core::PlanResult>
PlanCache::lookup(const PlanKey &key)
{
    {
        util::MutexLock lk(_mu);
        const auto it = _entries.find(key);
        if (it != _entries.end()) {
            ++_stats.hits;
            _policy->touched(key.text);
            return it->second.plan;
        }
    }

    // Memory miss: consult the persistent tier (I/O outside the lock),
    // hydrating a hit back into memory so repeats stay cheap.
    if (_store) {
        if (auto plan = _store->load(key)) {
            auto shared = std::make_shared<const core::PlanResult>(
                std::move(*plan));
            const Bytes bytes = planBytes(key, *shared);
            util::MutexLock lk(_mu);
            ++_stats.hits;
            ++_stats.storeHits;
            admitLocked(key, shared, bytes);
            return shared;
        }
    }

    util::MutexLock lk(_mu);
    ++_stats.misses;
    return nullptr;
}

std::shared_ptr<const core::PlanResult>
PlanCache::insert(const PlanKey &key, core::PlanResult &&plan)
{
    const Bytes bytes = planBytes(key, plan);
    auto shared = std::make_shared<const core::PlanResult>(
        std::move(plan));
    // Write-through before admission, outside the cache lock: the store
    // serializes its own I/O, and even a memory-oversize plan is worth
    // persisting — the next process hydrates it instead of recompiling.
    if (_store)
        _store->put(key, *shared);
    util::MutexLock lk(_mu);
    admitLocked(key, shared, bytes);
    return shared;
}

void
PlanCache::admitLocked(const PlanKey &key,
                       const std::shared_ptr<const core::PlanResult> &shared,
                       Bytes bytes)
{
    if (bytes > _budget) {
        ++_stats.oversize;
        return;
    }
    auto &entry = _entries[key];
    if (entry.plan) {
        _stats.bytes -= entry.bytes;
        _policy->touched(key.text);
    } else {
        _policy->admitted(key.text);
    }
    entry.plan = shared;
    entry.bytes = bytes;
    _stats.bytes += bytes;
    evictToBudget();
    _stats.entries = _entries.size();
}

void
PlanCache::evictToBudget()
{
    while (_stats.bytes > _budget && _entries.size() > 1) {
        const std::string victim_key = _policy->victim();
        const auto it = _entries.find(PlanKey{victim_key});
        adAssert(it != _entries.end(),
                 "eviction policy chose a key the cache does not hold");
        _stats.bytes -= it->second.bytes;
        _entries.erase(it);
        _policy->evicted(victim_key);
        ++_stats.evictions;
    }
}

PlanCacheStats
PlanCache::stats() const
{
    util::MutexLock lk(_mu);
    PlanCacheStats snapshot = _stats;
    snapshot.entries = _entries.size();
    return snapshot;
}

} // namespace ad::serve
