#include "plan_cache.hh"

#include <sstream>
#include <utility>

#include "core/scheduler.hh"
#include "graph/serialize.hh"

namespace ad::serve {

PlanKey
makePlanKey(const std::string &strategy, const graph::Graph &graph,
            const sim::SystemConfig &system,
            const core::OrchestratorOptions &options)
{
    std::ostringstream os;
    os << "strategy " << strategy << '\n';
    os << "system " << system.fingerprint() << '\n';
    os << "options batch=" << options.batch << " atom_gen="
       << (options.atomGen == core::AtomGenMode::Sa ? "sa" : "even")
       << " sa=" << options.sa.maxIterations << '/'
       << options.sa.moveLength << '/' << options.sa.epsilon << '/'
       << options.sa.initialTemp << '/' << options.sa.lambda << '/'
       << options.sa.seed
       << " sched=" << core::schedModeName(options.scheduler.mode) << '/'
       << options.scheduler.lookaheadDepth << '/'
       << options.scheduler.residencyWindow << '/'
       << options.scheduler.hbmBytesPerCycle << '/'
       << options.scheduler.dpAtomLimit << '/'
       << options.scheduler.nocBytesPerCycle
       << " mapper=" << options.mapper.maxPermutationLayers << '/'
       << options.mapper.optimize << '/' << options.mapper.stableOrder
       << " reuse=" << options.onChipReuse
       << " max_atoms=" << options.maxAtoms << '\n';
    os << "graph\n" << graph::toText(graph);
    return PlanKey{os.str()};
}

PlanCache::PlanCache(Bytes budget_bytes) : _budget(budget_bytes) {}

Bytes
PlanCache::planBytes(const PlanKey &key, const core::PlanResult &plan)
{
    Bytes bytes = sizeof(core::PlanResult) + key.text.size();
    if (plan.dag)
        bytes += plan.dag->memoryBytes();
    bytes += plan.schedule.rounds.size() * sizeof(core::Round);
    bytes += plan.schedule.atomCount() * sizeof(core::Placement);
    bytes += plan.report.engineBusyCycles.size() * sizeof(Cycles);
    return bytes;
}

std::shared_ptr<const core::PlanResult>
PlanCache::lookup(const PlanKey &key)
{
    util::MutexLock lk(_mu);
    const auto it = _entries.find(key);
    if (it == _entries.end()) {
        ++_stats.misses;
        return nullptr;
    }
    ++_stats.hits;
    it->second.lastUse = ++_tick;
    return it->second.plan;
}

std::shared_ptr<const core::PlanResult>
PlanCache::insert(const PlanKey &key, core::PlanResult &&plan)
{
    const Bytes bytes = planBytes(key, plan);
    auto shared = std::make_shared<const core::PlanResult>(
        std::move(plan));
    util::MutexLock lk(_mu);
    if (bytes > _budget) {
        ++_stats.oversize;
        return shared;
    }
    auto &entry = _entries[key];
    if (entry.plan)
        _stats.bytes -= entry.bytes;
    entry.plan = shared;
    entry.bytes = bytes;
    entry.lastUse = ++_tick;
    _stats.bytes += bytes;
    evictToBudget();
    _stats.entries = _entries.size();
    return shared;
}

void
PlanCache::evictToBudget()
{
    while (_stats.bytes > _budget && _entries.size() > 1) {
        // Victim: the minimal lastUse tick. Ticks are unique, and the
        // scan walks the ordered map, so the choice is deterministic.
        auto victim = _entries.begin();
        for (auto it = _entries.begin(); it != _entries.end(); ++it) {
            if (it->second.lastUse < victim->second.lastUse)
                victim = it;
        }
        _stats.bytes -= victim->second.bytes;
        _entries.erase(victim);
        ++_stats.evictions;
    }
}

PlanCacheStats
PlanCache::stats() const
{
    util::MutexLock lk(_mu);
    PlanCacheStats snapshot = _stats;
    snapshot.entries = _entries.size();
    return snapshot;
}

} // namespace ad::serve
