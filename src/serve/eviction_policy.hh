#pragma once

/**
 * @file
 * Pluggable eviction policy for serve::PlanCache.
 *
 * The cache's residency bookkeeping (what is resident, how many bytes)
 * stays in PlanCache; the policy only answers "who goes next?". Every
 * policy must be a deterministic function of the admit/touch/evict call
 * sequence — logical ticks, never wall time or hash order — so the
 * eviction sequence (and therefore every cache hit/miss sequence and
 * every serve report built on it) is replayable across runs, hosts, and
 * thread counts.
 *
 * LRU and LFU are the shipping policies; the interface is the seam for
 * cost-aware variants (ROADMAP item 5) without another cache rewrite.
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>

namespace ad::serve {

/** Victim-selection strategy over the cache's resident key set. */
class EvictionPolicy
{
  public:
    virtual ~EvictionPolicy();

    /** Short stable policy name ("lru"). */
    virtual const char *name() const = 0;

    /** @p key became resident (was not tracked before). */
    virtual void admitted(const std::string &key) = 0;

    /** Resident @p key was accessed (hit or refreshing re-insert). */
    virtual void touched(const std::string &key) = 0;

    /** @p key left the cache (evicted or erased). */
    virtual void evicted(const std::string &key) = 0;

    /** Next key to evict; empty string when nothing is tracked. The
     * choice must be deterministic given the call history. */
    virtual std::string victim() const = 0;

    /** Tracked key count (must equal the cache's entry count). */
    virtual std::size_t size() const = 0;
};

/**
 * Least-recently-used: victim is the key with the oldest logical access
 * tick. Ticks increment per admitted()/touched() call, so recency is a
 * pure function of the access sequence.
 */
class LruPolicy final : public EvictionPolicy
{
  public:
    const char *name() const override { return "lru"; }
    void admitted(const std::string &key) override;
    void touched(const std::string &key) override;
    void evicted(const std::string &key) override;
    std::string victim() const override;
    std::size_t size() const override { return _lastUse.size(); }

  private:
    std::uint64_t _tick = 0;
    std::map<std::string, std::uint64_t> _lastUse;
    std::map<std::uint64_t, std::string> _byTick; ///< inverse index
};

/**
 * Least-frequently-used: victim is the key with the fewest accesses
 * (admitted() counts as the first), ties broken by the oldest logical
 * access tick — i.e. LRU among the equally-cold. Frequency survives
 * touches but not eviction: a re-admitted key starts cold again, so a
 * once-hot key cannot pin itself forever. Like LruPolicy, the choice
 * is a pure function of the admit/touch/evict sequence.
 */
class LfuPolicy final : public EvictionPolicy
{
  public:
    const char *name() const override { return "lfu"; }
    void admitted(const std::string &key) override;
    void touched(const std::string &key) override;
    void evicted(const std::string &key) override;
    std::string victim() const override;
    std::size_t size() const override { return _entries.size(); }

  private:
    struct Entry
    {
        std::uint64_t freq;
        std::uint64_t tick;
    };
    /** Move @p it to its new (freq, tick) slot in the victim order. */
    void reindex(std::map<std::string, Entry>::iterator it);

    std::uint64_t _tick = 0;
    std::map<std::string, Entry> _entries;
    /** (freq, tick) -> key; begin() is the victim. Ticks are unique,
     * so the order is total and deterministic. */
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::string>
        _byRank;
};

/**
 * Policy by name ("lru" or "lfu"). Fatals on an unknown name (the
 * adctl layer turns that into a usage error).
 */
std::unique_ptr<EvictionPolicy> makeEvictionPolicy(
    const std::string &name);

} // namespace ad::serve
