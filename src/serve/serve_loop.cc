#include "serve_loop.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "baselines/planners.hh"
#include "models/models.hh"
#include "obs/clock.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::serve {

const char *
downgradeName(Downgrade d)
{
    switch (d) {
      case Downgrade::None:
        return "none";
      case Downgrade::CachedFallback:
        return "cached-fallback";
      case Downgrade::FreshFallback:
        return "fresh-fallback";
    }
    return "unknown";
}

bool
RequestOutcome::bitIdentical(const RequestOutcome &o) const
{
    if (static_cast<bool>(plan) != static_cast<bool>(o.plan))
        return false;
    if (plan && !plan->report.bitIdentical(o.plan->report))
        return false;
    return id == o.id && net == o.net && batch == o.batch &&
           admitted == o.admitted && arrival == o.arrival &&
           start == o.start && finish == o.finish &&
           deadline == o.deadline && planCycles == o.planCycles &&
           execCycles == o.execCycles && downgrade == o.downgrade &&
           cacheHit == o.cacheHit && deadlineMiss == o.deadlineMiss &&
           slo == o.slo && submesh == o.submesh &&
           preemptions == o.preemptions;
}

bool
ClassReport::bitIdentical(const ClassReport &o) const
{
    return slo == o.slo && requests == o.requests &&
           admitted == o.admitted && rejected == o.rejected &&
           completed == o.completed &&
           deadlineMisses == o.deadlineMisses &&
           preemptions == o.preemptions &&
           p50LatencyMs == o.p50LatencyMs &&
           p99LatencyMs == o.p99LatencyMs &&
           throughputRps == o.throughputRps;
}

bool
ServeReport::bitIdentical(const ServeReport &o) const
{
    if (outcomes.size() != o.outcomes.size())
        return false;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].bitIdentical(o.outcomes[i]))
            return false;
    }
    if (classes.size() != o.classes.size())
        return false;
    for (std::size_t i = 0; i < classes.size(); ++i) {
        if (!classes[i].bitIdentical(o.classes[i]))
            return false;
    }
    return admitted == o.admitted && rejected == o.rejected &&
           completed == o.completed &&
           deadlineMisses == o.deadlineMisses &&
           downgradedCached == o.downgradedCached &&
           downgradedFresh == o.downgradedFresh &&
           cacheHits == o.cacheHits && cacheMisses == o.cacheMisses &&
           preemptions == o.preemptions &&
           peakQueueDepth == o.peakQueueDepth &&
           makespan == o.makespan && p50LatencyMs == o.p50LatencyMs &&
           p99LatencyMs == o.p99LatencyMs &&
           throughputRps == o.throughputRps;
}

std::vector<ServeOptions::Error>
ServeOptions::validate(const sim::SystemConfig &system) const
{
    std::vector<Error> errors;
    const auto flag = [&errors](std::string field, std::string message) {
        errors.push_back({std::move(field), std::move(message)});
    };

    const auto &names = baselines::plannerNames();
    const auto known = [&names](const std::string &s) {
        return std::find(names.begin(), names.end(), s) != names.end();
    };
    if (!known(strategy))
        flag("strategy", "unknown strategy '" + strategy + "'");
    if (!known(fallbackStrategy)) {
        flag("fallbackStrategy",
             "unknown strategy '" + fallbackStrategy + "'");
    }
    if (queueCapacity == 0)
        flag("queueCapacity", "queue capacity must be positive");
    if (evictionPolicy != "lru" && evictionPolicy != "lfu") {
        flag("evictionPolicy", "unknown eviction policy '" +
                                   evictionPolicy +
                                   "' (expected lru or lfu)");
    }
    if (cachedPlanCycles > coldPlanCycles) {
        flag("cachedPlanCycles",
             "a cached dispatch cannot cost more than a cold plan");
    }

    // The sub-mesh partition: every view in bounds, pairwise disjoint
    // (disjoint rectangles share no engine and no NoC link), HBM
    // shares within the machine's budget.
    std::vector<sim::MeshView> resolved;
    double share_sum = 0.0;
    for (std::size_t i = 0; i < submeshes.size(); ++i) {
        const std::string field = "submeshes[" + std::to_string(i) + "]";
        try {
            resolved.push_back(
                submeshes[i].resolved(system.meshX, system.meshY));
            share_sum += resolved.back().hbmShare;
        } catch (const ConfigError &e) {
            flag(field, e.what());
        }
    }
    for (std::size_t i = 0; i < resolved.size(); ++i) {
        for (std::size_t j = i + 1; j < resolved.size(); ++j) {
            if (resolved[i].overlaps(resolved[j])) {
                flag("submeshes", "views " + resolved[i].describe() +
                                      " and " + resolved[j].describe() +
                                      " overlap");
            }
        }
    }
    if (share_sum > 1.0 + 1e-9) {
        flag("submeshes", "HBM shares sum to more than the machine has");
    }
    return errors;
}

ServeLoop::ServeLoop(const sim::SystemConfig &system, ServeOptions options)
    : _system(system), _options(std::move(options)),
      _store(_options.storeDir.empty()
                 ? nullptr
                 : std::make_unique<PlanStore>(_options.storeDir)),
      _cache(_options.cacheBudgetBytes,
             makeEvictionPolicy(_options.evictionPolicy))
{
    _system.validate();
    const auto errors = _options.validate(_system);
    if (!errors.empty()) {
        fatal("serve options: ", errors.front().field, ": ",
              errors.front().message);
    }
    if (_options.submeshes.empty()) {
        _views.push_back(
            sim::MeshView{}.resolved(_system.meshX, _system.meshY));
    } else {
        for (const sim::MeshView &v : _options.submeshes)
            _views.push_back(v.resolved(_system.meshX, _system.meshY));
    }
    if (_store)
        _cache.attachStore(_store.get());
}

const graph::Graph &
ServeLoop::workload(const std::string &name)
{
    const auto it = _workloads.find(name);
    if (it != _workloads.end())
        return it->second;
    return _workloads.emplace(name, models::buildByName(name))
        .first->second;
}

core::PlanResult
ServeLoop::planNow(const std::string &strategy,
                   const graph::Graph &graph, int batch,
                   const sim::MeshView &view, double &wall_seconds)
{
    auto opts = _options.orchestrator;
    opts.batch = batch;
    const auto planner =
        baselines::makePlanner({strategy, _system, view, opts});
    const obs::Stopwatch sw;
    // Uninstrumented on purpose: search telemetry from cold plans would
    // make warm-cache runs render different (though still deterministic)
    // metrics; the serving layer records serve.* series only.
    auto result = planner->plan(graph);
    wall_seconds += sw.seconds();
    return result;
}

namespace {

/** Exact q-quantile of @p sorted (ascending); empty returns 0. */
double
exactQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

/** Round-barrier granularity of @p plan: one Round's average share of
 * its @p exec cycles, never zero. Preemption may only cut in at
 * multiples of this from the execution's segment start. */
Cycles
roundQuantum(const core::PlanResult &plan, Cycles exec)
{
    const std::uint64_t rounds = std::max<std::uint64_t>(
        1, plan.report.rounds);
    return std::max<Cycles>(1, (exec + rounds - 1) / rounds);
}

/** Per-executor dispatch state of the admission controller. */
struct Slot
{
    Cycles free = 0; ///< when the executor drains its queue

    // The slot's preemption window: valid while a batch-class
    // execution is the *sole remaining* work on the executor (any
    // newer admission clears it). The invariant free == tailExecStart
    // + tailRemaining holds whenever tailBatch >= 0.
    int tailBatch = -1;      ///< outcome index of the running batch
    Cycles tailExecStart = 0; ///< start of its current exec segment
    Cycles tailRemaining = 0; ///< exec cycles left in that segment
    Cycles tailQuantum = 1;   ///< its round-barrier granularity
};

} // namespace

ServeReport
ServeLoop::run(const std::vector<Request> &trace,
               const std::vector<std::string> &mix,
               obs::Instrumentation *ins)
{
    obs::MetricsRegistry *ms = ins ? ins->metrics : nullptr;
    obs::TraceRecorder *tr = ins ? ins->trace : nullptr;

    // Fixed registration order (the renderText determinism contract).
    obs::HistogramMetric *latency_hist = nullptr;
    if (ms) {
        ms->counter("serve.requests");
        ms->counter("serve.admitted");
        ms->counter("serve.rejected");
        ms->counter("serve.completed");
        ms->counter("serve.deadline_miss");
        ms->counter("serve.downgrade.cached");
        ms->counter("serve.downgrade.fresh");
        ms->counter("serve.cache.hits");
        ms->counter("serve.cache.misses");
        ms->gauge("serve.cache.entries");
        ms->gauge("serve.cache.bytes");
        ms->gauge("serve.cache.evictions");
        ms->gauge("serve.store.hits");
        ms->gauge("serve.store.misses");
        ms->gauge("serve.store.corrupt");
        ms->gauge("serve.store.writes");
        ms->gauge("serve.queue.peak_depth");
        ms->gauge("serve.makespan_cycles");
        ms->gauge("serve.throughput_rps");
        latency_hist = &ms->histogram("serve.latency_ms", 0.0, 1000.0,
                                      200);
        ms->gauge("serve.latency.p50_ms");
        ms->gauge("serve.latency.p99_ms");
        // Co-location series, registered unconditionally so the render
        // shape is trace-independent (zeros for an absent class).
        ms->counter("serve.preemptions");
        for (int c = 0; c < kSloClassCount; ++c) {
            const std::string prefix =
                std::string("serve.class.") +
                sloClassName(static_cast<SloClass>(c));
            ms->counter(prefix + ".completed");
            ms->counter(prefix + ".deadline_miss");
            ms->counter(prefix + ".preemptions");
            ms->gauge(prefix + ".p50_ms");
            ms->gauge(prefix + ".p99_ms");
        }
    }
    if (tr)
        tr->setTrackName(obs::kTrackServe, "serve");

    ServeReport report;
    report.outcomes.reserve(trace.size());
    std::vector<Slot> slots(_views.size());
    std::vector<std::size_t> live; // outcome indices still in flight

    for (const Request &r : trace) {
        if (r.net < 0 ||
            static_cast<std::size_t>(r.net) >= mix.size())
            fatal("request ", r.id, " names mix entry ", r.net,
                  " of a ", mix.size(), "-entry mix");

        RequestOutcome out;
        out.id = r.id;
        out.net = mix[static_cast<std::size_t>(r.net)];
        out.batch = r.batch;
        out.arrival = r.arrival;
        out.deadline = r.deadline;
        out.slo = r.slo;

        // Requests finished by this arrival have left the system.
        // (With one executor finishes are monotone and this matches
        // the historic pop-front loop; with several they are not, so
        // every live entry is re-checked.)
        live.erase(std::remove_if(
                       live.begin(), live.end(),
                       [&](std::size_t idx) {
                           return report.outcomes[idx].finish <=
                                  r.arrival;
                       }),
                   live.end());
        const std::size_t depth = live.size();
        if (tr) {
            tr->counter(obs::kTrackServe, r.arrival,
                        "serve.queue_depth",
                        static_cast<double>(depth));
        }

        std::size_t class_depth = 0;
        for (const std::size_t idx : live) {
            if (report.outcomes[idx].slo == r.slo)
                ++class_depth;
        }
        const std::size_t class_cap = r.slo == SloClass::Latency
                                          ? _options.latencyQueueCapacity
                                          : _options.batchQueueCapacity;
        if (depth >= _options.queueCapacity ||
            (class_cap != 0 && class_depth >= class_cap)) {
            ++report.rejected;
            if (tr) {
                obs::JsonArgs args;
                args.add("id", r.id)
                    .add("net", out.net)
                    .add("class", sloClassName(r.slo));
                tr->instant(obs::kTrackServe, r.arrival, "rejected",
                            args.str());
            }
            report.outcomes.push_back(std::move(out));
            continue;
        }

        out.admitted = true;
        ++report.admitted;
        report.peakQueueDepth =
            std::max(report.peakQueueDepth, depth + 1);

        // Earliest-start dispatch. Ties prefer the widest view for
        // latency traffic and the narrowest for batch (then the lowest
        // index), so big nets keep the wide rectangle and tiny batch
        // work packs on the remainder.
        std::size_t chosen = 0;
        Cycles best_start = std::max(r.arrival, slots[0].free);
        for (std::size_t s = 1; s < slots.size(); ++s) {
            const Cycles start_s = std::max(r.arrival, slots[s].free);
            bool better = start_s < best_start;
            if (start_s == best_start) {
                const int mine = _views[s].engines();
                const int held = _views[chosen].engines();
                better = r.slo == SloClass::Latency ? mine > held
                                                    : mine < held;
            }
            if (better) {
                chosen = s;
                best_start = start_s;
            }
        }

        // A latency-class arrival that would otherwise wait may cut in
        // at the next round barrier of a running batch-class execution
        // — but only where that batch is the executor's sole remaining
        // work, so nothing already admitted behind it is disturbed.
        bool preempted = false;
        out.start = best_start;
        if (_options.preemptLatency && r.slo == SloClass::Latency &&
            best_start > r.arrival) {
            Cycles best_barrier = 0;
            std::size_t preempt_slot = 0;
            bool found = false;
            for (std::size_t s = 0; s < slots.size(); ++s) {
                const Slot &sl = slots[s];
                if (sl.tailBatch < 0 || sl.tailExecStart > r.arrival ||
                    sl.free <= r.arrival)
                    continue;
                const Cycles ran = r.arrival - sl.tailExecStart;
                const Cycles barrier =
                    sl.tailExecStart +
                    (ran / sl.tailQuantum + 1) * sl.tailQuantum;
                if (barrier >= sl.free || barrier >= best_start)
                    continue;
                if (!found || barrier < best_barrier) {
                    found = true;
                    best_barrier = barrier;
                    preempt_slot = s;
                }
            }
            if (found) {
                preempted = true;
                chosen = preempt_slot;
                out.start = best_barrier;
            }
        }
        out.submesh = static_cast<int>(chosen);
        const sim::MeshView &view = _views[chosen];

        // Background compiles finished by pickup become visible now.
        for (auto it = _pending.begin(); it != _pending.end();) {
            if (it->second.readyAt <= out.start) {
                _cache.insert(it->first, std::move(it->second.plan));
                it = _pending.erase(it);
            } else {
                ++it;
            }
        }

        const graph::Graph &g = workload(out.net);
        auto key_opts = _options.orchestrator;
        key_opts.batch = r.batch;
        const PlanKey key = makePlanKey(_options.strategy, g, _system,
                                        key_opts, view);

        std::shared_ptr<const core::PlanResult> plan =
            _cache.lookup(key);
        if (plan) {
            out.cacheHit = true;
            out.planCycles = _options.cachedPlanCycles;
            ++report.cacheHits;
        } else {
            ++report.cacheMisses;
            // Admission-time estimate under the same boundary rule as
            // the completion check: compiling until exactly the
            // deadline still "fits" (deadlineMissed is exclusive).
            const bool fits = !deadlineMissed(
                out.start + _options.coldPlanCycles, r.deadline);
            if (!_options.allowDegrade || fits) {
                plan = _cache.insert(
                    key, planNow(_options.strategy, g, r.batch, view,
                                 report.planWallSeconds));
                out.planCycles = _options.coldPlanCycles;
            } else {
                // The search budget would blow the deadline: serve the
                // fallback and compile the full plan in the background.
                const PlanKey fb_key =
                    makePlanKey(_options.fallbackStrategy, g, _system,
                                key_opts, view);
                plan = _cache.lookup(fb_key);
                if (plan) {
                    out.downgrade = Downgrade::CachedFallback;
                    out.planCycles = _options.cachedPlanCycles;
                    ++report.downgradedCached;
                } else {
                    plan = _cache.insert(
                        fb_key,
                        planNow(_options.fallbackStrategy, g, r.batch,
                                view, report.planWallSeconds));
                    out.downgrade = Downgrade::FreshFallback;
                    out.planCycles = _options.fallbackPlanCycles;
                    ++report.downgradedFresh;
                }
                if (_pending.find(key) == _pending.end()) {
                    PendingPlan bg;
                    bg.plan = planNow(_options.strategy, g, r.batch,
                                      view, report.planWallSeconds);
                    bg.readyAt = out.start + _options.coldPlanCycles;
                    _pending.emplace(key, std::move(bg));
                }
            }
        }

        out.plan = plan;
        out.execCycles = plan->report.totalCycles;
        out.finish = out.start + out.planCycles + out.execCycles;
        ++report.completed;

        const std::size_t out_idx = report.outcomes.size();
        Slot &slot = slots[chosen];
        if (preempted) {
            // The victim yields at the barrier, the latency request
            // runs to completion, then the remainder of the victim's
            // execution resumes; everything behind the victim's old
            // finish shifts by the inserted window.
            RequestOutcome &victim =
                report.outcomes[static_cast<std::size_t>(
                    slot.tailBatch)];
            const Cycles executed = out.start - slot.tailExecStart;
            const Cycles remaining = slot.tailRemaining - executed;
            victim.finish = out.finish + remaining;
            ++victim.preemptions;
            ++report.preemptions;
            slot.free = victim.finish;
            slot.tailExecStart = out.finish;
            slot.tailRemaining = remaining;
            // The resumed batch is still the slot's sole remaining
            // work, so it stays preemptible at its new barriers.
        } else {
            slot.free = out.finish;
            if (r.slo == SloClass::Batch) {
                slot.tailBatch = static_cast<int>(out_idx);
                slot.tailExecStart = out.start + out.planCycles;
                slot.tailRemaining = out.execCycles;
                slot.tailQuantum = roundQuantum(*plan, out.execCycles);
            } else {
                slot.tailBatch = -1;
            }
        }
        live.push_back(out_idx);
        report.outcomes.push_back(std::move(out));
    }

    // The trace has drained: outstanding background compiles finish
    // while the server idles, so they become visible to the next run
    // — and, through the write-through store tier, to the next
    // process. Leaving them pending would carry readyAt times from
    // this run's timeline into the next one, where they are
    // meaningless. (std::map order: deterministic.)
    for (auto &bg : _pending)
        _cache.insert(bg.first, std::move(bg.second.plan));
    _pending.clear();

    // Deadline verdicts, makespan, and per-request spans in one final
    // pass over the outcomes (trace order): a preemption rewrites its
    // victim's finish after admission, so completion facts are only
    // settled once the whole trace has been dispatched. With no
    // preemptions this reproduces the historic inline accounting
    // exactly.
    for (RequestOutcome &out : report.outcomes) {
        if (!out.admitted)
            continue;
        out.deadlineMiss = deadlineMissed(out.finish, out.deadline);
        if (out.deadlineMiss)
            ++report.deadlineMisses;
        report.makespan = std::max(report.makespan, out.finish);
        if (tr) {
            obs::JsonArgs args;
            args.add("id", out.id)
                .add("net", out.net)
                .add("class", sloClassName(out.slo))
                .add("submesh", out.submesh)
                .add("wait", out.start - out.arrival)
                .add("plan", out.planCycles)
                .add("exec", out.execCycles)
                .add("downgrade", downgradeName(out.downgrade))
                .add("preemptions",
                     static_cast<std::int64_t>(out.preemptions))
                .add("deadline_miss", out.deadlineMiss ? 1 : 0);
            tr->span(obs::kTrackServe, out.arrival,
                     out.finish - out.arrival, out.net, args.str());
        }
    }

    // Latency aggregates over completed requests, in simulated
    // milliseconds at the system clock.
    const double freq = _system.engine.freqGhz;
    std::vector<double> latencies;
    latencies.reserve(report.outcomes.size());
    for (const RequestOutcome &out : report.outcomes) {
        if (out.admitted) {
            latencies.push_back(
                static_cast<double>(out.finish - out.arrival) /
                (freq * 1e6));
        }
    }
    std::sort(latencies.begin(), latencies.end());
    report.p50LatencyMs = exactQuantile(latencies, 0.5);
    report.p99LatencyMs = exactQuantile(latencies, 0.99);
    if (report.makespan > 0) {
        report.throughputRps =
            static_cast<double>(report.completed) /
            (static_cast<double>(report.makespan) / (freq * 1e9));
    }

    // Per-class slices, one row per class present in the trace.
    for (int c = 0; c < kSloClassCount; ++c) {
        const auto slo = static_cast<SloClass>(c);
        ClassReport cls;
        cls.slo = slo;
        std::vector<double> class_latencies;
        for (const RequestOutcome &out : report.outcomes) {
            if (out.slo != slo)
                continue;
            ++cls.requests;
            if (!out.admitted) {
                ++cls.rejected;
                continue;
            }
            ++cls.admitted;
            ++cls.completed;
            cls.deadlineMisses += out.deadlineMiss ? 1 : 0;
            cls.preemptions += out.preemptions;
            class_latencies.push_back(
                static_cast<double>(out.finish - out.arrival) /
                (freq * 1e6));
        }
        if (cls.requests == 0)
            continue;
        std::sort(class_latencies.begin(), class_latencies.end());
        cls.p50LatencyMs = exactQuantile(class_latencies, 0.5);
        cls.p99LatencyMs = exactQuantile(class_latencies, 0.99);
        if (report.makespan > 0) {
            cls.throughputRps =
                static_cast<double>(cls.completed) /
                (static_cast<double>(report.makespan) / (freq * 1e9));
        }
        report.classes.push_back(cls);
    }

    if (ms) {
        const PlanCacheStats cs = _cache.stats();
        ms->counter("serve.requests").add(trace.size());
        ms->counter("serve.admitted").add(report.admitted);
        ms->counter("serve.rejected").add(report.rejected);
        ms->counter("serve.completed").add(report.completed);
        ms->counter("serve.deadline_miss").add(report.deadlineMisses);
        ms->counter("serve.downgrade.cached")
            .add(report.downgradedCached);
        ms->counter("serve.downgrade.fresh")
            .add(report.downgradedFresh);
        ms->counter("serve.cache.hits").add(report.cacheHits);
        ms->counter("serve.cache.misses").add(report.cacheMisses);
        ms->gauge("serve.cache.entries")
            .set(static_cast<double>(cs.entries));
        ms->gauge("serve.cache.bytes")
            .set(static_cast<double>(cs.bytes));
        ms->gauge("serve.cache.evictions")
            .set(static_cast<double>(cs.evictions));
        // Zeroes when no store is attached, so the render shape (and
        // the thread-count diff in check_all.sh) is store-independent.
        const PlanStoreStats ss =
            _store ? _store->stats() : PlanStoreStats{};
        ms->gauge("serve.store.hits")
            .set(static_cast<double>(ss.hits));
        ms->gauge("serve.store.misses")
            .set(static_cast<double>(ss.misses));
        ms->gauge("serve.store.corrupt")
            .set(static_cast<double>(ss.corrupt));
        ms->gauge("serve.store.writes")
            .set(static_cast<double>(ss.writes));
        ms->gauge("serve.queue.peak_depth")
            .set(static_cast<double>(report.peakQueueDepth));
        ms->gauge("serve.makespan_cycles")
            .set(static_cast<double>(report.makespan));
        ms->gauge("serve.throughput_rps").set(report.throughputRps);
        for (const double ms_latency : latencies)
            latency_hist->observe(ms_latency);
        ms->gauge("serve.latency.p50_ms")
            .set(latency_hist->quantile(0.5));
        ms->gauge("serve.latency.p99_ms")
            .set(latency_hist->quantile(0.99));
        ms->counter("serve.preemptions").add(report.preemptions);
        for (const ClassReport &cls : report.classes) {
            const std::string prefix =
                std::string("serve.class.") + sloClassName(cls.slo);
            ms->counter(prefix + ".completed").add(cls.completed);
            ms->counter(prefix + ".deadline_miss")
                .add(cls.deadlineMisses);
            ms->counter(prefix + ".preemptions").add(cls.preemptions);
            ms->gauge(prefix + ".p50_ms").set(cls.p50LatencyMs);
            ms->gauge(prefix + ".p99_ms").set(cls.p99LatencyMs);
        }
        // Reserved host.* prefix: wall time, excluded from determinism
        // comparisons and from bitIdentical().
        ms->gauge("host.serve.plan_seconds")
            .set(report.planWallSeconds);
    }
    return report;
}

} // namespace ad::serve
