#include "serve_loop.hh"

#include <algorithm>
#include <deque>
#include <utility>

#include "baselines/planners.hh"
#include "models/models.hh"
#include "obs/clock.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace ad::serve {

const char *
downgradeName(Downgrade d)
{
    switch (d) {
      case Downgrade::None:
        return "none";
      case Downgrade::CachedFallback:
        return "cached-fallback";
      case Downgrade::FreshFallback:
        return "fresh-fallback";
    }
    return "unknown";
}

bool
RequestOutcome::bitIdentical(const RequestOutcome &o) const
{
    if (static_cast<bool>(plan) != static_cast<bool>(o.plan))
        return false;
    if (plan && !plan->report.bitIdentical(o.plan->report))
        return false;
    return id == o.id && net == o.net && batch == o.batch &&
           admitted == o.admitted && arrival == o.arrival &&
           start == o.start && finish == o.finish &&
           deadline == o.deadline && planCycles == o.planCycles &&
           execCycles == o.execCycles && downgrade == o.downgrade &&
           cacheHit == o.cacheHit && deadlineMiss == o.deadlineMiss;
}

bool
ServeReport::bitIdentical(const ServeReport &o) const
{
    if (outcomes.size() != o.outcomes.size())
        return false;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].bitIdentical(o.outcomes[i]))
            return false;
    }
    return admitted == o.admitted && rejected == o.rejected &&
           completed == o.completed &&
           deadlineMisses == o.deadlineMisses &&
           downgradedCached == o.downgradedCached &&
           downgradedFresh == o.downgradedFresh &&
           cacheHits == o.cacheHits && cacheMisses == o.cacheMisses &&
           peakQueueDepth == o.peakQueueDepth &&
           makespan == o.makespan && p50LatencyMs == o.p50LatencyMs &&
           p99LatencyMs == o.p99LatencyMs &&
           throughputRps == o.throughputRps;
}

ServeLoop::ServeLoop(const sim::SystemConfig &system, ServeOptions options)
    : _system(system), _options(std::move(options)),
      _store(_options.storeDir.empty()
                 ? nullptr
                 : std::make_unique<PlanStore>(_options.storeDir)),
      _cache(_options.cacheBudgetBytes,
             makeEvictionPolicy(_options.evictionPolicy))
{
    _system.validate();
    if (_options.queueCapacity == 0)
        fatal("serve queue capacity must be positive");
    if (_store)
        _cache.attachStore(_store.get());
}

const graph::Graph &
ServeLoop::workload(const std::string &name)
{
    const auto it = _workloads.find(name);
    if (it != _workloads.end())
        return it->second;
    return _workloads.emplace(name, models::buildByName(name))
        .first->second;
}

core::PlanResult
ServeLoop::planNow(const std::string &strategy,
                   const graph::Graph &graph, int batch,
                   double &wall_seconds)
{
    auto opts = _options.orchestrator;
    opts.batch = batch;
    const auto planner = baselines::makePlanner(strategy, _system, opts);
    const obs::Stopwatch sw;
    // Uninstrumented on purpose: search telemetry from cold plans would
    // make warm-cache runs render different (though still deterministic)
    // metrics; the serving layer records serve.* series only.
    auto result = planner->plan(graph);
    wall_seconds += sw.seconds();
    return result;
}

/** Exact q-quantile of @p sorted (ascending); empty returns 0. */
namespace {

double
exactQuantile(const std::vector<double> &sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::min(std::max<std::size_t>(rank, 1), sorted.size());
    return sorted[rank - 1];
}

} // namespace

ServeReport
ServeLoop::run(const std::vector<Request> &trace,
               const std::vector<std::string> &mix,
               obs::Instrumentation *ins)
{
    obs::MetricsRegistry *ms = ins ? ins->metrics : nullptr;
    obs::TraceRecorder *tr = ins ? ins->trace : nullptr;

    // Fixed registration order (the renderText determinism contract).
    obs::HistogramMetric *latency_hist = nullptr;
    if (ms) {
        ms->counter("serve.requests");
        ms->counter("serve.admitted");
        ms->counter("serve.rejected");
        ms->counter("serve.completed");
        ms->counter("serve.deadline_miss");
        ms->counter("serve.downgrade.cached");
        ms->counter("serve.downgrade.fresh");
        ms->counter("serve.cache.hits");
        ms->counter("serve.cache.misses");
        ms->gauge("serve.cache.entries");
        ms->gauge("serve.cache.bytes");
        ms->gauge("serve.cache.evictions");
        ms->gauge("serve.store.hits");
        ms->gauge("serve.store.misses");
        ms->gauge("serve.store.corrupt");
        ms->gauge("serve.store.writes");
        ms->gauge("serve.queue.peak_depth");
        ms->gauge("serve.makespan_cycles");
        ms->gauge("serve.throughput_rps");
        latency_hist = &ms->histogram("serve.latency_ms", 0.0, 1000.0,
                                      200);
        ms->gauge("serve.latency.p50_ms");
        ms->gauge("serve.latency.p99_ms");
    }
    if (tr)
        tr->setTrackName(obs::kTrackServe, "serve");

    ServeReport report;
    report.outcomes.reserve(trace.size());
    std::deque<Cycles> pending; // finish times of in-flight requests
    Cycles server_free = 0;

    for (const Request &r : trace) {
        if (r.net < 0 ||
            static_cast<std::size_t>(r.net) >= mix.size())
            fatal("request ", r.id, " names mix entry ", r.net,
                  " of a ", mix.size(), "-entry mix");

        RequestOutcome out;
        out.id = r.id;
        out.net = mix[static_cast<std::size_t>(r.net)];
        out.batch = r.batch;
        out.arrival = r.arrival;
        out.deadline = r.deadline;

        // Requests finished by this arrival have left the system.
        while (!pending.empty() && pending.front() <= r.arrival)
            pending.pop_front();
        const std::size_t depth = pending.size();
        if (tr) {
            tr->counter(obs::kTrackServe, r.arrival,
                        "serve.queue_depth",
                        static_cast<double>(depth));
        }

        if (depth >= _options.queueCapacity) {
            ++report.rejected;
            if (tr) {
                obs::JsonArgs args;
                args.add("id", r.id).add("net", out.net);
                tr->instant(obs::kTrackServe, r.arrival, "rejected",
                            args.str());
            }
            report.outcomes.push_back(std::move(out));
            continue;
        }

        out.admitted = true;
        ++report.admitted;
        out.start = std::max(r.arrival, server_free);
        report.peakQueueDepth =
            std::max(report.peakQueueDepth, depth + 1);

        // Background compiles finished by pickup become visible now.
        for (auto it = _pending.begin(); it != _pending.end();) {
            if (it->second.readyAt <= out.start) {
                _cache.insert(it->first, std::move(it->second.plan));
                it = _pending.erase(it);
            } else {
                ++it;
            }
        }

        const graph::Graph &g = workload(out.net);
        auto key_opts = _options.orchestrator;
        key_opts.batch = r.batch;
        const PlanKey key =
            makePlanKey(_options.strategy, g, _system, key_opts);

        std::shared_ptr<const core::PlanResult> plan =
            _cache.lookup(key);
        if (plan) {
            out.cacheHit = true;
            out.planCycles = _options.cachedPlanCycles;
            ++report.cacheHits;
        } else {
            ++report.cacheMisses;
            // Admission-time estimate under the same boundary rule as
            // the completion check: compiling until exactly the
            // deadline still "fits" (deadlineMissed is exclusive).
            const bool fits = !deadlineMissed(
                out.start + _options.coldPlanCycles, r.deadline);
            if (!_options.allowDegrade || fits) {
                plan = _cache.insert(
                    key, planNow(_options.strategy, g, r.batch,
                                 report.planWallSeconds));
                out.planCycles = _options.coldPlanCycles;
            } else {
                // The search budget would blow the deadline: serve the
                // fallback and compile the full plan in the background.
                const PlanKey fb_key = makePlanKey(
                    _options.fallbackStrategy, g, _system, key_opts);
                plan = _cache.lookup(fb_key);
                if (plan) {
                    out.downgrade = Downgrade::CachedFallback;
                    out.planCycles = _options.cachedPlanCycles;
                    ++report.downgradedCached;
                } else {
                    plan = _cache.insert(
                        fb_key,
                        planNow(_options.fallbackStrategy, g, r.batch,
                                report.planWallSeconds));
                    out.downgrade = Downgrade::FreshFallback;
                    out.planCycles = _options.fallbackPlanCycles;
                    ++report.downgradedFresh;
                }
                if (_pending.find(key) == _pending.end()) {
                    PendingPlan bg;
                    bg.plan = planNow(_options.strategy, g, r.batch,
                                      report.planWallSeconds);
                    bg.readyAt = out.start + _options.coldPlanCycles;
                    _pending.emplace(key, std::move(bg));
                }
            }
        }

        out.plan = plan;
        out.execCycles = plan->report.totalCycles;
        out.finish = out.start + out.planCycles + out.execCycles;
        out.deadlineMiss = deadlineMissed(out.finish, r.deadline);
        if (out.deadlineMiss)
            ++report.deadlineMisses;
        ++report.completed;
        server_free = out.finish;
        pending.push_back(out.finish);
        report.makespan = std::max(report.makespan, out.finish);

        if (tr) {
            obs::JsonArgs args;
            args.add("id", r.id)
                .add("net", out.net)
                .add("wait", out.start - r.arrival)
                .add("plan", out.planCycles)
                .add("exec", out.execCycles)
                .add("downgrade", downgradeName(out.downgrade))
                .add("deadline_miss", out.deadlineMiss ? 1 : 0);
            tr->span(obs::kTrackServe, r.arrival,
                     out.finish - r.arrival, out.net, args.str());
        }
        report.outcomes.push_back(std::move(out));
    }

    // The trace has drained: outstanding background compiles finish
    // while the server idles, so they become visible to the next run
    // — and, through the write-through store tier, to the next
    // process. Leaving them pending would carry readyAt times from
    // this run's timeline into the next one, where they are
    // meaningless. (std::map order: deterministic.)
    for (auto &bg : _pending)
        _cache.insert(bg.first, std::move(bg.second.plan));
    _pending.clear();

    // Latency aggregates over completed requests, in simulated
    // milliseconds at the system clock.
    const double freq = _system.engine.freqGhz;
    std::vector<double> latencies;
    latencies.reserve(report.outcomes.size());
    for (const RequestOutcome &out : report.outcomes) {
        if (out.admitted) {
            latencies.push_back(
                static_cast<double>(out.finish - out.arrival) /
                (freq * 1e6));
        }
    }
    std::sort(latencies.begin(), latencies.end());
    report.p50LatencyMs = exactQuantile(latencies, 0.5);
    report.p99LatencyMs = exactQuantile(latencies, 0.99);
    if (report.makespan > 0) {
        report.throughputRps =
            static_cast<double>(report.completed) /
            (static_cast<double>(report.makespan) / (freq * 1e9));
    }

    if (ms) {
        const PlanCacheStats cs = _cache.stats();
        ms->counter("serve.requests").add(trace.size());
        ms->counter("serve.admitted").add(report.admitted);
        ms->counter("serve.rejected").add(report.rejected);
        ms->counter("serve.completed").add(report.completed);
        ms->counter("serve.deadline_miss").add(report.deadlineMisses);
        ms->counter("serve.downgrade.cached")
            .add(report.downgradedCached);
        ms->counter("serve.downgrade.fresh")
            .add(report.downgradedFresh);
        ms->counter("serve.cache.hits").add(report.cacheHits);
        ms->counter("serve.cache.misses").add(report.cacheMisses);
        ms->gauge("serve.cache.entries")
            .set(static_cast<double>(cs.entries));
        ms->gauge("serve.cache.bytes")
            .set(static_cast<double>(cs.bytes));
        ms->gauge("serve.cache.evictions")
            .set(static_cast<double>(cs.evictions));
        // Zeroes when no store is attached, so the render shape (and
        // the thread-count diff in check_all.sh) is store-independent.
        const PlanStoreStats ss =
            _store ? _store->stats() : PlanStoreStats{};
        ms->gauge("serve.store.hits")
            .set(static_cast<double>(ss.hits));
        ms->gauge("serve.store.misses")
            .set(static_cast<double>(ss.misses));
        ms->gauge("serve.store.corrupt")
            .set(static_cast<double>(ss.corrupt));
        ms->gauge("serve.store.writes")
            .set(static_cast<double>(ss.writes));
        ms->gauge("serve.queue.peak_depth")
            .set(static_cast<double>(report.peakQueueDepth));
        ms->gauge("serve.makespan_cycles")
            .set(static_cast<double>(report.makespan));
        ms->gauge("serve.throughput_rps").set(report.throughputRps);
        for (const double ms_latency : latencies)
            latency_hist->observe(ms_latency);
        ms->gauge("serve.latency.p50_ms")
            .set(latency_hist->quantile(0.5));
        ms->gauge("serve.latency.p99_ms")
            .set(latency_hist->quantile(0.99));
        // Reserved host.* prefix: wall time, excluded from determinism
        // comparisons and from bitIdentical().
        ms->gauge("host.serve.plan_seconds")
            .set(report.planWallSeconds);
    }
    return report;
}

} // namespace ad::serve
