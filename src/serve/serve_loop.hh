#pragma once

/**
 * @file
 * The multi-tenant serving loop: admits a seeded arrival trace into a
 * bounded queue and drives planned executions back-to-back over
 * simulated time, with the PlanCache absorbing repeat work and a
 * deadline-aware degradation policy absorbing cold-plan latency.
 *
 * Determinism contract (DESIGN.md Sec. 12): every admission, planning,
 * degradation, and completion decision is a function of simulated time
 * and the request trace only. Wall time is measured (through the
 * quarantined obs::Stopwatch) purely for the `host.*` metrics and the
 * ServeReport::planWallSeconds field, both of which are excluded from
 * bitIdentical(). A ServeReport is therefore byte-identical for any
 * `--threads` value and across repeat runs of the same trace — while a
 * warm cache makes the repeat run wall-clock faster.
 *
 * Degradation policy: planning latency is modelled in simulated cycles
 * (coldPlanCycles for a full SA search, fallbackPlanCycles for the
 * Layer-Sequential fallback, cachedPlanCycles for a dispatch from
 * cache). When a request reaches the server and `start + coldPlanCycles`
 * would already overrun its deadline, the loop serves it from the
 * fallback plan instead (cached if available, freshly planned
 * otherwise), records the downgrade, and kicks off a *background*
 * compile of the full plan that becomes visible at
 * `start + coldPlanCycles` — later requests for the same workload
 * upgrade to the full plan once it is ready, exactly as an online
 * serving system warms up.
 */

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "graph/graph.hh"
#include "serve/plan_cache.hh"
#include "serve/plan_store.hh"
#include "serve/request_stream.hh"
#include "sim/system.hh"

namespace ad::obs {
struct Instrumentation;
} // namespace ad::obs

namespace ad::serve {

/**
 * The single deadline boundary rule, shared by the admission-time
 * estimate, the completion check, the metrics, and the trace args: an
 * event at exactly the deadline *meets* it; a deadline is missed only
 * strictly after. Pinned by ServeLoop.DeadlineBoundaryIsInclusive.
 */
constexpr bool
deadlineMissed(Cycles time, Cycles deadline)
{
    return time > deadline;
}

/** How a request's plan was degraded, if at all. */
enum class Downgrade {
    None,           ///< full-strategy plan (fresh or cached)
    CachedFallback, ///< deadline pressure; served from cached fallback
    FreshFallback,  ///< deadline pressure; fallback planned on the spot
};

/** Short stable name of a downgrade kind. */
const char *downgradeName(Downgrade d);

/** Serving-loop parameters. Construction is validated: ServeLoop
 * fatals on the first validate() finding, and adctl maps findings on
 * flag-derived fields to usage errors (exit 2). */
struct ServeOptions
{
    /** Primary planning strategy for admitted requests. */
    std::string strategy = "AD";

    /** Cheap strategy used when the primary would blow a deadline. */
    std::string fallbackStrategy = "LS";

    /** Admission bound: arrivals beyond this many pending requests
     * (queued + in service) are rejected. */
    std::size_t queueCapacity = 32;

    /** PlanCache byte budget. */
    Bytes cacheBudgetBytes = Bytes{512} << 20;

    /** PlanCache eviction policy (see serve/eviction_policy.hh). */
    std::string evictionPolicy = "lru";

    /**
     * Directory of the persistent plan store (DESIGN.md Sec. 13);
     * empty disables the store tier. When set, every compiled plan is
     * written through to disk and a restarted loop pointed at the same
     * directory hydrates warm plans instead of recompiling them.
     */
    std::string storeDir;

    /** Modelled planning latency, in simulated cycles, of a cold
     * primary-strategy plan (the SA search budget of the degradation
     * policy). Default: 20 ms at the paper's 0.5 GHz clock. */
    Cycles coldPlanCycles = 10'000'000;

    /** Modelled dispatch latency of a cache hit. */
    Cycles cachedPlanCycles = 5'000;

    /** Modelled planning latency of a cold fallback plan. */
    Cycles fallbackPlanCycles = 50'000;

    /** Disable to always plan inline, deadlines notwithstanding. */
    bool allowDegrade = true;

    /** Orchestrator configuration (batch is overwritten per request). */
    core::OrchestratorOptions orchestrator;

    /**
     * Spatial partition for co-located serving (DESIGN.md Sec. 16):
     * each view hosts one concurrent executor, and admitted requests
     * dispatch to the earliest-free sub-mesh (latency traffic prefers
     * the widest tied view, batch traffic the narrowest, so tiny nets
     * pack on the remainder while big nets keep the wide rectangle).
     * Views must be pairwise disjoint with HBM shares summing to at
     * most 1. Empty = one executor on the whole mesh — exactly the
     * pre-view single-tenant semantics.
     */
    std::vector<sim::MeshView> submeshes;

    /** Allow latency-class arrivals to preempt a running batch-class
     * execution at its next round barrier (DESIGN.md Sec. 16). */
    bool preemptLatency = true;

    /** Per-class admission bounds on top of queueCapacity; 0 = no
     * class-specific bound. */
    std::size_t latencyQueueCapacity = 0;
    std::size_t batchQueueCapacity = 0;

    /** One typed validation finding. */
    struct Error
    {
        std::string field;   ///< offending option, e.g. "submeshes[1]"
        std::string message; ///< what is wrong with it
    };

    /**
     * Validate against @p system: queue bounds, strategy names, plan
     * latencies, eviction policy, and the sub-mesh partition (bounds,
     * pairwise disjointness, HBM share budget). Empty = well-formed.
     */
    std::vector<Error> validate(const sim::SystemConfig &system) const;
};

/** Outcome of one request of the trace. */
struct RequestOutcome
{
    int id = 0;
    std::string net;     ///< workload name
    int batch = 1;
    bool admitted = false;
    Cycles arrival = 0;
    Cycles start = 0;    ///< server pickup time (admitted only)
    Cycles finish = 0;   ///< completion time (admitted only)
    Cycles deadline = 0;
    Cycles planCycles = 0; ///< modelled planning latency charged
    Cycles execCycles = 0; ///< executed plan's makespan
    Downgrade downgrade = Downgrade::None;
    bool cacheHit = false;
    bool deadlineMiss = false;
    SloClass slo = SloClass::Latency; ///< request's SLO class
    int submesh = -1; ///< executor (view) index; -1 when rejected
    std::uint64_t preemptions = 0; ///< times this execution yielded

    /** Executed plan (shared with the cache); null when rejected. */
    std::shared_ptr<const core::PlanResult> plan;

    /** Field-wise equality, plan reports compared bitIdentical(). */
    bool bitIdentical(const RequestOutcome &o) const;
};

/** Per-SLO-class slice of a ServeReport (one row per class present in
 * the trace, enum order). */
struct ClassReport
{
    SloClass slo = SloClass::Latency;
    std::uint64_t requests = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t preemptions = 0;
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double throughputRps = 0.0; ///< completed / global makespan

    /** Field-wise equality (everything is deterministic). */
    bool bitIdentical(const ClassReport &o) const;
};

/** Aggregate results of serving one trace. */
struct ServeReport
{
    std::vector<RequestOutcome> outcomes; ///< trace order

    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t deadlineMisses = 0;
    std::uint64_t downgradedCached = 0;
    std::uint64_t downgradedFresh = 0;
    std::uint64_t cacheHits = 0;   ///< primary-plan hits
    std::uint64_t cacheMisses = 0; ///< primary-plan misses
    std::uint64_t preemptions = 0; ///< round-barrier preemptions
    std::size_t peakQueueDepth = 0;
    Cycles makespan = 0; ///< completion time of the last request

    /** Per-class slices, one per class present in the trace. */
    std::vector<ClassReport> classes;

    // Exact latency percentiles over completed requests (simulated
    // milliseconds at the system clock); deterministic doubles.
    double p50LatencyMs = 0.0;
    double p99LatencyMs = 0.0;
    double throughputRps = 0.0; ///< completed / simulated makespan

    /** Wall time spent inside Planner::plan() — host-side, excluded
     * from bitIdentical(); the warm-cache speedup metric. */
    double planWallSeconds = 0.0;

    /** Byte-identity over everything except planWallSeconds. */
    bool bitIdentical(const ServeReport &o) const;
};

/**
 * The serving loop. One instance owns the plan cache and the workload
 * library, so repeat run() calls serve from a warm cache.
 */
class ServeLoop
{
  public:
    /** Create a loop for @p system with @p options. */
    ServeLoop(const sim::SystemConfig &system, ServeOptions options);

    /**
     * Serve @p trace (sorted by arrival; ids in trace order index
     * StreamOptions::mix through @p mix). With a non-null @p ins,
     * serve.* metrics, the request-latency histogram, and per-request
     * spans on obs::kTrackServe are recorded; `host.serve.*` metrics
     * carry the wall-clock planning cost.
     */
    ServeReport run(const std::vector<Request> &trace,
                    const std::vector<std::string> &mix,
                    obs::Instrumentation *ins = nullptr);

    /** The shared plan cache (warm across run() calls). */
    const PlanCache &cache() const { return _cache; }

    /** The persistent store tier, or null when disabled. */
    const PlanStore *store() const { return _store.get(); }

    /** System configuration in use. */
    const sim::SystemConfig &system() const { return _system; }

    /** Options in use. */
    const ServeOptions &options() const { return _options; }

  private:
    /** Workload by name (zoo or tiny test networks), built once. */
    const graph::Graph &workload(const std::string &name);

    /** Plan @p graph at @p batch with @p strategy for executor
     * @p view, wall time accrued into @p wall_seconds. */
    core::PlanResult planNow(const std::string &strategy,
                             const graph::Graph &graph, int batch,
                             const sim::MeshView &view,
                             double &wall_seconds);

    sim::SystemConfig _system;
    ServeOptions _options;
    std::vector<sim::MeshView> _views; ///< resolved executor views
    std::unique_ptr<PlanStore> _store; ///< outlives _cache's pointer
    PlanCache _cache;
    std::map<std::string, graph::Graph> _workloads;

    /** Background compiles not yet visible: key -> (plan, readyAt). */
    struct PendingPlan
    {
        core::PlanResult plan;
        Cycles readyAt = 0;
    };
    std::map<PlanKey, PendingPlan> _pending;
};

} // namespace ad::serve
