#include "plan_store.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "core/plan_io.hh"

namespace ad::serve {

namespace {

/** File magic: 8 bytes, never reinterpreted across versions. */
constexpr char kMagic[8] = {'A', 'D', 'P', 'S', 'T', 'O', 'R', 'E'};
constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

void
appendU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
appendU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
readU32(const char *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    }
    return v;
}

std::uint64_t
readU64(const char *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(p[i]))
             << (8 * i);
    }
    return v;
}

/** Payload: length-prefixed key text, then the plan encoding. */
std::string
buildPayload(const PlanKey &key, const core::PlanResult &plan)
{
    std::string payload;
    appendU64(payload, key.text.size());
    payload += key.text;
    payload += core::encodePlanResult(plan);
    return payload;
}

} // namespace

PlanStore::PlanStore(std::string directory) : _dir(std::move(directory))
{
    if (_dir.empty())
        fatal("plan store directory must be non-empty");
    std::error_code ec;
    std::filesystem::create_directories(_dir, ec);
    if (ec) {
        fatal("cannot create plan store directory '", _dir,
              "': ", ec.message());
    }
}

std::string
PlanStore::path(const PlanKey &key) const
{
    // Content-addressed name: 16 hex digits of FNV-1a over the full
    // canonical key text. Collisions are resolved at load time by
    // comparing the stored key, so the hash only has to spread names.
    static const char kHex[] = "0123456789abcdef";
    const std::uint64_t h = core::fnv1a64(key.text);
    std::string name(16, '0');
    for (int i = 0; i < 16; ++i)
        name[15 - i] = kHex[(h >> (4 * i)) & 0xf];
    return _dir + "/" + name + ".plan";
}

bool
PlanStore::put(const PlanKey &key, const core::PlanResult &plan)
{
    const std::string payload = buildPayload(key, plan);
    std::string file;
    file.reserve(kHeaderBytes + payload.size());
    file.append(kMagic, sizeof(kMagic));
    appendU32(file, core::kPlanFormatVersion);
    appendU64(file, payload.size());
    appendU64(file, core::fnv1a64(payload));
    file += payload;

    const std::string final_path = path(key);
    const std::string tmp_path = final_path + ".tmp";

    // The lock serializes writers on the same store, so the shared tmp
    // name is single-writer and the final rename publishes a complete
    // file or nothing.
    util::MutexLock lk(_mu);
    {
        std::ofstream out(tmp_path,
                          std::ios::binary | std::ios::trunc);
        out.write(file.data(),
                  static_cast<std::streamsize>(file.size()));
        out.flush();
        if (!out) {
            ++_stats.writeErrors;
            std::remove(tmp_path.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp_path, final_path, ec);
    if (ec) {
        ++_stats.writeErrors;
        std::remove(tmp_path.c_str());
        return false;
    }
    ++_stats.writes;
    return true;
}

std::optional<core::PlanResult>
PlanStore::load(const PlanKey &key)
{
    std::string file;
    {
        std::ifstream in(path(key), std::ios::binary);
        if (!in) {
            util::MutexLock lk(_mu);
            ++_stats.misses;
            return std::nullopt;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        file = std::move(buf).str();
    }

    const auto reject = [this]() -> std::optional<core::PlanResult> {
        util::MutexLock lk(_mu);
        ++_stats.corrupt;
        return std::nullopt;
    };

    if (file.size() < kHeaderBytes)
        return reject(); // truncated before the header completed
    if (std::string_view(file.data(), 8) !=
        std::string_view(kMagic, 8))
        return reject();
    if (readU32(file.data() + 8) != core::kPlanFormatVersion)
        return reject(); // older/newer format: recompile, don't guess
    const std::uint64_t payload_len = readU64(file.data() + 12);
    if (file.size() - kHeaderBytes != payload_len)
        return reject(); // truncated payload or trailing garbage
    const std::string_view payload(file.data() + kHeaderBytes,
                                   payload_len);
    if (readU64(file.data() + 20) != core::fnv1a64(payload))
        return reject(); // bit flip anywhere in the payload

    if (payload.size() < 8)
        return reject();
    const std::uint64_t key_len = readU64(payload.data());
    if (key_len > payload.size() - 8)
        return reject();
    if (payload.substr(8, key_len) != key.text)
        return reject(); // filename hash collision: not our plan

    auto plan = core::decodePlanResult(payload.substr(8 + key_len));
    if (!plan)
        return reject();

    util::MutexLock lk(_mu);
    ++_stats.hits;
    return plan;
}

PlanStoreStats
PlanStore::stats() const
{
    util::MutexLock lk(_mu);
    return _stats;
}

} // namespace ad::serve
