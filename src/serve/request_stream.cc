#include "request_stream.hh"

#include <algorithm>
#include <cmath>
#include <utility>

#include "models/models.hh"
#include "util/random.hh"

namespace ad::serve {

ArrivalKind
arrivalKindFromString(const std::string &s)
{
    if (s == "poisson")
        return ArrivalKind::Poisson;
    if (s == "bursty")
        return ArrivalKind::Bursty;
    fatal("unknown arrival kind '", s, "' (expected poisson or bursty)");
}

const char *
arrivalKindName(ArrivalKind kind)
{
    return kind == ArrivalKind::Poisson ? "poisson" : "bursty";
}

const char *
sloClassName(SloClass c)
{
    return c == SloClass::Latency ? "latency" : "batch";
}

SloClass
sloClassFromString(const std::string &s)
{
    if (s == "latency")
        return SloClass::Latency;
    if (s == "batch")
        return SloClass::Batch;
    fatal("unknown SLO class '", s, "' (expected latency or batch)");
}

namespace {

/** Exponential draw with @p mean (in seconds), strictly positive. */
double
exponential(Rng &rng, double mean)
{
    // 1 - uniform() is in (0, 1], so the log argument never hits zero.
    return -mean * std::log(1.0 - rng.uniform());
}

} // namespace

std::vector<Request>
generateArrivals(const StreamOptions &options)
{
    if (options.mix.empty())
        fatal("arrival trace needs a non-empty workload mix");
    if (options.ratePerSec <= 0.0)
        fatal("arrival rate must be positive, got ", options.ratePerSec);
    if (options.requests <= 0)
        fatal("request count must be positive, got ", options.requests);
    if (options.freqGhz <= 0.0)
        fatal("clock frequency must be positive, got ", options.freqGhz);

    Rng rng(options.seed);
    const double cycles_per_sec = options.freqGhz * 1e9;
    const double deadline_cycles =
        options.deadlineMs * 1e-3 * cycles_per_sec;

    // Two-state modulated Poisson: the quiet rate is scaled so the
    // long-run mean stays at ratePerSec given the phase-length means.
    const double burst_weight =
        options.burstLengthMean /
        (options.burstLengthMean + options.quietLengthMean);
    const double quiet_rate =
        options.ratePerSec * (1.0 - burst_weight * options.burstFactor) /
        std::max(1e-9, 1.0 - burst_weight);

    bool in_burst = false;
    int phase_left = 0;
    double now_sec = 0.0;
    std::vector<Request> trace;
    trace.reserve(static_cast<std::size_t>(options.requests));
    for (int i = 0; i < options.requests; ++i) {
        double rate = options.ratePerSec;
        if (options.kind == ArrivalKind::Bursty) {
            if (phase_left == 0) {
                in_burst = !in_burst;
                const double mean = in_burst ? options.burstLengthMean
                                             : options.quietLengthMean;
                phase_left = 1 + static_cast<int>(exponential(rng, mean));
            }
            --phase_left;
            rate = in_burst ? options.ratePerSec * options.burstFactor
                            : std::max(1e-3, quiet_rate);
        }
        now_sec += exponential(rng, 1.0 / rate);

        Request r;
        r.id = i;
        r.net = static_cast<int>(rng.uniformInt(
            0, static_cast<std::int64_t>(options.mix.size()) - 1));
        r.arrival = static_cast<Cycles>(now_sec * cycles_per_sec);
        r.deadline =
            r.arrival + static_cast<Cycles>(deadline_cycles);
        r.batch = options.batch;
        trace.push_back(r);
    }
    return trace;
}

namespace {

/**
 * Per-class seed substream: the splitmix64 finalizer over (seed, lane)
 * decorrelates the classes, while lane 0 (Latency) keeps the raw seed
 * so a single-latency-class merge is byte-identical to the historic
 * single-stream trace.
 */
std::uint64_t
mixSeed(std::uint64_t seed, std::uint64_t lane)
{
    if (lane == 0)
        return seed;
    std::uint64_t z = seed + lane * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

} // namespace

MergedTrace
generateClassArrivals(const std::vector<ClassTraffic> &classes)
{
    if (classes.empty())
        fatal("a merged trace needs at least one traffic class");

    MergedTrace merged;
    std::vector<std::pair<Request, std::size_t>> all; // (request, class)
    for (std::size_t c = 0; c < classes.size(); ++c) {
        StreamOptions stream = classes[c].stream;
        stream.seed = mixSeed(
            stream.seed,
            static_cast<std::uint64_t>(classes[c].slo));
        const int offset = static_cast<int>(merged.mix.size());
        for (Request r : generateArrivals(stream)) {
            r.net += offset;
            r.slo = classes[c].slo;
            all.emplace_back(r, c);
        }
        merged.mix.insert(merged.mix.end(), stream.mix.begin(),
                          stream.mix.end());
    }

    std::stable_sort(all.begin(), all.end(),
                     [](const auto &a, const auto &b) {
                         if (a.first.arrival != b.first.arrival)
                             return a.first.arrival < b.first.arrival;
                         return a.second < b.second;
                     });

    merged.requests.reserve(all.size());
    for (std::size_t i = 0; i < all.size(); ++i) {
        Request r = all[i].first;
        r.id = static_cast<int>(i);
        merged.requests.push_back(r);
    }
    return merged;
}

std::vector<std::string>
resolveMix(const std::string &name)
{
    if (name == "mix" || name == "zoo") {
        std::vector<std::string> names;
        for (const auto &entry : models::tableOneModels())
            names.push_back(entry.name);
        return names;
    }
    if (name == "tinymix")
        return {"tiny_linear", "tiny_residual", "tiny_branchy"};
    return {name};
}

} // namespace ad::serve
