#include "eviction_policy.hh"

#include "util/common.hh"

namespace ad::serve {

EvictionPolicy::~EvictionPolicy() = default;

void
LruPolicy::admitted(const std::string &key)
{
    adAssert(_lastUse.find(key) == _lastUse.end(),
             "admitted() on a key the policy already tracks");
    const std::uint64_t tick = ++_tick;
    _lastUse.emplace(key, tick);
    _byTick.emplace(tick, key);
}

void
LruPolicy::touched(const std::string &key)
{
    const auto it = _lastUse.find(key);
    adAssert(it != _lastUse.end(),
             "touched() on a key the policy does not track");
    _byTick.erase(it->second);
    const std::uint64_t tick = ++_tick;
    it->second = tick;
    _byTick.emplace(tick, key);
}

void
LruPolicy::evicted(const std::string &key)
{
    const auto it = _lastUse.find(key);
    adAssert(it != _lastUse.end(),
             "evicted() on a key the policy does not track");
    _byTick.erase(it->second);
    _lastUse.erase(it);
}

std::string
LruPolicy::victim() const
{
    // Oldest tick first; ticks are unique, so the choice is total.
    return _byTick.empty() ? std::string{} : _byTick.begin()->second;
}

void
LfuPolicy::reindex(std::map<std::string, Entry>::iterator it)
{
    it->second.tick = ++_tick;
    _byRank.emplace(std::pair{it->second.freq, it->second.tick},
                    it->first);
}

void
LfuPolicy::admitted(const std::string &key)
{
    adAssert(_entries.find(key) == _entries.end(),
             "admitted() on a key the policy already tracks");
    const auto [it, inserted] = _entries.emplace(key, Entry{1, 0});
    adAssert(inserted, "LFU admit raced its own membership check");
    reindex(it);
}

void
LfuPolicy::touched(const std::string &key)
{
    const auto it = _entries.find(key);
    adAssert(it != _entries.end(),
             "touched() on a key the policy does not track");
    _byRank.erase({it->second.freq, it->second.tick});
    ++it->second.freq;
    reindex(it);
}

void
LfuPolicy::evicted(const std::string &key)
{
    const auto it = _entries.find(key);
    adAssert(it != _entries.end(),
             "evicted() on a key the policy does not track");
    _byRank.erase({it->second.freq, it->second.tick});
    _entries.erase(it);
}

std::string
LfuPolicy::victim() const
{
    // Lowest frequency first, then oldest tick: LRU among the coldest.
    return _byRank.empty() ? std::string{} : _byRank.begin()->second;
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    if (name == "lfu")
        return std::make_unique<LfuPolicy>();
    fatal("unknown eviction policy '", name,
          "' (expected: lru or lfu)");
}

} // namespace ad::serve
