#include "eviction_policy.hh"

#include "util/common.hh"

namespace ad::serve {

EvictionPolicy::~EvictionPolicy() = default;

void
LruPolicy::admitted(const std::string &key)
{
    adAssert(_lastUse.find(key) == _lastUse.end(),
             "admitted() on a key the policy already tracks");
    const std::uint64_t tick = ++_tick;
    _lastUse.emplace(key, tick);
    _byTick.emplace(tick, key);
}

void
LruPolicy::touched(const std::string &key)
{
    const auto it = _lastUse.find(key);
    adAssert(it != _lastUse.end(),
             "touched() on a key the policy does not track");
    _byTick.erase(it->second);
    const std::uint64_t tick = ++_tick;
    it->second = tick;
    _byTick.emplace(tick, key);
}

void
LruPolicy::evicted(const std::string &key)
{
    const auto it = _lastUse.find(key);
    adAssert(it != _lastUse.end(),
             "evicted() on a key the policy does not track");
    _byTick.erase(it->second);
    _lastUse.erase(it);
}

std::string
LruPolicy::victim() const
{
    // Oldest tick first; ticks are unique, so the choice is total.
    return _byTick.empty() ? std::string{} : _byTick.begin()->second;
}

std::unique_ptr<EvictionPolicy>
makeEvictionPolicy(const std::string &name)
{
    if (name == "lru")
        return std::make_unique<LruPolicy>();
    fatal("unknown eviction policy '", name, "' (expected: lru)");
}

} // namespace ad::serve
