#pragma once

/**
 * @file
 * Persistent, content-addressed on-disk plan store — the second tier
 * under serve::PlanCache (DESIGN.md Sec. 13).
 *
 * Each stored plan is one file named by the FNV-1a hash of the full
 * canonical PlanKey text, holding a fixed header (magic, format
 * version, payload length, payload checksum) followed by the payload:
 * the key text plus the core::encodePlanResult() serialization. Storing
 * the whole key — not just its hash — makes hash collisions harmless
 * (a mismatched key is a miss, never a wrong plan).
 *
 * Crash safety: put() writes the complete file to `<name>.tmp` in the
 * same directory and atomically rename(2)s it into place, so a reader
 * never observes a half-written plan under the final name and a crash
 * mid-write leaves at most a stale .tmp. Corruption safety: load()
 * verifies magic, version, length, and checksum before decoding, and
 * treats every mismatch — truncation, bit flips, a future format
 * version, a colliding key — as a clean miss counted in stats(), never
 * a crash. Plans survive process restarts and can be shipped between
 * replicas by copying the directory.
 *
 * Determinism: nothing in the store depends on wall time or hash-table
 * order. Filenames are content hashes, loads are point lookups (the
 * directory is never iterated), and the hit/miss sequence is a pure
 * function of the lookup/put sequence — the same contract as PlanCache.
 */

#include <cstdint>
#include <optional>
#include <string>

#include "core/planner.hh"
#include "serve/plan_cache.hh"
#include "util/thread_annotations.hh"

namespace ad::serve {

/** Store observability snapshot. */
struct PlanStoreStats
{
    std::uint64_t hits = 0;    ///< loads that hydrated a plan
    std::uint64_t misses = 0;  ///< loads with no file on disk
    std::uint64_t corrupt = 0; ///< loads rejected: truncated, bad
                               ///< checksum, version or key mismatch
    std::uint64_t writes = 0;  ///< successful put()s
    std::uint64_t writeErrors = 0; ///< put()s that failed on I/O
};

/** Crash-safe, checksummed, fingerprint-keyed plan files under one
 * directory. Concurrency-safe; one instance per directory per process. */
class PlanStore
{
  public:
    /** Open (creating if needed) the store at @p directory. Fatals when
     * the directory cannot be created. */
    explicit PlanStore(std::string directory);

    PlanStore(const PlanStore &) = delete;
    PlanStore &operator=(const PlanStore &) = delete;

    /**
     * Persist @p plan under @p key (write-to-temp + atomic rename).
     * Returns false — and counts a writeError — when any I/O step
     * fails; a failed put never leaves a partial file under the final
     * name.
     */
    bool put(const PlanKey &key, const core::PlanResult &plan);

    /**
     * Load the plan stored under @p key, or nullopt on a miss. A file
     * that exists but fails any integrity check (magic, version,
     * length, checksum, stored-key equality, payload decode) is a
     * corrupt-counted miss.
     */
    std::optional<core::PlanResult> load(const PlanKey &key);

    /** On-disk path a plan for @p key lives at (exists or not). */
    std::string path(const PlanKey &key) const;

    /** Directory this store persists into. */
    const std::string &directory() const { return _dir; }

    /** Counters since construction. */
    PlanStoreStats stats() const;

  private:
    const std::string _dir;
    mutable util::Mutex _mu;
    PlanStoreStats _stats AD_GUARDED_BY(_mu);
};

} // namespace ad::serve
