#pragma once

/**
 * @file
 * Seeded synthetic request-arrival traces for the serving loop.
 *
 * Arrivals live entirely in *simulated* accelerator cycles: a trace is a
 * pure function of its StreamOptions (seed included), so serving runs
 * are replayable and byte-identical across hosts and thread counts —
 * the same determinism contract the planner and simulator honour.
 *
 * Two arrival processes are modelled:
 *  - Poisson: exponential inter-arrival times at ratePerSec.
 *  - Bursty: a two-state modulated Poisson process (burst / quiet),
 *    with geometric phase lengths; the burst state arrives burstFactor
 *    times faster and the quiet state proportionally slower, preserving
 *    the configured mean rate.
 *
 * Each request draws its workload uniformly from the configured mix, so
 * "zoo-mix" traffic interleaves plans for all eight Table-I networks.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hh"

namespace ad::serve {

/** Arrival process shape. */
enum class ArrivalKind { Poisson, Bursty };

/** Parse "poisson" / "bursty"; fatals otherwise. */
ArrivalKind arrivalKindFromString(const std::string &s);

/** Short printable name of an arrival kind. */
const char *arrivalKindName(ArrivalKind kind);

/**
 * Service-level-objective class of a request (DESIGN.md Sec. 16).
 * Latency-critical traffic is admitted onto the widest free sub-mesh
 * and may preempt batch work at round barriers; batch traffic packs
 * onto the smallest fitting sub-mesh and runs to a throughput SLO.
 */
enum class SloClass { Latency = 0, Batch = 1 };

/** Number of SLO classes (enum values are 0..kSloClassCount-1). */
constexpr int kSloClassCount = 2;

/** Short stable name of an SLO class ("latency" / "batch"). */
const char *sloClassName(SloClass c);

/** Parse "latency" / "batch"; fatals otherwise. */
SloClass sloClassFromString(const std::string &s);

/** Trace-generation parameters. */
struct StreamOptions
{
    ArrivalKind kind = ArrivalKind::Poisson;
    double ratePerSec = 100.0; ///< mean arrival rate
    int requests = 32;         ///< trace length
    std::uint64_t seed = 1;
    double deadlineMs = 50.0;  ///< per-request deadline after arrival
    int batch = 1;             ///< samples per request
    double freqGhz = 0.5;      ///< cycles-per-second conversion

    // Bursty-process shape (ignored for Poisson).
    double burstFactor = 8.0;    ///< rate multiplier inside a burst
    double burstLengthMean = 6.0; ///< mean arrivals per burst phase
    double quietLengthMean = 12.0; ///< mean arrivals per quiet phase

    /** Workload names, drawn uniformly per request. */
    std::vector<std::string> mix{"resnet50"};
};

/** One inference request of the trace. */
struct Request
{
    int id = 0;           ///< position in the trace (0-based)
    int net = 0;          ///< index into StreamOptions::mix
    Cycles arrival = 0;   ///< arrival time in simulated cycles
    Cycles deadline = 0;  ///< absolute completion deadline
    int batch = 1;        ///< samples in this request
    SloClass slo = SloClass::Latency; ///< service-level class
};

/**
 * Generate the arrival trace for @p options: requests sorted by
 * arrival, ids in arrival order. Fatals on nonsense parameters (empty
 * mix, non-positive rate or request count).
 */
std::vector<Request> generateArrivals(const StreamOptions &options);

/** One tenant class of a merged multi-class trace. */
struct ClassTraffic
{
    SloClass slo = SloClass::Latency;
    StreamOptions stream;
};

/** A merged multi-class trace plus the concatenated workload mix its
 * requests' net indices point into. */
struct MergedTrace
{
    std::vector<Request> requests;
    std::vector<std::string> mix;
};

/**
 * Generate one arrival trace per class and merge them by arrival time.
 * Each class draws from its own seeded substream — class k's effective
 * seed is a fixed splitmix of its StreamOptions seed and its SloClass,
 * with Latency keeping the raw seed — so adding or removing one class
 * never perturbs another class's arrivals (bit-identical regression,
 * tests/test_serve.cc), and a single-Latency-class merge replays
 * generateArrivals() exactly. Merged requests are sorted by arrival
 * (stable on ties, class list order first) with ids reassigned in
 * merged order; their net indices point into the returned mix, which
 * concatenates the per-class mixes.
 */
MergedTrace generateClassArrivals(const std::vector<ClassTraffic> &classes);

/**
 * Expand a `--net` operand into a workload mix: "mix"/"zoo" is all
 * eight Table-I networks, "tinymix" is the three tiny test networks,
 * anything else is a single-model mix of that name.
 */
std::vector<std::string> resolveMix(const std::string &name);

} // namespace ad::serve
