#pragma once

/**
 * @file
 * Seeded synthetic request-arrival traces for the serving loop.
 *
 * Arrivals live entirely in *simulated* accelerator cycles: a trace is a
 * pure function of its StreamOptions (seed included), so serving runs
 * are replayable and byte-identical across hosts and thread counts —
 * the same determinism contract the planner and simulator honour.
 *
 * Two arrival processes are modelled:
 *  - Poisson: exponential inter-arrival times at ratePerSec.
 *  - Bursty: a two-state modulated Poisson process (burst / quiet),
 *    with geometric phase lengths; the burst state arrives burstFactor
 *    times faster and the quiet state proportionally slower, preserving
 *    the configured mean rate.
 *
 * Each request draws its workload uniformly from the configured mix, so
 * "zoo-mix" traffic interleaves plans for all eight Table-I networks.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hh"

namespace ad::serve {

/** Arrival process shape. */
enum class ArrivalKind { Poisson, Bursty };

/** Parse "poisson" / "bursty"; fatals otherwise. */
ArrivalKind arrivalKindFromString(const std::string &s);

/** Short printable name of an arrival kind. */
const char *arrivalKindName(ArrivalKind kind);

/** Trace-generation parameters. */
struct StreamOptions
{
    ArrivalKind kind = ArrivalKind::Poisson;
    double ratePerSec = 100.0; ///< mean arrival rate
    int requests = 32;         ///< trace length
    std::uint64_t seed = 1;
    double deadlineMs = 50.0;  ///< per-request deadline after arrival
    int batch = 1;             ///< samples per request
    double freqGhz = 0.5;      ///< cycles-per-second conversion

    // Bursty-process shape (ignored for Poisson).
    double burstFactor = 8.0;    ///< rate multiplier inside a burst
    double burstLengthMean = 6.0; ///< mean arrivals per burst phase
    double quietLengthMean = 12.0; ///< mean arrivals per quiet phase

    /** Workload names, drawn uniformly per request. */
    std::vector<std::string> mix{"resnet50"};
};

/** One inference request of the trace. */
struct Request
{
    int id = 0;           ///< position in the trace (0-based)
    int net = 0;          ///< index into StreamOptions::mix
    Cycles arrival = 0;   ///< arrival time in simulated cycles
    Cycles deadline = 0;  ///< absolute completion deadline
    int batch = 1;        ///< samples in this request
};

/**
 * Generate the arrival trace for @p options: requests sorted by
 * arrival, ids in arrival order. Fatals on nonsense parameters (empty
 * mix, non-positive rate or request count).
 */
std::vector<Request> generateArrivals(const StreamOptions &options);

/**
 * Expand a `--net` operand into a workload mix: "mix"/"zoo" is all
 * eight Table-I networks, "tinymix" is the three tiny test networks,
 * anything else is a single-model mix of that name.
 */
std::vector<std::string> resolveMix(const std::string &name);

} // namespace ad::serve
