#include "planners.hh"

#include "baselines/cnn_partition.hh"
#include "baselines/dtt.hh"
#include "baselines/il_pipe.hh"
#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "core/orchestrator.hh"

namespace ad::baselines {

const std::vector<std::string> &
plannerNames()
{
    static const std::vector<std::string> names = {
        "LS", "CNN-P", "IL-Pipe", "Rammer", "AD", "DTT"};
    return names;
}

std::unique_ptr<core::Planner>
makePlanner(const std::string &name, const sim::SystemConfig &system,
            int batch)
{
    if (name == "LS") {
        LsOptions options;
        options.batch = batch;
        return std::make_unique<LayerSequential>(system, options);
    }
    if (name == "CNN-P") {
        CnnPOptions options;
        options.batch = batch;
        return std::make_unique<CnnPartition>(system, options);
    }
    if (name == "IL-Pipe") {
        IlPipeOptions options;
        options.batch = batch;
        return std::make_unique<IlPipe>(system, options);
    }
    if (name == "Rammer")
        return std::make_unique<RammerScheduler>(system, batch);
    if (name == "AD") {
        core::OrchestratorOptions options;
        options.batch = batch;
        return std::make_unique<core::Orchestrator>(system, options);
    }
    if (name == "DTT") {
        core::OrchestratorOptions options;
        options.batch = batch;
        return std::make_unique<DttPlanner>(system, options);
    }
    fatal("unknown planner '", name,
          "' (expected LS, CNN-P, IL-Pipe, Rammer, AD, or DTT)");
}

std::unique_ptr<core::Planner>
makePlanner(const std::string &name, const sim::SystemConfig &system,
            const core::OrchestratorOptions &options)
{
    if (name == "AD")
        return std::make_unique<core::Orchestrator>(system, options);
    if (name == "DTT")
        return std::make_unique<DttPlanner>(system, options);
    return makePlanner(name, system, options.batch);
}

} // namespace ad::baselines
