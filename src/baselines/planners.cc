#include "planners.hh"

#include "baselines/cnn_partition.hh"
#include "baselines/dtt.hh"
#include "baselines/il_pipe.hh"
#include "baselines/layer_sequential.hh"
#include "baselines/rammer.hh"
#include "core/orchestrator.hh"

namespace ad::baselines {

const std::vector<std::string> &
plannerNames()
{
    static const std::vector<std::string> names = {
        "LS", "CNN-P", "IL-Pipe", "Rammer", "AD", "DTT"};
    return names;
}

std::unique_ptr<core::Planner>
makePlanner(const PlannerSpec &spec)
{
    if (spec.strategy == "LS") {
        LsOptions options;
        options.batch = spec.options.batch;
        return std::make_unique<LayerSequential>(spec.system, options,
                                                 spec.view);
    }
    if (spec.strategy == "CNN-P") {
        CnnPOptions options;
        options.batch = spec.options.batch;
        return std::make_unique<CnnPartition>(spec.system, options,
                                              spec.view);
    }
    if (spec.strategy == "IL-Pipe") {
        IlPipeOptions options;
        options.batch = spec.options.batch;
        return std::make_unique<IlPipe>(spec.system, options, spec.view);
    }
    if (spec.strategy == "Rammer") {
        return std::make_unique<RammerScheduler>(
            spec.system, spec.options.batch, spec.view);
    }
    if (spec.strategy == "AD") {
        return std::make_unique<core::Orchestrator>(
            spec.system, spec.options, spec.view);
    }
    if (spec.strategy == "DTT") {
        return std::make_unique<DttPlanner>(
            spec.system, spec.options, core::DttOptions{}, spec.view);
    }
    fatal("unknown planner '", spec.strategy,
          "' (expected LS, CNN-P, IL-Pipe, Rammer, AD, or DTT)");
}

} // namespace ad::baselines
