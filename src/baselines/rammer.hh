#pragma once

/**
 * @file
 * Rammer-like baseline [OSDI'20] for the prototype comparison of
 * Sec. V-D: operators are split into rTasks that co-locate on the
 * engines to exploit inter-operator parallelism — but with no spatial
 * data-reuse awareness, no inter-engine communication optimization, and
 * no graph-level lookahead. Realized as the atomic-dataflow pipeline
 * with greedy (non-DP) scheduling and placement optimization disabled.
 */

#include "core/orchestrator.hh"
#include "graph/graph.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** Rammer-like executor. */
class RammerScheduler
{
  public:
    /** Create an executor for @p system processing @p batch samples. */
    RammerScheduler(const sim::SystemConfig &system, int batch = 1);

    /**
     * Full orchestration result (DAG + schedule + report) so validation
     * tooling can audit the rTask schedule, not just read the report.
     */
    core::OrchestratorResult plan(const graph::Graph &graph) const;

    /** Execute @p graph under rTask co-location scheduling. */
    sim::ExecutionReport run(const graph::Graph &graph) const;

  private:
    sim::SystemConfig _system;
    int _batch;
};

} // namespace ad::baselines
