#pragma once

/**
 * @file
 * Rammer-like baseline [OSDI'20] for the prototype comparison of
 * Sec. V-D: operators are split into rTasks that co-locate on the
 * engines to exploit inter-operator parallelism — but with no spatial
 * data-reuse awareness, no inter-engine communication optimization, and
 * no graph-level lookahead. Realized as the atomic-dataflow pipeline
 * with greedy (non-DP) scheduling and placement optimization disabled.
 */

#include "core/orchestrator.hh"
#include "graph/graph.hh"
#include "sim/report.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** Rammer-like executor. */
class RammerScheduler : public core::Planner
{
  public:
    /** Create an executor for @p view of @p system (default: whole
     * mesh) processing @p batch samples. */
    RammerScheduler(const sim::SystemConfig &system, int batch = 1,
                    sim::MeshView view = {});

    /** Planner interface. */
    std::string name() const override { return "Rammer"; }

    /**
     * Full plan (DAG + schedule + report) so validation tooling can
     * audit the rTask schedule, not just read the report.
     */
    core::PlanResult plan(const graph::Graph &graph,
                          obs::Instrumentation *ins = nullptr)
        const override;

  private:
    sim::SystemConfig _system; ///< the machine hosting the view
    int _batch;
    sim::MeshView _view; ///< resolved against _system
};

} // namespace ad::baselines
