#include "cnn_partition.hh"

#include <algorithm>
#include <vector>

#include "core/partition.hh"
#include "engine/cached_cost_model.hh"
#include "obs/instrumentation.hh"
#include "obs/metrics.hh"

namespace ad::baselines {

namespace {

/** Per-layer analytic quantities shared by the clustering sweep. */
struct LayerCost
{
    graph::LayerId id;
    MacCount macs = 0;
    Bytes dramBytes = 0;       ///< ifmap + weights + ofmap, all off-chip
    PicoJoules tileEnergy = 0; ///< compute+SRAM energy of the whole layer
};

/** Execution cycles of @p layer evenly partitioned over @p engines. */
Cycles
layerCycles(const graph::Layer &layer, int engines,
            const engine::CostModel &model, PicoJoules *energy_out)
{
    // Split into `engines` tiles along the largest dims (same policy as
    // core::evenPartitionShapes, local to one layer).
    int nh = 1, nw = 1, nc = 1;
    while (nh * nw * nc < engines) {
        const int room_h = layer.out.h / (nh + 1);
        const int room_w = layer.out.w / (nw + 1);
        const int room_c = layer.out.c / (nc + 1);
        if (room_h >= room_w && room_h >= room_c && room_h >= 1) {
            ++nh;
        } else if (room_w >= room_c && room_w >= 1) {
            ++nw;
        } else if (room_c >= 1) {
            ++nc;
        } else {
            break;
        }
    }
    engine::AtomWorkload tile;
    tile.type = layer.type;
    tile.h = ceilDiv(layer.out.h, nh);
    tile.w = ceilDiv(layer.out.w, nw);
    tile.co = ceilDiv(layer.out.c, nc);
    tile.ci = layer.in.c;
    if (layer.type == graph::OpType::DepthwiseConv ||
        layer.type == graph::OpType::Pool ||
        layer.type == graph::OpType::Eltwise) {
        tile.ci = tile.co;
    }
    tile.window = layer.window;

    const auto result = model.evaluate(tile);
    const int tiles = nh * nw * nc;
    if (energy_out)
        *energy_out = result.energyPj * tiles;
    return result.cycles * ceilDiv(tiles, engines);
}

/** Off-chip traffic of one layer under CNN-P (everything via DRAM). */
Bytes
layerDramBytes(const graph::Layer &layer, int bytes_per_elem)
{
    const Bytes in_bytes =
        layer.in.bytes(bytes_per_elem) *
        (layer.type == graph::OpType::Eltwise
             ? static_cast<Bytes>(layer.inputs.size())
             : 1);
    return in_bytes + layer.weightBytes(bytes_per_elem) +
           layer.out.bytes(bytes_per_elem);
}

} // namespace

CnnPartition::CnnPartition(const sim::SystemConfig &system,
                           CnnPOptions options, sim::MeshView view)
    : _system(sim::viewSystem(
          system, view.resolved(system.meshX, system.meshY))),
      _options(options)
{
    _system.validate();
    if (_options.batch < 1)
        fatal("CNN-P batch must be at least 1");
    if (_options.maxClps < 1)
        fatal("CNN-P needs at least one CLP");
}

core::PlanResult
CnnPartition::plan(const graph::Graph &graph,
                   obs::Instrumentation *ins) const
{
    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    const int engines = _system.engines();
    const int B = _options.batch;
    const double bw_bytes_per_cycle =
        _system.hbm.peakBandwidthGBps / _system.engine.freqGhz;

    // Layer costs, topological order (insertion order is topological).
    std::vector<LayerCost> costs;
    MacCount total_macs = 0;
    Bytes dram_total = 0;
    Bytes dram_writes = 0;
    for (const graph::Layer &layer : graph.layers()) {
        if (layer.type == graph::OpType::Input ||
            layer.type == graph::OpType::Concat) {
            continue;
        }
        LayerCost c;
        c.id = layer.id;
        c.macs = layer.macs();
        c.dramBytes =
            layerDramBytes(layer, _system.engine.bytesPerElem);
        total_macs += c.macs;
        dram_total += c.dramBytes;
        dram_writes += layer.out.bytes(_system.engine.bytesPerElem);
        costs.push_back(c);
    }

    // Sweep CLP counts; keep the fastest configuration.
    Cycles best_total = 0;
    Cycles best_compute_total = 0;
    PicoJoules best_energy = 0;
    int best_k = 1;
    bool first = true;

    for (int k = 1; k <= _options.maxClps && k <= engines; ++k) {
        const int clp_engines = engines / k;
        if (clp_engines == 0)
            break;

        // Contiguous chunks with balanced compute (greedy prefix cut).
        std::vector<Cycles> clp_compute(static_cast<std::size_t>(k), 0);
        std::vector<Cycles> clp_mem(static_cast<std::size_t>(k), 0);
        PicoJoules energy = 0;
        // First pass: per-layer cycles on a CLP.
        std::vector<Cycles> cyc(costs.size());
        Cycles grand_total = 0;
        for (std::size_t i = 0; i < costs.size(); ++i) {
            PicoJoules tile_energy = 0;
            cyc[i] = layerCycles(graph.layer(costs[i].id), clp_engines,
                                 model, &tile_energy);
            energy += tile_energy;
            grand_total += cyc[i];
        }
        const Cycles target = grand_total / static_cast<Cycles>(k) + 1;
        int clp = 0;
        Cycles acc = 0;
        for (std::size_t i = 0; i < costs.size(); ++i) {
            if (acc >= target && clp + 1 < k) {
                ++clp;
                acc = 0;
            }
            acc += cyc[i];
            clp_compute[static_cast<std::size_t>(clp)] += cyc[i];
            // Off-chip bandwidth is shared among the K parallel CLPs.
            clp_mem[static_cast<std::size_t>(clp)] += static_cast<Cycles>(
                static_cast<double>(costs[i].dramBytes) /
                (bw_bytes_per_cycle / k));
        }

        Cycles t_seg = 0;
        Cycles t_seg_compute = 0;
        for (int c = 0; c < k; ++c) {
            // Double buffering overlaps DRAM time with compute, but not
            // completely (Sec. V-B).
            const Cycles comp = clp_compute[static_cast<std::size_t>(c)];
            const Cycles mem = clp_mem[static_cast<std::size_t>(c)];
            const Cycles hidden = static_cast<Cycles>(
                _options.overlapEfficiency *
                static_cast<double>(std::min(comp, mem)));
            const Cycles t_c = comp + mem - hidden;
            t_seg = std::max(t_seg, t_c);
            t_seg_compute = std::max(t_seg_compute, comp);
        }

        // Layer-granularity image pipelining: fill (K-1) + B beats.
        const auto beats = static_cast<Cycles>(B + k - 1);
        const Cycles total = beats * t_seg;
        const Cycles compute_total = beats * t_seg_compute;

        if (first || total < best_total) {
            first = false;
            best_total = total;
            best_compute_total = compute_total;
            best_energy = energy * B;
            best_k = k;
        }
    }
    _selectedClps = best_k;

    sim::ExecutionReport report;
    report.batch = B;
    report.rounds = costs.size() * static_cast<std::size_t>(B);
    report.totalCycles = best_total;
    const double total_pes = _system.totalPes();
    const auto batch_macs =
        static_cast<double>(total_macs) * static_cast<double>(B);
    if (best_total > 0)
        report.peUtilization =
            batch_macs / (static_cast<double>(best_total) * total_pes);
    if (best_compute_total > 0)
        report.computeUtilization =
            batch_macs /
            (static_cast<double>(best_compute_total) * total_pes);
    report.memOverhead =
        best_total > best_compute_total
            ? static_cast<double>(best_total - best_compute_total) /
                  static_cast<double>(best_total)
            : 0.0;
    report.onChipReuseRatio = 0.0; // every fmap goes through DRAM

    report.hbmReadBytes =
        static_cast<Bytes>(B) * (dram_total - dram_writes);
    report.hbmWriteBytes = static_cast<Bytes>(B) * dram_writes;
    report.computeEnergyPj = best_energy;
    report.hbmEnergyPj = static_cast<double>(dram_total) * B * 8.0 *
                         _system.hbm.energyPjPerBit;
    const double seconds = static_cast<double>(best_total) /
                           (_system.engine.freqGhz * 1e9);
    report.staticEnergyPj =
        _system.engine.staticPowerMw * 1e-3 * seconds * 1e12 * engines;

    if (ins && ins->metrics) {
        ins->metrics->counter("cnnp.selected_clps")
            .add(static_cast<std::uint64_t>(best_k));
        ins->metrics->counter("cnnp.total_cycles")
            .add(report.totalCycles);
    }

    core::PlanResult result;
    result.report = report;
    return result;
}

} // namespace ad::baselines
