#include "layer_sequential.hh"

#include <algorithm>

#include "core/partition.hh"
#include "engine/cached_cost_model.hh"
#include "noc/mesh.hh"

namespace ad::baselines {

using core::AtomicDag;
using core::AtomId;
using core::Placement;
using core::Schedule;

LayerSequential::LayerSequential(const sim::SystemConfig &system,
                                 LsOptions options, sim::MeshView view)
    : _base(system), _view(view.resolved(system.meshX, system.meshY)),
      _system(sim::viewSystem(system, _view)), _options(options)
{
    _system.validate();
    if (_options.batch < 1)
        fatal("LS batch must be at least 1");
    _options.samplesInFlight =
        std::clamp(_options.samplesInFlight, 1, _options.batch);
}

core::PlanResult
LayerSequential::plan(const graph::Graph &graph,
                      obs::Instrumentation *ins) const
{
    const int engines = _system.engines();
    const int group = _options.samplesInFlight;
    // Each layer is evenly split so a group of samples fills the mesh.
    // The naive split follows each accelerator family's scale-out
    // convention (channels for NVDLA-like, spatial for ShiDianNao-like),
    // which is exactly what stops matching the PE array (Fig. 2).
    const int tiles_per_sample = std::max(1, engines / group);
    const auto policy =
        _system.dataflow == engine::DataflowKind::YxPartition
            ? core::PartitionPolicy::Balanced
            : core::PartitionPolicy::ChannelFirst;

    const auto shapes =
        core::evenPartitionShapes(graph, tiles_per_sample, policy);
    core::AtomicDagOptions dag_options;
    dag_options.batch = _options.batch;
    dag_options.bytesPerElem = _system.engine.bytesPerElem;
    auto dag = std::make_unique<AtomicDag>(graph, shapes, dag_options);

    // Zig-zag engine enumeration (naive placement, no optimization).
    const noc::MeshTopology topo(_system.meshX, _system.meshY);
    std::vector<int> zigzag;
    for (int y = 0; y < topo.ydim(); ++y) {
        if (y % 2 == 0) {
            for (int x = 0; x < topo.xdim(); ++x)
                zigzag.push_back(topo.idOf({x, y}));
        } else {
            for (int x = topo.xdim() - 1; x >= 0; --x)
                zigzag.push_back(topo.idOf({x, y}));
        }
    }

    // Strict layer order: all samples of a group run the same layer
    // together; the group completes the whole network before the next
    // group starts.
    Schedule schedule;
    for (int g0 = 0; g0 < _options.batch; g0 += group) {
        const int g1 = std::min(_options.batch, g0 + group);
        for (const graph::Layer &layer : graph.layers()) {
            std::vector<AtomId> pending;
            for (int s = g0; s < g1; ++s) {
                const auto [lo, hi] = dag->layerAtoms(layer.id, s);
                for (AtomId a = lo; a != hi && lo != core::kNoAtom; ++a)
                    pending.push_back(a);
            }
            for (std::size_t i = 0; i < pending.size();
                 i += static_cast<std::size_t>(engines)) {
                core::Round round;
                const std::size_t end = std::min(
                    pending.size(), i + static_cast<std::size_t>(engines));
                for (std::size_t j = i; j < end; ++j) {
                    round.placements.push_back(
                        {pending[j],
                         zigzag[(j - i) % zigzag.size()]});
                }
                schedule.rounds.push_back(std::move(round));
            }
        }
    }

    core::PlanResult result;
    result.dag = std::move(dag);
    result.schedule = std::move(schedule);
    const sim::SystemSimulator simulator(_base, _view);
    result.report =
        simulator.execute(*result.dag, result.schedule, ins);
    return result;
}

std::vector<double>
LayerSequential::layerUtilizations(const graph::Graph &graph) const
{
    const engine::CachedCostModel model(_system.engine,
                                        _system.dataflow);
    const int engines = _system.engines();
    const auto shapes = core::evenPartitionShapes(
        graph, engines,
        _system.dataflow == engine::DataflowKind::YxPartition
            ? core::PartitionPolicy::Balanced
            : core::PartitionPolicy::ChannelFirst);

    std::vector<double> util(graph.size(), 0.0);
    for (const graph::Layer &layer : graph.layers()) {
        if (!layer.onPeArray())
            continue;
        const auto &shape = shapes[static_cast<std::size_t>(layer.id)];
        engine::AtomWorkload tile;
        tile.type = layer.type;
        tile.h = std::min(shape.h, layer.out.h);
        tile.w = std::min(shape.w, layer.out.w);
        tile.co = std::min(shape.c, layer.out.c);
        tile.ci = layer.in.c;
        tile.window = layer.window;

        const int tiles =
            ceilDiv(layer.out.h, tile.h) * ceilDiv(layer.out.w, tile.w) *
            ceilDiv(layer.out.c, tile.co);
        // One layer at a time: the layer's MACs spread over all engines
        // for the duration of its slowest tile (rounds of tiles).
        const Cycles tile_cycles = model.cycles(tile);
        const int rounds = ceilDiv(tiles, engines);
        const double denominator =
            static_cast<double>(tile_cycles) * rounds * engines *
            _system.engine.pes();
        if (denominator > 0) {
            util[static_cast<std::size_t>(layer.id)] =
                static_cast<double>(layer.macs()) / denominator;
        }
    }
    return util;
}

} // namespace ad::baselines
