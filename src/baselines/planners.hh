#pragma once

/**
 * @file
 * Name-based planner factory: one place that maps the strategy names
 * used by adctl, the benches, and the docs ("AD", "LS", "CNN-P",
 * "IL-Pipe", "Rammer", "DTT") to configured Planner instances. Keeps
 * every driver loop strategy-agnostic.
 */

#include <memory>
#include <string>
#include <vector>

#include "core/orchestrator.hh"
#include "core/planner.hh"
#include "sim/mesh_view.hh"
#include "sim/system.hh"

namespace ad::baselines {

/** Strategy names makePlanner accepts, in canonical display order. */
const std::vector<std::string> &plannerNames();

/**
 * Everything that selects and configures a planner — the single
 * factory signature (there are no overloads). "AD" and "DTT" honour
 * the full orchestrator option set; the other strategies consume
 * options.batch and their own defaults. Every strategy plans for
 * `view` of `system` (the default view is the whole mesh), so a
 * strategy name means the same configuration everywhere: adctl, the
 * serving layer, benches, and tests all build planners through this
 * one spec.
 */
struct PlannerSpec
{
    std::string strategy = "AD";
    sim::SystemConfig system;
    sim::MeshView view{};
    core::OrchestratorOptions options;
};

/**
 * Build the planner @p spec describes. Throws ConfigError for unknown
 * strategy names.
 */
std::unique_ptr<core::Planner> makePlanner(const PlannerSpec &spec);

} // namespace ad::baselines
